package aquila_test

import (
	"testing"

	"aquila"
	"aquila/internal/harness"
)

// benchScale keeps one harness iteration around a second so `go test
// -bench=.` stays tractable; `cmd/aquila-bench -scale 1` runs the full
// scaled configuration documented in EXPERIMENTS.md.
const benchScale = 0.15

// benchExperiment reruns one paper artefact per benchmark iteration and
// reports the simulated cycles it regenerated.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs := e.Run(benchScale)
		if len(rs) == 0 || len(rs[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation (§6).

func BenchmarkTable1YCSB(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig5a(b *testing.B)      { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)      { benchExperiment(b, "fig5b") }
func BenchmarkFig6a(b *testing.B)      { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)      { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)      { benchExperiment(b, "fig6c") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)      { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)      { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)      { benchExperiment(b, "fig8c") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10a(b *testing.B)     { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B)     { benchExperiment(b, "fig10b") }

// Micro-measurement benches (§3.3 memcpy model, §4.1 IPI batching).

func BenchmarkMemcpyModel(b *testing.B) { benchExperiment(b, "memcpy") }
func BenchmarkIPIBatching(b *testing.B) { benchExperiment(b, "ipi") }

// Ablations of the design choices DESIGN.md calls out, plus the io_uring
// extension (§3.3 future work / §7.1 discussion).

func BenchmarkCacheResize(b *testing.B)     { benchExperiment(b, "resize") }
func BenchmarkPageRankWorlds(b *testing.B)  { benchExperiment(b, "pagerank") }
func BenchmarkNVMHeap(b *testing.B)         { benchExperiment(b, "nvm-heap") }
func BenchmarkAblateBatchSize(b *testing.B) { benchExperiment(b, "ablate-batch") }
func BenchmarkAblateFreelist(b *testing.B)  { benchExperiment(b, "ablate-freelist") }
func BenchmarkAblateReadahead(b *testing.B) { benchExperiment(b, "ablate-readahead") }
func BenchmarkAblateAsyncEvict(b *testing.B) {
	benchExperiment(b, "ablate-async-evict")
}
func BenchmarkIOUring(b *testing.B) { benchExperiment(b, "iouring") }

// Hot-path microbenchmarks: how fast the simulator itself executes the two
// fault paths (real time, not simulated time).

func benchFaultPath(b *testing.B, mode aquila.Mode) {
	sys := aquila.New(aquila.Options{
		Mode: mode, Device: aquila.DevicePMem, CPUs: 4,
		CacheBytes: 64 << 20, DeviceBytes: 256 << 20,
	})
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "bench", 128<<20)
		m = sys.NS.Mmap(p, f, 128<<20)
		m.Advise(p, aquila.AdviceRandom)
	})
	b.ResetTimer()
	pages := uint64(128<<20) / 4096
	done := make(chan struct{})
	sys.Sim.Spawn(0, "bench", func(p *aquila.Proc) {
		defer close(done)
		buf := make([]byte, 8)
		for i := 0; i < b.N; i++ {
			m.Load(p, (uint64(i)*7919%pages)*4096, buf)
		}
	})
	sys.Sim.Run()
	<-done
}

func BenchmarkAquilaFaultPath(b *testing.B) { benchFaultPath(b, aquila.ModeAquila) }
func BenchmarkLinuxFaultPath(b *testing.B)  { benchFaultPath(b, aquila.ModeLinuxMmap) }
