package aquila

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aquila/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// traceWorkload runs a small deterministic fault storm on 2 CPUs: two
// threads cold-faulting disjoint halves of a shared 1 MiB file. Every fault
// misses the cache, so the trace exercises the full Aquila path (exception,
// cache insert, device read).
func traceWorkload(tr *obs.Tracer, reg *obs.Registry) *System {
	sys := New(Options{
		Mode: ModeAquila, Device: DevicePMem, CPUs: 2,
		CacheBytes: 8 << 20, DeviceBytes: 32 << 20, Seed: 7,
		Tracer: tr, Registry: reg, TraceLabel: "golden",
	})
	var m Mapping
	sys.Do(func(p *Proc) {
		f := sys.NS.Create(p, "golden", 1<<20)
		m = sys.NS.Mmap(p, f, 1<<20)
		m.Advise(p, AdviceRandom)
	})
	sys.Run(2, func(tid int, p *Proc) {
		buf := make([]byte, 8)
		for pg := uint64(tid); pg < 48; pg += 2 {
			m.Load(p, pg*4096, buf)
		}
	})
	return sys
}

// TestChromeTraceGolden pins the exporter's byte-exact output for the
// deterministic 2-CPU fault workload. Regenerate with `go test -run
// ChromeTraceGolden -update .` after intentional format changes.
func TestChromeTraceGolden(t *testing.T) {
	tr := obs.NewTracer()
	traceWorkload(tr, nil)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	n, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if n == 0 {
		t.Fatal("trace has no complete events")
	}

	golden := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from %s (got %d bytes, want %d); run with -update after intentional exporter changes",
			golden, buf.Len(), len(want))
	}
}

// TestObservabilityIsZeroCost verifies the tentpole's invariant: tracing and
// metrics must not perturb the simulation. The same workload with and
// without instrumentation must land on the identical final cycle count and
// fault statistics.
func TestObservabilityIsZeroCost(t *testing.T) {
	bare := traceWorkload(nil, nil)
	inst := traceWorkload(obs.NewTracer(), obs.NewRegistry())

	if a, b := bare.Sim.Now(), inst.Sim.Now(); a != b {
		t.Errorf("final simulated clock differs: bare=%d instrumented=%d", a, b)
	}
	if a, b := bare.RT.Stats, inst.RT.Stats; a != b {
		t.Errorf("fault stats differ: bare=%+v instrumented=%+v", a, b)
	}
	if a, b := bare.RT.Break.Total(), inst.RT.Break.Total(); a != b {
		t.Errorf("breakdown totals differ: bare=%d instrumented=%d", a, b)
	}
}
