package aquila

import (
	"bytes"
	"testing"
)

func TestSystemModesRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"aquila-pmem-dax", Options{Mode: ModeAquila, Device: DevicePMem, CPUs: 4}},
		{"aquila-nvme-spdk", Options{Mode: ModeAquila, Device: DeviceNVMe, CPUs: 4}},
		{"aquila-pmem-hostdirect", Options{Mode: ModeAquila, Device: DevicePMem, Engine: EngineHostDirect, CPUs: 4}},
		{"aquila-nvme-hostdirect", Options{Mode: ModeAquila, Device: DeviceNVMe, Engine: EngineHostDirect, CPUs: 4}},
		{"linux-mmap-pmem", Options{Mode: ModeLinuxMmap, Device: DevicePMem, CPUs: 4}},
		{"linux-direct-nvme", Options{Mode: ModeLinuxDirect, Device: DeviceNVMe, CPUs: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := New(tc.opts)
			sys.Do(func(p *Proc) {
				f := sys.NS.Create(p, "data", 8<<20)
				m := sys.NS.Mmap(p, f, 8<<20)
				payload := []byte("cross-world payload")
				m.Store(p, 12345, payload)
				m.Msync(p)
				got := make([]byte, len(payload))
				m.Load(p, 12345, got)
				if !bytes.Equal(got, payload) {
					t.Errorf("mapping round trip mismatch: %q", got)
				}
				// File path too (skip mmap-coherence concerns by using
				// a separate file).
				f2 := sys.NS.Create(p, "data2", 1<<20)
				f2.Pwrite(p, payload, 999)
				got2 := make([]byte, len(payload))
				f2.Pread(p, got2, 999)
				if !bytes.Equal(got2, payload) {
					t.Errorf("file round trip mismatch: %q", got2)
				}
			})
			if sys.Seconds() <= 0 {
				t.Error("no simulated time elapsed")
			}
		})
	}
}

func TestRunParallelThreads(t *testing.T) {
	sys := New(Options{Mode: ModeAquila, Device: DevicePMem, CPUs: 8, CacheBytes: 32 << 20})
	var f File
	var m Mapping
	sys.Do(func(p *Proc) {
		f = sys.NS.Create(p, "shared", 16<<20)
		m = sys.NS.Mmap(p, f, 16<<20)
	})
	elapsed := sys.Run(8, func(tid int, p *Proc) {
		buf := make([]byte, 8)
		for j := 0; j < 100; j++ {
			m.Load(p, uint64((tid*100+j)*4096)%(16<<20-8), buf)
		}
	})
	if elapsed == 0 {
		t.Fatal("parallel phase took no simulated time")
	}
	if got := ThroughputOpsPerSec(800, elapsed); got <= 0 {
		t.Errorf("throughput = %v", got)
	}
}

func TestAquilaFasterThanLinuxOnFaultStorm(t *testing.T) {
	// The headline property: random single-page faults over a shared file,
	// in-memory — Aquila must beat Linux mmap (Fig 10a).
	run := func(mode Mode) uint64 {
		sys := New(Options{
			Mode: mode, Device: DevicePMem, CPUs: 4,
			CacheBytes: 64 << 20, DeviceBytes: 256 << 20,
		})
		var m Mapping
		sys.Do(func(p *Proc) {
			f := sys.NS.Create(p, "data", 32<<20)
			m = sys.NS.Mmap(p, f, 32<<20)
			m.Advise(p, AdviceRandom)
		})
		return sys.Run(4, func(tid int, p *Proc) {
			buf := make([]byte, 8)
			for j := 0; j < 1000; j++ {
				pg := uint64((j*4+tid)*7919) % (32 << 8) // random-ish page
				m.Load(p, pg*4096, buf)
			}
		})
	}
	linux := run(ModeLinuxMmap)
	aq := run(ModeAquila)
	if aq >= linux {
		t.Errorf("Aquila (%d cycles) not faster than Linux mmap (%d cycles)", aq, linux)
	}
}

func TestPublicTraceOption(t *testing.T) {
	sys := New(Options{Mode: ModeAquila, Device: DevicePMem, CPUs: 2, Trace: true})
	sys.Do(func(p *Proc) {
		f := sys.NS.Create(p, "t", 1<<20)
		m := sys.NS.Mmap(p, f, 1<<20)
		m.Store(p, 0, []byte("x"))
	})
	if len(sys.Sim.Trace()) == 0 {
		t.Fatal("no trace captured with Options.Trace")
	}
}
