GO ?= go

.PHONY: all build vet test race fmt lint faults ci bench-reports bench-async

all: ci

build:
	$(GO) build ./...
	$(GO) build -tags aqdebug ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer shares data across goroutines, and the background
# evictor daemons run as extra procs inside the simulated worlds; keep both
# race-clean.
race:
	$(GO) test -race ./internal/obs/... ./internal/metrics/... ./internal/core/...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Aquila's own static-analysis suite (DESIGN.md "Static invariants"):
# determinism, cycle accounting, span pairing, typed-I/O-error propagation.
# Independent of `go vet`, which keeps covering the generic mistakes.
lint:
	$(GO) run ./cmd/aqlint ./...

# The fault-injection suite end to end under the race detector: device fault
# plans, retry/requeue/quarantine, errseq msync, SIGBUS delivery, io_uring
# error completions, and fault-plan determinism.
faults:
	$(GO) test -race -run 'Fault|SigBus|Msync|Quarantin|Poison|IOURingInjected' \
		./internal/sim/device/ ./internal/core/ ./internal/host/

ci: build vet fmt lint test race faults

# Regenerate the checked-in machine-readable experiment reports.
bench-reports:
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b -report-dir .

# Background-eviction comparison: fig5b's sync-vs-async rows plus the
# watermark-sweep ablation.
bench-async:
	$(GO) run ./cmd/aquila-bench -exp fig5b,ablate-async-evict
