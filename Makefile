GO ?= go

.PHONY: all build vet test race fmt lint lint-report faults crash torture fuzz-smoke cover perfgate ci bench-reports bench-async

all: ci

build:
	$(GO) build ./...
	$(GO) build -tags aqdebug ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test (and subtest) execution order per run so
# hidden order dependencies surface in CI instead of on a contributor's
# machine; every test builds its own engine/world, so none may rely on
# state a sibling left behind.
test:
	$(GO) test -shuffle=on ./...

# The observability layer (tracer, registry, profiler, perf gate) shares
# data across goroutines, and the background evictor daemons run as extra
# procs inside the simulated worlds; keep both race-clean. The profile and
# perfgate subpackages are covered by the ./internal/obs/... pattern.
# internal/sim/mem holds the buddy frame allocator the 2 MB path leans on.
race:
	$(GO) test -race ./internal/obs/... ./internal/metrics/... ./internal/core/... ./internal/sim/mem/...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Aquila's own static-analysis suite (DESIGN.md "Static invariants"):
# determinism, cycle accounting, span pairing, typed-I/O-error propagation,
# and the flow-aware durability/crash-unwind/huge-page invariants. `go vet`
# runs first for the generic mistakes, then aqlint sweeps both build-tag
# variants: the aqdebug tree compiles different core files and must uphold
# the same invariants.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/aqlint ./...
	$(GO) run ./cmd/aqlint -tags aqdebug ./...

# Machine-readable findings archive for CI artifacts: aqlint -json emits the
# findings, suppression count, and package census even when the tree is
# clean. The report is scratch output, not a golden.
lint-report:
	$(GO) run ./cmd/aqlint -json ./... > aqlint-report.json || true
	$(GO) run ./cmd/aqlint -json -tags aqdebug ./... > aqlint-report-aqdebug.json || true
	@echo "wrote aqlint-report.json aqlint-report-aqdebug.json"

# The fault-injection suite end to end under the race detector: device fault
# plans, retry/requeue/quarantine, errseq msync, SIGBUS delivery, io_uring
# error completions, and fault-plan determinism.
faults:
	$(GO) test -race -run 'Fault|SigBus|Msync|Quarantin|Poison|IOURingInjected' \
		./internal/sim/device/ ./internal/core/ ./internal/host/

# The crash-consistency suite end to end under the race detector: durability
# model + torn sectors, crash-point injection and determinism, durable-image
# capture/recovery, errseq across restart, Kreon CRC replay, the io_uring
# in-flight drain, and the msync durability-point pin (DESIGN.md §9).
crash:
	$(GO) test -race -run 'Crash|Recover|Durab|TornSector|CrashPlan' \
		. ./internal/sim/device/ ./internal/sim/engine/ ./internal/core/ \
		./internal/host/ ./internal/kvs/kreon/

# Torture harness (DESIGN.md §10): the fixed 64-seed bank across all
# world × device × fault × crash × schedule combinations, each seed run
# twice (-dup) to prove fingerprint determinism, failures auto-shrunk to
# repros under internal/torture/testdata/repros/. -prove-unsafe first: the
# planted UnsafeMsyncAtSubmit bug must be caught, or the battery is vacuous.
torture:
	$(GO) run ./cmd/aqtort -prove-unsafe -bank 64 -dup -shrink

# Short native-fuzz smoke: a few seconds of FuzzKreonRecover per CI run.
# The corpus (internal/kvs/testdata + the cached interesting inputs) still
# replays in plain `make test`; this target actually mutates.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzKreonRecover -fuzztime 10s ./internal/kvs/kreon/

# Per-function coverage report for the mmio core (scratch output, not a
# golden): `make cover` prints the table and leaves core-cover.out for
# `go tool cover -html`.
cover:
	$(GO) test -coverprofile=core-cover.out ./internal/core/
	$(GO) tool cover -func=core-cover.out

# Performance-regression gate: re-run the report-backed experiments into a
# scratch directory and diff every BENCH_*.json against the checked-in
# goldens, exactly to the cycle. Fails on any drift; regenerate the goldens
# with `make bench-reports` when a change is intentional. Each gated run is
# appended to the BENCH_history.jsonl trajectory.
perfgate:
	rm -rf .perfgate && mkdir -p .perfgate
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b,fig10a,ablate-hugepages,ablate-crash -report-dir .perfgate > /dev/null
	$(GO) run ./cmd/aqperf -goldens . -dir .perfgate -history BENCH_history.jsonl -label local

ci: build vet fmt lint test race faults crash fuzz-smoke torture perfgate

# Regenerate the checked-in machine-readable experiment reports.
bench-reports:
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b,fig10a,ablate-hugepages,ablate-crash -report-dir .

# Background-eviction comparison: fig5b's sync-vs-async rows plus the
# watermark-sweep ablation.
bench-async:
	$(GO) run ./cmd/aquila-bench -exp fig5b,ablate-async-evict
