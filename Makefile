GO ?= go

.PHONY: all build vet test race fmt lint faults crash perfgate ci bench-reports bench-async

all: ci

build:
	$(GO) build ./...
	$(GO) build -tags aqdebug ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer (tracer, registry, profiler, perf gate) shares
# data across goroutines, and the background evictor daemons run as extra
# procs inside the simulated worlds; keep both race-clean. The profile and
# perfgate subpackages are covered by the ./internal/obs/... pattern.
# internal/sim/mem holds the buddy frame allocator the 2 MB path leans on.
race:
	$(GO) test -race ./internal/obs/... ./internal/metrics/... ./internal/core/... ./internal/sim/mem/...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Aquila's own static-analysis suite (DESIGN.md "Static invariants"):
# determinism, cycle accounting, span pairing, typed-I/O-error propagation.
# Independent of `go vet`, which keeps covering the generic mistakes.
lint:
	$(GO) run ./cmd/aqlint ./...

# The fault-injection suite end to end under the race detector: device fault
# plans, retry/requeue/quarantine, errseq msync, SIGBUS delivery, io_uring
# error completions, and fault-plan determinism.
faults:
	$(GO) test -race -run 'Fault|SigBus|Msync|Quarantin|Poison|IOURingInjected' \
		./internal/sim/device/ ./internal/core/ ./internal/host/

# The crash-consistency suite end to end under the race detector: durability
# model + torn sectors, crash-point injection and determinism, durable-image
# capture/recovery, errseq across restart, Kreon CRC replay, the io_uring
# in-flight drain, and the msync durability-point pin (DESIGN.md §9).
crash:
	$(GO) test -race -run 'Crash|Recover|Durab|TornSector|CrashPlan' \
		. ./internal/sim/device/ ./internal/sim/engine/ ./internal/core/ \
		./internal/host/ ./internal/kvs/kreon/

# Performance-regression gate: re-run the report-backed experiments into a
# scratch directory and diff every BENCH_*.json against the checked-in
# goldens, exactly to the cycle. Fails on any drift; regenerate the goldens
# with `make bench-reports` when a change is intentional. Each gated run is
# appended to the BENCH_history.jsonl trajectory.
perfgate:
	rm -rf .perfgate && mkdir -p .perfgate
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b,fig10a,ablate-hugepages,ablate-crash -report-dir .perfgate > /dev/null
	$(GO) run ./cmd/aqperf -goldens . -dir .perfgate -history BENCH_history.jsonl -label local

ci: build vet fmt lint test race faults crash perfgate

# Regenerate the checked-in machine-readable experiment reports.
bench-reports:
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b,fig10a,ablate-hugepages,ablate-crash -report-dir .

# Background-eviction comparison: fig5b's sync-vs-async rows plus the
# watermark-sweep ablation.
bench-async:
	$(GO) run ./cmd/aquila-bench -exp fig5b,ablate-async-evict
