GO ?= go

.PHONY: all build vet test race fmt ci bench-reports

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer is the only code a future change might plausibly
# share across goroutines; keep it race-clean.
race:
	$(GO) test -race ./internal/obs/... ./internal/metrics/...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build vet fmt test race

# Regenerate the checked-in machine-readable experiment reports.
bench-reports:
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7 -report-dir .
