GO ?= go

.PHONY: all build vet test race fmt lint lint-report faults crash perfgate ci bench-reports bench-async

all: ci

build:
	$(GO) build ./...
	$(GO) build -tags aqdebug ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer (tracer, registry, profiler, perf gate) shares
# data across goroutines, and the background evictor daemons run as extra
# procs inside the simulated worlds; keep both race-clean. The profile and
# perfgate subpackages are covered by the ./internal/obs/... pattern.
# internal/sim/mem holds the buddy frame allocator the 2 MB path leans on.
race:
	$(GO) test -race ./internal/obs/... ./internal/metrics/... ./internal/core/... ./internal/sim/mem/...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Aquila's own static-analysis suite (DESIGN.md "Static invariants"):
# determinism, cycle accounting, span pairing, typed-I/O-error propagation,
# and the flow-aware durability/crash-unwind/huge-page invariants. `go vet`
# runs first for the generic mistakes, then aqlint sweeps both build-tag
# variants: the aqdebug tree compiles different core files and must uphold
# the same invariants.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/aqlint ./...
	$(GO) run ./cmd/aqlint -tags aqdebug ./...

# Machine-readable findings archive for CI artifacts: aqlint -json emits the
# findings, suppression count, and package census even when the tree is
# clean. The report is scratch output, not a golden.
lint-report:
	$(GO) run ./cmd/aqlint -json ./... > aqlint-report.json || true
	$(GO) run ./cmd/aqlint -json -tags aqdebug ./... > aqlint-report-aqdebug.json || true
	@echo "wrote aqlint-report.json aqlint-report-aqdebug.json"

# The fault-injection suite end to end under the race detector: device fault
# plans, retry/requeue/quarantine, errseq msync, SIGBUS delivery, io_uring
# error completions, and fault-plan determinism.
faults:
	$(GO) test -race -run 'Fault|SigBus|Msync|Quarantin|Poison|IOURingInjected' \
		./internal/sim/device/ ./internal/core/ ./internal/host/

# The crash-consistency suite end to end under the race detector: durability
# model + torn sectors, crash-point injection and determinism, durable-image
# capture/recovery, errseq across restart, Kreon CRC replay, the io_uring
# in-flight drain, and the msync durability-point pin (DESIGN.md §9).
crash:
	$(GO) test -race -run 'Crash|Recover|Durab|TornSector|CrashPlan' \
		. ./internal/sim/device/ ./internal/sim/engine/ ./internal/core/ \
		./internal/host/ ./internal/kvs/kreon/

# Performance-regression gate: re-run the report-backed experiments into a
# scratch directory and diff every BENCH_*.json against the checked-in
# goldens, exactly to the cycle. Fails on any drift; regenerate the goldens
# with `make bench-reports` when a change is intentional. Each gated run is
# appended to the BENCH_history.jsonl trajectory.
perfgate:
	rm -rf .perfgate && mkdir -p .perfgate
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b,fig10a,ablate-hugepages,ablate-crash -report-dir .perfgate > /dev/null
	$(GO) run ./cmd/aqperf -goldens . -dir .perfgate -history BENCH_history.jsonl -label local

ci: build vet fmt lint test race faults crash perfgate

# Regenerate the checked-in machine-readable experiment reports.
bench-reports:
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b,fig10a,ablate-hugepages,ablate-crash -report-dir .

# Background-eviction comparison: fig5b's sync-vs-async rows plus the
# watermark-sweep ablation.
bench-async:
	$(GO) run ./cmd/aquila-bench -exp fig5b,ablate-async-evict
