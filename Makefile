GO ?= go

.PHONY: all build vet test race fmt faults ci bench-reports bench-async

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer shares data across goroutines, and the background
# evictor daemons run as extra procs inside the simulated worlds; keep both
# race-clean.
race:
	$(GO) test -race ./internal/obs/... ./internal/metrics/... ./internal/core/...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The fault-injection suite end to end under the race detector: device fault
# plans, retry/requeue/quarantine, errseq msync, SIGBUS delivery, io_uring
# error completions, and fault-plan determinism.
faults:
	$(GO) test -race -run 'Fault|SigBus|Msync|Quarantin|Poison|IOURingInjected' \
		./internal/sim/device/ ./internal/core/ ./internal/host/

ci: build vet fmt test race faults

# Regenerate the checked-in machine-readable experiment reports.
bench-reports:
	$(GO) run ./cmd/aquila-bench -exp fig8a,fig7,fig5b -report-dir .

# Background-eviction comparison: fig5b's sync-vs-async rows plus the
# watermark-sweep ablation.
bench-async:
	$(GO) run ./cmd/aquila-bench -exp fig5b,ablate-async-evict
