package aquila_test

import (
	"bytes"
	"fmt"
	"testing"

	"aquila"
	"aquila/internal/core"
)

// crashPattern fills one page deterministically from its index and a phase tag.
func crashPattern(page uint64, phase byte) []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = byte(page)*31 ^ phase ^ byte(i)
	}
	return b
}

// TestCrashAtMsyncRecovery kills the machine on entry to the second msync and
// verifies the recovered image holds exactly the first msync's data: phase-1
// pages intact, phase-2 pages (dirtied but never synced) absent.
func TestCrashAtMsyncRecovery(t *testing.T) {
	for _, dev := range []aquila.DeviceKind{aquila.DevicePMem, aquila.DeviceNVMe} {
		dev := dev
		t.Run(fmt.Sprintf("dev%d", dev), func(t *testing.T) {
			opts := aquila.Options{Device: dev, CacheBytes: 8 << 20, DeviceBytes: 64 << 20}
			sys := aquila.New(opts)
			sys.InjectCrash(&aquila.CrashPlan{Seed: 7, AtSpan: "aq.msync", SpanHit: 2})
			const npages = 32
			reachedEnd := false
			sys.Do(func(p *aquila.Proc) {
				f := sys.NS.Create(p, "data", npages*2*4096)
				m := sys.NS.Mmap(p, f, npages*2*4096)
				for i := uint64(0); i < npages; i++ {
					m.Store(p, i*4096, crashPattern(i, 0xA1))
				}
				if err := m.Msync(p); err != nil {
					t.Errorf("msync: %v", err)
				}
				for i := uint64(npages); i < 2*npages; i++ {
					m.Store(p, i*4096, crashPattern(i, 0xB2))
				}
				m.Msync(p) // dies on entry
				reachedEnd = true
			})
			if reachedEnd {
				t.Fatal("workload ran past the armed crash point")
			}
			info := sys.Crashed()
			if info == nil {
				t.Fatal("system did not crash")
			}
			if info.Reason != "span:aq.msync" {
				t.Fatalf("crash reason %q", info.Reason)
			}
			img := sys.CaptureCrash()
			rec := aquila.Recover(opts, img)
			rec.Do(func(p *aquila.Proc) {
				f := rec.NS.Create(p, "data", npages*2*4096)
				m := rec.NS.Mmap(p, f, npages*2*4096)
				buf := make([]byte, 4096)
				for i := uint64(0); i < npages; i++ {
					m.Load(p, i*4096, buf)
					if !bytes.Equal(buf, crashPattern(i, 0xA1)) {
						t.Fatalf("page %d: msync'd data lost across crash", i)
					}
				}
				zero := make([]byte, 4096)
				for i := uint64(npages); i < 2*npages; i++ {
					m.Load(p, i*4096, buf)
					if !bytes.Equal(buf, zero) {
						t.Fatalf("page %d: unsynced data survived the crash", i)
					}
				}
			})
			if err := rec.RT.CheckInvariants(); err != nil {
				t.Fatalf("recovered runtime invariants: %v", err)
			}
		})
	}
}

// TestLoadCrashPlanFixtures loads the checked-in crash-plan fixtures (the
// same files the README's mmio-micro -crash-plan walkthrough uses) and drives
// one of them end to end.
func TestLoadCrashPlanFixtures(t *testing.T) {
	cyc, err := aquila.LoadCrashPlan("testdata/crashplans/at-cycle.json")
	if err != nil {
		t.Fatal(err)
	}
	if cyc.AtCycle != 2000000 || cyc.Seed != 7 || cyc.TearProb != 0.25 {
		t.Fatalf("at-cycle fixture parsed as %+v", cyc)
	}
	plan, err := aquila.LoadCrashPlan("testdata/crashplans/msync-second.json")
	if err != nil {
		t.Fatal(err)
	}
	if plan.AtSpan != "aq.msync" || plan.SpanHit != 2 {
		t.Fatalf("msync-second fixture parsed as %+v", plan)
	}
	opts := aquila.Options{Device: aquila.DevicePMem, CacheBytes: 4 << 20, DeviceBytes: 32 << 20}
	sys := aquila.New(opts)
	sys.InjectCrash(plan)
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "d", 1<<20)
		m := sys.NS.Mmap(p, f, 1<<20)
		m.Store(p, 0, []byte("one"))
		m.Msync(p)
		m.Store(p, 4096, []byte("two"))
		m.Msync(p) // dies on entry
	})
	info := sys.Crashed()
	if info == nil || info.Reason != "span:aq.msync" {
		t.Fatalf("fixture plan did not fire: %+v", info)
	}
}

// TestCrashDeterminism runs the same workload under the same plan twice and
// demands a bit-identical durable image, and that the crash metadata matches.
func TestCrashDeterminism(t *testing.T) {
	run := func() *aquila.CrashImage {
		opts := aquila.Options{Device: aquila.DeviceNVMe, CacheBytes: 4 << 20, DeviceBytes: 32 << 20}
		sys := aquila.New(opts)
		sys.InjectCrash(&aquila.CrashPlan{Seed: 42, AtDeviceOp: 5, TearProb: 0.5})
		sys.Do(func(p *aquila.Proc) {
			f := sys.NS.Create(p, "d", 2<<20)
			m := sys.NS.Mmap(p, f, 2<<20)
			for i := uint64(0); i < 256; i++ {
				m.Store(p, i*4096, crashPattern(i, 0x55))
			}
			m.Msync(p)
		})
		if sys.Crashed() == nil {
			t.Fatal("system did not crash")
		}
		return sys.CaptureCrash()
	}
	a, b := run(), run()
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ: %#x vs %#x", a.Fingerprint, b.Fingerprint)
	}
	if a.Cycle != b.Cycle || a.DroppedBlocks != b.DroppedBlocks || a.TornBlocks != b.TornBlocks {
		t.Fatalf("crash metadata differs: %+v vs %+v", a, b)
	}
}

// TestEmptyCrashPlanIsNoPlan pins that arming an empty plan changes nothing:
// same final cycle count and same settled durable image as running unarmed.
func TestEmptyCrashPlanIsNoPlan(t *testing.T) {
	run := func(arm bool) (uint64, uint64) {
		sys := aquila.New(aquila.Options{Device: aquila.DevicePMem, CacheBytes: 4 << 20, DeviceBytes: 32 << 20})
		if arm {
			sys.InjectCrash(&aquila.CrashPlan{})
		}
		sys.Do(func(p *aquila.Proc) {
			f := sys.NS.Create(p, "d", 1<<20)
			m := sys.NS.Mmap(p, f, 1<<20)
			for i := uint64(0); i < 128; i++ {
				m.Store(p, i*4096, crashPattern(i, 0x0F))
			}
			m.Msync(p)
		})
		if sys.Crashed() != nil {
			t.Fatal("empty plan fired")
		}
		st := sys.PMem.Store
		st.SettleAll()
		return sys.Sim.Now(), st.Fingerprint()
	}
	c1, f1 := run(false)
	c2, f2 := run(true)
	if c1 != c2 || f1 != f2 {
		t.Fatalf("empty plan diverged: cycles %d vs %d, fingerprint %#x vs %#x", c1, c2, f1, f2)
	}
}

// TestMsyncDurabilityPointPinned pins the writeback-ordering satellite: msync
// must return only after the device durability point. The correct runtime
// keeps all msync'd data across a crash landing right after msync returns;
// the deliberately broken Params.UnsafeMsyncAtSubmit loses some of it to the
// NVMe completion window — which is exactly what the crash oracle must catch.
func TestMsyncDurabilityPointPinned(t *testing.T) {
	const npages = 64
	workload := func(sys *aquila.System, ack *uint64) func(p *aquila.Proc) {
		return func(p *aquila.Proc) {
			f := sys.NS.Create(p, "data", npages*4096)
			m := sys.NS.Mmap(p, f, npages*4096)
			for i := uint64(0); i < npages; i++ {
				m.Store(p, i*4096, crashPattern(i, 0xC3))
			}
			m.Msync(p)
			*ack = p.Now()
			// Post-ack work: the crash run dies in here (the AtCycle trigger
			// fires at the next scheduling point past the ack), with the first
			// msync already acknowledged.
			for i := uint64(0); i < npages; i++ {
				m.Store(p, i*4096, crashPattern(i, 0xD4))
			}
			m.Msync(p)
		}
	}
	run := func(unsafe bool) (lost int) {
		opts := aquila.Options{Device: aquila.DeviceNVMe, CacheBytes: 8 << 20, DeviceBytes: 64 << 20}
		if unsafe {
			par := core.DefaultParams()
			par.UnsafeMsyncAtSubmit = true
			opts.Params = &par
		}
		// Trace run: find the cycle msync acknowledges durability.
		var ack uint64
		trace := aquila.New(opts)
		trace.Do(workload(trace, &ack))
		if ack == 0 {
			t.Fatal("trace run recorded no ack cycle")
		}
		// Crash run: die right after the ack.
		sys := aquila.New(opts)
		sys.InjectCrash(&aquila.CrashPlan{Seed: 3, AtCycle: ack + 1})
		var ack2 uint64
		sys.Do(workload(sys, &ack2))
		if sys.Crashed() == nil {
			t.Fatal("system did not crash")
		}
		img := sys.CaptureCrash()
		rec := aquila.Recover(opts, img)
		rec.Do(func(p *aquila.Proc) {
			f := rec.NS.Create(p, "data", npages*4096)
			m := rec.NS.Mmap(p, f, npages*4096)
			buf := make([]byte, 4096)
			for i := uint64(0); i < npages; i++ {
				m.Load(p, i*4096, buf)
				if !bytes.Equal(buf, crashPattern(i, 0xC3)) {
					lost++
				}
			}
		})
		return lost
	}
	if lost := run(false); lost != 0 {
		t.Fatalf("correct msync lost %d acknowledged pages", lost)
	}
	if lost := run(true); lost == 0 {
		t.Fatal("UnsafeMsyncAtSubmit lost nothing — the pin test has no teeth")
	}
}

// TestCrashDuringBgEvict kills the machine inside the background evictor and
// checks the crashed runtime still passes the crash-point invariant audit
// (no doubly-owned frames, dirty flags consistent with the trees).
func TestCrashDuringBgEvict(t *testing.T) {
	par := core.DefaultParams()
	par.AsyncEvict = true
	opts := aquila.Options{
		Device: aquila.DeviceNVMe, CacheBytes: 2 << 20, DeviceBytes: 64 << 20,
		Params: &par,
	}
	sys := aquila.New(opts)
	sys.InjectCrash(&aquila.CrashPlan{Seed: 11, AtSpan: "aq.bg_evict", SpanHit: 3})
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "big", 16<<20)
		m := sys.NS.Mmap(p, f, 16<<20)
		for i := uint64(0); i < 16<<20/4096; i++ {
			m.Store(p, i*4096, crashPattern(i, 0x77))
		}
		m.Msync(p)
	})
	if sys.Crashed() == nil {
		t.Skip("workload never tripped the background evictor")
	}
	if err := sys.RT.CheckCrashInvariants(); err != nil {
		t.Fatalf("crash invariants after bg_evict crash: %v", err)
	}
	img := sys.CaptureCrash()
	rec := aquila.Recover(opts, img)
	rec.Do(func(p *aquila.Proc) {
		f := rec.NS.Create(p, "big", 16<<20)
		m := rec.NS.Mmap(p, f, 16<<20)
		buf := make([]byte, 4096)
		m.Load(p, 0, buf) // recovered image must be readable
	})
	if err := rec.RT.CheckInvariants(); err != nil {
		t.Fatalf("recovered runtime invariants: %v", err)
	}
}

// TestWBErrorSurvivesRecovery pins the errseq half of recovery: a writeback
// error nobody observed before the crash is reported exactly once by the
// first sync caller in the recovered incarnation.
func TestWBErrorSurvivesRecovery(t *testing.T) {
	opts := aquila.Options{Device: aquila.DeviceNVMe, CacheBytes: 4 << 20, DeviceBytes: 32 << 20}
	sys := aquila.New(opts)
	// Permanent write fault on the file's first block; the background of the
	// errseq machinery (quarantine etc.) is exercised elsewhere — here only
	// the carry-across-restart matters, so inject via the runtime directly.
	sys.InjectCrash(&aquila.CrashPlan{Seed: 1, AtSpan: "aq.msync", SpanHit: 1})
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "data", 1<<20)
		m := sys.NS.Mmap(p, f, 1<<20)
		m.Store(p, 0, []byte("x"))
		m.Msync(p) // dies on entry, error below never observed
	})
	if sys.Crashed() == nil {
		t.Fatal("system did not crash")
	}
	img := sys.CaptureCrash()
	// Simulate an unreported pre-crash writeback error riding the image.
	wantErr := fmt.Errorf("injected pre-crash writeback error")
	if img.WBErrors == nil {
		img.WBErrors = map[string]error{}
	}
	img.WBErrors["data"] = wantErr
	rec := aquila.Recover(opts, img)
	rec.Do(func(p *aquila.Proc) {
		f := rec.NS.Create(p, "data", 1<<20)
		m := rec.NS.Mmap(p, f, 1<<20)
		if err := m.Msync(p); err == nil {
			t.Error("restored writeback error not reported to first sync caller")
		}
		if err := m.Msync(p); err != nil {
			t.Errorf("restored writeback error reported twice: %v", err)
		}
		// A second consumer opening later must not see the already-seen error.
		m2 := rec.NS.Mmap(p, f, 1<<20)
		if err := m2.Msync(p); err != nil {
			t.Errorf("seen error leaked to a later consumer: %v", err)
		}
	})
	if rec.RT.Stats.RestoredWBErrors != 1 {
		t.Fatalf("RestoredWBErrors = %d, want 1", rec.RT.Stats.RestoredWBErrors)
	}
}
