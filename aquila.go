// Package aquila is the public API of this repository: a library-OS runtime,
// reproduced from "Memory-Mapped I/O on Steroids" (EuroSys '21), that gives
// applications a customizable, low-overhead memory-mapped I/O path.
//
// Because a Go runtime cannot execute in non-root ring 0, the system runs on
// a deterministic simulated machine (see DESIGN.md): all costs are simulated
// cycles at the paper's 2.4 GHz testbed clock, all concurrency is simulated
// threads, and both worlds under study — the Linux kernel I/O stack and the
// Aquila library OS — are full implementations over that machine.
//
// Typical use:
//
//	sys := aquila.New(aquila.Options{
//		Device:     aquila.DevicePMem,
//		CacheBytes: 64 << 20,
//	})
//	sys.Do(func(p *aquila.Proc) {
//		f := sys.NS.Create(p, "data", 16<<20)
//		m := sys.NS.Mmap(p, f, 16<<20)
//		m.Store(p, 0, []byte("hello"))
//		m.Msync(p)
//	})
//	fmt.Println(sys.Seconds(), "simulated seconds")
package aquila

import (
	"fmt"

	"aquila/internal/core"
	"aquila/internal/host"
	"aquila/internal/iface"
	"aquila/internal/obs"
	"aquila/internal/sim/cpu"
	"aquila/internal/sim/device"
	simengine "aquila/internal/sim/engine"
	"aquila/internal/spdk"
)

// Re-exported application-facing types: programs written against these run
// unmodified over Aquila or the Linux baseline.
type (
	// Proc is a simulated thread.
	Proc = simengine.Proc
	// File is explicit-I/O file access.
	File = iface.File
	// Mapping is memory-mapped access.
	Mapping = iface.Mapping
	// Namespace creates/opens files and mappings.
	Namespace = iface.Namespace
	// Advice is the madvise hint set.
	Advice = iface.Advice
)

// madvise hints, re-exported.
const (
	AdviceNormal     = iface.AdviceNormal
	AdviceRandom     = iface.AdviceRandom
	AdviceSequential = iface.AdviceSequential
	AdviceWillNeed   = iface.AdviceWillNeed
	AdviceDontNeed   = iface.AdviceDontNeed
	// AdviceHuge (MADV_HUGEPAGE) asks for 2 MB mappings: under Aquila every
	// extent of the region promotes on first fault (contiguity permitting)
	// and dirtying stores re-dirty units whole instead of splitting them.
	// Requires Params.HugeFaultDensity > 0; ignored by the Linux worlds.
	AdviceHuge = iface.AdviceHuge
)

// Fault-injection types, re-exported so experiments can build plans without
// importing internal packages.
type (
	// FaultPlan is a deterministic device fault schedule.
	FaultPlan = device.FaultPlan
	// FaultRule is one rule of a plan.
	FaultRule = device.FaultRule
	// FaultKind classifies an injected fault.
	FaultKind = device.FaultKind
	// IOError is the typed error injected operations return.
	IOError = device.IOError
	// SigBus is the typed panic value a failed mapped access delivers.
	SigBus = core.SigBus
	// IOFault is the per-page error wrapped inside SigBus and sync errors.
	IOFault = core.IOFault
)

// Fault kinds, re-exported.
const (
	FaultTransientRead  = device.FaultTransientRead
	FaultTransientWrite = device.FaultTransientWrite
	FaultPermanentRead  = device.FaultPermanentRead
	FaultPermanentWrite = device.FaultPermanentWrite
	FaultLatencySpike   = device.FaultLatencySpike
	FaultPoison         = device.FaultPoison
)

// LoadFaultPlan reads a fault plan from a JSON file (testdata fixtures).
func LoadFaultPlan(path string) (*FaultPlan, error) { return device.LoadFaultPlan(path) }

// DeviceKind selects the storage device model.
type DeviceKind int

// Storage devices of the paper's testbed (§5).
const (
	// DevicePMem is the DRAM-backed pmem block device.
	DevicePMem DeviceKind = iota
	// DeviceNVMe is the Optane P4800X-class NVMe SSD.
	DeviceNVMe
)

// EngineKind selects Aquila's device-access method (§3.3, Fig 8c).
type EngineKind int

// I/O engines.
const (
	// EngineAuto picks DAX for pmem and SPDK for NVMe (the paper's
	// preferred configurations).
	EngineAuto EngineKind = iota
	// EngineDAX is direct load/store access to pmem with AVX2 copies.
	EngineDAX
	// EngineSPDK is user-space NVMe via SPDK + Blobstore.
	EngineSPDK
	// EngineHostDirect issues direct I/O through the host kernel
	// (HOST-pmem / HOST-NVMe): one vmcall + syscall per I/O.
	EngineHostDirect
)

// Mode selects which world serves the Namespace.
type Mode int

// Execution modes.
const (
	// ModeAquila runs the application over the Aquila library OS.
	ModeAquila Mode = iota
	// ModeLinuxMmap runs over Linux mmap (kernel page cache, ring-3 faults).
	ModeLinuxMmap
	// ModeLinuxDirect runs over Linux O_DIRECT read/write syscalls
	// (mappings are still served by Linux mmap).
	ModeLinuxDirect
)

// Options configures a System.
type Options struct {
	// CPUs is the simulated CPU count (default 32, the paper's testbed).
	CPUs int
	// NUMANodes defaults to 2.
	NUMANodes int
	// Seed makes runs reproducible (default 1).
	Seed int64
	// Mode selects the world (default ModeAquila).
	Mode Mode
	// Device selects the storage device (default DevicePMem).
	Device DeviceKind
	// Engine selects Aquila's I/O engine (default EngineAuto).
	Engine EngineKind
	// CacheBytes is the DRAM I/O cache size (Aquila cache or host page
	// cache cgroup limit). Default 64 MB.
	CacheBytes uint64
	// MaxCacheBytes bounds dynamic cache growth (Aquila only).
	MaxCacheBytes uint64
	// DeviceBytes is the storage capacity (default 1 GB).
	DeviceBytes uint64
	// Params overrides Aquila's cost/policy table.
	Params *core.Params
	// Trace captures an execution trace; export it with
	// Sim.WriteChromeTrace.
	Trace bool
	// Tracer, when non-nil, receives cycle-attributed spans from every
	// layer (scheduler, fault paths, devices) for Chrome trace export.
	// A tracer may be shared by several Systems; TraceLabel tells their
	// track groups apart.
	Tracer *obs.Tracer
	// Registry, when non-nil, collects this System's metrics (fault-cycle
	// breakdowns, latency histograms, counters). May be shared.
	Registry *obs.Registry
	// Profiler, when non-nil, receives the lossless closed-span stream for
	// hierarchical cycle profiling (internal/obs/profile.Profiler is the
	// canonical implementation). May be shared by several Systems;
	// TraceLabel keeps their tracks apart.
	Profiler obs.SpanSink
	// TraceLabel prefixes this System's tracks and labels its metrics.
	// Empty derives a label from Mode ("aquila", "linux", ...).
	TraceLabel string
	// SchedPerturb perturbs the simulator's tie-breaking among processes
	// runnable at the same cycle (see engine.Config.SchedPerturb): every
	// value is a fully deterministic, replayable schedule; 0 is the
	// canonical spawn-order schedule, bit-identical to previous releases.
	// The torture harness (cmd/aqtort) sweeps this to explore interleavings.
	SchedPerturb uint64

	// Recovery state, set only by Recover (see crash.go): the durable media
	// image the device adopts at boot and the errseq state to replay.
	restoreMedia map[uint64][]byte
	restoreWBErr map[string]error
	recovered    bool
}

func (o *Options) fill() {
	if o.CPUs == 0 {
		o.CPUs = 32
	}
	if o.NUMANodes == 0 {
		o.NUMANodes = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	}
	if o.DeviceBytes == 0 {
		o.DeviceBytes = 1 << 30
	}
	if o.MaxCacheBytes < o.CacheBytes {
		o.MaxCacheBytes = o.CacheBytes
	}
}

// System is one booted world: a simulated machine, a host OS, optionally an
// Aquila runtime, and the Namespace applications program against.
type System struct {
	Opts Options
	// Sim is the discrete-event engine; use it for custom spawning.
	Sim *simengine.Engine
	// Host is the simulated Linux instance (always present: it is the
	// baseline world and Aquila's hypervisor).
	Host *host.OS
	// RT is the Aquila runtime (nil in Linux modes).
	RT *core.Runtime
	// NS is the namespace applications use.
	NS Namespace
	// PMem / NVMe expose the raw devices for inspection.
	PMem *device.PMem
	NVMe *device.NVMe
	// crashPlan is the armed crash schedule (see InjectCrash in crash.go).
	crashPlan *CrashPlan
}

// New boots a System with the given options.
func New(opts Options) *System {
	opts.fill()
	s := &System{Opts: opts}
	label := s.TraceLabel()
	s.Sim = simengine.New(simengine.Config{
		NumCPUs: opts.CPUs, NumNUMANodes: opts.NUMANodes, Seed: opts.Seed,
		Trace: opts.Trace, Spans: opts.Tracer, Profile: opts.Profiler,
		TraceLabel: label, SchedPerturb: opts.SchedPerturb,
	})
	var disk *host.Disk
	var devName string
	switch opts.Device {
	case DevicePMem:
		devName = "pmem0"
		s.PMem = device.NewPMem(opts.DeviceBytes, device.DefaultPMemConfig())
		disk = host.NewPMemDisk(devName, s.PMem)
	case DeviceNVMe:
		devName = "nvme0"
		s.NVMe = device.NewNVMe(opts.DeviceBytes, device.DefaultNVMeConfig())
		disk = host.NewNVMeDisk(devName, s.NVMe)
	default:
		panic(fmt.Sprintf("aquila: unknown device kind %d", opts.Device))
	}
	if opts.restoreMedia != nil {
		// Recovery boot: the device starts from the crash image's durable
		// media, before any layer above has touched it.
		s.store().AdoptMedia(opts.restoreMedia)
	}
	if opts.Tracer != nil || opts.Registry != nil {
		devPID := 0
		if opts.Tracer != nil {
			devPID = opts.Tracer.RegisterProcess(label + "/devices")
			opts.Tracer.SetThreadName(devPID, 0, devName)
		}
		if s.PMem != nil {
			s.PMem.Instrument(opts.Tracer, devPID, 0, opts.Registry, label+"/"+devName)
		} else {
			s.NVMe.Instrument(opts.Tracer, devPID, 0, opts.Registry, label+"/"+devName)
		}
	}
	s.Host = host.NewOS(s.Sim, disk, opts.CacheBytes)
	s.Host.AttachObs(opts.Registry, label)

	switch opts.Mode {
	case ModeLinuxMmap:
		s.NS = &host.Namespace{OS: s.Host, Direct: false}
	case ModeLinuxDirect:
		s.NS = &host.Namespace{OS: s.Host, Direct: true}
	case ModeAquila:
		s.Do(func(p *Proc) {
			eng := s.buildEngine(p)
			s.RT = core.NewRuntime(p, s.Host, eng, core.Config{
				CacheBytes:       opts.CacheBytes,
				MaxCacheBytes:    opts.MaxCacheBytes,
				Params:           opts.Params,
				Registry:         opts.Registry,
				Label:            label,
				RestoredWBErrors: opts.restoreWBErr,
				Recovered:        opts.recovered,
			})
			s.NS = &core.Namespace{RT: s.RT}
		})
	default:
		panic(fmt.Sprintf("aquila: unknown mode %d", opts.Mode))
	}
	return s
}

// InjectFaults attaches a deterministic fault plan to the System's storage
// device; every subsequent I/O (either world, any engine) is checked against
// it. A nil plan detaches. Injection is recorded in the registry
// (dev_faults_injected) and trace (dev.fault spans) when instrumented.
func (s *System) InjectFaults(plan *device.FaultPlan) {
	switch {
	case s.PMem != nil:
		s.PMem.InjectFaults("pmem0", plan)
	case s.NVMe != nil:
		s.NVMe.InjectFaults("nvme0", plan)
	}
}

// InjectedFaults returns how many faults the device has injected so far.
func (s *System) InjectedFaults() uint64 {
	switch {
	case s.PMem != nil:
		return s.PMem.Store.InjectedFaults()
	case s.NVMe != nil:
		return s.NVMe.Store.InjectedFaults()
	}
	return 0
}

// TraceLabel returns the label identifying this System in shared tracers and
// registries: Options.TraceLabel, or one derived from the mode.
func (s *System) TraceLabel() string {
	if s.Opts.TraceLabel != "" {
		return s.Opts.TraceLabel
	}
	switch s.Opts.Mode {
	case ModeLinuxMmap:
		return "linux"
	case ModeLinuxDirect:
		return "linux-direct"
	default:
		return "aquila"
	}
}

// PublishStats pushes the System's operation counters (Aquila runtime stats,
// page-cache stats, raw device stats) into the configured registry, labeled
// with the System's trace label. No-op without a registry.
func (s *System) PublishStats() {
	reg := s.Opts.Registry
	if reg == nil {
		return
	}
	l := obs.L("world", s.TraceLabel())
	if s.RT != nil {
		st := s.RT.Stats
		reg.Counter("aq_major_faults", l).Set(st.MajorFaults)
		reg.Counter("aq_minor_faults", l).Set(st.MinorFaults)
		reg.Counter("aq_wp_faults", l).Set(st.WPFaults)
		reg.Counter("aq_evictions", l).Set(st.Evictions)
		reg.Counter("aq_written_back", l).Set(st.WrittenBack)
		reg.Counter("aq_shootdown_batches", l).Set(st.ShootdownBatches)
		reg.Counter("aq_readahead_pages", l).Set(st.ReadaheadPages)
		reg.Counter("aq_direct_reclaim_pages", l).Set(st.DirectReclaimPages)
		reg.Counter("aq_bg_reclaim_pages", l).Set(st.BgReclaimPages)
		reg.Counter("aq_evict_stalls", l).Set(st.EvictStalls)
		reg.Counter("aq_io_retries", l).Set(st.IORetries)
		reg.Counter("aq_poisoned_pages", l).Set(st.PoisonedPages)
		reg.Counter("aq_quarantined_pages", l).Set(st.QuarantinedPages)
		reg.Counter("aq_requeued_pages", l).Set(st.RequeuedPages)
		reg.Counter("aq_sync_wb_fallbacks", l).Set(st.SyncWritebackFallbacks)
		reg.Counter("aq_huge_faults", l).Set(st.HugeFaults)
		reg.Counter("aq_huge_promotions", l).Set(st.HugePromotions)
		reg.Counter("aq_huge_demotions", l).Set(st.HugeDemotions)
		reg.Counter("aq_huge_evictions", l).Set(st.HugeEvictions)
		reg.Counter("aq_recovery_restored_wb_errors", l).Set(st.RestoredWBErrors)
		reg.Counter("aq_recovery_files", l).Set(st.RecoveredFiles)
	}
	if info := s.Sim.Crashed(); info != nil {
		reg.Gauge("aq_crash_cycle", l).Set(float64(info.Cycle))
		if res := s.store().CrashedResult(); res != nil {
			reg.Counter("aq_crash_dropped_blocks", l).Set(uint64(res.DroppedBlocks))
			reg.Counter("aq_crash_torn_blocks", l).Set(uint64(res.TornBlocks))
		}
	}
	c := s.Host.Cache
	reg.Counter("pagecache_inserted", l).Set(c.Inserted)
	reg.Counter("pagecache_evicted", l).Set(c.Evicted)
	reg.Counter("pagecache_written_back", l).Set(c.WrittenBk)
	reg.Counter("pagecache_promoted", l).Set(c.Promoted)
	reg.Counter("pagecache_demoted", l).Set(c.Demoted)
	var dst device.Stats
	if s.PMem != nil {
		dst = s.PMem.Stats()
	} else if s.NVMe != nil {
		dst = s.NVMe.Stats()
	}
	reg.Counter("dev_content_reads", l).Set(dst.Reads)
	reg.Counter("dev_content_writes", l).Set(dst.Writes)
	reg.Counter("dev_bytes_read", l).Set(dst.BytesRead)
	reg.Counter("dev_bytes_written", l).Set(dst.BytesWritten)
	reg.Gauge("sim_cycles", l).Set(float64(s.Sim.Now()))
}

func (s *System) buildEngine(p *Proc) core.IOEngine {
	kind := s.Opts.Engine
	if kind == EngineAuto {
		if s.Opts.Device == DevicePMem {
			kind = EngineDAX
		} else {
			kind = EngineSPDK
		}
	}
	switch kind {
	case EngineDAX:
		return core.NewDAXEngine(s.Host)
	case EngineSPDK:
		if s.NVMe == nil {
			panic("aquila: SPDK engine requires DeviceNVMe")
		}
		// SPDK takes the NVMe device over from the kernel: it must be
		// dedicated to this process (§3.3).
		return core.NewSPDKEngine(spdk.NewFileMap(spdk.NewBlobstore(spdk.NewDriver(s.NVMe))))
	case EngineHostDirect:
		return core.NewHostEngine(s.Host)
	default:
		panic(fmt.Sprintf("aquila: unknown engine kind %d", kind))
	}
}

// Do runs fn as a single simulated thread on CPU 0 and waits for completion.
func (s *System) Do(fn func(p *Proc)) {
	s.Sim.Spawn(0, "main", fn)
	s.Sim.Run()
}

// Run spawns `threads` simulated threads (one per CPU, round-robin) running
// fn(threadID, proc) and waits for all of them. It returns the elapsed
// simulated cycles of the parallel phase.
func (s *System) Run(threads int, fn func(t int, p *Proc)) uint64 {
	start := s.Sim.Now()
	for i := 0; i < threads; i++ {
		i := i
		s.Sim.SpawnAt(i%s.Opts.CPUs, fmt.Sprintf("worker-%d", i), start, func(p *Proc) {
			fn(i, p)
		})
	}
	s.Sim.Run()
	return s.Sim.Now() - start
}

// Seconds returns the total simulated wall-clock time so far.
func (s *System) Seconds() float64 { return cpu.CyclesToSeconds(s.Sim.Now()) }

// ThroughputOpsPerSec converts an operation count over elapsed cycles to
// operations per simulated second.
func ThroughputOpsPerSec(ops uint64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(ops) / cpu.CyclesToSeconds(cycles)
}

// CyclesToMicros re-exports the cycle-to-microsecond conversion.
func CyclesToMicros(c uint64) float64 { return cpu.CyclesToMicros(c) }
