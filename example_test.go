package aquila_test

import (
	"fmt"

	"aquila"
)

// The canonical flow: boot a world, create and map a file, do mmio, msync.
func Example() {
	sys := aquila.New(aquila.Options{
		Mode:       aquila.ModeAquila,
		Device:     aquila.DevicePMem,
		CacheBytes: 16 << 20,
		CPUs:       4,
	})
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "data", 1<<20)
		m := sys.NS.Mmap(p, f, 1<<20)
		m.Store(p, 0, []byte("hello"))
		m.Msync(p)
		buf := make([]byte, 5)
		m.Load(p, 0, buf)
		fmt.Println(string(buf))
	})
	// Output: hello
}

// Applications written against the shared interfaces run unmodified over
// Linux mmap, Linux direct I/O, or Aquila — select the world with Options.
func Example_worlds() {
	for _, mode := range []aquila.Mode{
		aquila.ModeLinuxMmap, aquila.ModeLinuxDirect, aquila.ModeAquila,
	} {
		sys := aquila.New(aquila.Options{Mode: mode, Device: aquila.DevicePMem, CPUs: 2})
		sys.Do(func(p *aquila.Proc) {
			f := sys.NS.Create(p, "x", 64<<10)
			f.Pwrite(p, []byte("portable"), 0)
			buf := make([]byte, 8)
			f.Pread(p, buf, 0)
			fmt.Println(string(buf))
		})
	}
	// Output:
	// portable
	// portable
	// portable
}

// Simulated runs are deterministic: the same seed gives the same cycle-exact
// result on any machine.
func Example_determinism() {
	run := func() uint64 {
		sys := aquila.New(aquila.Options{
			Mode: aquila.ModeAquila, Device: aquila.DeviceNVMe,
			CacheBytes: 8 << 20, CPUs: 4, Seed: 7,
		})
		sys.Do(func(p *aquila.Proc) {
			f := sys.NS.Create(p, "d", 4<<20)
			m := sys.NS.Mmap(p, f, 4<<20)
			buf := make([]byte, 8)
			for off := uint64(0); off < 4<<20; off += 4096 {
				m.Load(p, off, buf)
			}
		})
		return sys.Sim.Now()
	}
	fmt.Println(run() == run())
	// Output: true
}
