// Command aqperf is the performance-regression gate: it diffs experiment
// reports (the BENCH_<exp>.json schema) and exits non-zero when the
// candidate drifted from the golden. The simulation is deterministic, so
// the default comparison is exact to the cycle; -tol relaxes individual
// metrics or metric families.
//
// Usage:
//
//	aqperf golden.json candidate.json
//	aqperf -goldens . -dir .perfgate                  # every BENCH_*.json
//	aqperf -tol latency=0.02,breakdown.msync=0.05 a.json b.json
//	aqperf -goldens . -dir out -history BENCH_history.jsonl -label pr-42
//
// Exit status: 0 all metrics within tolerance (or only improvements with
// -allow-improved), 1 regression/drift detected, 2 usage or I/O error.
//
// Every gated comparison can be appended to a BENCH_history.jsonl
// trajectory (-history), making the repository's perf story across PRs
// machine-readable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"aquila/internal/obs"
	"aquila/internal/obs/perfgate"
)

func main() {
	var (
		goldens = flag.String("goldens", "", "directory holding the golden BENCH_*.json reports")
		dir     = flag.String("dir", "", "directory holding the candidate reports to gate (with -goldens)")
		tolS    = flag.String("tol", "", "per-metric relative tolerances: metric=frac,... (families: latency=0.02, breakdown=0.05); default exact")
		history = flag.String("history", "", "append each gated report to this BENCH_history.jsonl trajectory")
		label   = flag.String("label", "", "label for history records (CI job, PR id)")
		allowUp = flag.Bool("allow-improved", false, "exit 0 when the only drifts are improvements (regenerate goldens to absorb them)")
		verbose = flag.Bool("v", false, "print every metric, not only drifted ones")
	)
	flag.Parse()

	tol, err := perfgate.ParseTolerances(*tolS)
	if err != nil {
		fatalf("%v", err)
	}

	type pair struct{ name, golden, cand string }
	var pairs []pair
	switch {
	case *goldens != "" && *dir != "":
		if flag.NArg() != 0 {
			fatalf("positional reports and -goldens/-dir are mutually exclusive")
		}
		matches, err := filepath.Glob(filepath.Join(*goldens, "BENCH_*.json"))
		if err != nil {
			fatalf("list goldens: %v", err)
		}
		if len(matches) == 0 {
			fatalf("no BENCH_*.json goldens in %s", *goldens)
		}
		sort.Strings(matches)
		for _, g := range matches {
			base := filepath.Base(g)
			pairs = append(pairs, pair{name: base, golden: g, cand: filepath.Join(*dir, base)})
		}
	case flag.NArg() == 2:
		pairs = append(pairs, pair{name: filepath.Base(flag.Arg(1)), golden: flag.Arg(0), cand: flag.Arg(1)})
	default:
		fmt.Fprintln(os.Stderr, "usage: aqperf [flags] golden.json candidate.json | aqperf [flags] -goldens DIR -dir DIR")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ts := time.Now().UTC().Format(time.RFC3339)
	var recs []perfgate.HistoryRecord
	worst := perfgate.OK
	for _, pr := range pairs {
		golden, err := obs.ReadReportFile(pr.golden)
		if err != nil {
			fatalf("read golden: %v", err)
		}
		cand, err := obs.ReadReportFile(pr.cand)
		if err != nil {
			fatalf("read candidate %s: %v (regenerate with aquila-bench -report-dir)", pr.cand, err)
		}
		deltas := perfgate.Compare(golden, cand, tol)
		status := perfgate.Worst(deltas)
		if status > worst {
			worst = status
		}
		drifted := perfgate.NotOK(deltas)
		fmt.Printf("== %s: %s (%d metrics, %d drifted) ==\n",
			cand.Experiment, status, len(deltas), len(drifted))
		show := drifted
		if *verbose {
			show = deltas
		}
		for _, d := range show {
			fmt.Printf("  %s\n", d)
		}
		if *history != "" {
			recs = append(recs, perfgate.NewHistoryRecord(cand, deltas, *label, ts))
		}
	}
	if *history != "" {
		if err := perfgate.AppendHistory(*history, recs); err != nil {
			fatalf("append history: %v", err)
		}
		fmt.Printf("# %d record(s) appended to %s\n", len(recs), *history)
	}
	switch {
	case worst == perfgate.OK:
		fmt.Println("# perf gate: clean")
	case worst == perfgate.Improved && *allowUp:
		fmt.Println("# perf gate: improvements only (regenerate goldens with `make bench-reports` to absorb them)")
	default:
		fmt.Println("# perf gate: FAILED — candidate drifted from goldens (if intentional, regenerate with `make bench-reports`)")
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aqperf: "+format+"\n", args...)
	os.Exit(2)
}
