// Command ycsb drives the YCSB workloads against either key-value store
// (the RocksDB-like LSM or the Kreon-like store) over any of the worlds:
//
//	ycsb -store lsm -engine aquila -device pmem -workload C -threads 8
//	ycsb -store kreon -engine kmmap -device nvme -workload A
//
// Throughput and latency are simulated-time measurements at the paper's
// 2.4 GHz testbed clock.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aquila"
	"aquila/internal/kvs/kreon"
	"aquila/internal/kvs/lsm"
	"aquila/internal/metrics"
	"aquila/internal/obs"
	"aquila/internal/ycsb"
)

func main() {
	var (
		store    = flag.String("store", "lsm", "store: lsm (RocksDB-like) or kreon")
		engine   = flag.String("engine", "aquila", "world: aquila, mmap, direct, kmmap (kreon only)")
		device   = flag.String("device", "pmem", "device: pmem or nvme")
		workload = flag.String("workload", "C", "YCSB workload A-F")
		threads  = flag.Int("threads", 1, "client threads")
		records  = flag.Uint64("records", 20000, "dataset records (1 KB values)")
		ops      = flag.Uint64("ops", 5000, "operations per thread")
		cacheMB  = flag.Uint64("cache", 32, "DRAM cache size (MB)")
		dist     = flag.String("dist", "uniform", "distribution: uniform, zipfian, latest")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
		metricsJ = flag.String("metrics-json", "", "write a metrics registry snapshot (JSON) to this file")
	)
	flag.Parse()

	var tracer *obs.Tracer
	var reg *obs.Registry
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	if *metricsJ != "" {
		reg = obs.NewRegistry()
	}

	dev := aquila.DevicePMem
	if *device == "nvme" {
		dev = aquila.DeviceNVMe
	}
	var mode aquila.Mode
	switch *engine {
	case "aquila":
		mode = aquila.ModeAquila
	case "mmap", "kmmap":
		mode = aquila.ModeLinuxMmap
	case "direct":
		mode = aquila.ModeLinuxDirect
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(1)
	}
	distribution := ycsb.Uniform
	switch *dist {
	case "zipfian":
		distribution = ycsb.Zipfian
	case "latest":
		distribution = ycsb.Latest
	}
	w := ycsb.Workload((*workload)[0])

	cache := *cacheMB << 20
	sys := aquila.New(aquila.Options{
		Mode: mode, Device: dev, CacheBytes: cache,
		DeviceBytes: *records*4096 + 512<<20, Seed: *seed,
		Tracer: tracer, Registry: reg,
	})

	var kv ycsb.KV
	sys.Do(func(p *aquila.Proc) {
		switch *store {
		case "lsm":
			lsmMode := lsm.IOMmap
			if mode == aquila.ModeLinuxDirect {
				lsmMode = lsm.IODirectCached
			}
			db := lsm.Open(p, sys.Sim, lsm.Options{
				NS: sys.NS, Mode: lsmMode, BlockCacheBytes: cache,
				DisableWAL: true, Seed: *seed,
				Registry: reg, MetricsLabel: sys.TraceLabel(),
			})
			db.BulkLoad(p, *records, 1000)
			kv = db
		case "kreon":
			size := uint64(4096) + *records*1100 + 16<<20 + *records*400
			var db *kreon.DB
			kopts := kreon.Options{LogBytes: *records*1100 + 16<<20, IndexBytes: *records*400 + 16<<20}
			if *engine == "kmmap" {
				f := sys.Host.FS.Create(p, "kreon.data",
					4096+kopts.LogBytes+kopts.IndexBytes)
				db = kreon.OpenWithMapping(p, kopts, sys.Host.MmapKmmap(p, f,
					4096+kopts.LogBytes+kopts.IndexBytes))
			} else {
				db = kreon.Open(p, kreon.Options{NS: sys.NS,
					LogBytes: kopts.LogBytes, IndexBytes: kopts.IndexBytes})
			}
			for i := uint64(0); i < *records; i++ {
				db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 1000))
			}
			db.Msync(p)
			kv = db
			_ = size
		default:
			fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
			os.Exit(1)
		}
	})

	lats := make([]*metrics.Histogram, *threads)
	var done uint64
	elapsed := sys.Run(*threads, func(t int, p *aquila.Proc) {
		g := ycsb.NewGenerator(ycsb.Config{
			Workload: w, Records: *records, ValueSize: 1000,
			Distribution: distribution, Seed: *seed + int64(t)*13,
		})
		res := ycsb.RunThread(p, kv, g, *ops)
		lats[t] = res.Lat
		done += res.Ops
	})
	all := metrics.NewHistogram()
	for _, l := range lats {
		if l != nil {
			all.Merge(l)
		}
	}
	fmt.Printf("store=%s engine=%s device=%s workload=%c threads=%d\n",
		*store, *engine, *device, w, *threads)
	fmt.Printf("ops=%d  throughput=%.1f Kops/s  avg=%.2fus  p99=%.2fus  p99.9=%.2fus\n",
		done, aquila.ThroughputOpsPerSec(done, elapsed)/1e3,
		all.Mean()/2400, float64(all.P99())/2400, float64(all.P999())/2400)

	if reg != nil {
		wl := fmt.Sprintf("%c", w)
		reg.Histogram("ycsb_op_cycles",
			obs.L("workload", wl), obs.L("store", *store)).Merge(all)
		reg.Counter("ycsb_ops", obs.L("workload", wl)).Set(done)
		sys.PublishStats()
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsJ != "" {
		if err := writeTo(*metricsJ, reg.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsJ)
	}
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
