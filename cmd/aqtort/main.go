// Command aqtort is the torture-harness driver: it generates seeded random
// workloads over every world/device combination (internal/torture), runs the
// oracle battery after each, double-runs plans to prove determinism, and
// delta-debugs any failure down to a minimal JSON repro.
//
// Typical uses:
//
//	aqtort -bank 64 -dup -shrink        # CI: fixed seed bank, shrink failures
//	aqtort -seed 7 -v                   # one seed, verbose
//	aqtort -sched 12345 -bank 16        # force a perturbed schedule
//	aqtort -repro testdata/repros/x.json  # replay a shrunk repro
//	aqtort -prove-unsafe                # oracle soundness: planted bug must be caught
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aquila/internal/torture"
)

func main() {
	var (
		seed     = flag.Int64("seed", -1, "run the plan generated from this single seed")
		bank     = flag.Int("bank", 0, "run the fixed seed bank 0..N-1")
		ops      = flag.Int("ops", 80, "ops per generated plan")
		dup      = flag.Bool("dup", false, "run each plan twice and require identical fingerprints")
		shrink   = flag.Bool("shrink", false, "auto-shrink failures and write repros")
		budget   = flag.Int("shrink-budget", 800, "max Execute calls per shrink")
		repro    = flag.String("repro", "", "replay a repro plan from this JSON file")
		reproDir = flag.String("repro-dir", filepath.Join("internal", "torture", "testdata", "repros"),
			"directory shrunk repros are written to")
		sched   = flag.Uint64("sched", 0, "override SchedPerturb on generated plans (0: keep the plan's own)")
		prove   = flag.Bool("prove-unsafe", false, "run the UnsafeMsyncAtSubmit proof plan; the oracle MUST catch it")
		verbose = flag.Bool("v", false, "verbose per-run output")
	)
	flag.Parse()

	failed := false

	if *repro != "" {
		pl, err := torture.Load(*repro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aqtort: %v\n", err)
			os.Exit(2)
		}
		o := torture.Execute(pl)
		report(fmt.Sprintf("repro %s", *repro), pl, o, true)
		if o.Failed() {
			os.Exit(1)
		}
		return
	}

	if *prove {
		pl := torture.ProofPlan()
		o := torture.Execute(pl)
		if !o.Failed() {
			fmt.Fprintln(os.Stderr, "aqtort: PROOF FAILURE: the oracle battery did NOT catch "+
				"UnsafeMsyncAtSubmit — the torture harness is vacuous")
			os.Exit(1)
		}
		res := torture.Shrink(pl, *budget)
		path := filepath.Join(*reproDir, "unsafe_msync.json")
		if err := res.Plan.Save(path); err != nil {
			fmt.Fprintf(os.Stderr, "aqtort: writing proof repro: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("proof: unsafe msync caught (%d failure(s)); shrunk %d -> %d ops in %d runs; repro: %s\n",
			len(o.Failures), res.FromOps, res.ToOps, res.Runs, path)
		if *verbose {
			report("proof", res.Plan, res.Outcome, true)
		}
	}

	runOne := func(s int64) {
		pl := torture.Generate(s, *ops)
		if *sched != 0 {
			pl.SchedPerturb = *sched
		}
		o := torture.Execute(pl)
		if *dup && !o.Failed() {
			o2 := torture.Execute(pl)
			if o2.Fingerprint != o.Fingerprint {
				o.Failures = append(o.Failures, fmt.Sprintf(
					"non-deterministic: fingerprint %016x then %016x", o.Fingerprint, o2.Fingerprint))
			}
		}
		report(fmt.Sprintf("seed %d", s), pl, o, *verbose || o.Failed())
		if !o.Failed() {
			return
		}
		failed = true
		if !*shrink {
			return
		}
		res := torture.Shrink(pl, *budget)
		path := filepath.Join(*reproDir, fmt.Sprintf("seed_%d.json", s))
		if err := res.Plan.Save(path); err != nil {
			fmt.Fprintf(os.Stderr, "aqtort: writing repro: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("  shrunk %d -> %d ops (%d runs); repro: %s\n",
			res.FromOps, res.ToOps, res.Runs, path)
	}

	switch {
	case *seed >= 0:
		runOne(*seed)
	case *bank > 0:
		for s := 0; s < *bank; s++ {
			runOne(int64(s))
		}
		if !failed {
			fmt.Printf("bank: %d/%d seeds ok\n", *bank, *bank)
		}
	case !*prove:
		flag.Usage()
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func report(tag string, pl *torture.Plan, o *torture.Outcome, show bool) {
	if !show {
		return
	}
	status := "ok"
	if o.Failed() {
		status = fmt.Sprintf("FAIL (%d)", len(o.Failures))
	}
	crash := ""
	if o.Crashed {
		crash = fmt.Sprintf(" crash@%d", o.CrashCycle)
	}
	fmt.Printf("%s: %s %s/%s threads=%d perturb=%d ops=%d acked=%d%s cycles=%d fp=%016x\n",
		tag, status, pl.World, pl.Device, pl.Threads, pl.SchedPerturb,
		o.OpsRun, o.Acked, crash, o.Cycles, o.Fingerprint)
	for _, f := range o.Failures {
		fmt.Printf("  - %s\n", f)
	}
	if o.EventCount > 0 {
		fmt.Printf("  (%d fault events)\n", o.EventCount)
	}
}
