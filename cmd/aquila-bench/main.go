// Command aquila-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	aquila-bench -list
//	aquila-bench -exp fig5a,fig7 [-scale 1.0]
//	aquila-bench -exp all
//	aquila-bench -exp fig8a -trace trace.json -metrics-json metrics.json
//
// Every experiment prints the same rows/series the paper reports, plus notes
// stating the paper's headline numbers next to the measured ones. Scale 1.0
// is the default scaled-down configuration documented in EXPERIMENTS.md;
// smaller scales run faster with coarser numbers.
//
// With -trace, every simulated world any experiment boots records
// cycle-attributed spans into one Chrome trace-event file (open in
// chrome://tracing or ui.perfetto.dev). With -metrics-json, all counters,
// histograms and cycle breakdowns are snapshotted to one JSON file. With
// -report-dir, each experiment that supports it writes a machine-readable
// BENCH_<exp>.json report. All three are zero-cost when absent: the
// simulation runs bit-identically with and without them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"aquila/internal/harness"
	"aquila/internal/obs"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 1.0, "experiment scale (dataset/ops multiplier)")
		format    = flag.String("format", "table", "output format: table or csv")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of all runs to this file")
		metricsJ  = flag.String("metrics-json", "", "write a metrics registry snapshot (JSON) to this file")
		reportDir = flag.String("report-dir", "", "write BENCH_<exp>.json reports into this directory")
		wallClock = flag.Bool("host-wallclock", false,
			"also print host wall-clock time per experiment (host-side only; simulated results never depend on it)")
	)
	flag.Parse()

	var tracer *obs.Tracer
	var reg *obs.Registry
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	if *metricsJ != "" || *reportDir != "" {
		reg = obs.NewRegistry()
	}
	if tracer != nil || reg != nil {
		harness.Instrument(tracer, reg)
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n         paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		e, ok := harness.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("# %s — %s\n# paper: %s\n", e.ID, e.Title, e.Paper)
		var start time.Time
		if *wallClock {
			start = time.Now()
		}
		for _, r := range e.Run(*scale) {
			if *format == "csv" {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
			if *reportDir != "" && r.Report != nil {
				path := filepath.Join(*reportDir, "BENCH_"+r.ID+".json")
				if err := r.Report.WriteFile(path); err != nil {
					fmt.Fprintf(os.Stderr, "write report: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("# report written to %s (breakdown coverage %.1f%%)\n",
					path, 100*r.Report.Coverage())
			}
		}
		// The cost figure that matters is deterministic simulated time, not
		// how fast the host ran the discrete-event loop.
		fmt.Printf("# (%.1f simulated Mcycles", float64(harness.TakeSimCycles())/1e6)
		if *wallClock {
			fmt.Printf(", %s host wall-clock", time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf(")\n\n")
	}

	if reg != nil {
		harness.PublishAll()
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsJ != "" {
		if err := writeTo(*metricsJ, reg.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "write metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# metrics written to %s\n", *metricsJ)
	}
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
