// Command aquila-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	aquila-bench -list
//	aquila-bench -exp fig5a,fig7 [-scale 1.0]
//	aquila-bench -exp all
//
// Every experiment prints the same rows/series the paper reports, plus notes
// stating the paper's headline numbers next to the measured ones. Scale 1.0
// is the default scaled-down configuration documented in EXPERIMENTS.md;
// smaller scales run faster with coarser numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aquila/internal/harness"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiments and exit")
		exp    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale  = flag.Float64("scale", 1.0, "experiment scale (dataset/ops multiplier)")
		format = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n         paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		e, ok := harness.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("# %s — %s\n# paper: %s\n", e.ID, e.Title, e.Paper)
		start := time.Now()
		for _, r := range e.Run(*scale) {
			if *format == "csv" {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
		}
		fmt.Printf("# (%s wall-clock)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
