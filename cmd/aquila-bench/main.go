// Command aquila-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	aquila-bench -list
//	aquila-bench -exp fig5a,fig7 [-scale 1.0]
//	aquila-bench -exp all
//	aquila-bench -exp fig8a -trace trace.json -metrics-json metrics.json
//
// Every experiment prints the same rows/series the paper reports, plus notes
// stating the paper's headline numbers next to the measured ones. Scale 1.0
// is the default scaled-down configuration documented in EXPERIMENTS.md;
// smaller scales run faster with coarser numbers.
//
// With -trace, every simulated world any experiment boots records
// cycle-attributed spans into one Chrome trace-event file (open in
// chrome://tracing or ui.perfetto.dev). With -metrics-json, all counters,
// histograms and cycle breakdowns are snapshotted to one JSON file. With
// -report-dir, each experiment that supports it writes a machine-readable
// BENCH_<exp>.json report. With -profile-dir, every experiment writes a
// hierarchical cycle profile (PROF_<exp>.json + PROF_<exp>.folded, the
// latter flame-graph ready); -profile concatenates all experiments' folded
// stacks into one file. All are zero-cost when absent: the simulation runs
// bit-identically with and without them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"aquila/internal/harness"
	"aquila/internal/obs"
	"aquila/internal/obs/profile"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 1.0, "experiment scale (dataset/ops multiplier)")
		format    = flag.String("format", "table", "output format: table or csv")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of all runs to this file")
		metricsJ  = flag.String("metrics-json", "", "write a metrics registry snapshot (JSON) to this file")
		reportDir = flag.String("report-dir", "", "write BENCH_<exp>.json reports into this directory")
		profOut   = flag.String("profile", "", "write one folded flame-graph stack file covering all experiments")
		profDir   = flag.String("profile-dir", "", "write per-experiment PROF_<exp>.json and PROF_<exp>.folded profiles into this directory")
		profTop   = flag.Int("profile-top", 0, "print the top-N call paths by exclusive cycles after each experiment")
		wallClock = flag.Bool("host-wallclock", false,
			"also print host wall-clock time per experiment (host-side only; simulated results never depend on it)")
	)
	flag.Parse()

	var tracer *obs.Tracer
	var reg *obs.Registry
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	if *metricsJ != "" || *reportDir != "" {
		reg = obs.NewRegistry()
	}
	if tracer != nil || reg != nil {
		harness.Instrument(tracer, reg)
	}
	var prof *profile.Profiler
	if *profOut != "" || *profDir != "" || *profTop > 0 {
		prof = profile.New()
		harness.InstrumentProfiler(prof)
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n         paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else {
		// Validate every id before running anything: a typo in a long
		// multi-experiment run must fail fast, not after an hour.
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := harness.Find(id); !ok {
				var names []string
				for _, e := range harness.All() {
					names = append(names, e.ID)
				}
				fmt.Fprintf(os.Stderr, "aquila-bench: unknown experiment %q; valid experiments: %s\n",
					id, strings.Join(names, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var allFolded strings.Builder
	for _, id := range ids {
		e, _ := harness.Find(id)
		fmt.Printf("# %s — %s\n# paper: %s\n", e.ID, e.Title, e.Paper)
		var start time.Time
		if *wallClock {
			start = time.Now()
		}
		for _, r := range e.Run(*scale) {
			if *format == "csv" {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
			if r.Report != nil && len(r.Report.Extra) > 0 {
				// Headline scalars the perf gate tracks (huge-page hit
				// ratio, fault reductions, component ratios), in the
				// deterministic sorted-key order the JSON report uses.
				keys := make([]string, 0, len(r.Report.Extra))
				for k := range r.Report.Extra {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				fmt.Printf("# extra:")
				for _, k := range keys {
					fmt.Printf(" %s=%.4g", k, r.Report.Extra[k])
				}
				fmt.Println()
			}
			if *reportDir != "" && r.Report != nil {
				path := filepath.Join(*reportDir, "BENCH_"+r.ID+".json")
				if err := r.Report.WriteFile(path); err != nil {
					fmt.Fprintf(os.Stderr, "write report: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("# report written to %s (breakdown coverage %.1f%%)\n",
					path, 100*r.Report.Coverage())
			}
		}
		// The cost figure that matters is deterministic simulated time, not
		// how fast the host ran the discrete-event loop.
		cycles := harness.TakeSimCycles()
		fmt.Printf("# (%.1f simulated Mcycles", float64(cycles)/1e6)
		if *wallClock {
			fmt.Printf(", %s host wall-clock", time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf(")\n\n")
		if prof != nil {
			finishProfile(prof, e.ID, cycles, *profDir, *profTop, &allFolded, *profOut != "")
		}
	}

	if reg != nil {
		harness.PublishAll()
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsJ != "" {
		if err := writeTo(*metricsJ, reg.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "write metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# metrics written to %s\n", *metricsJ)
	}
	if *profOut != "" {
		if err := os.WriteFile(*profOut, []byte(allFolded.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# folded stacks written to %s (feed to flamegraph.pl or speedscope)\n", *profOut)
	}
}

// finishProfile drains the profiler after one experiment: validates the call
// tree against the experiment's simulated cycles, writes the per-experiment
// artifacts, and resets for the next experiment.
func finishProfile(prof *profile.Profiler, id string, cycles uint64,
	dir string, top int, folded *strings.Builder, wantFolded bool) {
	prof.SetTotalCycles(cycles)
	if err := prof.Reconcile(); err != nil {
		fmt.Fprintf(os.Stderr, "profile reconcile (%s): %v\n", id, err)
		os.Exit(1)
	}
	if top > 0 && !prof.Empty() {
		fmt.Printf("# top %d call paths by exclusive cycles:\n", top)
		if err := prof.WriteTop(os.Stdout, top); err != nil {
			fmt.Fprintf(os.Stderr, "write top table: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if wantFolded {
		if err := prof.WriteFolded(folded); err != nil {
			fmt.Fprintf(os.Stderr, "fold profile: %v\n", err)
			os.Exit(1)
		}
	}
	if dir != "" && !prof.Empty() {
		base := filepath.Join(dir, "PROF_"+id)
		if err := prof.WriteFiles(base); err != nil {
			fmt.Fprintf(os.Stderr, "write profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# profile written to %s.json and %s.folded\n", base, base)
	}
	prof.Reset()
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
