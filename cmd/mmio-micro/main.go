// Command mmio-micro runs the paper's page-fault microbenchmark (§5):
// threads issuing loads at page-granular random offsets within a mapped
// region, with every access taking a page fault.
//
//	mmio-micro -mode aquila -device pmem -threads 16 -cache 64 -dataset 768
//	mmio-micro -mode mmap -shared=false ...
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"aquila"
	"aquila/internal/metrics"
	"aquila/internal/obs"
	"aquila/internal/obs/profile"
)

func main() {
	var (
		modeS    = flag.String("mode", "aquila", "world: aquila or mmap")
		device   = flag.String("device", "pmem", "device: pmem or nvme")
		threads  = flag.Int("threads", 1, "threads")
		cacheMB  = flag.Uint64("cache", 32, "DRAM cache (MB)")
		dataMB   = flag.Uint64("dataset", 128, "dataset size (MB)")
		ops      = flag.Int("ops", 10000, "operations per thread")
		shared   = flag.Bool("shared", true, "one shared file (vs per-thread files)")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
		metricsJ = flag.String("metrics-json", "", "write a metrics registry snapshot (JSON) to this file")
		profOut  = flag.String("profile", "", "write the run's folded flame-graph stacks to this file")
		profDir  = flag.String("profile-dir", "", "write profile.json and profile.folded into this directory")
		profTop  = flag.Int("profile-top", 0, "print the top-N call paths by exclusive cycles")
		crashP   = flag.String("crash-plan", "", "JSON crash plan: kill the run at the planned point, capture the durable image, verify recovery")
	)
	flag.Parse()

	var tracer *obs.Tracer
	var reg *obs.Registry
	if *trace != "" {
		tracer = obs.NewTracer()
	}
	if *metricsJ != "" {
		reg = obs.NewRegistry()
	}
	var prof *profile.Profiler
	if *profOut != "" || *profDir != "" || *profTop > 0 {
		prof = profile.New()
	}

	mode := aquila.ModeAquila
	switch *modeS {
	case "aquila":
	case "mmap":
		mode = aquila.ModeLinuxMmap
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeS)
		os.Exit(1)
	}
	dev := aquila.DevicePMem
	if *device == "nvme" {
		dev = aquila.DeviceNVMe
	}
	cache := *cacheMB << 20
	dataset := *dataMB << 20

	opts := aquila.Options{
		Mode: mode, Device: dev, CacheBytes: cache,
		DeviceBytes: dataset + 128<<20, Seed: *seed,
		Tracer: tracer, Registry: reg,
	}
	if prof != nil {
		// Assign only when profiling: a typed-nil *Profiler in the interface
		// field would defeat the engine's nil check.
		opts.Profiler = prof
	}
	sys := aquila.New(opts)
	if *crashP != "" {
		plan, err := aquila.LoadCrashPlan(*crashP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crash plan: %v\n", err)
			os.Exit(1)
		}
		sys.InjectCrash(plan)
	}
	maps := make([]aquila.Mapping, *threads)
	sys.Do(func(p *aquila.Proc) {
		if *shared {
			f := sys.NS.Create(p, "micro", dataset)
			m := sys.NS.Mmap(p, f, dataset)
			m.Advise(p, aquila.AdviceRandom)
			for t := range maps {
				maps[t] = m
			}
		} else {
			per := dataset / uint64(*threads) &^ 4095
			for t := range maps {
				f := sys.NS.Create(p, fmt.Sprintf("micro-%d", t), per)
				maps[t] = sys.NS.Mmap(p, f, per)
				maps[t].Advise(p, aquila.AdviceRandom)
			}
		}
	})
	lats := make([]*metrics.Histogram, *threads)
	var total uint64
	elapsed := sys.Run(*threads, func(t int, p *aquila.Proc) {
		lat := metrics.NewHistogram()
		lats[t] = lat
		// Per-thread generator derived from the CLI seed: never the global
		// math/rand source, so two runs with the same -seed are bit-identical
		// (the detrand rule, applied here by convention — cmd/ is host-side).
		rng := rand.New(rand.NewSource(*seed + int64(t)*101))
		buf := make([]byte, 8)
		pages := maps[t].Size() / 4096
		for i := 0; i < *ops; i++ {
			pg := uint64(rng.Int63n(int64(pages)))
			t0 := p.Now()
			maps[t].Load(p, pg*4096, buf)
			lat.Record(p.Now() - t0)
		}
		total += uint64(*ops)
	})
	if info := sys.Crashed(); info != nil {
		img := sys.CaptureCrash()
		fmt.Printf("crashed: cycle=%d reason=%s\n", info.Cycle, info.Reason)
		fmt.Printf("durable image: fingerprint=%#x dropped-blocks=%d torn-blocks=%d\n",
			img.Fingerprint, img.DroppedBlocks, img.TornBlocks)
		ropts := opts
		ropts.Tracer, ropts.Registry, ropts.Profiler = nil, nil, nil
		rec := aquila.Recover(ropts, img)
		verdict := "ok"
		if rec.RT != nil {
			if err := rec.RT.CheckInvariants(); err != nil {
				verdict = err.Error()
			}
		}
		fmt.Printf("recovery: booted from durable image, invariants %s\n", verdict)
		return
	}
	all := metrics.NewHistogram()
	for _, l := range lats {
		all.Merge(l)
	}
	fmt.Printf("mode=%s device=%s threads=%d shared=%v cache=%dMB dataset=%dMB\n",
		*modeS, *device, *threads, *shared, *cacheMB, *dataMB)
	fmt.Printf("faults=%d  throughput=%.1f Kops/s  avg=%.0f cycles (%.2fus)  p99=%.2fus  p99.9=%.2fus\n",
		total, aquila.ThroughputOpsPerSec(total, elapsed)/1e3,
		all.Mean(), all.Mean()/2400, float64(all.P99())/2400, float64(all.P999())/2400)
	if sys.RT != nil {
		fmt.Printf("aquila: major=%d minor=%d wp=%d evictions=%d shootdown-batches=%d\n",
			sys.RT.Stats.MajorFaults, sys.RT.Stats.MinorFaults, sys.RT.Stats.WPFaults,
			sys.RT.Stats.Evictions, sys.RT.Stats.ShootdownBatches)
	}
	if reg != nil {
		reg.Histogram("fault_latency_cycles", obs.L("mode", *modeS)).Merge(all)
		reg.Counter("micro_faults").Set(total)
		if tracer != nil {
			reg.Counter("aq.obs.spans_dropped").Set(tracer.Dropped())
		}
		sys.PublishStats()
	}
	if prof != nil {
		prof.SetTotalCycles(sys.Sim.Now())
		if err := prof.Reconcile(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *profTop > 0 {
			fmt.Printf("top %d call paths by exclusive cycles:\n", *profTop)
			if err := prof.WriteTop(os.Stdout, *profTop); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *profOut != "" {
			if err := writeTo(*profOut, prof.WriteFolded); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("folded stacks written to %s (feed to flamegraph.pl or speedscope)\n", *profOut)
		}
		if *profDir != "" {
			base := filepath.Join(*profDir, "profile")
			if err := prof.WriteFiles(base); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("profile written to %s.json and %s.folded\n", base, base)
		}
	}
	if *trace != "" {
		if err := writeTo(*trace, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *trace)
	}
	if *metricsJ != "" {
		if err := writeTo(*metricsJ, reg.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsJ)
	}
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
