// Command aqlint runs Aquila's custom static-analysis suite over the repo:
// the determinism, cycle-accounting, span-pairing, error-propagation,
// durability-pairing, crash-unwind and frame-lease invariants the goldens
// and the crash sweep depend on (see DESIGN.md "Static invariants").
//
// Usage:
//
//	aqlint ./...            # analyze packages (exit 1 on findings)
//	aqlint -list            # describe the analyzers
//	aqlint -only detrand ./internal/core/...
//	aqlint -tags aqdebug ./...   # analyze the aqdebug build variant
//	aqlint -json ./...      # machine-readable findings (CI artifact)
//
// Findings are suppressed per line with `//aqlint:ignore <name> -- reason`
// (and `//aqlint:sorted -- reason` for maporder). Suppressed counts are
// reported so escapes stay visible in CI logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"aquila/internal/analysis"
)

// jsonFinding is the machine-readable shape of one finding (-json mode).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed int           `json:"suppressed"`
	Packages   int           `json:"packages"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "describe the analyzers and exit")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		tags     = flag.String("tags", "", "build tags to analyze under (as for go build -tags)")
		jsonMode = flag.Bool("json", false, "emit findings as one JSON document on stdout")
	)
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "aqlint: no analyzer matches -only %q\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, *tags, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlint: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		// A silent empty match would make a broken loader look like a clean
		// lint run in CI.
		fmt.Fprintf(os.Stderr, "aqlint: no packages match %v\n", patterns)
		os.Exit(2)
	}
	res, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonMode {
		rep := jsonReport{
			Findings:   make([]jsonFinding, 0, len(res.Findings)),
			Suppressed: res.Suppressed,
			Packages:   len(pkgs),
		}
		for _, f := range res.Findings {
			rep.Findings = append(rep.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				Package:  f.Pkg,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "aqlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
	}
	if res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "aqlint: %d finding(s) suppressed by //aqlint directives\n", res.Suppressed)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "aqlint: %d finding(s) in %d package(s)\n", len(res.Findings), len(pkgs))
		os.Exit(1)
	}
}
