// Command aqlint runs Aquila's custom static-analysis suite over the repo:
// the determinism, cycle-accounting, span-pairing and error-propagation
// invariants the goldens depend on (see DESIGN.md "Static invariants").
//
// Usage:
//
//	aqlint ./...            # analyze packages (exit 1 on findings)
//	aqlint -list            # describe the analyzers
//	aqlint -only detrand ./internal/core/...
//
// Findings are suppressed per line with `//aqlint:ignore <name> -- reason`
// (and `//aqlint:sorted -- reason` for maporder). Suppressed counts are
// reported so escapes stay visible in CI logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aquila/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "describe the analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "aqlint: no analyzer matches -only %q\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlint: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		// A silent empty match would make a broken loader look like a clean
		// lint run in CI.
		fmt.Fprintf(os.Stderr, "aqlint: no packages match %v\n", patterns)
		os.Exit(2)
	}
	res, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "aqlint: %d finding(s) suppressed by //aqlint directives\n", res.Suppressed)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "aqlint: %d finding(s) in %d package(s)\n", len(res.Findings), len(pkgs))
		os.Exit(1)
	}
}
