package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// SchemaVersion identifies the PROF_<exp>.json layout; bump on incompatible
// changes.
const SchemaVersion = 1

// JSONNode is the exported form of one call-tree node. Children are a
// name-sorted array (not a map) so the encoding is deterministic and
// order-preserving for downstream tooling.
type JSONNode struct {
	Name            string            `json:"name"`
	Calls           uint64            `json:"calls"`
	InclusiveCycles uint64            `json:"inclusive_cycles"`
	ExclusiveCycles uint64            `json:"exclusive_cycles"`
	Events          map[string]uint64 `json:"events,omitempty"`
	Children        []*JSONNode       `json:"children,omitempty"`
}

// JSONTrack is one process track's exported tree.
type JSONTrack struct {
	Track string `json:"track"`
	CPU   int    `json:"cpu"`
	// CoveredCycles is the root inclusive total: simulated time inside this
	// track's instrumented spans.
	CoveredCycles uint64    `json:"covered_cycles"`
	Root          *JSONNode `json:"root"`
}

// JSONProfile is the top-level PROF_<exp>.json document.
type JSONProfile struct {
	Schema int `json:"schema"`
	// TotalCycles is the run's simulated-cycle total (harness.TakeSimCycles);
	// Coverage is the instrumented share: max over tracks of covered/total.
	TotalCycles uint64      `json:"total_cycles"`
	Coverage    float64     `json:"coverage"`
	Tracks      []JSONTrack `json:"tracks"`
}

func exportNode(n *node) *JSONNode {
	out := &JSONNode{
		Name:            n.name,
		Calls:           n.calls,
		InclusiveCycles: n.incl,
		ExclusiveCycles: n.excl(),
	}
	if len(n.events) > 0 {
		out.Events = make(map[string]uint64, len(n.events))
		for k, v := range n.events {
			out.Events[k] = v
		}
	}
	for _, c := range n.sortedChildren() {
		out.Children = append(out.Children, exportNode(c))
	}
	return out
}

// Export builds the JSON document form of the profile.
func (pr *Profiler) Export() *JSONProfile {
	out := &JSONProfile{Schema: SchemaVersion, TotalCycles: pr.totalCycles}
	for _, t := range pr.sortedTracks() {
		out.Tracks = append(out.Tracks, JSONTrack{
			Track:         t.name,
			CPU:           t.cpu,
			CoveredCycles: t.root.incl,
			Root:          exportNode(&t.root),
		})
		if pr.totalCycles > 0 {
			if c := float64(t.root.incl) / float64(pr.totalCycles); c > out.Coverage {
				out.Coverage = c
			}
		}
	}
	return out
}

// WriteJSON encodes the profile as indented JSON. Deterministic: tracks and
// children are sorted, and encoding/json sorts the event maps.
func (pr *Profiler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pr.Export())
}

// WriteFolded emits the folded flame-graph form: one line per node holding
// exclusive cycles, "track;outer;...;leaf cycles", in lexicographic stack
// order. Zero-weight interior lines are omitted (flamegraph.pl reconstructs
// them from their children). Feed the output to flamegraph.pl or paste it
// into speedscope.app.
func (pr *Profiler) WriteFolded(w io.Writer) error {
	for _, t := range pr.sortedTracks() {
		if err := foldNode(w, t.name, &t.root, true); err != nil {
			return err
		}
	}
	return nil
}

func foldNode(w io.Writer, stack string, n *node, isRoot bool) error {
	// The root's exclusive cycles are the track's un-nested top-level time;
	// for non-root nodes the stack already includes the node name.
	if e := n.excl(); e > 0 {
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, e); err != nil {
			return err
		}
	}
	for _, c := range n.sortedChildren() {
		if err := foldNode(w, stack+";"+c.name, c, false); err != nil {
			return err
		}
	}
	return nil
}

// flatRow is one row of the top-N table: a node identified by its full path.
type flatRow struct {
	track string
	path  string
	n     *node
}

func (pr *Profiler) flatten() []flatRow {
	var rows []flatRow
	var walk func(trk, prefix string, n *node)
	walk = func(trk, prefix string, n *node) {
		rows = append(rows, flatRow{track: trk, path: prefix + n.name, n: n})
		for _, c := range n.sortedChildren() {
			walk(trk, prefix+n.name+";", c)
		}
	}
	for _, t := range pr.sortedTracks() {
		for _, c := range t.root.sortedChildren() {
			walk(t.name, "", c)
		}
	}
	return rows
}

// WriteTop renders the n hottest call paths by exclusive cycles (ties break
// by path, so the table is deterministic), with per-path events inline.
func (pr *Profiler) WriteTop(w io.Writer, n int) error {
	rows := pr.flatten()
	sort.Slice(rows, func(i, j int) bool {
		ei, ej := rows[i].n.excl(), rows[j].n.excl()
		if ei != ej {
			return ei > ej
		}
		if rows[i].track != rows[j].track {
			return rows[i].track < rows[j].track
		}
		return rows[i].path < rows[j].path
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	if _, err := fmt.Fprintf(w, "%12s %12s %9s  %s\n", "excl cycles", "incl cycles", "calls", "call path (track: stack)"); err != nil {
		return err
	}
	for _, r := range rows {
		events := ""
		if len(r.n.events) > 0 {
			keys := make([]string, 0, len(r.n.events))
			for k := range r.n.events {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%d", k, r.n.events[k])
			}
			events = "  [" + strings.Join(parts, " ") + "]"
		}
		if _, err := fmt.Fprintf(w, "%12d %12d %9d  %s: %s%s\n",
			r.n.excl(), r.n.incl, r.n.calls, r.track, r.path, events); err != nil {
			return err
		}
	}
	return nil
}

// WriteFiles writes the JSON and folded forms side by side
// ("<base>.json" / "<base>.folded"), the layout cmd/aquila-bench's
// -profile-dir produces per experiment.
func (pr *Profiler) WriteFiles(base string) error {
	if err := writeTo(base+".json", pr.WriteJSON); err != nil {
		return err
	}
	return writeTo(base+".folded", pr.WriteFolded)
}

func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
