// Package profile is the hierarchical cycle profiler of the observability
// layer: it consumes the lossless span stream (obs.SpanSink, fed by
// engine.Proc.EndSpan — not the tracer's bounded rings) and aggregates it
// into one call tree per simulated process track, keyed by the span-name
// stack. Each node carries inclusive cycles (time inside spans at this
// path), exclusive cycles (inclusive minus instrumented children), call
// counts, and named event attributions (fault classes, shootdown batches,
// written-back pages — the same events the metrics registry counts, here
// broken down by call path).
//
// Because the simulation is deterministic, the profile is bit-exact: two
// runs of the same seed produce byte-identical JSON and folded output, so
// profiles diff cleanly across commits. Exports are a top-N table (human),
// JSON (tooling), and Brendan Gregg's folded-stack format (one
// "track;a;b;c cycles" line per node, exclusive cycles as the value) for
// flamegraph.pl or speedscope.
//
// Like the rest of the obs layer the profiler is single-execution (DES) and
// takes no locks; consuming a span never advances simulated time.
package profile

import (
	"fmt"
	"sort"

	"aquila/internal/obs"
)

// Profiler is the canonical SpanSink implementation.
var _ obs.SpanSink = (*Profiler)(nil)

// node is one call-tree vertex: the aggregation of every closed span whose
// open-span path ends here.
type node struct {
	name     string
	calls    uint64
	incl     uint64 // cycles inside spans closing at this path
	events   map[string]uint64
	children map[string]*node
}

func (n *node) child(name string) *node {
	c := n.children[name]
	if c == nil {
		c = &node{name: name}
		if n.children == nil {
			n.children = make(map[string]*node)
		}
		n.children[name] = c
	}
	return c
}

// excl returns the node's exclusive cycles: inclusive minus the inclusive
// cycles of its instrumented children. Stack discipline (children close
// before their parent, inside its interval) makes this non-negative; the
// clamp guards a child whose parent span is still open at run end and was
// therefore never counted.
func (n *node) excl() uint64 {
	var kids uint64
	for _, c := range n.children {
		kids += c.incl
	}
	if kids > n.incl {
		return 0
	}
	return n.incl - kids
}

func (n *node) sortedChildren() []*node {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*node, len(names))
	for i, name := range names {
		out[i] = n.children[name]
	}
	return out
}

func (n *node) addEvent(event string, c uint64) {
	if n.events == nil {
		n.events = make(map[string]uint64)
	}
	n.events[event] += c
}

// track is one simulated process's call tree. The root node aggregates the
// track's top-level spans; its inclusive cycles are the track's total
// instrumented time and can never exceed the run's total simulated cycles.
type track struct {
	name string
	cpu  int
	root node
}

// Profiler implements obs.SpanSink: attach it to a simulation
// (aquila.Options.Profiler / engine.Config.Profile) and it grows one call
// tree per process track as spans close. The zero value is not usable; call
// New.
type Profiler struct {
	tracks map[string]*track
	// totalCycles is the run's simulated-cycle total (harness.TakeSimCycles
	// or Engine.Now), set by the driver after the run; the root coverage in
	// exports and the Reconcile check compare against it.
	totalCycles uint64
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{tracks: make(map[string]*track)}
}

// Reset drops all accumulated state (per-experiment profiles from one
// shared profiler).
func (pr *Profiler) Reset() {
	pr.tracks = make(map[string]*track)
	pr.totalCycles = 0
}

// SetTotalCycles records the run's total simulated cycles, as measured by
// the driver (harness.TakeSimCycles for bench runs). Exports report it and
// Reconcile validates the tree against it.
func (pr *Profiler) SetTotalCycles(c uint64) { pr.totalCycles = c }

// TotalCycles returns the recorded run total.
func (pr *Profiler) TotalCycles() uint64 { return pr.totalCycles }

// Empty reports whether no spans have been consumed.
func (pr *Profiler) Empty() bool { return len(pr.tracks) == 0 }

func (pr *Profiler) track(name string, cpu int) *track {
	t := pr.tracks[name]
	if t == nil {
		t = &track{name: name, cpu: cpu, root: node{name: name}}
		pr.tracks[name] = t
	}
	return t
}

// walk descends from the track root along path, creating nodes as needed.
func (t *track) walk(path []string) *node {
	n := &t.root
	for _, name := range path {
		n = n.child(name)
	}
	return n
}

// ConsumeSpan implements obs.SpanSink: the span closing at path accrues one
// call and its duration at that node; a top-level span additionally accrues
// at the root (the track's total instrumented time).
func (pr *Profiler) ConsumeSpan(trk string, cpu int, path []string, begin, end uint64) {
	if len(path) == 0 || end < begin {
		return
	}
	t := pr.track(trk, cpu)
	n := t.walk(path)
	n.calls++
	n.incl += end - begin
	if len(path) == 1 {
		t.root.calls++
		t.root.incl += end - begin
	}
}

// ConsumeEvent implements obs.SpanSink: n occurrences of event land on the
// innermost open span's node (the root for an empty path).
func (pr *Profiler) ConsumeEvent(trk string, cpu int, path []string, event string, n uint64) {
	if n == 0 {
		return
	}
	pr.track(trk, cpu).walk(path).addEvent(event, n)
}

// sortedTracks returns the tracks in name order (all exports iterate this
// way, so output is independent of arrival order).
func (pr *Profiler) sortedTracks() []*track {
	names := make([]string, 0, len(pr.tracks))
	for name := range pr.tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*track, len(names))
	for i, name := range names {
		out[i] = pr.tracks[name]
	}
	return out
}

// Reconcile validates the profile's accounting invariants against the
// recorded run total:
//
//   - every track's root inclusive cycles fit within the run total
//     (instrumented time cannot exceed simulated time), and
//   - at every node, the children's inclusive cycles fit within the
//     parent's (span nesting discipline).
//
// It returns nil when the tree reconciles, or an error naming the first
// violation. SetTotalCycles must have been called.
func (pr *Profiler) Reconcile() error {
	if pr.totalCycles == 0 && !pr.Empty() {
		return fmt.Errorf("profile: total cycles unset (call SetTotalCycles before Reconcile)")
	}
	for _, t := range pr.sortedTracks() {
		if t.root.incl > pr.totalCycles {
			return fmt.Errorf("profile: track %s root inclusive %d cycles exceeds run total %d",
				t.name, t.root.incl, pr.totalCycles)
		}
		if err := reconcileNode(t.name, "", &t.root); err != nil {
			return err
		}
	}
	return nil
}

func reconcileNode(trk, prefix string, n *node) error {
	var kids uint64
	for _, c := range n.sortedChildren() {
		kids += c.incl
	}
	if kids > n.incl {
		return fmt.Errorf("profile: track %s node %s%s: children inclusive %d cycles exceed parent %d",
			trk, prefix, n.name, kids, n.incl)
	}
	for _, c := range n.sortedChildren() {
		if err := reconcileNode(trk, prefix+n.name+";", c); err != nil {
			return err
		}
	}
	return nil
}
