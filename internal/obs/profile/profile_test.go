package profile

import (
	"strings"
	"testing"
)

// feed replays a fixed span/event stream into pr. Called twice (in different
// arrival orders) by the determinism test.
func feed(pr *Profiler, reversed bool) {
	type span struct {
		track      string
		cpu        int
		path       []string
		begin, end uint64
	}
	spans := []span{
		{"sim/w0", 0, []string{"aq.fault"}, 0, 100},
		{"sim/w0", 0, []string{"aq.fault", "aq.major_fault"}, 10, 90},
		{"sim/w0", 0, []string{"aq.fault", "aq.major_fault", "aq.io"}, 20, 70},
		{"sim/w0", 0, []string{"aq.fault"}, 100, 140},
		{"sim/w1", 1, []string{"kv.put"}, 0, 500},
		{"sim/w1", 1, []string{"kv.put", "kv.spill"}, 50, 450},
	}
	if reversed {
		for i := len(spans) - 1; i >= 0; i-- {
			s := spans[i]
			pr.ConsumeSpan(s.track, s.cpu, s.path, s.begin, s.end)
		}
		pr.ConsumeEvent("sim/w0", 0, []string{"aq.fault", "aq.major_fault"}, "fault.major", 1)
	} else {
		for _, s := range spans {
			pr.ConsumeSpan(s.track, s.cpu, s.path, s.begin, s.end)
		}
		pr.ConsumeEvent("sim/w0", 0, []string{"aq.fault", "aq.major_fault"}, "fault.major", 1)
	}
	pr.SetTotalCycles(1000)
}

func TestTreeAggregation(t *testing.T) {
	pr := New()
	feed(pr, false)
	doc := pr.Export()
	if len(doc.Tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(doc.Tracks))
	}
	// Tracks sort by name: sim/w0 first.
	w0 := doc.Tracks[0]
	if w0.Track != "sim/w0" || w0.CPU != 0 {
		t.Fatalf("track[0] = %s cpu %d", w0.Track, w0.CPU)
	}
	// Root inclusive = sum of top-level spans: 100 + 40.
	if w0.CoveredCycles != 140 {
		t.Fatalf("covered = %d, want 140", w0.CoveredCycles)
	}
	fault := w0.Root.Children[0]
	if fault.Name != "aq.fault" || fault.Calls != 2 || fault.InclusiveCycles != 140 {
		t.Fatalf("aq.fault = %+v", fault)
	}
	// Exclusive = 140 − 80 (major_fault child).
	if fault.ExclusiveCycles != 60 {
		t.Fatalf("aq.fault excl = %d, want 60", fault.ExclusiveCycles)
	}
	major := fault.Children[0]
	if major.InclusiveCycles != 80 || major.ExclusiveCycles != 30 {
		t.Fatalf("major = %+v", major)
	}
	if major.Events["fault.major"] != 1 {
		t.Fatalf("major events = %v", major.Events)
	}
	io := major.Children[0]
	if io.Name != "aq.io" || io.InclusiveCycles != 50 || io.ExclusiveCycles != 50 {
		t.Fatalf("io = %+v", io)
	}
	// Coverage is the max track share: sim/w1 covers 500/1000.
	if doc.Coverage != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", doc.Coverage)
	}
}

func TestDeterministicExports(t *testing.T) {
	a, b := New(), New()
	feed(a, false)
	feed(b, true) // reversed arrival order must not change any export

	for _, ex := range []struct {
		name  string
		write func(pr *Profiler, sb *strings.Builder)
	}{
		{"json", func(pr *Profiler, sb *strings.Builder) { pr.WriteJSON(sb) }},
		{"folded", func(pr *Profiler, sb *strings.Builder) { pr.WriteFolded(sb) }},
		{"top", func(pr *Profiler, sb *strings.Builder) { pr.WriteTop(sb, 10) }},
	} {
		var sa, sb strings.Builder
		ex.write(a, &sa)
		ex.write(b, &sb)
		if sa.String() != sb.String() {
			t.Errorf("%s export depends on arrival order:\n%s\nvs\n%s", ex.name, sa.String(), sb.String())
		}
		if sa.Len() == 0 {
			t.Errorf("%s export is empty", ex.name)
		}
	}
}

func TestFoldedFormat(t *testing.T) {
	pr := New()
	feed(pr, false)
	var sb strings.Builder
	if err := pr.WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sim/w0;aq.fault 60",
		"sim/w0;aq.fault;aq.major_fault 30",
		"sim/w0;aq.fault;aq.major_fault;aq.io 50",
		"sim/w1;kv.put 100",
		"sim/w1;kv.put;kv.spill 400",
	}
	got := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(got) != len(want) {
		t.Fatalf("folded lines = %d, want %d:\n%s", len(got), len(want), sb.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("folded[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReconcile(t *testing.T) {
	pr := New()
	feed(pr, false)
	if err := pr.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	// Track exceeding the run total must fail.
	pr.SetTotalCycles(100)
	if err := pr.Reconcile(); err == nil {
		t.Fatal("reconcile passed with root inclusive > total")
	}
	// Unset total with data must fail loudly, not silently pass.
	pr.SetTotalCycles(0)
	if err := pr.Reconcile(); err == nil {
		t.Fatal("reconcile passed with total unset")
	}
	// Empty profiler reconciles trivially.
	if err := New().Reconcile(); err != nil {
		t.Fatalf("empty reconcile: %v", err)
	}
}

func TestReset(t *testing.T) {
	pr := New()
	feed(pr, false)
	pr.Reset()
	if !pr.Empty() || pr.TotalCycles() != 0 {
		t.Fatal("reset did not clear state")
	}
	var sb strings.Builder
	if err := pr.WriteFolded(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("post-reset folded = %q, err %v", sb.String(), err)
	}
}

func TestEventOnOpenPath(t *testing.T) {
	pr := New()
	// An event with no open span lands on the track root.
	pr.ConsumeEvent("sim/w0", 0, nil, "orphan", 2)
	pr.ConsumeSpan("sim/w0", 0, []string{"a"}, 0, 10)
	pr.SetTotalCycles(10)
	doc := pr.Export()
	if doc.Tracks[0].Root.Events["orphan"] != 2 {
		t.Fatalf("root events = %v", doc.Tracks[0].Root.Events)
	}
}
