package obs

import (
	"testing"
	"testing/quick"
)

// Property: bucketLow(bucketOf(v)) <= v and relative error bounded.
func TestBucketRoundTripProperty(t *testing.T) {
	check := func(v uint64) bool {
		low := bucketLow(bucketOf(v))
		if low > v {
			return false
		}
		if v > 16 && float64(v-low) > float64(v)*0.07 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSummarize(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 100; v++ {
		h.Record(v * 100)
	}
	s := h.Summarize()
	if s.Count != 100 || s.Min != 100 || s.Max != 10000 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Fatalf("summary quantiles not monotone: %+v", s)
	}
	if s.Mean != h.Mean() || s.Sum != h.Sum() {
		t.Fatalf("summary mean/sum mismatch: %+v", s)
	}
}
