package perfgate

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"aquila/internal/obs"
)

// ParseTolerances accepts the aqperf -tol flag grammar and nothing else.
func TestParseTolerances(t *testing.T) {
	cases := []struct {
		in      string
		want    Tolerances
		wantErr bool
	}{
		{in: "", want: Tolerances{}},
		{in: "latency=0.02", want: Tolerances{"latency": 0.02}},
		{in: "latency=0.02,breakdown.msync=0.05",
			want: Tolerances{"latency": 0.02, "breakdown.msync": 0.05}},
		{in: " latency = 0.02 , ,extra=0 ", // whitespace and empty parts tolerated
			want: Tolerances{"latency": 0.02, "extra": 0}},
		{in: "=0.5", want: Tolerances{"": 0.5}}, // explicit default entry
		{in: "latency", wantErr: true},          // no '='
		{in: "latency=two%", wantErr: true},     // not a float
		{in: "latency=-0.1", wantErr: true},     // negative tolerance
		{in: "latency=", wantErr: true},         // empty fraction
	}
	for _, c := range cases {
		got, err := ParseTolerances(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseTolerances(%q): no error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTolerances(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseTolerances(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Lookup order: exact metric name, then the family prefix before the first
// dot, then the "" default — and zero (exact comparison) when none match.
func TestTolerancesFamilyFallback(t *testing.T) {
	tol := Tolerances{"latency.p99": 0.10, "latency": 0.02, "": 0.01}
	if got := tol.For("latency.p99"); got != 0.10 {
		t.Errorf("exact name: got %v, want 0.10", got)
	}
	if got := tol.For("latency.p50"); got != 0.02 {
		t.Errorf("family fallback: got %v, want 0.02", got)
	}
	if got := tol.For("breakdown.msync"); got != 0.01 {
		t.Errorf("default fallback: got %v, want 0.01", got)
	}
	none := Tolerances{"latency": 0.02}
	if got := none.For("breakdown.msync"); got != 0 {
		t.Errorf("missing family must mean exact (0), got %v", got)
	}
}

// Direction-aware verdicts at the tolerance edges: the same relative drift is
// Regressed, Improved, or Changed purely by the metric's direction, drift
// exactly at the tolerance is OK, and one unit past it is not.
func TestClassifyDirectionEdges(t *testing.T) {
	tol := Tolerances{"tight": 0.10}
	rows := []struct {
		name         string
		metric       string
		golden, cand float64
		dir          Direction
		want         Status
	}{
		{"equal_exact", "m", 100, 100, LowerBetter, OK},
		{"one_cycle_up_lower_better", "m", 100, 101, LowerBetter, Regressed},
		{"one_cycle_down_lower_better", "m", 100, 99, LowerBetter, Improved},
		{"one_cycle_up_higher_better", "m", 100, 101, HigherBetter, Improved},
		{"one_cycle_down_higher_better", "m", 100, 99, HigherBetter, Regressed},
		{"neutral_any_drift", "m", 100, 101, Neutral, Changed},
		{"at_tolerance_ok", "tight", 100, 110, LowerBetter, OK},
		{"past_tolerance_regressed", "tight", 100, 111, LowerBetter, Regressed},
		{"at_tolerance_down_ok", "tight", 100, 90, HigherBetter, OK},
		{"past_tolerance_down_regressed", "tight", 100, 89, HigherBetter, Regressed},
		{"from_zero_regressed", "m", 0, 5, LowerBetter, Regressed},
		{"to_zero_improved", "m", 5, 0, LowerBetter, Improved},
		{"both_zero_ok", "m", 0, 0, Neutral, OK},
	}
	for _, r := range rows {
		d := classify(r.metric, r.golden, r.cand, r.dir, tol)
		if d.Status != r.want {
			t.Errorf("%s: classify(%v -> %v, dir %d) = %s, want %s",
				r.name, r.golden, r.cand, r.dir, d.Status, r.want)
		}
	}
}

// Rel is the report line's headline number; pin the zero-golden conventions.
func TestDeltaRel(t *testing.T) {
	if got := (Delta{Golden: 100, Candidate: 110}).Rel(); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("Rel = %v, want 0.10", got)
	}
	if got := (Delta{Golden: 0, Candidate: 1}).Rel(); !math.IsInf(got, 1) {
		t.Errorf("Rel from zero = %v, want +Inf", got)
	}
	if got := (Delta{Golden: 0, Candidate: -1}).Rel(); !math.IsInf(got, -1) {
		t.Errorf("Rel from zero down = %v, want -Inf", got)
	}
	if got := (Delta{Golden: 0, Candidate: 0}).Rel(); got != 0 {
		t.Errorf("Rel both zero = %v, want 0", got)
	}
}

// The aqperf error paths around report loading: a missing file and malformed
// JSON must both surface as errors, never as a zero report that would gate
// clean.
func TestReadReportFileErrors(t *testing.T) {
	if _, err := obs.ReadReportFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing report file: no error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ReadReportFile(bad); err == nil {
		t.Error("malformed report JSON: no error")
	}
}
