package perfgate

import (
	"path/filepath"
	"strings"
	"testing"

	"aquila/internal/obs"
)

func sampleReport() *obs.Report {
	return &obs.Report{
		Schema:              1,
		Experiment:          "fig8a",
		Scale:               1.0,
		Config:              map[string]string{"device": "pmem", "threads": "1"},
		Ops:                 16384,
		ElapsedCycles:       61970688,
		ThroughputOpsPerSec: 634000,
		Latency: &obs.Summary{
			Count: 16384, Sum: 61970688, Mean: 3782.4,
			Min: 700, Max: 9000, P50: 3700, P90: 4000, P99: 4200, P999: 8000,
		},
		Breakdown:      map[string]uint64{"exception": 9043968, "io": 19660800},
		BreakdownTotal: 28704768,
		TotalCycles:    61970688,
		Extra:          map[string]float64{"trap_ratio": 2.33},
	}
}

func TestCompareEqual(t *testing.T) {
	deltas := Compare(sampleReport(), sampleReport(), nil)
	if w := Worst(deltas); w != OK {
		t.Fatalf("identical reports: worst = %s, drifted %v", w, NotOK(deltas))
	}
	if len(deltas) == 0 {
		t.Fatal("no metrics compared")
	}
}

// TestCompareOneCycleRegression is the gate's reason to exist: the simulation
// is deterministic, so a single extra cycle anywhere is a detectable, failing
// regression by default.
func TestCompareOneCycleRegression(t *testing.T) {
	cand := sampleReport()
	cand.ElapsedCycles++ // +1 cycle
	cand.TotalCycles++
	deltas := Compare(sampleReport(), cand, nil)
	if w := Worst(deltas); w != Regressed {
		t.Fatalf("worst = %s, want regressed", w)
	}
	drifted := NotOK(deltas)
	if len(drifted) != 2 {
		t.Fatalf("drifted = %v, want elapsed_cycles and total_cycles", drifted)
	}
	for _, d := range drifted {
		if d.Status != Regressed {
			t.Errorf("%s status = %s", d.Metric, d.Status)
		}
		// The report line must name the metric and both values.
		line := d.String()
		if !strings.Contains(line, d.Metric) || !strings.Contains(line, "regressed") {
			t.Errorf("unreadable delta line: %q", line)
		}
	}
}

func TestDirections(t *testing.T) {
	golden := sampleReport()
	cand := sampleReport()
	cand.ThroughputOpsPerSec *= 2 // higher-better metric moving up
	cand.Extra["trap_ratio"] = 9  // neutral metric moving
	deltas := Compare(golden, cand, nil)
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Metric] = d
	}
	if d := byName["throughput_ops_per_sec"]; d.Status != Improved {
		t.Errorf("throughput status = %s, want improved", d.Status)
	}
	if d := byName["extra.trap_ratio"]; d.Status != Changed {
		t.Errorf("neutral drift status = %s, want changed", d.Status)
	}
}

func TestTolerances(t *testing.T) {
	tol, err := ParseTolerances("latency=0.10,breakdown.io=0.50,elapsed_cycles=0.001")
	if err != nil {
		t.Fatal(err)
	}
	// Family lookup: latency.p99 falls under "latency".
	if got := tol.For("latency.p99"); got != 0.10 {
		t.Fatalf("latency.p99 tol = %v", got)
	}
	// Exact beats family.
	if got := tol.For("breakdown.io"); got != 0.50 {
		t.Fatalf("breakdown.io tol = %v", got)
	}
	if got := tol.For("breakdown.exception"); got != 0 {
		t.Fatalf("breakdown.exception tol = %v", got)
	}

	cand := sampleReport()
	cand.Latency.P99 += 300                          // +7%, inside the 10% family tolerance
	cand.Breakdown["io"] += cand.Breakdown["io"] / 4 // +25%, inside 50%
	deltas := Compare(sampleReport(), cand, tol)
	if w := Worst(deltas); w != OK {
		t.Fatalf("tolerated drift flagged: %v", NotOK(deltas))
	}

	cand.Breakdown["exception"]++ // exact metric: any drift fails
	deltas = Compare(sampleReport(), cand, tol)
	if w := Worst(deltas); w != Regressed {
		t.Fatalf("exact-metric drift not flagged, worst = %s", w)
	}

	if _, err := ParseTolerances("nonsense"); err == nil {
		t.Fatal("malformed tolerance accepted")
	}
	if _, err := ParseTolerances("m=-0.5"); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestConfigAndExperimentMismatch(t *testing.T) {
	cand := sampleReport()
	cand.Config["device"] = "nvme"
	cand.Experiment = "fig8b"
	deltas := Compare(sampleReport(), cand, nil)
	var sawConfig, sawExp bool
	for _, d := range NotOK(deltas) {
		switch d.Metric {
		case "config.device":
			sawConfig = d.Status == Changed && strings.Contains(d.Note, "nvme")
		case "experiment":
			sawExp = d.Status == Changed
		}
	}
	if !sawConfig || !sawExp {
		t.Fatalf("config/experiment mismatch not surfaced: %v", NotOK(deltas))
	}
}

func TestBreakdownUnion(t *testing.T) {
	golden := sampleReport()
	cand := sampleReport()
	delete(cand.Breakdown, "io")    // vanished category
	cand.Breakdown["new_cat"] = 500 // appeared category
	deltas := Compare(golden, cand, nil)
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Metric] = d
	}
	if d, ok := byName["breakdown.io"]; !ok || d.Candidate != 0 || d.Status != Improved {
		t.Errorf("vanished category: %+v", d)
	}
	if d, ok := byName["breakdown.new_cat"]; !ok || d.Golden != 0 || d.Status != Regressed {
		t.Errorf("appeared category: %+v", d)
	}
}

func TestHistoryRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	cand := sampleReport()
	cand.TotalCycles++
	deltas := Compare(sampleReport(), cand, nil)
	rec := NewHistoryRecord(cand, deltas, "pr-42", "2026-08-08T00:00:00Z")
	if err := AppendHistory(path, []HistoryRecord{rec}); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, []HistoryRecord{rec}); err != nil { // append, not truncate
		t.Fatal(err)
	}
	recs, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("history records = %d, want 2", len(recs))
	}
	got := recs[1]
	if got.Experiment != "fig8a" || got.Label != "pr-42" || got.Status != "regressed" {
		t.Fatalf("record = %+v", got)
	}
	if len(got.Drifted) == 0 || got.Drifted[0] != "total_cycles" {
		t.Fatalf("drifted = %v", got.Drifted)
	}
}
