// Package perfgate is the performance-regression gate behind cmd/aqperf: it
// diffs two experiment reports (obs.Report, the BENCH_<exp>.json schema)
// metric by metric and classifies every difference. Because the simulation
// is deterministic, the default comparison is exact — a single cycle of
// drift on any metric is a detectable change, so the gate needs no
// statistical machinery; per-metric tolerances exist for intentionally
// noisy series, not for measurement error.
//
// The package also maintains BENCH_history.jsonl, an append-only trajectory
// of gate runs that makes the repository's perf story machine-readable
// across PRs.
package perfgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"aquila/internal/obs"
)

// Direction states which way a metric is allowed to move without being a
// regression.
type Direction int

// Metric directions.
const (
	// Neutral metrics (config echoes, derived ratios) regress by drifting
	// in either direction.
	Neutral Direction = iota
	// LowerBetter metrics are cycle costs.
	LowerBetter
	// HigherBetter metrics are throughputs and operation counts.
	HigherBetter
)

// Status classifies one metric comparison (or a whole report: the worst of
// its metrics).
type Status int

// Comparison outcomes, ordered by severity.
const (
	// OK: identical, or within the metric's tolerance.
	OK Status = iota
	// Improved: beyond tolerance in the better direction. Still a diff
	// against the golden — regenerate the goldens to absorb it.
	Improved
	// Changed: a neutral metric drifted beyond tolerance.
	Changed
	// Regressed: beyond tolerance in the worse direction.
	Regressed
)

// String returns the lowercase status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Improved:
		return "improved"
	case Changed:
		return "changed"
	case Regressed:
		return "regressed"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Delta is one metric's comparison.
type Delta struct {
	Metric    string
	Golden    float64
	Candidate float64
	Direction Direction
	// Tol is the relative tolerance applied (0 = exact).
	Tol    float64
	Status Status
	// Note carries non-numeric context (config string mismatches).
	Note string
}

// Rel returns the relative change (candidate-golden)/|golden|; ±Inf when
// the golden is zero and the candidate is not.
func (d Delta) Rel() float64 {
	if d.Golden == 0 {
		if d.Candidate == 0 {
			return 0
		}
		return math.Inf(sign(d.Candidate))
	}
	return (d.Candidate - d.Golden) / math.Abs(d.Golden)
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// String renders the delta as one readable report line.
func (d Delta) String() string {
	if d.Note != "" {
		return fmt.Sprintf("%-34s %s (%s)", d.Metric, d.Note, d.Status)
	}
	rel := d.Rel()
	relS := fmt.Sprintf("%+.3f%%", 100*rel)
	if math.IsInf(rel, 0) {
		relS = "from zero"
	}
	tolS := "exact"
	if d.Tol > 0 {
		tolS = fmt.Sprintf("tol %.2f%%", 100*d.Tol)
	}
	return fmt.Sprintf("%-34s %16.6g -> %16.6g  %s (%s, %s)",
		d.Metric, d.Golden, d.Candidate, relS, tolS, d.Status)
}

// Tolerances maps a metric name — or a metric family, the prefix before the
// first dot ("breakdown", "latency", "extra") — to a relative tolerance
// fraction. Lookup tries the exact name first, then the family, then the ""
// default entry.
type Tolerances map[string]float64

// For returns the tolerance applying to metric.
func (t Tolerances) For(metric string) float64 {
	if v, ok := t[metric]; ok {
		return v
	}
	if i := strings.IndexByte(metric, '.'); i > 0 {
		if v, ok := t[metric[:i]]; ok {
			return v
		}
	}
	return t[""]
}

// ParseTolerances parses the -tol flag form
// "metric=frac,family=frac,..." (fractions: 0.02 = 2%).
func ParseTolerances(s string) (Tolerances, error) {
	out := Tolerances{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tolerance %q: want metric=fraction", part)
		}
		val = strings.TrimSpace(val)
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("tolerance %q: bad fraction %q", part, val)
		}
		out[strings.TrimSpace(name)] = f
	}
	return out, nil
}

// classify scores one numeric metric.
func classify(metric string, golden, cand float64, dir Direction, tol Tolerances) Delta {
	d := Delta{Metric: metric, Golden: golden, Candidate: cand, Direction: dir, Tol: tol.For(metric)}
	diff := math.Abs(cand - golden)
	within := diff == 0 || diff <= d.Tol*math.Abs(golden)
	switch {
	case within:
		d.Status = OK
	case dir == Neutral:
		d.Status = Changed
	case (dir == LowerBetter) == (cand > golden):
		d.Status = Regressed
	default:
		d.Status = Improved
	}
	return d
}

// Compare diffs candidate against golden metric by metric, in a fixed
// deterministic order: headline scalars, latency summary, breakdown
// categories (union of both reports; a category present on one side only
// compares against zero), extras, then config echoes. tol may be nil.
func Compare(golden, cand *obs.Report, tol Tolerances) []Delta {
	if tol == nil {
		tol = Tolerances{}
	}
	var out []Delta
	num := func(metric string, g, c float64, dir Direction) {
		out = append(out, classify(metric, g, c, dir, tol))
	}
	num("ops", float64(golden.Ops), float64(cand.Ops), HigherBetter)
	num("elapsed_cycles", float64(golden.ElapsedCycles), float64(cand.ElapsedCycles), LowerBetter)
	num("throughput_ops_per_sec", golden.ThroughputOpsPerSec, cand.ThroughputOpsPerSec, HigherBetter)
	num("total_cycles", float64(golden.TotalCycles), float64(cand.TotalCycles), LowerBetter)
	num("breakdown_total_cycles", float64(golden.BreakdownTotal), float64(cand.BreakdownTotal), LowerBetter)
	if golden.Latency != nil || cand.Latency != nil {
		g, c := summaryOrZero(golden.Latency), summaryOrZero(cand.Latency)
		num("latency.count", float64(g.Count), float64(c.Count), Neutral)
		num("latency.sum", float64(g.Sum), float64(c.Sum), LowerBetter)
		num("latency.mean", g.Mean, c.Mean, LowerBetter)
		num("latency.min", float64(g.Min), float64(c.Min), LowerBetter)
		num("latency.max", float64(g.Max), float64(c.Max), LowerBetter)
		num("latency.p50", float64(g.P50), float64(c.P50), LowerBetter)
		num("latency.p90", float64(g.P90), float64(c.P90), LowerBetter)
		num("latency.p99", float64(g.P99), float64(c.P99), LowerBetter)
		num("latency.p999", float64(g.P999), float64(c.P999), LowerBetter)
	}
	for _, k := range unionKeysU64(golden.Breakdown, cand.Breakdown) {
		num("breakdown."+k, float64(golden.Breakdown[k]), float64(cand.Breakdown[k]), LowerBetter)
	}
	for _, k := range unionKeysF64(golden.Extra, cand.Extra) {
		num("extra."+k, golden.Extra[k], cand.Extra[k], Neutral)
	}
	for _, k := range unionKeysStr(golden.Config, cand.Config) {
		if g, c := golden.Config[k], cand.Config[k]; g != c {
			out = append(out, Delta{
				Metric: "config." + k, Direction: Neutral, Status: Changed,
				Note: fmt.Sprintf("%q -> %q", g, c),
			})
		}
	}
	if golden.Experiment != cand.Experiment {
		out = append(out, Delta{
			Metric: "experiment", Direction: Neutral, Status: Changed,
			Note: fmt.Sprintf("%q -> %q", golden.Experiment, cand.Experiment),
		})
	}
	num("scale", golden.Scale, cand.Scale, Neutral)
	return out
}

func summaryOrZero(s *obs.Summary) obs.Summary {
	if s == nil {
		return obs.Summary{}
	}
	return *s
}

// Worst returns the most severe status among the deltas (OK when empty).
func Worst(deltas []Delta) Status {
	w := OK
	for _, d := range deltas {
		if d.Status > w {
			w = d.Status
		}
	}
	return w
}

// NotOK filters the deltas that differ beyond tolerance.
func NotOK(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Status != OK {
			out = append(out, d)
		}
	}
	return out
}

func unionKeysU64(a, b map[string]uint64) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	return sortedKeys(seen)
}

func unionKeysF64(a, b map[string]float64) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	return sortedKeys(seen)
}

func unionKeysStr(a, b map[string]string) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	return sortedKeys(seen)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HistoryRecord is one BENCH_history.jsonl line: the headline numbers of a
// candidate report plus the gate verdict against the golden of the day.
type HistoryRecord struct {
	// Time is the host-side run timestamp (RFC 3339); empty in tests that
	// need byte-stable lines.
	Time string `json:"time,omitempty"`
	// Label identifies the run (CI job, PR id) when provided.
	Label               string  `json:"label,omitempty"`
	Experiment          string  `json:"experiment"`
	Scale               float64 `json:"scale"`
	Ops                 uint64  `json:"ops,omitempty"`
	ElapsedCycles       uint64  `json:"elapsed_cycles,omitempty"`
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec,omitempty"`
	TotalCycles         uint64  `json:"total_cycles,omitempty"`
	BreakdownTotal      uint64  `json:"breakdown_total_cycles,omitempty"`
	Status              string  `json:"status"`
	// Drifted lists the metrics that differed beyond tolerance.
	Drifted []string `json:"drifted,omitempty"`
}

// NewHistoryRecord builds the record for one gate comparison.
func NewHistoryRecord(cand *obs.Report, deltas []Delta, label, ts string) HistoryRecord {
	rec := HistoryRecord{
		Time:                ts,
		Label:               label,
		Experiment:          cand.Experiment,
		Scale:               cand.Scale,
		Ops:                 cand.Ops,
		ElapsedCycles:       cand.ElapsedCycles,
		ThroughputOpsPerSec: cand.ThroughputOpsPerSec,
		TotalCycles:         cand.TotalCycles,
		BreakdownTotal:      cand.BreakdownTotal,
		Status:              Worst(deltas).String(),
	}
	for _, d := range NotOK(deltas) {
		rec.Drifted = append(rec.Drifted, d.Metric)
	}
	return rec
}

// AppendHistory appends records to the JSONL trajectory at path, creating
// the file if needed.
func AppendHistory(path string, recs []HistoryRecord) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ReadHistory loads the JSONL trajectory (trajectory tooling, tests).
func ReadHistory(path string) ([]HistoryRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec HistoryRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("history line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
