package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Breakdown("b").Add("x", 10)
	if h := r.Histogram("h"); h != nil {
		t.Fatal("nil registry should hand out nil histograms")
	}
	s := r.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil || s.Breakdowns != nil {
		t.Fatal("nil registry snapshot should be empty")
	}
	if r.Keys() != nil {
		t.Fatal("nil registry should have no keys")
	}
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("faults", L("world", "aquila"))
	c2 := r.Counter("faults", L("world", "aquila"))
	if c1 != c2 {
		t.Fatal("same name+labels should intern to the same counter")
	}
	c3 := r.Counter("faults", L("world", "linux"))
	if c1 == c3 {
		t.Fatal("different labels should be distinct metrics")
	}
	c1.Add(5)
	c3.Add(7)
	if c1.Value() != 5 || c3.Value() != 7 {
		t.Fatalf("values: %d, %d", c1.Value(), c3.Value())
	}
	if r.Breakdown("bk") != r.Breakdown("bk") || r.Histogram("h") != r.Histogram("h") {
		t.Fatal("breakdowns/histograms should intern")
	}
}

func TestSnapshotDiffJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(10)
	r.Gauge("util").Set(0.5)
	r.Histogram("lat").Record(100)
	r.Breakdown("break").Add("trap", 1000)

	before := r.Snapshot()

	r.Counter("ops").Add(32)
	r.Gauge("util").Set(0.75)
	r.Histogram("lat").Record(300)
	r.Breakdown("break").Add("trap", 500)
	r.Breakdown("break").Add("io", 2000)

	after := r.Snapshot()
	d := after.Diff(before)

	if d.Counters["ops"] != 32 {
		t.Fatalf("diff ops = %d", d.Counters["ops"])
	}
	if d.Gauges["util"] != 0.75 {
		t.Fatalf("diff gauge = %v (gauges keep current)", d.Gauges["util"])
	}
	if d.Histograms["lat"].Count != 1 || d.Histograms["lat"].Sum != 300 {
		t.Fatalf("diff hist = %+v", d.Histograms["lat"])
	}
	if d.Breakdowns["break"]["trap"] != 500 || d.Breakdowns["break"]["io"] != 2000 {
		t.Fatalf("diff break = %v", d.Breakdowns["break"])
	}

	// Snapshots are deep copies: further writes must not leak in.
	r.Counter("ops").Add(1)
	if after.Counters["ops"] != 42 {
		t.Fatalf("snapshot not isolated: %d", after.Counters["ops"])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["ops"] != 43 || round.Breakdowns["break"]["io"] != 2000 {
		t.Fatalf("round-tripped snapshot = %+v", round)
	}
}

func TestMetricKeyRendering(t *testing.T) {
	if k := metricKey("a", nil); k != "a" {
		t.Fatalf("key = %q", k)
	}
	k := metricKey("a", []Label{L("x", "1"), L("y", "2")})
	if k != "a{x=1,y=2}" {
		t.Fatalf("key = %q", k)
	}
}
