package obs

// SpanSink is the lossless span feed: it receives every span the moment it
// is closed (engine.Proc.EndSpan), together with the full open-span path at
// that instant. Where the Tracer retains only a bounded ring of recent spans
// per track (old spans are dropped on long runs), a SpanSink sees the whole
// stream and can aggregate it — the hierarchical cycle profiler
// (internal/obs/profile) is the canonical implementation.
//
// Implementations must never advance simulated time and must be
// deterministic for a deterministic span stream.
type SpanSink interface {
	// ConsumeSpan reports one closed span. track identifies the simulated
	// process's trace track ("<label>/<proc>"), cpu the CPU it is pinned
	// to, and path the open-span names outermost-first, ending with the
	// span being closed. begin/end are simulated cycles. The path slice is
	// owned by the callee.
	ConsumeSpan(track string, cpu int, path []string, begin, end uint64)
	// ConsumeEvent attributes n occurrences of a named event (a fault of a
	// given class, a shootdown batch, written-back pages, ...) to the
	// innermost open span of track; an empty path attributes to the
	// track's root.
	ConsumeEvent(track string, cpu int, path []string, event string, n uint64)
}
