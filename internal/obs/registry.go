package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKey renders name{k=v,...} with labels in the given order. Callers
// are expected to pass labels in a consistent order; the key is the identity.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing uint64 metric. The zero of a nil
// *Counter is a no-op sink, so disabled instrumentation costs one nil check.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter value (re-publishing externally tracked stats).
func (c *Counter) Set(n uint64) {
	if c != nil {
		c.v = n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time float64 metric; nil-safe like Counter.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Registry is the central metric store: named (optionally labeled) counters,
// gauges, histograms and breakdowns. Lookups intern the metric on first use,
// so call sites can re-resolve by name or keep the returned pointer for the
// hot path. A nil *Registry hands out nil metrics, which swallow writes —
// the zero-cost off switch.
//
// Like the rest of the package, Registry is single-execution (DES) and takes
// no locks.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	breaks   map[string]*Breakdown
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		breaks:   make(map[string]*Breakdown),
	}
}

// Counter interns and returns the counter with the given name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge interns and returns the gauge with the given name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram interns and returns the histogram with the given name and
// labels. Returns nil on a nil registry: histogram call sites guard with a
// nil check (Histogram methods are not nil-safe, they return data).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey(name, labels)
	h, ok := r.hists[k]
	if !ok {
		h = NewHistogram()
		r.hists[k] = h
	}
	return h
}

// Breakdown interns and returns the breakdown with the given name and
// labels. Breakdown.Add is nil-safe, so call sites need no guard.
func (r *Registry) Breakdown(name string, labels ...Label) *Breakdown {
	if r == nil {
		return nil
	}
	k := metricKey(name, labels)
	b, ok := r.breaks[k]
	if !ok {
		b = NewBreakdown()
		r.breaks[k] = b
	}
	return b
}

// Snapshot is a deep-copied, JSON-encodable view of a registry at one
// instant. Maps are keyed by the rendered metric key (name{k=v,...}).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]Summary           `json:"histograms,omitempty"`
	Breakdowns map[string]map[string]uint64 `json:"breakdowns,omitempty"`
}

// Snapshot captures the current state of every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]Summary, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = h.Summarize()
		}
	}
	if len(r.breaks) > 0 {
		s.Breakdowns = make(map[string]map[string]uint64, len(r.breaks))
		for k, b := range r.breaks {
			s.Breakdowns[k] = b.Map()
		}
	}
	return s
}

// Diff returns the delta s − prev: counters and breakdown cycles subtract
// (clamped at zero, so a reset metric reads as its current value), gauges
// keep their current value, and histogram summaries subtract count/sum while
// keeping the current distribution shape (quantiles are not subtractable).
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]uint64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = subClamp(v, prev.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]Summary, len(s.Histograms))
		for k, v := range s.Histograms {
			p := prev.Histograms[k]
			v.Count = subClamp(v.Count, p.Count)
			v.Sum = subClamp(v.Sum, p.Sum)
			if v.Count > 0 {
				v.Mean = float64(v.Sum) / float64(v.Count)
			} else {
				v.Mean = 0
			}
			out.Histograms[k] = v
		}
	}
	if len(s.Breakdowns) > 0 {
		out.Breakdowns = make(map[string]map[string]uint64, len(s.Breakdowns))
		for k, cats := range s.Breakdowns {
			d := make(map[string]uint64, len(cats))
			for c, v := range cats {
				d[c] = subClamp(v, prev.Breakdowns[k][c])
			}
			out.Breakdowns[k] = d
		}
	}
	return out
}

func subClamp(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// WriteJSON encodes the snapshot as indented JSON. encoding/json sorts map
// keys, so the output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and encodes it as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// Keys returns every metric key in sorted order (tests, debugging).
func (r *Registry) Keys() []string {
	if r == nil {
		return nil
	}
	var out []string
	for k := range r.counters {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.hists {
		out = append(out, k)
	}
	for k := range r.breaks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
