// Package obs is the observability layer of the repository: a central
// metrics registry (labeled counters, gauges, log-bucketed histograms and
// named cycle breakdowns behind one Registry type with snapshot/diff/JSON
// encoding), a cycle-clock span tracer with per-track event rings and Chrome
// trace-event export, and the machine-readable per-experiment report schema
// (BENCH_<exp>.json) the harness emits.
//
// The package is deliberately a leaf: it imports only the standard library,
// so every simulation layer — the DES engine, the Aquila runtime, the Linux
// host model, the device models — can depend on it without cycles.
//
// All times are simulated cycles at the paper's 2.4 GHz testbed clock; the
// trace exporter converts to microseconds for chrome://tracing / Perfetto.
//
// Everything here is designed for the deterministic single-execution model
// of the DES engine: at most one simulated process runs at any real instant,
// so none of the types take locks. Recording into a nil *Tracer, nil
// *Counter, nil *Gauge or nil *Registry is a no-op, giving instrumented hot
// paths a zero-cost off switch (one nil check).
package obs

// CyclesPerMicro converts simulated cycles to microseconds at the paper's
// 2.4 GHz testbed clock.
const CyclesPerMicro = 2400.0
