package obs

import (
	"encoding/json"
	"io"
	"os"
)

// ReportSchemaVersion identifies the BENCH_<exp>.json layout; bump on
// incompatible changes so trajectory tooling can dispatch.
const ReportSchemaVersion = 1

// Report is the machine-readable result of one harness experiment — the
// BENCH_<exp>.json schema. Checked-in reports form the perf trajectory of
// the repository: diffing two reports shows which breakdown category moved.
type Report struct {
	Schema     int     `json:"schema"`
	Experiment string  `json:"experiment"`
	Title      string  `json:"title,omitempty"`
	Scale      float64 `json:"scale"`
	// Config records the parameters the run used (device, threads, cache
	// bytes, dataset bytes, seed, ...), stringly-typed for stability.
	Config map[string]string `json:"config,omitempty"`

	// Ops and ElapsedCycles are the primary throughput measurements;
	// ThroughputOpsPerSec is derived at the 2.4 GHz simulated clock.
	Ops                 uint64  `json:"ops,omitempty"`
	ElapsedCycles       uint64  `json:"elapsed_cycles,omitempty"`
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec,omitempty"`

	// Latency summarizes the per-op latency distribution in cycles.
	Latency *Summary `json:"latency_cycles,omitempty"`

	// Breakdown maps component categories to total simulated cycles;
	// BreakdownTotal is their sum and TotalCycles the measured whole the
	// components should cover (breakdown coverage = BreakdownTotal /
	// TotalCycles).
	Breakdown      map[string]uint64 `json:"breakdown_cycles,omitempty"`
	BreakdownTotal uint64            `json:"breakdown_total_cycles,omitempty"`
	TotalCycles    uint64            `json:"total_cycles,omitempty"`

	// Extra carries experiment-specific scalar series (per-op component
	// cycles, ratios vs the baseline, paper targets).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Coverage returns BreakdownTotal / TotalCycles (0 when unknown).
func (r *Report) Coverage() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.BreakdownTotal) / float64(r.TotalCycles)
}

// WriteJSON encodes the report as indented JSON (deterministic: map keys
// sort).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path ("BENCH_<exp>.json").
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReportFile loads a report (trajectory tooling, tests).
func ReadReportFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
