package obs

import (
	"path/filepath"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	r := &Report{
		Schema:              ReportSchemaVersion,
		Experiment:          "fig8a",
		Scale:               1.0,
		Config:              map[string]string{"device": "pmem", "threads": "1"},
		Ops:                 1000,
		ElapsedCycles:       2_400_000,
		ThroughputOpsPerSec: 1e6,
		Latency:             &Summary{Count: 1000, Sum: 2_000_000, Mean: 2000, Min: 500, Max: 9000, P50: 1800, P99: 7000},
		Breakdown:           map[string]uint64{"exception": 552_000, "device-io": 900_000},
		BreakdownTotal:      1_452_000,
		TotalCycles:         1_500_000,
		Extra:               map[string]float64{"linux_total_per_fault": 5380},
	}
	path := filepath.Join(t.TempDir(), "BENCH_fig8a.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig8a" || got.Breakdown["exception"] != 552_000 ||
		got.Latency.P99 != 7000 || got.Config["device"] != "pmem" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if c := got.Coverage(); c < 0.95 || c > 1 {
		t.Fatalf("coverage = %v", c)
	}
}

func TestReportCoverageZeroWhenUnknown(t *testing.T) {
	r := &Report{}
	if r.Coverage() != 0 {
		t.Fatal("coverage of empty report should be 0")
	}
}
