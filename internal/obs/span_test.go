package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Add(Span{Name: "x"})
	tr.SetThreadName(1, 0, "cpu0")
	if tr.RegisterProcess("p") != 0 {
		t.Fatal("nil tracer should hand out pid 0")
	}
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer should retain nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("nil tracer export should still be a valid trace: %v", err)
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer()
	tr.SetRingCapacity(4)
	pid := tr.RegisterProcess("sim")
	for i := 0; i < 10; i++ {
		tr.Add(Span{Name: "s", PID: pid, TID: 0, Begin: uint64(i), End: uint64(i + 1)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring should cap retention: %d", len(spans))
	}
	// Oldest are dropped: the remaining window is [6, 10).
	if spans[0].Begin != 6 || spans[3].Begin != 9 {
		t.Fatalf("ring kept wrong window: %+v", spans)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerTracksAreIndependent(t *testing.T) {
	tr := NewTracer()
	pid := tr.RegisterProcess("sim")
	tr.Add(Span{Name: "a", PID: pid, TID: 0, Begin: 0, End: 10})
	tr.Add(Span{Name: "b", PID: pid, TID: 1, Begin: 5, End: 15})
	tr.Add(Span{Name: "c", PID: pid, TID: 0, Begin: 10, End: 20})
	if len(tr.Spans()) != 3 {
		t.Fatalf("spans = %d", len(tr.Spans()))
	}
}

func TestWriteChromeTraceSchema(t *testing.T) {
	tr := NewTracer()
	cpus := tr.RegisterProcess("sim/cpus")
	tr.SetThreadName(cpus, 0, "cpu0")
	tr.SetThreadName(cpus, 1, "cpu1")
	tr.Add(Span{Name: "fault", Cat: "span", PID: cpus, TID: 0, Proc: "w0", Begin: 2400, End: 4800})
	tr.Add(Span{Name: "io", Cat: "dev", PID: cpus, TID: 1, Begin: 0, End: 2400})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	nX, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if nX != 2 {
		t.Fatalf("X events = %d, want 2", nX)
	}
	out := buf.String()
	for _, want := range []string{"process_name", "thread_name", "sim/cpus", "cpu1", "\"fault\"", "\"dur\""} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestDroppedSpansSurfacedInTrace pins the ring-loss metadata: a track that
// overflowed its ring carries a "spans_dropped" metadata event stating how
// many spans were lost, and untouched tracks stay clean (so goldens of
// drop-free runs are unaffected).
func TestDroppedSpansSurfacedInTrace(t *testing.T) {
	tr := NewTracer()
	tr.SetRingCapacity(4)
	pid := tr.RegisterProcess("sim")
	for i := 0; i < 10; i++ {
		tr.Add(Span{Name: "s", PID: pid, TID: 0, Begin: uint64(i), End: uint64(i + 1)})
	}
	tr.Add(Span{Name: "t", PID: pid, TID: 1, Begin: 0, End: 1}) // no drops here

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace with drop metadata does not validate: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"spans_dropped"`) || !strings.Contains(out, `"dropped": 6`) {
		t.Fatalf("trace missing spans_dropped metadata:\n%s", out)
	}
	if got := strings.Count(out, `"spans_dropped"`); got != 1 {
		t.Fatalf("spans_dropped events = %d, want 1 (only the overflowed track)", got)
	}
}

// TestNoDropMetadataWhenClean: a tracer that never overflowed must emit no
// spans_dropped events, keeping existing golden traces byte-stable.
func TestNoDropMetadataWhenClean(t *testing.T) {
	tr := NewTracer()
	pid := tr.RegisterProcess("sim")
	tr.Add(Span{Name: "s", PID: pid, TID: 0, Begin: 0, End: 1})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "spans_dropped") {
		t.Fatalf("clean trace carries drop metadata:\n%s", buf.String())
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ValidateChromeTrace([]byte("[1,2,3]")); err == nil {
		t.Fatal("array-of-numbers should not validate")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"ph":"X","name":"a"}]}`)); err == nil {
		t.Fatal("X event without ts/dur should not validate")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"ts":1}]}`)); err == nil {
		t.Fatal("event without ph should not validate")
	}
}
