package obs

import (
	"fmt"
	"strings"
)

// Breakdown attributes cycles to named categories, preserving first-use
// order for stable reporting. It is the registry-backed successor of the old
// internal/metrics Breakdown and powers the per-component bars of the
// paper's Figures 7 and 8.
type Breakdown struct {
	order  []string
	cycles map[string]uint64
	counts map[string]uint64
}

// NewBreakdown creates an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{cycles: make(map[string]uint64), counts: make(map[string]uint64)}
}

// Add attributes cycles to a category.
func (b *Breakdown) Add(category string, cycles uint64) {
	if b == nil {
		return
	}
	if _, ok := b.cycles[category]; !ok {
		b.order = append(b.order, category)
	}
	b.cycles[category] += cycles
	b.counts[category]++
}

// Get returns the cycles attributed to a category.
func (b *Breakdown) Get(category string) uint64 { return b.cycles[category] }

// Count returns the number of Add calls for a category.
func (b *Breakdown) Count(category string) uint64 { return b.counts[category] }

// PerOp returns category cycles divided by n (average per operation).
func (b *Breakdown) PerOp(category string, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(b.cycles[category]) / float64(n)
}

// Total returns the sum over all categories.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b.cycles {
		t += v
	}
	return t
}

// Categories returns category names in first-use order.
func (b *Breakdown) Categories() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// Map returns a copy of the category → cycles mapping (report encoding).
func (b *Breakdown) Map() map[string]uint64 {
	if b == nil {
		return nil
	}
	out := make(map[string]uint64, len(b.cycles))
	for c, v := range b.cycles {
		out[c] = v
	}
	return out
}

// Merge adds all categories of other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for _, c := range other.order {
		if _, ok := b.cycles[c]; !ok {
			b.order = append(b.order, c)
		}
		b.cycles[c] += other.cycles[c]
		b.counts[c] += other.counts[c]
	}
}

// Reset empties the breakdown.
func (b *Breakdown) Reset() {
	b.order = nil
	b.cycles = make(map[string]uint64)
	b.counts = make(map[string]uint64)
}

// Table renders the breakdown as per-op averages over n operations.
func (b *Breakdown) Table(n uint64) string {
	var sb strings.Builder
	total := b.Total()
	for _, c := range b.order {
		v := b.cycles[c]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-28s %10.0f cycles/op  %5.1f%%\n", c, b.PerOp(c, n), pct)
	}
	fmt.Fprintf(&sb, "  %-28s %10.0f cycles/op\n", "TOTAL", float64(total)/float64(maxU64(n, 1)))
	return sb.String()
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
