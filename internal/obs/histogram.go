package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

const subBucketBits = 4 // 16 sub-buckets per power of two: ~6% resolution

// Histogram is a log-bucketed histogram of uint64 samples (cycles). It is
// HDR-like: constant memory, bounded relative error, exact count/sum/min/max.
type Histogram struct {
	buckets map[uint32]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[uint32]uint64), min: math.MaxUint64}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) uint32 {
	if v < 1<<subBucketBits {
		return uint32(v)
	}
	msb := 63 - bits.LeadingZeros64(v)
	shift := msb - subBucketBits
	sub := uint32(v>>uint(shift)) & ((1 << subBucketBits) - 1)
	return uint32(msb+1)<<subBucketBits | sub
}

// bucketLow returns the smallest value mapping to bucket b (used as the
// representative value when reporting quantiles).
func bucketLow(b uint32) uint64 {
	exp := b >> subBucketBits
	if exp == 0 {
		return uint64(b)
	}
	msb := int(exp) - 1
	sub := uint64(b & ((1 << subBucketBits) - 1))
	return 1<<uint(msb) | sub<<uint(msb-subBucketBits)
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an approximation of the q-quantile, accurate to the
// bucket resolution, always within [Min, Max]. The exact min is returned for
// q <= 0 (and NaN), the exact max for q >= 1, and the empty histogram
// reports 0 for every q.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	keys := make([]uint32, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var seen uint64
	v := h.max
	for _, k := range keys {
		seen += h.buckets[k]
		if seen > target {
			v = bucketLow(k)
			break
		}
	}
	// Clamp to the exact observed range: the representative bucketLow of the
	// first/last bucket can undershoot min (single-sample histograms, q→0).
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// P99 is Quantile(0.99); P999 is Quantile(0.999).
func (h *Histogram) P99() uint64  { return h.Quantile(0.99) }
func (h *Histogram) P999() uint64 { return h.Quantile(0.999) }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for k, c := range other.buckets {
		h.buckets[k] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset empties the histogram.
func (h *Histogram) Reset() {
	h.buckets = make(map[uint32]uint64)
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxUint64
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p99=%d p99.9=%d max=%d",
		h.count, h.Mean(), h.P99(), h.P999(), h.max)
}

// Summary condenses a histogram for snapshots and reports.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
}

// Summarize extracts the snapshot summary of a histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
		Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.5), P90: h.Quantile(0.9),
		P99: h.P99(), P999: h.P999(),
	}
}
