package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is one cycle-attributed interval on a trace track. Begin and End are
// simulated cycles; PID/TID select the track (the DES engine emits scheduler
// segments on a per-CPU track group and named spans on a per-Proc track
// group; devices get their own tracks).
type Span struct {
	Name string
	// Cat groups spans for Perfetto filtering: "span" (instrumented code
	// intervals), "sched" (engine scheduler segments), "dev" (device
	// queue/service intervals).
	Cat        string
	PID        int
	TID        int
	Proc       string // owning simulated process name ("" for device spans)
	Begin, End uint64
}

// ring is a fixed-capacity overwrite-oldest span buffer: one per track, so a
// long run keeps the most recent window of each track instead of growing
// without bound.
type ring struct {
	buf     []Span
	next    int
	wrapped bool
	dropped uint64
}

func (r *ring) add(s Span) {
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = s
	r.next++
}

// spans returns the ring content in recording order.
func (r *ring) spans() []Span {
	if !r.wrapped {
		return r.buf[:r.next]
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// DefaultRingCapacity is the per-track event ring size.
const DefaultRingCapacity = 1 << 16

type trackKey struct{ pid, tid int }

// Tracer accumulates cycle-attributed spans on per-track event rings and
// exports them in the Chrome trace-event format (chrome://tracing /
// https://ui.perfetto.dev). A nil *Tracer swallows everything, so the
// enabled check on hot paths is a single nil comparison.
type Tracer struct {
	ringCap int
	rings   map[trackKey]*ring
	order   []trackKey // track creation order (deterministic export)

	procNames   map[int]string
	threadNames map[trackKey]string
	nextPID     int
}

// NewTracer creates a tracer with the default per-track ring capacity.
func NewTracer() *Tracer {
	return &Tracer{
		ringCap:     DefaultRingCapacity,
		rings:       make(map[trackKey]*ring),
		procNames:   make(map[int]string),
		threadNames: make(map[trackKey]string),
		nextPID:     1,
	}
}

// SetRingCapacity sets the per-track ring size for tracks created after the
// call (tests use small rings to exercise overwrite).
func (t *Tracer) SetRingCapacity(n int) {
	if t != nil && n > 0 {
		t.ringCap = n
	}
}

// RegisterProcess allocates a trace pid for a named track group (one
// simulated machine registers e.g. "sim/cpus", "sim/procs", "sim/devices").
func (t *Tracer) RegisterProcess(label string) int {
	if t == nil {
		return 0
	}
	pid := t.nextPID
	t.nextPID++
	t.procNames[pid] = label
	return pid
}

// SetThreadName names one track within a pid group.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.threadNames[trackKey{pid, tid}] = name
}

// Add records a span. Zero-length spans are kept: they mark instants (an
// instrumented section whose cost was fully absorbed elsewhere).
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	k := trackKey{s.PID, s.TID}
	r, ok := t.rings[k]
	if !ok {
		r = &ring{buf: make([]Span, t.ringCap)}
		t.rings[k] = r
		t.order = append(t.order, k)
	}
	r.add(s)
}

// Spans returns every retained span, ordered by track creation then
// recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, k := range t.order {
		out = append(out, t.rings[k].spans()...)
	}
	return out
}

// Dropped returns the number of spans evicted from full rings.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, r := range t.rings {
		n += r.dropped
	}
	return n
}

// chromeEvent is one trace-event-format record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container Perfetto and chrome://tracing
// both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the retained spans as Chrome trace-event JSON:
// timestamps in microseconds at the 2.4 GHz testbed clock, process/thread
// metadata first, then complete ("X") events. Output is deterministic for a
// deterministic simulation run.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	if t != nil {
		pids := make([]int, 0, len(t.procNames))
		for pid := range t.procNames {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": t.procNames[pid]},
			})
		}
		tks := make([]trackKey, 0, len(t.threadNames))
		for k := range t.threadNames {
			tks = append(tks, k)
		}
		sort.Slice(tks, func(i, j int) bool {
			if tks[i].pid != tks[j].pid {
				return tks[i].pid < tks[j].pid
			}
			return tks[i].tid < tks[j].tid
		})
		for _, k := range tks {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: k.pid, TID: k.tid,
				Args: map[string]any{"name": t.threadNames[k]},
			})
		}
		tracks := append([]trackKey(nil), t.order...)
		sort.Slice(tracks, func(i, j int) bool {
			if tracks[i].pid != tracks[j].pid {
				return tracks[i].pid < tracks[j].pid
			}
			return tracks[i].tid < tracks[j].tid
		})
		// Surface ring overwrites: a long run silently truncates each track
		// to its most recent window, so any track that dropped spans gets a
		// metadata event stating how many. Absent when nothing was dropped,
		// keeping short-run traces (and their goldens) unchanged.
		for _, k := range tracks {
			if d := t.rings[k].dropped; d > 0 {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "spans_dropped", Ph: "M", PID: k.pid, TID: k.tid,
					Args: map[string]any{"dropped": d},
				})
			}
		}
		for _, k := range tracks {
			for _, s := range t.rings[k].spans() {
				dur := float64(s.End-s.Begin) / CyclesPerMicro
				ev := chromeEvent{
					Name: s.Name, Cat: s.Cat, Ph: "X",
					Ts:  float64(s.Begin) / CyclesPerMicro,
					Dur: &dur, PID: s.PID, TID: s.TID,
				}
				if s.Proc != "" {
					ev.Args = map[string]any{"proc": s.Proc}
				}
				out.TraceEvents = append(out.TraceEvents, ev)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateChromeTrace parses trace-event JSON produced by WriteChromeTrace
// (or any object-form trace) and checks the invariants Perfetto relies on:
// every event has a phase, metadata precedes data on first use of a track,
// durations are non-negative and X events carry a dur. It returns the number
// of X events. Used by the exporter's schema tests and available to external
// tooling.
func ValidateChromeTrace(data []byte) (int, error) {
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return 0, fmt.Errorf("trace is not valid JSON object form: %w", err)
	}
	if tr.TraceEvents == nil {
		return 0, fmt.Errorf("trace has no traceEvents array")
	}
	nX := 0
	for i, ev := range tr.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			// metadata: needs a name and args.name
		case "X":
			nX++
			ts, tsOK := ev["ts"].(float64)
			dur, durOK := ev["dur"].(float64)
			if !tsOK || !durOK {
				return 0, fmt.Errorf("event %d: X event missing ts/dur", i)
			}
			if ts < 0 || dur < 0 {
				return 0, fmt.Errorf("event %d: negative ts/dur", i)
			}
		case "":
			return 0, fmt.Errorf("event %d: missing ph", i)
		}
		if _, ok := ev["name"].(string); !ok {
			return 0, fmt.Errorf("event %d: missing name", i)
		}
	}
	return nX, nil
}
