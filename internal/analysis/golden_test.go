package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts `// want "regexp"` expectations from golden sources.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// goldenCase binds one analyzer to its testdata package. The pkgPath is
// chosen to land inside the analyzer's scope (testdata directories are
// invisible to go list, so the impersonation is harmless).
type goldenCase struct {
	analyzer   *Analyzer
	dir        string
	pkgPath    string
	suppressed int // expected count of //aqlint-silenced findings
}

func TestAnalyzerGoldens(t *testing.T) {
	cases := []goldenCase{
		{Detrand, "detrand", "aquila/internal/sim/clockuser", 1},
		{Maporder, "maporder", "aquila/internal/core/maps", 1},
		{Cyclecost, "cyclecost", "aquila/internal/core/cycles", 0},
		{Spanpair, "spanpair", "aquila/internal/core/spans", 1},
		{Errdrop, "errdrop", "aquila/internal/core/eio", 1},
		{Persistpair, "persistpair", "aquila/internal/core/persist", 1},
		{Crashclean, "crashclean", "aquila/internal/sim/world", 1},
		{Framelease, "framelease", "aquila/internal/core/promote", 1},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := LoadDir(".", filepath.Join("testdata", tc.dir), tc.pkgPath)
			if err != nil {
				t.Fatalf("load golden: %v", err)
			}
			res, err := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			if err != nil {
				t.Fatalf("run %s: %v", tc.analyzer.Name, err)
			}
			checkWants(t, pkg, res.Findings)
			if res.Suppressed != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", res.Suppressed, tc.suppressed)
			}
		})
	}
}

// TestScopeGating re-runs each scoped analyzer over its own golden under an
// out-of-scope import path: every finding must vanish.
func TestScopeGating(t *testing.T) {
	cases := []goldenCase{
		{Detrand, "detrand", "aquila/internal/host/clockuser", 0},
		{Maporder, "maporder", "aquila/cmd/maps", 0},
		{Cyclecost, "cyclecost", "aquila/internal/sim/engine/cycles", 0},
		{Spanpair, "spanpair", "aquila/cmd/spans", 0},
		{Errdrop, "errdrop", "aquila/internal/kvs/eio", 0},
		// The device package implements Store but does not own handshakes.
		{Persistpair, "persistpair", "aquila/internal/sim/device/persist", 0},
		// The engine owns the sentinel and the one sanctioned recover.
		{Crashclean, "crashclean", "aquila/internal/sim/engine/unwind", 0},
		{Framelease, "framelease", "aquila/internal/host/promote", 0},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := LoadDir(".", filepath.Join("testdata", tc.dir), tc.pkgPath)
			if err != nil {
				t.Fatalf("load golden: %v", err)
			}
			res, err := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			if err != nil {
				t.Fatalf("run %s: %v", tc.analyzer.Name, err)
			}
			if len(res.Findings) != 0 || res.Suppressed != 0 {
				t.Errorf("out-of-scope package produced %d finding(s), %d suppressed",
					len(res.Findings), res.Suppressed)
			}
		})
	}
}

// want is one expectation: a message pattern anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans the golden package's comments for `// want` markers.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{
					file: pos.Filename,
					line: pos.Line,
					re:   regexp.MustCompile(m[1]),
				})
			}
		}
	}
	return wants
}

// checkWants matches findings against expectations one-to-one.
func checkWants(t *testing.T, pkg *Package, findings []Finding) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
