package analysis

// All returns the aqlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Cyclecost, Detrand, Errdrop, Maporder, Spanpair}
}
