package analysis

// All returns the aqlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Crashclean, Cyclecost, Detrand, Errdrop, Framelease,
		Maporder, Persistpair, Spanpair,
	}
}
