package analysis

import (
	"go/ast"
	"go/types"
)

// Persistpair is the static twin of the crash sweep (DESIGN.md §9): every
// device write staged with Store.WriteAt is volatile until its Persist
// durability handshake, so a write path that can reach a normal return —
// i.e. acknowledge completion to its caller — without a Persist on some CFG
// path silently loses acked data at the next crash. The crash sweep catches
// this dynamically when a workload happens to cut power between the two
// calls; persistpair proves the pairing on every path at `make lint` time.
//
// The check runs the must-pair dataflow solver over each function's CFG:
//
//   - gen: a Store.WriteAt call, or a call to a package-local function whose
//     summary says pending (unpersisted) writes escape from it;
//   - kill: a Store.Persist call (receiver-matched when both receivers
//     render), or a call to a package-local function that persists on every
//     path (mustPersistSummaries);
//   - edges contradicting the write's enclosing guards drop the fact, so
//     `if ferr == nil { WriteAt } ... if ferr == nil { Persist }` pairs up.
//
// A function whose pending writes escape (e.g. core's flushFrame) is not
// itself a finding when the package also contains direct call sites: the
// obligation transfers to the callers, which the staging summary charges.
// Only escape points with no intra-package callers — interface-dispatched
// entry points — report at the WriteAt itself.
//
// Scope: the durability-handshake surface (PersistPairPkg) — the I/O
// engines, the host OS layers, and the SPDK driver.
var Persistpair = &Analyzer{
	Name: "persistpair",
	Doc: "a device write staged with Store.WriteAt must reach its Persist " +
		"durability handshake on every path to a normal return",
	Run: runPersistpair,
}

func runPersistpair(pass *Pass) error {
	if !PersistPairPkg(pass.Pkg.Path()) {
		return nil
	}
	g := buildCallGraph(pass)
	mustP := mustPersistSummaries(pass, g)
	staging := stagingSummaries(pass, g, mustP)

	report := func(facts []pairFact) {
		for _, f := range facts {
			if f.Via != "" {
				pass.Reportf(f.Pos,
					"call to %s stages a device WriteAt whose data can reach a return without a Persist durability handshake",
					f.Via)
			} else {
				recv := f.Recv
				if recv == "" {
					recv = "store"
				}
				pass.Reportf(f.Pos,
					"%s.WriteAt is unpaired: the staged write can reach a return without a Persist durability handshake on some path",
					recv)
			}
		}
	}

	// Declared functions: escape points with intra-package callers hand the
	// obligation to those callers instead of reporting here.
	for _, n := range g.order {
		facts := persistExitFacts(pass, g, n.cfg, mustP, staging)
		if len(facts) == 0 || n.callers > 0 {
			continue
		}
		report(facts)
	}
	// Function literals are leaf units: nothing calls them by name, so any
	// escaping pending write reports at its WriteAt.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				cfg := BuildCFG(lit.Body, pass.TypesInfo)
				report(persistExitFacts(pass, g, cfg, mustP, staging))
			}
			return true
		})
	}
	return nil
}

// stagingSummaries computes, per function, whether a pending (unpersisted)
// device write can escape through its normal return: the function stages
// data its callers are responsible for persisting. Computed after (and with)
// the mustPersist fixpoint, so the gen set grows monotonically and the
// fixpoint terminates.
func stagingSummaries(pass *Pass, g *callGraph, mustP map[*types.Func]bool) map[*types.Func]bool {
	return g.summarize(func(n *cgNode, cur map[*types.Func]bool) bool {
		return len(persistExitFacts(pass, g, n.cfg, mustP, cur)) > 0
	})
}

// persistExitFacts runs the must-pair solver for one function unit and
// returns the staged writes that reach its normal exit unpersisted.
func persistExitFacts(pass *Pass, g *callGraph, cfg *CFG, mustP, staging map[*types.Func]bool) []pairFact {
	info := pass.TypesInfo
	return solvePairs(pairProblem{
		cfg: cfg,
		gen: func(atom ast.Node) []pairFact {
			var fs []pairFact
			for _, op := range atomCalls(info, g, atom) {
				switch {
				case isStoreWriteAt(info, op.call):
					recv := ""
					if sel, ok := ast.Unparen(op.call.Fun).(*ast.SelectorExpr); ok {
						recv = recvString(sel.X)
					}
					fs = append(fs, pairFact{
						Pos: op.call.Pos(), Gen: atom, Recv: recv,
						Guards: cfg.Guards(atom),
					})
				case op.callee != nil && staging[op.callee]:
					fs = append(fs, pairFact{
						Pos: op.call.Pos(), Gen: atom, Via: op.callee.Name(),
						Guards: cfg.Guards(atom),
					})
				}
			}
			return fs
		},
		kill: func(atom ast.Node, f pairFact) bool {
			for _, op := range atomCalls(info, g, atom) {
				if isStorePersist(info, op.call) {
					recv := ""
					if sel, ok := ast.Unparen(op.call.Fun).(*ast.SelectorExpr); ok {
						recv = recvString(sel.X)
					}
					if f.Recv == "" || recv == "" || recv == f.Recv {
						return true
					}
				}
				if op.callee != nil && mustP[op.callee] {
					return true
				}
			}
			return false
		},
	})
}
