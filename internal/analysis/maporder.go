package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `range` over a map in deterministic packages when the loop
// body is order-sensitive: Go randomizes map iteration order per range, so
// any effect that depends on visit order (appending to a slice that feeds the
// engine, calling into code that advances clocks, emits spans/metrics or
// issues I/O, overwriting outer state) makes two identical runs diverge.
//
// Order-insensitive bodies pass without annotation: commutative accumulation
// (x++, x += v), writes keyed by the iteration variable (out[k] = v), locals
// declared inside the loop, delete on the ranged map, and pure builtins.
// Everything else needs either iteration over detutil.SortedKeys /
// detutil.SortedKeysFunc, or an //aqlint:sorted escape hatch with a
// justification.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive range over maps in deterministic packages; " +
		"iterate detutil.SortedKeys(m) or annotate //aqlint:sorted -- reason",
	Run: runMaporder,
}

// maporderPureBuiltins never observe iteration order.
var maporderPureBuiltins = map[string]bool{
	"len": true, "cap": true, "delete": true, "min": true, "max": true,
	"make": true, "new": true, "real": true, "imag": true, "complex": true,
}

// commutativeAssignOps accumulate independently of visit order.
var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, // +=
	token.SUB_ASSIGN: true, // -=
	token.MUL_ASSIGN: true, // *=
	token.OR_ASSIGN:  true, // |=
	token.AND_ASSIGN: true, // &=
	token.XOR_ASSIGN: true, // ^=
}

func runMaporder(pass *Pass) error {
	if !DeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitive(pass, rng); reason != "" {
				pass.Reportf(rng.Pos(),
					"map iteration order leaks into simulated state (%s); "+
						"iterate detutil.SortedKeys/SortedKeysFunc or annotate //aqlint:sorted -- reason",
					reason)
			}
			return true
		})
	}
	return nil
}

// orderSensitive scans the loop body and returns a description of the first
// order-sensitive effect, or "" when the body is provably commutative.
func orderSensitive(pass *Pass, rng *ast.RangeStmt) string {
	info := pass.TypesInfo
	keys := rangeVarObjs(info, rng)
	inBody := func(obj types.Object) bool {
		return obj != nil && rng.Body.Pos() <= obj.Pos() && obj.Pos() < rng.Body.End()
	}
	var reason string
	walkSameFunc(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.SendStmt:
			reason = "channel send inside the loop"
		case *ast.IncDecStmt:
			// x++/x-- commute.
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE || commutativeAssignOps[st.Tok] {
				return true
			}
			if st.Tok != token.ASSIGN {
				reason = "non-commutative compound assignment"
				return false
			}
			// `keys = append(keys, k)` deserves the append diagnostic, not
			// the generic last-writer-wins one.
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && isAppend(info, call) {
					if inBody(baseObj(info, st.Lhs[0])) {
						return true
					}
					reason = "append builds an ordered slice from unordered keys"
					return false
				}
			}
			for _, lhs := range st.Lhs {
				if !orderFreeLValue(info, lhs, keys, inBody) {
					reason = "assignment to outer state is last-writer-wins"
					return false
				}
			}
		case *ast.CallExpr:
			if conversionOrPure(info, st) {
				return true
			}
			if isAppend(info, st) {
				if target := appendTargetObj(info, st); inBody(target) {
					return true
				}
				reason = "append builds an ordered slice from unordered keys"
				return false
			}
			reason = "call may advance clocks, emit spans/metrics, or issue I/O"
			return false
		}
		return true
	})
	return reason
}

// rangeVarObjs returns the objects of the range key/value variables.
func rangeVarObjs(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				objs = append(objs, obj)
			} else if obj := info.Uses[id]; obj != nil {
				objs = append(objs, obj) // `for k = range m` reuse
			}
		}
	}
	return objs
}

// orderFreeLValue reports whether assigning to lhs cannot observe iteration
// order: blank, a variable declared inside the loop body, a map index, or an
// index keyed by a range variable (each iteration owns its slot).
func orderFreeLValue(info *types.Info, lhs ast.Expr, keys []types.Object, inBody func(types.Object) bool) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return true
		}
		return inBody(baseObj(info, x))
	case *ast.IndexExpr:
		if _, isMap := typeUnder(info, x.X).(*types.Map); isMap {
			return true
		}
		if mentionsAny(info, x.Index, keys) {
			return true
		}
		return inBody(baseObj(info, x.X))
	case *ast.SelectorExpr:
		// Field writes on the ranged map's values (pg.dirty = false) touch a
		// per-key object; field writes on outer state are last-writer-wins.
		if mentionsAny(info, x.X, keys) {
			return true
		}
		return inBody(baseObj(info, x.X))
	case *ast.StarExpr:
		return mentionsAny(info, x.X, keys) || inBody(baseObj(info, x.X))
	default:
		return false
	}
}

// baseObj resolves the root identifier's object of a selector/index chain.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsAny reports whether e references any of the given objects.
func mentionsAny(info *types.Info, e ast.Expr, objs []types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := info.ObjectOf(id)
			for _, o := range objs {
				if obj == o {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

func typeUnder(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// conversionOrPure reports whether the call is a type conversion or a pure
// builtin.
func conversionOrPure(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			return maporderPureBuiltins[id.Name]
		}
	}
	return false
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// appendTargetObj returns the object append grows, when it is a plain
// variable.
func appendTargetObj(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	return baseObj(info, call.Args[0])
}
