package analysis

import "sort"

// RunResult is every surviving (unsuppressed) finding of one driver run.
type RunResult struct {
	Findings []Finding
	// Suppressed counts findings silenced by //aqlint directives.
	Suppressed int
}

// Run executes the analyzers over the packages, applies the //aqlint
// suppression directives, and returns the surviving findings sorted by
// position for deterministic output.
func Run(pkgs []*Package, analyzers []*Analyzer) (*RunResult, error) {
	res := &RunResult{}
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.covered(pos.Filename, pos.Line, a.Name) {
					res.Suppressed++
					continue
				}
				res.Findings = append(res.Findings, Finding{
					Analyzer: a.Name, Pkg: pkg.PkgPath, Pos: pos,
					Message: d.Message,
				})
			}
		}
	}
	// Fully deterministic cross-package order: package path, then file, then
	// byte offset (finer than line/column and immune to formatting), then
	// analyzer name. Independent of the order packages were passed in.
	sort.Slice(res.Findings, func(i, j int) bool {
		fi, fj := res.Findings[i], res.Findings[j]
		if fi.Pkg != fj.Pkg {
			return fi.Pkg < fj.Pkg
		}
		if fi.Pos.Filename != fj.Pos.Filename {
			return fi.Pos.Filename < fj.Pos.Filename
		}
		if fi.Pos.Offset != fj.Pos.Offset {
			return fi.Pos.Offset < fj.Pos.Offset
		}
		return fi.Analyzer < fj.Analyzer
	})
	return res, nil
}
