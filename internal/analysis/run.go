package analysis

import "sort"

// RunResult is every surviving (unsuppressed) finding of one driver run.
type RunResult struct {
	Findings []Finding
	// Suppressed counts findings silenced by //aqlint directives.
	Suppressed int
}

// Run executes the analyzers over the packages, applies the //aqlint
// suppression directives, and returns the surviving findings sorted by
// position for deterministic output.
func Run(pkgs []*Package, analyzers []*Analyzer) (*RunResult, error) {
	res := &RunResult{}
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.covered(pos.Filename, pos.Line, a.Name) {
					res.Suppressed++
					continue
				}
				res.Findings = append(res.Findings, Finding{
					Analyzer: a.Name, Pos: pos, Message: d.Message,
				})
			}
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i].Pos, res.Findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return res.Findings[i].Analyzer < res.Findings[j].Analyzer
	})
	return res, nil
}
