package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` over the patterns in dir and
// decodes the JSON stream. tags is passed through as -tags so the analyzers
// see the same file set each build variant compiles (e.g. aqdebug).
func goList(dir, tags string, patterns []string) ([]*listedPkg, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the import resolver every type-check shares: import
// paths resolve through the compiler export data `go list -export` produced,
// the same mechanism `go vet` uses. The importer records imported-object
// positions into fset, which must be the same file set the analyzed sources
// are parsed into (analyzers resolve both through one Pass.Fset).
func exportLookup(pkgs []*listedPkg, fset *token.FileSet) types.Importer {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// parseDir parses the named files of one package directory, comments included
// (the suppression directives live there).
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, name := range sorted {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load resolves the patterns (e.g. "./...") relative to dir, then parses and
// type-checks every matched non-test package from source under the given
// build tags ("" = default build). Directories named testdata are invisible
// to `go list`, so analyzer golden packages never reach the real run.
func Load(dir, tags string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, tags, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportLookup(listed, fset)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files, err := parseDir(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}

// LoadDir parses and type-checks one directory of Go files as the package
// pkgPath, resolving its imports through `go list -export` run in modDir.
// This is the analysistest loader: testdata packages are not go-list-visible,
// but their std imports are.
func LoadDir(modDir, dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir, names)
	if err != nil {
		return nil, err
	}
	// Resolve the union of the files' imports (std-only by construction of
	// the testdata packages).
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, im := range f.Imports {
			path := im.Path.Value
			path = path[1 : len(path)-1] // unquote
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	var imp types.Importer
	if len(imports) > 0 {
		listed, err := goList(modDir, "", imports)
		if err != nil {
			return nil, err
		}
		imp = exportLookup(listed, fset)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", dir, err)
	}
	return &Package{
		PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info,
	}, nil
}
