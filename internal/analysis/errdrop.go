package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// Errdrop protects the end-to-end I/O error propagation PR 3 established:
// typed device errors surfaced by the I/O engine layer (ioengine.go) and the
// fault-injection layer (faults.go) must not be discarded in internal/core —
// neither assigned to the blank identifier nor ignored as a bare expression
// statement. Every such error either propagates, poisons/quarantines a page,
// or lands in a file's errseq; silently dropping one reopens the
// lost-writeback-error class of bugs.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "typed I/O errors from ioengine.go/faults.go may not be discarded " +
		"with _ (or as a bare statement) in internal/core",
	Run: runErrdrop,
}

// errdropSourceFiles are the declaring files whose error results are
// load-bearing.
var errdropSourceFiles = map[string]bool{
	"ioengine.go": true,
	"faults.go":   true,
}

func runErrdrop(pass *Pass) error {
	if !ErrDropPkg(pass.Pkg.Path()) {
		return nil
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isErr := func(t types.Type) bool { return types.Implements(t, errIface) }

	// tracked reports whether the call resolves to a function or method
	// declared in one of the protected files, and returns its error-result
	// indices.
	tracked := func(call *ast.CallExpr) (errIdx []int, name string) {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return nil, ""
		}
		file := filepath.Base(pass.Fset.Position(fn.Pos()).Filename)
		if !errdropSourceFiles[file] {
			return nil, ""
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil, ""
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if isErr(sig.Results().At(i).Type()) {
				errIdx = append(errIdx, i)
			}
		}
		return errIdx, fn.Name()
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				errIdx, name := tracked(call)
				for _, i := range errIdx {
					if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
						pass.Reportf(st.Lhs[i].Pos(),
							"typed I/O error from %s discarded with _: propagate it, poison/quarantine the page, or record it in the errseq",
							name)
					}
				}
			case *ast.ExprStmt:
				call, ok := ast.Unparen(st.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if errIdx, name := tracked(call); len(errIdx) > 0 {
					pass.Reportf(st.Pos(),
						"typed I/O error from %s ignored: handle or propagate the result",
						name)
				}
			}
			return true
		})
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
