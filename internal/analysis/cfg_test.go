package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a file and returns the body of function f.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd.Body
		}
	}
	t.Fatal("no func f")
	return nil
}

// reaches reports whether to is reachable from from along CFG edges.
func reaches(from, to *Block) bool {
	seen := map[int]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGIfElseEdges(t *testing.T) {
	body := parseBody(t, `package p
func f(x *int) {
	if x == nil {
		a()
	} else {
		b()
	}
}
func a() {}
func b() {}
`)
	c := BuildCFG(body, nil)
	var conds []*Cond
	for _, b := range c.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				conds = append(conds, e.Cond)
			}
		}
	}
	if len(conds) != 2 {
		t.Fatalf("labeled edges = %d, want 2", len(conds))
	}
	for _, cc := range conds {
		if cc.Key != "x == nil" {
			t.Errorf("cond key = %q, want \"x == nil\"", cc.Key)
		}
	}
	if conds[0].Val == conds[1].Val {
		t.Errorf("then/else edges carry the same polarity %v", conds[0].Val)
	}
	if !reaches(c.Entry, c.Exit) {
		t.Error("exit unreachable")
	}
}

func TestCFGNegationNormalizes(t *testing.T) {
	body := parseBody(t, `package p
func f(x *int) {
	if x != nil {
		a()
	}
}
func a() {}
`)
	c := BuildCFG(body, nil)
	// `x != nil` must canonicalize to the `x == nil` key with flipped value,
	// so it correlates with plain `x == nil` guards elsewhere.
	found := false
	for _, b := range c.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil && e.Cond.Key == "x == nil" && !e.Cond.Val {
				found = true
			}
		}
	}
	if !found {
		t.Error("no edge labeled {x == nil, false} for the then-branch")
	}
}

func TestCFGGuardsTrackIfNesting(t *testing.T) {
	body := parseBody(t, `package p
func f(ok bool) {
	if ok {
		a()
	}
	b()
}
func a() {}
func b() {}
`)
	c := BuildCFG(body, nil)
	var aGuards, bGuards int = -1, -1
	for _, blk := range c.Blocks {
		for _, atom := range blk.Atoms {
			es, isExpr := atom.(*ast.ExprStmt)
			if !isExpr {
				continue
			}
			call, isCall := es.X.(*ast.CallExpr)
			if !isCall {
				continue
			}
			switch call.Fun.(*ast.Ident).Name {
			case "a":
				aGuards = len(c.Guards(atom))
			case "b":
				bGuards = len(c.Guards(atom))
			}
		}
	}
	if aGuards != 1 {
		t.Errorf("a() guards = %d, want 1 (inside the if)", aGuards)
	}
	if bGuards != 0 {
		t.Errorf("b() guards = %d, want 0 (after the merge)", bGuards)
	}
}

func TestCFGLoopBodyHasNoLoopGuard(t *testing.T) {
	body := parseBody(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		a()
	}
}
func a() {}
`)
	c := BuildCFG(body, nil)
	// Loop conditions must NOT become guards: the induction variable mutates
	// between iterations, so facts from the body must survive the exit edge.
	for _, blk := range c.Blocks {
		for _, atom := range blk.Atoms {
			if es, ok := atom.(*ast.ExprStmt); ok {
				if _, ok := es.X.(*ast.CallExpr); ok {
					if g := c.Guards(atom); len(g) != 0 {
						t.Errorf("loop-body atom has %d guards, want 0", len(g))
					}
				}
			}
		}
	}
	if !reaches(c.Entry, c.Exit) {
		t.Error("loop exit unreachable")
	}
}

func TestCFGPanicAndReturnExits(t *testing.T) {
	body := parseBody(t, `package p
func f(ok bool) {
	if ok {
		return
	}
	panic("boom")
}
`)
	c := BuildCFG(body, nil)
	if !reaches(c.Entry, c.Exit) {
		t.Error("return path does not reach Exit")
	}
	if !reaches(c.Entry, c.PanicExit) {
		t.Error("panic path does not reach PanicExit")
	}
	// The block ending in panic must not fall through to Exit.
	for _, blk := range c.Blocks {
		for _, atom := range blk.Atoms {
			es, ok := atom.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if isPanicCall(nil, es.X) {
				for _, e := range blk.Succs {
					if e.To == c.Exit {
						t.Error("panic block has an edge to the normal Exit")
					}
				}
			}
		}
	}
}

func TestCFGBreakContinue(t *testing.T) {
	body := parseBody(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i == 1 {
			continue
		}
		a()
	}
	b()
}
func a() {}
func b() {}
`)
	c := BuildCFG(body, nil)
	if !reaches(c.Entry, c.Exit) {
		t.Error("exit unreachable through break/continue loop")
	}
	// FuncLit bodies are separate units: the builder must not descend.
	lit := parseBody(t, `package p
func f() {
	g := func() { panic("inner") }
	g()
}
`)
	cl := BuildCFG(lit, nil)
	if reaches(cl.Entry, cl.PanicExit) {
		t.Error("panic inside a nested literal leaked into the outer CFG")
	}
}
