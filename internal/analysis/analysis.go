// Package analysis is aqlint's static-analysis framework: a self-contained,
// dependency-free subset of golang.org/x/tools/go/analysis. The repo's hard
// determinism, cycle-accounting and span-pairing rules (DESIGN.md "Static
// invariants") are enforced by the analyzers in this package, driven either by
// cmd/aqlint over `go list` packages or by the analysistest harness over
// golden testdata packages.
//
// The Analyzer/Pass/Diagnostic surface mirrors x/tools so the analyzers can be
// ported to the upstream driver verbatim if the dependency ever becomes
// available; only the package loader (load.go) is bespoke: it shells out to
// `go list -export` and type-checks from source with the toolchain's own
// export data, which is exactly what the upstream unitchecker does under vet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //aqlint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph rule statement (shown by `aqlint -list`).
	Doc string
	// Run executes the check over one package and reports findings through
	// pass.Report. A non-nil error aborts the whole run (driver failure,
	// not a finding).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver applies //aqlint suppression
	// directives after this call, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic resolved against the file set, ready to print.
type Finding struct {
	Analyzer string
	// Pkg is the import path of the package the finding was reported in;
	// it is the primary sort key, so output order is independent of the
	// order packages were loaded in.
	Pkg     string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}
