package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// Intra-package call graph plus the two function summaries persistpair
// needs. Cross-package calls are deliberately opaque: in this tree the
// WriteAt/Persist handshake never spans a package boundary (DESIGN.md §8),
// so package-local summaries keep the engine simple, fast, and free of
// whole-program load order issues.

type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	cfg  *CFG
	// callers counts direct intra-package call sites of fn (calls through
	// interfaces do not resolve to fn and are not counted).
	callers int
}

type callGraph struct {
	nodes map[*types.Func]*cgNode
	// order lists nodes by declaration position: fixpoint iteration and
	// reporting stay deterministic.
	order []*cgNode
}

// buildCallGraph collects every function declaration with a body in the
// package, builds its CFG, and counts direct call sites.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*cgNode)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &cgNode{fn: fn, decl: fd, cfg: BuildCFG(fd.Body, pass.TypesInfo)}
			g.nodes[fn] = n
			g.order = append(g.order, n)
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		return g.order[i].decl.Pos() < g.order[j].decl.Pos()
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
				if node, ok := g.nodes[callee]; ok {
					node.callers++
				}
			}
			return true
		})
	}
	return g
}

// atomOp classifies what an atom does with respect to a pairing discipline:
// the direct generating/discharging calls it contains, plus calls to
// package-local functions (resolved through the graph).
type atomOp struct {
	call   *ast.CallExpr
	callee *types.Func // non-nil when statically resolved
}

// atomCalls returns the calls inside an atom (outside nested literals) in
// source order.
func atomCalls(info *types.Info, g *callGraph, atom ast.Node) []atomOp {
	var ops []atomOp
	walkSameFunc(atom, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			ops = append(ops, atomOp{call: call, callee: calleeFunc(info, call)})
		}
		return true
	})
	return ops
}

// summarize computes a boolean per-function summary as a monotone fixpoint
// over the call graph: prop(node, cur) may consult cur for callees; the
// fixpoint starts at `false` everywhere and only flips summaries to `true`,
// so iteration terminates. Deterministic: nodes are visited in declaration
// order until a full pass changes nothing.
func (g *callGraph) summarize(prop func(n *cgNode, cur map[*types.Func]bool) bool) map[*types.Func]bool {
	cur := make(map[*types.Func]bool, len(g.order))
	for {
		changed := false
		for _, n := range g.order {
			if cur[n.fn] {
				continue
			}
			if prop(n, cur) {
				cur[n.fn] = true
				changed = true
			}
		}
		if !changed {
			return cur
		}
	}
}

// mustPersistSummaries computes, per function, whether every path from
// entry to a normal return passes a durability handshake — a direct
// Store.Persist call or a call to a function that itself must persist.
// Functions whose normal exit is unreachable are never marked (conservative:
// calling them discharges nothing).
func mustPersistSummaries(pass *Pass, g *callGraph) map[*types.Func]bool {
	return g.summarize(func(n *cgNode, cur map[*types.Func]bool) bool {
		transfer := func(done bool, atom ast.Node) bool {
			if done {
				return true
			}
			for _, op := range atomCalls(pass.TypesInfo, g, atom) {
				if isStorePersist(pass.TypesInfo, op.call) {
					return true
				}
				if op.callee != nil && cur[op.callee] {
					return true
				}
			}
			return false
		}
		edge := func(done bool, _ *Cond) bool { return done }
		// Must-analysis: a path that has not persisted dominates the join.
		join := func(dst, src bool) (bool, bool) { return dst && src, dst && !src }
		in := solveMust(n.cfg, transfer, edge, join)
		reached, done := in[n.cfg.Exit.Index][0], in[n.cfg.Exit.Index][1]
		return reached && done
	})
}

// solveMust is solveForward specialized to a bool lattice with an explicit
// reachability bit (nil-state cannot be expressed with a plain bool).
// Returns per-block [reached, value].
func solveMust(
	c *CFG,
	transfer func(bool, ast.Node) bool,
	edge func(bool, *Cond) bool,
	join func(dst, src bool) (merged, changed bool),
) [][2]bool {
	type st struct {
		reached bool
		val     bool
	}
	out := solveForward(c, st{reached: true},
		func(s st, atom ast.Node) st {
			s.val = transfer(s.val, atom)
			return s
		},
		func(s st, cond *Cond) st {
			s.val = edge(s.val, cond)
			return s
		},
		func(dst, src st) (st, bool) {
			if !src.reached {
				return dst, false
			}
			if !dst.reached {
				return src, true
			}
			merged, changed := join(dst.val, src.val)
			dst.val = merged
			return dst, changed
		},
	)
	res := make([][2]bool, len(out))
	for i, s := range out {
		res[i] = [2]bool{s.reached, s.val}
	}
	return res
}

// isStorePersist reports whether the call is the durability handshake: a
// Persist method call on the device store type.
func isStorePersist(info *types.Info, call *ast.CallExpr) bool {
	return isStoreMethod(info, call, "Persist")
}

// isStoreWriteAt reports whether the call stages data into the device
// store's volatile tier.
func isStoreWriteAt(info *types.Info, call *ast.CallExpr) bool {
	return isStoreMethod(info, call, "WriteAt")
}

// isStoreMethod matches a method call on the simulated device store by
// receiver type name, the same bare-name idiom the cyclecost analyzer uses:
// internal/analysis must not import the packages it checks, and there is a
// single `Store` type in the tree (internal/sim/device).
func isStoreMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return recvTypeName(sig.Recv().Type()) == "Store"
}
