// Package persist is the persistpair golden: every device write staged with
// Store.WriteAt must reach its Persist durability handshake on every CFG
// path to a normal return. Findings anchor at the unpaired WriteAt (or at
// the call through which pending writes escape).
package persist

import "errors"

var errFake = errors.New("fake")

// Store mirrors the simulated device store's durability surface.
type Store struct{}

func (s *Store) WriteAt(off uint64, b []byte)         {}
func (s *Store) Persist(off uint64, n int, at uint64) {}
func (s *Store) CheckWrite(at, off uint64, n int) (uint64, error) {
	return 0, nil
}

func paired(st *Store, b []byte) {
	st.WriteAt(0, b)
	st.Persist(0, len(b), 1)
}

func earlyReturnLeak(st *Store, b []byte) error {
	st.WriteAt(0, b) // want "unpaired"
	if bad() {
		return errFake
	}
	st.Persist(0, len(b), 1)
	return nil
}

// correlatedGuards is the I/O-engine shape: the write and its handshake sit
// under separate ifs testing the same fault result. The guard correlation
// must pair them without a false positive.
func correlatedGuards(st *Store, b []byte) {
	_, ferr := st.CheckWrite(1, 0, len(b))
	if ferr == nil {
		st.WriteAt(0, b)
	}
	step()
	if ferr == nil {
		st.Persist(0, len(b), 1)
	}
}

// elseBranchGuard is the direct-mapping shape: the write in the else of a
// negated test (`ferr != nil`), the handshake under the positive test.
func elseBranchGuard(st *Store, b []byte) {
	_, ferr := st.CheckWrite(1, 0, len(b))
	if ferr != nil {
		record(ferr)
	} else {
		st.WriteAt(0, b)
	}
	if ferr == nil {
		st.Persist(0, len(b), 1)
	}
}

// branchPaired persists on both arms (the block-layer PMem/NVMe split).
func branchPaired(st *Store, b []byte, pmem bool) {
	st.WriteAt(0, b)
	if pmem {
		st.Persist(0, len(b), 1)
	} else {
		st.Persist(0, len(b), 2)
	}
}

func branchLeak(st *Store, b []byte, pmem bool) {
	st.WriteAt(0, b) // want "unpaired"
	if pmem {
		st.Persist(0, len(b), 1)
	}
}

// stage mirrors core's flushFrame: the pending write escapes to the caller,
// which inherits the persist obligation. stage itself is not a finding — it
// has intra-package callers that carry the fact.
func stage(st *Store, b []byte) {
	st.WriteAt(0, b)
}

func stageCallerPersists(st *Store, b []byte) {
	stage(st, b)
	st.Persist(0, len(b), 1)
}

func stageCallerLeaks(st *Store, b []byte) {
	stage(st, b) // want "call to stage stages a device WriteAt"
}

// persistAll persists on every path, so a call to it discharges pending
// writes (the call-graph mustPersist summary).
func persistAll(st *Store, n int, fast bool) {
	if fast {
		st.Persist(0, n, 1)
	} else {
		st.Persist(0, n, 2)
	}
}

func viaMustPersist(st *Store, b []byte) {
	st.WriteAt(0, b)
	persistAll(st, len(b), true)
}

// twoStores: a Persist on a different receiver does not pair a write on
// this one.
func twoStores(a, b *Store, buf []byte) {
	a.WriteAt(0, buf) // want "unpaired"
	b.Persist(0, len(buf), 1)
}

// loopPaired: in-loop pairing must survive the loop-exit edge (loop
// conditions are not correlation guards — the induction variable mutates).
func loopPaired(st *Store, b []byte, n int) {
	for i := 0; i < n; i++ {
		st.WriteAt(uint64(i), b)
		st.Persist(uint64(i), len(b), 1)
	}
}

func loopLeak(st *Store, b []byte, n int) error {
	for i := 0; i < n; i++ {
		st.WriteAt(uint64(i), b) // want "unpaired"
		if bad() {
			return errFake
		}
		st.Persist(uint64(i), len(b), 1)
	}
	return nil
}

// litLeak: function literals are leaf units; nothing can carry their
// obligation.
func litLeak(st *Store, b []byte) {
	go func() {
		st.WriteAt(0, b) // want "unpaired"
	}()
}

func handoff(st *Store, b []byte) {
	//aqlint:ignore persistpair -- durability scheduled by the caller's sync barrier
	st.WriteAt(0, b)
}

func bad() bool        { return false }
func step()            {}
func record(err error) {}
