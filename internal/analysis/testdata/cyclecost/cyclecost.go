// Package cycles is the cyclecost golden: the stand-in types mirror the
// transition-cost surface's method names (engine.Proc, host.Hypervisor,
// core.Runtime), which is what the analyzer matches on.
package cycles

type Proc struct{}

func (p *Proc) AdvanceUser(cycles uint64)         {}
func (p *Proc) AdvanceSystem(cycles uint64)       {}
func (p *Proc) Advance(cat string, cycles uint64) {}
func (p *Proc) WaitUntil(deadline uint64)         {}
func (p *Proc) SleepIO(cycles uint64)             {}

type Hypervisor struct{}

func (hv *Hypervisor) VMCall(p *Proc, handlerCycles uint64)                  {}
func (hv *Hypervisor) SendShootdownIPIs(p *Proc, targets []int, recv uint64) {}

type Runtime struct{}

func (rt *Runtime) charge(p *Proc, cat string, cycles uint64) {}

type costs struct{ TrapEntry, IPIRecv uint64 }

const handlerBase = 900

func drive(p *Proc, hv *Hypervisor, rt *Runtime, c costs) {
	p.AdvanceUser(1200)                // want "uncalibrated cycle literal in Proc.AdvanceUser"
	p.Advance("fault", 450)            // want "uncalibrated cycle literal in Proc.Advance"
	hv.VMCall(p, 5000)                 // want "uncalibrated cycle literal in Hypervisor.VMCall"
	hv.SendShootdownIPIs(p, nil, 2000) // want "uncalibrated cycle literal in Hypervisor.SendShootdownIPIs"
	rt.charge(p, "lookup", 250)        // want "uncalibrated cycle literal in Runtime.charge"

	p.AdvanceUser(0)             // explicit no-op: allowed
	p.AdvanceUser(c.TrapEntry)   // cost-table field: allowed
	p.AdvanceUser(2 * c.IPIRecv) // scaled cost-table field: allowed
	hv.VMCall(p, handlerBase)    // named constant: allowed
	rt.charge(p, "lookup", c.TrapEntry+handlerBase)
}
