// Package promote is the framelease golden: a 2 MB buddy block claimed with
// freelist.popHuge must, on every path to a return, either be released with
// pushHuge or handed to the published unit page. Findings anchor at the
// popHuge claim.
package promote

type Frame struct{}

type Proc struct{}

type freelist struct{}

func (fl *freelist) popHuge(p *Proc) []*Frame     { return nil }
func (fl *freelist) pushHuge(p *Proc, b []*Frame) {}

type Page struct {
	frames []*Frame
	frame  *Frame
}

// pairedAbort is the promotion-protocol shape: failed claim returns nil,
// busy extents push the block back, success hands it to the unit page.
func pairedAbort(p *Proc, fl *freelist) *Page {
	block := fl.popHuge(p)
	if block == nil {
		return nil
	}
	if busy() {
		fl.pushHuge(p, block)
		return nil
	}
	return &Page{frames: block, frame: block[0]}
}

func leakOnAbort(p *Proc, fl *freelist) *Page {
	block := fl.popHuge(p) // want "may leak on a path to return"
	if block == nil {
		return nil
	}
	if busy() {
		return nil
	}
	return &Page{frames: block}
}

func discarded(p *Proc, fl *freelist) {
	fl.popHuge(p) // want "popHuge result discarded"
}

// retryLoop: the nil-claim edge discharges on continue; success consumes.
func retryLoop(p *Proc, fl *freelist) *Page {
	for i := 0; i < 3; i++ {
		block := fl.popHuge(p)
		if block == nil {
			continue
		}
		return &Page{frames: block}
	}
	return nil
}

var stash []*Frame

func stashClaim(p *Proc, fl *freelist) {
	//aqlint:ignore framelease -- claim escapes via the stash; the reclaimer releases it
	stash = fl.popHuge(p)
}

func busy() bool { return false }
