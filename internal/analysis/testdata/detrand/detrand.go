// Package clockuser is the detrand golden: wall-clock reads and global
// (unseeded) math/rand calls are forbidden in deterministic packages; a
// seeded *rand.Rand threaded from the engine is the sanctioned source.
package clockuser

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want "time.Now in deterministic package"
	elapsed := time.Since(start) // want "time.Since in deterministic package"
	time.Sleep(elapsed)          // Sleep blocks but reads no clock: not flagged
	return 2 * time.Second       // durations themselves are fine
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle"
	return rand.Intn(100)              // want "global rand.Intn"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the sanctioned path
	return r.Intn(100)                  // method on a seeded *rand.Rand: fine
}

func suppressed() int64 {
	//aqlint:ignore detrand -- host-side timestamp for a log line, never enters simulated state
	return time.Now().UnixNano()
}
