// Package spans is the spanpair golden: a span begun in a function must be
// closed on every return path, which in practice means a defer registered
// right after BeginSpan. Findings anchor at the leaking BeginSpan.
package spans

type Proc struct{}

func (p *Proc) BeginSpan(name string) {}
func (p *Proc) EndSpan()              {}

func deferred(p *Proc) {
	p.BeginSpan("work")
	defer p.EndSpan()
	if bad() {
		return // covered by the defer
	}
}

func balancedInline(p *Proc) {
	p.BeginSpan("work")
	step()
	p.EndSpan()
}

func earlyReturnLeak(p *Proc) {
	p.BeginSpan("work") // want "may stay open on a return path"
	if bad() {
		return
	}
	p.EndSpan()
}

func fallOffLeak(p *Proc) {
	p.BeginSpan("work") // want "may stay open on a return path"
	step()
}

func nestedLiteralIsOwnUnit(p *Proc) {
	p.BeginSpan("outer")
	defer p.EndSpan()
	f := func() {
		p.BeginSpan("inner") // want "may stay open on a return path"
		step()
	}
	f()
}

func handoff(p *Proc) {
	//aqlint:ignore spanpair -- span deliberately crosses the function boundary; closed by the completion callback
	p.BeginSpan("async")
}

func bad() bool { return false }
func step()     {}
