// Package world is the crashclean golden: code on simulated threads must
// not absorb the crash panic-sentinel with recover, and must not register
// deferred user-space cleanup — defers run during crash unwinding, and a
// simulated power cut must leave locks, waitgroups and handles exactly as
// they were.
package world

// Proc, Mutex and WaitGroup mirror the engine's simulated primitives.
type Proc struct{}

func (p *Proc) EndSpan() {}

type Mutex struct{}

func (m *Mutex) Lock(p *Proc)   {}
func (m *Mutex) Unlock(p *Proc) {}

type WaitGroup struct{}

func (w *WaitGroup) Done(p *Proc) {}

// SigBus is a concrete locally-owned panic value: asserting to it cannot
// absorb the engine-private crash sentinel.
type SigBus struct{ VA uint64 }

func deferredUnlock(p *Proc, mu *Mutex) {
	mu.Lock(p)
	defer mu.Unlock(p) // want "deferred Unlock"
	step()
}

func deferredDone(p *Proc, wg *WaitGroup) {
	defer wg.Done(p) // want "deferred Done"
	step()
}

func inlineCleanupOK(p *Proc, mu *Mutex) {
	mu.Lock(p)
	step()
	mu.Unlock(p)
}

// deferredSpanOK: the span stack is engine-owned and crash-tolerant.
func deferredSpanOK(p *Proc) {
	defer p.EndSpan()
	step()
}

func deferredLitCleanup(p *Proc, wg *WaitGroup) {
	defer func() { // want "Done.. inside a deferred func"
		wg.Done(p)
	}()
	step()
}

// deferredLitBookkeepingOK: a deferred literal that only mutates fields is
// crash-indifferent bookkeeping.
func deferredLitBookkeepingOK() {
	n := 0
	defer func() { n-- }()
	_ = n
}

func recoverSwallows() {
	defer func() {
		if r := recover(); r != nil { // want "absorb the crash panic-sentinel"
			step()
		}
	}()
	step()
}

// recoverRepanicsOK is the sanctioned pattern: nil and the concrete local
// type are handled, everything else — including the sentinel — re-panics.
func recoverRepanicsOK() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		sb, ok := r.(*SigBus)
		if !ok {
			panic(r)
		}
		handle(sb)
	}()
	step()
}

// recoverAssertOK: a panicking assertion either proves the local type or
// re-raises the recovered value itself.
func recoverAssertOK() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		handle(r.(*SigBus))
	}()
	step()
}

// recoverTypeSwitchOK: concrete cases and the nil case discharge; default
// re-panics.
func recoverTypeSwitchOK() {
	defer func() {
		r := recover()
		switch r.(type) {
		case nil:
		case *SigBus:
			step()
		default:
			panic(r)
		}
	}()
	step()
}

func recoverDiscarded() {
	defer func() {
		recover() // want "absorb the crash panic-sentinel"
	}()
	step()
}

func recoverSanctioned() {
	defer func() {
		//aqlint:ignore crashclean -- harness boundary: converts the sentinel for the test driver
		if r := recover(); r != nil {
			step()
		}
	}()
	step()
}

func step()          {}
func handle(*SigBus) {}
