package eio

import "errors"

// ErrMedia stands in for the typed device errors the real I/O engines
// surface; what errdrop tracks is the declaring file's name, not the type.
var ErrMedia = errors.New("media error")

type Engine struct{}

func (e *Engine) ReadRun(off, n uint64) (uint64, error)  { return n, ErrMedia }
func (e *Engine) WriteRun(off, n uint64) (uint64, error) { return n, ErrMedia }
func (e *Engine) DirectWrite(off uint64) error           { return ErrMedia }
