package eio

// InjectFault arms a deterministic device fault; the returned error reports
// an invalid plan and must not be dropped.
func InjectFault(plan string) error { return ErrMedia }
