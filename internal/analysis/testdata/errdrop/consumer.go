// Package eio is the errdrop golden: typed I/O errors surfaced by
// ioengine.go/faults.go must not be discarded in internal/core packages.
package eio

func helper() error { return nil } // declared here, not in a tracked file

func drops(e *Engine) {
	n, _ := e.ReadRun(0, 8) // want "typed I/O error from ReadRun discarded"
	_ = n
	e.DirectWrite(0)    // want "typed I/O error from DirectWrite ignored"
	InjectFault("plan") // want "typed I/O error from InjectFault ignored"
	_ = helper()        // untracked declaring file: fine
}

func handles(e *Engine) error {
	if _, err := e.WriteRun(0, 8); err != nil {
		return err
	}
	if err := e.DirectWrite(0); err != nil {
		return err
	}
	return InjectFault("plan")
}

func suppressedDrop(e *Engine) {
	//aqlint:ignore errdrop -- readahead probe: failure falls back to the demand path
	e.DirectWrite(0)
}
