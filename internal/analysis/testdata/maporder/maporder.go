// Package maps is the maporder golden: ranging over a map is fine only when
// the body's effects commute; anything order-sensitive must iterate sorted
// keys or carry an //aqlint:sorted justification.
package maps

func advance(k string) {}

func calls(m map[string]int) {
	for k := range m { // want "call may advance clocks"
		advance(k)
	}
}

func sends(m map[string]int, ch chan string) {
	for k := range m { // want "channel send inside the loop"
		ch <- k
	}
}

func lastWriterWins(m map[string]int) int {
	last := 0
	for _, v := range m { // want "assignment to outer state is last-writer-wins"
		last = v
	}
	return last
}

func orderedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want "append builds an ordered slice"
		keys = append(keys, k)
	}
	return keys
}

func commutes(m map[string]int, out map[string]int, slots []int) (n, sum int) {
	for k, v := range m { // counters, += and per-key writes all commute
		n++
		sum += v
		out[k] = v
		slots[v] = v
		local := v * 2
		_ = local
	}
	for k := range m { // delete on the ranged map is order-free
		delete(m, k)
	}
	return n, sum
}

func justified(m map[string]int) int {
	last := 0
	//aqlint:sorted -- ablation-only debug dump; the value never feeds simulated state
	for _, v := range m {
		last = v
	}
	return last
}
