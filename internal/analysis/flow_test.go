package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Tests for the flow-aware engine against the REAL tree: the fixed
// violations stay fixed, and deleting any single durability handshake is
// caught statically (the in-band proof the issue demands).

const repoRoot = "../.."

// realPkgFiles returns the default-build, non-test Go file names of a real
// package directory (the file set `aqlint ./...` analyzes).
func realPkgFiles(t *testing.T, srcDir string) []string {
	t.Helper()
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("read %s: %v", srcDir, err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		// Skip the aqdebug variant: LoadDir has no build-tag awareness and
		// the debug_on/debug_off pair redeclares the same symbols.
		if bytes.Contains(src, []byte("//go:build aqdebug")) {
			continue
		}
		names = append(names, name)
	}
	return names
}

// loadRealPkg copies a real package into a temp dir — applying mutate to
// each file body on the way, nil for verbatim — and type-checks it under
// its real import path.
func loadRealPkg(t *testing.T, rel, pkgPath string, mutate func(name string, src []byte) []byte) *Package {
	t.Helper()
	srcDir := filepath.Join(repoRoot, rel)
	tmp := t.TempDir()
	for _, name := range realPkgFiles(t, srcDir) {
		src, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if mutate != nil {
			src = mutate(name, src)
		}
		if err := os.WriteFile(filepath.Join(tmp, name), src, 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	pkg, err := LoadDir(repoRoot, tmp, pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	return pkg
}

// runOne runs a single analyzer over one package.
func runOne(t *testing.T, pkg *Package, a *Analyzer) *RunResult {
	t.Helper()
	res, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	return res
}

// TestRealTreeClean pins the violations this PR fixed: the graph workers
// release their waitgroup inline instead of by defer (crashclean), and
// every staged device write in core and host pairs with its Persist
// (persistpair) while every buddy claim is released or consumed
// (framelease). On the pre-fix tree the graph case fails with three
// deferred-Done findings.
func TestRealTreeClean(t *testing.T) {
	cases := []struct {
		rel, pkgPath string
		analyzer     *Analyzer
	}{
		{"internal/graph", "aquila/internal/graph", Crashclean},
		{"internal/core", "aquila/internal/core", Persistpair},
		{"internal/core", "aquila/internal/core", Framelease},
		{"internal/host", "aquila/internal/host", Persistpair},
		{"internal/spdk", "aquila/internal/spdk", Persistpair},
	}
	for _, tc := range cases {
		t.Run(tc.rel+"/"+tc.analyzer.Name, func(t *testing.T) {
			pkg := loadRealPkg(t, tc.rel, tc.pkgPath, nil)
			res := runOne(t, pkg, tc.analyzer)
			for _, f := range res.Findings {
				t.Errorf("unexpected finding: %s", f)
			}
			if res.Suppressed != 0 {
				t.Errorf("suppressed = %d, want 0 (no ignore directives may hide %s findings)",
					res.Suppressed, tc.analyzer.Name)
			}
		})
	}
}

// persistSite is one statement-level Store.Persist call in a real package.
type persistSite struct {
	file string
	idx  int // ordinal among Persist statements in the file
	line int
}

// listPersistSites enumerates the Persist call statements of a package.
func listPersistSites(t *testing.T, srcDir string) []persistSite {
	t.Helper()
	var sites []persistSite
	for _, name := range realPkgFiles(t, srcDir) {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, name, mustRead(t, filepath.Join(srcDir, name)), 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		idx := 0
		ast.Inspect(f, func(n ast.Node) bool {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Persist" {
						sites = append(sites, persistSite{
							file: name, idx: idx, line: fset.Position(es.Pos()).Line,
						})
						idx++
					}
				}
			}
			return true
		})
	}
	return sites
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return src
}

// dropStmt parses src, replaces the idx-th statement matched by sel with a
// compile-preserving tombstone (`_, _, ... = args` keeps every operand
// used; nil replacement deletes the statement), and reprints the file.
func dropStmt(t *testing.T, name string, src []byte, idx int, method string, keepArgs bool) []byte {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	count := 0
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range blk.List {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != method {
				continue
			}
			if count == idx {
				if keepArgs {
					lhs := make([]ast.Expr, len(call.Args))
					for j := range lhs {
						lhs[j] = ast.NewIdent("_")
					}
					blk.List[i] = &ast.AssignStmt{
						Lhs: lhs, Tok: token.ASSIGN, Rhs: call.Args,
					}
				} else {
					blk.List = append(blk.List[:i:i], blk.List[i+1:]...)
				}
				found = true
			}
			count++
			if found {
				return false
			}
		}
		return true
	})
	if !found {
		t.Fatalf("%s: %s statement #%d not found", name, method, idx)
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, f); err != nil {
		t.Fatalf("print %s: %v", name, err)
	}
	return buf.Bytes()
}

// TestPersistDeletionCaughtStatically is the acceptance proof: deleting any
// single Persist call on a device write path in core or host leaves a
// persistpair finding that names the unpaired WriteAt. The deletion keeps
// the operands alive (`_, _, _ = off, n, at`) so the package still
// compiles — exactly the refactoring slip the analyzer exists to catch.
func TestPersistDeletionCaughtStatically(t *testing.T) {
	pkgs := []struct{ rel, pkgPath string }{
		{"internal/core", "aquila/internal/core"},
		{"internal/host", "aquila/internal/host"},
	}
	for _, pc := range pkgs {
		sites := listPersistSites(t, filepath.Join(repoRoot, pc.rel))
		if len(sites) == 0 {
			t.Fatalf("%s: no Persist sites found", pc.rel)
		}
		for _, site := range sites {
			site := site
			t.Run(fmt.Sprintf("%s/%s:%d", pc.rel, site.file, site.line), func(t *testing.T) {
				pkg := loadRealPkg(t, pc.rel, pc.pkgPath, func(name string, src []byte) []byte {
					if name != site.file {
						return src
					}
					return dropStmt(t, name, src, site.idx, "Persist", true)
				})
				res := runOne(t, pkg, Persistpair)
				if len(res.Findings) == 0 {
					t.Fatalf("deleting Persist at %s:%d goes statically undetected",
						site.file, site.line)
				}
				for _, f := range res.Findings {
					if !strings.Contains(f.Message, "WriteAt") {
						t.Errorf("finding does not name the unpaired WriteAt: %s", f)
					}
				}
			})
		}
	}
}

// TestFrameLeaseDeletionCaught: deleting the busy-extent pushHuge abort in
// hugeFault (the first pushHuge statement of huge.go) leaks the claimed
// block on the abort path and framelease must say so.
func TestFrameLeaseDeletionCaught(t *testing.T) {
	pkg := loadRealPkg(t, "internal/core", "aquila/internal/core", func(name string, src []byte) []byte {
		if name != "huge.go" {
			return src
		}
		return dropStmt(t, name, src, 0, "pushHuge", false)
	})
	res := runOne(t, pkg, Framelease)
	if len(res.Findings) == 0 {
		t.Fatal("deleting the busy-abort pushHuge goes statically undetected")
	}
	for _, f := range res.Findings {
		if !strings.Contains(f.Message, "popHuge") {
			t.Errorf("finding does not name the leaking claim: %s", f)
		}
	}
}

// TestGraphDeferRegression re-introduces the bug this PR fixed — a deferred
// waitgroup release on a simulated worker — and asserts crashclean reports
// it. Together with TestRealTreeClean this pins the fix in both directions.
func TestGraphDeferRegression(t *testing.T) {
	pkg := loadRealPkg(t, "internal/graph", "aquila/internal/graph", func(name string, src []byte) []byte {
		if name != "algorithms.go" {
			return src
		}
		out := bytes.Replace(src,
			[]byte("fn(wp, lo, hi)\n"),
			[]byte("defer wg.Done(wp)\nfn(wp, lo, hi)\n"), 1)
		if bytes.Equal(out, src) {
			t.Fatal("could not re-introduce the deferred Done")
		}
		return out
	})
	res := runOne(t, pkg, Crashclean)
	found := false
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "deferred Done()") {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-introduced deferred Done not reported; findings: %v", res.Findings)
	}
}

// TestRunOrderDeterminism shuffles the package input order and asserts the
// findings come back identical: Run's cross-package sort (package path,
// file, offset, analyzer) must make output independent of load order.
func TestRunOrderDeterminism(t *testing.T) {
	load := func(dir, pkgPath string) *Package {
		pkg, err := LoadDir(".", filepath.Join("testdata", dir), pkgPath)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		return pkg
	}
	pkgs := []*Package{
		load("detrand", "aquila/internal/sim/clockuser"),
		load("maporder", "aquila/internal/core/maps"),
		load("persistpair", "aquila/internal/core/persist"),
		load("crashclean", "aquila/internal/sim/world"),
		load("framelease", "aquila/internal/core/promote"),
	}
	base, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(base.Findings) == 0 {
		t.Fatal("expected findings from the golden packages")
	}
	perms := [][]int{
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
		{1, 4, 0, 3, 2},
	}
	for _, perm := range perms {
		shuffled := make([]*Package, len(pkgs))
		for i, j := range perm {
			shuffled[i] = pkgs[j]
		}
		res, err := Run(shuffled, All())
		if err != nil {
			t.Fatalf("run perm %v: %v", perm, err)
		}
		if !reflect.DeepEqual(res.Findings, base.Findings) {
			t.Errorf("perm %v changed the output:\nbase: %v\ngot:  %v",
				perm, base.Findings, res.Findings)
		}
		if res.Suppressed != base.Suppressed {
			t.Errorf("perm %v changed suppressed: %d != %d", perm, res.Suppressed, base.Suppressed)
		}
	}
}
