package analysis

import "strings"

// The deterministic package trees: everything under them runs inside the
// simulated worlds, so wall-clock time, global randomness, and map-order
// effects there corrupt the goldens (fig5b/fig7/fig8a) and the fault-plan
// determinism guarantees.
var deterministicPrefixes = []string{
	"aquila/internal/sim",
	"aquila/internal/core",
	"aquila/internal/kvs",
	"aquila/internal/graph",
}

// hasPkgPrefix reports whether path is prefix itself or a package below it.
func hasPkgPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// DeterministicPkg reports whether the import path belongs to a package that
// must be simulation-deterministic.
func DeterministicPkg(path string) bool {
	for _, p := range deterministicPrefixes {
		if hasPkgPrefix(path, p) {
			return true
		}
	}
	return false
}

// CycleAccountedPkg reports whether the import path is part of the
// transition-cost surface: the simulated CPU/runtime layers where every raw
// clock advance must be traceable to the calibrated cost table (cpu.Costs /
// core.Params / named constants). The engine package itself is excluded — it
// defines the advance primitives.
func CycleAccountedPkg(path string) bool {
	if hasPkgPrefix(path, "aquila/internal/sim/engine") {
		return false
	}
	return hasPkgPrefix(path, "aquila/internal/sim") ||
		hasPkgPrefix(path, "aquila/internal/core")
}

// ErrDropPkg reports whether the import path is held to the typed-I/O-error
// propagation rule (PR 3's end-to-end error guarantees live in core).
func ErrDropPkg(path string) bool {
	return hasPkgPrefix(path, "aquila/internal/core")
}

// spanInstrumentedPrefixes are the packages carrying BeginSpan/EndSpan
// instrumentation: the runtime layers (fault handlers, eviction, msync/fsync)
// and the key-value stores whose hot paths feed the profiler. A leaked span
// there corrupts the per-process span stack, so the spanpair discipline is
// enforced on this tree.
var spanInstrumentedPrefixes = []string{
	"aquila/internal/sim/engine",
	"aquila/internal/core",
	"aquila/internal/host",
	"aquila/internal/kvs",
}

// SpanInstrumentedPkg reports whether the import path carries span
// instrumentation and is therefore held to the spanpair discipline.
func SpanInstrumentedPkg(path string) bool {
	for _, p := range spanInstrumentedPrefixes {
		if hasPkgPrefix(path, p) {
			return true
		}
	}
	return false
}

// persistPairPrefixes are the packages that stage device writes and own the
// matching Persist durability handshakes: the I/O engines, the host OS
// layers (page cache, block layer, io_uring), and the SPDK driver.
var persistPairPrefixes = []string{
	"aquila/internal/core",
	"aquila/internal/host",
	"aquila/internal/spdk",
}

// PersistPairPkg reports whether the import path is part of the
// durability-handshake surface and therefore held to the persistpair
// discipline (every Store.WriteAt paired with a Persist on all paths).
func PersistPairPkg(path string) bool {
	for _, p := range persistPairPrefixes {
		if hasPkgPrefix(path, p) {
			return true
		}
	}
	return false
}

// crashUnwindPrefixes are the packages whose code runs on simulated Procs
// and therefore unwinds through the crash panic-sentinel: the runtime
// layers, the stores and workloads above them, and the simulated host —
// everything except the engine itself, which owns the sentinel and performs
// the one sanctioned recover.
var crashUnwindPrefixes = []string{
	"aquila/internal/sim",
	"aquila/internal/core",
	"aquila/internal/host",
	"aquila/internal/kvs",
	"aquila/internal/graph",
	"aquila/internal/spdk",
}

// CrashUnwindPkg reports whether the import path runs on simulated threads
// and is held to the crashclean discipline (no recover that could absorb
// the crash sentinel, no deferred user-space cleanup).
func CrashUnwindPkg(path string) bool {
	if hasPkgPrefix(path, "aquila/internal/sim/engine") {
		return false
	}
	for _, p := range crashUnwindPrefixes {
		if hasPkgPrefix(path, p) {
			return true
		}
	}
	return false
}

// FrameLeasePkg reports whether the import path contains the 2 MB buddy
// promotion protocol and is held to the framelease discipline.
func FrameLeasePkg(path string) bool {
	return hasPkgPrefix(path, "aquila/internal/core")
}
