package analysis

import (
	"go/ast"
	"go/types"
)

// Framelease guards the 2 MB promotion protocol (DESIGN.md §7): hugeFault
// claims a buddy block with freelist.popHuge and must, on every path out of
// the claim window, either abort with pushHuge or hand the block to the
// published unit page. A path that returns while the claim is still loose
// leaks 512 frames from the buddy allocator — invisible until memory
// pressure makes promotions fail permanently.
//
// The check runs the must-pair solver per function unit:
//
//   - gen: a popHuge call on the freelist type. If the result is bound to a
//     variable the fact tracks it; a discarded result is an unconditional
//     leak (nothing can release it).
//   - kill: any use of the claimed variable outside a nil-comparison — a
//     pushHuge return, handing the block to a composite literal, indexing a
//     frame out of it — transfers ownership out of the loose window.
//     Nil-comparison edges (`if block == nil { return }`) discharge the
//     fact on the failed-claim path.
//
// Scope: core (FrameLeasePkg), where the promotion protocol lives.
var Framelease = &Analyzer{
	Name: "framelease",
	Doc: "a 2 MB buddy block claimed with popHuge must be released with " +
		"pushHuge or handed to the published unit on every path to a return",
	Run: runFramelease,
}

func runFramelease(pass *Pass) error {
	if !FrameLeasePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		funcUnits(f, func(body *ast.BlockStmt) {
			checkFrameLeaseUnit(pass, body)
		})
	}
	return nil
}

func checkFrameLeaseUnit(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	cfg := BuildCFG(body, info)
	facts := solvePairs(pairProblem{
		cfg: cfg,
		gen: func(atom ast.Node) []pairFact {
			call := popHugeCall(info, atom)
			if call == nil {
				return nil
			}
			f := pairFact{Pos: call.Pos(), Gen: atom, Guards: cfg.Guards(atom)}
			if as, ok := atom.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				f.Var = lhsObject(info, as.Lhs[0])
			}
			return []pairFact{f}
		},
		kill: func(atom ast.Node, f pairFact) bool {
			return f.Var != nil && usesVar(info, atom, f.Var)
		},
	})
	for _, f := range facts {
		if f.Var == nil {
			pass.Reportf(f.Pos,
				"popHuge result discarded: the claimed 2 MB buddy block can never be released")
			continue
		}
		pass.Reportf(f.Pos,
			"2 MB buddy block claimed by popHuge may leak on a path to return: "+
				"release it with pushHuge or hand it to the published unit first")
	}
}

// popHugeCall returns the popHuge freelist-method call inside the atom, if
// any.
func popHugeCall(info *types.Info, atom ast.Node) *ast.CallExpr {
	var found *ast.CallExpr
	walkSameFunc(atom, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return found == nil
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Name() == "popHuge" {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				recvTypeName(sig.Recv().Type()) == "freelist" {
				found = call
			}
		}
		return found == nil
	})
	return found
}
