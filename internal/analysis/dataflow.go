package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Generic forward dataflow over the CFGs of cfg.go, plus the must-pair fact
// layer the resource analyzers (persistpair, framelease, crashclean) share.
//
// The solver is a plain worklist fixpoint. Determinism matters more than
// speed here (findings feed golden tests and the CI gate): blocks are
// visited in index order via a sorted worklist, and all reported fact sets
// are ordered by generation position.

// solveForward runs a forward fixpoint: each block's input state is the
// join of its predecessors' outputs (filtered per edge), the block output
// is transfer folded over its atoms. States must be treated as immutable by
// transfer (return a fresh value when changing anything). A nil state means
// "unreachable"; join(nil, s) must equal a copy of s.
//
// Returns the input state of every block, indexed by Block.Index.
func solveForward[S any](
	c *CFG,
	entry S,
	transfer func(S, ast.Node) S,
	edge func(S, *Cond) S,
	join func(S, S) (S, bool),
) []S {
	in := make([]S, len(c.Blocks))
	inSet := make([]bool, len(c.Blocks))
	in[c.Entry.Index] = entry
	inSet[c.Entry.Index] = true

	queued := make([]bool, len(c.Blocks))
	var work []int
	push := func(i int) {
		if !queued[i] {
			queued[i] = true
			work = append(work, i)
		}
	}
	push(c.Entry.Index)
	for len(work) > 0 {
		sort.Ints(work)
		i := work[0]
		work = work[1:]
		queued[i] = false
		if !inSet[i] {
			continue
		}
		b := c.Blocks[i]
		st := in[i]
		for _, a := range b.Atoms {
			st = transfer(st, a)
		}
		for _, e := range b.Succs {
			ns := st
			if e.Cond != nil {
				ns = edge(st, e.Cond)
			}
			j := e.To.Index
			if !inSet[j] {
				var zero S
				merged, _ := join(zero, ns)
				in[j] = merged
				inSet[j] = true
				push(j)
			} else if merged, changed := join(in[j], ns); changed {
				in[j] = merged
				push(j)
			}
		}
	}
	return in
}

// pairFact is one outstanding obligation: a resource-acquiring operation
// (device write staged, buddy block claimed, panic value recovered) that has
// not yet met its discharging operation on the current path.
type pairFact struct {
	// Pos anchors the finding: the position of the generating call.
	Pos token.Pos
	// Gen is the atom that generated the fact (self-kill exclusion).
	Gen ast.Node
	// Var is the bound resource variable, when there is one (the block from
	// popHuge, the value from recover); nil for positional facts.
	Var types.Object
	// Recv is the printed receiver of the generating call ("" when the fact
	// is receiver-agnostic, e.g. carried through a callee summary).
	Recv string
	// Via names an intermediate callee when the fact entered through a
	// call-graph summary rather than a direct operation.
	Via string
	// Guards are the enclosing if-conditions at the generation site; an
	// edge contradicting one kills the fact (correlated-guard paths).
	Guards []Cond
}

// pairState maps generation position to fact. nil means unreachable; an
// empty non-nil map means reachable with no outstanding obligations.
type pairState map[token.Pos]pairFact

func clonePairs(s pairState) pairState {
	n := make(pairState, len(s)+1)
	for k, v := range s {
		n[k] = v
	}
	return n
}

// joinPairs unions two states (may-analysis: an obligation outstanding on
// any path into the block is outstanding in the block).
func joinPairs(dst, src pairState) (pairState, bool) {
	if src == nil {
		return dst, false
	}
	if dst == nil {
		return clonePairs(src), true
	}
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			if !changed {
				dst = clonePairs(dst)
				changed = true
			}
			dst[k] = v
		}
	}
	return dst, changed
}

// pairProblem configures a must-pair run for one function unit.
type pairProblem struct {
	cfg *CFG
	// gen returns the facts the atom generates (usually zero or one).
	gen func(atom ast.Node) []pairFact
	// kill reports whether the atom discharges the fact.
	kill func(atom ast.Node, f pairFact) bool
	// typeTests maps a comma-ok variable to the asserted variable for
	// concrete type assertions (`cp, ok := r.(*T)`): an edge where the ok
	// variable is true discharges facts bound to r.
	typeTests map[types.Object]types.Object
	// includePanicExit also collects obligations reaching PanicExit.
	includePanicExit bool
}

// solvePairs runs the must-pair analysis and returns the facts that reach
// the function's exit, ordered by generation position.
func solvePairs(p pairProblem) []pairFact {
	transfer := func(s pairState, atom ast.Node) pairState {
		var out pairState = s
		mutated := false
		mutable := func() pairState {
			if !mutated {
				out = clonePairs(out)
				mutated = true
			}
			return out
		}
		for k, f := range s {
			if atom != f.Gen && p.kill(atom, f) {
				delete(mutable(), k)
			}
		}
		for _, f := range p.gen(atom) {
			mutable()[f.Pos] = f
		}
		return out
	}
	edge := func(s pairState, c *Cond) pairState {
		var out pairState = s
		mutated := false
		for k, f := range s {
			if !edgeKills(f, c, p.typeTests) {
				continue
			}
			if !mutated {
				out = clonePairs(out)
				mutated = true
			}
			delete(out, k)
		}
		return out
	}
	in := solveForward(p.cfg, pairState{}, transfer, edge, joinPairs)

	merged := pairState(nil)
	merged, _ = joinPairs(merged, in[p.cfg.Exit.Index])
	if p.includePanicExit {
		merged, _ = joinPairs(merged, in[p.cfg.PanicExit.Index])
	}
	out := make([]pairFact, 0, len(merged))
	for _, f := range merged {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// edgeKills reports whether taking an edge labeled c discharges fact f:
//   - the edge contradicts one of the fact's generation-site guards (the
//     path is infeasible for this fact), or
//   - the fact's variable is proven nil (no resource was acquired), or
//   - the fact's variable passed a concrete type test (type-switch case or
//     comma-ok assertion), which excludes foreign sentinel values.
func edgeKills(f pairFact, c *Cond, typeTests map[types.Object]types.Object) bool {
	for _, g := range f.Guards {
		if g.Key == c.Key && g.Val != c.Val {
			return true
		}
	}
	if f.Var == nil {
		return false
	}
	if c.NilVar == f.Var && c.Val {
		return true
	}
	if c.TypeTestVar == f.Var && c.Val {
		return true
	}
	if c.BoolVar != nil && c.Val && typeTests[c.BoolVar] == f.Var {
		return true
	}
	return false
}

// usesVar reports whether the atom mentions v outside nested function
// literals and outside nil-comparisons (`v == nil` guards the resource, it
// does not consume it).
func usesVar(info *types.Info, atom ast.Node, v types.Object) bool {
	found := false
	walkSameFunc(atom, func(n ast.Node) bool {
		if found {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			if isNilIdent(ast.Unparen(be.X)) || isNilIdent(ast.Unparen(be.Y)) {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
