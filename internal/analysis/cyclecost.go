package analysis

import (
	"go/ast"
	"go/types"
)

// Cyclecost guards the transition-cost surface (paper §3.3/§4.1): inside the
// simulated CPU/runtime layers, every raw clock advance — Proc.Advance*/
// WaitUntil/SleepIO, Hypervisor.VMCall handler cycles, IPI receive costs,
// Runtime.charge — must be traceable to the calibrated cost table (cpu.Costs
// fields, core.Params fields, named constants). A bare integer literal in the
// cycles argument is an uncalibrated magic number: it silently skews the
// fig7/fig8 breakdowns and cannot be swept by parameter studies.
//
// Literal zero is allowed (explicit no-op), as is any expression that
// mentions at least one named cost source.
var Cyclecost = &Analyzer{
	Name: "cyclecost",
	Doc: "raw clock advances on the transition-cost surface must charge the " +
		"cost table (cpu.Costs/core.Params/named constants), not integer literals",
	Run: runCyclecost,
}

// cycleArgIndex maps receiver type name -> method name -> index of the
// cycles argument that must be cost-table-traceable.
var cycleArgIndex = map[string]map[string]int{
	"Proc": {
		"AdvanceUser":   0,
		"AdvanceSystem": 0,
		"Advance":       1,
		"WaitUntil":     0,
		"SleepIO":       0,
	},
	"Hypervisor": {
		"VMCall":            1,
		"SendShootdownIPIs": 2,
	},
	"Runtime": {
		"charge": 2,
	},
}

func runCyclecost(pass *Pass) error {
	if !CycleAccountedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			methods, ok := cycleArgIndex[recvTypeName(sig.Recv().Type())]
			if !ok {
				return true
			}
			idx, ok := methods[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			if literalOnlyInt(arg) && !isConstZero(pass.TypesInfo, arg) {
				pass.Reportf(arg.Pos(),
					"uncalibrated cycle literal in %s.%s: charge a cpu.Costs/core.Params field or a named constant",
					recvTypeName(sig.Recv().Type()), fn.Name())
			}
			return true
		})
	}
	return nil
}

// recvTypeName returns the bare type name of a method receiver ("Proc" for
// *engine.Proc).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// literalOnlyInt reports whether the expression is built entirely from
// integer literals (no identifiers, fields, or calls anywhere).
func literalOnlyInt(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return literalOnlyInt(x.X)
	case *ast.UnaryExpr:
		return literalOnlyInt(x.X)
	case *ast.BinaryExpr:
		return literalOnlyInt(x.X) && literalOnlyInt(x.Y)
	default:
		return false
	}
}

// isConstZero reports whether the expression is the constant 0.
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}
