package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// Spanpair enforces the obs-span discipline: a span begun with
// Proc.BeginSpan must be ended on every path out of the function, typically
// with `defer p.EndSpan()` registered immediately after the begin. A span
// left open corrupts the per-process span stack — every later span on that
// track nests under the leaked frame and the Chrome trace stops matching the
// golden.
//
// The check is lexical, per function body (function literals are independent
// units): at each return, the number of BeginSpan calls seen so far on a
// receiver must not exceed the EndSpan calls seen plus the deferred EndSpans
// registered. Spans intentionally handed across function boundaries need an
// //aqlint:ignore spanpair annotation.
//
// Scope: the span-instrumented tree (SpanInstrumentedPkg) — the runtime
// layers and key-value stores that actually open spans.
var Spanpair = &Analyzer{
	Name: "spanpair",
	Doc: "a span begun in a function must be ended on every return path " +
		"(defer recv.EndSpan() right after BeginSpan)",
	Run: runSpanpair,
}

func runSpanpair(pass *Pass) error {
	if !SpanInstrumentedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		funcUnits(f, func(body *ast.BlockStmt) {
			checkSpanUnit(pass, body)
		})
	}
	return nil
}

// spanCount tracks begin/end/defer totals for one receiver expression.
type spanCount struct {
	begins, ends, defers int
	lastBegin            token.Pos
}

func checkSpanUnit(pass *Pass, body *ast.BlockStmt) {
	counts := map[string]*spanCount{}
	get := func(recv string) *spanCount {
		c := counts[recv]
		if c == nil {
			c = &spanCount{}
			counts[recv] = c
		}
		return c
	}
	// spanCall decodes a (possibly deferred) call into (receiver, method) if
	// it is a BeginSpan/EndSpan method call.
	spanCall := func(call *ast.CallExpr) (string, string, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", "", false
		}
		name := sel.Sel.Name
		if name != "BeginSpan" && name != "EndSpan" {
			return "", "", false
		}
		return recvString(sel.X), name, true
	}
	reported := false
	report := func(pos token.Pos, recv string) {
		if reported {
			return // one finding per unit keeps the noise down
		}
		reported = true
		r := recv
		if r == "" {
			r = "recv"
		}
		pass.Reportf(pos,
			"span begun with %s.BeginSpan may stay open on a return path; close it with defer %s.EndSpan()",
			r, r)
	}
	checkExit := func() {
		recvs := make([]string, 0, len(counts))
		for recv := range counts {
			recvs = append(recvs, recv)
		}
		sort.Strings(recvs)
		for _, recv := range recvs {
			// Anchor the finding at the begin that leaks: that is the line
			// to fix (and the line an //aqlint:ignore rides on).
			if c := counts[recv]; c.begins-c.ends > c.defers {
				report(c.lastBegin, recv)
			}
		}
	}
	walkSameFunc(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if recv, name, ok := spanCall(st.Call); ok && name == "EndSpan" {
				get(recv).defers++
			}
			return false // the deferred call is not an inline end
		case *ast.CallExpr:
			if recv, name, ok := spanCall(st); ok {
				c := get(recv)
				if name == "BeginSpan" {
					c.begins++
					c.lastBegin = st.Pos()
				} else {
					c.ends++
				}
			}
		case *ast.ReturnStmt:
			checkExit()
		}
		return true
	})
	// Falling off the end of the body is the implicit final return.
	checkExit()
}
