package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// Spanpair enforces the obs-span discipline: a span begun with
// Proc.BeginSpan must be ended on every path out of the function, typically
// with `defer p.EndSpan()` registered immediately after the begin. A span
// left open corrupts the per-process span stack — every later span on that
// track nests under the leaked frame and the Chrome trace stops matching the
// golden.
//
// Since aqlint v2 the check is flow-aware: per function body (function
// literals are independent units), the dataflow solver tracks a net
// open-span counter per receiver expression along the CFG. BeginSpan
// increments, EndSpan decrements, and a `defer recv.EndSpan()` decrements at
// registration (defers run on every subsequent exit). At a function exit —
// returns, falling off the end, and panic exits alike, since unwinding
// through an open span corrupts the stack just the same — a receiver whose
// counter is positive on any incoming path leaks. Joins take the worst
// (largest) counter, so a leak on one branch is not masked by balance on
// another. Spans intentionally handed across function boundaries need an
// //aqlint:ignore spanpair annotation.
//
// Scope: the span-instrumented tree (SpanInstrumentedPkg) — the runtime
// layers and key-value stores that actually open spans.
var Spanpair = &Analyzer{
	Name: "spanpair",
	Doc: "a span begun in a function must be ended on every return path " +
		"(defer recv.EndSpan() right after BeginSpan)",
	Run: runSpanpair,
}

func runSpanpair(pass *Pass) error {
	if !SpanInstrumentedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		funcUnits(f, func(body *ast.BlockStmt) {
			checkSpanUnit(pass, body)
		})
	}
	return nil
}

// spanNet is the per-receiver dataflow value: the net number of spans still
// open (begins − ends − registered defers) and the position of the last
// BeginSpan, which anchors the finding (that is the line to fix, and the
// line an //aqlint:ignore rides on).
type spanNet struct {
	net       int
	lastBegin token.Pos
}

// spanNetClamp bounds the counter so unbalanced loops (begin without end in
// a loop body) reach a fixpoint instead of counting up forever.
const spanNetClamp = 32

// spanState maps receiver expression to its counter. nil = unreachable.
type spanState map[string]spanNet

// spanCall decodes a call into (receiver, method) if it is a
// BeginSpan/EndSpan method call.
func spanCall(call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	name := sel.Sel.Name
	if name != "BeginSpan" && name != "EndSpan" {
		return "", "", false
	}
	return recvString(sel.X), name, true
}

func checkSpanUnit(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body, pass.TypesInfo)

	clamp := func(n int) int {
		if n > spanNetClamp {
			return spanNetClamp
		}
		if n < -spanNetClamp {
			return -spanNetClamp
		}
		return n
	}
	bump := func(s spanState, recv string, delta int, begin token.Pos) spanState {
		n := make(spanState, len(s)+1)
		for k, v := range s {
			n[k] = v
		}
		c := n[recv]
		c.net = clamp(c.net + delta)
		if begin != token.NoPos {
			c.lastBegin = begin
		}
		n[recv] = c
		return n
	}
	transfer := func(s spanState, atom ast.Node) spanState {
		if ds, ok := atom.(*ast.DeferStmt); ok {
			// The deferred call runs at exit, not here; registering it
			// guarantees one end on every later path.
			if recv, name, ok := spanCall(ds.Call); ok && name == "EndSpan" {
				s = bump(s, recv, -1, token.NoPos)
			}
			return s
		}
		walkSameFunc(atom, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, name, ok := spanCall(call); ok {
				if name == "BeginSpan" {
					s = bump(s, recv, 1, call.Pos())
				} else {
					s = bump(s, recv, -1, token.NoPos)
				}
			}
			return true
		})
		return s
	}
	edge := func(s spanState, _ *Cond) spanState { return s }
	join := func(dst, src spanState) (spanState, bool) {
		if src == nil {
			return dst, false
		}
		if dst == nil {
			n := make(spanState, len(src))
			for k, v := range src {
				n[k] = v
			}
			return n, true
		}
		changed := false
		for k, sv := range src {
			dv, ok := dst[k]
			mv := dv
			// Worst path wins: the larger open count; on ties, the later
			// begin (closest to the leaking exit).
			if sv.net > mv.net || (sv.net == mv.net && sv.lastBegin > mv.lastBegin) {
				mv = sv
			}
			if !ok || mv != dv {
				if !changed {
					c := make(spanState, len(dst)+1)
					for k2, v2 := range dst {
						c[k2] = v2
					}
					dst = c
					changed = true
				}
				dst[k] = mv
			}
		}
		return dst, changed
	}

	in := solveForward(cfg, spanState{}, transfer, edge, join)
	merged, _ := join(nil, in[cfg.Exit.Index])
	merged, _ = join(merged, in[cfg.PanicExit.Index])

	recvs := make([]string, 0, len(merged))
	for recv := range merged {
		recvs = append(recvs, recv)
	}
	sort.Strings(recvs)
	for _, recv := range recvs {
		c := merged[recv]
		if c.net <= 0 {
			continue
		}
		r := recv
		if r == "" {
			r = "recv"
		}
		// One finding per unit keeps the noise down.
		pass.Reportf(c.lastBegin,
			"span begun with %s.BeginSpan may stay open on a return path; close it with defer %s.EndSpan()",
			r, r)
		break
	}
}
