package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the flow-aware half of aqlint's v2 engine: a deterministic
// intra-procedural control-flow graph over go/ast. Blocks are created in
// source order (stable block indices => stable dataflow iteration => stable
// findings), every expression of the function appears in exactly one atom,
// and edges out of branches carry a canonicalized condition label so the
// dataflow solver (dataflow.go) can discard facts on contradicted paths:
// the `if ferr == nil { WriteAt } ... if ferr == nil { Persist }` shape of
// the I/O engines pairs up without path-insensitive false positives.
//
// Function literals are independent analysis units (as everywhere in this
// package): the builder records a FuncLit inside an expression atom but
// never descends into its body.

// Cond is a canonicalized branch condition attached to a CFG edge: taking
// the edge means the condition's canonical form evaluated to Val. At most
// one of NilVar/BoolVar/TypeTestVar is set; Key is always set and is the
// correlation handle for guard matching (`x != nil` and `!(x == nil)`
// canonicalize to the same Key with flipped Val).
type Cond struct {
	// Key is the canonical printed condition ("ferr == nil", "ok", ...).
	Key string
	// Val is the canonical condition's value on this edge.
	Val bool
	// NilVar is the compared variable when the condition is a nil test of
	// a plain identifier (`x == nil` / `x != nil`).
	NilVar types.Object
	// BoolVar is the variable when the condition is a bare bool identifier.
	BoolVar types.Object
	// TypeTestVar is the switched variable on a type-switch case edge whose
	// case types are all concrete (taking the edge proves the dynamic type).
	TypeTestVar types.Object
}

// negate returns the condition for the opposite edge.
func (c *Cond) negate() *Cond {
	if c == nil {
		return nil
	}
	n := *c
	n.Val = !c.Val
	return &n
}

// Edge is one control-flow successor; Cond is nil for unconditional flow.
type Edge struct {
	To   *Block
	Cond *Cond
}

// Block is a straight-line sequence of atoms. An atom is an ast.Node — a
// simple statement, a branch/loop/switch condition expression, a return
// statement, or a defer statement — and analyzers classify atoms with
// walkSameFunc, so nested function literals stay opaque.
type Block struct {
	Index int
	Atoms []ast.Node
	Succs []Edge
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit collects every normal function exit: each return statement and
	// falling off the end of the body.
	Exit *Block
	// PanicExit collects explicit `panic(...)` statements: crash/SIGBUS
	// unwinding, not an acknowledged completion of the function.
	PanicExit *Block
	// Blocks in creation (source) order.
	Blocks []*Block

	guards map[ast.Node][]Cond
}

// Guards returns the canonical conditions of the if-branches syntactically
// enclosing the atom, outermost first. Facts generated at the atom carry
// them so the solver can drop the fact on a later edge that contradicts one
// (the correlated-guard pattern of the I/O write paths).
func (c *CFG) Guards(atom ast.Node) []Cond { return c.guards[atom] }

type loopFrame struct {
	label      string
	brk, cont  *Block // cont nil for switch/select frames
	isSwitchy  bool
	nextClause *Block // fallthrough target while building a clause
}

type cfgBuilder struct {
	c      *CFG
	info   *types.Info
	cur    *Block // nil after a terminating statement (unreachable code)
	gstack []Cond
	loops  []loopFrame
}

// BuildCFG constructs the CFG of one function body. info may be nil (tests);
// condition canonicalization then resolves no objects but keys still work.
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		c:    &CFG{guards: make(map[ast.Node][]Cond)},
		info: info,
	}
	b.c.Entry = b.newBlock()
	b.c.Exit = b.newBlock()
	b.c.PanicExit = b.newBlock()
	b.cur = b.c.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is the implicit final return.
	b.link(b.cur, b.c.Exit, nil)
	return b.c
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, bl)
	return bl
}

func (b *cfgBuilder) link(from, to *Block, cond *Cond) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond})
}

// atom appends n to the current block, recording the enclosing guard stack.
// Unreachable atoms (after return/panic/branch) land in a fresh dangling
// block so analyzers still see them without polluting reachable paths.
func (b *cfgBuilder) atom(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Atoms = append(b.cur.Atoms, n)
	if len(b.gstack) > 0 {
		b.c.guards[n] = append([]Cond(nil), b.gstack...)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st, "")
	case *ast.RangeStmt:
		b.rangeStmt(st, "")
	case *ast.SwitchStmt:
		b.switchStmt(st, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(st, "")
	case *ast.SelectStmt:
		b.selectStmt(st)
	case *ast.LabeledStmt:
		b.labeledStmt(st)
	case *ast.ReturnStmt:
		b.atom(st)
		b.link(b.cur, b.c.Exit, nil)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(st)
	case *ast.ExprStmt:
		b.atom(st)
		if isPanicCall(b.info, st.X) {
			b.link(b.cur, b.c.PanicExit, nil)
			b.cur = nil
		}
	default:
		// DeferStmt, AssignStmt, GoStmt, SendStmt, IncDecStmt, DeclStmt,
		// EmptyStmt... all straight-line atoms.
		b.atom(s)
	}
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.atom(st.Init)
	}
	b.atom(st.Cond)
	condT := b.canonCond(st.Cond)
	head := b.cur
	after := b.newBlock()

	thenB := b.newBlock()
	b.link(head, thenB, condT)
	b.cur = thenB
	b.withGuard(condT, func() { b.stmtList(st.Body.List) })
	b.link(b.cur, after, nil)

	condF := condT.negate()
	if st.Else != nil {
		elseB := b.newBlock()
		b.link(head, elseB, condF)
		b.cur = elseB
		b.withGuard(condF, func() { b.stmt(st.Else) })
		b.link(b.cur, after, nil)
	} else {
		b.link(head, after, condF)
	}
	b.cur = after
}

// withGuard runs fn with c pushed on the syntactic guard stack.
func (b *cfgBuilder) withGuard(c *Cond, fn func()) {
	if c == nil {
		fn()
		return
	}
	b.gstack = append(b.gstack, *c)
	fn()
	b.gstack = b.gstack[:len(b.gstack)-1]
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.atom(st.Init)
	}
	head := b.newBlock()
	b.link(b.cur, head, nil)
	after := b.newBlock()
	body := b.newBlock()

	b.cur = head
	var condT *Cond
	if st.Cond != nil {
		b.atom(st.Cond)
		condT = b.canonCond(st.Cond)
		b.link(b.cur, body, condT)
		b.link(b.cur, after, condT.negate())
	} else {
		b.link(b.cur, body, nil)
	}

	post := head
	if st.Post != nil {
		post = b.newBlock()
		b.cur = post
		b.atom(st.Post)
		b.link(b.cur, head, nil)
	}

	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: post})
	b.cur = body
	// The loop condition is NOT pushed as a guard: loop variables mutate
	// between iterations, so a fact generated in the body must survive the
	// eventual loop-exit edge (unlike an if, whose guard is re-evaluated on
	// the same values the gen site saw).
	b.stmtList(st.Body.List)
	b.link(b.cur, post, nil)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string) {
	b.atom(st.X)
	head := b.newBlock()
	b.link(b.cur, head, nil)
	after := b.newBlock()
	body := b.newBlock()
	b.link(head, body, nil)
	b.link(head, after, nil)

	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(st.Body.List)
	b.link(b.cur, head, nil)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(st *ast.SwitchStmt, label string) {
	if st.Init != nil {
		b.atom(st.Init)
	}
	if st.Tag != nil {
		b.atom(st.Tag)
	}
	b.clauses(st.Body, label, nil, false)
}

func (b *cfgBuilder) typeSwitchStmt(st *ast.TypeSwitchStmt, label string) {
	if st.Init != nil {
		b.atom(st.Init)
	}
	b.atom(st.Assign)
	b.clauses(st.Body, label, typeSwitchVar(b.info, st.Assign), true)
}

// clauses builds the case bodies of a (type) switch. For a type switch with
// a resolvable switched variable, case edges whose types are all concrete
// (or the nil case) are labeled so the solver can discharge facts bound to
// that variable.
func (b *cfgBuilder) clauses(body *ast.BlockStmt, label string, tsVar types.Object, isType bool) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false

	type built struct {
		start *Block
		cc    *ast.CaseClause
	}
	var cases []built
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		blk := b.newBlock()
		cases = append(cases, built{start: blk, cc: cc})
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, bc := range cases {
		var cond *Cond
		if isType && tsVar != nil && bc.cc.List != nil {
			cond = b.typeCaseCond(tsVar, bc.cc.List)
		}
		b.link(head, bc.start, cond)
		var next *Block
		if i+1 < len(cases) {
			next = cases[i+1].start
		}
		b.loops = append(b.loops, loopFrame{label: label, brk: after, isSwitchy: true, nextClause: next})
		b.cur = bc.start
		if !isType {
			for _, e := range bc.cc.List {
				b.atom(e)
			}
		}
		b.stmtList(bc.cc.Body)
		b.link(b.cur, after, nil)
		b.loops = b.loops[:len(b.loops)-1]
	}
	if !hasDefault {
		b.link(head, after, nil)
	}
	b.cur = after
}

// typeCaseCond labels a type-switch case edge when every case type is
// concrete (taking the edge proves the variable's dynamic type) or the case
// is `case nil` (the variable holds no value at all).
func (b *cfgBuilder) typeCaseCond(tsVar types.Object, list []ast.Expr) *Cond {
	allConcrete := true
	allNil := true
	for _, e := range list {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
			allConcrete = false
			continue
		}
		allNil = false
		if b.info == nil {
			return nil
		}
		tv, ok := b.info.Types[e]
		if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
			allConcrete = false
		}
	}
	switch {
	case allNil:
		return &Cond{Key: tsVar.Name() + " == nil", Val: true, NilVar: tsVar}
	case allConcrete:
		return &Cond{Key: "type(" + tsVar.Name() + ")", Val: true, TypeTestVar: tsVar}
	}
	return nil
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock()
	for _, cs := range st.Body.List {
		cc := cs.(*ast.CommClause)
		blk := b.newBlock()
		b.link(head, blk, nil)
		b.loops = append(b.loops, loopFrame{brk: after, isSwitchy: true})
		b.cur = blk
		if cc.Comm != nil {
			b.atom(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.link(b.cur, after, nil)
		b.loops = b.loops[:len(b.loops)-1]
	}
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(st *ast.LabeledStmt) {
	switch inner := st.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, st.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, st.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, st.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, st.Label.Name)
	default:
		b.stmt(st.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(st *ast.BranchStmt) {
	b.atom(st)
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	find := func(cont bool) *Block {
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := &b.loops[i]
			if cont && f.isSwitchy {
				continue // continue skips switch frames
			}
			if label != "" && f.label != label {
				continue
			}
			if cont {
				return f.cont
			}
			return f.brk
		}
		return nil
	}
	switch st.Tok {
	case token.BREAK:
		if t := find(false); t != nil {
			b.link(b.cur, t, nil)
		}
	case token.CONTINUE:
		if t := find(true); t != nil {
			b.link(b.cur, t, nil)
		}
	case token.FALLTHROUGH:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].isSwitchy {
				if n := b.loops[i].nextClause; n != nil {
					b.link(b.cur, n, nil)
				}
				break
			}
		}
	case token.GOTO:
		// No goto in the analyzed tree; treat conservatively as an exit so
		// pending facts surface rather than vanish.
		b.link(b.cur, b.c.Exit, nil)
	}
	b.cur = nil
}

// canonCond canonicalizes a branch condition for edge labeling: `!x` flips
// polarity, `x != nil` becomes the `x == nil` key with flipped value, a bare
// bool identifier becomes a BoolVar test, and anything else is an opaque key
// (its printed form) usable only for guard correlation.
func (b *cfgBuilder) canonCond(e ast.Expr) *Cond {
	val := true
	e = ast.Unparen(e)
	for {
		u, ok := e.(*ast.UnaryExpr)
		if !ok || u.Op != token.NOT {
			break
		}
		val = !val
		e = ast.Unparen(u.X)
	}
	if be, ok := e.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if isNilIdent(y) || isNilIdent(x) {
			operand := x
			if isNilIdent(x) {
				operand = y
			}
			if be.Op == token.NEQ {
				val = !val
			}
			c := &Cond{Key: types.ExprString(operand) + " == nil", Val: val}
			if id, ok := operand.(*ast.Ident); ok && b.info != nil {
				c.NilVar = b.info.Uses[id]
			}
			return c
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		c := &Cond{Key: id.Name, Val: val}
		if b.info != nil {
			c.BoolVar = b.info.Uses[id]
		}
		return c
	}
	return &Cond{Key: types.ExprString(e), Val: val}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// typeSwitchVar resolves the variable a type switch tests: for
// `switch v := r.(type)` and `switch r.(type)` it returns r's object (the
// per-clause v aliases carry no flow information across clauses).
func typeSwitchVar(info *types.Info, assign ast.Stmt) types.Object {
	var x ast.Expr
	switch st := assign.(type) {
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if ta, ok := ast.Unparen(st.Rhs[0]).(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(st.X).(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if id, ok := ast.Unparen(x).(*ast.Ident); ok && info != nil {
		return info.Uses[id]
	}
	return nil
}

// isPanicCall reports whether the expression is a call of the panic builtin.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if info == nil {
		return true
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// containsPanic reports whether the atom contains a panic call outside
// nested function literals (a re-raise inside a branch statement atom).
func containsPanic(info *types.Info, atom ast.Node) bool {
	found := false
	walkSameFunc(atom, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isPanicCall(info, e) {
			found = true
		}
		return !found
	})
	return found
}
