package analysis

import (
	"go/ast"
	"go/types"
)

// Detrand forbids nondeterministic time and randomness sources inside the
// deterministic package trees: `time.Now`/`time.Since`/`time.Until` and every
// package-level math/rand function that draws from the global source. Seeded
// generators threaded from engine.Rand()/Params.Seed are the sanctioned
// source, so the constructors (rand.New, rand.NewSource, rand.NewZipf) and
// all methods on a *rand.Rand value remain allowed.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and global math/rand in deterministic packages; " +
		"thread a seeded *rand.Rand from engine.Rand()/Params.Seed instead",
	Run: runDetrand,
}

// detrandAllowedRand are math/rand package-level functions that do not touch
// the global source.
var detrandAllowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2 seeded sources
	"NewChaCha8": true,
}

func runDetrand(pass *Pass) error {
	if !DeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: simulated code must use engine cycles (Proc.Now)",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !detrandAllowedRand[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global rand.%s in deterministic package %s: thread a seeded *rand.Rand (engine.Rand()/Params.Seed)",
						fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
