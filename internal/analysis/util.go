package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes, or
// nil for calls through function values, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvString renders the receiver expression of a method-call selector
// ("p", "rt.Host.HV", ...) for matching paired calls on the same value. Only
// chains of identifiers and selections render; anything else returns "".
func recvString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := recvString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	default:
		return ""
	}
}

// funcUnits yields every function body in the file as an independent unit:
// each FuncDecl and each FuncLit, without descending into nested literals
// (the visit callback receives the body and walks it with walkSameFunc).
func funcUnits(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Body)
			}
		case *ast.FuncLit:
			visit(fn.Body)
		}
		return true
	})
}

// walkSameFunc walks n, calling fn for every node, but does not descend into
// nested function literals: their bodies are separate analysis units.
func walkSameFunc(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
