package analysis

import (
	"go/ast"
	"go/types"
)

// Crashclean protects the crash-unwinding protocol (DESIGN.md §9): a
// simulated crash unwinds every Proc with a private panic sentinel, and the
// whole durability model depends on user code neither absorbing that
// sentinel nor running cleanup while it unwinds — a deferred unlock or
// waitgroup-Done that fires during crash unwinding mutates simulated state
// that the "power cut" must leave exactly as it was.
//
// Two rules, over the simulated-thread tree (CrashUnwindPkg):
//
//  1. recover: flow-aware. A recover() is a fact in the must-pair solver;
//     it is discharged when the recovered value is re-panicked on every
//     surviving path, proven nil, or proven to be a concrete local type
//     (comma-ok assertion, panicking assertion, or type-switch case — a
//     concrete match excludes the engine-private sentinel, and a failed
//     panicking assertion re-raises it). A recover whose value can be
//     swallowed reports.
//
//  2. defer: flow-insensitive. Deferred calls (or deferred literals
//     containing calls) whose method name is user-space cleanup — Unlock,
//     Done, Close, Persist, ... — report unconditionally: defers run during
//     crash unwinding. `defer p.EndSpan()` is exempt: the span stack is
//     engine-owned and crash-tolerant.
var Crashclean = &Analyzer{
	Name: "crashclean",
	Doc: "code on simulated threads must not absorb the crash panic-sentinel " +
		"with recover nor register deferred user-space cleanup that would run " +
		"during crash unwinding",
	Run: runCrashclean,
}

// crashCleanupCalls are the method names treated as user-space cleanup: all
// mutate simulated state (locks, waitgroups, condvars, handles, durability)
// in ways a crash must not observe.
var crashCleanupCalls = map[string]bool{
	"Unlock": true, "RUnlock": true, "Done": true, "Signal": true,
	"Broadcast": true, "Close": true, "Msync": true, "Fsync": true,
	"Flush": true, "Persist": true, "Release": true, "SettleAll": true,
}

func runCrashclean(pass *Pass) error {
	if !CrashUnwindPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		checkDeferredCleanup(pass, f)
		funcUnits(f, func(body *ast.BlockStmt) {
			checkRecoverUnit(pass, body)
		})
	}
	return nil
}

// checkDeferredCleanup reports every deferred user-space cleanup call.
func checkDeferredCleanup(pass *Pass, f *ast.File) {
	report := func(pos ast.Node, name string) {
		pass.Reportf(pos.Pos(),
			"deferred %s would run during crash unwinding: move the cleanup "+
				"before the returns so a crash leaves the state untouched", name)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(ds.Call.Fun).(type) {
		case *ast.SelectorExpr:
			if crashCleanupCalls[fun.Sel.Name] {
				report(ds, fun.Sel.Name+"()")
			}
		case *ast.FuncLit:
			// A deferred literal is cleanup if it calls cleanup; literals
			// that only mutate fields (pin counts) are crash-indifferent
			// bookkeeping and pass.
			walkSameFunc(fun.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
					crashCleanupCalls[sel.Sel.Name] {
					report(ds, sel.Sel.Name+"() inside a deferred func")
					return false
				}
				return true
			})
		}
		return true
	})
}

// checkRecoverUnit runs the recover rule over one function body.
func checkRecoverUnit(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	cfg := BuildCFG(body, info)

	// Pre-scan: comma-ok assertions to concrete types (`cp, ok := r.(*T)`)
	// map the ok variable to the asserted variable — a true edge on ok
	// proves r's dynamic type and discharges the fact — and are excluded
	// from the panicking-assertion kill below.
	typeTests := make(map[types.Object]types.Object)
	commaOK := make(map[*ast.TypeAssertExpr]bool)
	walkSameFunc(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
			return true
		}
		ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		commaOK[ta] = true
		src, okv := assertedVar(info, ta), lhsObject(info, as.Lhs[1])
		if src != nil && okv != nil && isConcreteAssert(info, ta) {
			typeTests[okv] = src
		}
		return true
	})

	facts := solvePairs(pairProblem{
		cfg:       cfg,
		typeTests: typeTests,
		gen: func(atom ast.Node) []pairFact {
			call := recoverCall(info, atom)
			if call == nil {
				return nil
			}
			f := pairFact{Pos: call.Pos(), Gen: atom, Guards: cfg.Guards(atom)}
			if as, ok := atom.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				f.Var = lhsObject(info, as.Lhs[0])
			}
			return []pairFact{f}
		},
		kill: func(atom ast.Node, f pairFact) bool {
			// Re-panicking continues the unwind: the sentinel escapes.
			if containsPanic(info, atom) {
				return true
			}
			// A panicking (non-comma-ok) assertion to a concrete type either
			// proves a local type or re-raises the sentinel itself.
			if f.Var == nil {
				return false
			}
			killed := false
			walkSameFunc(atom, func(n ast.Node) bool {
				ta, ok := n.(*ast.TypeAssertExpr)
				if !ok || ta.Type == nil || commaOK[ta] {
					return true
				}
				if assertedVar(info, ta) == f.Var && isConcreteAssert(info, ta) {
					killed = true
				}
				return !killed
			})
			return killed
		},
	})
	for _, f := range facts {
		pass.Reportf(f.Pos,
			"recover() on a simulated thread can absorb the crash panic-sentinel: "+
				"re-panic values that are not a concrete locally-owned type")
	}
}

// recoverCall returns the recover() builtin call inside the atom, if any.
func recoverCall(info *types.Info, atom ast.Node) *ast.CallExpr {
	var found *ast.CallExpr
	walkSameFunc(atom, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return found == nil
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				found = call
			}
		}
		return found == nil
	})
	return found
}

// assertedVar resolves the identifier a type assertion tests, or nil.
func assertedVar(info *types.Info, ta *ast.TypeAssertExpr) types.Object {
	if id, ok := ast.Unparen(ta.X).(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// isConcreteAssert reports whether the assertion's target type is concrete
// (an interface target could still be satisfied by a foreign sentinel).
func isConcreteAssert(info *types.Info, ta *ast.TypeAssertExpr) bool {
	tv, ok := info.Types[ta.Type]
	return ok && tv.Type != nil && !types.IsInterface(tv.Type)
}

// lhsObject resolves an assignment left-hand side to its object (handles
// both := definitions and = uses); blank or non-ident sides return nil.
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
