package analysis

import (
	"strings"
)

// Suppression directives. Two forms, both requiring a justification after
// " -- " by convention (DESIGN.md):
//
//	//aqlint:ignore <name>[,<name>...] -- reason
//	//aqlint:sorted -- reason
//
// "ignore" silences the named analyzers; "sorted" is maporder's dedicated
// escape hatch, asserting the loop's effects are order-independent or the
// iteration source was sorted out of band. A directive applies to findings on
// its own line and on the line directly below it (so it can ride at the end
// of the offending line or stand alone above it).
type directive struct {
	names map[string]bool // analyzer names silenced ("sorted" silences maporder)
}

const directivePrefix = "aqlint:"

// parseDirective decodes one comment text (with the "//" already present).
func parseDirective(text string) (directive, bool) {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), directivePrefix)
	if !ok {
		return directive{}, false
	}
	// Drop the justification.
	if i := strings.Index(body, "--"); i >= 0 {
		body = body[:i]
	}
	verb, rest, _ := strings.Cut(strings.TrimSpace(body), " ")
	d := directive{names: map[string]bool{}}
	switch verb {
	case "sorted":
		d.names["maporder"] = true
	case "ignore":
		for _, n := range strings.Split(rest, ",") {
			if n = strings.TrimSpace(n); n != "" {
				d.names[n] = true
			}
		}
	default:
		return directive{}, false
	}
	return d, true
}

// suppressions maps file:line to the union of directives covering the line.
type lineKey struct {
	file string
	line int
}

type suppressions map[lineKey]map[string]bool

func (s suppressions) add(file string, line int, d directive) {
	key := lineKey{file, line}
	set := s[key]
	if set == nil {
		set = map[string]bool{}
		s[key] = set
	}
	for n := range d.names {
		set[n] = true
	}
}

// covered reports whether analyzer name is silenced at file:line.
func (s suppressions) covered(file string, line int, name string) bool {
	return s[lineKey{file, line}][name]
}

// collectSuppressions scans one package's comments and registers each
// directive for its own line and the line below.
func collectSuppressions(pkg *Package) suppressions {
	s := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s.add(pos.Filename, pos.Line, d)
				s.add(pos.Filename, pos.Line+1, d)
			}
		}
	}
	return s
}
