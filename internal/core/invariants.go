package core

import (
	"fmt"

	"aquila/internal/sim/mem"
	"aquila/internal/sim/pagetable"
)

// CheckInvariants audits Aquila's cross-structure consistency at a quiescent
// point. Tests call it after heavy workloads.
func (rt *Runtime) CheckInvariants() error {
	// Frame conservation: every granted frame is either cached or free (a
	// 2 MB unit accounts for its 512 contiguous frames).
	resident := 0
	//aqlint:sorted -- order-independent sum; pages() reads one bool, no simulated state
	for _, pg := range rt.pages {
		resident += pg.pages()
	}
	free := rt.fl.Free()
	if free < 0 {
		return fmt.Errorf("freelist negative: %d", free)
	}
	if uint64(resident+free) != rt.limitPages {
		return fmt.Errorf("resident %d + free %d != limit %d", resident, free, rt.limitPages)
	}
	dirtyInTrees := 0
	for core, tree := range rt.dirty {
		var err error
		tree.Ascend(func(key uint64, pg *Page) bool {
			dirtyInTrees++
			if !pg.dirty {
				err = fmt.Errorf("core %d dirty tree holds clean page (%s,%d)",
					core, pg.file.name, pg.idx)
				return false
			}
			if key != dirtyKey(pg) {
				err = fmt.Errorf("dirty tree key %d != dirtyKey %d", key, dirtyKey(pg))
				return false
			}
			if rt.pages[pg.Key()] != pg {
				err = fmt.Errorf("dirty tree holds evicted page (%s,%d)",
					pg.file.name, pg.idx)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	dirtyPages := 0
	//aqlint:sorted -- read-only audit: which violation is reported first may vary, but no simulated state is touched
	for key, pg := range rt.pages {
		if pg.Key() != key {
			return fmt.Errorf("page (%s,%d) under wrong key", pg.file.name, pg.idx)
		}
		if !pg.resident {
			return fmt.Errorf("non-resident page (%s,%d) still in hash", pg.file.name, pg.idx)
		}
		if pg.frame == nil {
			return fmt.Errorf("page (%s,%d) has no frame", pg.file.name, pg.idx)
		}
		if pg.io != nil && !pg.io.Fired() {
			return fmt.Errorf("page (%s,%d) has in-flight I/O at quiesce", pg.file.name, pg.idx)
		}
		if pg.dirty {
			dirtyPages++
		}
		// Fault discipline: a poisoned page is unreadable, so it can never
		// have been stored to (stores SIGBUS at resolve) — it must be clean,
		// and it cannot also be quarantined (quarantine needs a writeback,
		// writeback needs a dirtying store).
		if pg.poison != nil && pg.dirty {
			return fmt.Errorf("poisoned page (%s,%d) is dirty", pg.file.name, pg.idx)
		}
		if pg.poison != nil && pg.quarantined {
			return fmt.Errorf("page (%s,%d) both poisoned and quarantined", pg.file.name, pg.idx)
		}
		if pg.huge {
			// Huge-unit structure: extent-aligned base index, 512 contiguous
			// frames, base-frame alias, no 4 KB entry shadowed inside the
			// extent, and never poisoned (failed fills split the unit first).
			if pg.idx%hugePages != 0 {
				return fmt.Errorf("unit (%s,%d) not extent-aligned", pg.file.name, pg.idx)
			}
			if len(pg.frames) != hugePages {
				return fmt.Errorf("unit (%s,%d) has %d frames", pg.file.name, pg.idx, len(pg.frames))
			}
			for i, fr := range pg.frames {
				if fr.ID != pg.frames[0].ID+uint64(i) {
					return fmt.Errorf("unit (%s,%d): frames not contiguous at offset %d",
						pg.file.name, pg.idx, i)
				}
			}
			if pg.frame != pg.frames[0] {
				return fmt.Errorf("unit (%s,%d): frame is not frames[0]", pg.file.name, pg.idx)
			}
			for i := pg.idx + 1; i < pg.idx+hugePages; i++ {
				if rt.pages[pageKey{pg.file.id, i}] != nil {
					return fmt.Errorf("unit (%s,%d): 4 KB page also cached at %d",
						pg.file.name, pg.idx, i)
				}
			}
			if pg.poison != nil {
				return fmt.Errorf("unit (%s,%d) poisoned", pg.file.name, pg.idx)
			}
		}
		for _, va := range pg.vas {
			e, ok := rt.PT.Lookup(va)
			if !ok {
				return fmt.Errorf("page (%s,%d): rmap va %#x unmapped", pg.file.name, pg.idx, va)
			}
			want := pg.frame.ID
			if pg.huge {
				// A unit maps either whole (one aligned Size2M PTE) or via a
				// 4 KB alias into the matching constituent frame.
				if e.PageSize == pagetable.Size2M {
					if va%uint64(hugeBytes) != 0 {
						return fmt.Errorf("unit (%s,%d): unaligned 2 MB va %#x",
							pg.file.name, pg.idx, va)
					}
					want = pg.frames[0].ID
				} else {
					want = pg.frames[(va>>mem.PageShift)&(hugePages-1)].ID
				}
			} else if e.PageSize != pagetable.Size4K {
				return fmt.Errorf("page (%s,%d): 4 KB page behind 2 MB PTE at %#x",
					pg.file.name, pg.idx, va)
			}
			if e.Frame != want {
				return fmt.Errorf("page (%s,%d): pte frame %d != %d",
					pg.file.name, pg.idx, e.Frame, want)
			}
			// Dirty discipline: a writable PTE implies a dirty page.
			if e.Flags.Has(pagetable.FlagWritable) && !pg.dirty {
				return fmt.Errorf("page (%s,%d): writable PTE on clean page",
					pg.file.name, pg.idx)
			}
		}
	}
	if rt.hugeEnabled() {
		// Promotion-density counters match a recount of resident 4 KB pages.
		recount := make(map[pageKey]int) // (fid, extent) -> 4 KB pages
		for _, pg := range rt.pages {
			if !pg.huge {
				recount[pageKey{pg.file.id, pg.idx >> hugeShift}]++
			}
		}
		//aqlint:sorted -- read-only audit: which violation is reported first may vary, but no simulated state is touched
		for _, f := range rt.files {
			//aqlint:sorted -- read-only audit: only which violation is reported first varies
			for ext, n := range f.extResident {
				if recount[pageKey{f.id, ext}] != n {
					return fmt.Errorf("file %s extent %d: extResident %d != recount %d",
						f.name, ext, n, recount[pageKey{f.id, ext}])
				}
				delete(recount, pageKey{f.id, ext})
			}
		}
		//aqlint:sorted -- read-only audit: only which violation is reported first varies
		for k, n := range recount {
			if n != 0 {
				return fmt.Errorf("fid %d extent %d: %d resident pages untracked", k.fid, k.idx, n)
			}
		}
	}
	if dirtyPages != dirtyInTrees {
		return fmt.Errorf("dirty pages %d != dirty-tree entries %d", dirtyPages, dirtyInTrees)
	}
	return nil
}

// checkWatermarkBounds validates explicitly configured eviction watermarks
// against the cache capacity: a set LowWatermark must satisfy
// 1 <= Low < High and a set HighWatermark must fit the cache
// (High <= capacity pages). Zero values are exempt — setWatermarks derives
// and clamps those to the cache size. Called from setWatermarks under the
// aqdebug build tag (DESIGN.md "Static invariants"), so a misconfigured
// parameter sweep fails loudly instead of being silently clamped.
func checkWatermarkBounds(p Params, capacityPages int) error {
	low, high := p.LowWatermark, p.HighWatermark
	if low != 0 && low < 1 {
		return fmt.Errorf("LowWatermark %d < 1", low)
	}
	if low != 0 && low > capacityPages {
		return fmt.Errorf("LowWatermark %d exceeds cache capacity (%d pages)", low, capacityPages)
	}
	if high != 0 && high < 1 {
		return fmt.Errorf("HighWatermark %d < 1", high)
	}
	if high != 0 && high > capacityPages {
		return fmt.Errorf("HighWatermark %d exceeds cache capacity (%d pages)", high, capacityPages)
	}
	if low != 0 && high != 0 && low >= high {
		return fmt.Errorf("LowWatermark %d >= HighWatermark %d", low, high)
	}
	return nil
}
