package core

import (
	"fmt"

	"aquila/internal/sim/pagetable"
)

// CheckInvariants audits Aquila's cross-structure consistency at a quiescent
// point. Tests call it after heavy workloads.
func (rt *Runtime) CheckInvariants() error {
	// Frame conservation: every granted frame is either cached or free.
	resident := len(rt.pages)
	free := rt.fl.Free()
	if free < 0 {
		return fmt.Errorf("freelist negative: %d", free)
	}
	if uint64(resident+free) != rt.limitPages {
		return fmt.Errorf("resident %d + free %d != limit %d", resident, free, rt.limitPages)
	}
	dirtyInTrees := 0
	for core, tree := range rt.dirty {
		var err error
		tree.Ascend(func(key uint64, pg *Page) bool {
			dirtyInTrees++
			if !pg.dirty {
				err = fmt.Errorf("core %d dirty tree holds clean page (%s,%d)",
					core, pg.file.name, pg.idx)
				return false
			}
			if key != dirtyKey(pg) {
				err = fmt.Errorf("dirty tree key %d != dirtyKey %d", key, dirtyKey(pg))
				return false
			}
			if rt.pages[pg.Key()] != pg {
				err = fmt.Errorf("dirty tree holds evicted page (%s,%d)",
					pg.file.name, pg.idx)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	dirtyPages := 0
	//aqlint:sorted -- read-only audit: which violation is reported first may vary, but no simulated state is touched
	for key, pg := range rt.pages {
		if pg.Key() != key {
			return fmt.Errorf("page (%s,%d) under wrong key", pg.file.name, pg.idx)
		}
		if !pg.resident {
			return fmt.Errorf("non-resident page (%s,%d) still in hash", pg.file.name, pg.idx)
		}
		if pg.frame == nil {
			return fmt.Errorf("page (%s,%d) has no frame", pg.file.name, pg.idx)
		}
		if pg.io != nil && !pg.io.Fired() {
			return fmt.Errorf("page (%s,%d) has in-flight I/O at quiesce", pg.file.name, pg.idx)
		}
		if pg.dirty {
			dirtyPages++
		}
		// Fault discipline: a poisoned page is unreadable, so it can never
		// have been stored to (stores SIGBUS at resolve) — it must be clean,
		// and it cannot also be quarantined (quarantine needs a writeback,
		// writeback needs a dirtying store).
		if pg.poison != nil && pg.dirty {
			return fmt.Errorf("poisoned page (%s,%d) is dirty", pg.file.name, pg.idx)
		}
		if pg.poison != nil && pg.quarantined {
			return fmt.Errorf("page (%s,%d) both poisoned and quarantined", pg.file.name, pg.idx)
		}
		for _, va := range pg.vas {
			e, ok := rt.PT.Lookup(va)
			if !ok {
				return fmt.Errorf("page (%s,%d): rmap va %#x unmapped", pg.file.name, pg.idx, va)
			}
			if e.Frame != pg.frame.ID {
				return fmt.Errorf("page (%s,%d): pte frame %d != %d",
					pg.file.name, pg.idx, e.Frame, pg.frame.ID)
			}
			// Dirty discipline: a writable PTE implies a dirty page.
			if e.Flags.Has(pagetable.FlagWritable) && !pg.dirty {
				return fmt.Errorf("page (%s,%d): writable PTE on clean page",
					pg.file.name, pg.idx)
			}
		}
	}
	if dirtyPages != dirtyInTrees {
		return fmt.Errorf("dirty pages %d != dirty-tree entries %d", dirtyPages, dirtyInTrees)
	}
	return nil
}

// checkWatermarkBounds validates explicitly configured eviction watermarks
// against the cache capacity: a set LowWatermark must satisfy
// 1 <= Low < High and a set HighWatermark must fit the cache
// (High <= capacity pages). Zero values are exempt — setWatermarks derives
// and clamps those to the cache size. Called from setWatermarks under the
// aqdebug build tag (DESIGN.md "Static invariants"), so a misconfigured
// parameter sweep fails loudly instead of being silently clamped.
func checkWatermarkBounds(p Params, capacityPages int) error {
	low, high := p.LowWatermark, p.HighWatermark
	if low != 0 && low < 1 {
		return fmt.Errorf("LowWatermark %d < 1", low)
	}
	if low != 0 && low > capacityPages {
		return fmt.Errorf("LowWatermark %d exceeds cache capacity (%d pages)", low, capacityPages)
	}
	if high != 0 && high < 1 {
		return fmt.Errorf("HighWatermark %d < 1", high)
	}
	if high != 0 && high > capacityPages {
		return fmt.Errorf("HighWatermark %d exceeds cache capacity (%d pages)", high, capacityPages)
	}
	if low != 0 && high != 0 && low >= high {
		return fmt.Errorf("LowWatermark %d >= HighWatermark %d", low, high)
	}
	return nil
}
