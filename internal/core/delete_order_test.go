package core

import (
	"fmt"
	"testing"

	"aquila/internal/sim/engine"
)

// TestDeleteFileRecycleOrderDeterministic pins the fix for a map-order leak
// the maporder analyzer found: DeleteFile used to walk rt.pages (a Go map) to
// collect the file's cached pages, so the order frames were pushed back onto
// the freelist followed Go's randomized map iteration. Frames recycled in
// random order hand different frame IDs to the next file's faults, and the
// divergence spreads from there. The loop now iterates sorted page keys; two
// identical worlds must fault the successor file onto identical frames.
func TestDeleteFileRecycleOrderDeterministic(t *testing.T) {
	const pages = 32
	run := func() string {
		e, _, boot := daxWorld(16*mib, 2)
		var fingerprint string
		e.Spawn(0, "t", func(p *engine.Proc) {
			rt := boot(p)
			doomed := rt.CreateFile(p, "doomed", pages*pageSize)
			m := rt.Mmap(p, doomed, pages*pageSize)
			buf := make([]byte, 8)
			for i := uint64(0); i < pages; i++ {
				m.Load(p, i*pageSize, buf)
			}
			m.Munmap(p)
			rt.DeleteFile(p, "doomed")

			// The successor faults its pages onto the frames DeleteFile just
			// recycled; its frame-ID sequence is the recycle order.
			next := rt.CreateFile(p, "next", pages*pageSize)
			m2 := rt.Mmap(p, next, pages*pageSize)
			for i := uint64(0); i < pages; i++ {
				m2.Load(p, i*pageSize, buf)
			}
			for i := uint64(0); i < pages; i++ {
				pg := rt.pages[pageKey{next.id, i}]
				if pg == nil || pg.frame == nil {
					t.Errorf("page %d of successor file not resident", i)
					return
				}
				fingerprint += fmt.Sprintf("%d,", pg.frame.ID)
			}
			fingerprint += fmt.Sprintf("now=%d", p.Now())
		})
		e.Run()
		return fingerprint
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("frame recycle order diverged across identical runs:\n run1 %s\n run2 %s", a, b)
	}
	if a == "" {
		t.Fatal("workload produced no fingerprint")
	}
}
