package core

import (
	"fmt"
	"testing"

	"aquila/internal/sim/engine"
)

// determinismWorkload drives an eviction-heavy mixed read/write pattern over
// a mapping four times the cache and returns a fingerprint of everything the
// simulation decided: final clocks, fault/eviction counters, and freelist
// population.
func determinismWorkload(boot func(p *engine.Proc) *Runtime, e *engine.Engine, cpus int) string {
	var rt *Runtime
	e.Spawn(0, "init", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "det", 16*mib)
		m := rt.Mmap(p, f, 16*mib)
		m.Store(p, 0, []byte{1}) // touch so workers share a warm mapping
		for w := 0; w < cpus; w++ {
			w := w
			e.SpawnAt(w%cpus, fmt.Sprintf("w%d", w), p.Now(), func(p *engine.Proc) {
				buf := make([]byte, 64)
				n := uint64(16 * mib)
				for i := 0; i < 3000; i++ {
					off := (uint64(i)*40009 + uint64(w)*7919) * 64 % (n - 64)
					if i%3 == 0 {
						m.Store(p, off, buf)
					} else {
						m.Load(p, off, buf)
					}
				}
			})
		}
	})
	e.Run()
	st := rt.Stats
	return fmt.Sprintf("now=%d major=%d minor=%d wp=%d evict=%d wb=%d shoot=%d free=%d resident=%d",
		e.Now(), st.MajorFaults, st.MinorFaults, st.WPFaults, st.Evictions,
		st.WrittenBack, st.ShootdownBatches, rt.FreePages(), rt.ResidentPages())
}

// TestAquilaSyncModeDeterminism pins the default (synchronous reclaim)
// configuration against the behavior of the seed commit: AsyncEvict=false
// must stay bit-identical as the background-evictor code evolves. The golden
// strings were captured before the background evictor existed; any change
// here means the synchronous path's timing or ordering changed.
func TestAquilaSyncModeDeterminism(t *testing.T) {
	goldens := map[string]string{
		"dax":  "now=15098022 major=8813 minor=1419 wp=1329 evict=8339 wb=3851 shoot=37 free=550 resident=470",
		"spdk": "now=141287200 major=8784 minor=2290 wp=1514 evict=8562 wb=3926 shoot=41 free=802 resident=222",
	}
	{
		e, _, boot := daxWorld(4*mib, 4)
		got := determinismWorkload(boot, e, 4)
		t.Logf("dax: %s", got)
		if got != goldens["dax"] {
			t.Errorf("dax fingerprint drifted:\n got  %s\n want %s", got, goldens["dax"])
		}
	}
	{
		e, boot := spdkWorld(4*mib, 4)
		got := determinismWorkload(boot, e, 4)
		t.Logf("spdk: %s", got)
		if got != goldens["spdk"] {
			t.Errorf("spdk fingerprint drifted:\n got  %s\n want %s", got, goldens["spdk"])
		}
	}
}
