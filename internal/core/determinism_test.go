package core

import (
	"fmt"
	"testing"

	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

// Golden fingerprints of the default (synchronous reclaim) configuration,
// captured at the seed commit. See TestAquilaSyncModeDeterminism.
var syncModeGoldens = map[string]string{
	"dax":  "now=15098022 major=8813 minor=1419 wp=1329 evict=8339 wb=3851 shoot=37 free=550 resident=470",
	"spdk": "now=141287200 major=8784 minor=2290 wp=1514 evict=8562 wb=3926 shoot=41 free=802 resident=222",
}

// determinismWorkload drives an eviction-heavy mixed read/write pattern over
// a mapping four times the cache and returns a fingerprint of everything the
// simulation decided: final clocks, fault/eviction counters, and freelist
// population (plus the runtime, for callers that fold in more state).
func determinismWorkload(boot func(p *engine.Proc) *Runtime, e *engine.Engine, cpus int) (string, *Runtime) {
	var rt *Runtime
	e.Spawn(0, "init", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "det", 16*mib)
		m := rt.Mmap(p, f, 16*mib)
		m.Store(p, 0, []byte{1}) // touch so workers share a warm mapping
		for w := 0; w < cpus; w++ {
			w := w
			e.SpawnAt(w%cpus, fmt.Sprintf("w%d", w), p.Now(), func(p *engine.Proc) {
				buf := make([]byte, 64)
				n := uint64(16 * mib)
				for i := 0; i < 3000; i++ {
					off := (uint64(i)*40009 + uint64(w)*7919) * 64 % (n - 64)
					if i%3 == 0 {
						m.Store(p, off, buf)
					} else {
						m.Load(p, off, buf)
					}
				}
			})
		}
	})
	e.Run()
	st := rt.Stats
	return fmt.Sprintf("now=%d major=%d minor=%d wp=%d evict=%d wb=%d shoot=%d free=%d resident=%d",
		e.Now(), st.MajorFaults, st.MinorFaults, st.WPFaults, st.Evictions,
		st.WrittenBack, st.ShootdownBatches, rt.FreePages(), rt.ResidentPages()), rt
}

// TestAquilaSyncModeDeterminism pins the default (synchronous reclaim)
// configuration against the behavior of the seed commit: AsyncEvict=false
// must stay bit-identical as the background-evictor code evolves. The golden
// strings were captured before the background evictor existed; any change
// here means the synchronous path's timing or ordering changed.
func TestAquilaSyncModeDeterminism(t *testing.T) {
	{
		e, _, boot := daxWorld(4*mib, 4)
		got, _ := determinismWorkload(boot, e, 4)
		t.Logf("dax: %s", got)
		if got != syncModeGoldens["dax"] {
			t.Errorf("dax fingerprint drifted:\n got  %s\n want %s", got, syncModeGoldens["dax"])
		}
	}
	{
		e, boot := spdkWorld(4*mib, 4)
		got, _ := determinismWorkload(boot, e, 4)
		t.Logf("spdk: %s", got)
		if got != syncModeGoldens["spdk"] {
			t.Errorf("spdk fingerprint drifted:\n got  %s\n want %s", got, syncModeGoldens["spdk"])
		}
	}
}

// TestFaultPlanDeterminism: a fixed-seed fault plan (probabilistic transient
// write errors plus periodic latency spikes) under background eviction is
// bit-identical across runs — injection points, retries, requeues and final
// clocks all replay exactly.
func TestFaultPlanDeterminism(t *testing.T) {
	run := func() string {
		e, pm, boot := faultDaxWorld(4*mib, 4, asyncParams(nil))
		pm.InjectFaults("pmem0", &device.FaultPlan{Seed: 11, Rules: []device.FaultRule{
			{Kind: device.FaultTransientWrite, Prob: 0.2},
			{Kind: device.FaultLatencySpike, After: 5, Every: 40, Delay: 60000},
		}})
		fp, rt := determinismWorkload(boot, e, 4)
		return fmt.Sprintf("%s retries=%d requeued=%d quarantined=%d injected=%d",
			fp, rt.Stats.IORetries, rt.Stats.RequeuedPages,
			rt.Stats.QuarantinedPages, pm.Store.InjectedFaults())
	}
	a, b := run(), run()
	t.Logf("faulted: %s", a)
	if a != b {
		t.Errorf("fault plan replay diverged:\n run1 %s\n run2 %s", a, b)
	}
}

// TestZeroFaultPlanMatchesNoPlan: attaching an empty fault plan must be
// perfectly inert — the fingerprint stays bit-identical to the no-plan golden
// (no stray delays, no extra RNG draws, no schedule bookkeeping side effects).
func TestZeroFaultPlanMatchesNoPlan(t *testing.T) {
	e, pm, boot := faultDaxWorld(4*mib, 4, nil)
	pm.InjectFaults("pmem0", &device.FaultPlan{Seed: 5})
	got, rt := determinismWorkload(boot, e, 4)
	if got != syncModeGoldens["dax"] {
		t.Errorf("empty fault plan perturbed the simulation:\n got  %s\n want %s",
			got, syncModeGoldens["dax"])
	}
	if pm.Store.InjectedFaults() != 0 || rt.Stats.IORetries != 0 {
		t.Errorf("empty plan injected faults: injected=%d retries=%d",
			pm.Store.InjectedFaults(), rt.Stats.IORetries)
	}
}
