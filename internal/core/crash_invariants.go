package core

import "fmt"

// CheckCrashInvariants audits the runtime state reachable at an *arbitrary*
// crash point — the complement of CheckInvariants, which demands a quiescent
// runtime. A crash may land between an allocation's freelist pop and the
// page attach, mid-fill (placeholder io event unfired), or mid-eviction
// (victims non-resident but still hashed), so this audit tolerates:
//
//   - pages with in-flight (unfired) io events,
//   - non-resident pages still present in the hash,
//   - pages without a frame (claimed by eviction, not yet recycled),
//   - frames owned by neither the freelist nor any page (in transit through
//     a fault path's local variables).
//
// What can never be true, crash or not:
//
//   - a frame owned twice (two pages, a page and a free queue, two queues),
//   - more frames accounted for than were ever granted,
//   - a hash entry filed under the wrong key,
//   - a dirty-flagged page missing from its core's dirty tree, or a tree
//     entry whose page is clean (the runtime changes flag and tree entry
//     together, with no yield point in between — see evict/msyncFileRange).
func (rt *Runtime) CheckCrashInvariants() error {
	owner := make(map[uint64]string)
	claim := func(id uint64, who string) error {
		if prev, ok := owner[id]; ok {
			return fmt.Errorf("frame %d owned twice: %s and %s", id, prev, who)
		}
		owner[id] = who
		return nil
	}
	for c, q := range rt.fl.cores {
		for _, fr := range q {
			if err := claim(fr.ID, fmt.Sprintf("core queue %d", c)); err != nil {
				return err
			}
		}
	}
	for n, q := range rt.fl.nodes {
		for _, fr := range q {
			if err := claim(fr.ID, fmt.Sprintf("numa queue %d", n)); err != nil {
				return err
			}
		}
	}
	for n, blocks := range rt.fl.hugeNodes {
		for _, blk := range blocks {
			for _, fr := range blk {
				if err := claim(fr.ID, fmt.Sprintf("huge queue %d", n)); err != nil {
					return err
				}
			}
		}
	}
	for _, fr := range rt.fl.single {
		if err := claim(fr.ID, "single queue"); err != nil {
			return err
		}
	}
	if free := rt.fl.Free(); free < 0 {
		return fmt.Errorf("freelist negative: %d", free)
	}
	dirtyPages := 0
	//aqlint:sorted -- read-only audit: which violation is reported first may vary, but no simulated state is touched
	for key, pg := range rt.pages {
		if pg.Key() != key {
			return fmt.Errorf("page (%s,%d) under wrong key", pg.file.name, pg.idx)
		}
		who := fmt.Sprintf("page (%s,%d)", pg.file.name, pg.idx)
		if pg.huge {
			for _, fr := range pg.frames {
				if fr == nil {
					continue
				}
				if err := claim(fr.ID, who); err != nil {
					return err
				}
			}
		} else if pg.frame != nil {
			if err := claim(pg.frame.ID, who); err != nil {
				return err
			}
		}
		if pg.dirty {
			dirtyPages++
		}
	}
	if uint64(len(owner)) > rt.limitPages {
		return fmt.Errorf("%d frames accounted > limit %d", len(owner), rt.limitPages)
	}
	dirtyInTrees := 0
	for core, tree := range rt.dirty {
		var err error
		tree.Ascend(func(key uint64, pg *Page) bool {
			dirtyInTrees++
			if !pg.dirty {
				err = fmt.Errorf("core %d dirty tree holds clean page (%s,%d)",
					core, pg.file.name, pg.idx)
				return false
			}
			if key != dirtyKey(pg) {
				err = fmt.Errorf("dirty tree key %d != dirtyKey %d", key, dirtyKey(pg))
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	if dirtyPages != dirtyInTrees {
		return fmt.Errorf("dirty pages %d != dirty-tree entries %d", dirtyPages, dirtyInTrees)
	}
	return nil
}

// WBErrorSnapshot returns, per file name, the latest writeback error no sync
// caller has observed yet — the errseq state a crash image must carry so
// exactly-once error reporting survives a restart (Config.RestoredWBErrors
// replays it into the recovered runtime).
func (rt *Runtime) WBErrorSnapshot() map[string]error {
	var out map[string]error
	//aqlint:sorted -- host-side snapshot into a map; insertion order invisible
	for name, f := range rt.files {
		if f.wbErr.err != nil && !f.wbErr.seen {
			if out == nil {
				out = make(map[string]error)
			}
			out[name] = f.wbErr.err
		}
	}
	return out
}
