package core

import (
	"errors"
	"fmt"

	"aquila/internal/sim/device"
)

// Typed signal/fault values. Real mmap surfaces failures as signals: an
// access outside the mapping or to a write-protected region is SIGSEGV, a
// failed fault-in (media error under the page) is SIGBUS. The simulated
// mappings keep the panic-delivery mechanism (a signal aborts the proc) but
// panic with these typed values so tests and callers can recover and inspect
// device/LBA/va context instead of string-matching. Error() strings keep the
// literal "SIGBUS"/"SIGSEGV" markers for log greps.

// IOFault is a device I/O failure after retry policy is exhausted. It is the
// typed "ErrIOFault" the fault handler attaches to poisoned pages and Msync
// surfaces through the per-file error sequence.
type IOFault struct {
	// Op is "read" or "write".
	Op string
	// File is the failed file's name; Page its page index within the file.
	File string
	Page uint64
	// Dev/DevOff locate the failure on the device when the underlying error
	// carries them (device.IOError); Dev is "" otherwise.
	Dev    string
	DevOff uint64
	// Err is the underlying device error.
	Err error
}

// newIOFault wraps a final (non-retryable or retry-exhausted) engine error,
// pulling device/LBA context out of a device.IOError when present.
func newIOFault(op, file string, page uint64, err error) *IOFault {
	f := &IOFault{Op: op, File: file, Page: page, Err: err}
	var de *device.IOError
	if errors.As(err, &de) {
		f.Dev = de.Dev
		f.DevOff = de.Off
	}
	return f
}

// Error implements error.
func (f *IOFault) Error() string {
	if f.Dev != "" {
		return fmt.Sprintf("io fault: %s %q page %d (dev %s off %#x): %v",
			f.Op, f.File, f.Page, f.Dev, f.DevOff, f.Err)
	}
	return fmt.Sprintf("io fault: %s %q page %d: %v", f.Op, f.File, f.Page, f.Err)
}

// Unwrap exposes the device error to errors.As/Is.
func (f *IOFault) Unwrap() error { return f.Err }

// Transient reports whether the underlying error was transient (the fault is
// final regardless — retries were already spent — but callers distinguish
// requeue-worthy writeback failures from permanent ones).
func (f *IOFault) Transient() bool {
	var de *device.IOError
	return errors.As(f.Err, &de) && de.Transient()
}

// SigBus is delivered (via panic) for an access whose backing I/O failed:
// the simulated equivalent of SIGBUS with BUS_ADRERR/BUS_MCEERR on mmap.
type SigBus struct {
	// VA is the faulting virtual address; File the mapped file.
	VA   uint64
	File string
	// Err is the underlying failure, typically an *IOFault with device/LBA.
	Err error
}

// Error implements error; the string keeps the "SIGBUS" marker.
func (s *SigBus) Error() string {
	return fmt.Sprintf("SIGBUS at %#x (%q): %v", s.VA, s.File, s.Err)
}

// Unwrap exposes the underlying *IOFault.
func (s *SigBus) Unwrap() error { return s.Err }

// SigSegv is delivered (via panic) for an access outside any mapping or
// violating its protection.
type SigSegv struct {
	VA     uint64
	File   string
	Reason string
}

// Error implements error; the string keeps the "SIGSEGV" marker.
func (s *SigSegv) Error() string {
	if s.File != "" {
		return fmt.Sprintf("SIGSEGV at %#x (%q): %s", s.VA, s.File, s.Reason)
	}
	return fmt.Sprintf("SIGSEGV at %#x: %s", s.VA, s.Reason)
}
