//go:build !aqdebug

package core

// debugChecks gates assertions that are too strict (or too hot) for release
// simulations; build with -tags aqdebug to enable them.
const debugChecks = false
