package core

import "testing"

// TestWatermarkBoundsCheck covers the aqdebug-gated validation of explicitly
// configured eviction watermarks (Low < High <= capacity).
func TestWatermarkBoundsCheck(t *testing.T) {
	const capacity = 1024
	cases := []struct {
		name      string
		low, high int
		wantErr   bool
	}{
		{"both-derived", 0, 0, false},
		{"valid", 64, 256, false},
		{"low-only", 64, 0, false},
		{"high-only", 0, 256, false},
		{"low-at-capacity", capacity, 0, false},
		{"inverted", 256, 64, true},
		{"equal", 128, 128, true},
		{"low-negative", -1, 0, true},
		{"high-negative", 0, -5, true},
		{"low-over-capacity", capacity + 1, 0, true},
		{"high-over-capacity", 0, capacity + 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			p.LowWatermark, p.HighWatermark = tc.low, tc.high
			err := checkWatermarkBounds(p, capacity)
			if (err != nil) != tc.wantErr {
				t.Errorf("checkWatermarkBounds(low=%d, high=%d) = %v, wantErr=%v",
					tc.low, tc.high, err, tc.wantErr)
			}
		})
	}
}
