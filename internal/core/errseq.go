package core

// errseq mirrors the kernel's errseq_t: a per-file writeback error cursor
// that guarantees each sync caller observes an error at most once, and that
// no error is lost between callers. Each recorded error advances a sequence
// number; every consumer (mapping, open file) keeps its own cursor and
// compares it against the sequence on Msync/Fsync. A caller whose cursor is
// current gets nil; a stale caller gets the latest error and its cursor
// advances. Two independent callers therefore both see the same error once
// each — exactly Linux's file_check_and_advance_wb_err contract.
//
// The simulation is single-threaded per engine step, so no atomics needed.
type errseq struct {
	err error
	seq uint64
}

// record notes a writeback error; nil is a no-op. Every record bumps the
// sequence so an error that repeats after being reported is reported again.
func (e *errseq) record(err error) {
	if err == nil {
		return
	}
	e.err = err
	e.seq++
}

// check reports the latest unseen error for the caller owning *cursor and
// marks it seen. Callers initialize their cursor to the sequence at
// open/mmap time, so errors predating them are not re-reported.
func (e *errseq) check(cursor *uint64) error {
	if *cursor == e.seq {
		return nil
	}
	*cursor = e.seq
	return e.err
}
