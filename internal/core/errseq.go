package core

// errseq mirrors the kernel's errseq_t: a per-file writeback error cursor
// that guarantees each sync caller observes an error at most once, and that
// no error is lost between callers. Each recorded error advances a sequence
// number; every consumer (mapping, open file) keeps its own cursor and
// compares it against the sequence on Msync/Fsync. A caller whose cursor is
// current gets nil; a stale caller gets the latest error and its cursor
// advances. Two independent callers therefore both see the same error once
// each — exactly Linux's file_check_and_advance_wb_err contract.
//
// Like the kernel's SEEN bit, the sequence distinguishes an error someone has
// already observed from one nobody has: sample() (used to initialize cursors
// at open/mmap time) backs the cursor up one step while the latest error is
// unseen, so a file opened after an unreported writeback error still reports
// it — including an opener in a *recovered* system whose errseq state was
// restored from a crash image (exactly-once reporting survives restart).
//
// The simulation is single-threaded per engine step, so no atomics needed.
type errseq struct {
	err error
	seq uint64
	// seen is set once any consumer has observed the current error.
	seen bool
}

// record notes a writeback error; nil is a no-op. Every record bumps the
// sequence so an error that repeats after being reported is reported again,
// and clears seen — the new occurrence has not been observed by anyone.
func (e *errseq) record(err error) {
	if err == nil {
		return
	}
	e.err = err
	e.seq++
	e.seen = false
}

// check reports the latest unseen error for the caller owning *cursor and
// marks it seen. Callers initialize their cursor via sample() at open/mmap
// time, so errors someone already reported are not re-reported to them.
func (e *errseq) check(cursor *uint64) error {
	if *cursor == e.seq {
		return nil
	}
	*cursor = e.seq
	e.seen = true
	return e.err
}

// sample returns the cursor value a new consumer starts from: the current
// sequence, backed up one step while the latest error is still unseen, so
// the new consumer's first check reports it (the kernel's "errseq_sample
// returns 0 if the SEEN bit is unset" behavior).
func (e *errseq) sample() uint64 {
	if e.err != nil && !e.seen {
		return e.seq - 1
	}
	return e.seq
}
