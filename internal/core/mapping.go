package core

import (
	"fmt"

	"aquila/internal/iface"
	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
	"aquila/internal/sim/pagetable"
)

// AqMapping is a memory mapping under Aquila, compatible with Linux mmap
// semantics (shared, file-backed) but served by the ring-0 mmio path.
type AqMapping struct {
	rt   *Runtime
	r    *Region
	size uint64
	dead bool
	// errCursor is this mapping's position in the file's writeback error
	// sequence: errors recorded before the mapping was created are not
	// re-reported to it, and each later error is reported exactly once.
	errCursor uint64
}

var _ iface.Mapping = (*AqMapping)(nil)

// Size implements iface.Mapping.
func (m *AqMapping) Size() uint64 { return m.size }

// Advise implements iface.Mapping. madvise is intercepted in ring 0: it is a
// function call, not a syscall (§4.4).
func (m *AqMapping) Advise(p *engine.Proc, advice iface.Advice) {
	p.AdvanceSystem(m.rt.P.MsyncEntry)
	if advice == iface.AdviceHuge {
		// MADV_HUGEPAGE composes with, rather than replaces, the
		// access-pattern advice: the region keeps its readahead class and
		// additionally promotes extents on first fault.
		m.r.HugeHint = true
		return
	}
	m.r.Advice = advice
}

// Load implements iface.Mapping.
func (m *AqMapping) Load(p *engine.Proc, off uint64, buf []byte) {
	m.checkRange(off, len(buf))
	for n := 0; n < len(buf); {
		va := m.r.Start + off + uint64(n)
		po := int(va % pageSize)
		chunk := pageSize - po
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		frame, err := m.rt.resolve(p, va, false)
		if err != nil {
			// The mmap load/store interface has no error channel; a failed
			// fault-in (poisoned page, stalled eviction) surfaces like the
			// kernel's SIGBUS, typed so handlers can recover and inspect it.
			panic(&SigBus{VA: va, File: m.r.File.name, Err: err})
		}
		copyOut(buf[n:n+chunk], frame, po)
		p.AdvanceUser(loadStoreCost(chunk))
		n += chunk
	}
}

// Store implements iface.Mapping.
func (m *AqMapping) Store(p *engine.Proc, off uint64, buf []byte) {
	if m.r.ReadOnly {
		panic(&SigSegv{File: m.r.File.name, Reason: "store to read-only mapping"})
	}
	m.checkRange(off, len(buf))
	for n := 0; n < len(buf); {
		va := m.r.Start + off + uint64(n)
		po := int(va % pageSize)
		chunk := pageSize - po
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		frame, err := m.rt.resolve(p, va, true)
		if err != nil {
			panic(&SigBus{VA: va, File: m.r.File.name, Err: err})
		}
		copy(frame.Data()[po:po+chunk], buf[n:n+chunk])
		p.AdvanceUser(loadStoreCost(chunk))
		n += chunk
	}
}

// Msync implements iface.Mapping: write back, then report the first
// writeback error this mapping has not yet seen (errseq semantics — the
// error may come from this very writeback or from an earlier background
// eviction pass).
func (m *AqMapping) Msync(p *engine.Proc) error {
	m.rt.msyncFile(p, m.r.File)
	return m.r.File.wbErr.check(&m.errCursor)
}

// MsyncRange implements iface.Mapping: intercepted in ring 0 and served from
// the per-core dirty trees, whose device-offset ordering makes the range
// collection a bounded in-order walk.
func (m *AqMapping) MsyncRange(p *engine.Proc, off, length uint64) error {
	m.rt.msyncFileRange(p, m.r.File, off, length)
	return m.r.File.wbErr.check(&m.errCursor)
}

// Mprotect changes the mapping's protection (§4.4: intercepted in ring 0, a
// function call rather than a syscall). Downgrading to read-only rewrites
// live PTEs and issues one batched shootdown; upgrading back is lazy (the
// next store takes a write-protect fault).
func (m *AqMapping) Mprotect(p *engine.Proc, readOnly bool) {
	p.AdvanceSystem(m.rt.P.MsyncEntry)
	if readOnly && !m.r.ReadOnly {
		changed := 0
		for va := m.r.Start; va < m.r.End; {
			step := uint64(pageSize)
			if e, ok := m.rt.PT.Lookup(va); ok {
				if e.PageSize == pagetable.Size2M {
					step = pagetable.Size2M // one PTE covers the whole extent
				}
				if e.Flags.Has(pagetable.FlagWritable) {
					m.rt.PT.Protect(va, pagetable.FlagUser|pagetable.FlagAccessed)
					m.rt.charge(p, "map-pte", m.rt.C.PTEUpdate)
					changed++
				}
			}
			va += step
		}
		if changed > 0 {
			m.rt.shootdown(p)
		}
	}
	m.r.ReadOnly = readOnly
}

// Mremap grows or shrinks the mapping (§4.4). Growth relocates the region to
// a fresh virtual range, moving live PTEs (one batched shootdown for the old
// range); shrinking unmaps the tail. The mapping's pages stay cached either
// way.
func (m *AqMapping) Mremap(p *engine.Proc, newSize uint64) {
	rt := m.rt
	rt.Host.HV.VMCall(p, rt.P.VspaceVMCall) // range updates interact with root ring 0
	newPages := (newSize + pageSize - 1) / pageSize
	oldPages := m.r.Pages()
	switch {
	case newPages == oldPages:
	case newPages < oldPages:
		// Shrink in place: unmap the tail. A huge unit straddling the new end
		// must demote first — its tail leaves the mapping while its head
		// stays, and a 2 MB PTE cannot be half-unmapped.
		if rt.hugeEnabled() && newPages%uint64(hugePages) != 0 {
			for {
				unit := rt.lookupPage(m.r.File.id, newPages)
				if unit == nil || !unit.huge {
					break
				}
				if unit.io != nil && !unit.io.Fired() {
					unit.io.Wait(p)
					continue
				}
				if unit.pins > 0 {
					p.Yield()
					continue
				}
				rt.splitUnit(p, unit, -1)
				break
			}
		}
		if unmapped := rt.unmapSpan(p, m.r, m.r.Start+newPages*pageSize, m.r.End); unmapped > 0 {
			rt.shootdown(p)
		}
		rt.vs.Remove(m.r)
		m.r.End = m.r.Start + newPages*pageSize
		rt.vs.Insert(m.r)
		rt.charge(p, "vspace", 4*rt.P.RadixLookup)
	default:
		// Grow: relocate to a fresh range, moving live translations. Huge
		// entries move whole: both bases are 2 MB-aligned, so the extent
		// offset keeps its alignment at the new range.
		newStart := rt.nextVA
		if rt.hugeEnabled() {
			newStart = (newStart + hugeBytes - 1) &^ uint64(hugeBytes-1)
		}
		rt.nextVA = newStart + (newPages+16)*pageSize
		moved := 0
		for i := uint64(0); i < oldPages; {
			oldVA := m.r.Start + i*pageSize
			e, ok := rt.PT.Lookup(oldVA)
			if !ok {
				i++
				continue
			}
			size, span := uint64(pagetable.Size4K), uint64(1)
			if e.PageSize == pagetable.Size2M {
				size, span = pagetable.Size2M, hugePages
			}
			rt.PT.Unmap(oldVA)
			rt.PT.Map(newStart+i*pageSize, e.Frame, e.Flags, size)
			rt.charge(p, "map-pte", 2*rt.C.PTEUpdate)
			if pg := rt.lookupPage(m.r.File.id, i); pg != nil {
				removeVAFrom(pg, oldVA)
				pg.vas = append(pg.vas, newStart+i*pageSize)
			}
			moved++
			i += span
		}
		if moved > 0 {
			rt.shootdown(p)
		}
		rt.vs.Remove(m.r)
		m.r.Start, m.r.End = newStart, newStart+newPages*pageSize
		rt.vs.Insert(m.r)
		rt.charge(p, "vspace", 8*rt.P.RadixLookup)
	}
	m.size = newSize
}

// Munmap implements iface.Mapping.
func (m *AqMapping) Munmap(p *engine.Proc) {
	if m.dead {
		return
	}
	m.dead = true
	m.rt.munmapRegion(p, m.r)
}

func (m *AqMapping) checkRange(off uint64, n int) {
	if off+uint64(n) > m.size {
		panic(fmt.Sprintf("core: mapping access [%d,%d) beyond size %d", off, off+uint64(n), m.size))
	}
}

// loadStoreCost is the user-side cost of moving n bytes through cached
// mappings (plain loads/stores at DRAM bandwidth).
func loadStoreCost(n int) uint64 { return uint64(n)/16 + 2 }

func copyOut(dst []byte, f *mem.Frame, off int) {
	if f.HasData() {
		copy(dst, f.Data()[off:off+len(dst)])
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

// AqFile is explicit file I/O under Aquila: intercepted in ring 0 and issued
// directly through the configured I/O engine, bypassing the DRAM cache.
// Intended for write-once data such as LSM tables; mixing cached mappings
// and direct writes to the same live pages is the application's
// responsibility, exactly as with O_DIRECT on Linux.
type AqFile struct {
	rt *Runtime
	f  *fileState
	// errCursor: this descriptor's position in the file's writeback error
	// sequence (see AqMapping.errCursor).
	errCursor uint64
}

var _ iface.File = (*AqFile)(nil)

// Name implements iface.File.
func (af *AqFile) Name() string { return af.f.name }

// Size implements iface.File.
func (af *AqFile) Size() uint64 { return backingSize(af.f.backing) }

// Pread implements iface.File.
func (af *AqFile) Pread(p *engine.Proc, buf []byte, off uint64) error {
	return af.rt.Engine.DirectRead(p, af.f, off, buf)
}

// Pwrite implements iface.File.
func (af *AqFile) Pwrite(p *engine.Proc, buf []byte, off uint64) error {
	if err := af.rt.Engine.DirectWrite(p, af.f, off, buf); err != nil {
		return err
	}
	if off+uint64(len(buf)) > af.f.size {
		af.f.size = off + uint64(len(buf))
	}
	return nil
}

// Fsync implements iface.File: engine writes are synchronous and unbuffered,
// so beyond metadata ordering it only drains this descriptor's view of the
// file's writeback error sequence (dirty mmap pages of the same file may
// have failed background writeback).
func (af *AqFile) Fsync(p *engine.Proc) error {
	p.BeginSpan("aq.fsync")
	defer p.EndSpan()
	p.AdvanceSystem(af.rt.P.MsyncEntry)
	return af.f.wbErr.check(&af.errCursor)
}

// Namespace adapts a Runtime to iface.Namespace so applications written
// against the shared interfaces run unmodified over Aquila.
type Namespace struct {
	RT *Runtime
}

var _ iface.Namespace = (*Namespace)(nil)

// Create implements iface.Namespace.
func (ns *Namespace) Create(p *engine.Proc, name string, size uint64) iface.File {
	f := ns.RT.CreateFile(p, name, size)
	return &AqFile{rt: ns.RT, f: f, errCursor: f.wbErr.sample()}
}

// Open implements iface.Namespace.
func (ns *Namespace) Open(p *engine.Proc, name string) iface.File {
	f := ns.RT.OpenFile(p, name)
	return &AqFile{rt: ns.RT, f: f, errCursor: f.wbErr.sample()}
}

// Exists implements iface.Namespace.
func (ns *Namespace) Exists(name string) bool { return ns.RT.FileExists(name) }

// Delete implements iface.Namespace.
func (ns *Namespace) Delete(p *engine.Proc, name string) { ns.RT.DeleteFile(p, name) }

// Mmap implements iface.Namespace.
func (ns *Namespace) Mmap(p *engine.Proc, f iface.File, size uint64) iface.Mapping {
	af, ok := f.(*AqFile)
	if !ok {
		panic("core: Mmap of non-Aquila file")
	}
	return ns.RT.Mmap(p, af.f, size)
}
