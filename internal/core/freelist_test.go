package core

import (
	"testing"

	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
)

// buildFreelistWorld constructs a dax runtime with small freelist batches so
// level movement happens within test-sized pools.
func buildFreelistWorld(cacheBytes uint64, cpus int, mut func(*Params)) (*engine.Engine, func(p *engine.Proc) *Runtime) {
	ps := DefaultParams()
	ps.FreelistBatch = 16
	ps.CoreQueueLimit = 32
	if mut != nil {
		mut(&ps)
	}
	e, os, _ := daxWorld(cacheBytes, cpus)
	return e, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: cacheBytes, Params: &ps})
	}
}

// checkConsistent asserts Free() matches a recount of every queue.
func checkConsistent(t *testing.T, fl *freelist, where string) {
	t.Helper()
	if fl.Free() != fl.audit() {
		t.Fatalf("%s: Free()=%d but audit()=%d", where, fl.Free(), fl.audit())
	}
	if fl.Free() < 0 {
		t.Fatalf("%s: negative free count %d", where, fl.Free())
	}
}

func TestFreelistAccountingInterleaved(t *testing.T) {
	for _, single := range []bool{false, true} {
		name := "two-level"
		if single {
			name = "single-queue"
		}
		t.Run(name, func(t *testing.T) {
			e, boot := buildFreelistWorld(2*mib, 4, func(ps *Params) {
				ps.SingleQueueFreelist = single
			})
			e.Spawn(0, "t", func(p *engine.Proc) {
				rt := boot(p)
				fl := rt.fl
				checkConsistent(t, fl, "after boot")
				total := fl.Free()

				// Interleave pops and pushes, auditing throughout.
				var held []*mem.Frame
				for i := 0; i < 200; i++ {
					f := fl.pop(p)
					if f == nil {
						t.Fatalf("pop %d returned nil with %d free", i, fl.Free())
					}
					held = append(held, f)
					if i%3 == 0 {
						fl.push(p, held[len(held)-1])
						held = held[:len(held)-1]
					}
					checkConsistent(t, fl, "interleave")
				}
				if got := fl.Free() + len(held); got != total {
					t.Fatalf("conservation broken: free %d + held %d != %d", fl.Free(), len(held), total)
				}
				// Batch refill (the background evictor's push path).
				fl.pushBatch(p, held)
				checkConsistent(t, fl, "after pushBatch")
				if fl.Free() != total {
					t.Fatalf("free %d after returning everything, want %d", fl.Free(), total)
				}
				// pushBatch of nothing is a no-op.
				fl.pushBatch(p, nil)
				checkConsistent(t, fl, "after empty pushBatch")

				// drain + fill round trip.
				drained := fl.drain(total / 2)
				if len(drained) != total/2 {
					t.Fatalf("drain returned %d, want %d", len(drained), total/2)
				}
				checkConsistent(t, fl, "after drain")
				fl.fill(drained)
				checkConsistent(t, fl, "after fill")
				if fl.Free() != total {
					t.Fatalf("free %d after refill, want %d", fl.Free(), total)
				}
			})
			e.Run()
		})
	}
}

func TestFreelistPopSpillsAndRefills(t *testing.T) {
	// pop must pull batches from NUMA queues into the core queue; push must
	// spill back above the core-queue limit — with Free() consistent at
	// every transition.
	e, boot := buildFreelistWorld(2*mib, 4, nil)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		fl := rt.fl
		total := fl.Free()
		// Exhaust everything through one core.
		var held []*mem.Frame
		for {
			f := fl.pop(p)
			if f == nil {
				break
			}
			held = append(held, f)
			checkConsistent(t, fl, "exhaust")
		}
		if len(held) != total || fl.Free() != 0 {
			t.Fatalf("popped %d of %d, free=%d", len(held), total, fl.Free())
		}
		// Push everything back one by one: core queue must spill to NUMA
		// queues at the limit.
		for _, f := range held {
			fl.push(p, f)
			if n := len(fl.cores[p.CPU()]); n > rt.P.CoreQueueLimit+1 {
				t.Fatalf("core queue grew to %d, limit %d", n, rt.P.CoreQueueLimit)
			}
			checkConsistent(t, fl, "push-back")
		}
		if fl.Free() != total {
			t.Fatalf("free %d, want %d", fl.Free(), total)
		}
		nodeFrames := 0
		for _, q := range fl.nodes {
			nodeFrames += len(q)
		}
		if nodeFrames == 0 {
			t.Error("no spill to NUMA queues despite core-queue limit")
		}
	})
	e.Run()
}

func TestFreelistStealAblation(t *testing.T) {
	// steal has no private levels to scan in single-queue mode.
	e, boot := buildFreelistWorld(1*mib, 2, func(ps *Params) {
		ps.SingleQueueFreelist = true
	})
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		if f := rt.fl.steal(p); f != nil {
			t.Error("steal returned a frame in single-queue mode")
		}
		checkConsistent(t, rt.fl, "after steal attempt")
	})
	e.Run()
}
