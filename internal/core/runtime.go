package core

import (
	"errors"
	"fmt"
	"sort"

	"aquila/internal/detutil"
	"aquila/internal/host"
	"aquila/internal/iface"
	"aquila/internal/metrics"
	"aquila/internal/obs"
	"aquila/internal/sim/cpu"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
	"aquila/internal/sim/pagetable"
)

// Stats are Aquila's operation counters.
type Stats struct {
	MajorFaults      uint64
	MinorFaults      uint64
	WPFaults         uint64
	Evictions        uint64
	WrittenBack      uint64
	ShootdownBatches uint64
	ReadaheadPages   uint64
	// DirectReclaimPages and BgReclaimPages split Evictions by who did the
	// work: the faulting proc inline vs the background evictor daemons.
	DirectReclaimPages uint64
	BgReclaimPages     uint64
	// EvictStalls counts rounds in which an allocation found every reclaim
	// candidate busy and had to yield or throttle-wait.
	EvictStalls uint64
	// IORetries counts transient device errors absorbed by the bounded
	// retry/backoff policy (Params.IORetryLimit / IORetryBackoff).
	IORetries uint64
	// PoisonedPages counts pages whose fill I/O failed permanently; any
	// access to them delivers SIGBUS.
	PoisonedPages uint64
	// QuarantinedPages counts dirty pages whose writeback failed permanently
	// and that are now pinned in DRAM (never dropped, never re-selected).
	QuarantinedPages uint64
	// RequeuedPages counts pages whose writeback failed transiently even
	// after retries and that were put back on the dirty list for a later
	// writeback pass.
	RequeuedPages uint64
	// SyncWritebackFallbacks counts background-evict batches that fell back
	// from overlapped to synchronous writeback after repeated failures.
	SyncWritebackFallbacks uint64
	// HugeFaults counts faults served by a 2 MB unit: promotions, minor
	// faults mapping an existing unit, and write upgrades on units.
	HugeFaults uint64
	// HugePromotions counts extents collapsed into one 2 MB unit.
	HugePromotions uint64
	// HugeDemotions counts units split back into 4 KB pages (first dirtying
	// store on a clean unit, failed merged fill, boundary operations).
	HugeDemotions uint64
	// HugeEvictions counts whole-unit evictions: one shootdown slot and one
	// merged 2 MB writeback per unit.
	HugeEvictions uint64
	// RestoredWBErrors counts files whose writeback error sequence was
	// re-seeded from a crash image at open/create, so a pre-crash unreported
	// error still surfaces exactly once after recovery.
	RestoredWBErrors uint64
	// RecoveredFiles counts files reopened from a recovered (post-crash)
	// backing image.
	RecoveredFiles uint64
}

// Eviction stall handling: an empty selection round means every cached page
// is pinned or under I/O. The first evictStallYields rounds yield for free
// (letting the I/O owners progress — historical behavior); past that the
// allocation burns a bounded throttled-wait budget in quanta of simulated
// time, and only then gives up with ErrEvictionStalled instead of the former
// hard panic.
const (
	// evictStallYields matches the threshold at which the runtime formerly
	// panicked, so runs that completed before behave identically.
	evictStallYields = 10000
	// evictStallQuantum is one throttled wait (~8 µs at 2.4 GHz).
	evictStallQuantum = 20000
	// evictThrottleQuantum paces a faulter waiting on the background
	// evictor: short enough to notice a freelist refill quickly (a daemon
	// batch lands every few thousand cycles), long enough not to spin.
	evictThrottleQuantum = 4000
	// defaultEvictStallBudget (~17 µs) bounds throttled waiting per
	// allocation: a daemon refill batch lands within a few thousand cycles
	// when reclaim is keeping up, so waiting longer than roughly one inline
	// batch reclaim costs means the daemons are behind — fall back to
	// direct reclaim rather than queue behind the backlog (tail latency
	// stays near the synchronous design's).
	defaultEvictStallBudget = 40_000
)

// ErrEvictionStalled reports that an allocation exhausted its throttled-wait
// budget with every reclaim candidate pinned or in flight: the cache is too
// small for the in-flight windows of its users. Mappings surface it as a
// SIGBUS-style panic; code calling the runtime directly can handle it.
var ErrEvictionStalled = errors.New("core: eviction stalled — cache too small for in-flight windows")

// VictimPolicy selects pages to evict; the default is the built-in LRU
// approximation. Applications may install their own (cache customization,
// contribution 1 of the paper).
type VictimPolicy func(p *engine.Proc, n int) []*Page

// ReadaheadPolicy returns how many pages beyond the faulting one to read,
// given the region's madvise state. The default honors AdviceSequential /
// AdviceWillNeed with Params.ReadAheadPages and reads nothing otherwise.
type ReadaheadPolicy func(r *Region, idx uint64) int

// Config parameterizes a Runtime.
type Config struct {
	// CacheBytes is the initial DRAM I/O cache size.
	CacheBytes uint64
	// MaxCacheBytes bounds dynamic growth (default: CacheBytes).
	MaxCacheBytes uint64
	// Params overrides the cost/policy table (nil: defaults).
	Params *Params
	// Registry receives the runtime's metrics (fault-cycle breakdown,
	// counters). Nil creates a private registry, so Break always works.
	Registry *obs.Registry
	// Label distinguishes this runtime's series in a shared Registry
	// (metric key "aquila_fault_cycles{world=<label>}").
	Label string
	// RestoredWBErrors carries per-file writeback errors out of a crash
	// image into a recovered runtime: the first open/create of a named file
	// seeds its errseq with the error, unseen, so the first sync caller in
	// the new incarnation reports it — exactly-once reporting survives
	// restart (see errseq.sample).
	RestoredWBErrors map[string]error
	// Recovered marks this runtime as booted from a crash image (stats and
	// metrics labeling only; the mechanism is RestoredWBErrors plus the
	// adopted device media).
	Recovered bool
}

// Runtime is one Aquila instance: the library OS state of a single process
// running in non-root ring 0.
type Runtime struct {
	e      *engine.Engine
	C      cpu.Costs
	P      Params
	Host   *host.OS
	Engine IOEngine

	PT   *pagetable.Table
	TLBs *cpu.TLBSet
	vs   *vspace

	// pages is the lock-free hash table of all cached pages (§3.2);
	// per-operation costs are charged explicitly, with no lock queueing.
	pages map[pageKey]*Page
	dirty []*rbTree // per-core dirty trees, keyed by device order
	fl    *freelist
	lru   *lruApprox
	// framePool is the granted guest-physical memory.
	framePool  *mem.Allocator
	limitPages uint64
	gpaBase    uint64

	files  map[string]*fileState
	nextID uint64
	nextVA uint64
	// restoredWBErr holds crash-image writeback errors not yet claimed by an
	// open/create (consumed entries are deleted; see Config.RestoredWBErrors).
	restoredWBErr map[string]error
	recovered     bool

	// evictSel serializes victim selection only (never held across I/O).
	evictSel    *engine.Mutex
	evictStalls int
	// bg holds the per-NUMA-node background evictor daemons (nil unless
	// Params.AsyncEvict); lowWater/highWater are the reclaim watermarks in
	// pages, configured or derived from the cache size.
	bg        []*bgEvictor
	lowWater  int
	highWater int
	// stallCtr is the "aquila_evict_stall" metric.
	stallCtr *obs.Counter
	// mmMask tracks CPUs that have faulted in this address space; batched
	// shootdowns target only these.
	mmMask []bool

	// Victims and Readahead are the customization hooks. Prefer, when
	// set, biases the default LRU victim selection toward pages it
	// returns true for (scan resistance, file priorities, ...).
	Victims   VictimPolicy
	Readahead ReadaheadPolicy
	Prefer    func(*Page) bool

	// Break attributes fault-path cycles to components (Figs 7, 8). It is
	// interned in Reg as "aquila_fault_cycles".
	Break *metrics.Breakdown
	// Reg is the metrics registry (never nil; private unless configured).
	Reg   *obs.Registry
	Stats Stats
}

// NewRuntime boots Aquila: enters non-root ring 0 (Dune-style), obtains the
// initial DRAM cache grant from the hypervisor and initializes all
// common-path structures. hostOS provides the hypervisor and, for the DAX
// and HOST-* engines, the backing filesystem.
func NewRuntime(p *engine.Proc, hostOS *host.OS, eng IOEngine, cfg Config) *Runtime {
	if cfg.MaxCacheBytes < cfg.CacheBytes {
		cfg.MaxCacheBytes = cfg.CacheBytes
	}
	params := DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var labels []obs.Label
	if cfg.Label != "" {
		labels = append(labels, obs.L("world", cfg.Label))
	}
	rt := &Runtime{
		e:        hostOS.E,
		C:        cpu.Default(),
		P:        params,
		Host:     hostOS,
		Engine:   eng,
		PT:       pagetable.New(2),
		TLBs:     cpu.NewTLBSet(hostOS.E.NumCPUs(), 1536, 41),
		vs:       &vspace{},
		pages:    make(map[pageKey]*Page),
		files:    make(map[string]*fileState),
		nextVA:   0x6000_0000_0000,
		gpaBase:  16 << 30,
		evictSel: engine.NewMutex(hostOS.E, "aquila_evict_select"),
		Break:    reg.Breakdown("aquila_fault_cycles", labels...),
		Reg:      reg,
	}
	rt.recovered = cfg.Recovered
	if len(cfg.RestoredWBErrors) > 0 {
		rt.restoredWBErr = make(map[string]error, len(cfg.RestoredWBErrors))
		//aqlint:sorted -- host-side map copy, no simulated state
		for name, err := range cfg.RestoredWBErrors {
			rt.restoredWBErr[name] = err
		}
	}
	rt.stallCtr = reg.Counter("aquila_evict_stall", labels...)
	if rt.hugeEnabled() {
		// The huge path needs physically contiguous 2 MB blocks: grant the
		// guest-physical pool as a per-node buddy system, and size the split
		// 2 MB dTLB arrays. Disabled mode keeps the classic allocator so the
		// 4 KB-only runtime stays bit-identical.
		rt.framePool = mem.NewBuddyAllocator(cfg.MaxCacheBytes, hostOS.E.NumNUMANodes())
		rt.TLBs.SetCapacity2M(params.HugeTLBEntries)
	} else {
		rt.framePool = mem.NewAllocator(cfg.MaxCacheBytes, hostOS.E.NumNUMANodes())
	}
	rt.fl = newFreelist(rt)
	rt.lru = newLRU(rt)
	rt.dirty = make([]*rbTree, hostOS.E.NumCPUs())
	for i := range rt.dirty {
		rt.dirty[i] = &rbTree{}
	}
	rt.Victims = rt.lru.selectVictims
	rt.Readahead = rt.defaultReadahead
	rt.mmMask = make([]bool, hostOS.E.NumCPUs())

	// Entering Aquila: one vmcall to set up VMCS/EPT state (Dune enter).
	hostOS.HV.VMCall(p, params.DuneEnter)
	rt.grow(p, cfg.CacheBytes)
	if params.AsyncEvict {
		rt.startEvictors(p)
	}
	return rt
}

// CacheLimitPages returns the current cache size in pages.
func (rt *Runtime) CacheLimitPages() uint64 { return rt.limitPages }

// ResidentPages returns the number of cached base pages (a 2 MB unit counts
// its 512 frames).
func (rt *Runtime) ResidentPages() int {
	n := 0
	//aqlint:sorted -- order-independent sum; pages() reads one bool, no simulated state
	for _, pg := range rt.pages {
		n += pg.pages()
	}
	return n
}

// FreePages returns the free-list population.
func (rt *Runtime) FreePages() int { return rt.fl.Free() }

// charge advances p by cyc system cycles and attributes them to a breakdown
// category.
func (rt *Runtime) charge(p *engine.Proc, cat string, cyc uint64) {
	p.AdvanceSystem(cyc)
	rt.Break.Add(cat, cyc)
}

// grow grants more DRAM from the hypervisor in 1 GB units (§3.5) and feeds
// the freelist.
func (rt *Runtime) grow(p *engine.Proc, bytes uint64) {
	const gig = 1 << 30
	granted := (bytes + gig - 1) / gig * gig
	wantPages := bytes / pageSize
	if rt.limitPages+wantPages > rt.framePool.Capacity() {
		wantPages = rt.framePool.Capacity() - rt.limitPages
	}
	rt.Host.HV.GrantRegion(p, rt.gpaBase, granted)
	rt.gpaBase += granted
	var frames []*mem.Frame
	var blocks [][]*mem.Frame
	perNode := int(wantPages) / rt.e.NumNUMANodes()
	for n := 0; n < rt.e.NumNUMANodes(); n++ {
		want := perNode
		if n == 0 {
			want = int(wantPages) - perNode*(rt.e.NumNUMANodes()-1)
		}
		if rt.hugeEnabled() && !rt.P.SingleQueueFreelist {
			// Carve contiguous 2 MB blocks into the huge tier first; the
			// remainder fills the base queues. pop() splits blocks back into
			// singles on demand (fall-back demotion), so no memory strands.
			for want >= hugePages {
				blk := rt.framePool.AllocBlock(n)
				if blk == nil {
					break
				}
				blocks = append(blocks, blk)
				want -= hugePages
			}
		}
		frames = append(frames, rt.framePool.AllocN(n, want)...)
	}
	rt.fl.fill(frames)
	rt.fl.fillHuge(blocks)
	rt.limitPages += uint64(len(frames)) + uint64(len(blocks))*hugePages
	if rt.bg != nil {
		rt.setWatermarks()
	}
}

// ResizeCache dynamically grows or shrinks the DRAM cache (§3.5). Shrinking
// evicts down to the new size and returns memory to the hypervisor.
func (rt *Runtime) ResizeCache(p *engine.Proc, newBytes uint64) {
	newPages := newBytes / pageSize
	if newPages > rt.limitPages {
		rt.grow(p, (newPages-rt.limitPages)*pageSize)
		return
	}
	toRemove := int(rt.limitPages - newPages)
	for rt.fl.Free() < toRemove {
		if err := rt.evict(p); err != nil {
			// Shrinking below the live working set is a caller bug, not a
			// transient condition a resize can wait out.
			panic(err)
		}
	}
	const gig = 1 << 30
	frames := rt.fl.drain(toRemove)
	for _, f := range frames {
		rt.framePool.Release(f)
	}
	rt.limitPages -= uint64(len(frames))
	reclaim := uint64(len(frames)) * pageSize / gig * gig
	if reclaim > 0 {
		rt.gpaBase -= reclaim
		rt.Host.HV.ReclaimRegion(p, rt.gpaBase, reclaim)
	}
	if rt.bg != nil {
		rt.setWatermarks()
	}
}

// CreateFile creates a file through the configured I/O engine.
func (rt *Runtime) CreateFile(p *engine.Proc, name string, size uint64) *fileState {
	if _, ok := rt.files[name]; ok {
		panic(fmt.Sprintf("core: create of existing file %q", name))
	}
	rt.nextID++
	f := &fileState{id: rt.nextID, name: name, size: size}
	f.backing = rt.Engine.Create(p, name, size)
	rt.files[name] = f
	rt.restoreWBErr(f)
	return f
}

// restoreWBErr seeds a freshly opened file's error sequence from the crash
// image (Config.RestoredWBErrors): the error enters unseen at sequence 1, so
// cursors sampled from here start at 0 and the first Msync/Fsync in the
// recovered incarnation reports it — once.
func (rt *Runtime) restoreWBErr(f *fileState) {
	err, ok := rt.restoredWBErr[f.name]
	if !ok {
		return
	}
	delete(rt.restoredWBErr, f.name)
	f.wbErr = errseq{err: err, seq: 1}
	rt.Stats.RestoredWBErrors++
}

// FileExists reports whether a name resolves, in this runtime or in the
// engine's backing namespace.
func (rt *Runtime) FileExists(name string) bool {
	if _, ok := rt.files[name]; ok {
		return true
	}
	switch e := rt.Engine.(type) {
	case *DAXEngine:
		return e.OS.FS.Exists(name)
	case *HostEngine:
		return e.OS.FS.Exists(name)
	case *SPDKEngine:
		return e.FM.Exists(name)
	}
	return false
}

// OpenFile opens an existing file.
func (rt *Runtime) OpenFile(p *engine.Proc, name string) *fileState {
	if f, ok := rt.files[name]; ok {
		f.size = backingSize(f.backing)
		return f
	}
	backing, size := rt.Engine.Open(p, name)
	rt.nextID++
	f := &fileState{id: rt.nextID, name: name, size: size, backing: backing}
	rt.files[name] = f
	rt.restoreWBErr(f)
	if rt.recovered {
		rt.Stats.RecoveredFiles++
	}
	return f
}

// DeleteFile removes a file: its cached pages are dropped (frames recycled),
// its dirty entries discarded, and the backing object released.
func (rt *Runtime) DeleteFile(p *engine.Proc, name string) {
	f, ok := rt.files[name]
	if !ok {
		rt.Engine.Delete(p, name)
		return
	}
	// Drop cached pages in key order: the waits below advance the clock and
	// the later freelist pushes recycle frames in drop order, so iterating
	// the hash directly would leak map randomization into the simulation.
	// Pages under I/O wait their owners; mapped pages must have been
	// unmapped by Munmap already.
	var drop []*Page
	for _, key := range detutil.SortedKeysFunc(rt.pages, pageKeyLess) {
		pg := rt.pages[key]
		if key.fid != f.id {
			continue
		}
		for pg.io != nil && !pg.io.Fired() {
			pg.io.Wait(p)
		}
		drop = append(drop, pg)
	}
	for _, pg := range drop {
		if len(pg.vas) > 0 {
			panic(fmt.Sprintf("core: delete of %q with live mappings", name))
		}
		if pg.dirty {
			rt.dirty[pg.dirtyCore].Delete(dirtyKey(pg))
			pg.dirty = false
		}
		pg.resident = false
		rt.cacheRemove(pg)
		rt.charge(p, "cache-lookup", rt.P.HashRemove)
		if pg.huge {
			rt.fl.pushHuge(p, pg.frames)
			pg.frames, pg.frame = nil, nil
		} else if pg.frame != nil {
			rt.fl.push(p, pg.frame)
			pg.frame = nil
		}
	}
	delete(rt.files, name)
	rt.Engine.Delete(p, name)
}

// Mmap maps the first size bytes of f. Virtual address range updates are the
// uncommon-path operation ④: they interact with root ring 0 via vmcall.
func (rt *Runtime) Mmap(p *engine.Proc, f *fileState, size uint64) *AqMapping {
	rt.Host.HV.VMCall(p, rt.P.VspaceVMCall)
	pages := (size + pageSize - 1) / pageSize
	start := rt.nextVA
	if rt.hugeEnabled() {
		// 2 MB-align region bases so every 2 MB file extent lands on a huge-
		// page-capable VA boundary.
		start = (start + hugeBytes - 1) &^ uint64(hugeBytes-1)
	}
	rt.nextVA = start + (pages+16)*pageSize
	r := &Region{Start: start, End: start + pages*pageSize, File: f}
	rt.vs.Insert(r)
	rt.charge(p, "vspace", 4*rt.P.RadixLookup)
	// Sample the error sequence at map time: earlier errors belong to
	// earlier callers.
	return &AqMapping{rt: rt, r: r, size: size, errCursor: f.wbErr.sample()}
}

// munmapRegion tears a region down: vmcall, radix removal, batched unmap +
// shootdown, and write-back of the file's dirty pages.
func (rt *Runtime) munmapRegion(p *engine.Proc, r *Region) {
	rt.Host.HV.VMCall(p, rt.P.VspaceVMCall)
	if unmapped := rt.unmapSpan(p, r, r.Start, r.End); unmapped > 0 {
		rt.shootdown(p)
	}
	rt.vs.Remove(r)
	rt.charge(p, "vspace", 4*rt.P.RadixLookup)
	rt.msyncFile(p, r.File)
}

// unmapSpan removes every PTE covering region r's VAs in [lo, hi), stepping
// by the mapped page size (a huge entry costs one PTE update and one
// reverse-map fix for the whole extent) and maintaining the rmap bookkeeping.
// A huge extent straddling a boundary must have been split by the caller.
func (rt *Runtime) unmapSpan(p *engine.Proc, r *Region, lo, hi uint64) int {
	unmapped := 0
	for va := lo; va < hi; {
		step := uint64(pageSize)
		if e, ok := rt.PT.Lookup(va); ok {
			rt.PT.Unmap(va)
			rt.charge(p, "unmap", rt.C.PTEUpdate)
			unmapped++
			idx := (va - r.Start) / pageSize
			if pg := rt.lookupPage(r.File.id, idx); pg != nil {
				removeVAFrom(pg, va)
			}
			if e.PageSize == pagetable.Size2M {
				step = pagetable.Size2M
			}
		}
		va += step
	}
	return unmapped
}

func removeVAFrom(pg *Page, va uint64) {
	for i, x := range pg.vas {
		if x == va {
			pg.vas = append(pg.vas[:i], pg.vas[i+1:]...)
			return
		}
	}
}

// resolve returns the frame currently backing va with the required
// permission, re-validating the translation after each access attempt: a
// concurrent eviction between the fault path returning and the caller's
// copy may have recycled the frame. The only possible error is
// ErrEvictionStalled, propagated up from a starved allocation.
func (rt *Runtime) resolve(p *engine.Proc, va uint64, write bool) (*mem.Frame, error) {
	for {
		frame, err := rt.access(p, va, write)
		if err != nil {
			return nil, err
		}
		if e, ok := rt.PT.Lookup(va); ok && entryFrameID(e, va) == frame.ID &&
			(!write || e.Flags.Has(pagetable.FlagWritable)) {
			return frame, nil
		}
	}
}

// access resolves a virtual address: TLB hit (free), TLB refill (2-D walk
// under virtualization), or the ring-0 fault path.
func (rt *Runtime) access(p *engine.Proc, va uint64, write bool) (*mem.Frame, error) {
	vpn := va >> mem.PageShift
	tlb := rt.TLBs.CPU(p.CPU())
	asid := rt.PT.ASID()
	if tlb.LookupVA(asid, va) {
		if e, ok := rt.PT.Lookup(va); ok {
			if !write || e.Flags.Has(pagetable.FlagWritable) {
				return rt.framePool.Frame(entryFrameID(e, va)), nil
			}
			return rt.wpFault(p, va)
		}
		tlb.InvalidatePage(asid, vpn)
		tlb.Invalidate2M(asid, va>>21)
	}
	if e, ok := rt.PT.Lookup(va); ok {
		// TLB refill: guest-PT x EPT two-dimensional walk. A 2 MB leaf ends
		// the walk one level early and fills the split 2 MB array.
		if e.PageSize == pagetable.Size2M {
			p.AdvanceUser(rt.C.TLBRefill2M + rt.C.EPTWalkExtra)
			tlb.Insert2M(asid, va>>21)
		} else {
			p.AdvanceUser(rt.C.TLBRefill + rt.C.EPTWalkExtra)
			tlb.Insert(asid, vpn)
		}
		if !write || e.Flags.Has(pagetable.FlagWritable) {
			return rt.framePool.Frame(entryFrameID(e, va)), nil
		}
		return rt.wpFault(p, va)
	}
	return rt.fault(p, va, write)
}

// wpFault handles the first store to a read-only-mapped page: a ring-0
// exception that only marks the page dirty (§3.2 dirty tracking).
func (rt *Runtime) wpFault(p *engine.Proc, va uint64) (*mem.Frame, error) {
	p.BeginSpan("aq.wp_fault")
	defer p.EndSpan()
	va &^= uint64(pageSize - 1)
	rt.mmMask[p.CPU()] = true
	rt.Stats.WPFaults++
	p.SpanEvent("fault.wp", 1)
	rt.charge(p, "exception", rt.C.ExceptionRing0+rt.P.ExceptionEntry)
	rt.charge(p, "vspace", rt.P.RadixLookup)
	r := rt.vs.Find(va)
	if r == nil {
		panic(&SigSegv{VA: va, Reason: "wp fault outside mapping"})
	}
	idx := (va - r.Start) / pageSize
	rt.charge(p, "cache-lookup", rt.P.HashLookup)
	pg := rt.lookupPage(r.File.id, idx)
	if pg == nil || (pg.io != nil && !pg.io.Fired()) {
		return rt.fault(p, va, true) // raced with eviction
	}
	if pg.huge {
		return rt.hugeWP(p, r, pg, va)
	}
	pg.pins++
	defer func() { pg.pins-- }()
	rt.markDirty(p, pg)
	rt.PT.Protect(va, pagetable.FlagUser|pagetable.FlagWritable|pagetable.FlagAccessed|pagetable.FlagDirty)
	rt.charge(p, "map-pte", rt.C.PTEUpdate+rt.C.TLBInvalidatePage)
	tlb := rt.TLBs.CPU(p.CPU())
	tlb.InvalidatePage(rt.PT.ASID(), va>>mem.PageShift)
	tlb.Insert(rt.PT.ASID(), va>>mem.PageShift)
	return rt.framePool.Frame(pg.frame.ID), nil
}

// markDirty inserts a page into the calling core's dirty red-black tree,
// keyed by device order for write-back merging.
func (rt *Runtime) markDirty(p *engine.Proc, pg *Page) {
	if pg.dirty {
		return
	}
	pg.dirty = true
	pg.dirtyCore = p.CPU()
	rt.dirty[p.CPU()].Insert(dirtyKey(pg), pg)
	rt.charge(p, "dirty-track", rt.P.DirtyTreeOp)
}

func dirtyKey(pg *Page) uint64 { return pg.file.id<<40 | pg.idx }

// defaultReadahead honors madvise hints: sequential and willneed regions
// read ahead, everything else reads exactly the faulting page. This is the
// deliberate contrast to the kernel's always-on read-around (§6.1).
func (rt *Runtime) defaultReadahead(r *Region, idx uint64) int {
	switch r.Advice {
	case iface.AdviceSequential, iface.AdviceWillNeed:
		return rt.P.ReadAheadPages - 1
	default:
		return 0
	}
}

// fault is Aquila's page-fault handler: a ring-0 exception, a lock-free
// lookup, and — on a miss — allocation (with batched eviction, synchronous
// or delegated to the background evictor), device I/O through the configured
// engine, and PTE installation.
func (rt *Runtime) fault(p *engine.Proc, va uint64, write bool) (*mem.Frame, error) {
	p.BeginSpan("aq.fault")
	defer p.EndSpan()
	va &^= uint64(pageSize - 1)
	rt.mmMask[p.CPU()] = true
	rt.charge(p, "exception", rt.C.ExceptionRing0+rt.P.ExceptionEntry)
	rt.charge(p, "vspace", rt.P.RadixLookup+rt.P.EntryLock)
	r := rt.vs.Find(va)
	if r == nil {
		panic(&SigSegv{VA: va, Reason: "page fault outside mapping"})
	}
	f := r.File
	idx := (va - r.Start) / pageSize

	var pg *Page
	promoteTried := false
	for {
		rt.charge(p, "cache-lookup", rt.P.HashLookup)
		if existing := rt.lookupPage(f.id, idx); existing != nil {
			if existing.io != nil && !existing.io.Fired() {
				existing.io.Wait(p)
				continue // re-check: may have been evicted meanwhile
			}
			pg = existing
			rt.Stats.MinorFaults++
			p.SpanEvent("fault.minor", 1)
			if rt.hugeEnabled() {
				// Pin across the LRU-record charge: it yields, and a
				// concurrent promotion claiming this extent must see the page
				// busy rather than recycle its frame under us.
				pg.pins++
				rt.lru.record(p, pg)
				pg.pins--
			} else {
				rt.lru.record(p, pg)
			}
			break
		}
		if !promoteTried && rt.shouldPromote(r, f, idx) {
			promoteTried = true
			hp, herr := rt.hugeFault(p, r, f, idx)
			if herr != nil {
				return nil, herr
			}
			if hp != nil {
				pg = hp
				break
			}
			// Promotion aborted (no contiguous block, extent busy, writeback
			// failure): fall back to the 4 KB path, at most one attempt per
			// fault. The attempt yielded, so re-probe from the top.
			continue
		}
		var err error
		if pg, err = rt.majorFault(p, r, f, idx); err != nil {
			return nil, err
		}
		break
	}
	if pg.huge {
		return rt.hugeMap(p, r, pg, va, write)
	}
	if pg.poison != nil {
		// The page's backing I/O failed permanently: deliver the recorded
		// fault instead of mapping garbage. Mappings turn it into SIGBUS.
		return nil, pg.poison
	}
	// Pin across PTE installation: the remaining handler work yields, and
	// eviction recycling this frame mid-fault would map a stale frame.
	pg.pins++
	defer func() { pg.pins-- }()

	flags := pagetable.FlagUser | pagetable.FlagAccessed
	if write {
		flags |= pagetable.FlagWritable | pagetable.FlagDirty
		rt.markDirty(p, pg)
	}
	if _, mapped := rt.PT.Lookup(va); !mapped {
		rt.PT.Map(va, pg.frame.ID, flags, pagetable.Size4K)
		pg.vas = append(pg.vas, va)
	} else {
		rt.PT.Protect(va, flags)
	}
	rt.charge(p, "map-pte", rt.C.PTEUpdate)
	rt.TLBs.CPU(p.CPU()).Insert(rt.PT.ASID(), va>>mem.PageShift)
	rt.charge(p, "accounting", rt.P.FaultAccounting)
	return rt.framePool.Frame(pg.frame.ID), nil
}

// majorFault claims (f, idx) plus any readahead window, reads the owned
// pages through the I/O engine and returns the target page.
func (rt *Runtime) majorFault(p *engine.Proc, r *Region, f *fileState, idx uint64) (*Page, error) {
	p.BeginSpan("aq.major_fault")
	defer p.EndSpan()
	rt.Stats.MajorFaults++
	p.SpanEvent("fault.major", 1)
	filePages := (f.size + pageSize - 1) / pageSize
	if filePages == 0 {
		filePages = r.Pages()
	}
	hi := idx + 1 + uint64(rt.Readahead(r, idx))
	if hi > filePages {
		hi = filePages
	}
	if hi <= idx {
		hi = idx + 1
	}
	var mine []*Page
	var target *Page
	var allocErr error
	for i := idx; i < hi; i++ {
		if existing := rt.lookupPage(f.id, i); existing != nil {
			if i == idx {
				target = existing
			}
			continue
		}
		pg := &Page{
			file: f, idx: i, resident: true,
			io: engine.NewEvent(rt.e, fmt.Sprintf("aqio:%s:%d", f.name, i)),
		}
		rt.charge(p, "cache-insert", rt.P.HashInsert)
		if rt.hugeEnabled() {
			// The insert charge yields; a concurrent promotion may have
			// claimed this extent meanwhile. Re-probe before publishing so a
			// 4 KB entry never appears inside a live huge unit.
			if raced := rt.lookupPage(f.id, i); raced != nil {
				if i == idx {
					target = raced
				}
				continue
			}
		}
		rt.cacheInsert(pg)
		fr, err := rt.allocFrame(p)
		if err != nil {
			// Unwind this page's claim: it was published but never read.
			// Waiters re-probe on the fired event, miss, and fault it in
			// themselves (taking the same stall error if it persists).
			rt.cacheRemove(pg)
			pg.resident = false
			pg.io.Fire(p.Now())
			pg.io = nil
			allocErr = err
			break
		}
		pg.frame = fr
		if i == idx {
			target = pg
		} else {
			rt.Stats.ReadaheadPages++
		}
		mine = append(mine, pg)
		rt.lru.record(p, pg)
	}
	// Read owned pages in contiguous runs.
	for i := 0; i < len(mine); {
		j := i + 1
		for j < len(mine) && mine[j].idx == mine[j-1].idx+1 {
			j++
		}
		run := mine[i:j]
		frames := make([]*mem.Frame, len(run))
		for k, pg := range run {
			frames[k] = pg.frame
		}
		if rerr := rt.readRun(p, f, run[0].idx, frames); rerr != nil {
			// The merged read failed after retries: re-issue page by page so
			// one bad LBA poisons only its own page, not the whole window.
			rt.isolateReadRun(p, run)
		}
		i = j
	}
	doneAt := p.Now()
	for _, pg := range mine {
		pg.io.Fire(doneAt)
		pg.io = nil
	}
	if allocErr != nil {
		return nil, allocErr
	}
	if target.io != nil && !target.io.Fired() {
		target.io.Wait(p)
		// The page may have been evicted while we waited; retry path.
		if !target.resident {
			return rt.majorFault(p, r, f, idx)
		}
	}
	return target, nil
}

// entryFrameID returns the frame backing va under PTE e: for a 2 MB leaf the
// base frame plus the 4 KB offset within the extent (the unit's frames are
// physically contiguous, so frame IDs are consecutive).
func entryFrameID(e pagetable.Entry, va uint64) uint64 {
	if e.PageSize == pagetable.Size2M {
		return e.Frame + ((va >> mem.PageShift) & (hugePages - 1))
	}
	return e.Frame
}

// allocFrame pops a frame from the freelist. With the background evictor
// disabled it reclaims synchronously in batches when every queue is empty
// (§3.2). With AsyncEvict the allocation instead kicks the evictor daemons
// and gives them a bounded head start (throttled waits), falling back to
// synchronous direct reclaim only when the freelist is still empty and the
// evictor is behind.
func (rt *Runtime) allocFrame(p *engine.Proc) (*mem.Frame, error) {
	var throttled uint64
	for {
		if fr := rt.fl.pop(p); fr != nil {
			rt.kickEvictors(p)
			return fr, nil
		}
		if rt.bg != nil {
			rt.wakeEvictors(p)
			if rt.evictorActive() && throttled < rt.stallBudget() {
				rt.Stats.EvictStalls++
				rt.stallCtr.Inc()
				p.WaitUntil(p.Now()+evictThrottleQuantum, engine.KindIOWait)
				throttled += evictThrottleQuantum
				continue
			}
		}
		// Inline reclaim on the allocation path — the direct-reclaim share
		// of the transition-cost surface, profiled separately from the
		// background daemons' aq.bg_evict.
		p.BeginSpan("aq.direct_reclaim")
		err := rt.evict(p)
		p.EndSpan()
		if err != nil {
			// Frames parked on other cores' private queues are invisible
			// to pop; steal one before reporting starvation.
			if fr := rt.fl.steal(p); fr != nil {
				return fr, nil
			}
			return nil, err
		}
	}
}

// stallBudget returns the throttled-wait cycle budget.
func (rt *Runtime) stallBudget() uint64 {
	if rt.P.EvictStallBudget > 0 {
		return rt.P.EvictStallBudget
	}
	return defaultEvictStallBudget
}

// evictStall handles a selection round that found every candidate busy: free
// yields up to the historical threshold, then throttled waits consuming the
// stall budget, then ErrEvictionStalled.
func (rt *Runtime) evictStall(p *engine.Proc) error {
	rt.evictStalls++
	rt.Stats.EvictStalls++
	rt.stallCtr.Inc()
	if rt.evictStalls <= evictStallYields {
		p.Yield()
		return nil
	}
	waited := uint64(rt.evictStalls-evictStallYields) * evictStallQuantum
	if waited <= rt.stallBudget() {
		p.WaitUntil(p.Now()+evictStallQuantum, engine.KindIOWait)
		return nil
	}
	return ErrEvictionStalled
}

// evict synchronously selects a batch of victims (short critical section),
// unmaps them with one batched TLB shootdown, writes dirty ones back in
// device order with merged I/Os, and recycles the frames. It returns
// ErrEvictionStalled only after the throttled-wait budget expires with every
// candidate busy.
func (rt *Runtime) evict(p *engine.Proc) error {
	p.BeginSpan("aq.evict")
	defer p.EndSpan()
	t0 := p.Now()
	rt.evictSel.Lock(p)
	victims := rt.Victims(p, rt.P.EvictBatch)
	rt.evictSel.Unlock(p)
	// Per-victim selection cost (lock-free CAS pops + hash removal),
	// charged outside the selection section: it does not serialize.
	rt.charge(p, "evict-select", rt.P.HashRemove*uint64(len(victims)))
	if len(victims) == 0 {
		return rt.evictStall(p)
	}
	rt.evictStalls = 0
	unmapped := 0
	for _, v := range victims {
		for _, va := range v.vas {
			if rt.PT.Unmap(va) {
				rt.charge(p, "unmap", rt.C.PTEUpdate)
				unmapped++
			}
		}
		v.vas = nil
	}
	if unmapped > 0 {
		rt.shootdown(p)
	}
	var dirtyV []*Page
	for _, v := range victims {
		if v.dirty {
			// Flag and tree entry change together, before the charge below can
			// yield: a crash must never observe a dirty page missing from its
			// tree (CheckCrashInvariants).
			rt.dirty[v.dirtyCore].Delete(dirtyKey(v))
			v.dirty = false
			rt.charge(p, "dirty-track", rt.P.DirtyTreeOp)
			dirtyV = append(dirtyV, v)
		}
	}
	rt.writeSorted(p, dirtyV, true)
	doneAt := p.Now()
	recycled := 0
	for _, v := range victims {
		v.io.Fire(doneAt)
		v.io = nil
		if v.quarantined || v.dirty {
			// Writeback failed: the page was revived (quarantined or
			// requeued) and keeps its frame; waiters re-probe and find it.
			continue
		}
		rt.cacheRemove(v)
		if v.huge {
			rt.fl.pushHuge(p, v.frames)
			v.frames, v.frame = nil, nil
			rt.Stats.HugeEvictions++
			recycled += hugePages
		} else {
			rt.fl.push(p, v.frame)
			v.frame = nil
			recycled++
		}
	}
	rt.Stats.Evictions += uint64(recycled)
	rt.Stats.DirectReclaimPages += uint64(recycled)
	p.SpanEvent("evict.pages", uint64(recycled))
	if rt.P.AsyncEvict {
		// Summary wall-clock category for the sync-fallback share of
		// reclaim; the fine-grained categories above still hold the parts.
		// Only recorded in async mode so sync-mode output stays identical.
		rt.Break.Add("direct_reclaim", p.Now()-t0)
	}
	return nil
}

// shootdown performs Aquila's batched TLB invalidation (§4.1): one
// rate-limited (vmexit) send covering the whole batch, posted IPIs to every
// other core, vmexit-less receive.
func (rt *Runtime) shootdown(p *engine.Proc) {
	p.BeginSpan("aq.shootdown")
	defer p.EndSpan()
	rt.Stats.ShootdownBatches++
	p.SpanEvent("shootdown", 1)
	targets := make([]int, 0, rt.e.NumCPUs())
	for c := 0; c < rt.e.NumCPUs(); c++ {
		if rt.mmMask[c] {
			targets = append(targets, c)
		}
	}
	t0 := p.Now()
	rt.Host.HV.SendShootdownIPIs(p, targets, rt.C.IPIReceive+rt.C.TLBFlushAll)
	for _, c := range targets {
		rt.TLBs.CPU(c).FlushAll()
	}
	p.AdvanceSystem(rt.C.TLBFlushAll)
	rt.Break.Add("tlb-shootdown", p.Now()-t0)
}

// writeSorted writes dirty pages in device-offset order, merging adjacent
// pages into large I/Os (§3.2 write-back). evicting tells the failure path
// whether the pages were claimed by eviction (and must be revived on
// failure) or are still live msync targets. The first final write failure is
// returned; all failures are also recorded in the files' error sequences.
func (rt *Runtime) writeSorted(p *engine.Proc, pages []*Page, evicting bool) error {
	if len(pages) == 0 {
		return nil
	}
	sort.Slice(pages, func(i, j int) bool { return dirtyKey(pages[i]) < dirtyKey(pages[j]) })
	// Write-protect live mappings (page_mkclean) so post-writeback stores
	// take a wp fault and re-dirty the page.
	protected := 0
	for _, pg := range pages {
		for _, va := range pg.vas {
			if rt.PT.Protect(va, pagetable.FlagUser|pagetable.FlagAccessed) {
				rt.charge(p, "writeback", rt.C.PTEUpdate)
				protected++
			}
		}
	}
	if protected > 0 {
		rt.shootdown(p)
	}
	var firstErr error
	i := 0
	for i < len(pages) {
		if pages[i].huge {
			// A unit writes back as its own merged 2 MB run, never split or
			// capped: the frames are contiguous by construction.
			if err := rt.writeRunOrRecover(p, "aq.writeback", pages[i:i+1], pages[i].frames, evicting); err != nil && firstErr == nil {
				firstErr = err
			}
			i++
			continue
		}
		j := i + 1
		for j < len(pages) && j-i < rt.P.WritebackMaxRun && !pages[j].huge &&
			pages[j].file == pages[i].file && pages[j].idx == pages[j-1].idx+1 {
			j++
		}
		run := pages[i:j]
		frames := make([]*mem.Frame, len(run))
		for k, pg := range run {
			frames[k] = pg.frame
		}
		if err := rt.writeRunOrRecover(p, "aq.writeback", run, frames, evicting); err != nil && firstErr == nil {
			firstErr = err
		}
		i = j
	}
	return firstErr
}

// writeSortedUnsafe is the deliberately broken msync write-back used to
// validate the crash oracle (Params.UnsafeMsyncAtSubmit): runs are submitted
// through the engine's asynchronous path and the caller returns at submission,
// not at the durability point. A crash landing between submission and the
// device completion silently discards the acknowledged data from the volatile
// tier — exactly the failure class the ablate-crash oracle must flag. Engines
// without an asynchronous path fall back to the correct synchronous write.
func (rt *Runtime) writeSortedUnsafe(p *engine.Proc, pages []*Page) {
	aw, _ := rt.Engine.(AsyncWriter)
	if aw == nil {
		rt.writeSorted(p, pages, false)
		return
	}
	if len(pages) == 0 {
		return
	}
	sort.Slice(pages, func(i, j int) bool { return dirtyKey(pages[i]) < dirtyKey(pages[j]) })
	protected := 0
	for _, pg := range pages {
		for _, va := range pg.vas {
			if rt.PT.Protect(va, pagetable.FlagUser|pagetable.FlagAccessed) {
				rt.charge(p, "writeback", rt.C.PTEUpdate)
				protected++
			}
		}
	}
	if protected > 0 {
		rt.shootdown(p)
	}
	i := 0
	for i < len(pages) {
		var run []*Page
		var frames []*mem.Frame
		if pages[i].huge {
			run = pages[i : i+1]
			frames = pages[i].frames
		} else {
			j := i + 1
			for j < len(pages) && j-i < rt.P.WritebackMaxRun && !pages[j].huge &&
				pages[j].file == pages[i].file && pages[j].idx == pages[j-1].idx+1 {
				j++
			}
			run = pages[i:j]
			frames = make([]*mem.Frame, len(run))
			for k, pg := range run {
				frames[k] = pg.frame
			}
		}
		i += len(run)
		t0 := p.Now()
		p.BeginSpan("aq.writeback")
		_, err := aw.SubmitWriteRun(p, run[0].file, run[0].idx, frames)
		p.EndSpan()
		rt.Break.Add("writeback", p.Now()-t0)
		if err != nil {
			// Submission rejected: nothing queued, recover synchronously. The
			// bug under test is the missing drain, not error handling.
			rt.writeRunOrRecover(p, "aq.writeback", run, frames, false)
			continue
		}
		rt.Stats.WrittenBack += uint64(len(frames))
		p.SpanEvent("writeback.pages", uint64(len(frames)))
	}
}

// retryLimit / retryBackoff derive the transient-retry policy (defaults for
// zero-valued Params, so hand-built parameter sets keep working).
func (rt *Runtime) retryLimit() int {
	if rt.P.IORetryLimit > 0 {
		return rt.P.IORetryLimit
	}
	return 3
}

func (rt *Runtime) retryBackoff() uint64 {
	if rt.P.IORetryBackoff > 0 {
		return rt.P.IORetryBackoff
	}
	return 20000
}

// transientErr reports whether a device error is worth retrying in place.
func transientErr(err error) bool {
	var de *device.IOError
	return errors.As(err, &de) && de.Transient()
}

// ioRetryWait charges the linear backoff before retry attempt+1 as fully
// simulated I/O wait, so the degraded path stays cycle-accounted and
// deterministic.
func (rt *Runtime) ioRetryWait(p *engine.Proc, attempt int) {
	rt.Stats.IORetries++
	t0 := p.Now()
	p.BeginSpan("aq.io_retry")
	p.WaitUntil(p.Now()+rt.retryBackoff()*uint64(attempt+1), engine.KindIOWait)
	p.EndSpan()
	rt.Break.Add("io-retry", p.Now()-t0)
}

// readRun issues one merged fill read through the engine with the bounded
// transient-retry policy. A final failure is returned as a typed *IOFault
// carrying device/LBA context.
func (rt *Runtime) readRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) *IOFault {
	for attempt := 0; ; attempt++ {
		t0 := p.Now()
		p.BeginSpan("aq.io")
		err := rt.Engine.ReadRun(p, f, pageIdx, frames)
		p.EndSpan()
		rt.Break.Add("device-io", p.Now()-t0)
		if err == nil {
			return nil
		}
		if !transientErr(err) || attempt >= rt.retryLimit() {
			return newIOFault("read", f.name, pageIdx, err)
		}
		rt.ioRetryWait(p, attempt)
	}
}

// writeRun is readRun's writeback twin; spanName distinguishes foreground
// ("aq.writeback") from background ("aq.bg_writeback") tracks.
func (rt *Runtime) writeRun(p *engine.Proc, spanName string, f *fileState, pageIdx uint64, frames []*mem.Frame) *IOFault {
	for attempt := 0; ; attempt++ {
		t0 := p.Now()
		p.BeginSpan(spanName)
		err := rt.Engine.WriteRun(p, f, pageIdx, frames)
		p.EndSpan()
		rt.Break.Add("writeback", p.Now()-t0)
		if err == nil {
			return nil
		}
		if !transientErr(err) || attempt >= rt.retryLimit() {
			return newIOFault("write", f.name, pageIdx, err)
		}
		rt.ioRetryWait(p, attempt)
	}
}

// isolateReadRun re-reads each page of a failed merged read individually,
// poisoning exactly the pages whose I/O keeps failing. Poisoned frames are
// zeroed: their content was never valid.
func (rt *Runtime) isolateReadRun(p *engine.Proc, run []*Page) {
	for _, pg := range run {
		if pe := rt.readRun(p, pg.file, pg.idx, []*mem.Frame{pg.frame}); pe != nil {
			rt.poison(pg, pe)
		}
	}
}

// poison marks a page permanently unreadable; every access delivers the
// recorded fault as SIGBUS. The page stays in the hash (re-faults fail fast
// without re-issuing doomed I/O) but remains evictable as clean.
func (rt *Runtime) poison(pg *Page, ferr *IOFault) {
	if pg.poison == nil {
		rt.Stats.PoisonedPages++
	}
	pg.poison = ferr
	if pg.frame != nil && pg.frame.HasData() {
		pg.frame.Reset()
	}
}

// writeRunOrRecover writes one merged run; on final failure it re-issues the
// run page by page so one bad LBA doesn't fail its siblings, then requeues
// (transient) or quarantines (permanent) exactly the failing pages, recording
// each final failure in the owning file's error sequence.
func (rt *Runtime) writeRunOrRecover(p *engine.Proc, spanName string, run []*Page, frames []*mem.Frame, evicting bool) error {
	ferr := rt.writeRun(p, spanName, run[0].file, run[0].idx, frames)
	if ferr == nil {
		rt.Stats.WrittenBack += uint64(len(frames))
		p.SpanEvent("writeback.pages", uint64(len(frames)))
		return nil
	}
	if len(run) == 1 {
		rt.failWritePage(p, run[0], ferr, evicting)
		return ferr
	}
	var firstErr error
	for k, pg := range run {
		pe := rt.writeRun(p, spanName, pg.file, pg.idx, frames[k:k+1])
		if pe == nil {
			rt.Stats.WrittenBack++
			p.SpanEvent("writeback.pages", 1)
			continue
		}
		if firstErr == nil {
			firstErr = pe
		}
		rt.failWritePage(p, pg, pe, evicting)
	}
	// firstErr nil here means the merged failure was transient and every page
	// succeeded in isolation: nothing was lost or left unwritten.
	return firstErr
}

// failWritePage handles one page whose writeback failed after retries: the
// error enters the file's errseq (each sync caller will see it once), and
// the page is either requeued for another pass (transient) or quarantined in
// DRAM (permanent) — never silently dropped.
func (rt *Runtime) failWritePage(p *engine.Proc, pg *Page, ferr *IOFault, evicting bool) {
	pg.file.wbErr.record(ferr)
	if ferr.Transient() {
		rt.requeueDirty(p, pg, evicting)
		return
	}
	rt.quarantine(pg, evicting)
}

// requeueDirty puts a transiently failed page back on the dirty list; if
// eviction had claimed it, the page is revived as resident so a later pass
// (or msync) retries the writeback.
func (rt *Runtime) requeueDirty(p *engine.Proc, pg *Page, evicting bool) {
	rt.Stats.RequeuedPages++
	rt.markDirty(p, pg)
	if evicting {
		pg.resident = true
		rt.lru.record(p, pg)
	}
}

// quarantine pins a permanently unwritable dirty page in DRAM: it keeps its
// frame, eviction never selects it again, and DeleteFile is the only way it
// leaves the cache. The in-memory copy is the only good one left.
func (rt *Runtime) quarantine(pg *Page, evicting bool) {
	if !pg.quarantined {
		pg.quarantined = true
		rt.Stats.QuarantinedPages++
	}
	if evicting {
		pg.resident = true
	}
}

// QuarantinedLive returns how many cached pages are currently quarantined
// (tests; Stats.QuarantinedPages counts quarantine events).
func (rt *Runtime) QuarantinedLive() int {
	n := 0
	for _, pg := range rt.pages {
		if pg.quarantined {
			n++
		}
	}
	return n
}

// PoisonedLive returns how many cached pages are currently poisoned (tests).
func (rt *Runtime) PoisonedLive() int {
	n := 0
	for _, pg := range rt.pages {
		if pg.poison != nil {
			n++
		}
	}
	return n
}

// msyncFile writes back all dirty pages of one file. Intercepted in ring 0:
// costs a function call, not a protection-domain switch (§4.4).
func (rt *Runtime) msyncFile(p *engine.Proc, f *fileState) {
	rt.msyncFileRange(p, f, 0, ^uint64(0))
}

// msyncFileRange writes back dirty pages of f overlapping [off, off+length).
func (rt *Runtime) msyncFileRange(p *engine.Proc, f *fileState, off, length uint64) {
	p.BeginSpan("aq.msync")
	defer p.EndSpan()
	p.SpanEvent("msync", 1)
	rt.charge(p, "msync", rt.P.MsyncEntry)
	lo := off / pageSize
	hi := uint64(^uint64(0))
	if length < ^uint64(0)-off {
		hi = (off + length + pageSize - 1) / pageSize
	}
	var dirtyPages []*Page
	for core := range rt.dirty {
		var pgs []*Page
		rt.dirty[core].Ascend(func(key uint64, pg *Page) bool {
			if pg.file == f && pg.idx+uint64(pg.pages()) > lo && pg.idx < hi {
				pgs = append(pgs, pg)
			}
			return true
		})
		taken := 0
		for _, pg := range pgs {
			// A page claimed by a concurrent eviction (unfired io) is
			// already on its way to the device: wait for that write-back
			// instead of racing it — the evictor recycles the frame once
			// its write completes, whether or not we still hold a
			// reference. If the page was revived dirty (transient-failure
			// requeue) fall through and take it ourselves.
			for pg.io != nil && !pg.io.Fired() {
				pg.io.Wait(p)
			}
			if !pg.dirty {
				continue // the evictor's write-back already made it durable
			}
			// Clear the flag with the tree entry, before any later yield: a
			// crash must never observe a dirty page missing from its tree
			// (CheckCrashInvariants). Pin the page for the duration of the
			// write-back — once off the dirty tree it reads as clean, and a
			// newly started eviction would otherwise free its frame before
			// the write reaches the device.
			rt.dirty[pg.dirtyCore].Delete(dirtyKey(pg))
			pg.dirty = false
			pg.pins++
			dirtyPages = append(dirtyPages, pg)
			taken++
		}
		if taken > 0 {
			rt.charge(p, "dirty-track", rt.P.DirtyTreeOp*uint64(taken))
		}
	}
	if rt.P.UnsafeMsyncAtSubmit {
		rt.writeSortedUnsafe(p, dirtyPages)
		for _, pg := range dirtyPages {
			pg.pins--
		}
		return
	}
	rt.writeSorted(p, dirtyPages, false)
	for _, pg := range dirtyPages {
		pg.pins--
	}
}

// DirtyPages returns the number of dirty pages across all cores (tests).
func (rt *Runtime) DirtyPages() int {
	n := 0
	for _, t := range rt.dirty {
		n += t.Len()
	}
	return n
}
