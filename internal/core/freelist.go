package core

import (
	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
)

// freelist is Aquila's hierarchical two-level page allocator (§3.2): a
// lock-free queue per core backed by a queue per NUMA node. A core looks, in
// order, at its own queue, its local NUMA queue, then remote NUMA queues.
// Movement between levels happens in large batches (FreelistBatch) so the
// shared queues are touched rarely; combined with lock-free queues this keeps
// contention negligible, which the model reflects by charging only per-op
// costs and no lock queueing.
type freelist struct {
	rt    *Runtime
	cores [][]*mem.Frame // per-core stacks
	nodes [][]*mem.Frame // per-NUMA stacks
	// hugeNodes is the huge tier: per-NUMA stacks of 2 MB blocks (512
	// contiguous frames) feeding huge-page promotion. Nil until the first
	// fillHuge/pushHuge, i.e. always nil with huge pages disabled.
	hugeNodes [][][]*mem.Frame
	// free counts pages across all queues (a 2 MB block counts 512).
	free int

	// single/singleLock implement the SingleQueueFreelist ablation: one
	// shared queue under a lock, the contended design §3.2 avoids.
	single     []*mem.Frame
	singleLock *engine.Mutex
}

func newFreelist(rt *Runtime) *freelist {
	fl := &freelist{rt: rt}
	fl.cores = make([][]*mem.Frame, rt.e.NumCPUs())
	fl.nodes = make([][]*mem.Frame, rt.e.NumNUMANodes())
	if rt.P.SingleQueueFreelist {
		fl.singleLock = engine.NewMutex(rt.e, "freelist_single")
	}
	return fl
}

// fill seeds the NUMA queues with freshly granted frames.
func (fl *freelist) fill(frames []*mem.Frame) {
	if fl.singleLock != nil {
		fl.single = append(fl.single, frames...)
	} else {
		for _, f := range frames {
			fl.nodes[f.Node] = append(fl.nodes[f.Node], f)
		}
	}
	fl.free += len(frames)
}

// Free returns the number of free pages across all queues.
func (fl *freelist) Free() int { return fl.free }

// pop allocates one frame for the calling core, or returns nil when every
// queue is empty (the caller must evict).
func (fl *freelist) pop(p *engine.Proc) *mem.Frame {
	if fl.singleLock != nil {
		return fl.popSingle(p)
	}
	core := p.CPU()
	fl.rt.charge(p, "alloc", fl.rt.P.FreelistPop)
	if q := fl.cores[core]; len(q) > 0 {
		f := q[len(q)-1]
		fl.cores[core] = q[:len(q)-1]
		fl.free--
		return f
	}
	// Refill from the local NUMA queue in a batch.
	local := p.Node()
	if fl.refill(p, core, local) {
		q := fl.cores[core]
		f := q[len(q)-1]
		fl.cores[core] = q[:len(q)-1]
		fl.free--
		return f
	}
	// Remote NUMA queues.
	for d := 1; d < len(fl.nodes); d++ {
		nd := (local + d) % len(fl.nodes)
		fl.rt.charge(p, "alloc", fl.rt.C.NUMARemoteAccess)
		if fl.refill(p, core, nd) {
			q := fl.cores[core]
			f := q[len(q)-1]
			fl.cores[core] = q[:len(q)-1]
			fl.free--
			return f
		}
	}
	// Fall-back demotion: every 4 KB queue is empty, but the huge tier may
	// still hold contiguous blocks — sacrifice one block's contiguity rather
	// than forcing an eviction.
	if nd := fl.splitHuge(p, local); nd >= 0 && fl.refill(p, core, nd) {
		q := fl.cores[core]
		f := q[len(q)-1]
		fl.cores[core] = q[:len(q)-1]
		fl.free--
		return f
	}
	return nil
}

// splitHuge demotes one free 2 MB block (local node preferred) into 512 base
// frames on the block's NUMA queue. It returns that node, or -1 when the huge
// tier is empty everywhere. The total free count is unchanged: frames only
// move between tiers.
func (fl *freelist) splitHuge(p *engine.Proc, local int) int {
	for d := 0; d < len(fl.hugeNodes); d++ {
		nd := (local + d) % len(fl.hugeNodes)
		hq := fl.hugeNodes[nd]
		if len(hq) == 0 {
			continue
		}
		blk := hq[len(hq)-1]
		fl.hugeNodes[nd] = hq[:len(hq)-1]
		fl.nodes[nd] = append(fl.nodes[nd], blk...)
		fl.rt.charge(p, "alloc",
			fl.rt.P.BuddyOp+fl.rt.P.FreelistMove*uint64(len(blk)))
		return nd
	}
	return -1
}

// fillHuge seeds the huge tier with freshly carved 2 MB blocks.
func (fl *freelist) fillHuge(blocks [][]*mem.Frame) {
	if len(blocks) == 0 {
		return
	}
	if fl.hugeNodes == nil {
		fl.hugeNodes = make([][][]*mem.Frame, len(fl.nodes))
	}
	for _, b := range blocks {
		fl.hugeNodes[b[0].Node] = append(fl.hugeNodes[b[0].Node], b)
		fl.free += len(b)
	}
}

// popHuge takes one 2 MB block for the calling core, local node first. Huge
// allocation never dips into the 4 KB queues: when contiguity has run out the
// caller falls back to base-page faults instead.
func (fl *freelist) popHuge(p *engine.Proc) []*mem.Frame {
	if len(fl.hugeNodes) == 0 {
		return nil
	}
	local := p.Node()
	fl.rt.charge(p, "alloc", fl.rt.P.BuddyOp)
	for d := 0; d < len(fl.hugeNodes); d++ {
		nd := (local + d) % len(fl.hugeNodes)
		if d > 0 {
			fl.rt.charge(p, "alloc", fl.rt.C.NUMARemoteAccess)
		}
		if hq := fl.hugeNodes[nd]; len(hq) > 0 {
			blk := hq[len(hq)-1]
			fl.hugeNodes[nd] = hq[:len(hq)-1]
			fl.free -= len(blk)
			return blk
		}
	}
	return nil
}

// pushHuge returns a whole-unit block to its NUMA node's huge tier,
// preserving its contiguity for the next promotion.
func (fl *freelist) pushHuge(p *engine.Proc, blk []*mem.Frame) {
	if fl.hugeNodes == nil {
		fl.hugeNodes = make([][][]*mem.Frame, len(fl.nodes))
	}
	fl.hugeNodes[blk[0].Node] = append(fl.hugeNodes[blk[0].Node], blk)
	fl.free += len(blk)
	fl.rt.charge(p, "alloc", fl.rt.P.BuddyOp)
}

// refill moves up to FreelistBatch pages from a NUMA queue to a core queue.
// The queue mutation happens before any cycle charging: charging yields, and
// two cores refilling from the same node queue across a yield would both
// take the same frames.
func (fl *freelist) refill(p *engine.Proc, core, node int) bool {
	nq := fl.nodes[node]
	if len(nq) == 0 {
		return false
	}
	n := fl.rt.P.FreelistBatch
	if n > len(nq) {
		n = len(nq)
	}
	fl.cores[core] = append(fl.cores[core], nq[len(nq)-n:]...)
	fl.nodes[node] = nq[:len(nq)-n]
	fl.rt.charge(p, "alloc", fl.rt.P.FreelistMove*uint64(n))
	return true
}

// popSingle and pushSingle are the single-shared-queue ablation paths.
func (fl *freelist) popSingle(p *engine.Proc) *mem.Frame {
	fl.singleLock.Lock(p)
	fl.rt.charge(p, "alloc", fl.rt.P.FreelistPop)
	var f *mem.Frame
	if n := len(fl.single); n > 0 {
		f = fl.single[n-1]
		fl.single = fl.single[:n-1]
		fl.free--
	}
	fl.singleLock.Unlock(p)
	return f
}

func (fl *freelist) pushSingle(p *engine.Proc, f *mem.Frame) {
	fl.singleLock.Lock(p)
	fl.rt.charge(p, "alloc", fl.rt.P.FreelistPop)
	fl.single = append(fl.single, f)
	fl.free++
	fl.singleLock.Unlock(p)
}

// push returns an evicted frame to the evicting core's queue, spilling a
// batch to the NUMA queue when the core queue exceeds its threshold (§3.2).
func (fl *freelist) push(p *engine.Proc, f *mem.Frame) {
	if fl.singleLock != nil {
		fl.pushSingle(p, f)
		return
	}
	core := p.CPU()
	fl.cores[core] = append(fl.cores[core], f)
	fl.free++
	if len(fl.cores[core]) > fl.rt.P.CoreQueueLimit {
		n := fl.rt.P.FreelistBatch
		if n > len(fl.cores[core]) {
			n = len(fl.cores[core])
		}
		q := fl.cores[core]
		for _, fr := range q[len(q)-n:] {
			fl.nodes[fr.Node] = append(fl.nodes[fr.Node], fr)
		}
		fl.cores[core] = q[:len(q)-n]
		fl.rt.charge(p, "alloc", fl.rt.P.FreelistMove*uint64(n))
	}
}

// pushBatch returns a batch of reclaimed frames straight to their NUMA
// queues (background-evictor refill): unlike push, the frames bypass the
// evicting core's private queue so every core can allocate them immediately
// instead of waiting for a spill.
func (fl *freelist) pushBatch(p *engine.Proc, frames []*mem.Frame) {
	if len(frames) == 0 {
		return
	}
	if fl.singleLock != nil {
		fl.singleLock.Lock(p)
		fl.rt.charge(p, "alloc", fl.rt.P.FreelistPop)
		fl.single = append(fl.single, frames...)
		fl.free += len(frames)
		fl.singleLock.Unlock(p)
		return
	}
	for _, f := range frames {
		fl.nodes[f.Node] = append(fl.nodes[f.Node], f)
	}
	fl.free += len(frames)
	fl.rt.charge(p, "alloc", fl.rt.P.FreelistMove*uint64(len(frames)))
}

// steal takes one frame from any core's private queue. Last resort on the
// direct-reclaim path: frames parked on other cores' queues are invisible to
// pop, and a starving allocation must not fail while they exist.
func (fl *freelist) steal(p *engine.Proc) *mem.Frame {
	if fl.singleLock != nil {
		return nil // the single queue has no private levels to strand frames
	}
	fl.rt.charge(p, "alloc", fl.rt.C.NUMARemoteAccess)
	for c := range fl.cores {
		if q := fl.cores[c]; len(q) > 0 {
			f := q[len(q)-1]
			fl.cores[c] = q[:len(q)-1]
			fl.free--
			return f
		}
	}
	return nil
}

// audit recounts frames across every queue; tests assert it equals Free().
func (fl *freelist) audit() int {
	n := len(fl.single)
	for _, q := range fl.cores {
		n += len(q)
	}
	for _, q := range fl.nodes {
		n += len(q)
	}
	for _, hq := range fl.hugeNodes {
		for _, b := range hq {
			n += len(b)
		}
	}
	return n
}

// drain removes up to n frames from the queues (cache shrink), preferring
// NUMA queues.
func (fl *freelist) drain(n int) []*mem.Frame {
	var out []*mem.Frame
	for n > len(out) && len(fl.single) > 0 {
		out = append(out, fl.single[len(fl.single)-1])
		fl.single = fl.single[:len(fl.single)-1]
	}
	for node := range fl.nodes {
		for n > len(out) && len(fl.nodes[node]) > 0 {
			q := fl.nodes[node]
			out = append(out, q[len(q)-1])
			fl.nodes[node] = q[:len(q)-1]
		}
	}
	for core := range fl.cores {
		for n > len(out) && len(fl.cores[core]) > 0 {
			q := fl.cores[core]
			out = append(out, q[len(q)-1])
			fl.cores[core] = q[:len(q)-1]
		}
	}
	// Huge blocks drain last and whole (block granularity may overshoot n
	// slightly; the caller sizes the shrink by what actually drained).
	for node := range fl.hugeNodes {
		for n > len(out) && len(fl.hugeNodes[node]) > 0 {
			hq := fl.hugeNodes[node]
			out = append(out, hq[len(hq)-1]...)
			fl.hugeNodes[node] = hq[:len(hq)-1]
		}
	}
	fl.free -= len(out)
	return out
}
