package core

import (
	"fmt"

	"aquila/internal/host"
	"aquila/internal/sim/cpu"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
	"aquila/internal/spdk"
)

// IOEngine is Aquila's pluggable device-access layer (§3.3): applications
// choose how cache misses and write-backs reach storage. The four engines of
// Figure 8(c) are provided; custom engines implement this interface.
//
// Every data-path method returns an error when the device's fault plan fails
// the operation. On failure the engine still charges the full timing of the
// attempt (submission, device service, completion — failure is detected at
// completion, as on real hardware) but moves no content: a failed read
// leaves the frames untouched, a failed write persists nothing. Injected
// latency spikes delay the operation without failing it. Worlds without a
// fault plan never see an error and pay no extra cost.
type IOEngine interface {
	// Name identifies the engine ("DAX-pmem", "SPDK-NVMe", ...).
	Name() string
	// Create makes the backing object for a new file of the given size.
	Create(p *engine.Proc, name string, size uint64) any
	// Open resolves an existing name.
	Open(p *engine.Proc, name string) (any, uint64)
	// Delete removes the backing object.
	Delete(p *engine.Proc, name string)
	// ReadRun fills frames with the content of pages [pageIdx,
	// pageIdx+len(frames)) of f, charging the engine's full access cost.
	ReadRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error
	// WriteRun persists frames to pages starting at pageIdx.
	WriteRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error
	// DirectRead and DirectWrite bypass the cache entirely (explicit file
	// I/O under Aquila, used e.g. by LSM compactions).
	DirectRead(p *engine.Proc, f *fileState, off uint64, buf []byte) error
	DirectWrite(p *engine.Proc, f *fileState, off uint64, buf []byte) error
}

// AsyncWriter is the optional overlapped-writeback extension used by the
// background evictor: SubmitWriteRun persists the frames like WriteRun but
// does not wait for the device — it returns the completion cycle, so the
// caller can queue many runs back to back and drain once. A submission error
// reports the run failed without queueing anything (completion 0). Engines
// that cannot overlap (e.g. HOST-*, where each I/O is a blocking syscall)
// simply don't implement it and the evictor falls back to WriteRun.
type AsyncWriter interface {
	SubmitWriteRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) (uint64, error)
}

// readFrames / writeFrames helpers: move content between device store and
// frames with the zero-page fast path.
func fillFrame(st *device.Store, off uint64, fr *mem.Frame) {
	if st.HasRange(off, pageSize) {
		st.ReadAt(off, fr.Data())
	} else if fr.HasData() {
		fr.Reset()
	}
}

func flushFrame(st *device.Store, off uint64, fr *mem.Frame) {
	if fr.HasData() {
		st.WriteAt(off, fr.Data())
	}
}

// DAXEngine is direct access to byte-addressable NVM (§3.3): the device is
// DAX-mapped in non-root ring 0 and I/O is the AVX2-streaming memcpy with a
// single FPU state save/restore per fault. Metadata operations are forwarded
// to the host OS.
type DAXEngine struct {
	OS    *host.OS
	PMem  *device.PMem
	costs cpu.Costs
}

// NewDAXEngine builds the DAX-pmem engine over a host whose disk is pmem.
func NewDAXEngine(os *host.OS) *DAXEngine {
	if !os.Disk().PMem {
		panic("core: DAX engine requires a pmem host disk")
	}
	return &DAXEngine{OS: os, costs: cpu.Default()}
}

// Name implements IOEngine.
func (e *DAXEngine) Name() string { return "DAX-pmem" }

// Create implements IOEngine: metadata ops go to the host via vmcall.
func (e *DAXEngine) Create(p *engine.Proc, name string, size uint64) any {
	e.OS.HV.VMCall(p, 0)
	return e.OS.FS.Create(p, name, size)
}

// Open implements IOEngine.
func (e *DAXEngine) Open(p *engine.Proc, name string) (any, uint64) {
	e.OS.HV.VMCall(p, 0)
	f := e.OS.FS.Open(p, name)
	return f, f.Size()
}

// Delete implements IOEngine.
func (e *DAXEngine) Delete(p *engine.Proc, name string) {
	e.OS.HV.VMCall(p, 0)
	e.OS.FS.Delete(p, name)
}

func (e *DAXEngine) file(f *fileState) *host.FSFile { return f.backing.(*host.FSFile) }

// ReadRun implements IOEngine: one optimized memcpy per run. Host files are
// single contiguous extents, so the whole run is one device range and the
// fault plan is consulted once per run.
func (e *DAXEngine) ReadRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error {
	hf := e.file(f)
	st := e.OS.Disk().Content
	bytes := len(frames) * pageSize
	delay, ferr := st.CheckRead(p.Now(), hf.DevOffset(pageIdx*pageSize), bytes)
	if ferr == nil {
		for i, fr := range frames {
			fillFrame(st, hf.DevOffset((pageIdx+uint64(i))*pageSize), fr)
		}
	}
	p.AdvanceSystem(e.costs.MemcpyAVX2(bytes))
	done := e.OS.Disk().Timing.Submit(p.Now(), bytes, false)
	p.WaitUntil(done+delay, engine.KindIOWait)
	return ferr
}

// WriteRun implements IOEngine.
func (e *DAXEngine) WriteRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error {
	hf := e.file(f)
	st := e.OS.Disk().Content
	bytes := len(frames) * pageSize
	delay, ferr := st.CheckWrite(p.Now(), hf.DevOffset(pageIdx*pageSize), bytes)
	if ferr == nil {
		for i, fr := range frames {
			flushFrame(st, hf.DevOffset((pageIdx+uint64(i))*pageSize), fr)
		}
	}
	p.AdvanceSystem(e.costs.MemcpyAVX2(bytes))
	done := e.OS.Disk().Timing.Submit(p.Now(), bytes, true)
	if ferr == nil {
		// Durability point: the persistence-domain drain completes at done
		// (+ any injected delay), not when the streaming stores were issued.
		st.Persist(hf.DevOffset(pageIdx*pageSize), bytes, done+delay)
	}
	p.WaitUntil(done+delay, engine.KindIOWait)
	return ferr
}

// SubmitWriteRun implements AsyncWriter: the streaming memcpy is still paid
// by the caller, but the persistence-domain drain (Timing.Submit models the
// ADR flush latency) is left queued for a later single wait, so consecutive
// runs overlap their drains.
func (e *DAXEngine) SubmitWriteRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) (uint64, error) {
	hf := e.file(f)
	st := e.OS.Disk().Content
	bytes := len(frames) * pageSize
	delay, ferr := st.CheckWrite(p.Now(), hf.DevOffset(pageIdx*pageSize), bytes)
	if ferr != nil {
		// The streaming stores machine-check immediately; nothing queued.
		p.AdvanceSystem(e.costs.MemcpyAVX2(bytes))
		return 0, ferr
	}
	for i, fr := range frames {
		flushFrame(st, hf.DevOffset((pageIdx+uint64(i))*pageSize), fr)
	}
	p.AdvanceSystem(e.costs.MemcpyAVX2(bytes))
	done := e.OS.Disk().Timing.Submit(p.Now(), bytes, true) + delay
	st.Persist(hf.DevOffset(pageIdx*pageSize), bytes, done)
	return done, nil
}

// DirectRead implements IOEngine: load/memcpy straight from the DAX mapping.
func (e *DAXEngine) DirectRead(p *engine.Proc, f *fileState, off uint64, buf []byte) error {
	st := e.OS.Disk().Content
	devOff := e.file(f).DevOffset(off)
	delay, ferr := st.CheckRead(p.Now(), devOff, len(buf))
	if ferr == nil {
		st.ReadAt(devOff, buf)
	}
	p.AdvanceSystem(e.costs.MemcpyAVX2(len(buf)))
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	return ferr
}

// DirectWrite implements IOEngine.
func (e *DAXEngine) DirectWrite(p *engine.Proc, f *fileState, off uint64, buf []byte) error {
	hf := e.file(f)
	st := e.OS.Disk().Content
	devOff := hf.DevOffset(off)
	delay, ferr := st.CheckWrite(p.Now(), devOff, len(buf))
	if ferr == nil {
		st.WriteAt(devOff, buf)
		if off+uint64(len(buf)) > hf.Size() {
			hf.SetSize(off + uint64(len(buf)))
		}
	}
	p.AdvanceSystem(e.costs.MemcpyAVX2(len(buf)))
	if ferr == nil {
		// The non-temporal stores have drained once the memcpy completes.
		st.Persist(devOff, len(buf), p.Now())
	}
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	return ferr
}

// SPDKEngine accesses a dedicated NVMe device from non-root ring 0 through
// the user-space SPDK driver and the Blobstore file abstraction (§3.3): no
// syscalls, no vmcalls, polled completions.
type SPDKEngine struct {
	FM *spdk.FileMap
}

// NewSPDKEngine builds the SPDK-NVMe engine over a blobstore file map.
func NewSPDKEngine(fm *spdk.FileMap) *SPDKEngine { return &SPDKEngine{FM: fm} }

// Name implements IOEngine.
func (e *SPDKEngine) Name() string { return "SPDK-NVMe" }

// Create implements IOEngine: files are blobs, created at runtime.
func (e *SPDKEngine) Create(p *engine.Proc, name string, size uint64) any {
	return e.FM.Create(p, name, size)
}

// Open implements IOEngine.
func (e *SPDKEngine) Open(p *engine.Proc, name string) (any, uint64) {
	b := e.FM.Open(p, name)
	return b, b.Size()
}

// Delete implements IOEngine.
func (e *SPDKEngine) Delete(p *engine.Proc, name string) { e.FM.Delete(p, name) }

func (e *SPDKEngine) blob(f *fileState) *spdk.Blob { return f.backing.(*spdk.Blob) }

// ReadRun implements IOEngine: one polled NVMe I/O per device-contiguous
// extent (blob clusters are 1 MB, so page runs rarely split). Each extent is
// one NVMe command, so the fault plan is consulted per extent; the first
// failed extent aborts the run (the runtime re-issues per page to isolate).
func (e *SPDKEngine) ReadRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error {
	b := e.blob(f)
	bs := e.FM.Blobstore()
	drv := bs.Drv()
	st := drv.Device().Store
	for i := 0; i < len(frames); {
		off := (pageIdx + uint64(i)) * pageSize
		// Pages within one cluster are device-contiguous.
		inCluster := int((spdk.ClusterSize - off%spdk.ClusterSize) / pageSize)
		n := len(frames) - i
		if n > inCluster {
			n = inCluster
		}
		delay, ferr := st.CheckRead(p.Now(), bs.DevOff(b, off), n*pageSize)
		if delay > 0 {
			p.WaitUntil(p.Now()+delay, engine.KindIOWait)
		}
		if ferr != nil {
			drv.ReadTimed(p, n*pageSize)
			return ferr
		}
		for j := 0; j < n; j++ {
			fillFrame(st, bs.DevOff(b, off+uint64(j)*pageSize), frames[i+j])
		}
		drv.ReadTimed(p, n*pageSize)
		i += n
	}
	return nil
}

// WriteRun implements IOEngine.
func (e *SPDKEngine) WriteRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error {
	b := e.blob(f)
	bs := e.FM.Blobstore()
	drv := bs.Drv()
	st := drv.Device().Store
	for i := 0; i < len(frames); {
		off := (pageIdx + uint64(i)) * pageSize
		inCluster := int((spdk.ClusterSize - off%spdk.ClusterSize) / pageSize)
		n := len(frames) - i
		if n > inCluster {
			n = inCluster
		}
		delay, ferr := st.CheckWrite(p.Now(), bs.DevOff(b, off), n*pageSize)
		if delay > 0 {
			p.WaitUntil(p.Now()+delay, engine.KindIOWait)
		}
		if ferr != nil {
			drv.WriteTimed(p, n*pageSize)
			return ferr
		}
		for j := 0; j < n; j++ {
			flushFrame(st, bs.DevOff(b, off+uint64(j)*pageSize), frames[i+j])
		}
		done := drv.WriteTimed(p, n*pageSize)
		st.Persist(bs.DevOff(b, off), n*pageSize, done)
		i += n
	}
	return nil
}

// SubmitWriteRun implements AsyncWriter: per-cluster extents enter the NVMe
// submission queue without busy-polling each completion; the returned cycle
// is the last extent's completion.
func (e *SPDKEngine) SubmitWriteRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) (uint64, error) {
	b := e.blob(f)
	bs := e.FM.Blobstore()
	drv := bs.Drv()
	st := drv.Device().Store
	var done uint64
	for i := 0; i < len(frames); {
		off := (pageIdx + uint64(i)) * pageSize
		inCluster := int((spdk.ClusterSize - off%spdk.ClusterSize) / pageSize)
		n := len(frames) - i
		if n > inCluster {
			n = inCluster
		}
		delay, ferr := st.CheckWrite(p.Now(), bs.DevOff(b, off), n*pageSize)
		if ferr != nil {
			// Submission-time rejection: nothing from this run is queued.
			return 0, ferr
		}
		for j := 0; j < n; j++ {
			flushFrame(st, bs.DevOff(b, off+uint64(j)*pageSize), frames[i+j])
		}
		d := drv.WriteAsync(p, n*pageSize) + delay
		st.Persist(bs.DevOff(b, off), n*pageSize, d)
		if d > done {
			done = d
		}
		i += n
	}
	return done, nil
}

// DirectRead implements IOEngine. The fault check covers the first
// device-contiguous chunk (blob clusters may scatter a long read).
func (e *SPDKEngine) DirectRead(p *engine.Proc, f *fileState, off uint64, buf []byte) error {
	b := e.blob(f)
	bs := e.FM.Blobstore()
	st := bs.Drv().Device().Store
	n := len(buf)
	if c := int(spdk.ClusterSize - off%spdk.ClusterSize); n > c {
		n = c
	}
	delay, ferr := st.CheckRead(p.Now(), bs.DevOff(b, off), n)
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	if ferr != nil {
		bs.Drv().ReadTimed(p, len(buf))
		return ferr
	}
	bs.ReadBlob(p, b, off, buf)
	return nil
}

// DirectWrite implements IOEngine.
func (e *SPDKEngine) DirectWrite(p *engine.Proc, f *fileState, off uint64, buf []byte) error {
	b := e.blob(f)
	bs := e.FM.Blobstore()
	st := bs.Drv().Device().Store
	n := len(buf)
	if c := int(spdk.ClusterSize - off%spdk.ClusterSize); n > c {
		n = c
	}
	delay, ferr := st.CheckWrite(p.Now(), bs.DevOff(b, off), n)
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	if ferr != nil {
		bs.Drv().WriteTimed(p, len(buf))
		return ferr
	}
	bs.WriteBlob(p, b, off, buf)
	if off+uint64(len(buf)) > b.Size() {
		bs.SetSize(b, off+uint64(len(buf)))
	}
	return nil
}

// HostEngine issues Aquila's device I/O through the host kernel with direct
// I/O syscalls — the HOST-pmem / HOST-NVMe baselines of Fig 8(c), each I/O
// paying a vmcall on top of the syscall.
type HostEngine struct {
	OS *host.OS
}

// NewHostEngine builds the HOST-* engine for whatever disk the host has.
func NewHostEngine(os *host.OS) *HostEngine { return &HostEngine{OS: os} }

// Name implements IOEngine.
func (e *HostEngine) Name() string {
	if e.OS.Disk().PMem {
		return "HOST-pmem"
	}
	return "HOST-NVMe"
}

// Create implements IOEngine.
func (e *HostEngine) Create(p *engine.Proc, name string, size uint64) any {
	e.OS.HV.VMCall(p, 0)
	return e.OS.FS.Create(p, name, size)
}

// Open implements IOEngine.
func (e *HostEngine) Open(p *engine.Proc, name string) (any, uint64) {
	e.OS.HV.VMCall(p, 0)
	f := e.OS.FS.Open(p, name)
	return f, f.Size()
}

// Delete implements IOEngine.
func (e *HostEngine) Delete(p *engine.Proc, name string) {
	e.OS.HV.VMCall(p, 0)
	e.OS.FS.Delete(p, name)
}

func (e *HostEngine) file(f *fileState) *host.FSFile { return f.backing.(*host.FSFile) }

// ReadRun implements IOEngine.
func (e *HostEngine) ReadRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error {
	hf := e.file(f)
	st := e.OS.Disk().Content
	bytes := len(frames) * pageSize
	delay, ferr := st.CheckRead(p.Now(), hf.DevOffset(pageIdx*pageSize), bytes)
	if ferr == nil {
		for i, fr := range frames {
			fillFrame(st, hf.DevOffset((pageIdx+uint64(i))*pageSize), fr)
		}
	}
	e.OS.DirectIOTimed(p, bytes, false)
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	return ferr
}

// WriteRun implements IOEngine.
func (e *HostEngine) WriteRun(p *engine.Proc, f *fileState, pageIdx uint64, frames []*mem.Frame) error {
	hf := e.file(f)
	st := e.OS.Disk().Content
	bytes := len(frames) * pageSize
	delay, ferr := st.CheckWrite(p.Now(), hf.DevOffset(pageIdx*pageSize), bytes)
	if ferr == nil {
		for i, fr := range frames {
			flushFrame(st, hf.DevOffset((pageIdx+uint64(i))*pageSize), fr)
		}
	}
	done := e.OS.DirectIOTimed(p, bytes, true)
	if ferr == nil {
		st.Persist(hf.DevOffset(pageIdx*pageSize), bytes, done)
	}
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	return ferr
}

// DirectRead implements IOEngine.
func (e *HostEngine) DirectRead(p *engine.Proc, f *fileState, off uint64, buf []byte) error {
	hf := e.file(f)
	st := e.OS.Disk().Content
	delay, ferr := st.CheckRead(p.Now(), hf.DevOffset(off), len(buf))
	if ferr != nil {
		e.OS.DirectIOTimed(p, len(buf), false)
		if delay > 0 {
			p.WaitUntil(p.Now()+delay, engine.KindIOWait)
		}
		return ferr
	}
	e.OS.DirectReadHost(p, hf, off, buf)
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	return nil
}

// DirectWrite implements IOEngine.
func (e *HostEngine) DirectWrite(p *engine.Proc, f *fileState, off uint64, buf []byte) error {
	hf := e.file(f)
	st := e.OS.Disk().Content
	delay, ferr := st.CheckWrite(p.Now(), hf.DevOffset(off), len(buf))
	if ferr != nil {
		e.OS.DirectIOTimed(p, len(buf), true)
		if delay > 0 {
			p.WaitUntil(p.Now()+delay, engine.KindIOWait)
		}
		return ferr
	}
	e.OS.DirectWriteHost(p, hf, off, buf)
	if off+uint64(len(buf)) > hf.Size() {
		hf.SetSize(off + uint64(len(buf)))
	}
	if delay > 0 {
		p.WaitUntil(p.Now()+delay, engine.KindIOWait)
	}
	return nil
}

// backingSize returns the size recorded by the engine backing.
func backingSize(b any) uint64 {
	switch x := b.(type) {
	case *host.FSFile:
		return x.Size()
	case *spdk.Blob:
		return x.Size()
	}
	panic(fmt.Sprintf("core: unknown backing %T", b))
}
