package core

import (
	"fmt"

	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
	"aquila/internal/sim/pagetable"
)

// This file is the 2 MB huge-page mmio path: transparent promotion of dense
// 2 MB file extents into single cache units backed by physically contiguous
// frames (one fault, one merged fill, one PTE, one TLB entry), demotion back
// to 4 KB pages when fine-grained dirty tracking wins, and the shared cache
// bookkeeping both page sizes go through. Everything here is gated on
// hugeEnabled(): with Params.HugeFaultDensity zero no branch below executes,
// keeping the 4 KB-only runtime bit-identical to the pre-huge-page code.

// hugeEnabled reports whether the huge-page path is on for this runtime.
func (rt *Runtime) hugeEnabled() bool { return rt.P.HugeFaultDensity > 0 }

// lookupPage probes the page hash for (fid, idx), resolving hits through a
// covering 2 MB unit: units are stored once, under their extent's base index.
func (rt *Runtime) lookupPage(fid, idx uint64) *Page {
	if pg := rt.pages[pageKey{fid, idx}]; pg != nil {
		return pg
	}
	if !rt.hugeEnabled() {
		return nil
	}
	if base := idx &^ uint64(hugePages-1); base != idx {
		if pg := rt.pages[pageKey{fid, base}]; pg != nil && pg.huge {
			return pg
		}
	}
	return nil
}

// cacheInsert publishes a page in the hash and maintains the per-extent
// residency counters the promotion-density trigger reads. The counters are
// host-side bookkeeping: simulated cycles for the insert itself are charged
// by the caller (mutation before charging, like every hash update).
func (rt *Runtime) cacheInsert(pg *Page) {
	rt.pages[pg.Key()] = pg
	if !pg.huge && rt.hugeEnabled() {
		f := pg.file
		if f.extResident == nil {
			f.extResident = make(map[uint64]int)
		}
		f.extResident[pg.idx>>hugeShift]++
	}
}

// cacheRemove is cacheInsert's inverse.
func (rt *Runtime) cacheRemove(pg *Page) {
	delete(rt.pages, pg.Key())
	if !pg.huge && rt.hugeEnabled() {
		ext := pg.idx >> hugeShift
		if n := pg.file.extResident[ext] - 1; n > 0 {
			pg.file.extResident[ext] = n
		} else {
			delete(pg.file.extResident, ext)
		}
	}
}

// shouldPromote decides whether a major fault at (f, idx) should attempt to
// fill the whole 2 MB extent as one unit: the extent must lie fully inside
// both the region and the file, and either the region is MADV_HUGEPAGE'd or
// the extent's 4 KB residency density (counting the faulting page) crosses
// Params.HugeFaultDensity.
func (rt *Runtime) shouldPromote(r *Region, f *fileState, idx uint64) bool {
	if !rt.hugeEnabled() {
		return false
	}
	baseIdx := idx &^ uint64(hugePages-1)
	if (baseIdx+hugePages)*pageSize > r.End-r.Start {
		return false
	}
	filePages := (f.size + pageSize - 1) / pageSize
	if filePages > 0 && baseIdx+hugePages > filePages {
		return false
	}
	if r.HugeHint {
		return true
	}
	return float64(f.extResident[baseIdx>>hugeShift]+1) >=
		rt.P.HugeFaultDensity*float64(hugePages)
}

// hugeFault attempts to promote the extent containing idx into one 2 MB unit:
// allocate a contiguous block, displace the extent's resident 4 KB pages
// (writing dirty ones back first), and fill the unit with one merged 2 MB
// read. It returns (nil, nil) when the promotion aborts — no contiguous block
// left, a busy constituent, or a failed displacement writeback — and the
// caller falls back to the 4 KB path. Like eviction, the in-progress unit is
// published with an unfired event so racing faulters wait instead of
// re-reading the extent.
func (rt *Runtime) hugeFault(p *engine.Proc, r *Region, f *fileState, idx uint64) (*Page, error) {
	p.BeginSpan("aq.huge_fault")
	defer p.EndSpan()
	baseIdx := idx &^ uint64(hugePages-1)

	// Contiguity first; popHuge charges (and may yield), so everything below
	// re-validates the extent.
	block := rt.fl.popHuge(p)
	if block == nil {
		return nil, nil
	}

	// Re-scan the extent. Any busy constituent aborts: pinned, I/O in
	// flight, poisoned, quarantined, claimed by eviction, or already part of
	// a unit (a racing promoter won while popHuge yielded).
	var olds []*Page
	for i := baseIdx; i < baseIdx+hugePages; i++ {
		pg := rt.pages[pageKey{f.id, i}]
		if pg == nil {
			continue
		}
		if pg.huge || pg.pins > 0 || (pg.io != nil && !pg.io.Fired()) ||
			pg.poison != nil || pg.quarantined || !pg.resident {
			rt.fl.pushHuge(p, block)
			return nil, nil
		}
		olds = append(olds, pg)
	}

	// Atomic claim: between here and the placeholder publish nothing charges,
	// so no other proc can observe a half-claimed extent. The 4 KB
	// constituents leave the hash and the page tables; the unit placeholder
	// takes the base key with an unfired fill event.
	unit := &Page{
		file: f, idx: baseIdx, huge: true,
		frames: block, frame: block[0], resident: true,
		io: engine.NewEvent(rt.e, fmt.Sprintf("aqhuge:%s:%d", f.name, baseIdx)),
	}
	var dirtyOlds []*Page
	unmapped := 0
	for _, pg := range olds {
		pg.resident = false
		rt.cacheRemove(pg)
		for _, va := range pg.vas {
			if rt.PT.Unmap(va) {
				unmapped++
			}
		}
		pg.vas = nil
		if pg.dirty {
			rt.dirty[pg.dirtyCore].Delete(dirtyKey(pg))
			pg.dirty = false
			dirtyOlds = append(dirtyOlds, pg)
		}
	}
	rt.cacheInsert(unit)

	// Cycle charges for the claim (yields are safe now: the claim is fully
	// published and racers wait on the unit's event).
	rt.charge(p, "map-pte", rt.P.HugePromote)
	rt.charge(p, "cache-lookup", rt.P.HashRemove*uint64(len(olds)))
	rt.charge(p, "cache-insert", rt.P.HashInsert)
	if unmapped > 0 {
		rt.charge(p, "unmap", rt.C.PTEUpdate*uint64(unmapped))
		rt.shootdown(p)
	}

	// Displacement writeback: the unit starts clean, so dirty constituents
	// must hit the device before their frames are recycled.
	if len(dirtyOlds) > 0 {
		rt.charge(p, "dirty-track", rt.P.DirtyTreeOp*uint64(len(dirtyOlds)))
		rt.writeSorted(p, dirtyOlds, true)
		aborted := false
		for _, pg := range dirtyOlds {
			if pg.dirty || pg.quarantined {
				// Requeued or quarantined by the failure path: the frame's
				// content is the only good copy, so the promotion cannot
				// proceed. Undo the claim wholesale.
				aborted = true
			}
		}
		if aborted {
			rt.cacheRemove(unit)
			unit.resident = false
			for _, pg := range olds {
				pg.resident = true
				rt.cacheInsert(pg)
			}
			rt.lru.recordBulk(p, olds)
			rt.fl.pushHuge(p, block)
			unit.io.Fire(p.Now())
			unit.io = nil
			return nil, nil
		}
	}

	// The displaced frames go back to the base queues; contiguity now lives
	// in the unit's block.
	oldFrames := make([]*mem.Frame, 0, len(olds))
	for _, pg := range olds {
		oldFrames = append(oldFrames, pg.frame)
		pg.frame = nil
	}
	rt.fl.pushBatch(p, oldFrames)

	// One merged 2 MB fill.
	if rerr := rt.readRun(p, f, baseIdx, block); rerr != nil {
		// Units are never poisoned whole: split into 4 KB pages and re-issue
		// page by page so one bad LBA poisons only itself.
		rt.Stats.MajorFaults++
		rt.Stats.HugeDemotions++
		p.SpanEvent("fault.major", 1)
		rt.cacheRemove(unit)
		unit.resident = false
		split := make([]*Page, hugePages)
		for i := range split {
			spg := &Page{
				file: f, idx: baseIdx + uint64(i), frame: block[i], resident: true,
				io: engine.NewEvent(rt.e, fmt.Sprintf("aqio:%s:%d", f.name, baseIdx+uint64(i))),
			}
			split[i] = spg
			rt.cacheInsert(spg)
		}
		rt.charge(p, "map-pte", rt.P.HugeSplit)
		rt.charge(p, "cache-insert", rt.P.HashInsert*hugePages)
		rt.lru.recordBulk(p, split)
		rt.isolateReadRun(p, split)
		doneAt := p.Now()
		for _, spg := range split {
			spg.io.Fire(doneAt)
			spg.io = nil
		}
		unit.io.Fire(doneAt)
		unit.io = nil
		return split[idx-baseIdx], nil
	}

	rt.Stats.MajorFaults++
	rt.Stats.HugePromotions++
	p.SpanEvent("fault.major", 1)
	rt.lru.record(p, unit)
	unit.io.Fire(p.Now())
	unit.io = nil
	return unit, nil
}

// hugeMap installs the translation for a fault served by a 2 MB unit: one
// Size2M PTE covering the whole extent and one entry in the 2 MB dTLB array.
// When the unit does not fit the faulting region's VA window (a second,
// smaller mapping of the same file), a single 4 KB alias PTE into the unit's
// frames is installed instead.
func (rt *Runtime) hugeMap(p *engine.Proc, r *Region, pg *Page, va uint64, write bool) (*mem.Frame, error) {
	rt.Stats.HugeFaults++
	p.SpanEvent("fault.huge", 1)
	pg.pins++
	defer func() { pg.pins-- }()
	asid := rt.PT.ASID()
	tlb := rt.TLBs.CPU(p.CPU())
	off := (va >> mem.PageShift) & (hugePages - 1)
	flags := pagetable.FlagUser | pagetable.FlagAccessed
	if write {
		flags |= pagetable.FlagWritable | pagetable.FlagDirty
		rt.markDirty(p, pg)
	}
	if (pg.idx+hugePages)*pageSize > r.End-r.Start {
		if _, mapped := rt.PT.Lookup(va); !mapped {
			rt.PT.Map(va, pg.frames[off].ID, flags, pagetable.Size4K)
			pg.vas = append(pg.vas, va)
		} else {
			rt.PT.Protect(va, flags)
		}
		rt.charge(p, "map-pte", rt.C.PTEUpdate)
		tlb.Insert(asid, va>>mem.PageShift)
	} else {
		hugeVA := va &^ uint64(hugeBytes-1)
		if e, ok := rt.PT.Lookup(hugeVA); !ok || e.PageSize != pagetable.Size2M {
			rt.PT.Map(hugeVA, pg.frames[0].ID, flags, pagetable.Size2M)
			pg.vas = append(pg.vas, hugeVA)
		} else {
			rt.PT.Protect(hugeVA, flags)
		}
		rt.charge(p, "map-pte", rt.C.PTEUpdate)
		tlb.Insert2M(asid, va>>21)
	}
	rt.charge(p, "accounting", rt.P.FaultAccounting)
	return rt.framePool.Frame(pg.frames[off].ID), nil
}

// hugeWP handles the first store to a write-protected 2 MB unit. A unit that
// is already dirty, pinned, or whose region asked for huge pages re-dirties
// as a whole (one PTE upgrade, one 2 MB writeback later); a clean unhinted
// unit splits back into 4 KB pages first so sparse writers keep fine-grained
// dirty tracking and avoid 2 MB writeback amplification.
func (rt *Runtime) hugeWP(p *engine.Proc, r *Region, pg *Page, va uint64) (*mem.Frame, error) {
	rt.Stats.HugeFaults++
	p.SpanEvent("fault.huge", 1)
	asid := rt.PT.ASID()
	tlb := rt.TLBs.CPU(p.CPU())
	off := (va >> mem.PageShift) & (hugePages - 1)
	misfit := (pg.idx+hugePages)*pageSize > r.End-r.Start
	wrFlags := pagetable.FlagUser | pagetable.FlagWritable |
		pagetable.FlagAccessed | pagetable.FlagDirty
	if pg.dirty || pg.pins > 0 || r.HugeHint || misfit {
		pg.pins++
		defer func() { pg.pins-- }()
		rt.markDirty(p, pg)
		if misfit {
			// 4 KB alias mapping: upgrade just the alias PTE.
			rt.PT.Protect(va, wrFlags)
			rt.charge(p, "map-pte", rt.C.PTEUpdate+rt.C.TLBInvalidatePage)
			tlb.InvalidatePage(asid, va>>mem.PageShift)
			tlb.Insert(asid, va>>mem.PageShift)
		} else {
			rt.PT.Protect(va&^uint64(hugeBytes-1), wrFlags)
			rt.charge(p, "map-pte", rt.C.PTEUpdate+rt.C.TLBInvalidatePage)
			tlb.Invalidate2M(asid, va>>21)
			tlb.Insert2M(asid, va>>21)
		}
		return rt.framePool.Frame(pg.frames[off].ID), nil
	}
	split := rt.splitUnit(p, pg, int(off))
	spg := split[off]
	defer func() { spg.pins-- }()
	rt.markDirty(p, spg)
	if _, mapped := rt.PT.Lookup(va); !mapped {
		rt.PT.Map(va, spg.frame.ID, wrFlags, pagetable.Size4K)
		spg.vas = append(spg.vas, va)
	} else {
		rt.PT.Protect(va, wrFlags)
	}
	rt.charge(p, "map-pte", rt.C.PTEUpdate)
	tlb.Insert(asid, va>>mem.PageShift)
	return rt.framePool.Frame(spg.frame.ID), nil
}

// splitUnit demotes a 2 MB unit into its 512 constituent 4 KB pages, which
// inherit the unit's frames in place (no copy, one shootdown). All cache,
// page-table and dirty-tree mutations complete before the first cycle is
// charged, so no concurrent proc ever observes a half-split extent. Mappings
// are dropped and re-established lazily by later faults. pinOff >= 0 pins
// that constituent on the caller's behalf across the trailing charges (the
// caller unpins).
func (rt *Runtime) splitUnit(p *engine.Proc, pg *Page, pinOff int) []*Page {
	rt.Stats.HugeDemotions++
	p.SpanEvent("huge.split", 1)
	wasDirty := pg.dirty
	if wasDirty {
		rt.dirty[pg.dirtyCore].Delete(dirtyKey(pg))
		pg.dirty = false
	}
	unmapped := 0
	for _, va := range pg.vas {
		if rt.PT.Unmap(va) {
			unmapped++
		}
	}
	pg.vas = nil
	pg.resident = false
	rt.cacheRemove(pg)
	split := make([]*Page, hugePages)
	for i := range split {
		spg := &Page{file: pg.file, idx: pg.idx + uint64(i), frame: pg.frames[i], resident: true}
		if wasDirty {
			spg.dirty = true
			spg.dirtyCore = p.CPU()
			rt.dirty[p.CPU()].Insert(dirtyKey(spg), spg)
		}
		split[i] = spg
		rt.cacheInsert(spg)
	}
	if pinOff >= 0 {
		split[pinOff].pins++
	}
	rt.charge(p, "map-pte", rt.P.HugeSplit)
	if unmapped > 0 {
		rt.charge(p, "unmap", rt.C.PTEUpdate*uint64(unmapped))
		rt.shootdown(p)
	}
	rt.charge(p, "cache-insert", rt.P.HashInsert*hugePages)
	rt.lru.recordBulk(p, split)
	if wasDirty {
		rt.charge(p, "dirty-track", rt.P.DirtyTreeOp*hugePages)
	}
	return split
}
