package core

import (
	"fmt"

	"aquila/internal/iface"
)

// Region is one mapped virtual address range: Aquila's analogue of a VMA.
type Region struct {
	Start, End uint64 // page-aligned VA range
	File       *fileState
	Advice     iface.Advice
	// ReadOnly blocks stores (mprotect(PROT_READ), §4.4).
	ReadOnly bool
	// HugeHint marks the region MADV_HUGEPAGE'd: with huge pages enabled,
	// extents promote on first fault and dirtying stores re-dirty the whole
	// unit instead of splitting it.
	HugeHint bool
}

// Pages returns the number of pages the region covers.
func (r *Region) Pages() uint64 { return (r.End - r.Start) / pageSize }

// vspace is the RadixVM-style radix tree over the virtual address space
// (§3.4): four levels of 512 slots at page granularity, with ranges that
// fully cover an aligned subtree stored at the interior level (the same
// collapsing that makes RadixVM's range operations cheap). Lookups are
// lock-free; concurrent modification of the same entry is prevented by the
// per-page fault-ownership protocol in the page cache.
type vspace struct {
	root *vsNode
	n    int // number of regions
}

type vsNode struct {
	children [512]*vsNode
	leaves   [512]*Region
}

// spanOf returns the bytes covered by one slot at depth d (0 = root).
func vsSpan(depth int) uint64 {
	// depth 0 slot: 512^3 pages; depth 3 slot: 1 page.
	shift := uint(12 + 9*(3-depth))
	return 1 << shift
}

func vsIndices(va uint64) [4]int {
	return [4]int{
		int(va >> 39 & 0x1ff),
		int(va >> 30 & 0x1ff),
		int(va >> 21 & 0x1ff),
		int(va >> 12 & 0x1ff),
	}
}

// Find returns the region containing va, or nil.
func (vs *vspace) Find(va uint64) *Region {
	n := vs.root
	idx := vsIndices(va)
	for d := 0; d < 4; d++ {
		if n == nil {
			return nil
		}
		if r := n.leaves[idx[d]]; r != nil {
			if va >= r.Start && va < r.End {
				return r
			}
			return nil
		}
		n = n.children[idx[d]]
	}
	return nil
}

// Insert registers a region over its whole range, collapsing fully covered
// aligned subtrees to interior slots.
func (vs *vspace) Insert(r *Region) {
	if r.Start%pageSize != 0 || r.End%pageSize != 0 || r.End <= r.Start {
		panic(fmt.Sprintf("core: bad region [%#x, %#x)", r.Start, r.End))
	}
	if vs.root == nil {
		vs.root = &vsNode{}
	}
	vs.setRange(vs.root, 0, 0, r.Start, r.End, r)
	vs.n++
}

// Remove clears a region's range.
func (vs *vspace) Remove(r *Region) {
	if vs.root == nil {
		return
	}
	vs.setRange(vs.root, 0, 0, r.Start, r.End, nil)
	vs.n--
}

// Len returns the number of live regions.
func (vs *vspace) Len() int { return vs.n }

// setRange sets [lo, hi) to r within the subtree rooted at n, which covers
// addresses starting at base at the given depth.
func (vs *vspace) setRange(n *vsNode, depth int, base, lo, hi uint64, r *Region) {
	span := vsSpan(depth)
	for i := 0; i < 512; i++ {
		slotLo := base + uint64(i)*span
		slotHi := slotLo + span
		if slotHi <= lo || slotLo >= hi {
			continue
		}
		if lo <= slotLo && slotHi <= hi {
			// Fully covered: collapse to this level.
			n.leaves[i] = r
			if r == nil {
				n.children[i] = nil
			}
			continue
		}
		if depth == 3 {
			n.leaves[i] = r
			continue
		}
		child := n.children[i]
		if child == nil {
			if r == nil {
				continue
			}
			child = &vsNode{}
			n.children[i] = child
			// If a leaf previously covered this whole slot, push it
			// down before splitting (not needed for non-overlapping
			// regions, which is all mmap produces).
		}
		if n.leaves[i] != nil {
			// Splitting a collapsed slot: push the old region down.
			old := n.leaves[i]
			n.leaves[i] = nil
			vs.setRange(child, depth+1, slotLo, slotLo, slotHi, old)
		}
		vs.setRange(child, depth+1, slotLo, maxU(lo, slotLo), minU(hi, slotHi), r)
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
