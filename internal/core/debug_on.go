//go:build aqdebug

package core

// debugChecks is enabled by the aqdebug build tag.
const debugChecks = true
