package core

import (
	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
)

const pageSize = mem.PageSize

// Huge-page geometry: one 2 MB unit covers a 512-page, 2 MB-aligned extent.
const (
	hugePages = mem.BlockFrames          // 512 base pages per unit
	hugeShift = mem.MaxOrder             // log2(hugePages)
	hugeBytes = hugePages * mem.PageSize // == pagetable.Size2M
)

// pageKey identifies a cached page: file id + page index.
type pageKey struct {
	fid uint64
	idx uint64
}

// pageKeyLess orders pageKeys by (fid, idx), for deterministic iteration
// over the page hash (detutil.SortedKeysFunc).
func pageKeyLess(a, b pageKey) bool {
	return a.fid < b.fid || (a.fid == b.fid && a.idx < b.idx)
}

// Page is one page of Aquila's DRAM I/O cache.
type Page struct {
	file  *fileState
	idx   uint64
	frame *mem.Frame
	dirty bool
	// io is non-nil and unfired while the page's content is in flight;
	// racing faulters wait on it (the per-entry locking of §3.4).
	io *engine.Event
	// vas are the virtual addresses currently mapping the page.
	vas []uint64
	// dirtyCore is the core whose red-black tree holds the page while dirty.
	dirtyCore int
	// lruSeq is the fault sequence number of the page's newest LRU record;
	// older queue entries are stale and skipped lazily.
	lruSeq uint64
	// resident is cleared when eviction claims the page.
	resident bool
	// pins guards pages being used across a blocking point.
	pins int
	// poison is set when the page's fill I/O failed permanently: the frame
	// holds no valid content and any access delivers SIGBUS carrying this
	// fault. Poisoned pages stay in the hash so re-faults fail fast.
	poison *IOFault
	// quarantined marks a dirty page whose writeback failed permanently: it
	// keeps its frame, is never re-selected by eviction, and is never
	// silently dropped — the in-DRAM copy is the only good one.
	quarantined bool
	// huge marks a 2 MB unit: one cache entry (stored under the extent's
	// base index) covering 512 contiguous frames. frame aliases frames[0] so
	// size-agnostic code keeps working; dirtiness, LRU position and
	// writeback are tracked for the unit as a whole.
	huge   bool
	frames []*mem.Frame
}

// pages returns how many base pages the entry accounts for (512 for a huge
// unit, 1 otherwise).
func (pg *Page) pages() int {
	if pg.huge {
		return hugePages
	}
	return 1
}

// Key returns the page's hash key.
func (pg *Page) Key() pageKey { return pageKey{pg.file.id, pg.idx} }

// FileName returns the name of the file the page caches (policy hooks).
func (pg *Page) FileName() string { return pg.file.name }

// Index returns the page's index within its file (policy hooks).
func (pg *Page) Index() uint64 { return pg.idx }

// Dirty reports whether the page is dirty (policy hooks).
func (pg *Page) Dirty() bool { return pg.dirty }

// fileState is Aquila's per-file bookkeeping. The backing handle is owned by
// the I/O engine (an SPDK blob, a DAX file, or a host file for the HOST-*
// engines).
type fileState struct {
	id      uint64
	name    string
	size    uint64
	backing any
	// seqNext supports the madvise-driven readahead heuristic.
	seqNext uint64
	// wbErr is the errseq-style writeback error sequence: every failed
	// writeback of one of this file's pages records here, and each sync
	// caller (mapping or open file) drains it once via its own cursor.
	wbErr errseq
	// extResident counts resident 4 KB pages per 2 MB extent (key idx>>9),
	// feeding the promotion-density trigger. Maintained only with huge pages
	// enabled; host-side bookkeeping, no simulated cost.
	extResident map[uint64]int
}

// Name returns the file's name.
func (f *fileState) Name() string { return f.name }

// Size returns the file's size in bytes.
func (f *fileState) Size() uint64 { return f.size }

// lruApprox is the paper's LRU approximation (§3.2): the LRU order is
// updated only on page faults (hits are invisible to software by design), and
// recording is per-core so the hot path shares nothing. Victim selection
// k-way-merges the per-core FIFO queues by global fault sequence.
type lruApprox struct {
	rt     *Runtime
	queues []lruQueue
	seq    uint64
}

type lruQueue struct {
	entries []lruEntry
	head    int
}

type lruEntry struct {
	pg  *Page
	seq uint64
}

func newLRU(rt *Runtime) *lruApprox {
	return &lruApprox{rt: rt, queues: make([]lruQueue, rt.e.NumCPUs())}
}

// record notes a fault on pg at the calling core.
func (l *lruApprox) record(p *engine.Proc, pg *Page) {
	l.seq++
	pg.lruSeq = l.seq
	q := &l.queues[p.CPU()]
	q.entries = append(q.entries, lruEntry{pg, l.seq})
	l.rt.charge(p, "lru", l.rt.P.LRUAppend)
}

// recordBulk appends a batch of pages created by one operation (huge-unit
// split) to the calling core's queue, charging the append cost once per page
// in a single batched charge.
func (l *lruApprox) recordBulk(p *engine.Proc, pages []*Page) {
	if len(pages) == 0 {
		return
	}
	q := &l.queues[p.CPU()]
	for _, pg := range pages {
		l.seq++
		pg.lruSeq = l.seq
		q.entries = append(q.entries, lruEntry{pg, l.seq})
	}
	l.rt.charge(p, "lru", l.rt.P.LRUAppend*uint64(len(pages)))
}

// selectVictims pops least-recently-faulted resident pages until n frames
// worth have been selected, skipping stale entries, pinned pages and pages
// with in-flight I/O. The budget is frames, not entries: a 2 MB unit counts
// as its 512 constituents, so one batch never grabs a cache's worth of huge
// units and starves every other reclaimer past its stall budget. Selected
// pages are removed from the hash table immediately, so no new faults can
// map them.
func (l *lruApprox) selectVictims(p *engine.Proc, n int) []*Page {
	victims := make([]*Page, 0, n)
	frames := 0
	attempts := 0
	// Preference (rt.Prefer) is honored on a best-effort budget; past it,
	// selection falls back to plain LRU order so eviction always proceeds.
	preferBudget := 2 * n
	for frames < n && attempts < 4*n+1024 {
		attempts++
		best := -1
		var bestSeq uint64
		for i := range l.queues {
			q := &l.queues[i]
			// Drop stale heads lazily.
			for q.head < len(q.entries) {
				e := q.entries[q.head]
				if e.pg.resident && e.pg.lruSeq == e.seq {
					break
				}
				q.head++
			}
			if q.head >= len(q.entries) {
				continue
			}
			e := q.entries[q.head]
			if best == -1 || e.seq < bestSeq {
				best, bestSeq = i, e.seq
			}
		}
		if best == -1 {
			break
		}
		q := &l.queues[best]
		pg := q.entries[q.head].pg
		q.head++
		l.compact(q)
		if pg.quarantined {
			// Quarantined pages are pinned in DRAM forever (their only good
			// copy); drop the entry, do not requeue.
			continue
		}
		if pg.pins > 0 || (pg.io != nil && !pg.io.Fired()) {
			// Busy: requeue at the tail so it stays evictable later.
			q.entries = append(q.entries, lruEntry{pg, pg.lruSeq})
			continue
		}
		if l.rt.Prefer != nil && attempts < preferBudget && !l.rt.Prefer(pg) {
			q.entries = append(q.entries, lruEntry{pg, pg.lruSeq})
			continue
		}
		// Mark the page busy but leave it in the hash table until its
		// write-back completes: faulters wait instead of re-reading
		// stale device content. Selection itself charges no simulated
		// time here — the real structure is lock-free (CAS pops), so
		// the per-victim cost is charged by the caller outside the
		// selection critical section.
		pg.resident = false
		pg.io = engine.NewEvent(l.rt.e, "evict")
		victims = append(victims, pg)
		frames += pg.pages()
	}
	return victims
}

func (l *lruApprox) compact(q *lruQueue) {
	if q.head > 4096 && q.head*2 > len(q.entries) {
		q.entries = append(q.entries[:0], q.entries[q.head:]...)
		q.head = 0
	}
}
