package core

// rbTree is a left-leaning red-black tree keyed by uint64 (device offset)
// with *Page values. Aquila keeps one per core for dirty pages (§3.2):
// sorted order makes write-back merging trivial and per-core instances avoid
// the single contended lock of the Linux path.
type rbTree struct {
	root *rbNode
	size int
}

type rbNode struct {
	key         uint64
	page        *Page
	left, right *rbNode
	red         bool
}

func isRed(n *rbNode) bool { return n != nil && n.red }

func rotateLeft(h *rbNode) *rbNode {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight(h *rbNode) *rbNode {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors(h *rbNode) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

// Len returns the number of entries.
func (t *rbTree) Len() int { return t.size }

// Insert adds (key, page); replacing an existing key's value.
func (t *rbTree) Insert(key uint64, pg *Page) {
	t.root = t.insert(t.root, key, pg)
	t.root.red = false
}

func (t *rbTree) insert(h *rbNode, key uint64, pg *Page) *rbNode {
	if h == nil {
		t.size++
		return &rbNode{key: key, page: pg, red: true}
	}
	switch {
	case key < h.key:
		h.left = t.insert(h.left, key, pg)
	case key > h.key:
		h.right = t.insert(h.right, key, pg)
	default:
		h.page = pg
	}
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Get returns the page at key.
func (t *rbTree) Get(key uint64) (*Page, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.page, true
		}
	}
	return nil, false
}

// Delete removes key, reporting whether it was present.
func (t *rbTree) Delete(key uint64) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func moveRedLeft(h *rbNode) *rbNode {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *rbNode) *rbNode {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func fixUp(h *rbNode) *rbNode {
	if isRed(h.right) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

func minNode(h *rbNode) *rbNode {
	for h.left != nil {
		h = h.left
	}
	return h
}

func (t *rbTree) delete(h *rbNode, key uint64) *rbNode {
	if key < h.key {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if key == h.key {
			m := minNode(h.right)
			h.key, h.page = m.key, m.page
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

func deleteMin(h *rbNode) *rbNode {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

// Ascend calls fn on every (key, page) in ascending key order until fn
// returns false.
func (t *rbTree) Ascend(fn func(key uint64, pg *Page) bool) {
	ascend(t.root, fn)
}

func ascend(n *rbNode, fn func(uint64, *Page) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.page) {
		return false
	}
	return ascend(n.right, fn)
}

// Min returns the smallest key's entry.
func (t *rbTree) Min() (uint64, *Page, bool) {
	if t.root == nil {
		return 0, nil, false
	}
	n := minNode(t.root)
	return n.key, n.page, true
}

// checkInvariants validates red-black properties (tests only). It returns
// the black height or -1 on violation.
func (t *rbTree) checkInvariants() int {
	if isRed(t.root) {
		return -1
	}
	return blackHeight(t.root)
}

func blackHeight(n *rbNode) int {
	if n == nil {
		return 0
	}
	if isRed(n) && (isRed(n.left) || isRed(n.right)) {
		return -1 // consecutive reds
	}
	if n.left != nil && n.left.key >= n.key {
		return -1
	}
	if n.right != nil && n.right.key <= n.key {
		return -1
	}
	l, r := blackHeight(n.left), blackHeight(n.right)
	if l < 0 || r < 0 || l != r {
		return -1
	}
	if isRed(n) {
		return l
	}
	return l + 1
}
