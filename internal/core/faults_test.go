package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"aquila/internal/host"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/spdk"
)

// faultDaxWorld is asyncDaxWorld returning the pmem device so tests can
// attach fault plans to it.
func faultDaxWorld(cacheBytes uint64, cpus int, ps *Params) (*engine.Engine, *device.PMem, func(p *engine.Proc) *Runtime) {
	e := engine.New(engine.Config{NumCPUs: cpus, Seed: 1})
	pm := device.NewPMem(512*mib, device.DefaultPMemConfig())
	os := host.NewOS(e, host.NewPMemDisk("pmem0", pm), 64*mib)
	return e, pm, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: cacheBytes, Params: ps})
	}
}

// faultSpdkWorld is asyncSpdkWorld returning the NVMe device.
func faultSpdkWorld(cacheBytes uint64, cpus int, ps *Params) (*engine.Engine, *device.NVMe, func(p *engine.Proc) *Runtime) {
	e := engine.New(engine.Config{NumCPUs: cpus, Seed: 1})
	hostDisk := host.NewPMemDisk("hostdisk", device.NewPMem(16*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, hostDisk, 16*mib)
	nvme := device.NewNVMe(512*mib, device.DefaultNVMeConfig())
	fm := spdk.NewFileMap(spdk.NewBlobstore(spdk.NewDriver(nvme)))
	return e, nvme, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewSPDKEngine(fm), Config{CacheBytes: cacheBytes, Params: ps})
	}
}

// pageMark writes page idx's identifying 8-byte pattern into mark.
func pageMark(mark []byte, idx uint64) {
	for i := range mark {
		mark[i] = byte(idx >> (8 * i))
	}
}

// devOffOf maps a file offset to its device offset through the DAX engine.
func devOffOf(rt *Runtime, f *fileState, off uint64) uint64 {
	return rt.Engine.(*DAXEngine).file(f).DevOffset(off)
}

// Acceptance: transient NVMe write errors during background eviction lose no
// pages — every mark survives the fault-riddled writeback/refill round trip,
// and msync settles to nil once the requeued pages drain.
func TestTransientNVMeWriteFaultsNoLostPages(t *testing.T) {
	e, nvme, boot := faultSpdkWorld(4*mib, 4, asyncParams(nil))
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		nvme.InjectFaults("nvme0", &device.FaultPlan{Seed: 7, Rules: []device.FaultRule{
			{Kind: device.FaultTransientWrite, Prob: 0.25},
		}})
		const fileBytes = 16 * mib
		f := rt.CreateFile(p, "data", fileBytes)
		m := rt.Mmap(p, f, fileBytes)
		mark := make([]byte, 8)
		for off := uint64(0); off+8 < fileBytes; off += pageSize {
			pageMark(mark, off/pageSize)
			m.Store(p, off, mark)
		}
		got := make([]byte, 8)
		for off := uint64(0); off+8 < fileBytes; off += pageSize {
			pageMark(mark, off/pageSize)
			m.Load(p, off, got)
			if !bytes.Equal(got, mark) {
				t.Fatalf("page %d lost under transient write faults: %x != %x",
					off/pageSize, got, mark)
			}
		}
		// Requeued pages (writebacks that exhausted their retries) stay dirty
		// and must drain within a few msync passes; each failed pass reports
		// its errseq error exactly once.
		var err error
		for i := 0; i < 10; i++ {
			if err = m.Msync(p); err == nil {
				break
			}
			var iof *IOFault
			if !errors.As(err, &iof) || !iof.Transient() {
				t.Fatalf("msync error %v is not a transient *IOFault", err)
			}
		}
		if err != nil {
			t.Fatalf("msync never drained the requeued pages: %v", err)
		}
		if err := m.Msync(p); err != nil {
			t.Errorf("clean msync reported a stale error: %v", err)
		}
	})
	e.Run()
	if nvme.Store.InjectedFaults() == 0 {
		t.Fatal("fault plan never fired")
	}
	if rt.Stats.IORetries == 0 {
		t.Error("no transient retries despite injected write faults")
	}
	if rt.Stats.QuarantinedPages != 0 {
		t.Errorf("transient faults quarantined %d pages", rt.Stats.QuarantinedPages)
	}
	if rt.Stats.BgReclaimPages == 0 {
		t.Error("workload never exercised the background evictor")
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Acceptance: a permanent writeback error is reported exactly once per sync
// caller (errseq semantics), and the failed page is quarantined rather than
// dropped.
func TestMsyncReportsErrorExactlyOncePerCaller(t *testing.T) {
	e, pm, boot := faultDaxWorld(32*mib, 2, nil)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "errseq", 1*mib)
		m1 := rt.Mmap(p, f, 1*mib)
		m2 := rt.Mmap(p, f, 1*mib)
		devOff := devOffOf(rt, f, 3*pageSize)
		pm.InjectFaults("pmem0", &device.FaultPlan{Rules: []device.FaultRule{
			{Kind: device.FaultPermanentWrite, Off: devOff, Len: pageSize, After: 1},
		}})
		buf := make([]byte, 8)
		for pg := uint64(0); pg < 6; pg++ {
			m1.Store(p, pg*pageSize, buf)
		}
		err := m1.Msync(p)
		var iof *IOFault
		if !errors.As(err, &iof) {
			t.Fatalf("msync error = %v, want *IOFault", err)
		}
		if iof.Op != "write" || iof.Page != 3 || iof.Dev != "pmem0" || iof.DevOff != devOff {
			t.Errorf("fault context = %+v, want write page 3 on pmem0 @%#x", iof, devOff)
		}
		if iof.Transient() {
			t.Error("permanent write fault reported as transient")
		}
		// Same caller, second sync: the error was already consumed.
		if err := m1.Msync(p); err != nil {
			t.Errorf("m1 second msync = %v, want nil (errseq exactly-once)", err)
		}
		// Different caller: sees the same error once, then nil.
		if err := m2.Msync(p); err == nil {
			t.Error("m2 never saw the writeback error")
		}
		if err := m2.Msync(p); err != nil {
			t.Errorf("m2 second msync = %v, want nil", err)
		}
		// A mapping created after the error never sees it.
		m3 := rt.Mmap(p, f, 1*mib)
		if err := m3.Msync(p); err != nil {
			t.Errorf("late mapping saw a pre-existing error: %v", err)
		}
		if rt.Stats.QuarantinedPages != 1 || rt.QuarantinedLive() != 1 {
			t.Errorf("quarantine: events=%d live=%d, want 1/1",
				rt.Stats.QuarantinedPages, rt.QuarantinedLive())
		}
		if err := rt.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	e.Run()
}

// Acceptance: a permanent media error under a fill read surfaces as a typed
// SIGBUS carrying device, LBA and faulting address; the page is poisoned and
// later accesses fail fast without reissuing doomed I/O.
func TestPermanentReadFaultDeliversTypedSigBus(t *testing.T) {
	e, pm, boot := faultDaxWorld(32*mib, 2, nil)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "faulty", 1*mib)
		m := rt.Mmap(p, f, 1*mib)
		devOff := devOffOf(rt, f, 2*pageSize)
		pm.InjectFaults("pmem0", &device.FaultPlan{Rules: []device.FaultRule{
			{Kind: device.FaultPermanentRead, Off: devOff, Len: pageSize, After: 1},
		}})
		buf := make([]byte, 8)
		catch := func() (sb *SigBus) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("load of permanently unreadable page did not fault")
				}
				var ok bool
				if sb, ok = r.(*SigBus); !ok {
					t.Fatalf("panic value %T is not *SigBus", r)
				}
			}()
			m.Load(p, 2*pageSize, buf)
			return nil
		}
		sb := catch()
		if sb.VA != m.r.Start+2*pageSize || sb.File != "faulty" {
			t.Errorf("SigBus va=%#x file=%q, want va=%#x file=%q",
				sb.VA, sb.File, m.r.Start+2*pageSize, "faulty")
		}
		if msg := fmt.Sprint(sb); !strings.Contains(msg, "SIGBUS") {
			t.Errorf("signal string %q lost the SIGBUS marker", msg)
		}
		var iof *IOFault
		if !errors.As(sb.Err, &iof) {
			t.Fatalf("SigBus.Err = %v, want *IOFault", sb.Err)
		}
		if iof.Op != "read" || iof.Page != 2 || iof.Dev != "pmem0" || iof.DevOff != devOff {
			t.Errorf("fault context = %+v, want read page 2 on pmem0 @%#x", iof, devOff)
		}
		if rt.Stats.PoisonedPages != 1 || rt.PoisonedLive() != 1 {
			t.Errorf("poison: events=%d live=%d, want 1/1",
				rt.Stats.PoisonedPages, rt.PoisonedLive())
		}
		// Fail-fast on re-access: the poisoned page keeps delivering SIGBUS.
		if sb := catch(); sb == nil {
			t.Fatal("second access did not fault")
		}
		// Neighbors were isolated and re-read individually: they stay usable.
		m.Load(p, 1*pageSize, buf)
		m.Load(p, 3*pageSize, buf)
		if err := rt.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	e.Run()
}

// A quarantined page is pinned in DRAM: eviction pressure never selects it
// again and its (only remaining) copy keeps serving loads.
func TestQuarantinedPageSurvivesEvictionPressure(t *testing.T) {
	e, pm, boot := faultDaxWorld(4*mib, 4, nil)
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		const fileBytes = 16 * mib
		f := rt.CreateFile(p, "pinned", fileBytes)
		m := rt.Mmap(p, f, fileBytes)
		pm.InjectFaults("pmem0", &device.FaultPlan{Rules: []device.FaultRule{
			{Kind: device.FaultPermanentWrite, Off: devOffOf(rt, f, 5*pageSize),
				Len: pageSize, After: 1},
		}})
		mark := make([]byte, 8)
		for off := uint64(0); off+8 < fileBytes; off += pageSize {
			pageMark(mark, off/pageSize)
			m.Store(p, off, mark)
		}
		got := make([]byte, 8)
		for off := uint64(0); off+8 < fileBytes; off += pageSize {
			pageMark(mark, off/pageSize)
			m.Load(p, off, got)
			if !bytes.Equal(got, mark) {
				t.Fatalf("page %d corrupted (quarantine lost data?): %x != %x",
					off/pageSize, got, mark)
			}
		}
	})
	e.Run()
	if rt.Stats.QuarantinedPages != 1 || rt.QuarantinedLive() != 1 {
		t.Errorf("quarantine: events=%d live=%d, want 1/1",
			rt.Stats.QuarantinedPages, rt.QuarantinedLive())
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A transient fault that clears within the retry budget is absorbed in place:
// cycle-accounted backoff, no requeue, no poison, correct device content.
func TestTransientFaultRetriesThenSucceeds(t *testing.T) {
	e, pm, boot := faultDaxWorld(32*mib, 2, nil)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "retry", 1*mib)
		m := rt.Mmap(p, f, 1*mib)
		pm.InjectFaults("pmem0", &device.FaultPlan{Rules: []device.FaultRule{
			{Kind: device.FaultTransientRead, After: 1, Limit: 1},
			{Kind: device.FaultTransientWrite, After: 1, Limit: 1},
		}})
		data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4}
		m.Store(p, 0, data) // fill read fires the read fault, retried
		if err := m.Msync(p); err != nil {
			t.Fatalf("msync after transient write fault = %v, want nil", err)
		}
		if rt.Stats.IORetries < 2 {
			t.Errorf("IORetries = %d, want >= 2 (one read, one write)", rt.Stats.IORetries)
		}
		if rt.Stats.RequeuedPages != 0 || rt.Stats.PoisonedPages != 0 || rt.Stats.QuarantinedPages != 0 {
			t.Errorf("retried-in-place fault escalated: requeue=%d poison=%d quarantine=%d",
				rt.Stats.RequeuedPages, rt.Stats.PoisonedPages, rt.Stats.QuarantinedPages)
		}
		if rt.Break.Get("io-retry") == 0 {
			t.Error("retry backoff not cycle-accounted in the breakdown")
		}
		got := make([]byte, len(data))
		pm.Store.ReadAt(devOffOf(rt, f, 0), got)
		if !bytes.Equal(got, data) {
			t.Errorf("device content after retried writeback = %x, want %x", got, data)
		}
	})
	e.Run()
}

// Persistently failing background writeback pushes the daemons back to
// synchronous writeback (and requeues keep the failed pages dirty).
func TestBgEvictorFallsBackToSyncWriteback(t *testing.T) {
	e, pm, boot := faultDaxWorld(4*mib, 4, asyncParams(nil))
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		pm.InjectFaults("pmem0", &device.FaultPlan{Seed: 3, Rules: []device.FaultRule{
			{Kind: device.FaultTransientWrite, Prob: 0.75},
		}})
		pressureWorkload(p, rt, 16*mib)
	})
	e.Run()
	if rt.Stats.SyncWritebackFallbacks == 0 {
		t.Error("daemons never fell back to sync writeback under persistent faults")
	}
	if rt.Stats.RequeuedPages == 0 {
		t.Error("no requeues despite 75% write failure probability")
	}
	if rt.Stats.QuarantinedPages != 0 {
		t.Errorf("transient faults quarantined %d pages", rt.Stats.QuarantinedPages)
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Direct (O_DIRECT-style) file I/O returns device errors synchronously to the
// caller instead of recording them in the file's error sequence.
func TestDirectIOFaultPropagation(t *testing.T) {
	e, pm, boot := faultDaxWorld(32*mib, 2, nil)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		ns := &Namespace{RT: rt}
		af := ns.Create(p, "direct", 1*mib).(*AqFile)
		pm.InjectFaults("pmem0", &device.FaultPlan{Rules: []device.FaultRule{
			{Kind: device.FaultPermanentRead, Off: devOffOf(rt, af.f, pageSize),
				Len: pageSize, After: 1},
			{Kind: device.FaultPermanentWrite, Off: devOffOf(rt, af.f, 2*pageSize),
				Len: pageSize, After: 1},
		}})
		buf := make([]byte, pageSize)
		if err := af.Pread(p, buf, 0); err != nil {
			t.Fatalf("pread of healthy page = %v", err)
		}
		err := af.Pread(p, buf, pageSize)
		var de *device.IOError
		if !errors.As(err, &de) || de.Kind != device.FaultPermanentRead {
			t.Fatalf("pread of bad page = %v, want permanent-read *IOError", err)
		}
		before := af.Size()
		if err := af.Pwrite(p, buf, 2*pageSize); err == nil {
			t.Fatal("pwrite to bad page succeeded")
		}
		if af.Size() != before {
			t.Errorf("failed pwrite changed size %d -> %d", before, af.Size())
		}
		if err := af.Pwrite(p, buf, 0); err != nil {
			t.Fatalf("pwrite to healthy page = %v", err)
		}
		// Direct write failures were returned inline, not deferred to fsync.
		if err := af.Fsync(p); err != nil {
			t.Errorf("fsync = %v, want nil (direct errors are synchronous)", err)
		}
	})
	e.Run()
}

// Direct NVM mappings: a poisoned line machine-checks (typed SIGBUS) on load;
// a failed flush is posted — recorded in errseq and reported once by Msync.
func TestDirectMappingFaults(t *testing.T) {
	e, pm, boot := faultDaxWorld(32*mib, 2, nil)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "dm", 4*mib)
		pm.InjectFaults("pmem0", &device.FaultPlan{Rules: []device.FaultRule{
			{Kind: device.FaultPoison, Off: devOffOf(rt, f, 0), Len: 64, After: 1},
			{Kind: device.FaultPermanentWrite, Off: devOffOf(rt, f, pageSize),
				Len: pageSize, After: 1},
		}})
		dm := rt.MmapDirectNVM(p, f, 4*mib)
		buf := make([]byte, 64)
		func() {
			defer func() {
				r := recover()
				sb, ok := r.(*SigBus)
				if !ok {
					t.Fatalf("load of poisoned line: panic %v, want *SigBus", r)
				}
				var iof *IOFault
				if !errors.As(sb.Err, &iof) || iof.Op != "read" {
					t.Errorf("SigBus.Err = %v, want read *IOFault", sb.Err)
				}
			}()
			dm.Load(p, 0, buf)
		}()
		// Stores are posted: the media error does not trap, it surfaces on
		// the next Msync (exactly once).
		dm.Store(p, pageSize, buf)
		if err := dm.Msync(p); err == nil {
			t.Error("msync after failed flush = nil, want error")
		}
		if err := dm.Msync(p); err != nil {
			t.Errorf("second msync = %v, want nil (errseq exactly-once)", err)
		}
	})
	e.Run()
}
