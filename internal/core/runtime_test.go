package core

import (
	"bytes"
	"testing"

	"aquila/internal/host"
	"aquila/internal/iface"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/sim/pagetable"
	"aquila/internal/spdk"
)

const mib = 1 << 20

// daxWorld builds an Aquila runtime over a pmem host with the DAX engine.
func daxWorld(cacheBytes uint64, cpus int) (*engine.Engine, *host.OS, func(p *engine.Proc) *Runtime) {
	e := engine.New(engine.Config{NumCPUs: cpus, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(512*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, 64*mib)
	return e, os, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: cacheBytes})
	}
}

// spdkWorld builds an Aquila runtime over SPDK-NVMe.
func spdkWorld(cacheBytes uint64, cpus int) (*engine.Engine, func(p *engine.Proc) *Runtime) {
	e := engine.New(engine.Config{NumCPUs: cpus, Seed: 1})
	// Host exists only for hypervisor services; its own disk is unused.
	hostDisk := host.NewPMemDisk("hostdisk", device.NewPMem(16*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, hostDisk, 16*mib)
	nvme := device.NewNVMe(512*mib, device.DefaultNVMeConfig())
	fm := spdk.NewFileMap(spdk.NewBlobstore(spdk.NewDriver(nvme)))
	return e, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewSPDKEngine(fm), Config{CacheBytes: cacheBytes})
	}
}

func TestAquilaMmapLoadStoreMsyncDAX(t *testing.T) {
	e, os, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 4*mib)
		m := rt.Mmap(p, f, 4*mib)
		payload := []byte("aquila mapped data across pages")
		m.Store(p, 4090, payload)
		got := make([]byte, len(payload))
		m.Load(p, 4090, got)
		if !bytes.Equal(got, payload) {
			t.Error("round trip mismatch")
		}
		if rt.DirtyPages() == 0 {
			t.Error("store left no dirty pages")
		}
		m.Msync(p)
		if rt.DirtyPages() != 0 {
			t.Errorf("dirty pages after msync: %d", rt.DirtyPages())
		}
		// Verify persistence through the host's view of the device.
		direct := os.OpenFile(os.FS.Open(p, "data"), true)
		got2 := make([]byte, len(payload))
		direct.Pread(p, got2, 4090)
		if !bytes.Equal(got2, payload) {
			t.Error("msync did not persist to device")
		}
	})
	e.Run()
}

func TestAquilaSPDKRoundTrip(t *testing.T) {
	e, boot := spdkWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "blobfile", 8*mib)
		m := rt.Mmap(p, f, 8*mib)
		payload := []byte("over spdk blobstore")
		m.Store(p, 2*mib-4, payload) // crosses a cluster boundary region
		m.Msync(p)
		got := make([]byte, len(payload))
		m.Load(p, 2*mib-4, got)
		if !bytes.Equal(got, payload) {
			t.Error("spdk round trip mismatch")
		}
	})
	e.Run()
}

func TestAquilaDirtyTrackingViaWPFault(t *testing.T) {
	e, _, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 1*mib)
		m := rt.Mmap(p, f, 1*mib)
		// Read fault: page mapped read-only, clean.
		m.Load(p, 0, make([]byte, 8))
		if rt.DirtyPages() != 0 {
			t.Fatalf("dirty after read: %d", rt.DirtyPages())
		}
		wpBefore := rt.Stats.WPFaults
		// First store: write-protect fault marks dirty.
		m.Store(p, 0, []byte{1})
		if rt.Stats.WPFaults != wpBefore+1 {
			t.Errorf("wp faults = %d, want %d", rt.Stats.WPFaults, wpBefore+1)
		}
		if rt.DirtyPages() != 1 {
			t.Errorf("dirty = %d, want 1", rt.DirtyPages())
		}
		// Second store: no fault at all.
		wp, major := rt.Stats.WPFaults, rt.Stats.MajorFaults
		m.Store(p, 64, []byte{2})
		if rt.Stats.WPFaults != wp || rt.Stats.MajorFaults != major {
			t.Error("second store faulted")
		}
	})
	e.Run()
}

func TestAquilaNoReadaheadByDefault(t *testing.T) {
	e, _, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 4*mib)
		m := rt.Mmap(p, f, 4*mib)
		m.Load(p, 0, make([]byte, 8))
		if rt.ResidentPages() != 1 {
			t.Errorf("resident = %d, want 1 (no default readahead)", rt.ResidentPages())
		}
		// With madvise(SEQUENTIAL) the window opens.
		m.Advise(p, iface.AdviceSequential)
		m.Load(p, 1*mib, make([]byte, 8))
		if rt.ResidentPages() != 1+rt.P.ReadAheadPages {
			t.Errorf("resident = %d, want %d after sequential advise",
				rt.ResidentPages(), 1+rt.P.ReadAheadPages)
		}
		if rt.Stats.ReadaheadPages == 0 {
			t.Error("no readahead pages counted")
		}
	})
	e.Run()
}

func TestAquilaEvictionUnderPressure(t *testing.T) {
	cache := uint64(2 * mib) // 512 pages
	e, _, boot := daxWorld(cache, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 16*mib) // 8x cache
		m := rt.Mmap(p, f, 16*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off+8 < 16*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		if got := rt.ResidentPages(); got > int(cache/pageSize) {
			t.Errorf("resident %d exceeds cache %d", got, cache/pageSize)
		}
		if rt.Stats.Evictions == 0 {
			t.Error("no evictions")
		}
		// Batched shootdowns: far fewer batches than evictions.
		if rt.Stats.ShootdownBatches*uint64(rt.P.EvictBatch) < rt.Stats.Evictions {
			t.Errorf("shootdown batches %d too few for %d evictions",
				rt.Stats.ShootdownBatches, rt.Stats.Evictions)
		}
	})
	e.Run()
}

func TestAquilaEvictionWritesBackDirtySorted(t *testing.T) {
	cache := uint64(2 * mib)
	e, os, boot := daxWorld(cache, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 16*mib)
		m := rt.Mmap(p, f, 16*mib)
		m.Store(p, 0, []byte("evict-me-dirty"))
		buf := make([]byte, 8)
		for off := uint64(pageSize); off+8 < 16*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		if rt.Stats.WrittenBack == 0 {
			t.Fatal("no writeback")
		}
		direct := os.OpenFile(os.FS.Open(p, "data"), true)
		got := make([]byte, 14)
		direct.Pread(p, got, 0)
		if !bytes.Equal(got, []byte("evict-me-dirty")) {
			t.Errorf("dirty eviction lost data: %q", got)
		}
		// The page comes back correct after re-fault.
		got2 := make([]byte, 14)
		m.Load(p, 0, got2)
		if !bytes.Equal(got2, []byte("evict-me-dirty")) {
			t.Errorf("re-fault read %q", got2)
		}
	})
	e.Run()
}

func TestAquilaCacheHitFaultCost(t *testing.T) {
	// Fig 8(c): a fault whose page is already cached costs ~2179 cycles.
	e, _, boot := daxWorld(64*mib, 4)
	var perFault uint64
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 32*mib)
		m := rt.Mmap(p, f, 32*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off < 32*mib; off += pageSize {
			m.Load(p, off, buf) // warm the cache
		}
		m.Munmap(p)
		m2 := rt.Mmap(p, f, 32*mib)
		start := p.Now()
		const n = 1000
		for i := 0; i < n; i++ {
			m2.Load(p, uint64(i)*pageSize, buf)
		}
		perFault = (p.Now() - start) / n
	})
	e.Run()
	if perFault < 1800 || perFault > 2600 {
		t.Errorf("cache-hit fault = %d cycles, want ~2179 (Fig 8c)", perFault)
	}
}

func TestAquilaFaultCheaperThanLinux(t *testing.T) {
	// §6.4: the ring-0 exception (552) replaces the ring-3 trap (1287).
	e, _, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		if got := rt.Break.Total(); got != 0 {
			_ = got
		}
		f := rt.CreateFile(p, "data", 1*mib)
		m := rt.Mmap(p, f, 1*mib)
		m.Load(p, 0, make([]byte, 8))
		exc := rt.Break.Get("exception")
		if exc == 0 || exc > 1287 {
			t.Errorf("exception cycles = %d, must be below the 1287-cycle trap", exc)
		}
	})
	e.Run()
}

func TestAquilaResizeCache(t *testing.T) {
	e, os, boot := daxWorld(4*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: 4 * mib, MaxCacheBytes: 16 * mib})
		if rt.CacheLimitPages() != 4*mib/pageSize {
			t.Fatalf("initial limit = %d", rt.CacheLimitPages())
		}
		granted := os.HV.GrantedBytes
		rt.ResizeCache(p, 8*mib)
		if rt.CacheLimitPages() != 8*mib/pageSize {
			t.Errorf("limit after grow = %d", rt.CacheLimitPages())
		}
		if os.HV.GrantedBytes <= granted {
			t.Error("grow did not grant memory")
		}
		// Fill, then shrink: eviction must free pages down to the new size.
		f := rt.CreateFile(p, "data", 8*mib)
		m := rt.Mmap(p, f, 8*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off+8 < 8*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		rt.ResizeCache(p, 2*mib)
		if rt.CacheLimitPages() != 2*mib/pageSize {
			t.Errorf("limit after shrink = %d", rt.CacheLimitPages())
		}
		if got := rt.ResidentPages(); got > int(rt.CacheLimitPages()) {
			t.Errorf("resident %d exceeds shrunk limit %d", got, rt.CacheLimitPages())
		}
	})
	e.Run()
	_ = boot
}

func TestAquilaShootdownDeliversIPIs(t *testing.T) {
	cache := uint64(1 * mib)
	e, os, boot := daxWorld(cache, 4)
	var rt *Runtime
	var m *AqMapping
	e.Spawn(0, "init", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "data", 8*mib)
		m = rt.Mmap(p, f, 8*mib)
	})
	e.Run()
	// A second thread on CPU 1 joins the address space (enters the
	// mm_cpumask), so CPU 0's later shootdowns must IPI it.
	e.Spawn(1, "toucher", func(p *engine.Proc) {
		m.Load(p, 0, make([]byte, 8))
	})
	e.Run()
	e.Spawn(0, "evictor", func(p *engine.Proc) {
		buf := make([]byte, 8)
		for off := uint64(pageSize); off+8 < 8*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		if rt.Stats.ShootdownBatches == 0 {
			t.Error("no shootdowns")
		}
		if os.HV.IPIBatches != rt.Stats.ShootdownBatches {
			t.Errorf("hv batches %d != rt batches %d", os.HV.IPIBatches, rt.Stats.ShootdownBatches)
		}
	})
	e.Run()
	if e.IRQCount(1) == 0 {
		t.Error("no IPIs delivered to CPU 1 (in mm_cpumask)")
	}
	// CPUs 2/3 never touched the mapping: mm_cpumask spares them.
	if e.IRQCount(2) != 0 || e.IRQCount(3) != 0 {
		t.Errorf("IPIs sent to CPUs outside mm_cpumask: %d %d", e.IRQCount(2), e.IRQCount(3))
	}
}

func TestAquilaConcurrentSharedFileFaults(t *testing.T) {
	e, _, boot := daxWorld(32*mib, 8)
	var rt *Runtime
	var f *fileState
	e.Spawn(0, "init", func(p *engine.Proc) {
		rt = boot(p)
		f = rt.CreateFile(p, "shared", 16*mib)
	})
	e.Run()
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(i, "t", func(p *engine.Proc) {
			// Per-thread mappings of the same file: pages are shared in
			// the cache but each mapping has its own PTEs, so
			// cross-thread sharing shows up as minor faults.
			m := rt.Mmap(p, f, 16*mib)
			buf := make([]byte, 8)
			for j := 0; j < 500; j++ {
				// All threads touch the same pages: the first
				// toucher major-faults, the rest minor-fault.
				m.Load(p, uint64(j)*pageSize, buf)
			}
			_ = i
		})
	}
	e.Run()
	// Every page was read by up to 8 threads but faulted in once: total
	// major faults bounded by distinct pages touched.
	if rt.Stats.MajorFaults > 4096 {
		t.Errorf("major faults = %d, want <= 4096 (one per page)", rt.Stats.MajorFaults)
	}
	if rt.Stats.MinorFaults == 0 {
		t.Error("expected minor faults from cross-thread sharing")
	}
}

func TestAquilaFileDirectIO(t *testing.T) {
	e, _, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		ns := &Namespace{RT: rt}
		f := ns.Create(p, "direct", 1*mib)
		data := []byte("direct write through engine")
		f.Pwrite(p, data, 5000)
		got := make([]byte, len(data))
		f.Pread(p, got, 5000)
		if !bytes.Equal(got, data) {
			t.Error("direct file round trip mismatch")
		}
	})
	e.Run()
}

func TestAquilaCustomVictimPolicy(t *testing.T) {
	// Install a FIFO-of-insertion policy via the customization hook and
	// check it is exercised.
	cache := uint64(1 * mib)
	e, _, boot := daxWorld(cache, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		calls := 0
		def := rt.Victims
		rt.Victims = func(p *engine.Proc, n int) []*Page {
			calls++
			return def(p, n)
		}
		f := rt.CreateFile(p, "data", 4*mib)
		m := rt.Mmap(p, f, 4*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off+8 < 4*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		if calls == 0 {
			t.Error("custom victim policy never called")
		}
	})
	e.Run()
}

func TestAquilaConcurrentEvictionConservesFrames(t *testing.T) {
	// Regression: the freelist refill used to yield (charge cycles)
	// between reading and mutating a NUMA queue, letting two cores take
	// the same frames. Run a multithreaded out-of-memory fault storm and
	// check frame conservation.
	cache := uint64(4 * mib)
	e, _, boot := daxWorld(cache, 8)
	var rt *Runtime
	var f *fileState
	e.Spawn(0, "init", func(p *engine.Proc) {
		rt = boot(p)
		f = rt.CreateFile(p, "data", 32*mib)
	})
	e.Run()
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(i, "t", func(p *engine.Proc) {
			m := rt.Mmap(p, f, 32*mib)
			buf := make([]byte, 8)
			for j := 0; j < 1500; j++ {
				off := (uint64(j*13+i*7) * pageSize * 3) % (32*mib - 8)
				m.Load(p, off/pageSize*pageSize, buf)
			}
		})
	}
	e.Run()
	limit := int(rt.CacheLimitPages())
	if rt.FreePages() < 0 {
		t.Fatalf("freelist negative: %d", rt.FreePages())
	}
	if got := rt.ResidentPages() + rt.FreePages(); got > limit {
		t.Errorf("resident(%d) + free(%d) = %d exceeds limit %d",
			rt.ResidentPages(), rt.FreePages(), got, limit)
	}
	if rt.ResidentPages() > limit {
		t.Errorf("resident %d exceeds limit %d", rt.ResidentPages(), limit)
	}
}

func TestAquilaMprotect(t *testing.T) {
	e, _, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 1*mib)
		m := rt.Mmap(p, f, 1*mib)
		m.Store(p, 0, []byte("writable"))
		m.Mprotect(p, true)
		// Reads still work.
		got := make([]byte, 8)
		m.Load(p, 0, got)
		if !bytes.Equal(got, []byte("writable")) {
			t.Errorf("read after mprotect: %q", got)
		}
		// Stores fault (SIGSEGV).
		func() {
			defer func() {
				if recover() == nil {
					t.Error("store to read-only mapping did not fault")
				}
			}()
			m.Store(p, 0, []byte{1})
		}()
		// Re-enable writes: lazy upgrade via wp fault.
		m.Mprotect(p, false)
		m.Store(p, 0, []byte("again"))
		m.Load(p, 0, got[:5])
		if !bytes.Equal(got[:5], []byte("again")) {
			t.Errorf("store after re-protect: %q", got[:5])
		}
	})
	e.Run()
}

func TestAquilaMremapGrowAndShrink(t *testing.T) {
	e, _, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 4*mib)
		m := rt.Mmap(p, f, 1*mib)
		m.Store(p, 123, []byte("survives remap"))
		// Grow: relocation must preserve live translations and data.
		m.Mremap(p, 3*mib)
		if m.Size() != 3*mib {
			t.Fatalf("size after grow = %d", m.Size())
		}
		got := make([]byte, 14)
		m.Load(p, 123, got)
		if !bytes.Equal(got, []byte("survives remap")) {
			t.Errorf("data after grow: %q", got)
		}
		// The grown range is usable.
		m.Store(p, 2*mib, []byte("tail"))
		// Shrink below the tail: tail unmapped, head intact.
		m.Mremap(p, 1*mib)
		if m.Size() != 1*mib {
			t.Fatalf("size after shrink = %d", m.Size())
		}
		m.Load(p, 123, got)
		if !bytes.Equal(got, []byte("survives remap")) {
			t.Errorf("data after shrink: %q", got)
		}
		// Access past the shrunk size panics (unmapped).
		func() {
			defer func() {
				if recover() == nil {
					t.Error("access past shrunk mapping did not fault")
				}
			}()
			m.Load(p, 2*mib, got)
		}()
	})
	e.Run()
}

func TestAquilaMsyncRange(t *testing.T) {
	e, os, boot := daxWorld(16*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "data", 1*mib)
		m := rt.Mmap(p, f, 1*mib)
		m.Store(p, 0, []byte("lo"))
		m.Store(p, 512<<10, []byte("hi"))
		if rt.DirtyPages() != 2 {
			t.Fatalf("dirty = %d", rt.DirtyPages())
		}
		m.MsyncRange(p, 0, 4096)
		if rt.DirtyPages() != 1 {
			t.Fatalf("dirty after ranged msync = %d, want 1", rt.DirtyPages())
		}
		direct := os.OpenFile(os.FS.Open(p, "data"), true)
		got := make([]byte, 2)
		direct.Pread(p, got, 0)
		if !bytes.Equal(got, []byte("lo")) {
			t.Error("ranged msync did not persist")
		}
	})
	e.Run()
}

func TestAquilaInvariantsAfterHeavyChurn(t *testing.T) {
	cache := uint64(2 * mib)
	e, _, boot := daxWorld(cache, 8)
	var rt *Runtime
	var f *fileState
	e.Spawn(0, "init", func(p *engine.Proc) {
		rt = boot(p)
		f = rt.CreateFile(p, "churn", 16*mib)
	})
	e.Run()
	maps := make([]*AqMapping, 6)
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn(i, "t", func(p *engine.Proc) {
			maps[i] = rt.Mmap(p, f, 16*mib)
			buf := make([]byte, 16)
			x := uint64(i + 7)
			for j := 0; j < 1500; j++ {
				x = x*6364136223846793005 + 1
				off := (x >> 17) % (16*mib - 16) / pageSize * pageSize
				if j%3 == 0 {
					maps[i].Store(p, off, buf)
				} else {
					maps[i].Load(p, off, buf)
				}
			}
		})
	}
	e.Run()
	// Quiesce with one msync, then audit.
	e.Spawn(0, "sync", func(p *engine.Proc) { maps[0].Msync(p) })
	e.Run()
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialDetectorPolicy(t *testing.T) {
	e, _, boot := daxWorld(32*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		rt.Readahead = NewSequentialDetector(16)
		f := rt.CreateFile(p, "seq", 8*mib)
		m := rt.Mmap(p, f, 8*mib)
		buf := make([]byte, 8)
		// Sequential scan with NO madvise: the detector must kick in and
		// collapse the fault count well below one per page.
		for off := uint64(0); off < 4*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		pages := uint64(4 * mib / pageSize)
		if rt.Stats.MajorFaults*3 > pages {
			t.Errorf("sequential detector ineffective: %d faults for %d pages",
				rt.Stats.MajorFaults, pages)
		}
		if rt.Stats.ReadaheadPages == 0 {
			t.Error("no readahead happened")
		}
		// A random jump collapses the window: the next fault reads few pages.
		before := rt.ResidentPages()
		m.Load(p, 7*mib, buf)
		if got := rt.ResidentPages() - before; got > 3 {
			t.Errorf("random fault brought %d pages, want small after window collapse", got)
		}
	})
	e.Run()
}

func TestDirectNVMMapping(t *testing.T) {
	// DAX world over Optane-PMM-class pmem.
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
	disk := host.NewPMemDisk("pmm0", device.NewPMem(512*mib, device.OptanePMMConfig()))
	os := host.NewOS(e, disk, 64*mib)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: 8 * mib})
		f := rt.CreateFile(p, "nvm", 8*mib)
		dm := rt.MmapDirectNVM(p, f, 8*mib)
		payload := []byte("straight to media")
		dm.Store(p, 3*mib, payload)
		got := make([]byte, len(payload))
		dm.Load(p, 3*mib, got)
		if !bytes.Equal(got, payload) {
			t.Errorf("direct round trip: %q", got)
		}
		// No faults, no cache pages: everything went to media.
		if rt.Stats.MajorFaults != 0 || rt.ResidentPages() != 0 {
			t.Errorf("direct mapping used the cache: faults=%d resident=%d",
				rt.Stats.MajorFaults, rt.ResidentPages())
		}
		if dm.MediaReads == 0 || dm.MediaWrites == 0 {
			t.Error("media access counters empty")
		}
		// The mapping uses 2 MB pages.
		if entry, ok := rt.PT.Lookup(dm.base); !ok || entry.PageSize != pagetable.Size2M {
			t.Errorf("direct mapping not 2MB-paged: %+v %v", entry, ok)
		}
		// Tradeoff check: repeated reads of one hot page are cheaper
		// through the DRAM cache than direct (media on every access).
		cm := rt.Mmap(p, f, 8*mib)
		buf := make([]byte, 4096)
		cm.Load(p, 0, buf) // fault once
		t0 := p.Now()
		for i := 0; i < 50; i++ {
			cm.Load(p, 0, buf)
		}
		cached := p.Now() - t0
		t0 = p.Now()
		for i := 0; i < 50; i++ {
			dm.Load(p, 0, buf)
		}
		direct := p.Now() - t0
		if cached >= direct {
			t.Errorf("hot reuse: cached (%d) should beat direct NVM (%d)", cached, direct)
		}
	})
	e.Run()
}

func TestDeleteFileRecyclesCache(t *testing.T) {
	e, _, boot := daxWorld(8*mib, 4)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		f := rt.CreateFile(p, "temp", 4*mib)
		m := rt.Mmap(p, f, 4*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off < 4*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		resident := rt.ResidentPages()
		if resident == 0 {
			t.Fatal("nothing cached")
		}
		freeBefore := rt.FreePages()
		m.Munmap(p)
		rt.DeleteFile(p, "temp")
		if rt.ResidentPages() != 0 {
			t.Errorf("pages remain after delete: %d", rt.ResidentPages())
		}
		if rt.FreePages() != freeBefore+resident {
			t.Errorf("frames not recycled: free %d, want %d", rt.FreePages(), freeBefore+resident)
		}
		if rt.FileExists("temp") {
			t.Error("file still exists")
		}
		if err := rt.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	e.Run()
}
