package core

// NewSequentialDetector builds a ReadaheadPolicy that discovers sequential
// access automatically instead of relying on madvise: per file, the window
// starts at zero, doubles on each sequential fault up to maxWindow, and
// collapses on a non-sequential one — the classic ondemand-readahead shape,
// offered here as one more plug-in policy for the customization hook (the
// default policy stays madvise-driven, as the paper describes).
func NewSequentialDetector(maxWindow int) ReadaheadPolicy {
	if maxWindow <= 0 {
		maxWindow = 32
	}
	type state struct {
		lastIdx uint64
		window  int
	}
	perFile := make(map[uint64]*state)
	return func(r *Region, idx uint64) int {
		st := perFile[r.File.id]
		if st == nil {
			st = &state{}
			perFile[r.File.id] = st
		}
		sequential := idx == st.lastIdx+1
		// The faulting index is `idx`; the previous window may have
		// prefetched past it, so also accept faults that land just past
		// the old window as sequential.
		if !sequential && st.window > 0 &&
			idx > st.lastIdx && idx <= st.lastIdx+uint64(st.window)+1 {
			sequential = true
		}
		if sequential {
			if st.window == 0 {
				st.window = 2
			} else {
				st.window *= 2
			}
			if st.window > maxWindow {
				st.window = maxWindow
			}
		} else {
			st.window = 0
		}
		st.lastIdx = idx
		return st.window
	}
}
