package core

import (
	"fmt"

	"aquila/internal/sim/engine"
	"aquila/internal/sim/pagetable"
)

// DirectMapping maps byte-addressable NVM straight into the application's
// address space with 2 MB pages and no DRAM cache in between — the
// alternative §3.3 contrasts with Aquila's DRAM-cached design ("it can be
// either mapped directly to the program address space or used as a backing
// device for a DRAM I/O cache; the two approaches have different tradeoffs
// for access latency and throughput").
//
// There are no faults after setup (the whole range is mapped eagerly with
// huge pages), but every access pays the NVM media's latency and bandwidth,
// which for Optane-PMM-class devices is ~3x worse than DRAM (§7.1).
type DirectMapping struct {
	rt   *Runtime
	eng  *DAXEngine
	f    *fileState
	base uint64
	size uint64
	// mediaReads/mediaWrites count accesses (stats).
	MediaReads  uint64
	MediaWrites uint64
}

// MmapDirectNVM maps f's first size bytes directly (DAX, 2 MB pages).
// Requires the DAX engine: the device must be byte-addressable.
func (rt *Runtime) MmapDirectNVM(p *engine.Proc, f *fileState, size uint64) *DirectMapping {
	eng, ok := rt.Engine.(*DAXEngine)
	if !ok {
		panic("core: direct NVM mapping requires the DAX engine")
	}
	rt.Host.HV.VMCall(p, 1500)
	const huge = pagetable.Size2M
	pages := (size + huge - 1) / huge
	base := rt.nextVA
	// Align the region base to the huge-page size.
	base = (base + huge - 1) &^ uint64(huge-1)
	rt.nextVA = base + (pages+1)*huge
	hf := eng.file(f)
	for i := uint64(0); i < pages; i++ {
		// The "frame" of a direct mapping is the device offset itself;
		// no DRAM is involved.
		rt.PT.Map(base+i*huge, hf.DevOffset(i*huge)>>12,
			pagetable.FlagUser|pagetable.FlagWritable, huge)
		rt.charge(p, "map-pte", rt.C.PTEUpdate)
	}
	return &DirectMapping{rt: rt, eng: eng, f: f, base: base, size: size}
}

// Size returns the mapped length.
func (m *DirectMapping) Size() uint64 { return m.size }

// Load reads directly from the NVM media: no fault, no cache — the access
// cost is the media itself plus the load issue cost.
func (m *DirectMapping) Load(p *engine.Proc, off uint64, buf []byte) {
	m.checkRange(off, len(buf))
	m.MediaReads++
	hf := m.eng.file(m.f)
	m.eng.OS.Disk().Content.ReadAt(hf.DevOffset(off), buf)
	p.AdvanceUser(m.eng.PMemCost(len(buf)) + loadStoreCost(len(buf)))
}

// Store writes directly to the NVM media, including the persistence flush
// (clwb + fence) a direct-access store path must issue.
func (m *DirectMapping) Store(p *engine.Proc, off uint64, buf []byte) {
	m.checkRange(off, len(buf))
	m.MediaWrites++
	hf := m.eng.file(m.f)
	m.eng.OS.Disk().Content.WriteAt(hf.DevOffset(off), buf)
	lines := uint64(len(buf)+63) / 64
	p.AdvanceUser(m.eng.PMemCost(len(buf)) + loadStoreCost(len(buf)) + lines*12 + 30)
}

// Msync is a no-op beyond a fence: stores already reached the media.
func (m *DirectMapping) Msync(p *engine.Proc) { p.AdvanceUser(30) }

func (m *DirectMapping) checkRange(off uint64, n int) {
	if off+uint64(n) > m.size {
		panic(fmt.Sprintf("core: direct mapping access [%d,%d) beyond size %d",
			off, off+uint64(n), m.size))
	}
}

// PMemCost returns the media cost of accessing n bytes on the engine's
// device.
func (e *DAXEngine) PMemCost(n int) uint64 {
	if pm, ok := e.OS.Disk().Timing.(interface{ AccessCycles(int) uint64 }); ok {
		return pm.AccessCycles(n)
	}
	return 0
}
