package core

import (
	"fmt"

	"aquila/internal/sim/engine"
	"aquila/internal/sim/pagetable"
)

// DirectMapping maps byte-addressable NVM straight into the application's
// address space with 2 MB pages and no DRAM cache in between — the
// alternative §3.3 contrasts with Aquila's DRAM-cached design ("it can be
// either mapped directly to the program address space or used as a backing
// device for a DRAM I/O cache; the two approaches have different tradeoffs
// for access latency and throughput").
//
// There are no faults after setup (the whole range is mapped eagerly with
// huge pages), but every access pays the NVM media's latency and bandwidth,
// which for Optane-PMM-class devices is ~3x worse than DRAM (§7.1).
type DirectMapping struct {
	rt   *Runtime
	eng  *DAXEngine
	f    *fileState
	base uint64
	size uint64
	// mediaReads/mediaWrites count accesses (stats).
	MediaReads  uint64
	MediaWrites uint64
	// errCursor is this mapping's position in the file's writeback error
	// sequence (media errors detected on direct stores record there).
	errCursor uint64
}

// MmapDirectNVM maps f's first size bytes directly (DAX, 2 MB pages).
// Requires the DAX engine: the device must be byte-addressable.
func (rt *Runtime) MmapDirectNVM(p *engine.Proc, f *fileState, size uint64) *DirectMapping {
	eng, ok := rt.Engine.(*DAXEngine)
	if !ok {
		panic("core: direct NVM mapping requires the DAX engine")
	}
	rt.Host.HV.VMCall(p, rt.P.VspaceVMCall)
	const huge = pagetable.Size2M
	pages := (size + huge - 1) / huge
	base := rt.nextVA
	// Align the region base to the huge-page size.
	base = (base + huge - 1) &^ uint64(huge-1)
	rt.nextVA = base + (pages+1)*huge
	hf := eng.file(f)
	for i := uint64(0); i < pages; i++ {
		// The "frame" of a direct mapping is the device offset itself;
		// no DRAM is involved.
		rt.PT.Map(base+i*huge, hf.DevOffset(i*huge)>>12,
			pagetable.FlagUser|pagetable.FlagWritable, huge)
		rt.charge(p, "map-pte", rt.C.PTEUpdate)
	}
	return &DirectMapping{rt: rt, eng: eng, f: f, base: base, size: size,
		errCursor: f.wbErr.sample()}
}

// Size returns the mapped length.
func (m *DirectMapping) Size() uint64 { return m.size }

// Load reads directly from the NVM media: no fault, no cache — the access
// cost is the media itself plus the load issue cost. A load from a poisoned
// line machine-checks: the simulated equivalent is a typed SIGBUS panic,
// exactly what the kernel delivers for an MCE on a DAX mapping.
func (m *DirectMapping) Load(p *engine.Proc, off uint64, buf []byte) {
	m.checkRange(off, len(buf))
	m.MediaReads++
	hf := m.eng.file(m.f)
	st := m.eng.OS.Disk().Content
	devOff := hf.DevOffset(off)
	delay, ferr := st.CheckRead(p.Now(), devOff, len(buf))
	if ferr != nil {
		panic(&SigBus{VA: m.base + off, File: m.f.name,
			Err: newIOFault("read", m.f.name, off/pageSize, ferr)})
	}
	st.ReadAt(devOff, buf)
	p.AdvanceUser(m.eng.PMemCost(len(buf)) + loadStoreCost(len(buf)) + delay)
}

// Store writes directly to the NVM media, including the persistence flush
// (clwb + fence) a direct-access store path must issue. A media error on the
// flush does not trap the store (writes are posted); it is recorded in the
// file's error sequence and surfaces on the next Msync, matching how real
// pmem reports failed flushes.
func (m *DirectMapping) Store(p *engine.Proc, off uint64, buf []byte) {
	m.checkRange(off, len(buf))
	m.MediaWrites++
	hf := m.eng.file(m.f)
	st := m.eng.OS.Disk().Content
	devOff := hf.DevOffset(off)
	delay, ferr := st.CheckWrite(p.Now(), devOff, len(buf))
	if ferr != nil {
		m.f.wbErr.record(newIOFault("write", m.f.name, off/pageSize, ferr))
	} else {
		st.WriteAt(devOff, buf)
	}
	lines := uint64(len(buf)+63) / 64
	p.AdvanceUser(m.eng.PMemCost(len(buf)) + loadStoreCost(len(buf)) + lines*12 + 30 + delay)
	if ferr == nil {
		// The clwb+fence has drained the stores to the persistent domain.
		st.Persist(devOff, len(buf), p.Now())
	}
}

// Msync is a fence (stores already reached the media) plus the errseq check:
// a DAX mapping reports media errors detected by earlier flushes exactly
// once per caller, like any other mapping.
func (m *DirectMapping) Msync(p *engine.Proc) error {
	p.AdvanceUser(m.rt.P.DirectMsync)
	return m.f.wbErr.check(&m.errCursor)
}

func (m *DirectMapping) checkRange(off uint64, n int) {
	if off+uint64(n) > m.size {
		panic(fmt.Sprintf("core: direct mapping access [%d,%d) beyond size %d",
			off, off+uint64(n), m.size))
	}
}

// PMemCost returns the media cost of accessing n bytes on the engine's
// device.
func (e *DAXEngine) PMemCost(n int) uint64 {
	if pm, ok := e.OS.Disk().Timing.(interface{ AccessCycles(int) uint64 }); ok {
		return pm.AccessCycles(n)
	}
	return 0
}
