package core
