package core

import (
	"fmt"
	"testing"

	"aquila/internal/host"
	"aquila/internal/iface"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
)

// hugeWorld builds a DAX-engine runtime with the huge-page path enabled at
// the given promotion density.
func hugeWorld(cacheBytes uint64, cpus int, density float64) (*engine.Engine, func(p *engine.Proc) *Runtime) {
	e := engine.New(engine.Config{NumCPUs: cpus, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(512*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, 128*mib)
	ps := DefaultParams()
	ps.HugeFaultDensity = density
	return e, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: cacheBytes, Params: &ps})
	}
}

func checkHugeQuiesce(t *testing.T, rt *Runtime) {
	t.Helper()
	if err := rt.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
	if got, want := rt.fl.audit(), rt.fl.Free(); got != want {
		t.Errorf("freelist audit %d != Free %d", got, want)
	}
}

// TestHugePromotionDensity: sequentially touching a file read-only promotes
// each 2 MB extent once its residency density crosses the threshold, cutting
// fault events by ~2x at density 0.5 (256 base faults + 1 promotion per 512
// pages) and covering the extent with one cache unit.
func TestHugePromotionDensity(t *testing.T) {
	e, boot := hugeWorld(16*mib, 1, 0.5)
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "dense", 4*mib)
		m := rt.Mmap(p, f, 4*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off < 4*mib; off += pageSize {
			m.Load(p, off, buf)
		}
	})
	e.Run()
	if got := rt.Stats.HugePromotions; got != 2 {
		t.Errorf("HugePromotions = %d, want 2", got)
	}
	// 255 base faults then the promoting fault per extent: half the 4 KB
	// baseline's 1024 fault events.
	if got := rt.Stats.MajorFaults; got != 512 {
		t.Errorf("MajorFaults = %d, want 512", got)
	}
	if got := rt.ResidentPages(); got != 1024 {
		t.Errorf("ResidentPages = %d, want 1024", got)
	}
	checkHugeQuiesce(t, rt)
}

// TestHugeAdviseFirstFault: an MADV_HUGEPAGE'd region promotes on the very
// first fault of each extent, dirties whole units on stores, and writes each
// unit back as one merged 2 MB run.
func TestHugeAdviseFirstFault(t *testing.T) {
	e, boot := hugeWorld(16*mib, 1, 0.5)
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "hinted", 4*mib)
		m := rt.Mmap(p, f, 4*mib)
		m.Advise(p, iface.AdviceHuge)
		m.Store(p, 123, []byte("x"))
		if got := rt.Stats.HugePromotions; got != 1 {
			t.Errorf("HugePromotions after first store = %d, want 1", got)
		}
		if got := rt.Stats.MajorFaults; got != 1 {
			t.Errorf("MajorFaults after first store = %d, want 1", got)
		}
		if got := rt.DirtyPages(); got != 1 {
			t.Errorf("DirtyPages = %d, want 1 whole-unit entry", got)
		}
		m.Msync(p)
		if got := rt.Stats.WrittenBack; got != 512 {
			t.Errorf("WrittenBack = %d, want 512 (one merged unit)", got)
		}
		// Post-writeback store: the hinted unit re-dirties whole instead of
		// splitting.
		m.Store(p, 5000, []byte("y"))
		if got := rt.Stats.HugeDemotions; got != 0 {
			t.Errorf("HugeDemotions = %d, want 0 on hinted region", got)
		}
		if got := rt.DirtyPages(); got != 1 {
			t.Errorf("DirtyPages after re-dirty = %d, want 1", got)
		}
	})
	e.Run()
	checkHugeQuiesce(t, rt)
}

// TestHugeSplitOnDirtyingStore: a store to a clean, unhinted unit demotes it
// back to 4 KB pages so dirty tracking stays fine-grained — exactly one page
// dirty afterwards, all 512 frames still cached.
func TestHugeSplitOnDirtyingStore(t *testing.T) {
	e, boot := hugeWorld(16*mib, 1, 0.5)
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "split", 2*mib)
		m := rt.Mmap(p, f, 2*mib)
		buf := make([]byte, 8)
		for off := uint64(0); off < 2*mib; off += pageSize {
			m.Load(p, off, buf)
		}
		if got := rt.Stats.HugePromotions; got != 1 {
			t.Fatalf("HugePromotions = %d, want 1", got)
		}
		m.Store(p, mib+17, []byte("z"))
		if got := rt.Stats.HugeDemotions; got != 1 {
			t.Errorf("HugeDemotions = %d, want 1", got)
		}
		if got := rt.DirtyPages(); got != 1 {
			t.Errorf("DirtyPages = %d, want 1", got)
		}
		if got := rt.ResidentPages(); got != 512 {
			t.Errorf("ResidentPages = %d, want 512", got)
		}
	})
	e.Run()
	checkHugeQuiesce(t, rt)
}

// TestHugeEvictWhole: an out-of-memory streaming write over hinted units
// evicts victims whole — one LRU entry, one merged 2 MB writeback, one
// freelist block per unit — and the recycled blocks keep their contiguity for
// later promotions.
func TestHugeEvictWhole(t *testing.T) {
	e, boot := hugeWorld(8*mib, 1, 0.5)
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "stream", 32*mib)
		m := rt.Mmap(p, f, 32*mib)
		m.Advise(p, iface.AdviceHuge)
		for off := uint64(0); off < 32*mib; off += 2 * mib {
			m.Store(p, off, []byte("w"))
		}
	})
	e.Run()
	// Not every extent promotes: once the huge tier is drained, 4 KB demand
	// splits blocks and only whole-unit evictions replenish it. At least the
	// cache's worth of units (4 blocks) must have promoted.
	if got := rt.Stats.HugePromotions; got < 4 {
		t.Errorf("HugePromotions = %d, want >= 4", got)
	}
	if rt.Stats.HugeEvictions == 0 {
		t.Error("no whole-unit evictions in out-of-memory stream")
	}
	if rt.Stats.HugeDemotions != 0 {
		t.Errorf("HugeDemotions = %d, want 0 (hinted units evict whole)", rt.Stats.HugeDemotions)
	}
	checkHugeQuiesce(t, rt)
}

// hugeFingerprint drives an eviction-heavy mixed workload over a hinted
// mapping twice the cache, so units cycle continuously — racing first-fault
// promotions, whole-unit evictions, block recycling, 4 KB fallback when the
// tier is drained — and returns a fingerprint folding in the huge counters.
func hugeFingerprint(t *testing.T) string {
	t.Helper()
	e, boot := hugeWorld(16*mib, 4, 0.005)
	var rt *Runtime
	e.Spawn(0, "init", func(p *engine.Proc) {
		rt = boot(p)
		f := rt.CreateFile(p, "hdet", 32*mib)
		m := rt.Mmap(p, f, 32*mib)
		m.Advise(p, iface.AdviceHuge)
		m.Store(p, 0, []byte{1})
		for w := 0; w < 4; w++ {
			w := w
			e.SpawnAt(w%4, fmt.Sprintf("w%d", w), p.Now(), func(p *engine.Proc) {
				buf := make([]byte, 64)
				n := uint64(32 * mib)
				for i := 0; i < 3000; i++ {
					off := (uint64(i)*40009 + uint64(w)*7919) * 64 % (n - 64)
					if i%3 == 0 {
						m.Store(p, off, buf)
					} else {
						m.Load(p, off, buf)
					}
				}
			})
		}
	})
	e.Run()
	checkHugeQuiesce(t, rt)
	if rt.Stats.HugePromotions == 0 {
		t.Error("workload exercised no promotions")
	}
	if rt.Stats.HugeEvictions == 0 {
		t.Error("workload exercised no whole-unit evictions")
	}
	st := rt.Stats
	return fmt.Sprintf("now=%d major=%d minor=%d wp=%d evict=%d wb=%d shoot=%d free=%d resident=%d hf=%d promo=%d demo=%d hevict=%d",
		e.Now(), st.MajorFaults, st.MinorFaults, st.WPFaults, st.Evictions,
		st.WrittenBack, st.ShootdownBatches, rt.FreePages(), rt.ResidentPages(),
		st.HugeFaults, st.HugePromotions, st.HugeDemotions, st.HugeEvictions)
}

// TestHugeDeterminism: the huge-page path is bit-deterministic — the same
// seed replays the same promotions, demotions, whole-unit evictions and final
// clocks under a 4-CPU eviction-heavy mixed workload.
func TestHugeDeterminism(t *testing.T) {
	a := hugeFingerprint(t)
	b := hugeFingerprint(t)
	t.Logf("huge: %s", a)
	if a != b {
		t.Errorf("huge fingerprint not reproducible:\n run1 %s\n run2 %s", a, b)
	}
}
