package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"aquila/internal/host"
	"aquila/internal/obs"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/spdk"
)

// asyncParams returns the default params with the background evictor on,
// optionally mutated.
func asyncParams(mut func(*Params)) *Params {
	ps := DefaultParams()
	ps.AsyncEvict = true
	if mut != nil {
		mut(&ps)
	}
	return &ps
}

// asyncDaxWorld is daxWorld with explicit params.
func asyncDaxWorld(cacheBytes uint64, cpus int, ps *Params) (*engine.Engine, *host.OS, func(p *engine.Proc) *Runtime) {
	e := engine.New(engine.Config{NumCPUs: cpus, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(512*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, 64*mib)
	return e, os, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: cacheBytes, Params: ps})
	}
}

func asyncSpdkWorld(cacheBytes uint64, cpus int, ps *Params) (*engine.Engine, func(p *engine.Proc) *Runtime) {
	e := engine.New(engine.Config{NumCPUs: cpus, Seed: 1})
	hostDisk := host.NewPMemDisk("hostdisk", device.NewPMem(16*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, hostDisk, 16*mib)
	nvme := device.NewNVMe(512*mib, device.DefaultNVMeConfig())
	fm := spdk.NewFileMap(spdk.NewBlobstore(spdk.NewDriver(nvme)))
	return e, func(p *engine.Proc) *Runtime {
		return NewRuntime(p, os, NewSPDKEngine(fm), Config{CacheBytes: cacheBytes, Params: ps})
	}
}

// pressureWorkload faults an out-of-core mixed read/write pattern through the
// runtime (file = 4x cache).
func pressureWorkload(p *engine.Proc, rt *Runtime, fileBytes uint64) {
	f := rt.CreateFile(p, "pressure", fileBytes)
	m := rt.Mmap(p, f, fileBytes)
	buf := make([]byte, 8)
	for off := uint64(0); off+8 < fileBytes; off += pageSize {
		if (off/pageSize)%4 == 0 {
			m.Store(p, off, buf)
		} else {
			m.Load(p, off, buf)
		}
	}
}

func TestBgEvictorWatermarkHysteresis(t *testing.T) {
	cache := uint64(4 * mib) // 1024 pages: low=64, high=192 derived
	e, _, boot := asyncDaxWorld(cache, 4, asyncParams(nil))
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		if rt.LowWater() <= 0 || rt.HighWater() <= rt.LowWater() {
			t.Errorf("bad watermarks: low=%d high=%d", rt.LowWater(), rt.HighWater())
		}
		pressureWorkload(p, rt, 16*mib)
	})
	e.Run()
	if rt.Stats.BgReclaimPages == 0 {
		t.Error("background evictor reclaimed nothing under pressure")
	}
	// Hysteresis: daemons are asleep again, and they refilled past the low
	// watermark before sleeping (they only stop at the high watermark or
	// when every candidate is busy, which cannot happen post-workload).
	for i, ev := range rt.bg {
		if !ev.idle {
			t.Errorf("evictor %d still awake after quiescence", i)
		}
	}
	if rt.FreePages() < rt.LowWater() {
		t.Errorf("free %d below low watermark %d after evictor slept", rt.FreePages(), rt.LowWater())
	}
	if rt.Break.Get("bg_reclaim") == 0 {
		t.Error("no bg_reclaim cycles in breakdown")
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBgEvictorStaysAsleepWithoutPressure(t *testing.T) {
	// Working set fits: the freelist never crosses the low watermark, so the
	// daemons must never wake.
	e, _, boot := asyncDaxWorld(32*mib, 4, asyncParams(nil))
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		pressureWorkload(p, rt, 4*mib)
	})
	e.Run()
	if rt.Stats.BgReclaimPages != 0 {
		t.Errorf("evictor reclaimed %d pages with no memory pressure", rt.Stats.BgReclaimPages)
	}
	for i, ev := range rt.bg {
		if !ev.idle || ev.wake.Pending() {
			t.Errorf("evictor %d was woken without pressure", i)
		}
	}
}

func TestBgEvictorOverlappedWritebackPersists(t *testing.T) {
	// Dirty pages evicted by the daemons go through SubmitWriteRun; their
	// content must survive the round trip exactly as with sync writeback.
	run := func(t *testing.T, e *engine.Engine, boot func(p *engine.Proc) *Runtime) {
		var rt *Runtime
		e.Spawn(0, "t", func(p *engine.Proc) {
			rt = boot(p)
			const fileBytes = 16 * mib
			f := rt.CreateFile(p, "data", fileBytes)
			m := rt.Mmap(p, f, fileBytes)
			mark := make([]byte, 8)
			for off := uint64(0); off+8 < fileBytes; off += pageSize {
				idx := off / pageSize
				for i := range mark {
					mark[i] = byte(idx >> (8 * i))
				}
				m.Store(p, off, mark)
			}
			got := make([]byte, 8)
			for off := uint64(0); off+8 < fileBytes; off += pageSize {
				idx := off / pageSize
				for i := range mark {
					mark[i] = byte(idx >> (8 * i))
				}
				m.Load(p, off, got)
				if !bytes.Equal(got, mark) {
					t.Fatalf("page %d corrupted after bg writeback: %x != %x", idx, got, mark)
				}
			}
		})
		e.Run()
		if rt.Stats.BgReclaimPages == 0 {
			t.Error("workload never exercised the background evictor")
		}
		if err := rt.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("dax", func(t *testing.T) {
		e, _, boot := asyncDaxWorld(4*mib, 4, asyncParams(nil))
		run(t, e, boot)
	})
	t.Run("spdk", func(t *testing.T) {
		e, boot := asyncSpdkWorld(4*mib, 4, asyncParams(nil))
		run(t, e, boot)
	})
}

func TestAsyncEvictDirectReclaimFallback(t *testing.T) {
	// Degenerate watermarks (wake only at empty) plus a one-cycle stall
	// budget: allocations find the freelist dry, throttle-wait once, and
	// must then fall through to synchronous direct reclaim — visible in the
	// stats and the breakdown.
	ps := asyncParams(func(ps *Params) {
		ps.LowWatermark = 1
		ps.HighWatermark = 2
		ps.EvictStallBudget = 1
	})
	e, _, boot := asyncDaxWorld(4*mib, 4, ps)
	var rt *Runtime
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt = boot(p)
		pressureWorkload(p, rt, 16*mib)
	})
	e.Run()
	if rt.Stats.DirectReclaimPages == 0 {
		t.Error("no direct reclaim despite starved stall budget")
	}
	if rt.Stats.EvictStalls == 0 {
		t.Error("no stalls counted on the throttled path")
	}
	if rt.Break.Get("direct_reclaim") == 0 {
		t.Error("no direct_reclaim cycles in breakdown")
	}
	if got := rt.Reg.Counter("aquila_evict_stall").Value(); got != rt.Stats.EvictStalls {
		t.Errorf("aquila_evict_stall metric %d != stats %d", got, rt.Stats.EvictStalls)
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionStalledErrorInsteadOfPanic(t *testing.T) {
	// With the freelist drained and nothing evictable, an allocation must
	// burn its yield + throttled-wait budget and then return
	// ErrEvictionStalled — the graceful replacement of the old hard panic.
	ps := DefaultParams()
	ps.EvictStallBudget = 40_000 // two throttle quanta
	e, _, boot := asyncDaxWorld(1*mib, 2, &ps)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		drained := rt.fl.drain(rt.fl.Free())
		if rt.fl.Free() != 0 {
			t.Fatalf("drain left %d free", rt.fl.Free())
		}
		stallsBefore := rt.Stats.EvictStalls
		_, err := rt.allocFrame(p)
		if !errors.Is(err, ErrEvictionStalled) {
			t.Fatalf("allocFrame error = %v, want ErrEvictionStalled", err)
		}
		if rt.Stats.EvictStalls <= stallsBefore {
			t.Error("stall counter did not advance")
		}
		// Mappings surface the same condition as a SIGBUS-style panic.
		f := rt.CreateFile(p, "doomed", 1*mib)
		m := rt.Mmap(p, f, 1*mib)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Load with starved cache did not fault")
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "SIGBUS") {
					t.Errorf("panic %q does not look like SIGBUS", msg)
				}
			}()
			m.Load(p, 0, make([]byte, 8))
		}()
		// Restore the frames so the world shuts down with sane invariants.
		rt.fl.fill(drained)
	})
	e.Run()
}

func TestStalledAllocationStealsStrandedFrames(t *testing.T) {
	// Frames parked on another core's private queue are invisible to pop;
	// a starving allocation must steal one rather than fail while Free()>0.
	ps := DefaultParams()
	ps.EvictStallBudget = 40_000
	e, _, boot := asyncDaxWorld(1*mib, 2, &ps)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := boot(p)
		// Strand every frame on CPU 1's private queue.
		frames := rt.fl.drain(rt.fl.Free())
		rt.fl.cores[1] = append(rt.fl.cores[1], frames...)
		rt.fl.free += len(frames)
		fr, err := rt.allocFrame(p) // runs on CPU 0
		if err != nil || fr == nil {
			t.Fatalf("allocFrame = (%v, %v), want stolen frame", fr, err)
		}
		if rt.fl.Free() != rt.fl.audit() {
			t.Errorf("free %d != audit %d after steal", rt.fl.Free(), rt.fl.audit())
		}
	})
	e.Run()
}

func TestBgEvictorNamedTraceThread(t *testing.T) {
	tr := obs.NewTracer()
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1, Spans: tr, TraceLabel: "async"})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(512*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, 64*mib)
	e.Spawn(0, "t", func(p *engine.Proc) {
		rt := NewRuntime(p, os, NewDAXEngine(os), Config{CacheBytes: 4 * mib, Params: asyncParams(nil)})
		pressureWorkload(p, rt, 16*mib)
	})
	e.Run()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One named daemon thread per NUMA node (engine default: 2 nodes).
	for n := 0; n < e.NumNUMANodes(); n++ {
		if want := fmt.Sprintf("bg-evict.%d", n); !strings.Contains(out, want) {
			t.Errorf("chrome trace missing daemon thread %q", want)
		}
	}
	if !strings.Contains(out, "aq.bg_evict") {
		t.Error("chrome trace missing aq.bg_evict spans")
	}
	if !strings.Contains(out, "aq.bg_writeback") {
		t.Error("chrome trace missing aq.bg_writeback spans")
	}
}
