// Package core implements the Aquila library OS: the custom mmio path that
// runs, together with the application, in VMX non-root ring 0.
//
// Common-path operations (§3: page faults ①, DRAM cache replacement ②,
// device access ③) execute entirely in the guest: the fault handler costs a
// ring-0 exception instead of a ring-3 trap, cache lookups go through a
// lock-free hash table, frames come from a two-level (per-core/per-NUMA)
// freelist, dirty pages live in per-core red-black trees sorted by device
// offset, and evictions unmap in batches of 512 pages with a single
// rate-limited posted-IPI TLB shootdown. Uncommon operations (file-mapping
// management ④, cache resizing ⑤) interact with the hypervisor via vmcalls.
package core

// Params are Aquila's software-path cost constants (cycles) and policy knobs.
type Params struct {
	// ExceptionEntry is the handler-entry work beyond the bare ring-0
	// exception: switching to the dedicated exception stack and copying
	// the exception frame back to the application stack (§4.2).
	ExceptionEntry uint64
	// RadixLookup is a vspace radix-tree lookup (RadixVM-style, §3.4).
	RadixLookup uint64
	// EntryLock is locking one radix entry against concurrent faults.
	EntryLock uint64
	// HashLookup is a lock-free hash table probe (ASCYLIB-style, §3.2).
	HashLookup uint64
	// HashInsert is a lock-free hash table insertion.
	HashInsert uint64
	// HashRemove is a lock-free hash table removal.
	HashRemove uint64
	// FreelistPop is popping a frame from the per-core freelist queue.
	FreelistPop uint64
	// FreelistMove is moving one page between freelist levels (amortized
	// over the 4096-page batches of §3.2).
	FreelistMove uint64
	// LRUAppend is recording the fault in the per-core LRU structure.
	LRUAppend uint64
	// DirtyTreeOp is an insert/remove on a per-core dirty red-black tree.
	DirtyTreeOp uint64
	// FaultAccounting is residual fault bookkeeping (statistics, madvise
	// checks, permission computation).
	FaultAccounting uint64
	// MsyncEntry is the intercepted msync entry cost: a plain function
	// call, not a protection-domain switch (§4.4).
	MsyncEntry uint64
	// DuneEnter is the one-time vmcall that builds VMCS/EPT state when a
	// process enters Aquila (Dune-style enter).
	DuneEnter uint64
	// VspaceVMCall is the root-ring-0 handler cost of the uncommon-path
	// vmcalls that update virtual address ranges (operation ④:
	// mmap/munmap/mremap and direct-NVM mapping setup).
	VspaceVMCall uint64
	// DirectMsync is the user-mode fence cost of msync on a direct NVM
	// mapping: stores already reached the media, so only the fence and
	// the errseq check remain.
	DirectMsync uint64

	// EvictBatch is the synchronous eviction batch size (§3.2: 512).
	EvictBatch int
	// FreelistBatch is the page count moved between freelist levels
	// (§3.2: 4096).
	FreelistBatch int
	// CoreQueueLimit is the per-core free-queue threshold above which
	// pages spill to the NUMA queue.
	CoreQueueLimit int
	// ReadAheadPages is the madvise(SEQUENTIAL)-driven readahead window.
	ReadAheadPages int
	// WritebackMaxRun caps the size of one merged writeback I/O, in pages.
	WritebackMaxRun int
	// SingleQueueFreelist replaces the two-level per-core/per-NUMA
	// freelist with one lock-protected shared queue — the design §3.2
	// argues against. Ablation knob; default false.
	SingleQueueFreelist bool

	// AsyncEvict enables the per-NUMA-node background evictor: a ring-0
	// daemon that reclaims frames between the low and high freelist
	// watermarks with overlapped (submission-style) writeback, keeping
	// reclaim off the fault path. Default false: the paper's figures use
	// synchronous reclaim, and the false path is bit-identical to the
	// pre-evictor runtime.
	AsyncEvict bool
	// LowWatermark is the free-page count below which the background
	// evictor wakes. Zero derives 2*EvictBatch clamped to 1/16 of the
	// cache.
	LowWatermark int
	// HighWatermark is the free-page count the evictor restores before
	// going back to sleep. Zero derives 3*LowWatermark clamped to 1/4 of
	// the cache.
	HighWatermark int
	// EvictStallBudget bounds, in cycles, how long an allocation may spend
	// in throttled waiting when every reclaim candidate is busy before the
	// runtime gives up with ErrEvictionStalled (the graceful replacement
	// of the old starvation panic). Zero derives 50M cycles (~20 ms).
	EvictStallBudget uint64

	// HugeFaultDensity enables the 2 MB huge-page mmio path and sets the
	// promotion trigger: a major fault in a 2 MB-aligned extent promotes the
	// whole extent to one huge mapping once the fraction of its 512 pages
	// already resident (counting the faulting page) reaches this value.
	// Regions hinted with AdviseHuge promote on the first fault regardless.
	// Zero disables huge pages entirely; the runtime is then bit-identical
	// to the 4 KB-only path.
	HugeFaultDensity float64
	// HugePromote is the software cost of assembling a promotion: collapsing
	// the extent's PTE subtree into one 2 MB entry and merging the cache
	// metadata (charged once per promotion, on top of the per-PTE work).
	HugePromote uint64
	// HugeSplit is the software cost of demoting a huge mapping: allocating
	// a PTE table and re-pointing the 2 MB entry at it (charged once per
	// split; the surviving 4 KB pieces re-fault lazily).
	HugeSplit uint64
	// BuddyOp is one operation on the buddy contiguous-frame tier
	// (block pop/push, including the split/coalesce bookkeeping).
	BuddyOp uint64
	// HugeTLBEntries overrides the per-CPU 2 MB dTLB array size when huge
	// pages are enabled. Zero derives the hardware default (32).
	HugeTLBEntries int

	// UnsafeMsyncAtSubmit deliberately breaks msync's durability contract:
	// dirty runs are submitted to the device queue and msync returns without
	// waiting for the completion (the durability point). Validation-only —
	// the ablate-crash harness flips it to demonstrate that the crash oracle
	// catches acknowledged-but-volatile data when a crash lands inside the
	// device's completion window. Never set it for real measurements.
	UnsafeMsyncAtSubmit bool

	// IORetryLimit is how many times a transient device error is retried
	// before the I/O is declared failed (poison on reads, quarantine or
	// requeue on writeback). Zero derives 3.
	IORetryLimit int
	// IORetryBackoff is the cycle cost charged before retry attempt k as
	// k*IORetryBackoff (linear backoff, fully simulated so the degraded
	// path stays deterministic). Zero derives 20000 (~8 us).
	IORetryBackoff uint64
}

// DefaultParams returns the calibrated Aquila parameter set.
func DefaultParams() Params {
	return Params{
		ExceptionEntry:  450,
		RadixLookup:     220,
		EntryLock:       75,
		HashLookup:      250,
		HashInsert:      280,
		HashRemove:      220,
		FreelistPop:     100,
		FreelistMove:    25,
		LRUAppend:       70,
		DirtyTreeOp:     260,
		FaultAccounting: 500,
		MsyncEntry:      120,
		DuneEnter:       5000,
		VspaceVMCall:    1500,
		DirectMsync:     30,

		EvictBatch:      512,
		FreelistBatch:   4096,
		CoreQueueLimit:  8192,
		ReadAheadPages:  16,
		WritebackMaxRun: 128,

		// Huge pages ship disabled (HugeFaultDensity 0); the cost constants
		// are calibrated so enabling them only needs the density knob.
		HugePromote: 1800,
		HugeSplit:   1400,
		BuddyOp:     120,

		IORetryLimit:   3,
		IORetryBackoff: 20000,
	}
}
