package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRBTreeBasics(t *testing.T) {
	tr := &rbTree{}
	pg := &Page{}
	tr.Insert(5, pg)
	if got, ok := tr.Get(5); !ok || got != pg {
		t.Fatal("get after insert failed")
	}
	if _, ok := tr.Get(6); ok {
		t.Fatal("get of missing key succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	if !tr.Delete(5) {
		t.Fatal("delete failed")
	}
	if tr.Delete(5) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 0 {
		t.Fatalf("len after delete = %d", tr.Len())
	}
}

func TestRBTreeAscendSorted(t *testing.T) {
	tr := &rbTree{}
	keys := []uint64{42, 7, 99, 3, 56, 21, 88, 1}
	for _, k := range keys {
		tr.Insert(k, &Page{idx: k})
	}
	var got []uint64
	tr.Ascend(func(k uint64, pg *Page) bool {
		got = append(got, k)
		return true
	})
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("ascend order %v, want %v", got, sorted)
		}
	}
	k, _, ok := tr.Min()
	if !ok || k != 1 {
		t.Fatalf("min = %d, %v", k, ok)
	}
}

func TestRBTreeAscendEarlyStop(t *testing.T) {
	tr := &rbTree{}
	for i := uint64(0); i < 10; i++ {
		tr.Insert(i, &Page{})
	}
	count := 0
	tr.Ascend(func(k uint64, pg *Page) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

// Property: the tree stays a valid red-black tree and agrees with a map
// under random insert/delete sequences.
func TestRBTreeInvariantsProperty(t *testing.T) {
	type op struct {
		Key uint16
		Del bool
	}
	check := func(ops []op) bool {
		tr := &rbTree{}
		ref := make(map[uint64]*Page)
		for _, o := range ops {
			k := uint64(o.Key % 128)
			if o.Del {
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			} else {
				pg := &Page{idx: k}
				tr.Insert(k, pg)
				ref[k] = pg
			}
			if tr.Len() != len(ref) {
				return false
			}
			if tr.checkInvariants() < 0 {
				return false
			}
		}
		// Final content check.
		for k, pg := range ref {
			got, ok := tr.Get(k)
			if !ok || got != pg {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeLargeSequential(t *testing.T) {
	tr := &rbTree{}
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, &Page{idx: i})
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.checkInvariants() < 0 {
		t.Fatal("invariants violated after sequential insert")
	}
	for i := uint64(0); i < n; i += 2 {
		tr.Delete(i)
	}
	if tr.Len() != n/2 {
		t.Fatalf("len after deletes = %d", tr.Len())
	}
	if tr.checkInvariants() < 0 {
		t.Fatal("invariants violated after deletes")
	}
}

func TestVSpaceInsertFindRemove(t *testing.T) {
	vs := &vspace{}
	f := &fileState{id: 1, name: "f"}
	r := &Region{Start: 1 << 30, End: 1<<30 + 64*pageSize, File: f}
	vs.Insert(r)
	if got := vs.Find(1<<30 + 5*pageSize + 7); got != r {
		t.Fatal("find inside region failed")
	}
	if got := vs.Find(1<<30 - 1); got != nil {
		t.Fatal("find before region succeeded")
	}
	if got := vs.Find(1<<30 + 64*pageSize); got != nil {
		t.Fatal("find past region succeeded")
	}
	vs.Remove(r)
	if got := vs.Find(1<<30 + 5*pageSize); got != nil {
		t.Fatal("find after remove succeeded")
	}
}

func TestVSpaceLargeRegionCollapses(t *testing.T) {
	vs := &vspace{}
	f := &fileState{id: 1}
	// A 4 GB region aligned to 1 GB: must use interior slots, not 1M leaves.
	r := &Region{Start: 1 << 39, End: 1<<39 + 4<<30, File: f}
	vs.Insert(r)
	for _, off := range []uint64{0, 1 << 30, 4<<30 - pageSize} {
		if vs.Find(r.Start+off) != r {
			t.Fatalf("find at +%d failed", off)
		}
	}
	if vs.Find(r.Start+4<<30) != nil {
		t.Fatal("find past collapsed region succeeded")
	}
}

func TestVSpaceMultipleRegions(t *testing.T) {
	vs := &vspace{}
	var regions []*Region
	for i := uint64(0); i < 20; i++ {
		r := &Region{
			Start: 1<<40 + i*1000*pageSize,
			End:   1<<40 + i*1000*pageSize + 100*pageSize,
			File:  &fileState{id: i},
		}
		regions = append(regions, r)
		vs.Insert(r)
	}
	if vs.Len() != 20 {
		t.Fatalf("len = %d", vs.Len())
	}
	for i, r := range regions {
		if vs.Find(r.Start+50*pageSize) != r {
			t.Fatalf("region %d not found", i)
		}
		// Gaps between regions are unmapped.
		if vs.Find(r.End+pageSize) != nil {
			t.Fatalf("gap after region %d mapped", i)
		}
	}
}
