package core

import (
	"fmt"
	"sort"

	"aquila/internal/sim/engine"
	"aquila/internal/sim/mem"
)

// Background eviction (Params.AsyncEvict): one ring-0 daemon per NUMA node
// reclaims frames between the low and high freelist watermarks, keeping
// victim selection, batched shootdowns and writeback off the fault path.
// Writeback overlaps: engines implementing AsyncWriter accept all merged
// runs up front (io_uring-style submission, modeled on internal/host/iouring)
// and the daemon drains the queue with a single wait on the last completion.
// Faulting procs fall back to synchronous direct reclaim only when the
// freelist is empty and every daemon is asleep or out of budget.

// evictorEmptyRounds is how many consecutive empty selection rounds (every
// candidate pinned or in flight) a daemon tolerates — each followed by one
// throttled wait — before going back to sleep until the next kick.
const evictorEmptyRounds = 8

// bgSyncFallbackAfter is how many consecutive batches with writeback
// failures a daemon tolerates before abandoning overlapped submission for
// fully synchronous writeback (inline retry/recovery per run); one clean
// batch switches back.
const bgSyncFallbackAfter = 2

type bgEvictor struct {
	rt   *Runtime
	node int
	wake *engine.Signal
	proc *engine.Proc
	// idle is true while the daemon is parked on wake (or about to park);
	// kickers only Set the signal for idle daemons, and allocations only
	// throttle-wait while some daemon is not idle.
	idle bool
	// failStreak counts consecutive reclaim batches that hit a final
	// writeback failure; at bgSyncFallbackAfter the daemon stops overlapping.
	failStreak int
}

// setWatermarks derives the reclaim watermarks from the params and the
// current cache size (re-derived on every resize).
func (rt *Runtime) setWatermarks() {
	limit := int(rt.limitPages)
	if debugChecks {
		if err := checkWatermarkBounds(rt.P, limit); err != nil {
			panic("core: bad eviction watermarks: " + err.Error())
		}
	}
	low := rt.P.LowWatermark
	if low == 0 {
		low = 2 * rt.P.EvictBatch
		if m := limit / 16; low > m {
			low = m
		}
		if low < 1 {
			low = 1
		}
	}
	high := rt.P.HighWatermark
	if high == 0 {
		high = 3 * low
		if m := limit / 4; high > m {
			high = m
		}
	}
	if high <= low {
		high = low + 1
	}
	rt.lowWater, rt.highWater = low, high
}

// LowWater and HighWater expose the derived watermarks (tests, reports).
func (rt *Runtime) LowWater() int  { return rt.lowWater }
func (rt *Runtime) HighWater() int { return rt.highWater }

// startEvictors spawns one background evictor daemon per NUMA node, pinned
// to the node's first CPU.
func (rt *Runtime) startEvictors(p *engine.Proc) {
	rt.setWatermarks()
	nodes := rt.e.NumNUMANodes()
	perNode := rt.e.NumCPUs() / nodes
	if perNode < 1 {
		perNode = 1
	}
	for n := 0; n < nodes; n++ {
		cpu := n * perNode
		if cpu >= rt.e.NumCPUs() {
			cpu = rt.e.NumCPUs() - 1
		}
		name := fmt.Sprintf("bg-evict.%d", n)
		ev := &bgEvictor{
			rt:   rt,
			node: n,
			wake: engine.NewSignal(rt.e, name),
			idle: true,
		}
		ev.proc = rt.e.SpawnDaemon(cpu, name, ev.run)
		rt.bg = append(rt.bg, ev)
	}
}

// kickEvictors wakes the daemons when a successful allocation drops the
// freelist below the low watermark (the normal wakeup path: reclaim starts
// before the list runs dry).
func (rt *Runtime) kickEvictors(p *engine.Proc) {
	if rt.bg == nil || rt.fl.Free() >= rt.lowWater {
		return
	}
	rt.wakeEvictors(p)
}

// wakeEvictors signals every idle daemon (empty-freelist path: all hands).
func (rt *Runtime) wakeEvictors(p *engine.Proc) {
	for _, ev := range rt.bg {
		if ev.idle {
			ev.idle = false
			ev.wake.Set(p.Now())
		}
	}
}

// evictorActive reports whether any daemon is awake and reclaiming; while
// true an empty-handed allocation throttle-waits instead of direct-reclaiming.
func (rt *Runtime) evictorActive() bool {
	for _, ev := range rt.bg {
		if !ev.idle {
			return true
		}
	}
	return false
}

// run is the daemon body: sleep until kicked, then reclaim batches until the
// freelist reaches the high watermark (hysteresis), tolerating a bounded
// number of empty selection rounds before sleeping again.
func (ev *bgEvictor) run(p *engine.Proc) {
	rt := ev.rt
	for {
		ev.idle = true
		ev.wake.Wait(p)
		ev.idle = false
		empty := 0
		for rt.fl.Free() < rt.highWater {
			if ev.reclaimBatch(p) > 0 {
				empty = 0
				continue
			}
			empty++
			if empty > evictorEmptyRounds {
				// Every candidate busy; faulters will re-kick, or direct
				// reclaim takes over once its throttle budget runs out.
				break
			}
			p.WaitUntil(p.Now()+evictStallQuantum, engine.KindIOWait)
		}
	}
}

// reclaimBatch is one background reclaim round: select under the shared
// victim-selection mutex, batch-unmap with one shootdown, stream dirty runs
// through the overlapped writeback path, and refill the NUMA freelist queues
// directly (bypassing this core's private queue so all cores see the frames).
func (ev *bgEvictor) reclaimBatch(p *engine.Proc) int {
	rt := ev.rt
	p.BeginSpan("aq.bg_evict")
	defer p.EndSpan()
	t0 := p.Now()
	rt.evictSel.Lock(p)
	victims := rt.Victims(p, rt.P.EvictBatch)
	rt.evictSel.Unlock(p)
	rt.charge(p, "evict-select", rt.P.HashRemove*uint64(len(victims)))
	if len(victims) == 0 {
		rt.Break.Add("bg_reclaim", p.Now()-t0)
		return 0
	}
	unmapped := 0
	for _, v := range victims {
		for _, va := range v.vas {
			if rt.PT.Unmap(va) {
				rt.charge(p, "unmap", rt.C.PTEUpdate)
				unmapped++
			}
		}
		v.vas = nil
	}
	if unmapped > 0 {
		rt.shootdown(p)
	}
	var dirtyV []*Page
	for _, v := range victims {
		if v.dirty {
			// Flag and tree entry change together, before the charge below can
			// yield: a crash mid-bg_evict must never observe a dirty page
			// missing from its tree (CheckCrashInvariants).
			rt.dirty[v.dirtyCore].Delete(dirtyKey(v))
			v.dirty = false
			rt.charge(p, "dirty-track", rt.P.DirtyTreeOp)
			dirtyV = append(dirtyV, v)
		}
	}
	if ev.writeOverlapped(p, dirtyV) != nil {
		ev.failStreak++
	} else {
		ev.failStreak = 0
	}
	doneAt := p.Now()
	frames := make([]*mem.Frame, 0, len(victims))
	recycled := 0
	for _, v := range victims {
		v.io.Fire(doneAt)
		v.io = nil
		if v.quarantined || v.dirty {
			// Writeback failed: the page was revived (quarantined or
			// requeued) and keeps its frame.
			continue
		}
		rt.cacheRemove(v)
		if v.huge {
			// A unit's block goes back whole so its contiguity survives for
			// the next promotion.
			rt.fl.pushHuge(p, v.frames)
			v.frames, v.frame = nil, nil
			rt.Stats.HugeEvictions++
			recycled += hugePages
		} else {
			frames = append(frames, v.frame)
			v.frame = nil
			recycled++
		}
	}
	rt.fl.pushBatch(p, frames)
	rt.Stats.Evictions += uint64(recycled)
	rt.Stats.BgReclaimPages += uint64(recycled)
	rt.Break.Add("bg_reclaim", p.Now()-t0)
	return recycled
}

// writeOverlapped writes dirty victims in device-offset order with merged
// runs, like writeSorted, but submits asynchronously when the engine supports
// it: all runs enter the device queue back to back and the daemon waits once
// for the last completion, so device time overlaps submission work instead of
// serializing run after run. Victims are already unmapped here, so no
// write-protect pass is needed.
//
// A run whose submission is rejected falls back to the synchronous
// retry/recovery path inline (the rest of the batch keeps overlapping); a
// daemon whose batches keep failing stops overlapping entirely until a batch
// completes clean. Returns the first final write failure, if any.
func (ev *bgEvictor) writeOverlapped(p *engine.Proc, pages []*Page) error {
	rt := ev.rt
	if len(pages) == 0 {
		return nil
	}
	sort.Slice(pages, func(i, j int) bool { return dirtyKey(pages[i]) < dirtyKey(pages[j]) })
	aw, _ := rt.Engine.(AsyncWriter)
	if aw != nil && ev.failStreak >= bgSyncFallbackAfter {
		aw = nil
		rt.Stats.SyncWritebackFallbacks++
	}
	var lastDone uint64
	var firstErr error
	i := 0
	for i < len(pages) {
		var run []*Page
		var frames []*mem.Frame
		if pages[i].huge {
			// A unit is its own merged 2 MB run, never split or capped.
			run = pages[i : i+1]
			frames = pages[i].frames
		} else {
			j := i + 1
			for j < len(pages) && j-i < rt.P.WritebackMaxRun && !pages[j].huge &&
				pages[j].file == pages[i].file && pages[j].idx == pages[j-1].idx+1 {
				j++
			}
			run = pages[i:j]
			frames = make([]*mem.Frame, len(run))
			for k, pg := range run {
				frames[k] = pg.frame
			}
		}
		j := i + len(run)
		if aw != nil {
			t0 := p.Now()
			p.BeginSpan("aq.bg_writeback")
			done, err := aw.SubmitWriteRun(p, run[0].file, run[0].idx, frames)
			p.EndSpan()
			rt.Break.Add("writeback", p.Now()-t0)
			if err == nil {
				if done > lastDone {
					lastDone = done
				}
				rt.Stats.WrittenBack += uint64(len(frames))
				i = j
				continue
			}
			// Submission rejected: nothing of this run was queued. Recover
			// synchronously (bounded retries, then per-page isolation).
		}
		if werr := rt.writeRunOrRecover(p, "aq.bg_writeback", run, frames, true); werr != nil && firstErr == nil {
			firstErr = werr
		}
		i = j
	}
	if lastDone > p.Now() {
		// Drain: one wait for the deepest queued completion.
		t0 := p.Now()
		p.BeginSpan("aq.bg_writeback")
		p.WaitUntil(lastDone, engine.KindIOWait)
		p.EndSpan()
		rt.Break.Add("writeback", p.Now()-t0)
	}
	return firstErr
}
