package lsm

import (
	"bytes"
	"encoding/binary"

	"aquila/internal/sim/engine"
)

// sstIter streams one table's records in key order, reading blocks through
// the DB's configured I/O mode.
type sstIter struct {
	db     *DB
	t      *SST
	blkIdx int
	blk    []byte
	pos    int
	curKey []byte
	curVal []byte
	loaded bool
	done   bool
	seek   []byte
}

// newSSTIter positions an iterator at the first key >= startKey (nil: start).
func newSSTIter(db *DB, t *SST, startKey []byte) *sstIter {
	it := &sstIter{db: db, t: t, seek: startKey}
	if startKey != nil {
		it.blkIdx = t.blockFor(startKey)
	}
	return it
}

// load fetches the current block and decodes the first entry at/after seek.
func (it *sstIter) load(p *engine.Proc) {
	for {
		if it.blkIdx >= it.t.blockCount {
			it.done = true
			return
		}
		it.blk = it.db.readBlock(p, it.t, uint64(it.blkIdx))
		it.pos = 0
		if it.decode() {
			// Skip entries before the seek key.
			for it.seek != nil && bytes.Compare(it.curKey, it.seek) < 0 {
				if !it.step() {
					break
				}
			}
			if !it.done && (it.seek == nil || bytes.Compare(it.curKey, it.seek) >= 0) {
				it.seek = nil
				return
			}
			if it.done {
				return
			}
		}
		it.blkIdx++
	}
}

// decode parses the entry at pos into curKey/curVal.
func (it *sstIter) decode() bool {
	if it.pos+4 > len(it.blk) {
		return false
	}
	kl := int(binary.LittleEndian.Uint16(it.blk[it.pos:]))
	vl := int(binary.LittleEndian.Uint16(it.blk[it.pos+2:]))
	if kl == 0 {
		return false
	}
	it.curKey = it.blk[it.pos+4 : it.pos+4+kl]
	it.curVal = it.blk[it.pos+4+kl : it.pos+4+kl+vl]
	return true
}

// step moves to the next entry within the current block, or marks the block
// exhausted (caller advances the block).
func (it *sstIter) step() bool {
	kl := int(binary.LittleEndian.Uint16(it.blk[it.pos:]))
	vl := int(binary.LittleEndian.Uint16(it.blk[it.pos+2:]))
	it.pos += 4 + kl + vl
	return it.decode()
}

// current returns the iterator's record, loading lazily.
func (it *sstIter) current(p *engine.Proc) ([]byte, []byte, bool) {
	if it.done {
		return nil, nil, false
	}
	if !it.loaded {
		it.loaded = true
		it.load(p)
		if it.done {
			return nil, nil, false
		}
	}
	return it.curKey, it.curVal, true
}

// advance moves to the next record.
func (it *sstIter) advance(p *engine.Proc) {
	if it.done || !it.loaded {
		it.current(p)
		if it.done {
			return
		}
	}
	if it.step() {
		return
	}
	it.blkIdx++
	it.load(p)
}

// heapItem is one merge-heap element; lower pri = newer source.
type heapItem struct {
	key, value []byte
	pri        int
	it         *sstIter
}

// iterHeap is a small binary min-heap ordered by (key, pri).
type iterHeap struct {
	items []heapItem
}

func (h *iterHeap) len() int { return len(h.items) }

func (h *iterHeap) less(a, b heapItem) bool {
	c := bytes.Compare(a.key, b.key)
	if c != 0 {
		return c < 0
	}
	return a.pri < b.pri
}

func (h *iterHeap) push(x heapItem) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *iterHeap) pop() heapItem {
	top := h.items[0]
	n := len(h.items)
	h.items[0] = h.items[n-1]
	h.items = h.items[:n-1]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// mergeIter merges the memtable and every table, newest source winning on
// duplicate keys.
type mergeIter struct {
	db      *DB
	memNode *skipNode
	heap    *iterHeap
	lastKey []byte
}

// newMergeIter builds a merged iterator positioned at startKey.
func (db *DB) newMergeIter(p *engine.Proc, startKey []byte) *mergeIter {
	m := &mergeIter{db: db, heap: &iterHeap{}}
	m.memNode = db.mem.seek(startKey)
	pri := 1
	for _, t := range db.levels[0] {
		it := newSSTIter(db, t, startKey)
		if k, v, ok := it.current(p); ok {
			m.heap.push(heapItem{k, v, pri, it})
		}
		pri++
	}
	for lvl := 1; lvl < len(db.levels); lvl++ {
		for _, t := range db.levels[lvl] {
			if bytes.Compare(t.largest, startKey) < 0 {
				continue
			}
			it := newSSTIter(db, t, startKey)
			if k, v, ok := it.current(p); ok {
				m.heap.push(heapItem{k, v, pri, it})
			}
		}
		pri++
	}
	return m
}

// next returns the next merged record.
func (m *mergeIter) next(p *engine.Proc) ([]byte, []byte, bool) {
	for {
		// Candidate from memtable (priority 0: newest).
		var memKey []byte
		if m.memNode != nil {
			memKey = m.memNode.key
		}
		useMem := false
		if memKey != nil {
			if m.heap.len() == 0 || bytes.Compare(memKey, m.heap.items[0].key) <= 0 {
				useMem = true
			}
		}
		var k, v []byte
		if useMem {
			k, v = m.memNode.key, m.memNode.value
			m.memNode = m.memNode.next[0]
		} else {
			if m.heap.len() == 0 {
				return nil, nil, false
			}
			item := m.heap.pop()
			k, v = item.key, item.value
			item.it.advance(p)
			if nk, nv, ok := item.it.current(p); ok {
				m.heap.push(heapItem{nk, nv, item.pri, item.it})
			}
		}
		if m.lastKey != nil && bytes.Equal(k, m.lastKey) {
			continue // older duplicate
		}
		m.lastKey = append(m.lastKey[:0], k...)
		return k, v, true
	}
}
