// Package lsm implements a RocksDB-like persistent key-value store: an
// LSM-tree with a skiplist memtable, a write-ahead log, fixed-size sorted
// tables (SSTs) with block indexes and bloom filters, leveled compaction,
// and three I/O configurations matching the paper's §5: direct I/O with a
// user-space block cache (the recommended RocksDB mode), buffered
// read/write, and mmio.
package lsm

import (
	"bytes"
	"math/rand"
)

const maxSkipLevel = 12

// skiplist is the memtable: a deterministic-probabilistic skiplist over
// byte-slice keys.
type skiplist struct {
	head    *skipNode
	rng     *rand.Rand
	size    int // approximate bytes
	entries int
}

type skipNode struct {
	key, value []byte
	next       [maxSkipLevel]*skipNode
	level      int
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head: &skipNode{level: maxSkipLevel},
		rng:  rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites a key. Returns the number of pointer hops, used
// for cost charging.
func (s *skiplist) put(key, value []byte) int {
	var update [maxSkipLevel]*skipNode
	hops := 0
	x := s.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
			hops++
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		s.size += len(value) - len(n.value)
		n.value = value
		return hops
	}
	lvl := s.randomLevel()
	n := &skipNode{key: key, value: value, level: lvl}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size += len(key) + len(value) + 64
	s.entries++
	return hops
}

// get looks a key up. Returns value, found, and pointer hops.
func (s *skiplist) get(key []byte) ([]byte, bool, int) {
	hops := 0
	x := s.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
			hops++
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		return n.value, true, hops
	}
	return nil, false, hops
}

// seek returns the first node with key >= target.
func (s *skiplist) seek(key []byte) *skipNode {
	x := s.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// first returns the smallest node.
func (s *skiplist) first() *skipNode { return s.head.next[0] }
