package lsm

import (
	"aquila/internal/sim/engine"
)

// BlockCache is the user-space cache of the paper's Figure 1(b): a sharded
// LRU over decoded data blocks, in the style of RocksDB's LRUCache. Every
// access — including hits — pays lookup, locking and reference-counting
// costs; this is precisely the overhead the paper's Figure 7 decomposes and
// Aquila's mmio path eliminates.
type BlockCache struct {
	shards []cacheShard
	costs  Costs

	// Stats.
	Hits, Misses, Evictions uint64
}

type cacheKey struct {
	sst uint64
	blk uint64
}

type cacheShard struct {
	lock     *engine.Mutex
	blocks   map[cacheKey]*cacheBlock
	lruHead  *cacheBlock
	lruTail  *cacheBlock
	capacity int
	used     int
}

type cacheBlock struct {
	key        cacheKey
	data       []byte
	prev, next *cacheBlock
}

// NewBlockCache creates a cache with the given byte capacity across 16
// shards.
func NewBlockCache(e *engine.Engine, capacity uint64, costs Costs) *BlockCache {
	const nShards = 16
	c := &BlockCache{costs: costs}
	per := int(capacity) / nShards
	for i := 0; i < nShards; i++ {
		c.shards = append(c.shards, cacheShard{
			lock:     engine.NewMutex(e, "blockcache"),
			blocks:   make(map[cacheKey]*cacheBlock),
			capacity: per,
		})
	}
	return c
}

func (c *BlockCache) shard(k cacheKey) *cacheShard {
	h := k.sst*0x9E3779B97F4A7C15 ^ k.blk*0xC2B2AE3D27D4EB4F
	return &c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached block or nil, charging lookup costs.
func (c *BlockCache) Get(p *engine.Proc, sst, blk uint64) []byte {
	k := cacheKey{sst, blk}
	s := c.shard(k)
	s.lock.Lock(p)
	p.AdvanceUser(c.costs.CacheLookup)
	b := s.blocks[k]
	if b != nil {
		s.lruRemove(b)
		s.lruPush(b)
		c.Hits++
	} else {
		c.Misses++
	}
	s.lock.Unlock(p)
	if b == nil {
		return nil
	}
	return b.data
}

// Insert caches a block, evicting LRU blocks as needed.
func (c *BlockCache) Insert(p *engine.Proc, sst, blk uint64, data []byte) {
	k := cacheKey{sst, blk}
	s := c.shard(k)
	s.lock.Lock(p)
	p.AdvanceUser(c.costs.CacheInsert)
	if _, ok := s.blocks[k]; ok {
		s.lock.Unlock(p)
		return
	}
	for s.used+len(data) > s.capacity && s.lruTail != nil {
		victim := s.lruTail
		s.lruRemove(victim)
		delete(s.blocks, victim.key)
		s.used -= len(victim.data)
		c.Evictions++
		p.AdvanceUser(c.costs.CacheEvict)
	}
	b := &cacheBlock{key: k, data: append([]byte(nil), data...)}
	s.blocks[k] = b
	s.lruPush(b)
	s.used += len(data)
	s.lock.Unlock(p)
}

// Resident returns the number of cached blocks (tests).
func (c *BlockCache) Resident() int {
	n := 0
	for i := range c.shards {
		n += len(c.shards[i].blocks)
	}
	return n
}

func (s *cacheShard) lruPush(b *cacheBlock) {
	b.prev = nil
	b.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = b
	}
	s.lruHead = b
	if s.lruTail == nil {
		s.lruTail = b
	}
}

func (s *cacheShard) lruRemove(b *cacheBlock) {
	if b.prev != nil {
		b.prev.next = b.next
	} else if s.lruHead == b {
		s.lruHead = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else if s.lruTail == b {
		s.lruTail = b.prev
	}
	b.prev, b.next = nil, nil
}
