package lsm

import (
	"encoding/binary"
	"fmt"

	"aquila/internal/sim/engine"
)

// Durability: the store persists a MANIFEST naming every live table per
// level (rewritten on each flush/compaction, as RocksDB's version edits
// accumulate into a manifest) and replays the WAL into the memtable on
// reopen, so a "crash" (dropping the DB object) loses nothing that was
// acknowledged.

const manifestMagic = 0x4D414E49 // "MANI"

// manifestName is the manifest file's name in the namespace.
const manifestName = "MANIFEST"

// writeManifest persists the current level layout.
func (db *DB) writeManifest(p *engine.Proc) {
	if db.manifest == nil {
		return
	}
	buf := make([]byte, 0, 512)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], manifestMagic)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], db.nextID)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(db.levels)))
	buf = append(buf, tmp[:4]...)
	for _, level := range db.levels {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(level)))
		buf = append(buf, tmp[:4]...)
		for _, t := range level {
			name := t.file.Name()
			binary.LittleEndian.PutUint16(tmp[:2], uint16(len(name)))
			buf = append(buf, tmp[:2]...)
			buf = append(buf, name...)
			binary.LittleEndian.PutUint64(tmp[:], t.id)
			buf = append(buf, tmp[:]...)
		}
	}
	// Length-prefix the whole record so reopen knows where it ends.
	out := make([]byte, 4+len(buf))
	binary.LittleEndian.PutUint32(out, uint32(len(buf)))
	copy(out[4:], buf)
	db.manifest.Pwrite(p, out, 0)
	db.manifest.Fsync(p)
}

// Reopen recovers a DB from its namespace: manifest -> tables, WAL ->
// memtable. Options must match the original (same block size and mode).
func Reopen(p *engine.Proc, e *engine.Engine, opts Options) *DB {
	db := Open(p, e, opts)
	if !db.opts.NS.(interface{ Exists(string) bool }).Exists(manifestName) {
		panic("lsm: reopen without a manifest (was the DB opened with DisableWAL and never flushed?)")
	}
	db.manifest = db.opts.NS.Open(p, manifestName)
	hdr := make([]byte, 4)
	db.manifest.Pread(p, hdr, 0)
	n := binary.LittleEndian.Uint32(hdr)
	buf := make([]byte, n)
	db.manifest.Pread(p, buf, 4)
	if binary.LittleEndian.Uint32(buf) != manifestMagic {
		panic("lsm: bad manifest magic")
	}
	pos := 4
	db.nextID = binary.LittleEndian.Uint64(buf[pos:])
	pos += 8
	nLevels := int(binary.LittleEndian.Uint32(buf[pos:]))
	pos += 4
	db.levels = make([][]*SST, nLevels)
	for lvl := 0; lvl < nLevels; lvl++ {
		cnt := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		for i := 0; i < cnt; i++ {
			nameLen := int(binary.LittleEndian.Uint16(buf[pos:]))
			pos += 2
			name := string(buf[pos : pos+nameLen])
			pos += nameLen
			id := binary.LittleEndian.Uint64(buf[pos:])
			pos += 8
			db.levels[lvl] = append(db.levels[lvl],
				openSST(p, db.opts.NS, name, id, db.opts.BlockBytes, db.mmio()))
		}
	}
	db.replayWAL(p)
	return db
}

// replayWAL reconstructs the memtable from the write-ahead log.
func (db *DB) replayWAL(p *engine.Proc) {
	if db.wal == nil {
		return
	}
	// Read the WAL region in chunks and replay until the terminator.
	const chunk = 1 << 20
	size := db.wal.Size()
	buf := make([]byte, 0, chunk)
	var fileOff uint64
	fill := func(need int) bool {
		for len(buf) < need && fileOff < size {
			get := uint64(chunk)
			if fileOff+get > size {
				get = size - fileOff
			}
			tmp := make([]byte, get)
			db.wal.Pread(p, tmp, fileOff)
			fileOff += get
			buf = append(buf, tmp...)
		}
		return len(buf) >= need
	}
	replayed := 0
	for {
		if !fill(4) {
			break
		}
		kl := int(binary.LittleEndian.Uint16(buf[0:]))
		vl := int(binary.LittleEndian.Uint16(buf[2:]))
		if kl == 0 {
			break // terminator
		}
		if !fill(4 + kl + vl) {
			break // torn tail record: discard
		}
		key := append([]byte(nil), buf[4:4+kl]...)
		val := append([]byte(nil), buf[4+kl:4+kl+vl]...)
		hops := db.mem.put(key, val)
		p.AdvanceUser(db.costs.MemtableBase + db.costs.MemtableHop*uint64(hops))
		consumed := 4 + kl + vl
		buf = buf[consumed:]
		db.walOff += uint64(consumed)
		replayed++
	}
	db.Replayed = uint64(replayed)
}

// checkManifestConsistency panics if a manifest references a missing table
// (corruption diagnostics for tests).
func (db *DB) checkManifestConsistency() {
	for lvl, level := range db.levels {
		for _, t := range level {
			if t.blockCount == 0 && t.entries != 0 {
				panic(fmt.Sprintf("lsm: level %d table %d inconsistent", lvl, t.id))
			}
		}
	}
}
