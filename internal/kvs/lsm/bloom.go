package lsm

import "encoding/binary"

// bloom is a standard Bloom filter with double hashing (Kirsch-Mitzenmacher),
// ~10 bits per key / 7 probes, as RocksDB's full filters use.
type bloom struct {
	bits []byte
	k    uint32
}

// newBloom sizes a filter for n keys at bitsPerKey.
func newBloom(n int, bitsPerKey int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	k := uint32(float64(bitsPerKey) * 0.69) // ln 2
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloom{bits: make([]byte, (nbits+7)/8), k: k}
}

func bloomHash(key []byte) (uint64, uint64) {
	var h1, h2 uint64 = 14695981039346656037, 1099511628211
	for _, b := range key {
		h1 = (h1 ^ uint64(b)) * 1099511628211
		h2 = h2*31 + uint64(b)
	}
	return h1, h2 | 1
}

// add inserts a key.
func (f *bloom) add(key []byte) {
	h, d := bloomHash(key)
	nbits := uint64(len(f.bits)) * 8
	for i := uint32(0); i < f.k; i++ {
		pos := h % nbits
		f.bits[pos/8] |= 1 << (pos % 8)
		h += d
	}
}

// mayContain reports whether the key is possibly present.
func (f *bloom) mayContain(key []byte) bool {
	h, d := bloomHash(key)
	nbits := uint64(len(f.bits)) * 8
	for i := uint32(0); i < f.k; i++ {
		pos := h % nbits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += d
	}
	return true
}

// marshal serializes the filter.
func (f *bloom) marshal() []byte {
	out := make([]byte, 8+len(f.bits))
	binary.LittleEndian.PutUint32(out, uint32(len(f.bits)))
	binary.LittleEndian.PutUint32(out[4:], f.k)
	copy(out[8:], f.bits)
	return out
}

// unmarshalBloom parses a serialized filter, returning it and the bytes read.
func unmarshalBloom(b []byte) (*bloom, int) {
	n := binary.LittleEndian.Uint32(b)
	k := binary.LittleEndian.Uint32(b[4:])
	f := &bloom{bits: make([]byte, n), k: k}
	copy(f.bits, b[8:8+n])
	return f, int(8 + n)
}
