package lsm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"aquila/internal/host"
	"aquila/internal/iface"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/ycsb"
)

const mib = 1 << 20

func TestSkiplist(t *testing.T) {
	s := newSkiplist(1)
	s.put([]byte("b"), []byte("2"))
	s.put([]byte("a"), []byte("1"))
	s.put([]byte("c"), []byte("3"))
	if v, ok, _ := s.get([]byte("b")); !ok || string(v) != "2" {
		t.Fatalf("get b = %q %v", v, ok)
	}
	s.put([]byte("b"), []byte("2x")) // overwrite
	if v, _, _ := s.get([]byte("b")); string(v) != "2x" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if _, ok, _ := s.get([]byte("zz")); ok {
		t.Fatal("missing key found")
	}
	// In-order traversal.
	var keys []string
	for n := s.first(); n != nil; n = n.next[0] {
		keys = append(keys, string(n.key))
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("order %v", keys)
		}
	}
	if n := s.seek([]byte("aa")); string(n.key) != "b" {
		t.Fatalf("seek(aa) = %q", n.key)
	}
}

func TestSkiplistMatchesMapProperty(t *testing.T) {
	check := func(ops []uint16) bool {
		s := newSkiplist(2)
		ref := make(map[string]string)
		for i, o := range ops {
			k := fmt.Sprintf("k%04d", o%512)
			v := fmt.Sprintf("v%d", i)
			s.put([]byte(k), []byte(v))
			ref[k] = v
		}
		if s.entries != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok, _ := s.get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBloom(t *testing.T) {
	f := newBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		f.add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.mayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative on key-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if f.mayContain([]byte(fmt.Sprintf("other-%d", i))) {
			fp++
		}
	}
	if fp > 300 { // ~1% expected at 10 bits/key; allow 3%
		t.Errorf("false positive rate too high: %d/10000", fp)
	}
	// Round trip through serialization.
	f2, n := unmarshalBloom(f.marshal())
	if n != len(f.marshal()) {
		t.Fatalf("unmarshal consumed %d", n)
	}
	if !f2.mayContain([]byte("key-1")) {
		t.Fatal("serialized filter lost keys")
	}
}

// world builds a host namespace over pmem for DB tests.
func world(cacheBytes uint64) (*engine.Engine, iface.Namespace) {
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(1<<30, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, cacheBytes)
	return e, &host.Namespace{OS: os, Direct: true}
}

func run1(e *engine.Engine, fn func(p *engine.Proc)) {
	e.Spawn(0, "t", fn)
	e.Run()
}

func openTestDB(p *engine.Proc, e *engine.Engine, ns iface.Namespace, mode IOMode) *DB {
	return Open(p, e, Options{
		NS: ns, Mode: mode,
		MemtableBytes:   64 << 10,
		SSTTargetBytes:  256 << 10,
		BlockCacheBytes: 1 << 20,
		Seed:            7,
	})
}

func TestDBPutGetSmall(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		for i := uint64(0); i < 100; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		for i := uint64(0); i < 100; i++ {
			v, ok := db.Get(p, ycsb.KeyBytes(i))
			if !ok || !ycsb.CheckValue(i, v) {
				t.Fatalf("get %d failed (ok=%v)", i, ok)
			}
		}
		if _, ok := db.Get(p, ycsb.KeyBytes(1000)); ok {
			t.Fatal("missing key found")
		}
	})
}

func TestDBFlushAndCompaction(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		const n = 3000 // 100-byte values -> several flushes and a compaction
		for i := uint64(0); i < n; i++ {
			db.Put(p, ycsb.KeyBytes(i%1500), ycsb.Value(i, 100))
		}
		if db.Flushes == 0 {
			t.Error("no flushes happened")
		}
		if db.Compactions == 0 {
			t.Error("no compactions happened")
		}
		// Newest version must win.
		for i := uint64(0); i < 1500; i++ {
			wantID := i
			if i < n-1500 {
				wantID = i + 1500
			}
			v, ok := db.Get(p, ycsb.KeyBytes(i))
			if !ok {
				t.Fatalf("key %d missing after compaction", i)
			}
			if !ycsb.CheckValue(wantID, v) {
				t.Fatalf("key %d: stale version", i)
			}
		}
	})
}

func TestDBAllModesReadBack(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode IOMode
	}{
		{"direct-cached", IODirectCached},
		{"buffered", IOBuffered},
		{"mmap", IOMmap},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
			disk := host.NewPMemDisk("pmem0", device.NewPMem(1<<30, device.DefaultPMemConfig()))
			os := host.NewOS(e, disk, 64*mib)
			ns := &host.Namespace{OS: os, Direct: tc.mode == IODirectCached}
			run1(e, func(p *engine.Proc) {
				db := openTestDB(p, e, ns, tc.mode)
				db.BulkLoad(p, 2000, 100)
				for i := uint64(0); i < 2000; i += 37 {
					v, ok := db.Get(p, ycsb.KeyBytes(i))
					if !ok || !ycsb.CheckValue(i, v) {
						t.Fatalf("get %d in mode %s failed", i, tc.name)
					}
				}
			})
		})
	}
}

func TestDBBulkLoadCreatesLeveledTables(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		db.BulkLoad(p, 5000, 100)
		lv := db.Levels()
		if lv[0] != 0 {
			t.Errorf("L0 = %d, want 0 after bulk load", lv[0])
		}
		if lv[1] < 2 {
			t.Errorf("L1 = %d, want >= 2 tables", lv[1])
		}
	})
}

func TestDBScan(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		db.BulkLoad(p, 1000, 100)
		// Fresh updates in the memtable must merge into scans.
		db.Put(p, ycsb.KeyBytes(500), ycsb.Value(9999, 100))
		got := db.Scan(p, ycsb.KeyBytes(495), 10)
		if got != 10 {
			t.Errorf("scan returned %d, want 10", got)
		}
		// Scan past the end is truncated.
		got = db.Scan(p, ycsb.KeyBytes(995), 100)
		if got != 5 {
			t.Errorf("tail scan returned %d, want 5", got)
		}
	})
}

func TestDBScanSeesNewestVersion(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		db.BulkLoad(p, 100, 100)
		db.Put(p, ycsb.KeyBytes(50), []byte("NEWEST"))
		it := db.newMergeIter(p, ycsb.KeyBytes(50))
		k, v, ok := it.next(p)
		if !ok || ycsb.KeyID(k) != 50 || string(v) != "NEWEST" {
			t.Fatalf("merged iter: key=%v val=%q ok=%v", k, v, ok)
		}
		// Next key is 51, not a stale 50.
		k, _, ok = it.next(p)
		if !ok || ycsb.KeyID(k) != 51 {
			t.Fatalf("second key = %d", ycsb.KeyID(k))
		}
	})
}

func TestBlockCacheLRU(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 1, Seed: 1})
	run1(e, func(p *engine.Proc) {
		c := NewBlockCache(e, 64<<10, DefaultCosts()) // 16 blocks of 4K
		blk := make([]byte, 4096)
		for i := uint64(0); i < 64; i++ {
			c.Insert(p, 1, i, blk)
		}
		if got := c.Resident(); got > 16 {
			t.Errorf("resident %d over capacity", got)
		}
		if c.Evictions == 0 {
			t.Error("no evictions")
		}
		c.Insert(p, 2, 0, blk)
		if c.Get(p, 2, 0) == nil {
			t.Error("fresh insert missing")
		}
		if c.Hits == 0 {
			t.Error("hit not counted")
		}
	})
}

func TestDBWithBlockCacheHitsReduceIO(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		db.BulkLoad(p, 1000, 100)
		db.Get(p, ycsb.KeyBytes(10))
		missesAfterFirst := db.Cache().Misses
		db.Get(p, ycsb.KeyBytes(10))
		if db.Cache().Misses != missesAfterFirst {
			t.Error("second get of same key missed the block cache")
		}
		if db.Cache().Hits == 0 {
			t.Error("no block-cache hits")
		}
	})
}

func TestSSTOpenAfterBuild(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		b := newSSTBuilder(4096)
		for i := uint64(0); i < 500; i++ {
			b.add(ycsb.KeyBytes(i), ycsb.Value(i, 64))
		}
		built := b.finish(p, ns, "table1", 1, false)
		reopened := openSST(p, ns, "table1", 1, 4096, false)
		if reopened.blockCount != built.blockCount {
			t.Errorf("block count %d != %d", reopened.blockCount, built.blockCount)
		}
		if !bytes.Equal(reopened.smallest, built.smallest) || !bytes.Equal(reopened.largest, built.largest) {
			t.Error("key range mismatch after reopen")
		}
		if !reopened.filter.mayContain(ycsb.KeyBytes(123)) {
			t.Error("reopened bloom lost keys")
		}
	})
}

func TestDBAgainstYCSBDriver(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		db.BulkLoad(p, 500, 100)
		g := ycsb.NewGenerator(ycsb.Config{
			Workload: ycsb.WorkloadA, Records: 500, ValueSize: 100, Seed: 3,
		})
		res := ycsb.RunThread(p, db, g, 300)
		if res.Misses != 0 {
			t.Errorf("YCSB read misses: %d", res.Misses)
		}
		if res.Lat.Count() != 300 {
			t.Errorf("latency samples: %d", res.Lat.Count())
		}
	})
}

func TestRecoveryFromManifestAndWAL(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		opts := Options{
			NS: ns, Mode: IODirectCached,
			MemtableBytes:   32 << 10,
			SSTTargetBytes:  128 << 10,
			BlockCacheBytes: 1 << 20,
			Seed:            7,
		}
		db := Open(p, e, opts)
		// Enough puts for several flushes + a compaction, plus a tail
		// that stays in the memtable (WAL only).
		const n = 2000
		for i := uint64(0); i < n; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		if db.Flushes == 0 || db.Compactions == 0 {
			t.Fatalf("setup: flushes=%d compactions=%d", db.Flushes, db.Compactions)
		}
		memEntries := db.mem.entries
		if memEntries == 0 {
			t.Fatal("setup: expected unflushed memtable entries")
		}

		// "Crash": drop the DB object, recover from the namespace.
		db2 := Reopen(p, e, opts)
		db2.checkManifestConsistency()
		if int(db2.Replayed) != memEntries {
			t.Errorf("replayed %d WAL records, want %d", db2.Replayed, memEntries)
		}
		for i := uint64(0); i < n; i++ {
			v, ok := db2.Get(p, ycsb.KeyBytes(i))
			if !ok || !ycsb.CheckValue(i, v) {
				t.Fatalf("key %d lost after recovery (ok=%v)", i, ok)
			}
		}
		// Updates after recovery still work and win.
		db2.Put(p, ycsb.KeyBytes(5), ycsb.Value(9999, 100))
		v, _ := db2.Get(p, ycsb.KeyBytes(5))
		if !ycsb.CheckValue(9999, v) {
			t.Error("post-recovery update lost")
		}
	})
}

func TestRecoveryAfterCleanFlush(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		opts := Options{NS: ns, Mode: IODirectCached, MemtableBytes: 32 << 10, Seed: 3}
		db := Open(p, e, opts)
		for i := uint64(0); i < 500; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		db.Flush(p)
		db2 := Reopen(p, e, opts)
		if db2.Replayed != 0 {
			t.Errorf("replayed %d records after a clean flush, want 0", db2.Replayed)
		}
		for i := uint64(0); i < 500; i += 17 {
			if _, ok := db2.Get(p, ycsb.KeyBytes(i)); !ok {
				t.Fatalf("key %d missing", i)
			}
		}
	})
}

func TestWALFullTriggersFlushInsteadOfWrap(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(1<<30, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, 64*mib)
	ns := &host.Namespace{OS: os, Direct: true}
	run1(e, func(p *engine.Proc) {
		// Tiny WAL pressure: memtable threshold far above what the WAL
		// holds is impossible with the default 64 MB WAL, so instead
		// verify the no-wrap invariant: walOff never exceeds the file.
		db := Open(p, e, Options{NS: ns, Mode: IODirectCached, MemtableBytes: 256 << 10, Seed: 1})
		for i := uint64(0); i < 3000; i++ {
			db.Put(p, ycsb.KeyBytes(i%100), ycsb.Value(i, 900))
			if db.walOff > db.wal.Size() {
				t.Fatalf("WAL offset %d beyond file %d", db.walOff, db.wal.Size())
			}
		}
	})
}

// Property: the full store (memtable + WAL + flushes + compactions over the
// simulated world) behaves as a map under random put/get sequences.
func TestDBMatchesMapModelProperty(t *testing.T) {
	type op struct {
		Key   uint16
		Val   uint16
		IsGet bool
	}
	check := func(ops []op) bool {
		e, ns := world(64 * mib)
		okAll := true
		run1(e, func(p *engine.Proc) {
			db := Open(p, e, Options{
				NS: ns, Mode: IODirectCached,
				MemtableBytes:  8 << 10, // tiny: force flush/compaction churn
				SSTTargetBytes: 32 << 10,
				Seed:           11,
			})
			ref := make(map[uint64]uint64)
			for _, o := range ops {
				k := uint64(o.Key % 200)
				if o.IsGet {
					v, ok := db.Get(p, ycsb.KeyBytes(k))
					wantV, want := ref[k]
					if ok != want {
						okAll = false
						return
					}
					if ok && !ycsb.CheckValue(wantV, v) {
						okAll = false
						return
					}
				} else {
					val := uint64(o.Val)
					db.Put(p, ycsb.KeyBytes(k), ycsb.Value(val, 120))
					ref[k] = val
				}
			}
			// Final: every key readable with its newest value.
			for k, wantV := range ref {
				v, ok := db.Get(p, ycsb.KeyBytes(k))
				if !ok || !ycsb.CheckValue(wantV, v) {
					okAll = false
					return
				}
			}
		})
		return okAll
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTombstones(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openTestDB(p, e, ns, IODirectCached)
		db.BulkLoad(p, 300, 100)
		// Delete a key that lives in L1.
		db.Delete(p, ycsb.KeyBytes(150))
		if _, ok := db.Get(p, ycsb.KeyBytes(150)); ok {
			t.Fatal("deleted key still visible")
		}
		// Scans skip it.
		if got := db.Scan(p, ycsb.KeyBytes(148), 4); got != 4 {
			t.Errorf("scan = %d, want 4 (skipping the tombstone)", got)
		}
		// Re-insert resurrects it.
		db.Put(p, ycsb.KeyBytes(150), ycsb.Value(150, 100))
		if v, ok := db.Get(p, ycsb.KeyBytes(150)); !ok || !ycsb.CheckValue(150, v) {
			t.Fatal("re-inserted key missing")
		}
	})
}

func TestTombstonesDroppedAtCompaction(t *testing.T) {
	e, ns := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := Open(p, e, Options{
			NS: ns, Mode: IODirectCached,
			MemtableBytes: 8 << 10, SSTTargetBytes: 64 << 10, Seed: 3,
		})
		for i := uint64(0); i < 400; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		for i := uint64(0); i < 400; i += 2 {
			db.Delete(p, ycsb.KeyBytes(i))
		}
		// Force everything through compaction into L1.
		db.Flush(p)
		for db.Levels()[0] > 0 {
			db.compactL0(p)
		}
		// Deleted keys gone, survivors intact.
		for i := uint64(0); i < 400; i++ {
			v, ok := db.Get(p, ycsb.KeyBytes(i))
			if i%2 == 0 {
				if ok {
					t.Fatalf("key %d visible after delete+compaction", i)
				}
			} else if !ok || !ycsb.CheckValue(i, v) {
				t.Fatalf("key %d lost", i)
			}
		}
		// The bottom level holds no tombstones: total L1 entries == survivors.
		total := 0
		for _, t2 := range db.levels[1] {
			total += t2.Entries()
		}
		if total != 200 {
			t.Errorf("L1 entries = %d, want 200 (tombstones dropped)", total)
		}
	})
}

func TestCompactionReclaimsSpace(t *testing.T) {
	// Old tables must be deleted after compaction: with a filesystem only
	// a little larger than the live dataset, sustained update churn would
	// exhaust space if replaced SSTs leaked.
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(24*mib, device.DefaultPMemConfig()))
	os := host.NewOS(e, disk, 8*mib)
	ns := &host.Namespace{OS: os, Direct: true}
	run1(e, func(p *engine.Proc) {
		db := Open(p, e, Options{
			NS: ns, Mode: IODirectCached,
			MemtableBytes: 64 << 10, SSTTargetBytes: 256 << 10, Seed: 5,
			WALBytes: 2 << 20,
		})
		// ~16 MB of churn through a <= 2 MB live set on a 24 MB disk.
		for i := uint64(0); i < 12000; i++ {
			db.Put(p, ycsb.KeyBytes(i%1000), ycsb.Value(i, 1000))
		}
		if db.Compactions < 3 {
			t.Fatalf("compactions = %d", db.Compactions)
		}
		for i := uint64(0); i < 1000; i++ {
			if _, ok := db.Get(p, ycsb.KeyBytes(i)); !ok {
				t.Fatalf("key %d missing after churn", i)
			}
		}
	})
}
