package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"aquila/internal/iface"
	"aquila/internal/metrics"
	"aquila/internal/obs"
	"aquila/internal/sim/engine"
	"aquila/internal/ycsb"
)

// Costs model the store's user-space software overheads in cycles. They are
// calibrated so the paper's Figure 7 decomposition reproduces: with a
// user-space cache, RocksDB spends ~15.3 K cycles in get processing, ~32 K
// in cache lookups/evictions and ~13 K in miss syscalls per random read.
type Costs struct {
	MemtableHop       uint64 // per skiplist pointer hop
	MemtableBase      uint64 // per memtable probe/insert
	BloomCheck        uint64 // per table filter probe
	IndexSearch       uint64 // per table index binary search
	BlockEntry        uint64 // per record visited in a block scan
	BlockDecode       uint64 // per block checksum/decode
	GetFinish         uint64 // per-get residual (version lookup, stats, pinning)
	MmapBlockOverhead uint64 // extra per-block work in mmap mode (no prefetch, pinning)
	PutFinish         uint64 // per-put residual
	CacheLookup       uint64 // block-cache probe under shard lock
	CacheInsert       uint64 // block-cache insert (allocation, LRU, refcount)
	CacheEvict        uint64 // per evicted block
	WALAppend         uint64 // per WAL record, excluding the device write
	IterNext          uint64 // per merged-iterator step
}

// DefaultCosts returns the calibrated cost table.
func DefaultCosts() Costs {
	return Costs{
		MemtableHop:       35,
		MemtableBase:      900,
		BloomCheck:        450,
		IndexSearch:       900,
		BlockEntry:        220,
		BlockDecode:       1700,
		GetFinish:         8000,
		PutFinish:         2500,
		CacheLookup:       4500,
		CacheInsert:       20000,
		CacheEvict:        10000,
		MmapBlockOverhead: 2500,
		WALAppend:         1200,
		IterNext:          320,
	}
}

// IOMode selects how the store reaches its tables (§5).
type IOMode int

// The three RocksDB configurations the paper evaluates.
const (
	// IODirectCached: O_DIRECT reads with a user-space block cache — the
	// recommended RocksDB configuration ("read/write" in Fig 5).
	IODirectCached IOMode = iota
	// IOBuffered: buffered read/write through the kernel page cache.
	IOBuffered
	// IOMmap: tables are memory-mapped; reads are loads ("mmap"/Aquila).
	IOMmap
)

// Options configure a DB.
type Options struct {
	// NS is the world's namespace (Linux direct/buffered or Aquila).
	NS iface.Namespace
	// Mode selects the table read path.
	Mode IOMode
	// BlockCacheBytes sizes the user-space cache (IODirectCached only).
	BlockCacheBytes uint64
	// MemtableBytes flushes the memtable past this size (default 1 MB).
	MemtableBytes int
	// SSTTargetBytes bounds one table (default 8 MB; the paper's RocksDB
	// uses 64 MB — scaled with the datasets).
	SSTTargetBytes int
	// BlockBytes is the data-block size (default 4096).
	BlockBytes int
	// L0Trigger compacts L0 into L1 at this many tables (default 4).
	L0Trigger int
	// DisableWAL skips write-ahead logging.
	DisableWAL bool
	// WALBytes sizes the write-ahead log (default 64 MB). Filling it
	// forces a memtable flush.
	WALBytes uint64
	// Costs overrides the software cost table.
	Costs *Costs
	// Seed for the memtable skiplist.
	Seed int64
	// Registry receives the store's cycle breakdown (interned as
	// "lsm_cycles"). Nil keeps a private breakdown.
	Registry *obs.Registry
	// MetricsLabel distinguishes this store's series in a shared Registry.
	MetricsLabel string
}

// DB is the store.
type DB struct {
	opts  Options
	costs Costs
	e     *engine.Engine

	writeLock *engine.Mutex
	mem       *skiplist
	wal       iface.File
	walOff    uint64

	levels [][]*SST // levels[0] newest-first; levels[1..] sorted by smallest
	nextID uint64

	cache    *BlockCache
	manifest iface.File

	// Replayed counts WAL records recovered on reopen.
	Replayed uint64

	// Break attributes per-category cycles for the Fig 7 decomposition:
	// "get" (store processing), "put", "cache" (user-space block cache
	// management), "io" (read path to storage, including syscalls),
	// "mmio" (mapped reads: faults + loads).
	Break *metrics.Breakdown

	// Stats.
	Gets, Puts, Flushes, Compactions uint64
	BlocksRead                       uint64
}

// charge advances p as user time and attributes the cycles to a category.
func (db *DB) charge(p *engine.Proc, cat string, cycles uint64) {
	p.AdvanceUser(cycles)
	db.Break.Add(cat, cycles)
}

var _ ycsb.KV = (*DB)(nil)

// Open creates a DB in the given namespace.
func Open(p *engine.Proc, e *engine.Engine, opts Options) *DB {
	if opts.MemtableBytes == 0 {
		opts.MemtableBytes = 1 << 20
	}
	if opts.SSTTargetBytes == 0 {
		opts.SSTTargetBytes = 8 << 20
	}
	if opts.BlockBytes == 0 {
		opts.BlockBytes = 4096
	}
	if opts.L0Trigger == 0 {
		opts.L0Trigger = 4
	}
	costs := DefaultCosts()
	if opts.Costs != nil {
		costs = *opts.Costs
	}
	db := &DB{
		opts:      opts,
		costs:     costs,
		e:         e,
		writeLock: engine.NewMutex(e, "lsm_write"),
		mem:       newSkiplist(opts.Seed + 1),
		levels:    make([][]*SST, 4),
	}
	if opts.Registry != nil {
		var labels []obs.Label
		if opts.MetricsLabel != "" {
			labels = append(labels, obs.L("world", opts.MetricsLabel))
		}
		db.Break = opts.Registry.Breakdown("lsm_cycles", labels...)
	} else {
		db.Break = metrics.NewBreakdown()
	}
	if opts.Mode == IODirectCached {
		cap := opts.BlockCacheBytes
		if cap == 0 {
			cap = 32 << 20
		}
		db.cache = NewBlockCache(e, cap, costs)
	}
	if !opts.DisableWAL {
		walBytes := opts.WALBytes
		if walBytes == 0 {
			walBytes = 64 << 20
		}
		if opts.NS.Exists("WAL") {
			db.wal = opts.NS.Open(p, "WAL")
		} else {
			db.wal = opts.NS.Create(p, "WAL", walBytes)
		}
		if opts.NS.Exists(manifestName) {
			db.manifest = opts.NS.Open(p, manifestName)
		} else {
			db.manifest = opts.NS.Create(p, manifestName, 1<<20)
		}
	}
	return db
}

// Cache exposes the block cache (nil unless IODirectCached).
func (db *DB) Cache() *BlockCache { return db.cache }

// Levels returns per-level table counts (tests/stats).
func (db *DB) Levels() []int {
	out := make([]int, len(db.levels))
	for i, l := range db.levels {
		out[i] = len(l)
	}
	return out
}

// mmio reports whether tables are memory-mapped.
func (db *DB) mmio() bool { return db.opts.Mode == IOMmap }

// tombstone is the value encoding of a deletion. Real LSMs flag the record
// header; a reserved single-byte value keeps the on-disk format unchanged.
var tombstone = []byte{0xDE}

func isTombstone(v []byte) bool { return len(v) == 1 && v[0] == 0xDE }

// Delete removes a key by writing a tombstone; the key disappears from gets
// and scans immediately and from disk when compaction drops the tombstone
// at the bottom level.
func (db *DB) Delete(p *engine.Proc, key []byte) {
	db.put(p, key, tombstone)
}

// Put inserts or updates a record.
func (db *DB) Put(p *engine.Proc, key, value []byte) {
	if isTombstone(value) {
		panic("lsm: value collides with the tombstone encoding")
	}
	db.put(p, key, value)
}

func (db *DB) put(p *engine.Proc, key, value []byte) {
	p.BeginSpan("kv.put")
	defer p.EndSpan()
	db.writeLock.Lock(p)
	db.Puts++
	if db.wal != nil {
		// Record plus a 4-byte zero terminator; the next append
		// overwrites the terminator, so replay always finds a clean end.
		rec := make([]byte, 4+len(key)+len(value)+4)
		binary.LittleEndian.PutUint16(rec, uint16(len(key)))
		binary.LittleEndian.PutUint16(rec[2:], uint16(len(value)))
		copy(rec[4:], key)
		copy(rec[4+len(key):], value)
		db.charge(p, "put", db.costs.WALAppend)
		if db.walOff+uint64(len(rec)) > db.wal.Size() {
			db.flushLocked(p) // out of log space: flush resets the WAL
		}
		db.wal.Pwrite(p, rec, db.walOff)
		db.walOff += uint64(len(rec)) - 4
	}
	hops := db.mem.put(append([]byte(nil), key...), append([]byte(nil), value...))
	db.charge(p, "put", db.costs.MemtableBase+db.costs.MemtableHop*uint64(hops)+db.costs.PutFinish)
	if db.mem.size >= db.opts.MemtableBytes {
		db.flushLocked(p)
	}
	db.writeLock.Unlock(p)
}

// Get returns the newest value for key.
func (db *DB) Get(p *engine.Proc, key []byte) ([]byte, bool) {
	p.BeginSpan("kv.get")
	defer p.EndSpan()
	db.Gets++
	v, ok, hops := db.mem.get(key)
	db.charge(p, "get", db.costs.MemtableBase+db.costs.MemtableHop*uint64(hops))
	if ok {
		db.charge(p, "get", db.costs.GetFinish)
		if isTombstone(v) {
			return nil, false
		}
		return v, true
	}
	// L0: newest first, ranges overlap.
	for _, t := range db.levels[0] {
		if v, ok := db.searchTable(p, t, key); ok {
			db.charge(p, "get", db.costs.GetFinish)
			if isTombstone(v) {
				return nil, false
			}
			return v, true
		}
	}
	// L1+: non-overlapping, binary search by range.
	for lvl := 1; lvl < len(db.levels); lvl++ {
		tables := db.levels[lvl]
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(tables[i].largest, key) >= 0
		})
		if i < len(tables) && tables[i].contains(key) {
			if v, ok := db.searchTable(p, tables[i], key); ok {
				db.charge(p, "get", db.costs.GetFinish)
				if isTombstone(v) {
					return nil, false
				}
				return v, true
			}
		}
	}
	db.charge(p, "get", db.costs.GetFinish)
	return nil, false
}

// searchTable probes one SST.
func (db *DB) searchTable(p *engine.Proc, t *SST, key []byte) ([]byte, bool) {
	db.charge(p, "get", db.costs.BloomCheck)
	if !t.filter.mayContain(key) {
		return nil, false
	}
	db.charge(p, "get", db.costs.IndexSearch)
	blkIdx := t.blockFor(key)
	blk := db.readBlock(p, t, uint64(blkIdx))
	var out []byte
	found := false
	visited := scanBlock(blk, func(k, v []byte) bool {
		cmp := bytes.Compare(k, key)
		if cmp == 0 {
			out = append([]byte(nil), v...)
			found = true
			return false
		}
		return cmp < 0
	})
	db.charge(p, "get", db.costs.BlockEntry*uint64(visited))
	return out, found
}

// readBlock fetches one data block through the configured I/O mode.
func (db *DB) readBlock(p *engine.Proc, t *SST, blkIdx uint64) []byte {
	db.BlocksRead++
	off := blkIdx * uint64(db.opts.BlockBytes)
	if db.mmio() {
		// mmio: a load; hits cost nothing beyond the copy.
		buf := make([]byte, db.opts.BlockBytes)
		t0 := p.Now()
		t.mapping.Load(p, off, buf)
		db.Break.Add("mmio", p.Now()-t0)
		db.charge(p, "get", db.costs.MmapBlockOverhead)
		return buf
	}
	if db.cache != nil {
		t0 := p.Now()
		blk := db.cache.Get(p, t.id, blkIdx)
		db.Break.Add("cache", p.Now()-t0)
		if blk != nil {
			return blk
		}
		buf := make([]byte, db.opts.BlockBytes)
		t0 = p.Now()
		t.file.Pread(p, buf, off)
		db.Break.Add("io", p.Now()-t0)
		db.charge(p, "get", db.costs.BlockDecode)
		t0 = p.Now()
		db.cache.Insert(p, t.id, blkIdx, buf)
		db.Break.Add("cache", p.Now()-t0)
		return buf
	}
	buf := make([]byte, db.opts.BlockBytes)
	t0 := p.Now()
	t.file.Pread(p, buf, off)
	db.Break.Add("io", p.Now()-t0)
	db.charge(p, "get", db.costs.BlockDecode)
	return buf
}

// Scan visits up to n records starting at startKey, returning the number
// seen (merged across memtable and all levels, newest version wins).
func (db *DB) Scan(p *engine.Proc, startKey []byte, n int) int {
	p.BeginSpan("kv.scan")
	defer p.EndSpan()
	it := db.newMergeIter(p, startKey)
	seen := 0
	for seen < n {
		_, v, ok := it.next(p)
		if !ok {
			break
		}
		db.charge(p, "get", db.costs.IterNext)
		if isTombstone(v) {
			continue
		}
		seen++
	}
	return seen
}

// Flush persists the memtable as an L0 table.
func (db *DB) Flush(p *engine.Proc) {
	db.writeLock.Lock(p)
	db.flushLocked(p)
	db.writeLock.Unlock(p)
}

func (db *DB) flushLocked(p *engine.Proc) {
	if db.mem.entries == 0 {
		return
	}
	p.BeginSpan("kv.flush")
	defer p.EndSpan()
	db.Flushes++
	b := newSSTBuilder(db.opts.BlockBytes)
	for n := db.mem.first(); n != nil; n = n.next[0] {
		b.add(n.key, n.value)
	}
	t := b.finish(p, db.opts.NS, db.sstName(), db.nextSSTID(), db.mmio())
	db.levels[0] = append([]*SST{t}, db.levels[0]...)
	db.mem = newSkiplist(db.opts.Seed + int64(db.nextID) + 1)
	db.walOff = 0
	if db.wal != nil {
		db.wal.Pwrite(p, []byte{0, 0, 0, 0}, 0) // truncate the log
	}
	if len(db.levels[0]) >= db.opts.L0Trigger {
		db.compactL0(p)
	}
	db.writeManifest(p)
}

func (db *DB) nextSSTID() uint64 {
	db.nextID++
	return db.nextID
}

func (db *DB) sstName() string { return fmt.Sprintf("sst-%06d", db.nextID+1) }

// compactL0 merges all of L0 with L1 into a fresh L1 and deletes the
// replaced tables, returning their space to the namespace.
func (db *DB) compactL0(p *engine.Proc) {
	p.BeginSpan("kv.compact")
	defer p.EndSpan()
	db.Compactions++
	// Sources: L0 newest-first then L1 (older priority).
	var sources []*SST
	sources = append(sources, db.levels[0]...)
	sources = append(sources, db.levels[1]...)
	merged := db.mergeTables(p, sources)
	db.levels[0] = nil
	db.levels[1] = merged
	for _, t := range sources {
		if t.mapping != nil {
			t.mapping.Munmap(p)
			t.mapping = nil
		}
		db.opts.NS.Delete(p, t.file.Name())
	}
}

// mergeTables k-way merges tables (earlier sources win on duplicate keys)
// into target-size tables.
func (db *DB) mergeTables(p *engine.Proc, sources []*SST) []*SST {
	iters := make([]*sstIter, len(sources))
	for i, t := range sources {
		iters[i] = newSSTIter(db, t, nil)
	}
	h := &iterHeap{}
	for pri, it := range iters {
		if k, v, ok := it.current(p); ok {
			h.push(heapItem{k, v, pri, it})
		}
	}
	var out []*SST
	b := newSSTBuilder(db.opts.BlockBytes)
	var lastKey []byte
	emit := func(k, v []byte) {
		if b.estimatedSize() >= db.opts.SSTTargetBytes {
			out = append(out, b.finish(p, db.opts.NS, db.sstName(), db.nextSSTID(), db.mmio()))
			b = newSSTBuilder(db.opts.BlockBytes)
		}
		b.add(k, v)
	}
	for h.len() > 0 {
		item := h.pop()
		if lastKey == nil || !bytes.Equal(item.key, lastKey) {
			// The merged output is the bottom level: tombstones have
			// shadowed every older version and can be dropped.
			if !isTombstone(item.value) {
				emit(item.key, item.value)
			}
			lastKey = append(lastKey[:0], item.key...)
		}
		item.it.advance(p)
		if k, v, ok := item.it.current(p); ok {
			h.push(heapItem{k, v, item.pri, item.it})
		}
	}
	if b.entries > 0 {
		out = append(out, b.finish(p, db.opts.NS, db.sstName(), db.nextSSTID(), db.mmio()))
	}
	return out
}

// BulkLoad writes `records` pre-sorted records straight into L1 (the
// standard trick for building read-only evaluation datasets quickly).
func (db *DB) BulkLoad(p *engine.Proc, records uint64, valueSize int) {
	b := newSSTBuilder(db.opts.BlockBytes)
	for id := uint64(0); id < records; id++ {
		if b.estimatedSize() >= db.opts.SSTTargetBytes {
			db.levels[1] = append(db.levels[1], b.finish(p, db.opts.NS, db.sstName(), db.nextSSTID(), db.mmio()))
			b = newSSTBuilder(db.opts.BlockBytes)
		}
		b.add(ycsb.KeyBytes(id), ycsb.Value(id, valueSize))
	}
	if b.entries > 0 {
		db.levels[1] = append(db.levels[1], b.finish(p, db.opts.NS, db.sstName(), db.nextSSTID(), db.mmio()))
	}
	db.writeManifest(p)
}
