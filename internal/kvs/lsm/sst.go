package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"aquila/internal/iface"
	"aquila/internal/sim/engine"
)

// sstMagic marks a valid table footer.
const sstMagic = 0x5354424C // "LBTS"

// footerSize is the fixed footer at the end of every SST.
const footerSize = 16

// SST is one static sorted table: data blocks, a block index and a bloom
// filter. Index and filter are pinned in memory once opened, as RocksDB
// does with its table metadata.
type SST struct {
	id         uint64
	file       iface.File
	mapping    iface.Mapping // non-nil in mmio mode
	blockSize  int
	blockCount int
	firstKeys  [][]byte
	filter     *bloom
	smallest   []byte
	largest    []byte
	entries    int
	dataBytes  uint64
}

// ID returns the table's id.
func (t *SST) ID() uint64 { return t.id }

// Entries returns the number of records.
func (t *SST) Entries() int { return t.entries }

// Smallest and Largest bound the table's key range.
func (t *SST) Smallest() []byte { return t.smallest }
func (t *SST) Largest() []byte  { return t.largest }

// sstBuilder accumulates sorted records into an in-memory image and writes
// it out in one pass.
type sstBuilder struct {
	blockSize int
	buf       []byte
	blockFill int
	firstKeys [][]byte
	keys      [][]byte
	smallest  []byte
	largest   []byte
	entries   int
}

func newSSTBuilder(blockSize int) *sstBuilder {
	return &sstBuilder{blockSize: blockSize}
}

// add appends a record; keys must arrive in strictly ascending order.
func (b *sstBuilder) add(key, value []byte) {
	need := 4 + len(key) + len(value)
	if need > b.blockSize {
		panic(fmt.Sprintf("lsm: record of %d bytes exceeds block size %d", need, b.blockSize))
	}
	if b.blockFill == 0 || b.blockFill+need > b.blockSize {
		// Start a new block: pad the previous one.
		if b.blockFill > 0 {
			b.buf = append(b.buf, make([]byte, b.blockSize-b.blockFill)...)
		}
		b.blockFill = 0
		b.firstKeys = append(b.firstKeys, append([]byte(nil), key...))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(value)))
	b.buf = append(b.buf, hdr[:]...)
	b.buf = append(b.buf, key...)
	b.buf = append(b.buf, value...)
	b.blockFill += need
	if b.smallest == nil {
		b.smallest = append([]byte(nil), key...)
	}
	b.largest = append(b.largest[:0], key...)
	b.keys = append(b.keys, append([]byte(nil), key...))
	b.entries++
}

// estimatedSize returns the current data size.
func (b *sstBuilder) estimatedSize() int { return len(b.buf) }

// finish writes the table image to a file created through ns and returns the
// opened SST.
func (b *sstBuilder) finish(p *engine.Proc, ns iface.Namespace, name string, id uint64, mmio bool) *SST {
	if b.blockFill > 0 {
		b.buf = append(b.buf, make([]byte, b.blockSize-b.blockFill)...)
	}
	dataLen := len(b.buf)
	// Index region.
	idx := make([]byte, 0, 16*len(b.firstKeys))
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.firstKeys)))
	idx = append(idx, tmp[:]...)
	for _, k := range b.firstKeys {
		var kl [2]byte
		binary.LittleEndian.PutUint16(kl[:], uint16(len(k)))
		idx = append(idx, kl[:]...)
		idx = append(idx, k...)
	}
	// Bloom region.
	filter := newBloom(b.entries, 10)
	for _, k := range b.keys {
		filter.add(k)
	}
	bl := filter.marshal()

	image := append(b.buf, idx...)
	image = append(image, bl...)
	var footer [footerSize]byte
	binary.LittleEndian.PutUint32(footer[0:], uint32(dataLen))
	binary.LittleEndian.PutUint32(footer[4:], uint32(dataLen+len(idx)))
	binary.LittleEndian.PutUint32(footer[8:], uint32(len(image)))
	binary.LittleEndian.PutUint32(footer[12:], sstMagic)
	image = append(image, footer[:]...)

	f := ns.Create(p, name, uint64(len(image)))
	// Write in 1 MB chunks, as compactions issue large sequential I/Os.
	const chunk = 1 << 20
	for off := 0; off < len(image); off += chunk {
		end := off + chunk
		if end > len(image) {
			end = len(image)
		}
		f.Pwrite(p, image[off:end], uint64(off))
	}
	f.Fsync(p)

	t := &SST{
		id: id, file: f, blockSize: b.blockSize,
		blockCount: len(b.firstKeys), firstKeys: b.firstKeys,
		filter: filter, smallest: b.smallest,
		largest: append([]byte(nil), b.largest...), entries: b.entries,
		dataBytes: uint64(dataLen),
	}
	if mmio {
		t.mapping = ns.Mmap(p, f, uint64(len(image)))
	}
	return t
}

// openSST loads an existing table's metadata.
func openSST(p *engine.Proc, ns iface.Namespace, name string, id uint64, blockSize int, mmio bool) *SST {
	f := ns.Open(p, name)
	size := f.Size()
	var footer [footerSize]byte
	f.Pread(p, footer[:], size-footerSize)
	if binary.LittleEndian.Uint32(footer[12:]) != sstMagic {
		panic(fmt.Sprintf("lsm: bad magic in %s", name))
	}
	dataLen := binary.LittleEndian.Uint32(footer[0:])
	bloomOff := binary.LittleEndian.Uint32(footer[4:])
	imgLen := binary.LittleEndian.Uint32(footer[8:])
	meta := make([]byte, imgLen-dataLen)
	f.Pread(p, meta, uint64(dataLen))

	idxLen := bloomOff - dataLen
	idx := meta[:idxLen]
	nBlocks := binary.LittleEndian.Uint32(idx)
	pos := 4
	firstKeys := make([][]byte, 0, nBlocks)
	for i := uint32(0); i < nBlocks; i++ {
		kl := int(binary.LittleEndian.Uint16(idx[pos:]))
		pos += 2
		firstKeys = append(firstKeys, append([]byte(nil), idx[pos:pos+kl]...))
		pos += kl
	}
	filter, _ := unmarshalBloom(meta[idxLen:])

	t := &SST{
		id: id, file: f, blockSize: blockSize,
		blockCount: int(nBlocks), firstKeys: firstKeys, filter: filter,
		dataBytes: uint64(dataLen),
	}
	if nBlocks > 0 {
		t.smallest = firstKeys[0]
	}
	if mmio {
		t.mapping = ns.Mmap(p, f, size)
	}
	// Largest key: scan the last block sequentially.
	if nBlocks > 0 {
		blk := make([]byte, blockSize)
		f.Pread(p, blk, uint64(nBlocks-1)*uint64(blockSize))
		scanBlock(blk, func(key, value []byte) bool {
			t.largest = append(t.largest[:0], key...)
			return true
		})
		// The exact record count is not persisted; reopened tables
		// report -1 (metadata consumers treat it as unknown).
		t.entries = -1
	}
	return t
}

// scanBlock walks a block's records in order, calling fn until it returns
// false. Returns the number of entries visited.
func scanBlock(blk []byte, fn func(key, value []byte) bool) int {
	pos, n := 0, 0
	for pos+4 <= len(blk) {
		kl := int(binary.LittleEndian.Uint16(blk[pos:]))
		vl := int(binary.LittleEndian.Uint16(blk[pos+2:]))
		if kl == 0 {
			break
		}
		pos += 4
		n++
		if !fn(blk[pos:pos+kl], blk[pos+kl:pos+kl+vl]) {
			break
		}
		pos += kl + vl
	}
	return n
}

// blockFor returns the index of the block that may contain key.
func (t *SST) blockFor(key []byte) int {
	// First block whose firstKey > key, minus one.
	i := sort.Search(t.blockCount, func(i int) bool {
		return bytes.Compare(t.firstKeys[i], key) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// contains reports whether key falls in the table's range.
func (t *SST) contains(key []byte) bool {
	return bytes.Compare(key, t.smallest) >= 0 && bytes.Compare(key, t.largest) <= 0
}
