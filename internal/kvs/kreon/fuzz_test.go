package kreon

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"aquila/internal/host"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/ycsb"
)

// FuzzKreonRecover drives Reopen's log replay with an arbitrary post-msync
// log tail: the fuzz input is spliced after a known committed prefix and the
// superblock is forged to cover it, exactly the shape a crash leaves when the
// head advanced but the tail bytes did not all land. Whatever the tail holds —
// torn records, CRC-valid garbage, headers whose lengths run past the window —
// recovery must not panic, must replay the committed prefix intact, must
// truncate everything it cannot validate, and must leave a store that still
// serves reads and writes.
func FuzzKreonRecover(f *testing.F) {
	// Checked-in seed corpus: raw tail images under internal/kvs/testdata.
	seeds, _ := filepath.Glob(filepath.Join("..", "testdata", "*.bin"))
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// In-code seeds for the structured cases a file can't express as readably:
	// a fully valid record, one with a flipped CRC, and one whose declared
	// value length runs past the log head.
	f.Add(validRecord(ycsb.KeyBytes(7), []byte("value")))
	bad := validRecord(ycsb.KeyBytes(8), []byte("value"))
	bad[4] ^= 0xFF
	f.Add(bad)
	oversize := validRecord(ycsb.KeyBytes(9), []byte("v"))
	binary.LittleEndian.PutUint16(oversize[2:], 0xFFFF)
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, tail []byte) {
		if len(tail) > 64<<10 {
			return // the log window under test is small; huge inputs add nothing
		}
		e := engine.New(engine.Config{NumCPUs: 2, Seed: 1})
		disk := host.NewPMemDisk("pmem0", device.NewPMem(64<<20, device.DefaultPMemConfig()))
		osim := host.NewOS(e, disk, 16<<20)
		e.Spawn(0, "fuzz", func(p *engine.Proc) {
			opts := Options{LogBytes: 4 << 20, IndexBytes: 1 << 20, L0Entries: 100000}
			size := uint64(pageSize) + opts.LogBytes + opts.IndexBytes
			fl := osim.FS.Create(p, "kreon.data", size)
			m := osim.MmapKmmap(p, fl, size)
			db := OpenWithMapping(p, opts, m)
			const nprefix = 5
			for i := uint64(0); i < nprefix; i++ {
				db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 64))
			}
			db.Msync(p)
			prefixEnd := db.logHead

			// Forge the crash state: the tail bytes land in the log window and
			// the superblock's head covers them, as if the head sync completed
			// while the record writes may not have.
			if prefixEnd+uint64(len(tail)) > db.idxBase {
				return
			}
			if len(tail) > 0 {
				db.m.Store(p, prefixEnd, tail)
			}
			db.logHead = prefixEnd + uint64(len(tail))
			db.writeSuperblock(p)
			db.m.Msync(p)

			db2 := Reopen(p, opts, m)
			if db2.Recov.FreshStore {
				t.Fatal("valid superblock reported as fresh store")
			}
			if db2.Recov.ReplayedRecords < nprefix {
				t.Fatalf("replayed %d records, committed prefix has %d",
					db2.Recov.ReplayedRecords, nprefix)
			}
			if db2.logHead < prefixEnd || db2.logHead > prefixEnd+uint64(len(tail)) {
				t.Fatalf("recovered logHead %d outside [%d, %d]",
					db2.logHead, prefixEnd, prefixEnd+uint64(len(tail)))
			}
			if db2.Recov.TruncatedBytes > uint64(len(tail)) {
				t.Fatalf("truncated %d bytes from a %d-byte tail",
					db2.Recov.TruncatedBytes, len(tail))
			}
			for i := uint64(0); i < nprefix; i++ {
				v, ok := db2.Get(p, ycsb.KeyBytes(i))
				if !ok || !ycsb.CheckValue(i, v) {
					t.Fatalf("committed key %d lost after recovery", i)
				}
			}
			// The store must keep working on top of whatever was truncated.
			db2.Put(p, ycsb.KeyBytes(100), ycsb.Value(100, 64))
			if v, ok := db2.Get(p, ycsb.KeyBytes(100)); !ok || !ycsb.CheckValue(100, v) {
				t.Fatal("post-recovery put/get failed")
			}
		})
		e.Run()
	})
}

// validRecord builds one well-formed value-log record.
func validRecord(key, value []byte) []byte {
	if len(key) != keySize {
		key = normalizeKey(key)
	}
	rec := make([]byte, recHeader+len(key)+len(value))
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	binary.LittleEndian.PutUint16(rec[2:], uint16(len(value)))
	copy(rec[recHeader:], key)
	copy(rec[recHeader+len(key):], value)
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[recHeader:]))
	return rec
}
