package kreon

import (
	"testing"

	"aquila/internal/host"
	"aquila/internal/iface"
	"aquila/internal/sim/device"
	"aquila/internal/sim/engine"
	"aquila/internal/ycsb"
)

const mib = 1 << 20

func world(cacheBytes uint64) (*engine.Engine, *host.OS) {
	e := engine.New(engine.Config{NumCPUs: 4, Seed: 1})
	disk := host.NewPMemDisk("pmem0", device.NewPMem(1<<30, device.DefaultPMemConfig()))
	return e, host.NewOS(e, disk, cacheBytes)
}

func run1(e *engine.Engine, fn func(p *engine.Proc)) {
	e.Spawn(0, "t", fn)
	e.Run()
}

func openKmmap(p *engine.Proc, os *host.OS, opts Options) *DB {
	size := uint64(4096) + 64<<20 + 16<<20
	f := os.FS.Create(p, "kreon.data", size)
	m := os.MmapKmmap(p, f, size)
	return OpenWithMapping(p, opts, m)
}

func TestPutGetL0(t *testing.T) {
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		ns := &host.Namespace{OS: os}
		db := Open(p, Options{NS: ns})
		for i := uint64(0); i < 100; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 200))
		}
		if db.L0Size() != 100 {
			t.Fatalf("L0 size = %d", db.L0Size())
		}
		for i := uint64(0); i < 100; i++ {
			v, ok := db.Get(p, ycsb.KeyBytes(i))
			if !ok || !ycsb.CheckValue(i, v) {
				t.Fatalf("get %d: ok=%v", i, ok)
			}
		}
		if _, ok := db.Get(p, ycsb.KeyBytes(999)); ok {
			t.Fatal("missing key found")
		}
	})
}

func TestSpillBuildsTree(t *testing.T) {
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openKmmap(p, os, Options{L0Entries: 500})
		const n = 1600 // 3+ spills
		for i := uint64(0); i < n; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		if db.Spills == 0 {
			t.Fatal("no spills")
		}
		if db.TreeEntries() == 0 {
			t.Fatal("tree empty after spill")
		}
		// All keys readable: some from L0, most from the tree.
		for i := uint64(0); i < n; i++ {
			v, ok := db.Get(p, ycsb.KeyBytes(i))
			if !ok || !ycsb.CheckValue(i, v) {
				t.Fatalf("get %d after spill: ok=%v", i, ok)
			}
		}
	})
}

func TestUpdatesWinAfterSpill(t *testing.T) {
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openKmmap(p, os, Options{L0Entries: 300})
		for i := uint64(0); i < 600; i++ {
			db.Put(p, ycsb.KeyBytes(i%300), ycsb.Value(i, 100))
		}
		// Record i holds value id i+300 (second round of updates).
		for i := uint64(0); i < 300; i++ {
			v, ok := db.Get(p, ycsb.KeyBytes(i))
			if !ok || !ycsb.CheckValue(i+300, v) {
				t.Fatalf("key %d: stale or missing", i)
			}
		}
	})
}

func TestScanMergesL0AndTree(t *testing.T) {
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openKmmap(p, os, Options{L0Entries: 200})
		// Even keys go first (spilled), odd keys stay in L0.
		for i := uint64(0); i < 400; i += 2 {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 50))
		}
		db.spill(p)
		for i := uint64(1); i < 100; i += 2 {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 50))
		}
		got := db.Scan(p, ycsb.KeyBytes(0), 99)
		if got != 99 {
			t.Errorf("scan = %d, want 99", got)
		}
	})
}

func TestKreonOverAquilaNamespace(t *testing.T) {
	// The same store code runs over Aquila's namespace unmodified.
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		ns := &host.Namespace{OS: os}
		_ = ns
	})
	// Aquila world is exercised in the harness tests; here we confirm the
	// store works over plain Linux mmap namespace as the common subset.
	e2, os2 := world(64 * mib)
	run1(e2, func(p *engine.Proc) {
		db := Open(p, Options{NS: &host.Namespace{OS: os2}, L0Entries: 100})
		for i := uint64(0); i < 250; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		db.Msync(p)
		for i := uint64(0); i < 250; i++ {
			if _, ok := db.Get(p, ycsb.KeyBytes(i)); !ok {
				t.Fatalf("get %d failed", i)
			}
		}
	})
}

func TestKreonYCSBAllWorkloads(t *testing.T) {
	for _, w := range ycsb.All {
		w := w
		t.Run(string(w), func(t *testing.T) {
			e, os := world(64 * mib)
			run1(e, func(p *engine.Proc) {
				db := openKmmap(p, os, Options{L0Entries: 2000})
				const records = 500
				for i := uint64(0); i < records; i++ {
					db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
				}
				g := ycsb.NewGenerator(ycsb.Config{
					Workload: w, Records: records, ValueSize: 100, Seed: 5,
				})
				res := ycsb.RunThread(p, db, g, 200)
				if res.Misses != 0 {
					t.Errorf("workload %c: %d read misses", w, res.Misses)
				}
			})
		})
	}
}

func TestKmmapMappingSkipsReadAround(t *testing.T) {
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		f := os.FS.Create(p, "k", 4*mib)
		m := os.MmapKmmap(p, f, 4*mib)
		m.Load(p, 0, make([]byte, 8))
		if got := os.Cache.Resident(); got != 1 {
			t.Errorf("kmmap fault brought %d pages, want 1", got)
		}
		var _ iface.Mapping = m
	})
}

func TestKreonRecoveryToLastMsync(t *testing.T) {
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		size := uint64(4096) + 64<<20 + 16<<20
		f := os.FS.Create(p, "kreon.data", size)
		m := os.MmapKmmap(p, f, size)
		opts := Options{L0Entries: 300}
		db := OpenWithMapping(p, opts, m)
		// Spilled data + an L0 tail, then msync.
		for i := uint64(0); i < 800; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		if db.Spills == 0 || db.L0Size() == 0 {
			t.Fatalf("setup: spills=%d l0=%d", db.Spills, db.L0Size())
		}
		db.Msync(p)
		// Post-msync writes that will be lost by the crash.
		db.Put(p, ycsb.KeyBytes(9000), ycsb.Value(9000, 100))

		// "Crash": recover from the same mapping.
		db2 := Reopen(p, opts, m)
		if db2.TreeEntries() != db.TreeEntries() {
			t.Errorf("tree entries %d, want %d", db2.TreeEntries(), db.TreeEntries())
		}
		for i := uint64(0); i < 800; i++ {
			v, ok := db2.Get(p, ycsb.KeyBytes(i))
			if !ok || !ycsb.CheckValue(i, v) {
				t.Fatalf("key %d lost after recovery", i)
			}
		}
		// The unsynced record is gone (durability = last msync).
		if _, ok := db2.Get(p, ycsb.KeyBytes(9000)); ok {
			t.Error("unsynced record survived a crash")
		}
		// The store keeps working after recovery.
		db2.Put(p, ycsb.KeyBytes(800), ycsb.Value(800, 100))
		if v, ok := db2.Get(p, ycsb.KeyBytes(800)); !ok || !ycsb.CheckValue(800, v) {
			t.Error("post-recovery put failed")
		}
	})
}

func TestKreonReopenWithoutSuperblockIsEmpty(t *testing.T) {
	// A crash before the first msync leaves no superblock; reopening such an
	// image must yield a working empty store, never a panic or garbage reads.
	e, os := world(16 * mib)
	run1(e, func(p *engine.Proc) {
		size := uint64(4096) + 8<<20 + 4<<20
		f := os.FS.Create(p, "fresh.data", size)
		m := os.MmapKmmap(p, f, size)
		db := Reopen(p, Options{LogBytes: 8 << 20, IndexBytes: 4 << 20}, m)
		if !db.Recov.FreshStore {
			t.Error("FreshStore not flagged on reopen of never-synced store")
		}
		if db.L0Size() != 0 || db.TreeEntries() != 0 {
			t.Errorf("recovered store not empty: L0=%d tree=%d", db.L0Size(), db.TreeEntries())
		}
		if _, ok := db.Get(p, ycsb.KeyBytes(1)); ok {
			t.Error("empty store served a key")
		}
		db.Put(p, ycsb.KeyBytes(1), ycsb.Value(1, 50))
		if v, ok := db.Get(p, ycsb.KeyBytes(1)); !ok || !ycsb.CheckValue(1, v) {
			t.Error("put/get on recovered empty store failed")
		}
	})
}

func TestKreonRecoveryTruncatesCorruptTail(t *testing.T) {
	// Tail garbage past the committed prefix — a torn or never-completed
	// append — must be detected by CRC and truncated, never served.
	e, os := world(16 * mib)
	run1(e, func(p *engine.Proc) {
		db := openKmmap(p, os, Options{L0Entries: 100000})
		for i := uint64(0); i < 50; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 100))
		}
		db.Msync(p)
		goodHead := db.logHead
		// Forge a post-msync state: append two more records, then corrupt the
		// first one's payload in place (as a torn in-flight write would) and
		// advance the superblock as if the log sync had completed but the
		// record bytes had not.
		db.Put(p, ycsb.KeyBytes(50), ycsb.Value(50, 100))
		db.Put(p, ycsb.KeyBytes(51), ycsb.Value(51, 100))
		db.m.Store(p, goodHead+recHeader+4, []byte{0xde, 0xad, 0xbe, 0xef})
		db.writeSuperblock(p)
		db.m.Msync(p)

		db2 := Reopen(p, Options{L0Entries: 100000}, db.m)
		if db2.Recov.FreshStore {
			t.Fatal("valid superblock reported as fresh store")
		}
		if db2.Recov.TruncatedBytes == 0 {
			t.Fatal("corrupt tail not truncated")
		}
		if db2.Recov.ReplayedRecords != 50 {
			t.Fatalf("replayed %d records, want 50", db2.Recov.ReplayedRecords)
		}
		if db2.logHead != goodHead {
			t.Fatalf("logHead %d after truncation, want %d", db2.logHead, goodHead)
		}
		// Committed prefix intact, corrupt tail never served.
		for i := uint64(0); i < 50; i++ {
			v, ok := db2.Get(p, ycsb.KeyBytes(i))
			if !ok || !ycsb.CheckValue(i, v) {
				t.Fatalf("committed key %d lost after truncating recovery", i)
			}
		}
		if _, ok := db2.Get(p, ycsb.KeyBytes(50)); ok {
			t.Error("corrupt record served")
		}
		// The store keeps working: the truncated tail is overwritten.
		db2.Put(p, ycsb.KeyBytes(60), ycsb.Value(60, 100))
		if v, ok := db2.Get(p, ycsb.KeyBytes(60)); !ok || !ycsb.CheckValue(60, v) {
			t.Error("post-truncation put failed")
		}
	})
}

func TestKreonRangedMsyncCheaperThanFull(t *testing.T) {
	// The §7.2 claim behind kmmap's custom msync: syncing only the
	// appended windows beats flushing the whole store's dirty set after
	// the store has grown large.
	e, os := world(64 * mib)
	run1(e, func(p *engine.Proc) {
		db := openKmmap(p, os, Options{L0Entries: 100000})
		for i := uint64(0); i < 4000; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 1000))
		}
		db.Msync(p) // baseline both variants start clean
		// Append a small tail, then time each msync flavor.
		for i := uint64(4000); i < 4050; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 1000))
		}
		t0 := p.Now()
		db.Msync(p)
		ranged := p.Now() - t0
		for i := uint64(4050); i < 4100; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 1000))
		}
		t0 = p.Now()
		db.MsyncFull(p)
		full := p.Now() - t0
		if ranged >= full {
			t.Errorf("ranged msync (%d cycles) not cheaper than full (%d)", ranged, full)
		}
	})
}
