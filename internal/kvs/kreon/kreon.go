// Package kreon implements a Kreon-like persistent key-value store
// (Papagiannis et al., SoCC '18 / TOS '21), the second store the paper
// evaluates (§5, Fig 9). Unlike an SST-based LSM, Kreon appends all keys and
// values to a value log and indexes them with a B-tree per level; all device
// access goes through memory-mapped I/O in the common path, over either
// kmmap (its custom in-kernel path) or Aquila.
//
// The store lives in a single file: a superblock, a value-log region that
// grows forward, and an index region where immutable B-trees are bulk-built
// on every level-0 spill. Spills merge level 0 with the previous tree, so
// there is always at most one on-device level (the paper's Kreon uses more
// levels; one suffices for the evaluated workloads and keeps spills cheap at
// the scaled dataset sizes).
package kreon

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"sort"

	"aquila/internal/detutil"
	"aquila/internal/iface"
	"aquila/internal/sim/engine"
	"aquila/internal/ycsb"
)

// Fixed on-device geometry.
const (
	pageSize = 4096
	// keySize is the fixed key length (YCSB keys are 30 bytes, §6.1).
	keySize = 30
	// recHeader is the value-log record header: key length (u16), value
	// length (u16), CRC-32 of key+value (u32). The CRC lets recovery tell a
	// committed record from torn or never-completed tail garbage.
	recHeader = 8
	// leafEntrySize is key + log offset.
	leafEntrySize = keySize + 8
	// nodeHeader is count(u16) + isLeaf(u8) + pad.
	nodeHeader = 8
	// entriesPerNode is the B-tree fan-out at 4 KB nodes.
	entriesPerNode = (pageSize - nodeHeader) / leafEntrySize
)

// Costs model Kreon's (deliberately small) software overheads: no block
// cache, no decode stage — §5: "reduces I/O amplification and CPU cycles in
// the common path".
type Costs struct {
	GetBase   uint64 // per-get bookkeeping
	PutBase   uint64 // per-put bookkeeping (log reservation, L0 insert)
	NodeVisit uint64 // per B-tree node binary search
	L0Lookup  uint64 // level-0 in-memory index probe
	ScanStep  uint64 // per scanned record
}

// DefaultCosts returns the calibrated cost table.
func DefaultCosts() Costs {
	return Costs{GetBase: 1400, PutBase: 1900, NodeVisit: 380, L0Lookup: 600, ScanStep: 300}
}

// Options configure a store.
type Options struct {
	// NS is the world's namespace.
	NS iface.Namespace
	// Kmmap maps the file through the host's kmmap path instead of the
	// namespace default. The caller passes a pre-built mapping instead
	// (see OpenWithMapping); when nil, NS.Mmap is used.
	// LogBytes and IndexBytes size the two file regions.
	LogBytes   uint64
	IndexBytes uint64
	// L0Entries spills level 0 at this many keys (default 16384).
	L0Entries int
	Costs     *Costs
}

// DB is the store.
type DB struct {
	opts  Options
	costs Costs
	m     iface.Mapping

	logHead uint64 // next append offset (within log region)
	logBase uint64 // start of log region
	idxBase uint64 // start of index region
	idxHead uint64 // next node allocation offset

	l0      map[string]uint64 // key -> log offset
	rootOff uint64            // current B-tree root node (0: empty)
	treeN   int               // entries in the current tree
	// logCheckpoint marks the log position covered by the on-device tree;
	// recovery replays [checkpoint, logHead) into level 0.
	logCheckpoint uint64
	// lastSyncLog/lastSyncIdx mark how far the previous msync reached:
	// the custom ranged msync (§7.2) only syncs what grew since. The log
	// and index regions are append-only, so ranges never re-dirty.
	lastSyncLog uint64
	lastSyncIdx uint64
	// leafRegionEnd bounds the contiguous leaf allocation of the current
	// tree (set by bulkBuild; the leaf level doubles as the leaf chain).
	leafRegionEnd uint64

	// Stats.
	Gets, Puts, Spills uint64
	// Recov describes what the last Reopen found (zero if Open'd fresh).
	Recov RecoverStats
}

// RecoverStats summarizes a Reopen's recovery pass.
type RecoverStats struct {
	// FreshStore is set when no valid superblock was found (never msync'd,
	// or the crash predates the first sync): the store opens empty.
	FreshStore bool
	// ReplayedRecords counts committed log records re-indexed into level 0.
	ReplayedRecords int
	// TruncatedBytes is the length of the discarded log tail — records whose
	// CRC failed or that were cut short (torn or never-completed writes).
	TruncatedBytes uint64
}

var _ ycsb.KV = (*DB)(nil)

// Open creates the store's file through ns and maps it with ns.Mmap.
func Open(p *engine.Proc, opts Options) *DB {
	if opts.LogBytes == 0 {
		opts.LogBytes = 64 << 20
	}
	if opts.IndexBytes == 0 {
		opts.IndexBytes = 16 << 20
	}
	f := opts.NS.Create(p, "kreon.data", pageSize+opts.LogBytes+opts.IndexBytes)
	m := opts.NS.Mmap(p, f, pageSize+opts.LogBytes+opts.IndexBytes)
	return OpenWithMapping(p, opts, m)
}

// OpenWithMapping builds the store over an existing mapping (used to run
// over kmmap, which is created through a host-specific call).
func OpenWithMapping(p *engine.Proc, opts Options, m iface.Mapping) *DB {
	if opts.LogBytes == 0 {
		opts.LogBytes = 64 << 20
	}
	if opts.IndexBytes == 0 {
		opts.IndexBytes = 16 << 20
	}
	if opts.L0Entries == 0 {
		opts.L0Entries = 16384
	}
	costs := DefaultCosts()
	if opts.Costs != nil {
		costs = *opts.Costs
	}
	db := &DB{
		opts: opts, costs: costs, m: m,
		logBase: pageSize,
		idxBase: pageSize + opts.LogBytes,
		l0:      make(map[string]uint64),
	}
	db.logHead = db.logBase
	db.logCheckpoint = db.logBase
	db.idxHead = db.idxBase
	db.lastSyncLog = db.logBase
	db.lastSyncIdx = db.idxBase
	return db
}

// superblock layout (page 0): magic, logHead, logCheckpoint, idxHead,
// rootOff, treeN, leafRegionEnd.
const sbMagic = 0x4B52454F // "KREO"

// Msync persists outstanding pages and the superblock: the store recovers
// exactly to the last Msync (Kreon's CoW msync discipline, §7.2).
func (db *DB) writeSuperblock(p *engine.Proc) {
	sb := make([]byte, 52)
	binary.LittleEndian.PutUint32(sb[0:], sbMagic)
	binary.LittleEndian.PutUint64(sb[4:], db.logHead)
	binary.LittleEndian.PutUint64(sb[12:], db.logCheckpoint)
	binary.LittleEndian.PutUint64(sb[20:], db.idxHead)
	binary.LittleEndian.PutUint64(sb[28:], db.rootOff)
	binary.LittleEndian.PutUint64(sb[36:], uint64(db.treeN))
	binary.LittleEndian.PutUint64(sb[44:], db.leafRegionEnd)
	db.m.Store(p, 0, sb)
}

// Reopen recovers a store from its mapping: superblock state, then a
// CRC-validating replay of the un-spilled log window into level 0. Data
// written after the last Msync is lost, matching the durability contract of
// msync-based stores. Reopen never panics on a damaged image: a missing or
// foreign superblock opens an empty store (Recov.FreshStore), and a log tail
// that fails validation — torn sectors, never-completed appends — is
// truncated (Recov.TruncatedBytes) so garbage is never served.
//
// The superblock itself needs no checksum: it is 52 bytes inside the first
// 512-byte sector, and the device guarantees sector atomicity, so a crashed
// superblock write leaves either the old or the new superblock — never a mix.
func Reopen(p *engine.Proc, opts Options, m iface.Mapping) *DB {
	db := OpenWithMapping(p, opts, m)
	sb := make([]byte, 52)
	db.m.Load(p, 0, sb)
	if binary.LittleEndian.Uint32(sb[0:]) != sbMagic {
		db.Recov.FreshStore = true
		return db
	}
	logHead := binary.LittleEndian.Uint64(sb[4:])
	logCheckpoint := binary.LittleEndian.Uint64(sb[12:])
	idxHead := binary.LittleEndian.Uint64(sb[20:])
	if logHead < db.logBase || logHead > db.idxBase ||
		logCheckpoint < db.logBase || logCheckpoint > logHead ||
		idxHead < db.idxBase || idxHead > db.m.Size() {
		// Geometry mismatch (file reopened with different region sizes);
		// a crashed superblock write cannot cause this (sector atomicity).
		db.Recov.FreshStore = true
		return db
	}
	db.logHead = logHead
	db.logCheckpoint = logCheckpoint
	db.idxHead = idxHead
	db.rootOff = binary.LittleEndian.Uint64(sb[28:])
	db.treeN = int(binary.LittleEndian.Uint64(sb[36:]))
	db.leafRegionEnd = binary.LittleEndian.Uint64(sb[44:])
	// Replay the un-spilled log window into level 0, validating each record;
	// the first record that is cut short or fails its CRC ends the committed
	// prefix and the rest of the window is truncated.
	off := db.logCheckpoint
	for off < db.logHead {
		if off+recHeader > db.logHead {
			break
		}
		var hdr [recHeader]byte
		db.m.Load(p, off, hdr[:])
		kl := int(binary.LittleEndian.Uint16(hdr[0:]))
		vl := int(binary.LittleEndian.Uint16(hdr[2:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if kl == 0 || kl > keySize || off+recHeader+uint64(kl+vl) > db.logHead {
			break
		}
		kv := make([]byte, kl+vl)
		db.m.Load(p, off+recHeader, kv)
		if crc32.ChecksumIEEE(kv) != crc {
			break
		}
		db.l0[string(kv[:kl])] = off
		db.Recov.ReplayedRecords++
		off += recHeader + uint64(kl+vl)
	}
	if off < db.logHead {
		db.Recov.TruncatedBytes = db.logHead - off
		db.logHead = off
	}
	// Everything at or below the recovered heads is durable; only future
	// appends need syncing.
	db.lastSyncLog = db.logHead
	db.lastSyncIdx = db.idxHead
	return db
}

// L0Size returns the current level-0 entry count (tests).
func (db *DB) L0Size() int { return len(db.l0) }

// TreeEntries returns the entry count of the on-device tree (tests).
func (db *DB) TreeEntries() int { return db.treeN }

// Put appends the record to the value log and indexes it in level 0.
func (db *DB) Put(p *engine.Proc, key, value []byte) {
	p.BeginSpan("kv.put")
	defer p.EndSpan()
	db.Puts++
	if len(key) != keySize {
		key = normalizeKey(key)
	}
	rec := make([]byte, recHeader+len(key)+len(value))
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	binary.LittleEndian.PutUint16(rec[2:], uint16(len(value)))
	copy(rec[recHeader:], key)
	copy(rec[recHeader+len(key):], value)
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[recHeader:]))
	off := db.logHead
	if off+uint64(len(rec)) > db.idxBase {
		panic("kreon: value log full")
	}
	db.m.Store(p, off, rec)
	db.logHead += uint64(len(rec))
	db.l0[string(key)] = off
	p.AdvanceUser(db.costs.PutBase)
	if len(db.l0) >= db.opts.L0Entries {
		db.spill(p)
	}
}

// Get returns the newest value for key.
func (db *DB) Get(p *engine.Proc, key []byte) ([]byte, bool) {
	p.BeginSpan("kv.get")
	defer p.EndSpan()
	db.Gets++
	if len(key) != keySize {
		key = normalizeKey(key)
	}
	p.AdvanceUser(db.costs.GetBase + db.costs.L0Lookup)
	if off, ok := db.l0[string(key)]; ok {
		return db.readLog(p, off), true
	}
	if db.rootOff == 0 {
		return nil, false
	}
	off, ok := db.treeLookup(p, key)
	if !ok {
		return nil, false
	}
	return db.readLog(p, off), true
}

// Scan visits up to n records in key order starting at startKey.
func (db *DB) Scan(p *engine.Proc, startKey []byte, n int) int {
	p.BeginSpan("kv.scan")
	defer p.EndSpan()
	if len(startKey) != keySize {
		startKey = normalizeKey(startKey)
	}
	// Merge the sorted L0 keys with the tree's leaf chain.
	l0keys := make([]string, 0, len(db.l0))
	for _, k := range detutil.SortedKeys(db.l0) {
		if k >= string(startKey) {
			l0keys = append(l0keys, k)
		}
	}
	treeEntries := db.treeRange(p, startKey, n)
	seen := 0
	i, j := 0, 0
	var last string
	for seen < n && (i < len(l0keys) || j < len(treeEntries)) {
		var k string
		var off uint64
		takeL0 := j >= len(treeEntries) ||
			(i < len(l0keys) && l0keys[i] <= treeEntries[j].key)
		if takeL0 {
			k = l0keys[i]
			off = db.l0[k]
			i++
		} else {
			k = treeEntries[j].key
			off = treeEntries[j].off
			j++
		}
		if k == last {
			continue
		}
		last = k
		db.readLog(p, off)
		p.AdvanceUser(db.costs.ScanStep)
		seen++
	}
	return seen
}

// Msync persists outstanding log and index pages plus the superblock using
// Kreon's custom ranged msync (§7.2): only the superblock page and the
// append-only windows written since the previous Msync are flushed, instead
// of scanning every dirty page of the store.
//
// Ordering is the crash-consistency linchpin: the data windows reach their
// durability point *before* the superblock that references them. A crash
// anywhere inside Msync leaves the old superblock pointing at the old
// consistent state; the new heads become visible only once everything below
// them is durable. (Syncing the superblock first — as an earlier version did
// — let a crash between the two syncs persist heads that point at data still
// in the device's volatile tier.)
func (db *DB) Msync(p *engine.Proc) {
	p.BeginSpan("kv.msync")
	defer p.EndSpan()
	if db.logHead > db.lastSyncLog {
		db.m.MsyncRange(p, db.lastSyncLog, db.logHead-db.lastSyncLog)
		db.lastSyncLog = db.logHead
	}
	if db.idxHead > db.lastSyncIdx {
		db.m.MsyncRange(p, db.lastSyncIdx, db.idxHead-db.lastSyncIdx)
		db.lastSyncIdx = db.idxHead
	}
	db.writeSuperblock(p)
	db.m.MsyncRange(p, 0, pageSize) // superblock last
}

// MsyncFull flushes every dirty page of the mapping (the non-customized
// msync, kept for the ablation comparison). Two phases for the same ordering
// reason as Msync: a single full msync writes dirty pages in device order,
// which would put the superblock (page 0) first.
func (db *DB) MsyncFull(p *engine.Proc) {
	db.m.MsyncRange(p, pageSize, db.m.Size()-pageSize)
	db.writeSuperblock(p)
	db.m.MsyncRange(p, 0, pageSize)
}

// readLog fetches a record's value from the value log via mmio.
func (db *DB) readLog(p *engine.Proc, off uint64) []byte {
	var hdr [recHeader]byte
	db.m.Load(p, off, hdr[:])
	kl := int(binary.LittleEndian.Uint16(hdr[0:]))
	vl := int(binary.LittleEndian.Uint16(hdr[2:]))
	val := make([]byte, vl)
	db.m.Load(p, off+recHeader+uint64(kl), val)
	return val
}

// treeEntry is one (key, log offset) pair.
type treeEntry struct {
	key string
	off uint64
}

// nodeRef reads a B-tree node (one page) via mmio.
func (db *DB) readNode(p *engine.Proc, off uint64) []byte {
	buf := make([]byte, pageSize)
	db.m.Load(p, off, buf)
	p.AdvanceUser(db.costs.NodeVisit)
	return buf
}

func nodeCount(n []byte) int   { return int(binary.LittleEndian.Uint16(n)) }
func nodeIsLeaf(n []byte) bool { return n[2] == 1 }

func nodeKey(n []byte, i int) []byte {
	base := nodeHeader + i*leafEntrySize
	return n[base : base+keySize]
}

func nodeVal(n []byte, i int) uint64 {
	base := nodeHeader + i*leafEntrySize + keySize
	return binary.LittleEndian.Uint64(n[base : base+8])
}

// treeLookup walks the B-tree from the root to a leaf.
func (db *DB) treeLookup(p *engine.Proc, key []byte) (uint64, bool) {
	off := db.rootOff
	for {
		n := db.readNode(p, off)
		cnt := nodeCount(n)
		if cnt == 0 {
			return 0, false
		}
		// First entry with key > target, minus one.
		i := sort.Search(cnt, func(i int) bool {
			return bytes.Compare(nodeKey(n, i), key) > 0
		})
		if nodeIsLeaf(n) {
			if i == 0 {
				return 0, false
			}
			if bytes.Equal(nodeKey(n, i-1), key) {
				return nodeVal(n, i-1), true
			}
			return 0, false
		}
		if i == 0 {
			i = 1 // keys below the smallest separator go to child 0
		}
		off = nodeVal(n, i-1)
	}
}

// treeRange collects up to n tree entries with key >= startKey by walking
// the leaf level.
func (db *DB) treeRange(p *engine.Proc, startKey []byte, n int) []treeEntry {
	if db.rootOff == 0 {
		return nil
	}
	var out []treeEntry
	// Descend to the leaf containing startKey.
	off := db.rootOff
	for {
		node := db.readNode(p, off)
		if nodeIsLeaf(node) {
			break
		}
		cnt := nodeCount(node)
		i := sort.Search(cnt, func(i int) bool {
			return bytes.Compare(nodeKey(node, i), startKey) > 0
		})
		if i == 0 {
			i = 1
		}
		off = nodeVal(node, i-1)
	}
	// Leaves are allocated contiguously during bulk build, so the leaf
	// chain is a sequential walk of the leaf region.
	for len(out) < n && off < db.leafRegionEnd {
		node := db.readNode(p, off)
		cnt := nodeCount(node)
		for i := 0; i < cnt && len(out) < n; i++ {
			k := nodeKey(node, i)
			if bytes.Compare(k, startKey) < 0 {
				continue
			}
			out = append(out, treeEntry{string(append([]byte(nil), k...)), nodeVal(node, i)})
		}
		off += pageSize
	}
	return out
}

// spill merges level 0 into the on-device B-tree, bulk-building a fresh
// immutable tree (Kreon's level spill).
func (db *DB) spill(p *engine.Proc) {
	p.BeginSpan("kv.spill")
	defer p.EndSpan()
	db.Spills++
	// Gather all live entries: L0 wins over the old tree.
	merged := make(map[string]uint64, len(db.l0)+db.treeN)
	if db.rootOff != 0 {
		for _, e := range db.treeRange(p, make([]byte, keySize), db.treeN) {
			merged[e.key] = e.off
		}
	}
	for k, off := range db.l0 {
		merged[k] = off
	}
	keys := detutil.SortedKeys(merged)
	db.bulkBuild(p, keys, merged)
	db.l0 = make(map[string]uint64)
	db.treeN = len(keys)
	db.logCheckpoint = db.logHead
}

// bulkBuild writes a fresh B-tree bottom-up: contiguous leaves, then
// internal levels, returning the new root.
func (db *DB) bulkBuild(p *engine.Proc, keys []string, vals map[string]uint64) {
	if len(keys) == 0 {
		db.rootOff = 0
		return
	}
	alloc := func() uint64 {
		off := db.idxHead
		db.idxHead += pageSize
		if db.idxHead > db.m.Size() {
			panic("kreon: index region full")
		}
		return off
	}
	writeNode := func(off uint64, isLeaf bool, entries []treeEntry) {
		buf := make([]byte, pageSize)
		binary.LittleEndian.PutUint16(buf, uint16(len(entries)))
		if isLeaf {
			buf[2] = 1
		}
		for i, e := range entries {
			base := nodeHeader + i*leafEntrySize
			copy(buf[base:base+keySize], e.key)
			binary.LittleEndian.PutUint64(buf[base+keySize:], e.off)
		}
		db.m.Store(p, off, buf)
	}
	// Leaf level (contiguous).
	leafStart := db.idxHead
	var level []treeEntry // (firstKey, nodeOff) of the level being built
	for i := 0; i < len(keys); i += entriesPerNode {
		j := i + entriesPerNode
		if j > len(keys) {
			j = len(keys)
		}
		entries := make([]treeEntry, 0, j-i)
		for _, k := range keys[i:j] {
			entries = append(entries, treeEntry{k, vals[k]})
		}
		off := alloc()
		writeNode(off, true, entries)
		level = append(level, treeEntry{keys[i], off})
	}
	db.leafRegionEnd = leafStart + uint64(len(level))*pageSize
	// Internal levels.
	for len(level) > 1 {
		var next []treeEntry
		for i := 0; i < len(level); i += entriesPerNode {
			j := i + entriesPerNode
			if j > len(level) {
				j = len(level)
			}
			off := alloc()
			writeNode(off, false, level[i:j])
			next = append(next, treeEntry{level[i].key, off})
		}
		level = next
	}
	db.rootOff = level[0].off
}

func normalizeKey(k []byte) []byte {
	out := make([]byte, keySize)
	copy(out, k)
	return out
}
