package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/kvs/kreon"
	"aquila/internal/ycsb"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Kreon over kmmap vs Aquila, all YCSB workloads, 1 thread, dataset 2x cache",
		Paper: "NVMe: 1.02x throughput, 1.29x lower avg latency, 3.78x lower p99.9; pmem: 1.22x throughput, 1.43x avg, 13.72x p99.9",
		Run:   runFig9,
	})
}

// kreonRun loads a Kreon store over one mmio path and runs a YCSB workload.
func kreonRun(useAquila bool, dev aquila.DeviceKind, cache uint64,
	records uint64, w ycsb.Workload, ops int, seed int64) ycsb.Result {
	logBytes := records*1100 + 8*mib
	idxBytes := records*80*4 + 8*mib
	mode := aquila.ModeLinuxMmap
	if useAquila {
		mode = aquila.ModeAquila
	}
	opts := aquila.Options{
		Mode: mode, Device: dev,
		CacheBytes:  cache,
		DeviceBytes: logBytes + idxBytes + 64*mib,
		CPUs:        8, Seed: seed,
	}
	if useAquila {
		opts.Params = aquilaParams(cache)
	}
	sys := boot(opts)
	kopts := kreon.Options{
		LogBytes: logBytes, IndexBytes: idxBytes,
		L0Entries: int(records)/3 + 1,
	}
	var db *kreon.DB
	sys.Do(func(p *aquila.Proc) {
		size := uint64(4096) + logBytes + idxBytes
		if useAquila {
			f := sys.NS.Create(p, "kreon.data", size)
			m := sys.NS.Mmap(p, f, size)
			m.Advise(p, aquila.AdviceRandom)
			db = kreon.OpenWithMapping(p, kopts, m)
		} else {
			// kmmap: Kreon's custom in-kernel mmio path.
			f := sys.Host.FS.Create(p, "kreon.data", size)
			m := sys.Host.MmapKmmap(p, f, size)
			db = kreon.OpenWithMapping(p, kopts, m)
		}
		for i := uint64(0); i < records; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, 1000))
		}
		db.Msync(p)
	})
	var res ycsb.Result
	sys.Do(func(p *aquila.Proc) {
		g := ycsb.NewGenerator(ycsb.Config{
			Workload: w, Records: records, ValueSize: 1000, Seed: seed + 5,
		})
		res = ycsb.RunThread(p, db, g, uint64(ops))
	})
	return res
}

func runFig9(scale float64) []*Result {
	r := &Result{
		ID:    "fig9",
		Title: "Kreon: kmmap vs Aquila, 1 thread, dataset 2x cache",
		Header: []string{"device", "workload", "kmmap Kops/s", "Aquila Kops/s", "thr ratio",
			"avg ratio", "p99.9 ratio"},
	}
	cache := scaled(12*mib, scale, 4*mib)
	records := 2 * cache / 1100
	ops := scaledN(2000, scale, 400)
	workloads := ycsb.All
	if scale < 0.3 {
		workloads = []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC}
	}
	type agg struct{ thr, avg, tail float64 }
	for _, dev := range []aquila.DeviceKind{aquila.DeviceNVMe, aquila.DevicePMem} {
		devName := "NVMe"
		if dev == aquila.DevicePMem {
			devName = "pmem"
		}
		var sumThr, sumAvg, sumTail float64
		n := 0
		for _, w := range workloads {
			km := kreonRun(false, dev, cache, records, w, ops, 61)
			aq := kreonRun(true, dev, cache, records, w, ops, 61)
			kThr := aquila.ThroughputOpsPerSec(km.Ops, km.Cycles) / 1e3
			aThr := aquila.ThroughputOpsPerSec(aq.Ops, aq.Cycles) / 1e3
			r.AddRow(devName, string(w),
				fmt.Sprintf("%.1f", kThr), fmt.Sprintf("%.1f", aThr),
				ratio(aThr, kThr),
				ratio(km.Lat.Mean(), aq.Lat.Mean()),
				ratio(float64(km.Lat.P999()), float64(aq.Lat.P999())))
			sumThr += aThr / kThr
			sumAvg += km.Lat.Mean() / aq.Lat.Mean()
			sumTail += float64(km.Lat.P999()) / float64(aq.Lat.P999())
			n++
		}
		r.AddNote("%s averages: throughput %.2fx, avg latency %.2fx, p99.9 %.2fx (paper: %s)",
			devName, sumThr/float64(n), sumAvg/float64(n), sumTail/float64(n),
			map[string]string{
				"NVMe": "1.02x thr, 1.29x avg, 3.78x tail",
				"pmem": "1.22x thr, 1.43x avg, 13.72x tail",
			}[devName])
	}
	return []*Result{r}
}
