package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/core"
	"aquila/internal/graph"
	"aquila/internal/host"
	"aquila/internal/sim/cpu"
	"aquila/internal/sim/device"
	simengine "aquila/internal/sim/engine"
)

// newAquilaOnHost boots an Aquila runtime over a custom host (used when the
// experiment needs a non-default device configuration).
func newAquilaOnHost(p *aquila.Proc, os *host.OS, cache uint64) *core.Runtime {
	return core.NewRuntime(p, os, core.NewDAXEngine(os), core.Config{
		CacheBytes: cache, Params: aquilaParams(cache),
	})
}

func init() {
	register(Experiment{
		ID:    "resize",
		Title: "Dynamic DRAM-cache resizing under load (§3.5, operation 5)",
		Paper: "the host grants/reclaims DRAM in 1 GB EPT pages; resizing is uncommon-path and does not disturb the common path",
		Run:   runResize,
	})
	register(Experiment{
		ID:    "pagerank",
		Title: "Extension: PageRank over an mmap-extended heap (iterative, read-heavy)",
		Paper: "beyond the paper's BFS: an iterative whole-graph workload over the same heap-extension setup",
		Run:   runPageRankWorlds,
	})
	register(Experiment{
		ID:    "nvm-heap",
		Title: "Extension: heap over byte-addressable NVM (Optane PMM class) vs DRAM-backed pmem (§7.1)",
		Paper: "NVM latency/bandwidth are ~3x worse than DRAM; Aquila's DRAM cache hides most of the gap",
		Run:   runNVMHeap,
	})
}

// runResize measures fault throughput phases around a cache grow and shrink.
func runResize(scale float64) []*Result {
	r := &Result{
		ID:     "resize",
		Title:  "Out-of-memory fault throughput across cache resizes (1 thread, pmem)",
		Header: []string{"phase", "cache(MB)", "Kops/s", "hv grants(B)", "ept faults"},
	}
	small := scaled(8*mib, scale, 4*mib)
	big := small * 4
	sys := boot(aquila.Options{
		Mode: aquila.ModeAquila, Device: aquila.DevicePMem,
		CacheBytes: small, MaxCacheBytes: big * 2,
		DeviceBytes: big*8 + 96*mib, CPUs: 8, Seed: 101,
		Params: aquilaParams(small),
	})
	dataset := big * 4
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "resize-data", dataset)
		m = sys.NS.Mmap(p, f, dataset)
		m.Advise(p, aquila.AdviceRandom)
	})
	ops := scaledN(20000, scale, 4000)
	seed := uint64(11)
	phase := func(name string) {
		var elapsed uint64
		sys.Do(func(p *aquila.Proc) {
			buf := make([]byte, 8)
			pages := dataset / 4096
			// Warm to this cache size's steady state, then measure.
			for round := 0; round < 2; round++ {
				start := p.Now()
				for i := 0; i < ops; i++ {
					seed = seed*6364136223846793005 + 1
					m.Load(p, (seed>>17)%pages*4096, buf)
				}
				elapsed = p.Now() - start
			}
		})
		r.AddRow(name, fmt.Sprintf("%d", sys.RT.CacheLimitPages()*4096/mib),
			kops(uint64(ops), elapsed),
			fmt.Sprint(sys.Host.HV.GrantedBytes), fmt.Sprint(sys.Host.HV.EPTFaults))
	}
	phase("small cache")
	sys.Do(func(p *aquila.Proc) { sys.RT.ResizeCache(p, big) })
	phase("after grow")
	sys.Do(func(p *aquila.Proc) { sys.RT.ResizeCache(p, small) })
	phase("after shrink")
	r.AddNote("growing the cache raises the hit rate (higher Kops/s); shrinking evicts down and returns 1 GB-granted memory to the host")
	return []*Result{r}
}

// runPageRankWorlds compares PageRank execution time over Linux mmap vs
// Aquila with the heap 8x larger than the DRAM cache.
func runPageRankWorlds(scale float64) []*Result {
	r := &Result{
		ID:     "pagerank",
		Title:  "PageRank (10 iterations, 8 threads), heap = 8x DRAM cache (pmem)",
		Header: []string{"config", "exec time(ms)", "vs mmap"},
	}
	vertices := uint32(scaledN(1<<15, scale, 1<<12))
	raw := graph.RMAT(graph.RMATConfig{Vertices: vertices, EdgeFactor: 10, Seed: 27})
	edges := graph.Symmetrize(raw)
	heapBytes := (uint64(vertices)+1)*8 + uint64(len(edges))*4 + uint64(vertices)*24
	heapBytes = heapBytes*5/4 + 1<<20
	cache := heapBytes / 8
	if cache < 1500*1024 {
		cache = 1500 * 1024
	}
	times := map[string]float64{}
	for _, cfg := range []struct {
		name string
		mode aquila.Mode
	}{{"mmap", aquila.ModeLinuxMmap}, {"aquila", aquila.ModeAquila}} {
		opts := aquila.Options{
			Mode: cfg.mode, Device: aquila.DevicePMem,
			CacheBytes: cache, DeviceBytes: heapBytes*2 + 64*mib,
			CPUs: 32, Seed: 29,
		}
		if cfg.mode == aquila.ModeAquila {
			opts.Params = aquilaParams(cache)
		}
		sys := boot(opts)
		var g *graph.Graph
		sys.Do(func(p *aquila.Proc) {
			f := sys.NS.Create(p, "heap", heapBytes*2)
			m := sys.NS.Mmap(p, f, heapBytes*2)
			if cfg.mode == aquila.ModeAquila {
				m.Advise(p, aquila.AdviceSequential)
			}
			g = graph.Build(p, graph.NewMappedHeap(m), vertices, edges)
		})
		res := graph.RunPageRank(sys.Sim, g, 8, 10, 0)
		ms := cpu.CyclesToSeconds(res.ElapsedCycles) * 1e3
		times[cfg.name] = ms
		r.AddRow(cfg.name, fmt.Sprintf("%.2f", ms), ratio(times["mmap"], ms))
	}
	r.AddNote("PageRank touches every vertex and edge each iteration: the fault path runs constantly under 8x overcommit")
	r.AddNote("Aquila runs with madvise(SEQUENTIAL) — its readahead is policy-driven, while Linux read-around is always on")
	r.AddNote("finding: sequential-heavy iteration amortizes fault costs over readahead windows on both sides; at deep overcommit Linux's larger always-on read-around can even win — Aquila's advantage is a random-access (BFS, fig6) story, matching the paper's workload choice")
	return []*Result{r}
}

// runNVMHeap runs BFS with the heap mapped over DRAM-backed pmem vs an
// Optane DC PMM-class device (the §7.1 technology point), under Aquila.
func runNVMHeap(scale float64) []*Result {
	r := &Result{
		ID:     "nvm-heap",
		Title:  "Ligra BFS, heap over byte-addressable devices (Aquila DAX, 8 threads)",
		Header: []string{"device", "exec time(ms)", "vs DRAM-backed pmem"},
	}
	vertices := uint32(scaledN(1<<15, scale, 1<<12))
	raw := graph.RMAT(graph.RMATConfig{Vertices: vertices, EdgeFactor: 10, Seed: 23})
	edges := graph.Symmetrize(raw)
	heapBytes := (uint64(vertices)+1)*8 + uint64(len(edges))*4 + uint64(vertices)*4
	heapBytes = heapBytes*5/4 + 1<<20
	cache := heapBytes / 8
	if cache < 1500*1024 {
		cache = 1500 * 1024
	}

	times := map[string]float64{}
	for _, cfg := range []struct {
		name   string
		pm     device.PMemConfig
		direct bool
	}{
		{"DRAM-backed pmem", device.DefaultPMemConfig(), false},
		{"Optane PMM class", device.OptanePMMConfig(), false},
		{"Optane PMM, direct map (no DRAM cache)", device.OptanePMMConfig(), true},
	} {
		e := simengine.New(simengine.Config{NumCPUs: 32, Seed: 25})
		disk := host.NewPMemDisk("pmem0", device.NewPMem(heapBytes*2+64*mib, cfg.pm))
		os := host.NewOS(e, disk, 16*mib)
		var g *graph.Graph
		e.Spawn(0, "setup", func(p *aquila.Proc) {
			rt := newAquilaOnHost(p, os, cache)
			f := rt.CreateFile(p, "heap", heapBytes*2)
			var h graph.Heap
			if cfg.direct {
				// §3.3's alternative: map the NVM directly, no DRAM
				// cache — every access pays the media.
				h = &directHeap{dm: rt.MmapDirectNVM(p, f, heapBytes*2)}
			} else {
				m := rt.Mmap(p, f, heapBytes*2)
				m.Advise(p, aquila.AdviceRandom)
				h = graph.NewMappedHeap(m)
			}
			g = graph.Build(p, h, vertices, edges)
		})
		e.Run()
		res := graph.RunBFS(e, g, 0, 8)
		ms := cpu.CyclesToSeconds(res.ElapsedCycles) * 1e3
		times[cfg.name] = ms
		r.AddRow(cfg.name, fmt.Sprintf("%.2f", ms),
			ratio(ms, times["DRAM-backed pmem"]))
	}
	r.AddNote("paper §7.1: NVM is ~3x slower than DRAM; the DRAM I/O cache absorbs most accesses, so end-to-end slowdown stays well under the raw media gap")
	r.AddNote("the direct-map row is §3.3's alternative (no DRAM cache): no faults, but every access pays the media")
	return []*Result{r}
}

// directHeap adapts a DirectMapping to the graph Heap interface.
type directHeap struct {
	dm   *core.DirectMapping
	next uint64
}

func (h *directHeap) Alloc(n uint64) uint64 {
	off := h.next
	h.next += (n + 63) &^ 63
	if h.next > h.dm.Size() {
		panic("harness: direct heap exhausted")
	}
	return off
}
func (h *directHeap) Load(p *aquila.Proc, off uint64, buf []byte)  { h.dm.Load(p, off, buf) }
func (h *directHeap) Store(p *aquila.Proc, off uint64, buf []byte) { h.dm.Store(p, off, buf) }
func (h *directHeap) Size() uint64                                 { return h.dm.Size() }
