package harness

import (
	"fmt"

	"aquila"
)

func init() {
	register(Experiment{
		ID:    "fig10a",
		Title: "Scalability vs Linux mmap, dataset fits in memory",
		Paper: "shared file: Aquila 1.81x @1T -> 8.37x @32T; private file per thread: 1.82x -> 1.99x",
		Run: func(scale float64) []*Result {
			return []*Result{runFig10(scale, true)}
		},
	})
	register(Experiment{
		ID:    "fig10b",
		Title: "Scalability vs Linux mmap, dataset does not fit in memory",
		Paper: "shared file: Aquila 2.17x @1T -> 12.92x @32T; private file per thread: 2.21x -> 2.84x",
		Run: func(scale float64) []*Result {
			return []*Result{runFig10(scale, false)}
		},
	})
}

// runFig10 regenerates one panel of Figure 10: random-read fault throughput
// over thread counts, shared vs per-thread files, Linux mmap vs Aquila.
func runFig10(scale float64, inMemory bool) *Result {
	id, title := "fig10a", "in-memory dataset"
	if !inMemory {
		id, title = "fig10b", "out-of-memory dataset (12x cache)"
	}
	r := &Result{
		ID:    id,
		Title: "Random-read fault throughput (Kops/s), " + title,
		Header: []string{"threads", "file", "Linux", "Aquila", "speedup",
			"Lin avg(us)", "Aq avg(us)", "Lin p99.9(us)", "Aq p99.9(us)"},
	}
	threadCounts := []int{1, 2, 4, 8, 16, 32}
	if scale < 0.5 {
		threadCounts = []int{1, 4, 16}
	}
	var cache, dataset uint64
	var ops int
	if inMemory {
		cache = scaled(96*mib, scale, 16*mib)
		dataset = cache
		ops = 0 // touch every page once
	} else {
		cache = scaled(16*mib, scale, 4*mib)
		dataset = cache * 12
		ops = scaledN(4000, scale, 800)
	}
	for _, shared := range []bool{true, false} {
		fileLabel := "shared"
		if !shared {
			fileLabel = "private"
		}
		for _, threads := range threadCounts {
			base := microConfig{
				device: aquila.DevicePMem, cache: cache, dataset: dataset,
				threads: threads, inMemory: inMemory, opsPerThread: ops,
				sharedFile: shared, cpus: 32, seed: 46,
			}
			linCfg := base
			linCfg.mode = aquila.ModeLinuxMmap
			lin := runMicro(linCfg)
			aqCfg := base
			aqCfg.mode = aquila.ModeAquila
			aq := runMicro(aqCfg)
			r.AddRow(
				fmt.Sprintf("%d", threads), fileLabel,
				kops(lin.ops, lin.elapsed), kops(aq.ops, aq.elapsed),
				ratio(aq.throughputKops(), lin.throughputKops()),
				usF(lin.lat.Mean()), usF(aq.lat.Mean()),
				us(lin.lat.P999()), us(aq.lat.P999()),
			)
		}
	}
	if inMemory {
		r.AddNote("paper: shared 1.81x@1T, 8.37x@32T; private 1.82x@1T, 1.99x@32T")
	} else {
		r.AddNote("paper: shared 2.17x@1T, 12.92x@32T; private 2.21x@1T, 2.84x@32T")
		r.AddNote("paper latency @32T shared: 8.52x avg, 213x p99.9 lower for Aquila")
	}
	return r
}
