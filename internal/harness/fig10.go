package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/obs"
)

func init() {
	register(Experiment{
		ID:    "fig10a",
		Title: "Scalability vs Linux mmap, dataset fits in memory",
		Paper: "shared file: Aquila 1.81x @1T -> 8.37x @32T; private file per thread: 1.82x -> 1.99x",
		Run: func(scale float64) []*Result {
			return []*Result{runFig10(scale, true)}
		},
	})
	register(Experiment{
		ID:    "fig10b",
		Title: "Scalability vs Linux mmap, dataset does not fit in memory",
		Paper: "shared file: Aquila 2.17x @1T -> 12.92x @32T; private file per thread: 2.21x -> 2.84x",
		Run: func(scale float64) []*Result {
			return []*Result{runFig10(scale, false)}
		},
	})
}

// runFig10 regenerates one panel of Figure 10: random-read fault throughput
// over thread counts, shared vs per-thread files, Linux mmap vs Aquila.
func runFig10(scale float64, inMemory bool) *Result {
	id, title := "fig10a", "in-memory dataset"
	if !inMemory {
		id, title = "fig10b", "out-of-memory dataset (12x cache)"
	}
	r := &Result{
		ID:    id,
		Title: "Random-read fault throughput (Kops/s), " + title,
		Header: []string{"threads", "file", "Linux", "Aquila", "speedup",
			"Lin avg(us)", "Aq avg(us)", "Lin p99.9(us)", "Aq p99.9(us)"},
	}
	threadCounts := []int{1, 2, 4, 8, 16, 32}
	if scale < 0.5 {
		threadCounts = []int{1, 4, 16}
	}
	var cache, dataset uint64
	var ops int
	if inMemory {
		cache = scaled(96*mib, scale, 16*mib)
		dataset = cache
		ops = 0 // touch every page once
	} else {
		cache = scaled(16*mib, scale, 4*mib)
		dataset = cache * 12
		ops = scaledN(4000, scale, 800)
	}
	maxT := threadCounts[len(threadCounts)-1]
	linShared := make(map[int]microResult, len(threadCounts))
	var aqTop microResult
	for _, shared := range []bool{true, false} {
		fileLabel := "shared"
		if !shared {
			fileLabel = "private"
		}
		for _, threads := range threadCounts {
			base := microConfig{
				device: aquila.DevicePMem, cache: cache, dataset: dataset,
				threads: threads, inMemory: inMemory, opsPerThread: ops,
				sharedFile: shared, cpus: 32, seed: 46,
			}
			linCfg := base
			linCfg.mode = aquila.ModeLinuxMmap
			lin := runMicro(linCfg)
			aqCfg := base
			aqCfg.mode = aquila.ModeAquila
			aq := runMicro(aqCfg)
			if shared {
				linShared[threads] = lin
				if threads == maxT {
					aqTop = aq
				}
			}
			r.AddRow(
				fmt.Sprintf("%d", threads), fileLabel,
				kops(lin.ops, lin.elapsed), kops(aq.ops, aq.elapsed),
				ratio(aq.throughputKops(), lin.throughputKops()),
				usF(lin.lat.Mean()), usF(aq.lat.Mean()),
				us(lin.lat.P999()), us(aq.lat.P999()),
			)
		}
	}
	var hugeTop microResult
	if inMemory {
		// The same shared-file workload on the 2 MB mmio path
		// (MADV_HUGEPAGE): the first toucher of each extent promotes it with
		// one merged fill, and every later access hits the Size2M PTE without
		// faulting at all. The Linux column repeats the 4 KB mmap baseline
		// (the Linux worlds ignore the hint), so the speedup column stays
		// huge-Aquila over Linux.
		for _, threads := range threadCounts {
			aq := runMicro(microConfig{
				mode: aquila.ModeAquila, device: aquila.DevicePMem,
				cache: cache, dataset: dataset, threads: threads,
				inMemory: true, opsPerThread: ops,
				sharedFile: true, cpus: 32, seed: 46, huge: true,
			})
			if threads == maxT {
				hugeTop = aq
			}
			lin := linShared[threads]
			r.AddRow(
				fmt.Sprintf("%d", threads), "shared+2M",
				kops(lin.ops, lin.elapsed), kops(aq.ops, aq.elapsed),
				ratio(aq.throughputKops(), lin.throughputKops()),
				usF(lin.lat.Mean()), usF(aq.lat.Mean()),
				us(lin.lat.P999()), us(aq.lat.P999()),
			)
		}
	}
	if inMemory {
		r.AddNote("paper: shared 1.81x@1T, 8.37x@32T; private 1.82x@1T, 1.99x@32T")
		r.AddNote("shared+2M @%dT: %s over 4K Aquila (%d huge promotions, %d fault events vs %d)",
			maxT, ratio(hugeTop.throughputKops(), aqTop.throughputKops()),
			hugeTop.sys.RT.Stats.HugePromotions,
			faultEvents(hugeTop.sys), faultEvents(aqTop.sys))

		lat := aqTop.lat.Summarize()
		r.Report = &obs.Report{
			Schema:     obs.ReportSchemaVersion,
			Experiment: "fig10a",
			Title:      r.Title,
			Scale:      scale,
			Config: map[string]string{
				"mode":    "aquila",
				"device":  "pmem",
				"cache":   fmt.Sprintf("%d", cache),
				"dataset": fmt.Sprintf("%d", dataset),
				"threads": fmt.Sprintf("%d", maxT),
				"cpus":    "32",
				"seed":    "46",
				"config":  "shared file, in-memory, max threads",
			},
			Ops:                 aqTop.ops,
			ElapsedCycles:       aqTop.elapsed,
			ThroughputOpsPerSec: aquila.ThroughputOpsPerSec(aqTop.ops, aqTop.elapsed),
			Latency:             &lat,
			Extra: map[string]float64{
				"speedup_vs_linux": safeDiv(aqTop.throughputKops(),
					linShared[maxT].throughputKops()),
				"huge_speedup_vs_4k": safeDiv(hugeTop.throughputKops(),
					aqTop.throughputKops()),
				"fault_events_4k":   float64(faultEvents(aqTop.sys)),
				"fault_events_huge": float64(faultEvents(hugeTop.sys)),
				"huge_fault_ratio":  hugeFaultRatio(hugeTop.sys),
				"huge_promotions":   float64(hugeTop.sys.RT.Stats.HugePromotions),
			},
		}
	} else {
		r.AddNote("paper: shared 2.17x@1T, 12.92x@32T; private 2.21x@1T, 2.84x@32T")
		r.AddNote("paper latency @32T shared: 8.52x avg, 213x p99.9 lower for Aquila")
	}
	return r
}
