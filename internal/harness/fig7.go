package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/kvs/lsm"
	"aquila/internal/obs"
	"aquila/internal/sim/cpu"
	"aquila/internal/ycsb"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "RocksDB per-read cycle breakdown: user-space cache vs Aquila",
		Paper: "user-space cache: 65.4K total (device 4.8K, cache mgmt 45.2K = 13K syscalls + 32K lookups/evictions, get 15.3K); Aquila: I/O 3.9K, cache mgmt 17.5K, get 18.5K => 2.58x fewer cache-mgmt cycles, 40% higher throughput",
		Run:   runFig7,
	})
}

// fig7Measure carries the raw numbers of one fig7 run alongside the per-get
// component breakdown, so runFig7 can build the machine-readable report.
type fig7Measure struct {
	ops        uint64
	cycles     uint64
	gets       uint64
	breakDelta map[string]uint64 // LSM cycle breakdown, read phase only
}

// fig7Run executes single-threaded YCSB-C random reads over an out-of-memory
// dataset and returns the per-get breakdown.
func fig7Run(mode rocksMode, cache uint64, records uint64, ops int, seed int64) (map[string]float64, float64, fig7Measure) {
	opts := aquila.Options{
		Mode: mode.mode, Device: aquila.DevicePMem,
		CacheBytes:  cache,
		DeviceBytes: records*1100*2 + 256*mib,
		CPUs:        8,
		Seed:        seed,
	}
	if mode.mode == aquila.ModeAquila {
		opts.Params = aquilaParams(cache)
	}
	sys := boot(opts)
	var db *lsm.DB
	sys.Do(func(p *aquila.Proc) {
		db = lsm.Open(p, sys.Sim, lsm.Options{
			NS: sys.NS, Mode: mode.io, BlockCacheBytes: cache,
			SSTTargetBytes: int(minU64(8*mib, cache/2)),
			DisableWAL:     true, Seed: seed,
			Registry: Registry(), MetricsLabel: sys.TraceLabel(),
		})
		db.BulkLoad(p, records, 1000)
	})
	var thr float64
	var meas fig7Measure
	break0 := db.Break.Map()
	sys.Do(func(p *aquila.Proc) {
		g := ycsb.NewGenerator(ycsb.Config{
			Workload: ycsb.WorkloadC, Records: records, ValueSize: 1000, Seed: seed,
		})
		res := ycsb.RunThread(p, db, g, uint64(ops))
		thr = aquila.ThroughputOpsPerSec(res.Ops, res.Cycles)
		meas.ops, meas.cycles = res.Ops, res.Cycles
	})
	meas.breakDelta = subMap(db.Break.Map(), break0)

	gets := db.Gets
	if gets == 0 {
		gets = 1
	}
	out := map[string]float64{}
	costs := cpu.Default()
	switch mode.io {
	case lsm.IODirectCached:
		// Split the measured "io" (syscall+device) into device transfer
		// vs syscall/kernel software.
		ioTotal := db.Break.PerOp("io", gets)
		perRead := float64(costs.MemcpyNoSIMD(4096)) + 240
		reads := float64(db.Break.Count("io"))
		device := perRead * reads / float64(gets)
		out["device-io"] = device
		out["cache-mgmt"] = db.Break.PerOp("cache", gets) + (ioTotal - device)
		out["get"] = db.Break.PerOp("get", gets)
	case lsm.IOMmap:
		mmio := db.Break.PerOp("mmio", gets)
		var device float64
		if sys.RT != nil {
			device = float64(sys.RT.Break.Get("device-io")+sys.RT.Break.Get("writeback")) / float64(gets)
		} else {
			// Linux mmap: estimate the device share from major faults.
			perRead := float64(costs.MemcpyNoSIMD(4096)) + 240
			device = perRead * float64(sys.Host.Cache.Inserted) / float64(gets)
		}
		out["device-io"] = device
		out["cache-mgmt"] = mmio - device
		out["get"] = db.Break.PerOp("get", gets)
	}
	out["total"] = out["device-io"] + out["cache-mgmt"] + out["get"]
	meas.gets = gets
	return out, thr, meas
}

func runFig7(scale float64) []*Result {
	r := &Result{
		ID:     "fig7",
		Title:  "RocksDB read breakdown (cycles/op), 1 thread, pmem, dataset 4x cache",
		Header: []string{"component", "user-space cache", "Aquila", "ratio"},
	}
	cache := scaled(32*mib, scale, 8*mib)
	records := 4 * cache / sstBytesPerRecord(1000)
	ops := scaledN(6000, scale, 1000)

	rw, rwThr, _ := fig7Run(rocksModes[0], cache, records, ops, 99)
	aq, aqThr, aqMeas := fig7Run(rocksModes[2], cache, records, ops, 99)

	for _, c := range []string{"device-io", "cache-mgmt", "get", "total"} {
		r.AddRow(c, f2(rw[c]), f2(aq[c]), ratio(rw[c], aq[c]))
	}

	extra := map[string]float64{
		"throughput_user_cache_ops_per_sec": rwThr,
		"throughput_aquila_ops_per_sec":     aqThr,
		"throughput_gain":                   safeDiv(aqThr, rwThr),
		"cache_mgmt_ratio":                  safeDiv(rw["cache-mgmt"], aq["cache-mgmt"]),
	}
	for _, c := range []string{"device-io", "cache-mgmt", "get", "total"} {
		extra["user_cache_"+c+"_per_get"] = rw[c]
		extra["aquila_"+c+"_per_get"] = aq[c]
	}
	r.Report = &obs.Report{
		Schema:     obs.ReportSchemaVersion,
		Experiment: "fig7",
		Title:      r.Title,
		Scale:      scale,
		Config: map[string]string{
			"mode":    "aquila",
			"device":  "pmem",
			"cache":   fmt.Sprintf("%d", cache),
			"records": fmt.Sprintf("%d", records),
			"ops":     fmt.Sprintf("%d", ops),
			"threads": "1",
			"cpus":    "8",
			"seed":    "99",
		},
		Ops:                 aqMeas.ops,
		ElapsedCycles:       aqMeas.cycles,
		ThroughputOpsPerSec: aqThr,
		Breakdown:           aqMeas.breakDelta,
		BreakdownTotal:      sumMap(aqMeas.breakDelta),
		TotalCycles:         aqMeas.cycles,
		Extra:               extra,
	}
	r.AddNote("paper: cache mgmt 45.2K -> 17.5K = 2.58x fewer cycles; measured %s",
		ratio(rw["cache-mgmt"], aq["cache-mgmt"]))
	r.AddNote("paper: ~40%% higher end-to-end throughput; measured %s (%.1f vs %.1f Kops/s)",
		ratio(aqThr, rwThr), aqThr/1e3, rwThr/1e3)
	r.AddNote("paper: user-space cache management consumes ~69%% of read cycles; measured %.0f%%",
		100*rw["cache-mgmt"]/rw["total"])
	return []*Result{r}
}
