package harness

import (
	"fmt"
	"math/rand"

	"aquila"
	"aquila/internal/core"
	"aquila/internal/metrics"
)

// microConfig parameterizes the paper's multithreaded microbenchmark (§5):
// threads issuing 8-byte loads at page-granular offsets within a mapped
// region, every access arranged to take a page fault.
type microConfig struct {
	mode    aquila.Mode
	device  aquila.DeviceKind
	engine  aquila.EngineKind
	cache   uint64
	dataset uint64
	threads int
	// inMemory: touch distinct pages once (cold faults over a dataset
	// that fits); otherwise uniform random over a dataset that does not.
	inMemory     bool
	opsPerThread int
	sharedFile   bool
	cpus         int
	seed         int64
	// huge enables the 2 MB mmio path (Aquila mode only): the runtime gets a
	// nonzero Params.HugeFaultDensity and every mapping is AdviseHuge'd, so
	// extents promote on first fault.
	huge bool
}

// microResult aggregates a run.
type microResult struct {
	ops     uint64
	elapsed uint64
	lat     *metrics.Histogram
	sys     *aquila.System
	// breakDelta is the world's fault-cycle breakdown accumulated during
	// the measured phase only (setup excluded).
	breakDelta map[string]uint64
}

func (r microResult) throughputKops() float64 {
	return aquila.ThroughputOpsPerSec(r.ops, r.elapsed) / 1e3
}

// aquilaParams scales Aquila's batch sizes to small simulated caches so the
// batching:cache ratios stay in the paper's regime.
func aquilaParams(cacheBytes uint64) *core.Params {
	p := core.DefaultParams()
	pages := int(cacheBytes / 4096)
	if p.EvictBatch > pages/16 {
		p.EvictBatch = maxI(32, pages/16)
	}
	// Refill batches must stay small relative to the per-core share of the
	// cache: a batch that hoards a large cache fraction on one core
	// starves the others into spurious evictions (at the paper's scale,
	// 4096 pages against a 2M-page cache is 0.2%; keep the same regime).
	if p.FreelistBatch > pages/128 {
		p.FreelistBatch = maxI(64, pages/128)
	}
	if p.CoreQueueLimit > pages/32 {
		p.CoreQueueLimit = maxI(2*p.FreelistBatch, pages/32)
	}
	return &p
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// newWorld boots a System for an experiment configuration.
func newWorld(cfg microConfig) *aquila.System {
	cpus := cfg.cpus
	if cpus == 0 {
		cpus = 32
	}
	opts := aquila.Options{
		Mode:        cfg.mode,
		Device:      cfg.device,
		Engine:      cfg.engine,
		CacheBytes:  cfg.cache,
		DeviceBytes: cfg.dataset + 96<<20,
		CPUs:        cpus,
		Seed:        cfg.seed + 1,
	}
	if cfg.mode == aquila.ModeAquila {
		opts.Params = aquilaParams(cfg.cache)
		if cfg.huge {
			opts.Params.HugeFaultDensity = hugeDensityDefault
		}
	}
	return boot(opts)
}

// runMicro executes the microbenchmark in the given world.
func runMicro(cfg microConfig) microResult {
	sys := newWorld(cfg)
	pageSize := uint64(4096)
	totalPages := cfg.dataset / pageSize

	// Create file(s) and mappings. With MADV_RANDOM on both worlds, the
	// benchmark isolates the fault path itself (no readahead noise).
	maps := make([]aquila.Mapping, cfg.threads)
	sys.Do(func(p *aquila.Proc) {
		advise := func(m aquila.Mapping) {
			m.Advise(p, aquila.AdviceRandom)
			if cfg.huge && cfg.mode == aquila.ModeAquila {
				m.Advise(p, aquila.AdviceHuge)
			}
		}
		if cfg.sharedFile {
			f := sys.NS.Create(p, "micro-shared", cfg.dataset)
			m := sys.NS.Mmap(p, f, cfg.dataset)
			advise(m)
			for t := range maps {
				maps[t] = m
			}
		} else {
			per := cfg.dataset / uint64(cfg.threads) / pageSize * pageSize
			for t := range maps {
				f := sys.NS.Create(p, fmt.Sprintf("micro-%d", t), per)
				maps[t] = sys.NS.Mmap(p, f, per)
				advise(maps[t])
			}
		}
	})

	worldBreak := sys.Host.Break
	if sys.RT != nil {
		worldBreak = sys.RT.Break
	}
	break0 := worldBreak.Map()

	lats := make([]*metrics.Histogram, cfg.threads)
	var totalOps uint64
	elapsed := sys.Run(cfg.threads, func(t int, p *aquila.Proc) {
		lat := metrics.NewHistogram()
		lats[t] = lat
		rng := rand.New(rand.NewSource(cfg.seed + int64(t)*7919))
		buf := make([]byte, 8)
		m := maps[t]
		mPages := m.Size() / pageSize

		var pagesToTouch []uint64
		if cfg.inMemory {
			// Distinct pages, random order: every access is a cold
			// fault, the dataset fits in the cache.
			if cfg.sharedFile {
				// Partition the shared file across threads.
				for pg := uint64(t); pg < totalPages; pg += uint64(cfg.threads) {
					pagesToTouch = append(pagesToTouch, pg)
				}
			} else {
				for pg := uint64(0); pg < mPages; pg++ {
					pagesToTouch = append(pagesToTouch, pg)
				}
			}
			rng.Shuffle(len(pagesToTouch), func(i, j int) {
				pagesToTouch[i], pagesToTouch[j] = pagesToTouch[j], pagesToTouch[i]
			})
			if cfg.opsPerThread > 0 && len(pagesToTouch) > cfg.opsPerThread {
				pagesToTouch = pagesToTouch[:cfg.opsPerThread]
			}
		}

		ops := cfg.opsPerThread
		if cfg.inMemory {
			ops = len(pagesToTouch)
		}
		for i := 0; i < ops; i++ {
			var pg uint64
			if cfg.inMemory {
				pg = pagesToTouch[i]
			} else {
				pg = uint64(rng.Int63n(int64(mPages)))
			}
			t0 := p.Now()
			m.Load(p, pg*pageSize, buf)
			lat.Record(p.Now() - t0)
		}
		totalOps += uint64(ops)
	})
	return microResult{
		ops: totalOps, elapsed: elapsed, lat: mergeHists(lats), sys: sys,
		breakDelta: subMap(worldBreak.Map(), break0),
	}
}
