package harness

import (
	"strconv"
	"strings"
	"testing"
)

// testScale keeps the per-experiment runtime around a second.
const testScale = 0.15

func TestRegistryComplete(t *testing.T) {
	// Lexicographic id order (fig10* sorts before fig5*).
	want := []string{
		"ablate-async-evict", "ablate-batch", "ablate-crash", "ablate-faults", "ablate-freelist",
		"ablate-hugepages", "ablate-readahead",
		"fig10a", "fig10b", "fig5a", "fig5b", "fig6a", "fig6b", "fig6c",
		"fig7", "fig8a", "fig8b", "fig8c", "fig9",
		"iouring", "ipi", "memcpy", "nvm-heap", "pagerank", "resize", "table1",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Paper == "" {
			t.Errorf("%s missing title/paper target", id)
		}
	}
	if _, ok := Find("fig7"); !ok {
		t.Error("Find(fig7) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

// cell parses a float out of a result cell ("12.34" or "1.50x").
func cell(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(r.Rows[row][col], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %d/%d of %s = %q: %v", row, col, r.ID, r.Rows[row][col], err)
	}
	return v
}

// findRow locates the first row whose leading columns match the given prefix.
func findRow(t *testing.T, r *Result, prefix ...string) int {
	t.Helper()
	for i, row := range r.Rows {
		ok := true
		for j, p := range prefix {
			if j >= len(row) || row[j] != p {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	t.Fatalf("%s: no row with prefix %v", r.ID, prefix)
	return -1
}

func TestTable1(t *testing.T) {
	e, _ := Find("table1")
	rs := e.Run(testScale)
	if len(rs) != 1 || len(rs[0].Rows) != 6 {
		t.Fatalf("table1 rows = %d, want 6", len(rs[0].Rows))
	}
	if rs[0].Rows[2][1] != "100% reads" {
		t.Errorf("workload C mix = %q", rs[0].Rows[2][1])
	}
}

func TestFig5aShape(t *testing.T) {
	r := runFig5(testScale, true)[0]
	// In-memory: mmap and Aquila must beat read/write on pmem.
	i := findRow(t, r, "pmem", "1", "mmap")
	if v := cell(t, r, i, 6); v < 1.0 {
		t.Errorf("fig5a: mmap/readwrite = %.2f, want >= 1 (paper: mmap wins in-memory)", v)
	}
	i = findRow(t, r, "pmem", "1", "aquila")
	if v := cell(t, r, i, 6); v < 1.0 {
		t.Errorf("fig5a: aquila/readwrite = %.2f, want >= 1", v)
	}
}

func TestFig5bShape(t *testing.T) {
	r := runFig5(testScale, false)[0]
	// Out-of-memory: mmap collapses; Aquila beats direct I/O on pmem.
	i := findRow(t, r, "pmem", "1", "mmap")
	if v := cell(t, r, i, 6); v > 0.8 {
		t.Errorf("fig5b: mmap/readwrite = %.2f, want well below 1 (paper: mmap collapses)", v)
	}
	i = findRow(t, r, "pmem", "1", "aquila")
	if v := cell(t, r, i, 6); v < 1.1 {
		t.Errorf("fig5b: aquila/readwrite = %.2f, want > 1.1 on pmem", v)
	}
}

func TestFig6aShape(t *testing.T) {
	r := runFig6(testScale, 8, "fig6a")
	// Aquila-pmem faster than mmap-pmem at every thread count.
	for _, threads := range []string{"1", "8"} {
		i := findRow(t, r, threads, "aquila-pmem")
		if v := cell(t, r, i, 3); v < 1.2 {
			t.Errorf("fig6a @%sT: aquila/mmap = %.2f, want >= 1.2", threads, v)
		}
	}
	// Everything is slower than DRAM-only.
	i := findRow(t, r, "1", "mmap-pmem")
	if v := cell(t, r, i, 4); v < 2 {
		t.Errorf("fig6a: mmap vs DRAM = %.2f, want >= 2 (paper: up to 11.8x)", v)
	}
}

func TestFig6cShape(t *testing.T) {
	r := runFig6c(testScale)[0]
	mmUser := cell(t, r, 0, 1)
	aqUser := cell(t, r, 1, 1)
	if aqUser <= mmUser {
		t.Errorf("fig6c: aquila user%% (%.1f) should exceed mmap user%% (%.1f)", aqUser, mmUser)
	}
}

func TestFig7Shape(t *testing.T) {
	r := runFig7(testScale)[0]
	i := findRow(t, r, "cache-mgmt")
	if v := cell(t, r, i, 3); v < 2.0 {
		t.Errorf("fig7: cache-mgmt ratio = %.2f, want >= 2 (paper 2.58x)", v)
	}
	i = findRow(t, r, "total")
	rw, aq := cell(t, r, i, 1), cell(t, r, i, 2)
	if aq >= rw {
		t.Errorf("fig7: Aquila total (%.0f) not below user-space cache (%.0f)", aq, rw)
	}
}

func TestFig8aShape(t *testing.T) {
	r := runFig8a(testScale)[0]
	i := findRow(t, r, "protection switch (trap/exception)")
	trap, exc := cell(t, r, i, 1), cell(t, r, i, 2)
	if trap != 1287 || exc != 552 {
		t.Errorf("fig8a: trap/exception = %.0f/%.0f, want 1287/552", trap, exc)
	}
	i = findRow(t, r, "total")
	lin, aq := cell(t, r, i, 1), cell(t, r, i, 2)
	if lin < 4500 || lin > 7000 {
		t.Errorf("fig8a: Linux fault = %.0f, want ~5380", lin)
	}
	if aq >= lin {
		t.Errorf("fig8a: Aquila (%.0f) not cheaper than Linux (%.0f)", aq, lin)
	}
}

func TestFig8bShape(t *testing.T) {
	r := runFig8b(testScale)[0]
	i := findRow(t, r, "total (measured per fault)")
	lin, aq := cell(t, r, i, 1), cell(t, r, i, 2)
	if lin/aq < 1.5 {
		t.Errorf("fig8b: Linux/Aquila = %.2f, want >= 1.5 (paper 2.06x)", lin/aq)
	}
}

func TestFig8cShape(t *testing.T) {
	r := runFig8c(testScale)[0]
	i := findRow(t, r, "Cache-Hit")
	if v := cell(t, r, i, 1); v < 2000 || v > 2400 {
		t.Errorf("fig8c: cache-hit = %.0f, want ~2179", v)
	}
	dax := cell(t, r, findRow(t, r, "DAX-pmem"), 1)
	hostP := cell(t, r, findRow(t, r, "HOST-pmem"), 1)
	spdk := cell(t, r, findRow(t, r, "SPDK-NVMe"), 1)
	hostN := cell(t, r, findRow(t, r, "HOST-NVMe"), 1)
	if hostP <= dax {
		t.Error("fig8c: HOST-pmem should cost more than DAX-pmem")
	}
	if hostN <= spdk {
		t.Error("fig8c: HOST-NVMe should cost more than SPDK-NVMe")
	}
}

func TestFig9Shape(t *testing.T) {
	r := runFig9(testScale)[0]
	// Aquila throughput >= kmmap on every row.
	for i := range r.Rows {
		if v := cell(t, r, i, 4); v < 0.95 {
			t.Errorf("fig9 row %d: aquila/kmmap = %.2f, want >= 0.95", i, v)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	for _, inMem := range []bool{true, false} {
		r := runFig10(testScale, inMem)
		// Speedup >= 1.2 at 1 thread and grows with threads (shared file).
		s1 := cell(t, r, findRow(t, r, "1", "shared"), 4)
		s16 := cell(t, r, findRow(t, r, "16", "shared"), 4)
		if s1 < 1.2 {
			t.Errorf("fig10(inMem=%v): 1T speedup = %.2f, want >= 1.2", inMem, s1)
		}
		if s16 <= s1 {
			t.Errorf("fig10(inMem=%v): speedup did not grow with threads (%.2f -> %.2f)",
				inMem, s1, s16)
		}
	}
}

func TestMicroExperimentsRun(t *testing.T) {
	for _, id := range []string{"memcpy", "ipi"} {
		e, _ := Find(id)
		rs := e.Run(testScale)
		if len(rs) == 0 || len(rs[0].Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("note %d", 7)
	s := r.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered result missing %q:\n%s", want, s)
		}
	}
}

func TestAblateFreelistShape(t *testing.T) {
	r := runAblateFreelist(testScale)[0]
	two := cell(t, r, 0, 1)
	single := cell(t, r, 1, 1)
	if two <= single {
		t.Errorf("two-level freelist (%.1f) should beat single queue (%.1f)", two, single)
	}
}

func TestAblateReadaheadShape(t *testing.T) {
	r := runAblateReadahead(testScale)[0]
	none := cell(t, r, 0, 1)
	seq := cell(t, r, 1, 1)
	if seq >= none {
		t.Errorf("MADV_SEQUENTIAL scan (%.2fms) should beat no-advice (%.2fms)", seq, none)
	}
	if cell(t, r, 1, 3) == 0 {
		t.Error("no readahead pages recorded with MADV_SEQUENTIAL")
	}
}

func TestAblateBatchShape(t *testing.T) {
	r := runAblateBatch(testScale)[0]
	small := cell(t, r, 0, 1) // batch 8
	big := cell(t, r, 2, 1)   // batch 128
	if big <= small {
		t.Errorf("batch 128 (%.1f) should beat batch 8 (%.1f)", big, small)
	}
}

func TestAblateAsyncEvictShape(t *testing.T) {
	r := runAblateAsyncEvict(testScale)[0]
	// Sync mode reclaims everything inline; the daemons must be absent.
	i := findRow(t, r, "pmem", "sync (direct)")
	if cell(t, r, i, 6) == 0 {
		t.Error("sync run recorded no direct-reclaim pages")
	}
	if cell(t, r, i, 7) != 0 {
		t.Error("sync run recorded background-reclaim pages")
	}
	// With the most aggressive watermarks the daemons carry the reclaim load.
	i = findRow(t, r, "pmem", "async low=4x batch")
	if cell(t, r, i, 7) == 0 {
		t.Error("async run recorded no background-reclaim pages")
	}
	// The same shift must hold on NVMe: most reclaim moves off the fault
	// path. (The tail-latency win is asserted at scale 1.0 in
	// EXPERIMENTS.md, not here — p99.9 is too noisy at test scale.)
	sync := findRow(t, r, "NVMe", "sync (direct)")
	async := findRow(t, r, "NVMe", "async low=4x batch")
	if sd, ad := cell(t, r, sync, 6), cell(t, r, async, 6); ad >= sd/2 {
		t.Errorf("NVMe direct-reclaim pages barely dropped with the evictor on (%.0f -> %.0f)", sd, ad)
	}
}

func TestAblateFaultsShape(t *testing.T) {
	r := runAblateFaults(testScale)[0]
	// Zero-probability rows must inject nothing and retry nothing (the
	// fault-check path is inert without a plan).
	i := findRow(t, r, "pmem", "0")
	if cell(t, r, i, 4) != 0 || cell(t, r, i, 5) != 0 {
		t.Error("zero-fault run recorded injections or retries")
	}
	// At 5% write-fault probability the device injects errors, the runtime
	// retries them, and the workload still completes (throughput non-zero,
	// nothing quarantined — these faults are transient).
	i = findRow(t, r, "pmem", "0.05")
	if cell(t, r, i, 4) == 0 {
		t.Error("5% fault run injected nothing")
	}
	if cell(t, r, i, 5) == 0 {
		t.Error("5% fault run recorded no io retries")
	}
	if cell(t, r, i, 7) != 0 {
		t.Error("transient faults must never quarantine pages")
	}
	if cell(t, r, i, 2) == 0 {
		t.Error("faulty run recorded zero throughput")
	}
}

func TestAblateCrashShape(t *testing.T) {
	r := runAblateCrash(testScale)[0]
	// Every correct world passes the oracle at every enumerated crash point.
	for _, w := range [][2]string{
		{"aquila", "pmem"}, {"aquila", "NVMe"},
		{"linux", "pmem"}, {"linux", "NVMe"},
		{"kreon", "pmem"}, {"kreon", "NVMe"},
	} {
		i := findRow(t, r, w[0], w[1])
		if got := r.Rows[i][6]; got != "PASS" {
			t.Errorf("%s/%s verdict = %q, want PASS (lost %s, inv fails %s)",
				w[0], w[1], got, r.Rows[i][4], r.Rows[i][5])
		}
		if cell(t, r, i, 2) == 0 {
			t.Errorf("%s/%s enumerated no crash points", w[0], w[1])
		}
	}
	// The broken-ordering row must fail — otherwise the oracle is vacuous.
	i := findRow(t, r, "aquila UNSAFE", "NVMe")
	if got := r.Rows[i][6]; got != "FAIL (expected)" {
		t.Errorf("UNSAFE verdict = %q, want FAIL (expected)", got)
	}
	if cell(t, r, i, 4) == 0 {
		t.Error("UNSAFE row lost no acked records — the oracle has no teeth")
	}
}

func TestIOUringShape(t *testing.T) {
	r := runIOUring(testScale)[0]
	syncThr := cell(t, r, 0, 1)
	deepThr := cell(t, r, 3, 1)
	if deepThr <= syncThr {
		t.Errorf("io_uring depth 128 (%.1f) should out-throughput sync (%.1f)", deepThr, syncThr)
	}
	syncTail := cell(t, r, 0, 3)
	deepTail := cell(t, r, 3, 3)
	if deepTail <= syncTail {
		t.Errorf("io_uring tail (%.2fus) should exceed sync tail (%.2fus) — the §7.1 tradeoff", deepTail, syncTail)
	}
}

func TestResizeShape(t *testing.T) {
	r := runResize(testScale)[0]
	small := cell(t, r, 0, 2)
	grown := cell(t, r, 1, 2)
	shrunk := cell(t, r, 2, 2)
	if grown <= small {
		t.Errorf("grow did not raise throughput: %.1f -> %.1f", small, grown)
	}
	if shrunk >= grown {
		t.Errorf("shrink did not lower throughput: %.1f -> %.1f", grown, shrunk)
	}
}

func TestPageRankWorldsShape(t *testing.T) {
	// PageRank's scans are sequential-heavy: readahead amortizes the
	// per-fault gap on both sides, so Aquila's win is small but real
	// (contrast with BFS's random access in fig6).
	r := runPageRankWorlds(testScale)[0]
	speedup := cell(t, r, 1, 2)
	if speedup < 1.0 {
		t.Errorf("aquila/mmap PageRank = %.2fx, want >= 1.0", speedup)
	}
}

func TestNVMHeapShape(t *testing.T) {
	r := runNVMHeap(testScale)[0]
	slowdown := cell(t, r, 1, 2)
	if slowdown <= 1.0 {
		t.Errorf("Optane-class NVM (%.2fx) should be slower than DRAM-backed pmem", slowdown)
	}
	if slowdown >= 3.0 {
		t.Errorf("DRAM cache should hide most of the 3x media gap, got %.2fx", slowdown)
	}
}

func TestResultCSV(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "has,comma")
	r.AddNote("n")
	csv := r.CSV()
	for _, want := range []string{"a,b\n", `"has,comma"`, "# n\n"} {
		if !strings.Contains(csv, want) {
			t.Errorf("csv missing %q:\n%s", want, csv)
		}
	}
}
