package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/host"
	"aquila/internal/metrics"
	"aquila/internal/sim/device"
	simengine "aquila/internal/sim/engine"
)

// Ablation experiments for the design choices DESIGN.md calls out: eviction
// batch size (amortizing the rate-limited shootdown vmexit), the two-level
// freelist vs a single shared queue, madvise-driven readahead, and the
// io_uring async path the paper leaves as future work (§3.3, §7.1).

func init() {
	register(Experiment{
		ID:    "ablate-batch",
		Title: "Ablation: eviction/shootdown batch size (§3.2, §4.1)",
		Paper: "the 2081-cycle vmexit send is amortized over 512-page batches; small batches pay it per page",
		Run:   runAblateBatch,
	})
	register(Experiment{
		ID:    "ablate-freelist",
		Title: "Ablation: two-level freelist vs single shared queue (§3.2)",
		Paper: "per-core + per-NUMA queues with batched movement avoid allocator contention",
		Run:   runAblateFreelist,
	})
	register(Experiment{
		ID:    "ablate-readahead",
		Title: "Ablation: madvise-driven readahead for sequential scans (§3.2)",
		Paper: "read-ahead based on madvise improves sequential reads",
		Run:   runAblateReadahead,
	})
	register(Experiment{
		ID:    "iouring",
		Title: "Extension: io_uring async I/O vs synchronous direct I/O (§7.1 discussion)",
		Paper: "async batching raises throughput but increases tail latency vs synchronous I/O",
		Run:   runIOUring,
	})
}

// runAblateBatch sweeps Aquila's eviction batch size on the out-of-memory
// microbenchmark: smaller batches mean more shootdown vmexits per fault.
func runAblateBatch(scale float64) []*Result {
	r := &Result{
		ID:     "ablate-batch",
		Title:  "Out-of-memory fault throughput vs eviction batch (16 threads, pmem)",
		Header: []string{"evict batch", "Kops/s", "shootdown batches", "avg(us)"},
	}
	cache := scaled(16*mib, scale, 4*mib)
	for _, batch := range []int{8, 32, 128, 512} {
		params := aquilaParams(cache)
		params.EvictBatch = batch
		sys := boot(aquila.Options{
			Mode: aquila.ModeAquila, Device: aquila.DevicePMem,
			CacheBytes: cache, DeviceBytes: cache*12 + 96*mib,
			CPUs: 32, Seed: 91, Params: params,
		})
		res := microOverSystem(sys, cache*12, 16, scaledN(3000, scale, 600), 91)
		r.AddRow(fmt.Sprint(batch), kops(res.ops, res.elapsed),
			fmt.Sprint(sys.RT.Stats.ShootdownBatches), usF(res.lat.Mean()))
	}
	r.AddNote("larger batches amortize the rate-limited IPI send and the per-batch bookkeeping")
	return []*Result{r}
}

// runAblateFreelist compares the two-level freelist against a single locked
// shared queue under a multithreaded eviction-heavy load.
func runAblateFreelist(scale float64) []*Result {
	r := &Result{
		ID:     "ablate-freelist",
		Title:  "Out-of-memory fault throughput: freelist design (32 threads, pmem)",
		Header: []string{"freelist", "Kops/s", "avg(us)", "p99.9(us)"},
	}
	cache := scaled(16*mib, scale, 4*mib)
	for _, single := range []bool{false, true} {
		name := "two-level per-core/per-NUMA"
		params := aquilaParams(cache)
		if single {
			name = "single shared queue"
			params.SingleQueueFreelist = true
		}
		sys := boot(aquila.Options{
			Mode: aquila.ModeAquila, Device: aquila.DevicePMem,
			CacheBytes: cache, DeviceBytes: cache*12 + 96*mib,
			CPUs: 32, Seed: 93, Params: params,
		})
		res := microOverSystem(sys, cache*12, 32, scaledN(2000, scale, 500), 93)
		r.AddRow(name, kops(res.ops, res.elapsed), usF(res.lat.Mean()), us(res.lat.P999()))
	}
	r.AddNote("the single queue serializes every allocation and release (§3.2's motivation)")
	return []*Result{r}
}

// microOverSystem runs the uniform-random microbench over a pre-built system.
func microOverSystem(sys *aquila.System, dataset uint64, threads, opsPerThread int, seed int64) microResult {
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "ablate", dataset)
		m = sys.NS.Mmap(p, f, dataset)
		m.Advise(p, aquila.AdviceRandom)
	})
	lats := make([]*metrics.Histogram, threads)
	var ops uint64
	elapsed := sys.Run(threads, func(t int, p *aquila.Proc) {
		lat := metrics.NewHistogram()
		lats[t] = lat
		pages := m.Size() / 4096
		buf := make([]byte, 8)
		x := uint64(seed + int64(t)*2654435761)
		for i := 0; i < opsPerThread; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			pg := (x >> 17) % pages
			t0 := p.Now()
			m.Load(p, pg*4096, buf)
			lat.Record(p.Now() - t0)
		}
		ops += uint64(opsPerThread)
	})
	return microResult{ops: ops, elapsed: elapsed, lat: mergeHists(lats), sys: sys}
}

// runAblateReadahead measures a sequential full-file scan with and without
// madvise(SEQUENTIAL) under Aquila.
func runAblateReadahead(scale float64) []*Result {
	r := &Result{
		ID:     "ablate-readahead",
		Title:  "Sequential scan over Aquila mmio (pmem), 1 thread",
		Header: []string{"madvise", "scan time(ms)", "major faults", "readahead pages"},
	}
	size := scaled(48*mib, scale, 8*mib)
	for _, seq := range []bool{false, true} {
		sys := boot(aquila.Options{
			Mode: aquila.ModeAquila, Device: aquila.DeviceNVMe,
			CacheBytes: size / 4, DeviceBytes: size + 96*mib,
			CPUs: 8, Seed: 95, Params: aquilaParams(size / 4),
		})
		var elapsed uint64
		sys.Do(func(p *aquila.Proc) {
			f := sys.NS.Create(p, "scanfile", size)
			m := sys.NS.Mmap(p, f, size)
			advice := "NORMAL"
			if seq {
				m.Advise(p, aquila.AdviceSequential)
				advice = "SEQUENTIAL"
			}
			_ = advice
			start := p.Now()
			buf := make([]byte, 4096)
			for off := uint64(0); off+4096 <= size; off += 4096 {
				m.Load(p, off, buf)
			}
			elapsed = p.Now() - start
		})
		name := "none"
		if seq {
			name = "MADV_SEQUENTIAL"
		}
		r.AddRow(name, fmt.Sprintf("%.2f", float64(elapsed)/2.4e6),
			fmt.Sprint(sys.RT.Stats.MajorFaults), fmt.Sprint(sys.RT.Stats.ReadaheadPages))
	}
	r.AddNote("readahead merges device reads into multi-page I/Os and overlaps faults")
	return []*Result{r}
}

// runIOUring compares synchronous O_DIRECT reads with io_uring batches of
// increasing depth — the async-I/O tradeoff the paper discusses in §7.1.
func runIOUring(scale float64) []*Result {
	r := &Result{
		ID:     "iouring",
		Title:  "Random 4 KB reads, NVMe: sync pread vs io_uring batches (1 thread)",
		Header: []string{"path", "Kops/s", "avg(us)", "p99.9(us)", "syscalls/op"},
	}
	n := scaledN(4000, scale, 800)
	pages := uint64(256 * mib / 4096)
	// Each path gets a fresh world: simulated time restarts per phase, so
	// sharing a device would queue later phases behind earlier backlogs.
	newWorld := func() (*simengine.Engine, *host.OS, *host.FSFile) {
		e := simengine.New(simengine.Config{NumCPUs: 4, Seed: 97})
		disk := host.NewNVMeDisk("nvme0", device.NewNVMe(1<<30, device.DefaultNVMeConfig()))
		os := host.NewOS(e, disk, 64*mib)
		var f *host.FSFile
		e.Spawn(0, "setup", func(p *aquila.Proc) {
			f = os.FS.Create(p, "data", 256*mib)
		})
		e.Run()
		return e, os, f
	}

	// Synchronous O_DIRECT.
	{
		e, os, f := newWorld()
		lat := metrics.NewHistogram()
		var elapsed uint64
		e.Spawn(0, "sync", func(p *aquila.Proc) {
			hf := os.OpenFile(f, true)
			buf := make([]byte, 4096)
			x := uint64(1)
			start := p.Now()
			for i := 0; i < n; i++ {
				x = x*6364136223846793005 + 1
				t0 := p.Now()
				hf.Pread(p, buf, (x>>17)%pages*4096)
				lat.Record(p.Now() - t0)
			}
			elapsed = p.Now() - start
		})
		e.Run()
		r.AddRow("sync O_DIRECT", kops(uint64(n), elapsed), usF(lat.Mean()),
			us(lat.P999()), "1.00")
	}
	// io_uring at several batch depths.
	for _, depth := range []int{8, 32, 128} {
		e, os, f := newWorld()
		_ = os
		lat := metrics.NewHistogram()
		var elapsed uint64
		var syscalls uint64
		e.Spawn(0, fmt.Sprintf("uring-%d", depth), func(p *aquila.Proc) {
			ring := host.NewIOURing(os, f, 2*depth)
			x := uint64(7)
			start := p.Now()
			remaining := n
			for remaining > 0 {
				batch := depth
				if batch > remaining {
					batch = remaining
				}
				issued := p.Now()
				for j := 0; j < batch; j++ {
					x = x*6364136223846793005 + 1
					ring.Prep(host.Sqe{
						Off: (x >> 17) % pages * 4096,
						Buf: make([]byte, 4096), UserData: uint64(j),
					})
				}
				ring.Enter(p)
				cqes := ring.WaitCqes(p, batch)
				for _, c := range cqes {
					// Per-op latency: from batch issue to completion.
					lat.Record(c.DoneAt - issued)
				}
				remaining -= batch
			}
			elapsed = p.Now() - start
			syscalls = ring.SyscallOps
		})
		e.Run()
		r.AddRow(fmt.Sprintf("io_uring depth %d", depth), kops(uint64(n), elapsed),
			usF(lat.Mean()), us(lat.P999()),
			fmt.Sprintf("%.3f", float64(syscalls)/float64(n)))
	}
	r.AddNote("paper §7.1: async I/O raises throughput via batching but inflates tail latency and is harder to program")
	return []*Result{r}
}
