package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/metrics"
)

// Fault-injection ablation: the out-of-memory mixed workload of
// ablate-async-evict with background eviction on, sweeping the probability of
// transient device write errors. Failed writebacks retry with bounded backoff
// and requeue, so no page is ever lost; the cost surfaces as extra device
// time and io-retry waits, and persistently failing batches push the daemons
// back to synchronous writeback.

func init() {
	register(Experiment{
		ID:    "ablate-faults",
		Title: "Ablation: transient device write faults under background eviction",
		Paper: "end-to-end error propagation (errseq msync, writeback retry/quarantine) hardens §3.2's reclaim pipeline",
		Run:   runAblateFaults,
	})
}

// mixedFaultRun is mixedOverSystem plus a final Msync from the main thread,
// whose errseq-checked result the caller inspects.
func mixedFaultRun(sys *aquila.System, dataset uint64, threads, opsPerThread int, seed int64) (microResult, error) {
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "faults", dataset)
		m = sys.NS.Mmap(p, f, dataset)
		m.Advise(p, aquila.AdviceRandom)
	})
	lats := make([]*metrics.Histogram, threads)
	var ops uint64
	elapsed := sys.Run(threads, func(t int, p *aquila.Proc) {
		lat := metrics.NewHistogram()
		lats[t] = lat
		pages := m.Size() / 4096
		buf := make([]byte, 8)
		x := uint64(seed + int64(t)*2654435761)
		for i := 0; i < opsPerThread; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			pg := (x >> 17) % pages
			t0 := p.Now()
			if i%3 == 0 {
				m.Store(p, pg*4096, buf)
			} else {
				m.Load(p, pg*4096, buf)
			}
			lat.Record(p.Now() - t0)
		}
		ops += uint64(opsPerThread)
	})
	var msyncErr error
	sys.Do(func(p *aquila.Proc) { msyncErr = m.Msync(p) })
	return microResult{ops: ops, elapsed: elapsed, lat: mergeHists(lats), sys: sys}, msyncErr
}

func runAblateFaults(scale float64) []*Result {
	r := &Result{
		ID:    "ablate-faults",
		Title: "Out-of-memory mixed 2:1 microbench (16 threads) with injected transient write faults",
		Header: []string{"device", "P(wr fault)", "Kops/s", "avg(us)", "injected",
			"retries", "requeued", "quarantined", "sync-fallback", "msync"},
	}
	cache := scaled(16*mib, scale, 4*mib)
	ops := scaledN(2500, scale, 500)

	for _, dev := range []aquila.DeviceKind{aquila.DevicePMem, aquila.DeviceNVMe} {
		devName := "pmem"
		if dev == aquila.DeviceNVMe {
			devName = "NVMe"
		}
		for _, prob := range []float64{0, 0.001, 0.01, 0.05} {
			params := aquilaParams(cache)
			params.AsyncEvict = true
			sys := boot(aquila.Options{
				Mode: aquila.ModeAquila, Device: dev,
				CacheBytes: cache, DeviceBytes: cache*12 + 96*mib,
				CPUs: 32, Seed: 99, Params: params,
			})
			if prob > 0 {
				sys.InjectFaults(&aquila.FaultPlan{Seed: 42, Rules: []aquila.FaultRule{
					{Kind: aquila.FaultTransientWrite, Prob: prob},
				}})
			}
			res, msyncErr := mixedFaultRun(sys, cache*12, 16, ops, 99)
			st := sys.RT.Stats
			msyncCell := "ok"
			if msyncErr != nil {
				msyncCell = "EIO"
			}
			r.AddRow(devName, fmt.Sprintf("%g", prob), kops(res.ops, res.elapsed),
				usF(res.lat.Mean()), fmt.Sprint(sys.InjectedFaults()),
				fmt.Sprint(st.IORetries), fmt.Sprint(st.RequeuedPages),
				fmt.Sprint(st.QuarantinedPages), fmt.Sprint(st.SyncWritebackFallbacks),
				msyncCell)
		}
	}
	r.AddNote("transient write errors retry in place with linear backoff (IORetryLimit x IORetryBackoff); pages that exhaust their retries are requeued dirty, so no page is ever dropped")
	r.AddNote("the final msync reports an error (errseq, once per caller) only if a page failed all retries during that very call; requeued pages normally succeed on the next pass")
	return []*Result{r}
}
