package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/kvs/lsm"
	"aquila/internal/metrics"
	"aquila/internal/ycsb"
)

func init() {
	register(Experiment{
		ID:    "fig5a",
		Title: "RocksDB YCSB-C throughput, dataset fits in memory",
		Paper: "mmap beats read/write in-memory; Aquila up to 1.15x over Linux mmap",
		Run: func(scale float64) []*Result {
			return runFig5(scale, true)
		},
	})
	register(Experiment{
		ID:    "fig5b",
		Title: "RocksDB YCSB-C throughput, dataset 4x the cache",
		Paper: "Linux mmap collapses (128 KB read-around for 1 KB reads); Aquila vs direct I/O: pmem 1.18x@1T -> 1.65x@32T, NVMe ~parity (device-bound)",
		Run: func(scale float64) []*Result {
			return runFig5(scale, false)
		},
	})
}

// rocksMode is one RocksDB configuration of §6.1.
type rocksMode struct {
	name string
	mode aquila.Mode
	io   lsm.IOMode
}

var rocksModes = []rocksMode{
	{"read/write", aquila.ModeLinuxDirect, lsm.IODirectCached},
	{"mmap", aquila.ModeLinuxMmap, lsm.IOMmap},
	{"aquila", aquila.ModeAquila, lsm.IOMmap},
}

// rocksRun loads a RocksDB-like store and drives YCSB-C over it.
func rocksRun(mode rocksMode, dev aquila.DeviceKind, cache uint64, records uint64,
	valueSize, threads, opsPerThread int, seed int64) (uint64, uint64, *metrics.Histogram) {
	dataset := records * sstBytesPerRecord(valueSize)
	opts := aquila.Options{
		Mode: mode.mode, Device: dev,
		CacheBytes:  cache,
		DeviceBytes: dataset*2 + 256*mib,
		CPUs:        32,
		Seed:        seed,
	}
	if mode.mode == aquila.ModeAquila {
		opts.Params = aquilaParams(cache)
	}
	sys := boot(opts)
	var db *lsm.DB
	sys.Do(func(p *aquila.Proc) {
		db = lsm.Open(p, sys.Sim, lsm.Options{
			NS:              sys.NS,
			Mode:            mode.io,
			BlockCacheBytes: cache, // same DRAM budget as the page caches
			SSTTargetBytes:  int(minU64(8*mib, cache/2)),
			DisableWAL:      true,
			Seed:            seed,
		})
		db.BulkLoad(p, records, valueSize)
	})
	// Warmup: one sequential pass over all records, so caches and PTEs
	// reach steady state before measurement (as the paper's runs do).
	sys.Do(func(p *aquila.Proc) {
		for id := uint64(0); id < records; id++ {
			db.Get(p, ycsb.KeyBytes(id))
		}
	})
	lats := make([]*metrics.Histogram, threads)
	var ops uint64
	elapsed := sys.Run(threads, func(t int, p *aquila.Proc) {
		g := ycsb.NewGenerator(ycsb.Config{
			Workload: ycsb.WorkloadC, Records: records,
			ValueSize: valueSize, Seed: seed + int64(t)*31,
		})
		res := ycsb.RunThread(p, db, g, uint64(opsPerThread))
		lats[t] = res.Lat
		ops += res.Ops
	})
	return ops, elapsed, mergeHists(lats)
}

// sstBytesPerRecord is the on-disk footprint of one record including block
// padding (records never straddle 4 KB blocks).
func sstBytesPerRecord(valueSize int) uint64 {
	entry := 4 + 30 + valueSize
	perBlock := 4096 / entry
	if perBlock == 0 {
		perBlock = 1
	}
	return uint64(4096 / perBlock)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func runFig5(scale float64, inMemory bool) []*Result {
	id, title := "fig5a", "dataset fits in the cache"
	if !inMemory {
		id, title = "fig5b", "dataset 4x the cache"
	}
	r := &Result{
		ID:    id,
		Title: "RocksDB YCSB-C (uniform, 1 KB values), " + title,
		Header: []string{"device", "threads", "mode", "Kops/s", "avg(us)", "p99.9(us)",
			"vs read/write"},
	}
	cache := scaled(48*mib, scale, 8*mib)
	valueSize := 1000
	perRecord := sstBytesPerRecord(valueSize)
	var records uint64
	if inMemory {
		// ~80% of the cache: the dataset plus table metadata fits with
		// headroom, as in the paper's 8 GB dataset / 8 GB cgroup setup.
		records = cache * 8 / 10 / perRecord
	} else {
		records = 4 * cache / perRecord
	}
	ops := scaledN(2500, scale, 400)
	threadCounts := []int{1, 8, 32}
	if scale < 0.5 {
		threadCounts = []int{1, 8}
	}
	for _, dev := range []aquila.DeviceKind{aquila.DeviceNVMe, aquila.DevicePMem} {
		devName := "NVMe"
		if dev == aquila.DevicePMem {
			devName = "pmem"
		}
		for _, threads := range threadCounts {
			base := map[string]float64{}
			for _, m := range rocksModes {
				opsDone, elapsed, lat := rocksRun(m, dev, cache, records,
					valueSize, threads, ops, 77)
				thr := aquila.ThroughputOpsPerSec(opsDone, elapsed) / 1e3
				if m.name == "read/write" {
					base[devName] = thr
				}
				r.AddRow(devName, fmt.Sprint(threads), m.name,
					fmt.Sprintf("%.1f", thr), usF(lat.Mean()), us(lat.P999()),
					ratio(thr, base[devName]))
			}
		}
	}
	if inMemory {
		r.AddNote("paper: in-memory, mmap > read/write; Aquila up to 1.15x over mmap")
		r.AddNote("paper latency (NVMe): Aquila 1.28-1.39x lower avg than direct I/O; tail 3.88x lower on average")
	} else {
		r.AddNote("paper: mmap performs poorly out-of-memory; Aquila/direct-IO = 1.18x@1T, 1.65x@32T on pmem; 0.96-1.06x on NVMe (device-bound)")
		r.AddNote("paper tail latency out-of-memory: Aquila 1.26x lower on average")
	}
	return []*Result{r}
}
