package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/core"
	"aquila/internal/kvs/lsm"
	"aquila/internal/metrics"
	"aquila/internal/obs"
	"aquila/internal/ycsb"
)

func init() {
	register(Experiment{
		ID:    "fig5a",
		Title: "RocksDB YCSB-C throughput, dataset fits in memory",
		Paper: "mmap beats read/write in-memory; Aquila up to 1.15x over Linux mmap",
		Run: func(scale float64) []*Result {
			return runFig5(scale, true)
		},
	})
	register(Experiment{
		ID:    "fig5b",
		Title: "RocksDB YCSB-C throughput, dataset 4x the cache",
		Paper: "Linux mmap collapses (128 KB read-around for 1 KB reads); Aquila vs direct I/O: pmem 1.18x@1T -> 1.65x@32T, NVMe ~parity (device-bound)",
		Run: func(scale float64) []*Result {
			return runFig5(scale, false)
		},
	})
}

// rocksMode is one RocksDB configuration of §6.1.
type rocksMode struct {
	name string
	mode aquila.Mode
	io   lsm.IOMode
}

var rocksModes = []rocksMode{
	{"read/write", aquila.ModeLinuxDirect, lsm.IODirectCached},
	{"mmap", aquila.ModeLinuxMmap, lsm.IOMmap},
	{"aquila", aquila.ModeAquila, lsm.IOMmap},
}

// rocksOut is one rocksRun measurement plus the Aquila-only reclaim telemetry
// fig5b's machine-readable report needs.
type rocksOut struct {
	ops     uint64
	elapsed uint64
	lat     *metrics.Histogram
	// breakDelta is the runtime's fault-cycle breakdown accumulated during
	// the measured phase only (nil in the Linux modes).
	breakDelta map[string]uint64
	// stats snapshots the runtime counters after the measured phase (zero in
	// the Linux modes).
	stats core.Stats
}

// rocksRunX loads a RocksDB-like store and drives YCSB-C over it. mut, when
// non-nil, adjusts the Aquila runtime parameters (fig5b uses it to switch on
// the background evictor).
func rocksRunX(mode rocksMode, dev aquila.DeviceKind, cache uint64, records uint64,
	valueSize, threads, opsPerThread int, seed int64, mut func(*core.Params)) rocksOut {
	dataset := records * sstBytesPerRecord(valueSize)
	opts := aquila.Options{
		Mode: mode.mode, Device: dev,
		CacheBytes:  cache,
		DeviceBytes: dataset*2 + 256*mib,
		CPUs:        32,
		Seed:        seed,
	}
	if mode.mode == aquila.ModeAquila {
		ps := aquilaParams(cache)
		if mut != nil {
			mut(ps)
		}
		opts.Params = ps
	}
	sys := boot(opts)
	var db *lsm.DB
	sys.Do(func(p *aquila.Proc) {
		db = lsm.Open(p, sys.Sim, lsm.Options{
			NS:              sys.NS,
			Mode:            mode.io,
			BlockCacheBytes: cache, // same DRAM budget as the page caches
			SSTTargetBytes:  int(minU64(8*mib, cache/2)),
			DisableWAL:      true,
			Seed:            seed,
		})
		db.BulkLoad(p, records, valueSize)
	})
	// Warmup: one sequential pass over all records, so caches and PTEs
	// reach steady state before measurement (as the paper's runs do).
	sys.Do(func(p *aquila.Proc) {
		for id := uint64(0); id < records; id++ {
			db.Get(p, ycsb.KeyBytes(id))
		}
	})
	var break0 map[string]uint64
	if sys.RT != nil {
		break0 = sys.RT.Break.Map()
	}
	lats := make([]*metrics.Histogram, threads)
	var ops uint64
	elapsed := sys.Run(threads, func(t int, p *aquila.Proc) {
		g := ycsb.NewGenerator(ycsb.Config{
			Workload: ycsb.WorkloadC, Records: records,
			ValueSize: valueSize, Seed: seed + int64(t)*31,
		})
		res := ycsb.RunThread(p, db, g, uint64(opsPerThread))
		lats[t] = res.Lat
		ops += res.Ops
	})
	out := rocksOut{ops: ops, elapsed: elapsed, lat: mergeHists(lats)}
	if sys.RT != nil {
		out.breakDelta = subMap(sys.RT.Break.Map(), break0)
		out.stats = sys.RT.Stats
	}
	return out
}

// rocksRun is rocksRunX with default parameters, for callers that only need
// the throughput triple.
func rocksRun(mode rocksMode, dev aquila.DeviceKind, cache uint64, records uint64,
	valueSize, threads, opsPerThread int, seed int64) (uint64, uint64, *metrics.Histogram) {
	o := rocksRunX(mode, dev, cache, records, valueSize, threads, opsPerThread, seed, nil)
	return o.ops, o.elapsed, o.lat
}

// sstBytesPerRecord is the on-disk footprint of one record including block
// padding (records never straddle 4 KB blocks).
func sstBytesPerRecord(valueSize int) uint64 {
	entry := 4 + 30 + valueSize
	perBlock := 4096 / entry
	if perBlock == 0 {
		perBlock = 1
	}
	return uint64(4096 / perBlock)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func runFig5(scale float64, inMemory bool) []*Result {
	id, title := "fig5a", "dataset fits in the cache"
	if !inMemory {
		id, title = "fig5b", "dataset 4x the cache"
	}
	r := &Result{
		ID:    id,
		Title: "RocksDB YCSB-C (uniform, 1 KB values), " + title,
		Header: []string{"device", "threads", "mode", "Kops/s", "avg(us)", "p99.9(us)",
			"vs read/write"},
	}
	cache := scaled(48*mib, scale, 8*mib)
	valueSize := 1000
	perRecord := sstBytesPerRecord(valueSize)
	var records uint64
	if inMemory {
		// ~80% of the cache: the dataset plus table metadata fits with
		// headroom, as in the paper's 8 GB dataset / 8 GB cgroup setup.
		records = cache * 8 / 10 / perRecord
	} else {
		records = 4 * cache / perRecord
	}
	ops := scaledN(2500, scale, 400)
	threadCounts := []int{1, 8, 32}
	if scale < 0.5 {
		threadCounts = []int{1, 8}
	}
	lastThreads := threadCounts[len(threadCounts)-1]
	syncAq := map[aquila.DeviceKind]rocksOut{}
	for _, dev := range []aquila.DeviceKind{aquila.DeviceNVMe, aquila.DevicePMem} {
		devName := "NVMe"
		if dev == aquila.DevicePMem {
			devName = "pmem"
		}
		for _, threads := range threadCounts {
			base := map[string]float64{}
			for _, m := range rocksModes {
				o := rocksRunX(m, dev, cache, records,
					valueSize, threads, ops, 77, nil)
				thr := aquila.ThroughputOpsPerSec(o.ops, o.elapsed) / 1e3
				if m.name == "read/write" {
					base[devName] = thr
				}
				r.AddRow(devName, fmt.Sprint(threads), m.name,
					fmt.Sprintf("%.1f", thr), usF(o.lat.Mean()), us(o.lat.P999()),
					ratio(thr, base[devName]))
				if !inMemory && m.name == "aquila" && threads == lastThreads {
					syncAq[dev] = o
				}
			}
		}
	}
	if inMemory {
		r.AddNote("paper: in-memory, mmap > read/write; Aquila up to 1.15x over mmap")
		r.AddNote("paper latency (NVMe): Aquila 1.28-1.39x lower avg than direct I/O; tail 3.88x lower on average")
	} else {
		addFig5bAsync(r, scale, cache, records, valueSize, lastThreads, ops, syncAq)
		r.AddNote("paper: mmap performs poorly out-of-memory; Aquila/direct-IO = 1.18x@1T, 1.65x@32T on pmem; 0.96-1.06x on NVMe (device-bound)")
		r.AddNote("paper tail latency out-of-memory: Aquila 1.26x lower on average")
	}
	return []*Result{r}
}

// addFig5bAsync appends the background-evictor comparison to the fig5b table
// and attaches the machine-readable report: the same out-of-memory Aquila
// configuration rerun with AsyncEvict=true, so reclaim moves off the fault
// path onto the per-NUMA bg-evict daemons and writeback overlaps with
// foreground faults.
func addFig5bAsync(r *Result, scale float64, cache, records uint64,
	valueSize, threads, ops int, syncAq map[aquila.DeviceKind]rocksOut) {
	aqMode := rocksModes[len(rocksModes)-1]
	for _, dev := range []aquila.DeviceKind{aquila.DeviceNVMe, aquila.DevicePMem} {
		devName := "NVMe"
		if dev == aquila.DevicePMem {
			devName = "pmem"
		}
		sync := syncAq[dev]
		async := rocksRunX(aqMode, dev, cache, records, valueSize, threads, ops, 77,
			func(ps *core.Params) { ps.AsyncEvict = true })
		syncThr := aquila.ThroughputOpsPerSec(sync.ops, sync.elapsed) / 1e3
		asyncThr := aquila.ThroughputOpsPerSec(async.ops, async.elapsed) / 1e3
		r.AddRow(devName, fmt.Sprint(threads), "aquila+bg-evict",
			fmt.Sprintf("%.1f", asyncThr), usF(async.lat.Mean()), us(async.lat.P999()),
			ratio(asyncThr, syncThr))
		if dev != aquila.DeviceNVMe {
			continue
		}
		// The checked-in BENCH_fig5b.json report tracks the NVMe run, where
		// overlapping writeback with foreground faults hides real device
		// latency. (On saturated pmem, reclaim is pure memcpy and N inline
		// reclaimers outrun the per-NUMA daemons — that tradeoff is the
		// ablate-async-evict experiment's story.)
		bd := async.breakDelta
		if bd == nil {
			bd = map[string]uint64{}
		}
		// The reclaim split must always be present, even when one side is
		// zero, so trajectory diffs never lose the column.
		for _, k := range []string{"direct_reclaim", "bg_reclaim"} {
			if _, ok := bd[k]; !ok {
				bd[k] = 0
			}
		}
		lat := async.lat.Summarize()
		r.Report = &obs.Report{
			Schema:     obs.ReportSchemaVersion,
			Experiment: "fig5b",
			Title:      r.Title,
			Scale:      scale,
			Config: map[string]string{
				"workload":       "YCSB-C uniform, 1 KB values",
				"device":         "NVMe",
				"threads":        fmt.Sprint(threads),
				"cache":          fmt.Sprint(cache),
				"records":        fmt.Sprint(records),
				"ops_per_thread": fmt.Sprint(ops),
				"seed":           "77",
				"async_evict":    "true",
			},
			Ops:                 async.ops,
			ElapsedCycles:       async.elapsed,
			ThroughputOpsPerSec: aquila.ThroughputOpsPerSec(async.ops, async.elapsed),
			Latency:             &lat,
			Breakdown:           bd,
			BreakdownTotal:      sumMap(bd),
			TotalCycles:         async.lat.Sum(),
			Extra: map[string]float64{
				"sync_kops":                  syncThr,
				"async_kops":                 asyncThr,
				"async_over_sync_throughput": safeDiv(asyncThr, syncThr),
				"sync_avg_cycles":            sync.lat.Mean(),
				"async_avg_cycles":           async.lat.Mean(),
				"sync_over_async_avg":        safeDiv(sync.lat.Mean(), async.lat.Mean()),
				"sync_p999_cycles":           float64(sync.lat.P999()),
				"async_p999_cycles":          float64(async.lat.P999()),
				"direct_reclaim_pages":       float64(async.stats.DirectReclaimPages),
				"bg_reclaim_pages":           float64(async.stats.BgReclaimPages),
				"evict_stalls":               float64(async.stats.EvictStalls),
				"sync_direct_reclaim_pages":  float64(sync.stats.DirectReclaimPages),
			},
		}
	}
	r.AddNote("aquila+bg-evict: AsyncEvict=true (per-NUMA background evictor, overlapped writeback); its ratio column is vs sync aquila at %d threads", threads)
}
