package harness

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"aquila"
	"aquila/internal/kvs/kreon"
	"aquila/internal/obs"
	"aquila/internal/ycsb"
)

// Crash-state enumeration: a record-append workload with per-batch msync runs
// once to trace its device-op count and msync-ack cycles, then re-runs under a
// strided sweep of crash plans — one killing the machine at the Nth device
// write (with a seeded torn-sector policy), one killing it one cycle after an
// msync acknowledgment. Every crash point recovers from the captured durable
// image and is checked against a three-part oracle: all records acknowledged
// durable before the crash are present and CRC-valid, the crashed runtime
// passes the crash-point invariant audit, and the recovered runtime passes the
// full one. The same sweep runs Aquila and the Linux-mmap baseline on pmem and
// NVMe, plus Kreon end to end (CRC log replay, tail truncation). A final row
// re-runs the ack sweep with Params.UnsafeMsyncAtSubmit — msync acknowledging
// at submission instead of completion — and must FAIL, proving the oracle
// catches writeback-ordering bugs rather than vacuously passing.

func init() {
	register(Experiment{
		ID:    "ablate-crash",
		Title: "Crash-consistency enumeration: strided crash points, recovery oracle",
		Paper: "msync durability contract (§3.2 writeback, §4 Kreon recovery) holds at every enumerated crash point",
		Run:   runAblateCrash,
	})
}

// crashRecSize is the WAL record size: [seq u64][crc u32][pad u32][payload 48].
const crashRecSize = 64

// crashRecord builds record seq; the CRC covers seq and payload.
func crashRecord(seq uint64) []byte {
	rec := make([]byte, crashRecSize)
	binary.LittleEndian.PutUint64(rec, seq)
	for i := 16; i < crashRecSize; i++ {
		rec[i] = byte(seq*2654435761 + uint64(i)*97)
	}
	c := crc32.Update(0, crc32.IEEETable, rec[:8])
	c = crc32.Update(c, crc32.IEEETable, rec[16:])
	binary.LittleEndian.PutUint32(rec[8:], c)
	return rec
}

// crashRecordOK validates a recovered record against its expected sequence.
func crashRecordOK(seq uint64, rec []byte) bool {
	if binary.LittleEndian.Uint64(rec) != seq {
		return false
	}
	c := crc32.Update(0, crc32.IEEETable, rec[:8])
	c = crc32.Update(c, crc32.IEEETable, rec[16:])
	return binary.LittleEndian.Uint32(rec[8:]) == c
}

// crashStoreWrites reads the device content-write counter (the AtDeviceOp
// coordinate space).
func crashStoreWrites(sys *aquila.System) uint64 {
	if sys.PMem != nil {
		return sys.PMem.Store.Stats().Writes
	}
	return sys.NVMe.Store.Stats().Writes
}

// crashProbe is the outcome of one (possibly crashed) run.
type crashProbe struct {
	crashed bool
	// acked counts records whose covering msync had returned before the
	// crash — the durability promises the oracle holds the system to.
	acked uint64
	// lost counts acked records missing or CRC-invalid after recovery.
	lost int
	// invErr is the first invariant failure (crashed or recovered runtime).
	invErr error
	cycles uint64
	// writes and ackCycles are trace-run outputs: total device content
	// writes, and the cycle at which each batch msync returned.
	writes    uint64
	ackCycles []uint64
}

// walCrashRun appends nrec CRC'd records to an mmapped WAL, msyncing every
// group records, under an optional crash plan. If the plan fires it captures
// the durable image, recovers, and verifies every acked record.
func walCrashRun(mode aquila.Mode, dev aquila.DeviceKind, cache, nrec, group uint64,
	unsafe bool, plan *aquila.CrashPlan) crashProbe {
	opts := aquila.Options{
		Mode: mode, Device: dev,
		CacheBytes: cache, DeviceBytes: cache*8 + 64*mib,
		CPUs: 8, Seed: 77,
	}
	if mode == aquila.ModeAquila {
		params := aquilaParams(cache)
		params.UnsafeMsyncAtSubmit = unsafe
		opts.Params = params
	}
	sys := boot(opts)
	if plan != nil {
		sys.InjectCrash(plan)
	}
	walBytes := (nrec*crashRecSize + 4095) &^ uint64(4095)
	var pr crashProbe
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "wal", walBytes)
		m := sys.NS.Mmap(p, f, walBytes)
		for i := uint64(0); i < nrec; i++ {
			m.Store(p, i*crashRecSize, crashRecord(i))
			if (i+1)%group == 0 {
				if m.Msync(p) == nil {
					pr.acked = i + 1
					pr.ackCycles = append(pr.ackCycles, p.Now())
				}
			}
		}
		if m.Msync(p) == nil {
			pr.acked = nrec
			pr.ackCycles = append(pr.ackCycles, p.Now())
		}
	})
	pr.cycles = sys.Sim.Now()
	pr.writes = crashStoreWrites(sys)
	if sys.Crashed() == nil {
		return pr
	}
	pr.crashed = true
	if sys.RT != nil {
		pr.invErr = sys.RT.CheckCrashInvariants()
	}
	img := sys.CaptureCrash()
	rec := aquila.Recover(opts, img)
	rec.Do(func(p *aquila.Proc) {
		f := rec.NS.Create(p, "wal", walBytes)
		m := rec.NS.Mmap(p, f, walBytes)
		buf := make([]byte, crashRecSize)
		for i := uint64(0); i < pr.acked; i++ {
			m.Load(p, i*crashRecSize, buf)
			if !crashRecordOK(i, buf) {
				pr.lost++
			}
		}
	})
	if pr.invErr == nil && rec.RT != nil {
		pr.invErr = rec.RT.CheckInvariants()
	}
	return pr
}

// kreonCrashRun loads records into a Kreon store with per-batch msync under an
// optional crash plan, then recovers via Kreon's CRC-replaying Reopen and
// verifies every acked key.
func kreonCrashRun(dev aquila.DeviceKind, cache, records, group uint64,
	plan *aquila.CrashPlan) crashProbe {
	const valSize = 120
	logBytes := records*260 + 4*mib
	idxBytes := records*80*4 + 4*mib
	opts := aquila.Options{
		Mode: aquila.ModeAquila, Device: dev,
		CacheBytes: cache, DeviceBytes: logBytes + idxBytes + 64*mib,
		CPUs: 8, Seed: 61, Params: aquilaParams(cache),
	}
	kopts := kreon.Options{
		LogBytes: logBytes, IndexBytes: idxBytes,
		L0Entries: int(records)/3 + 1,
	}
	size := uint64(4096) + logBytes + idxBytes
	sys := boot(opts)
	if plan != nil {
		sys.InjectCrash(plan)
	}
	var pr crashProbe
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "kreon.data", size)
		m := sys.NS.Mmap(p, f, size)
		m.Advise(p, aquila.AdviceRandom)
		db := kreon.OpenWithMapping(p, kopts, m)
		for i := uint64(0); i < records; i++ {
			db.Put(p, ycsb.KeyBytes(i), ycsb.Value(i, valSize))
			if (i+1)%group == 0 {
				db.Msync(p)
				pr.acked = i + 1
				pr.ackCycles = append(pr.ackCycles, p.Now())
			}
		}
		db.Msync(p)
		pr.acked = records
		pr.ackCycles = append(pr.ackCycles, p.Now())
	})
	pr.cycles = sys.Sim.Now()
	pr.writes = crashStoreWrites(sys)
	if sys.Crashed() == nil {
		return pr
	}
	pr.crashed = true
	pr.invErr = sys.RT.CheckCrashInvariants()
	img := sys.CaptureCrash()
	rec := aquila.Recover(opts, img)
	rec.Do(func(p *aquila.Proc) {
		f := rec.NS.Create(p, "kreon.data", size)
		m := rec.NS.Mmap(p, f, size)
		db := kreon.Reopen(p, kopts, m)
		if pr.acked > 0 && db.Recov.FreshStore {
			pr.lost = int(pr.acked)
			return
		}
		for i := uint64(0); i < pr.acked; i++ {
			v, ok := db.Get(p, ycsb.KeyBytes(i))
			if !ok || !bytes.Equal(v, ycsb.Value(i, valSize)) {
				pr.lost++
			}
		}
	})
	if pr.invErr == nil {
		pr.invErr = rec.RT.CheckInvariants()
	}
	return pr
}

// crashTally accumulates oracle results across one world's crash-point sweep.
type crashTally struct {
	points, lost, invFails, verified int
	cycles                           uint64
}

func (t *crashTally) add(pr crashProbe) {
	if !pr.crashed {
		return
	}
	t.points++
	t.lost += pr.lost
	if pr.invErr != nil {
		t.invFails++
	}
	t.verified += int(pr.acked) - pr.lost
	t.cycles += pr.cycles
}

// strideOver returns n indices evenly spread over [1, max].
func strideOver(max uint64, n int) []uint64 {
	if max == 0 || n <= 0 {
		return nil
	}
	if uint64(n) > max {
		n = int(max)
	}
	ks := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		k := uint64(1)
		if n > 1 {
			k = 1 + uint64(i)*(max-1)/uint64(n-1)
		}
		ks = append(ks, k)
	}
	return ks
}

func runAblateCrash(scale float64) []*Result {
	r := &Result{
		ID:    "ablate-crash",
		Title: "Crash-state enumeration: per-crash-point recovery oracle (acked records intact, invariants clean)",
		Header: []string{"world", "device", "crash pts", "acked verified",
			"acked lost", "inv fails", "verdict"},
	}
	cache := scaled(8*mib, scale, 2*mib)
	nrec := uint64(scaledN(4096, scale, 768))
	group := nrec / 12
	if group == 0 {
		group = 1
	}
	devPoints := scaledN(12, scale, 5)
	ackPoints := scaledN(6, scale, 3)

	verdict := func(t crashTally) string {
		if t.points == 0 {
			return "SKIP"
		}
		if t.lost == 0 && t.invFails == 0 {
			return "PASS"
		}
		return "FAIL"
	}

	var total, unsafeTally, kreonTotal crashTally
	worlds := []struct {
		name string
		mode aquila.Mode
	}{{"aquila", aquila.ModeAquila}, {"linux", aquila.ModeLinuxMmap}}
	for _, w := range worlds {
		for _, dev := range []aquila.DeviceKind{aquila.DevicePMem, aquila.DeviceNVMe} {
			devName := "pmem"
			if dev == aquila.DeviceNVMe {
				devName = "NVMe"
			}
			trace := walCrashRun(w.mode, dev, cache, nrec, group, false, nil)
			var t crashTally
			// Device-op sweep: die mid-write at strided points over the whole
			// trace, with a seeded torn-sector policy so partial-sector states
			// are enumerated too.
			for _, k := range strideOver(trace.writes, devPoints) {
				t.add(walCrashRun(w.mode, dev, cache, nrec, group, false,
					&aquila.CrashPlan{Seed: int64(k), AtDeviceOp: k, TearProb: 0.3}))
			}
			// Ack-cycle sweep: die one cycle after msync returned — the
			// strongest durability probe (everything just acked must survive).
			// The final ack is skipped: the workload ends there, so the
			// trigger has no scheduling point left to fire at.
			if n := len(trace.ackCycles); n > 1 {
				for _, i := range strideOver(uint64(n-1), ackPoints) {
					t.add(walCrashRun(w.mode, dev, cache, nrec, group, false,
						&aquila.CrashPlan{Seed: 9, AtCycle: trace.ackCycles[i-1] + 1}))
				}
			}
			r.AddRow(w.name, devName, fmt.Sprint(t.points), fmt.Sprint(t.verified),
				fmt.Sprint(t.lost), fmt.Sprint(t.invFails), verdict(t))
			total.points += t.points
			total.lost += t.lost
			total.invFails += t.invFails
			total.verified += t.verified
			total.cycles += t.cycles
		}
	}

	// Kreon end to end: crash mid-write, recover via CRC log replay.
	kreonRecords := uint64(scaledN(300, scale, 90))
	kreonGroup := kreonRecords / 6
	kreonPoints := scaledN(8, scale, 4)
	for _, dev := range []aquila.DeviceKind{aquila.DevicePMem, aquila.DeviceNVMe} {
		devName := "pmem"
		if dev == aquila.DeviceNVMe {
			devName = "NVMe"
		}
		trace := kreonCrashRun(dev, cache, kreonRecords, kreonGroup, nil)
		var t crashTally
		for _, k := range strideOver(trace.writes, kreonPoints) {
			t.add(kreonCrashRun(dev, cache, kreonRecords, kreonGroup,
				&aquila.CrashPlan{Seed: int64(k), AtDeviceOp: k, TearProb: 0.3}))
		}
		r.AddRow("kreon", devName, fmt.Sprint(t.points), fmt.Sprint(t.verified),
			fmt.Sprint(t.lost), fmt.Sprint(t.invFails), verdict(t))
		kreonTotal.points += t.points
		kreonTotal.lost += t.lost
		kreonTotal.invFails += t.invFails
		kreonTotal.verified += t.verified
		kreonTotal.cycles += t.cycles
	}

	// Deliberately broken ordering: msync acknowledges at submission, so data
	// acked into the NVMe completion window is lost at the crash. This row
	// must FAIL — it proves the oracle has teeth.
	{
		trace := walCrashRun(aquila.ModeAquila, aquila.DeviceNVMe, cache, nrec, group, true, nil)
		if n := len(trace.ackCycles); n > 1 {
			for _, i := range strideOver(uint64(n-1), ackPoints) {
				unsafeTally.add(walCrashRun(aquila.ModeAquila, aquila.DeviceNVMe,
					cache, nrec, group, true,
					&aquila.CrashPlan{Seed: 9, AtCycle: trace.ackCycles[i-1] + 1}))
			}
		}
		v := verdict(unsafeTally)
		if v == "FAIL" {
			v = "FAIL (expected)"
		}
		r.AddRow("aquila UNSAFE", "NVMe", fmt.Sprint(unsafeTally.points),
			fmt.Sprint(unsafeTally.verified), fmt.Sprint(unsafeTally.lost),
			fmt.Sprint(unsafeTally.invFails), v)
	}

	r.AddNote("oracle per crash point: every record acked by a returned msync is present and CRC-valid after recovery; crashed runtime passes CheckCrashInvariants, recovered one passes CheckInvariants")
	r.AddNote("device-op points tear in-flight sectors (seeded, prob 0.3); acked data must still survive — only never-acked tails may be torn")
	r.AddNote("the UNSAFE row runs msync acknowledging at submit (Params.UnsafeMsyncAtSubmit): its expected FAIL shows the oracle detects writeback-ordering bugs")

	allCycles := total.cycles + kreonTotal.cycles + unsafeTally.cycles
	ops := uint64(total.verified + kreonTotal.verified)
	r.Report = &obs.Report{
		Schema:     obs.ReportSchemaVersion,
		Experiment: "ablate-crash",
		Title:      r.Title,
		Scale:      scale,
		Config: map[string]string{
			"cache":      fmt.Sprintf("%d", cache),
			"records":    fmt.Sprintf("%d", nrec),
			"group":      fmt.Sprintf("%d", group),
			"dev_points": fmt.Sprintf("%d", devPoints),
			"ack_points": fmt.Sprintf("%d", ackPoints),
			"seed":       "77",
		},
		Ops:                 ops,
		ElapsedCycles:       allCycles,
		ThroughputOpsPerSec: aquila.ThroughputOpsPerSec(ops, allCycles),
		Extra: map[string]float64{
			"crash_points":    float64(total.points),
			"oracle_lost":     float64(total.lost),
			"invariant_fails": float64(total.invFails),
			"kreon_points":    float64(kreonTotal.points),
			"kreon_lost":      float64(kreonTotal.lost),
			"unsafe_points":   float64(unsafeTally.points),
			"unsafe_lost":     float64(unsafeTally.lost),
		},
	}
	return []*Result{r}
}
