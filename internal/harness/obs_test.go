package harness

import (
	"bytes"
	"testing"

	"aquila/internal/obs"
)

// TestFig8aReportCoverage runs the fig8a experiment instrumented and checks
// the acceptance property of the machine-readable report: the breakdown
// categories must account for at least 95% of the total measured fault
// cycles, and the shared tracer/registry must have collected the run.
func TestFig8aReportCoverage(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	Instrument(tr, reg)
	defer Instrument(nil, nil)

	e, ok := Find("fig8a")
	if !ok {
		t.Fatal("fig8a not registered")
	}
	rs := e.Run(testScale)
	if len(rs) == 0 || rs[0].Report == nil {
		t.Fatal("fig8a produced no report")
	}
	rep := rs[0].Report
	if rep.Schema != obs.ReportSchemaVersion {
		t.Errorf("schema = %d, want %d", rep.Schema, obs.ReportSchemaVersion)
	}
	if rep.Ops == 0 || rep.TotalCycles == 0 {
		t.Fatalf("report missing measurements: %+v", rep)
	}
	if c := rep.Coverage(); c < 0.95 || c > 1.0 {
		t.Errorf("breakdown coverage = %.3f, want [0.95, 1.0]; breakdown=%v total=%d",
			c, rep.Breakdown, rep.TotalCycles)
	}

	if len(tr.Spans()) == 0 {
		t.Error("instrumented run recorded no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("trace does not validate: %v", err)
	}
	if len(reg.Keys()) == 0 {
		t.Error("instrumented run registered no metrics")
	}
}

// TestSpansDroppedCounter pins the loss-accounting satellite: PublishAll
// surfaces the tracer's ring evictions as the aq.obs.spans_dropped counter,
// so metrics snapshots state whether the trace is a window or the whole run.
func TestSpansDroppedCounter(t *testing.T) {
	tr := obs.NewTracer()
	tr.SetRingCapacity(8) // tiny rings: the fig8a fault storm must overflow
	reg := obs.NewRegistry()
	Instrument(tr, reg)
	defer Instrument(nil, nil)

	e, ok := Find("fig8a")
	if !ok {
		t.Fatal("fig8a not registered")
	}
	e.Run(testScale)
	PublishAll()

	if tr.Dropped() == 0 {
		t.Fatal("8-slot rings did not overflow under fig8a; test premise broken")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["aq.obs.spans_dropped"]; got != tr.Dropped() {
		t.Errorf("aq.obs.spans_dropped = %d, want %d", got, tr.Dropped())
	}
}

func TestSubSumMap(t *testing.T) {
	after := map[string]uint64{"a": 10, "b": 5, "c": 3}
	before := map[string]uint64{"a": 4, "b": 5, "d": 9}
	d := subMap(after, before)
	if len(d) != 2 || d["a"] != 6 || d["c"] != 3 {
		t.Errorf("subMap = %v, want map[a:6 c:3]", d)
	}
	if got := sumMap(d); got != 9 {
		t.Errorf("sumMap = %d, want 9", got)
	}
}
