package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/sim/cpu"
	"aquila/internal/ycsb"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Standard YCSB workloads",
		Paper: "Table 1",
		Run: func(scale float64) []*Result {
			r := &Result{ID: "table1", Title: "Standard YCSB Workloads",
				Header: []string{"workload", "mix"}}
			for _, w := range ycsb.All {
				r.AddRow(string(w), w.Mix())
			}
			return []*Result{r}
		},
	})
	register(Experiment{
		ID:    "memcpy",
		Title: "4 KB memcpy cost model (§3.3)",
		Paper: "non-SIMD ~2400 cycles; AVX2 streaming ~900 (+300 FPU save/restore) = 2x faster",
		Run:   runMemcpy,
	})
	register(Experiment{
		ID:    "ipi",
		Title: "Batched TLB shootdown amortization (§4.1)",
		Paper: "vmexit send raises an IPI from 298 to 2081 cycles; batching 512 pages amortizes it to ~4 cycles/page",
		Run:   runIPI,
	})
}

func runMemcpy(scale float64) []*Result {
	c := cpu.Default()
	r := &Result{
		ID:     "memcpy",
		Title:  "Copy cost between DRAM cache and pmem (cycles)",
		Header: []string{"size", "non-SIMD", "AVX2 stream", "AVX2 + FPU save/restore", "speedup"},
	}
	for _, sz := range []int{4096, 8192, 65536} {
		plain := c.MemcpyNoSIMD(sz)
		avxOnly := uint64(sz) * c.Memcpy4KAVX2 / 4096
		avxFull := c.MemcpyAVX2(sz)
		r.AddRow(fmt.Sprintf("%dK", sz/1024), fmt.Sprint(plain), fmt.Sprint(avxOnly),
			fmt.Sprint(avxFull), ratio(float64(plain), float64(avxFull)))
	}
	r.AddNote("paper: 2400 vs 1200 cycles at 4 KB = 2x; FPU state save/restore ~300 cycles")
	return []*Result{r}
}

// runIPI measures the send-side cost per invalidated page for different
// shootdown batch sizes, with and without the vmexit-based rate limiting.
func runIPI(scale float64) []*Result {
	c := cpu.Default()
	r := &Result{
		ID:     "ipi",
		Title:  "TLB shootdown send cost per page (31 target CPUs)",
		Header: []string{"batch pages", "posted (no vmexit)", "rate-limited (vmexit)", "cycles/page"},
	}
	const targets = 31
	for _, batch := range []int{1, 8, 64, 512} {
		posted := c.IPISendPosted + 100*targets
		limited := c.IPISendVMExit + 100*targets
		perPage := float64(limited) / float64(batch)
		r.AddRow(fmt.Sprint(batch), fmt.Sprint(posted), fmt.Sprint(limited), f2(perPage))
	}
	r.AddNote("paper: the vmexit send (2081 vs 298 cycles) is amortized over 512-page batches")

	// End-to-end check with the real machinery: shootdown batches during
	// Aquila eviction deliver IRQs to every other CPU.
	sys := boot(aquila.Options{
		Mode: aquila.ModeAquila, Device: aquila.DevicePMem,
		CacheBytes: 8 * mib, DeviceBytes: 160 * mib, CPUs: 8, Seed: 47,
		Params: aquilaParams(8 * mib),
	})
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "ipi-file", 64*mib)
		m = sys.NS.Mmap(p, f, 64*mib)
		m.Advise(p, aquila.AdviceRandom)
		buf := make([]byte, 8)
		for off := uint64(0); off+8 < 64*mib; off += 4096 {
			m.Load(p, off, buf)
		}
	})
	batches := sys.RT.Stats.ShootdownBatches
	evictions := sys.RT.Stats.Evictions
	r.AddNote("end-to-end: %d evictions produced %d shootdown batches (%.0f pages/batch)",
		evictions, batches, float64(evictions)/float64(maxU64(batches, 1)))
	return []*Result{r}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
