package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/metrics"
	"aquila/internal/obs"
)

// Ablation for the 2 MB huge-page mmio path: the same workloads with the
// path disabled (4 KB only), with transparent density-driven promotion at two
// thresholds, and with MADV_HUGEPAGE (promote every extent on first fault).
// Two workloads per device: the dense in-memory touch the path targets
// (every per-fault cost amortized 512x) and an out-of-memory mixed workload
// where reclaim churn fragments the buddy tier.

// hugeDensityDefault is the promotion density harness experiments use when
// they enable the 2 MB path: an extent promotes once a quarter of its 4 KB
// pages are resident (or on first fault under AdviseHuge).
const hugeDensityDefault = 0.25

func init() {
	register(Experiment{
		ID:    "ablate-hugepages",
		Title: "Ablation: 2 MB huge-page mmio path vs 4 KB-only (promotion density sweep)",
		Paper: "per-fault costs (trap, hash, LRU, shootdown, dirty-tree) are paid per 4 KB page; 2 MB units amortize them 512x (cf. Figs 8, 10)",
		Run:   runAblateHugepages,
	})
}

// faultEvents is every fault the runtime handled: major, minor and
// write-protect.
func faultEvents(sys *aquila.System) uint64 {
	st := sys.RT.Stats
	return st.MajorFaults + st.MinorFaults + st.WPFaults
}

// hugeFaultRatio is the share of fault events served by a 2 MB unit — the
// promotion-effectiveness number perfgate tracks across PRs.
func hugeFaultRatio(sys *aquila.System) float64 {
	return safeDiv(float64(sys.RT.Stats.HugeFaults), float64(faultEvents(sys)))
}

// bootHugeWorld boots an Aquila world with the huge path at the given
// promotion density (0 disables it, reproducing the 4 KB-only baseline
// bit-identically).
func bootHugeWorld(dev aquila.DeviceKind, cache, dataset uint64, density float64, seed int64) *aquila.System {
	params := aquilaParams(cache)
	params.HugeFaultDensity = density
	return boot(aquila.Options{
		Mode: aquila.ModeAquila, Device: dev,
		CacheBytes: cache, DeviceBytes: dataset + 96*mib,
		CPUs: 8, Seed: seed, Params: params,
	})
}

// denseTouch is the dense in-memory microbenchmark: threads sequentially load
// every page of a mapping that fits the cache, each thread one contiguous
// chunk. Exactly the access pattern extent promotion exists for.
func denseTouch(sys *aquila.System, dataset uint64, threads int, hint bool) microResult {
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "huge-dense", dataset)
		m = sys.NS.Mmap(p, f, dataset)
		if hint {
			m.Advise(p, aquila.AdviceHuge)
		}
	})
	pages := dataset / 4096
	chunk := pages / uint64(threads)
	lats := make([]*metrics.Histogram, threads)
	var ops uint64
	elapsed := sys.Run(threads, func(t int, p *aquila.Proc) {
		lat := metrics.NewHistogram()
		lats[t] = lat
		buf := make([]byte, 8)
		lo, hi := uint64(t)*chunk, uint64(t+1)*chunk
		if t == threads-1 {
			hi = pages
		}
		for pg := lo; pg < hi; pg++ {
			t0 := p.Now()
			m.Load(p, pg*4096, buf)
			lat.Record(p.Now() - t0)
		}
		ops += hi - lo
	})
	return microResult{ops: ops, elapsed: elapsed, lat: mergeHists(lats), sys: sys}
}

// hugeMixed is the out-of-memory leg: a 2:1 read/write mix at random page
// offsets over a dataset several times the cache, so promotion competes with
// reclaim for contiguity and dirtying stores exercise the demote-vs-whole
// decision.
func hugeMixed(sys *aquila.System, dataset uint64, threads, opsPerThread int, hint bool, seed int64) microResult {
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "huge-mixed", dataset)
		m = sys.NS.Mmap(p, f, dataset)
		m.Advise(p, aquila.AdviceRandom)
		if hint {
			m.Advise(p, aquila.AdviceHuge)
		}
	})
	lats := make([]*metrics.Histogram, threads)
	var ops uint64
	elapsed := sys.Run(threads, func(t int, p *aquila.Proc) {
		lat := metrics.NewHistogram()
		lats[t] = lat
		pages := m.Size() / 4096
		buf := make([]byte, 8)
		x := uint64(seed + int64(t)*2654435761)
		for i := 0; i < opsPerThread; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			pg := (x >> 17) % pages
			t0 := p.Now()
			if i%3 == 0 {
				m.Store(p, pg*4096, buf)
			} else {
				m.Load(p, pg*4096, buf)
			}
			lat.Record(p.Now() - t0)
		}
		ops += uint64(opsPerThread)
	})
	return microResult{ops: ops, elapsed: elapsed, lat: mergeHists(lats), sys: sys}
}

func runAblateHugepages(scale float64) []*Result {
	r := &Result{
		ID:    "ablate-hugepages",
		Title: "2 MB huge-page path: dense in-memory touch and out-of-memory mixed 2:1 (4 threads)",
		Header: []string{"device", "workload", "config", "Kops/s", "avg(us)",
			"faults", "vs 4K", "promo", "demo", "2M evict", "2M share"},
	}
	cache := scaled(32*mib, scale, 16*mib)
	threads := 4
	mixedOps := scaledN(3000, scale, 600)

	type cfg struct {
		name    string
		density float64
		hint    bool
	}
	cfgs := []cfg{
		{"4K only", 0, false},
		{"density 0.5", 0.5, false},
		{"density 0.25", 0.25, false},
		{"AdviseHuge", hugeDensityDefault, true},
	}

	// Headline numbers for the report: dense in-memory on pmem, 4K baseline
	// vs the AdviseHuge run.
	var base4K, headline microResult
	for _, dev := range []aquila.DeviceKind{aquila.DevicePMem, aquila.DeviceNVMe} {
		devName := "pmem"
		if dev == aquila.DeviceNVMe {
			devName = "NVMe"
		}
		for _, inMemory := range []bool{true, false} {
			wlName, dataset := "in-mem dense", cache
			if !inMemory {
				wlName, dataset = "out-of-mem mixed", cache*6
			}
			var baseFaults uint64
			for _, c := range cfgs {
				sys := bootHugeWorld(dev, cache, dataset, c.density, 97)
				var res microResult
				if inMemory {
					res = denseTouch(sys, dataset, threads, c.hint)
				} else {
					res = hugeMixed(sys, dataset, threads, mixedOps, c.hint, 97)
				}
				st := sys.RT.Stats
				events := faultEvents(sys)
				if c.density == 0 {
					baseFaults = events
				}
				r.AddRow(devName, wlName, c.name,
					kops(res.ops, res.elapsed), usF(res.lat.Mean()),
					fmt.Sprint(events), ratio(float64(baseFaults), float64(events)),
					fmt.Sprint(st.HugePromotions), fmt.Sprint(st.HugeDemotions),
					fmt.Sprint(st.HugeEvictions),
					fmt.Sprintf("%.2f", hugeFaultRatio(sys)))
				if dev == aquila.DevicePMem && inMemory {
					if c.density == 0 {
						base4K = res
					} else if c.hint {
						headline = res
					}
				}
			}
		}
	}
	r.AddNote("dense in-memory: promotion replaces 512 per-page faults with one merged 2 MB fill + one huge PTE")
	r.AddNote("out-of-memory: reclaim churn splits buddy blocks; only whole-unit evictions restore contiguity, so the 2M share drops")
	r.AddNote("pmem dense faults: 4K %d vs AdviseHuge %d (%s fewer); cycles %s lower",
		faultEvents(base4K.sys), faultEvents(headline.sys),
		ratio(float64(faultEvents(base4K.sys)), float64(faultEvents(headline.sys))),
		ratio(float64(base4K.elapsed), float64(headline.elapsed)))

	lat := headline.lat.Summarize()
	r.Report = &obs.Report{
		Schema:     obs.ReportSchemaVersion,
		Experiment: "ablate-hugepages",
		Title:      r.Title,
		Scale:      scale,
		Config: map[string]string{
			"mode":    "aquila",
			"device":  "pmem",
			"cache":   fmt.Sprintf("%d", cache),
			"dataset": fmt.Sprintf("%d", cache),
			"threads": fmt.Sprintf("%d", threads),
			"cpus":    "8",
			"seed":    "97",
			"config":  "AdviseHuge, in-mem dense",
		},
		Ops:                 headline.ops,
		ElapsedCycles:       headline.elapsed,
		ThroughputOpsPerSec: aquila.ThroughputOpsPerSec(headline.ops, headline.elapsed),
		Latency:             &lat,
		Extra: map[string]float64{
			"fault_events_4k":      float64(faultEvents(base4K.sys)),
			"fault_events_huge":    float64(faultEvents(headline.sys)),
			"fault_reduction":      safeDiv(float64(faultEvents(base4K.sys)), float64(faultEvents(headline.sys))),
			"elapsed_cycles_4k":    float64(base4K.elapsed),
			"elapsed_cycles_huge":  float64(headline.elapsed),
			"cycle_reduction":      safeDiv(float64(base4K.elapsed), float64(headline.elapsed)),
			"huge_fault_ratio":     hugeFaultRatio(headline.sys),
			"huge_promotions":      float64(headline.sys.RT.Stats.HugePromotions),
			"tlb_2m_capacity_hint": float64(32),
		},
	}
	return []*Result{r}
}
