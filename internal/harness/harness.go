// Package harness regenerates every table and figure of the paper's
// evaluation (§6). Each experiment builds the worlds it compares (Linux
// read/write, Linux mmap, kmmap, Aquila), runs the paper's workload at a
// configurable scale, and prints the same rows/series the paper reports.
//
// Dataset and cache sizes are scaled down from the paper's testbed (see
// EXPERIMENTS.md); every experiment preserves the governing ratios
// (dataset:cache, threads, value sizes), so the *shape* of each figure —
// who wins, by what factor, where crossovers fall — is what reproduces.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"aquila"
	"aquila/internal/metrics"
	"aquila/internal/obs"
)

// Result is one regenerated table/figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Report is the machine-readable form of the experiment's headline
	// numbers (BENCH_<id>.json), populated by experiments that support it.
	Report *obs.Report
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cols ...string) { r.Rows = append(r.Rows, cols) }

// AddNote appends a free-form note (paper-target commentary).
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the result as RFC-4180-ish CSV (header row first; notes as
// comment lines).
func (r *Result) CSV() string {
	var sb strings.Builder
	quote := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(quote(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// Experiment regenerates one paper artefact.
type Experiment struct {
	// ID is the figure/table id ("fig5a", "table1", ...).
	ID string
	// Title describes the artefact.
	Title string
	// Paper states the paper's own headline numbers for the artefact.
	Paper string
	// Run executes at the given scale (1.0 = full scaled-down run; tests
	// use smaller). Returns one or more result tables.
	Run func(scale float64) []*Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in id order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// scaled multiplies a base size by the scale with a floor.
func scaled(base uint64, scale float64, min uint64) uint64 {
	v := uint64(float64(base) * scale)
	if v < min {
		v = min
	}
	return v
}

// scaledN is scaled for plain ints.
func scaledN(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		v = min
	}
	return v
}

// fmtFloat renders a float with sensible precision.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// kops renders throughput in Kops/s.
func kops(ops uint64, cycles uint64) string {
	return fmt.Sprintf("%.1f", aquila.ThroughputOpsPerSec(ops, cycles)/1e3)
}

// us renders cycles as microseconds.
func us(c uint64) string { return fmt.Sprintf("%.2f", aquila.CyclesToMicros(c)) }

// usF renders a float cycle count as microseconds.
func usF(c float64) string { return fmt.Sprintf("%.2f", c/2400.0) }

// mergeHists merges per-thread histograms.
func mergeHists(hs []*metrics.Histogram) *metrics.Histogram {
	out := metrics.NewHistogram()
	for _, h := range hs {
		if h != nil {
			out.Merge(h)
		}
	}
	return out
}

// ratio formats a/b with an "x" suffix.
func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
