package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/core"
	"aquila/internal/metrics"
)

// Ablation for the background-eviction pipeline: the same out-of-memory
// mixed workload under synchronous direct reclaim (every faulting thread pays
// victim selection, shootdown and writeback inline) vs the watermark-driven
// per-NUMA evictor daemons, sweeping the low watermark.

func init() {
	register(Experiment{
		ID:    "ablate-async-evict",
		Title: "Ablation: background eviction & overlapped writeback vs sync reclaim (§3.2)",
		Paper: "kswapd-style watermark reclaim moves select+shootdown+writeback off the fault path",
		Run:   runAblateAsyncEvict,
	})
}

// mixedOverSystem is microOverSystem with stores mixed in (one op in three),
// so eviction always has dirty pages and the writeback path is exercised.
func mixedOverSystem(sys *aquila.System, dataset uint64, threads, opsPerThread int, seed int64) microResult {
	var m aquila.Mapping
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "async-evict", dataset)
		m = sys.NS.Mmap(p, f, dataset)
		m.Advise(p, aquila.AdviceRandom)
	})
	lats := make([]*metrics.Histogram, threads)
	var ops uint64
	elapsed := sys.Run(threads, func(t int, p *aquila.Proc) {
		lat := metrics.NewHistogram()
		lats[t] = lat
		pages := m.Size() / 4096
		buf := make([]byte, 8)
		x := uint64(seed + int64(t)*2654435761)
		for i := 0; i < opsPerThread; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			pg := (x >> 17) % pages
			t0 := p.Now()
			if i%3 == 0 {
				m.Store(p, pg*4096, buf)
			} else {
				m.Load(p, pg*4096, buf)
			}
			lat.Record(p.Now() - t0)
		}
		ops += uint64(opsPerThread)
	})
	return microResult{ops: ops, elapsed: elapsed, lat: mergeHists(lats), sys: sys}
}

func runAblateAsyncEvict(scale float64) []*Result {
	r := &Result{
		ID:    "ablate-async-evict",
		Title: "Out-of-memory mixed 2:1 read/write microbench (16 threads): reclaim policy",
		Header: []string{"device", "reclaim", "low/high wm", "Kops/s", "avg(us)",
			"p99.9(us)", "direct pages", "bg pages", "stalls"},
	}
	cache := scaled(16*mib, scale, 4*mib)
	ops := scaledN(2500, scale, 500)
	batch := aquilaParams(cache).EvictBatch

	type cfg struct {
		name string
		mut  func(ps *core.Params)
	}
	cfgs := []cfg{
		{"sync (direct)", nil},
		{"async default wm", func(ps *core.Params) { ps.AsyncEvict = true }},
	}
	for _, mult := range []int{1, 2, 4} {
		low := mult * batch
		cfgs = append(cfgs, cfg{
			name: fmt.Sprintf("async low=%dx batch", mult),
			mut: func(ps *core.Params) {
				ps.AsyncEvict = true
				ps.LowWatermark = low
				ps.HighWatermark = 3 * low
			},
		})
	}

	for _, dev := range []aquila.DeviceKind{aquila.DevicePMem, aquila.DeviceNVMe} {
		devName := "pmem"
		if dev == aquila.DeviceNVMe {
			devName = "NVMe"
		}
		for _, c := range cfgs {
			params := aquilaParams(cache)
			if c.mut != nil {
				c.mut(params)
			}
			sys := boot(aquila.Options{
				Mode: aquila.ModeAquila, Device: dev,
				CacheBytes: cache, DeviceBytes: cache*12 + 96*mib,
				CPUs: 32, Seed: 99, Params: params,
			})
			res := mixedOverSystem(sys, cache*12, 16, ops, 99)
			st := sys.RT.Stats
			wm := "—"
			if params.AsyncEvict {
				wm = fmt.Sprintf("%d/%d", sys.RT.LowWater(), sys.RT.HighWater())
			}
			r.AddRow(devName, c.name, wm, kops(res.ops, res.elapsed),
				usF(res.lat.Mean()), us(res.lat.P999()),
				fmt.Sprint(st.DirectReclaimPages), fmt.Sprint(st.BgReclaimPages),
				fmt.Sprint(st.EvictStalls))
		}
	}
	r.AddNote("sync: every eviction runs inline in a faulting thread (counted as direct pages)")
	r.AddNote("async: per-NUMA bg-evict daemons refill the freelist between the watermarks; direct reclaim remains only as the fallback when they fall behind")
	return []*Result{r}
}
