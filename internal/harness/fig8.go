package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/host"
	"aquila/internal/obs"
	"aquila/internal/sim/cpu"
)

const mib = 1 << 20

func init() {
	register(Experiment{
		ID:    "fig8a",
		Title: "Page-fault overhead breakdown, dataset fits in memory (pmem)",
		Paper: "Linux fault ~5380 cycles (49% device I/O, 24% trap=1287); Aquila exception 552 = 2.33x cheaper than the trap",
		Run:   runFig8a,
	})
	register(Experiment{
		ID:    "fig8b",
		Title: "Page-fault overhead with evictions in the common path (pmem)",
		Paper: "Aquila 2.06x lower total overhead than Linux mmap; no Aquila component above 10%",
		Run:   runFig8b,
	})
	register(Experiment{
		ID:    "fig8c",
		Title: "Device access methods in Aquila (per-fault cycles)",
		Paper: "Cache-hit 2179 cycles; DAX-pmem 7.77x cheaper than HOST-pmem; SPDK-NVMe 1.53x cheaper than HOST-NVMe",
		Run:   runFig8c,
	})
}

// faultCost measures the average per-fault cycles of a microbench run.
func faultCost(cfg microConfig) (float64, microResult) {
	res := runMicro(cfg)
	if res.ops == 0 {
		return 0, res
	}
	return res.lat.Mean(), res
}

func runFig8a(scale float64) []*Result {
	cache := scaled(64*mib, scale, 8*mib)
	costs := cpu.Default()
	r := &Result{
		ID:     "fig8a",
		Title:  "Per-fault cycles, in-memory dataset, pmem, 1 thread",
		Header: []string{"component", "Linux mmap", "Aquila"},
	}
	base := microConfig{
		device: aquila.DevicePMem, cache: cache, dataset: cache,
		threads: 1, inMemory: true, sharedFile: true, cpus: 4, seed: 42,
	}
	linCfg := base
	linCfg.mode = aquila.ModeLinuxMmap
	linTotal, _ := faultCost(linCfg)
	aqCfg := base
	aqCfg.mode = aquila.ModeAquila
	aqTotal, aqRes := faultCost(aqCfg)
	hugeCfg := aqCfg
	hugeCfg.huge = true
	hugeTotal, hugeRes := faultCost(hugeCfg)

	linIO := float64(costs.MemcpyNoSIMD(4096)) + float64(host.DefaultParams().PMemBlockOverhead)
	aqIO := float64(costs.MemcpyAVX2(4096))
	linTrap := float64(costs.TrapRing3)
	aqExc := float64(costs.ExceptionRing0)

	r.AddRow("total", f2(linTotal), f2(aqTotal))
	r.AddRow("protection switch (trap/exception)", f2(linTrap), f2(aqExc))
	r.AddRow("device I/O", f2(linIO), f2(aqIO))
	r.AddRow("handler + cache mgmt", f2(linTotal-linTrap-linIO), f2(aqTotal-aqExc-aqIO))
	r.AddRow("total excluding device I/O", f2(linTotal-linIO), f2(aqTotal-aqIO))
	r.AddRow("total, 2 MB path (MADV_HUGEPAGE)", "", f2(hugeTotal))
	r.AddNote("paper: Linux ~5380 total, 2724 excluding I/O; trap/exception = 1287/552 = 2.33x")
	r.AddNote("measured trap/exception ratio: %s; Linux/Aquila total: %s",
		ratio(linTrap, aqExc), ratio(linTotal, aqTotal))
	r.AddNote("2 MB path: %s per access vs 4K Aquila (%d fault events vs %d; one promotion per extent)",
		ratio(aqTotal, hugeTotal), faultEvents(hugeRes.sys), faultEvents(aqRes.sys))

	lat := aqRes.lat.Summarize()
	r.Report = &obs.Report{
		Schema:     obs.ReportSchemaVersion,
		Experiment: "fig8a",
		Title:      r.Title,
		Scale:      scale,
		Config: map[string]string{
			"mode":    "aquila",
			"device":  "pmem",
			"cache":   fmt.Sprintf("%d", cache),
			"dataset": fmt.Sprintf("%d", cache),
			"threads": "1",
			"cpus":    "4",
			"seed":    "42",
		},
		Ops:                 aqRes.ops,
		ElapsedCycles:       aqRes.elapsed,
		ThroughputOpsPerSec: aquila.ThroughputOpsPerSec(aqRes.ops, aqRes.elapsed),
		Latency:             &lat,
		Breakdown:           aqRes.breakDelta,
		BreakdownTotal:      sumMap(aqRes.breakDelta),
		TotalCycles:         aqRes.lat.Sum(),
		Extra: map[string]float64{
			"linux_total_per_fault":  linTotal,
			"aquila_total_per_fault": aqTotal,
			"trap_cycles":            linTrap,
			"exception_cycles":       aqExc,
			"linux_over_aquila":      safeDiv(linTotal, aqTotal),
			"trap_over_exception":    safeDiv(linTrap, aqExc),
			"huge_total_per_access":  hugeTotal,
			"aquila_over_huge":       safeDiv(aqTotal, hugeTotal),
			"huge_fault_ratio":       hugeFaultRatio(hugeRes.sys),
		},
	}
	return []*Result{r}
}

func runFig8b(scale float64) []*Result {
	cache := scaled(16*mib, scale, 4*mib)
	dataset := cache * 12 // 8 GB cache / 100 GB dataset class
	r := &Result{
		ID:     "fig8b",
		Title:  "Per-fault cycles with evictions in the common path, pmem, 1 thread",
		Header: []string{"component", "Linux mmap", "Aquila", "Aquila %"},
	}
	base := microConfig{
		device: aquila.DevicePMem, cache: cache, dataset: dataset,
		threads: 1, inMemory: false, opsPerThread: scaledN(20000, scale, 4000),
		sharedFile: true, cpus: 4, seed: 43,
	}
	linCfg := base
	linCfg.mode = aquila.ModeLinuxMmap
	linTotal, _ := faultCost(linCfg)
	aqCfg := base
	aqCfg.mode = aquila.ModeAquila
	aqTotal, aqRes := faultCost(aqCfg)

	// Aquila's own per-component attribution, from the runtime breakdown.
	rt := aqRes.sys.RT
	faults := rt.Stats.MajorFaults + rt.Stats.MinorFaults + rt.Stats.WPFaults
	if faults == 0 {
		faults = 1
	}
	total := float64(rt.Break.Total())
	r.AddRow("total (measured per fault)", f2(linTotal), f2(aqTotal), "")
	for _, cat := range rt.Break.Categories() {
		v := rt.Break.PerOp(cat, faults)
		pct := 100 * float64(rt.Break.Get(cat)) / total
		r.AddRow("  aquila:"+cat, "", f2(v), fmt.Sprintf("%.1f%%", pct))
	}
	r.AddNote("paper: Aquila 2.06x lower than mmap; measured %s", ratio(linTotal, aqTotal))
	r.AddNote("paper: no single Aquila component dominates the common path")
	return []*Result{r}
}

func runFig8c(scale float64) []*Result {
	cache := scaled(32*mib, scale, 8*mib)
	r := &Result{
		ID:     "fig8c",
		Title:  "Aquila per-fault cycles by device access method",
		Header: []string{"access method", "cycles/fault", "vs cache-hit"},
	}
	// Cache-hit: warm all pages, drop the mapping (PTEs), re-fault.
	hit := measureCacheHitFault(cache)
	r.AddRow("Cache-Hit", f2(hit), "1.00x")

	type engCase struct {
		name   string
		device aquila.DeviceKind
		engine aquila.EngineKind
	}
	cases := []engCase{
		{"DAX-pmem", aquila.DevicePMem, aquila.EngineDAX},
		{"HOST-pmem", aquila.DevicePMem, aquila.EngineHostDirect},
		{"SPDK-NVMe", aquila.DeviceNVMe, aquila.EngineSPDK},
		{"HOST-NVMe", aquila.DeviceNVMe, aquila.EngineHostDirect},
	}
	vals := map[string]float64{}
	for _, c := range cases {
		cost, _ := faultCost(microConfig{
			mode: aquila.ModeAquila, device: c.device, engine: c.engine,
			cache: cache, dataset: cache, threads: 1, inMemory: true,
			sharedFile: true, cpus: 4, seed: 44,
		})
		vals[c.name] = cost
		r.AddRow(c.name, f2(cost), ratio(cost, hit))
	}
	r.AddNote("paper: cache-hit 2179 cycles; measured %.0f", hit)
	r.AddNote("paper: HOST-pmem/DAX-pmem = 7.77x; measured %s",
		ratio(vals["HOST-pmem"]-hit, vals["DAX-pmem"]-hit))
	r.AddNote("paper: HOST-NVMe/SPDK-NVMe = 1.53x; measured %s",
		ratio(vals["HOST-NVMe"], vals["SPDK-NVMe"]))
	return []*Result{r}
}

// measureCacheHitFault warms the Aquila cache, drops the mapping, then
// re-faults every page: each fault finds its page cached (no I/O).
func measureCacheHitFault(cache uint64) float64 {
	sys := boot(aquila.Options{
		Mode: aquila.ModeAquila, Device: aquila.DevicePMem,
		CacheBytes: cache * 2, DeviceBytes: cache + 64*mib, CPUs: 4, Seed: 45,
		Params: aquilaParams(cache * 2),
	})
	var mean float64
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "hitfile", cache)
		m := sys.NS.Mmap(p, f, cache)
		m.Advise(p, aquila.AdviceRandom)
		buf := make([]byte, 8)
		pages := cache / 4096
		for pg := uint64(0); pg < pages; pg++ {
			m.Load(p, pg*4096, buf)
		}
		m.Munmap(p)
		m2 := sys.NS.Mmap(p, f, cache)
		m2.Advise(p, aquila.AdviceRandom)
		start := p.Now()
		for pg := uint64(0); pg < pages; pg++ {
			m2.Load(p, pg*4096, buf)
		}
		mean = float64(p.Now()-start) / float64(pages)
	})
	return mean
}
