package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/graph"
	"aquila/internal/sim/cpu"
	"aquila/internal/sim/engine"
)

func init() {
	register(Experiment{
		ID:    "fig6a",
		Title: "Ligra BFS execution time, 8 GB-class DRAM cache",
		Paper: "Aquila vs mmap (pmem): 1.56x @1T, 2.54x @8T, 4.14x @16T; mmap up to 11.8x slower than DRAM-only, Aquila 2.8x",
		Run: func(scale float64) []*Result {
			return []*Result{runFig6(scale, 8, "fig6a")}
		},
	})
	register(Experiment{
		ID:    "fig6b",
		Title: "Ligra BFS execution time, 16 GB-class DRAM cache",
		Paper: "Aquila still up to 2.3x faster than mmap at 16 threads",
		Run: func(scale float64) []*Result {
			return []*Result{runFig6(scale, 4, "fig6b")}
		},
	})
	register(Experiment{
		ID:    "fig6c",
		Title: "Ligra BFS execution-time breakdown, 16 threads, 8 GB-class cache",
		Paper: "mmap: 61.79% system / 10.61% user; Aquila: 43.82% system / 55.92% user; Aquila cuts system+idle time 8.31x",
		Run:   runFig6c,
	})
}

// fig6Config is one Ligra heap configuration.
type fig6Config struct {
	name   string
	mode   aquila.Mode
	device aquila.DeviceKind
	dram   bool
}

var fig6Configs = []fig6Config{
	{"mmap-pmem", aquila.ModeLinuxMmap, aquila.DevicePMem, false},
	{"mmap-NVMe", aquila.ModeLinuxMmap, aquila.DeviceNVMe, false},
	{"aquila-pmem", aquila.ModeAquila, aquila.DevicePMem, false},
	{"aquila-NVMe", aquila.ModeAquila, aquila.DeviceNVMe, false},
	{"DRAM-only", aquila.ModeAquila, aquila.DevicePMem, true},
}

// fig6Sizes derives graph and cache sizes from the scale. overcommit is the
// footprint:cache ratio (8 for the paper's 64 GB / 8 GB configuration).
func fig6Sizes(scale float64) (vertices uint32, edges [][2]uint32, heapBytes uint64) {
	vertices = uint32(scaledN(1<<17, scale, 1<<13))
	raw := graph.RMAT(graph.RMATConfig{Vertices: vertices, EdgeFactor: 10, Seed: 21})
	edges = graph.Symmetrize(raw)
	// offsets + edges + parents + slack
	heapBytes = (uint64(vertices)+1)*8 + uint64(len(edges))*4 + uint64(vertices)*4
	heapBytes = heapBytes*5/4 + 1<<20
	return
}

// runBFSConfig executes BFS in one world and returns the result.
func runBFSConfig(cfg fig6Config, vertices uint32, edges [][2]uint32,
	heapBytes, cache uint64, threads int) graph.BFSResult {
	if cfg.dram {
		e := engine.New(engine.Config{NumCPUs: 32, Seed: 5})
		h := graph.NewMemHeap(heapBytes * 2)
		var g *graph.Graph
		e.Spawn(0, "build", func(p *engine.Proc) {
			g = graph.Build(p, h, vertices, edges)
		})
		e.Run()
		return graph.RunBFS(e, g, 0, threads)
	}
	opts := aquila.Options{
		Mode: cfg.mode, Device: cfg.device,
		CacheBytes:  cache,
		DeviceBytes: heapBytes*2 + 64*mib,
		CPUs:        32, Seed: 5,
	}
	if cfg.mode == aquila.ModeAquila {
		opts.Params = aquilaParams(cache)
	}
	sys := boot(opts)
	var h graph.Heap
	var g *graph.Graph
	sys.Do(func(p *aquila.Proc) {
		f := sys.NS.Create(p, "heap", heapBytes*2)
		m := sys.NS.Mmap(p, f, heapBytes*2)
		m.Advise(p, aquila.AdviceRandom)
		h = graph.NewMappedHeap(m)
		g = graph.Build(p, h, vertices, edges)
	})
	return graph.RunBFS(sys.Sim, g, 0, threads)
}

func runFig6(scale float64, overcommit uint64, id string) *Result {
	vertices, edges, heapBytes := fig6Sizes(scale)
	cache := heapBytes / overcommit
	if cache < 1500*1024 {
		cache = 1500 * 1024 // keep batch:cache ratios in the paper's regime
	}
	r := &Result{
		ID: id,
		Title: fmt.Sprintf("Ligra BFS, R-MAT %dK vertices / %dK sym edges, cache = footprint/%d",
			vertices/1024, len(edges)/1024, overcommit),
		Header: []string{"threads", "config", "exec time(ms)", "vs mmap-pmem", "vs DRAM-only"},
	}
	threadCounts := []int{1, 8, 16}
	if scale < 0.5 {
		threadCounts = []int{1, 8}
	}
	for _, threads := range threadCounts {
		times := map[string]float64{}
		for _, cfg := range fig6Configs {
			res := runBFSConfig(cfg, vertices, edges, heapBytes, cache, threads)
			times[cfg.name] = cpu.CyclesToSeconds(res.ElapsedCycles) * 1e3
		}
		for _, cfg := range fig6Configs {
			ms := times[cfg.name]
			r.AddRow(fmt.Sprint(threads), cfg.name, fmt.Sprintf("%.2f", ms),
				ratio(times["mmap-pmem"], ms), ratio(ms, times["DRAM-only"]))
		}
	}
	r.AddNote("paper (8 GB-class): Aquila/mmap = 1.56x @1T, 2.54x @8T, 4.14x @16T; (16 GB-class) up to 2.3x")
	return r
}

func runFig6c(scale float64) []*Result {
	vertices, edges, heapBytes := fig6Sizes(scale)
	cache := heapBytes / 8
	if cache < 1500*1024 {
		cache = 1500 * 1024
	}
	threads := 16
	if scale < 0.5 {
		threads = 8
	}
	r := &Result{
		ID:     "fig6c",
		Title:  fmt.Sprintf("BFS execution-time breakdown, %d threads, cache = footprint/8 (pmem)", threads),
		Header: []string{"config", "user %", "system %", "idle %"},
	}
	type rowT struct {
		name string
		cfg  fig6Config
	}
	sums := map[string][4]uint64{}
	for _, row := range []rowT{
		{"mmap-pmem", fig6Configs[0]},
		{"aquila-pmem", fig6Configs[2]},
	} {
		res := runBFSConfig(row.cfg, vertices, edges, heapBytes, cache, threads)
		total := float64(res.Acct[0] + res.Acct[1] + res.Acct[2] + res.Acct[3])
		if total == 0 {
			total = 1
		}
		user := 100 * float64(res.Acct[engine.KindUser]) / total
		system := 100 * float64(res.Acct[engine.KindSystem]) / total
		idle := 100 * float64(res.Acct[engine.KindIOWait]+res.Acct[engine.KindLockWait]) / total
		sums[row.name] = res.Acct
		r.AddRow(row.name, fmt.Sprintf("%.1f", user), fmt.Sprintf("%.1f", system),
			fmt.Sprintf("%.1f", idle))
	}
	mm, aq := sums["mmap-pmem"], sums["aquila-pmem"]
	mmNonUser := float64(mm[1] + mm[2] + mm[3])
	aqNonUser := float64(aq[1] + aq[2] + aq[3])
	r.AddNote("paper: mmap 61.79%% system / 10.61%% user; Aquila 43.82%% system / 55.92%% user")
	r.AddNote("paper: Aquila reduces system+idle time 8.31x; measured %s", ratio(mmNonUser, aqNonUser))
	return []*Result{r}
}
