package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/obs"
)

// Harness-wide observability: cmd/aquila-bench calls Instrument once with a
// shared tracer and registry, and every System any experiment boots from then
// on reports into them. Each System gets a unique trace label
// ("<mode>.<seq>"), so several experiments can share one trace file and one
// metrics snapshot without their series colliding.

var (
	obsTracer  *obs.Tracer
	obsReg     *obs.Registry
	obsSeq     int
	obsSystems []*aquila.System
)

// Instrument routes all subsequently booted Systems into tr and reg (either
// may be nil). Pass nil, nil to turn instrumentation back off.
func Instrument(tr *obs.Tracer, reg *obs.Registry) {
	obsTracer, obsReg, obsSeq = tr, reg, 0
	obsSystems = nil
}

// Registry returns the registry experiments currently report into (nil when
// uninstrumented).
func Registry() *obs.Registry { return obsReg }

// boot creates a System, injecting the harness tracer/registry. With no
// instrumentation configured it is exactly aquila.New.
func boot(opts aquila.Options) *aquila.System {
	if obsTracer == nil && obsReg == nil {
		return aquila.New(opts)
	}
	opts.Tracer = obsTracer
	opts.Registry = obsReg
	if opts.TraceLabel == "" {
		obsSeq++
		opts.TraceLabel = fmt.Sprintf("%s.%d", modeLabel(opts.Mode), obsSeq)
	}
	sys := aquila.New(opts)
	obsSystems = append(obsSystems, sys)
	return sys
}

// PublishAll pushes the final per-System counters (fault stats, page-cache
// and device totals, final simulated clock) of every instrumented System into
// the registry. Call once after the experiments finish, before snapshotting.
func PublishAll() {
	for _, s := range obsSystems {
		s.PublishStats()
	}
}

func modeLabel(m aquila.Mode) string {
	switch m {
	case aquila.ModeLinuxMmap:
		return "linux"
	case aquila.ModeLinuxDirect:
		return "linux-direct"
	default:
		return "aquila"
	}
}

// subMap returns after-before per category (clamped at zero), dropping empty
// categories: the per-phase delta of a cumulative breakdown.
func subMap(after, before map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for k, v := range after {
		if b, ok := before[k]; ok {
			if v <= b {
				continue
			}
			v -= b
		}
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// safeDiv is a/b with 0 for an empty denominator (reports must not carry
// NaN/Inf — encoding/json rejects them).
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func sumMap(m map[string]uint64) uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}
