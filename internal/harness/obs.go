package harness

import (
	"fmt"

	"aquila"
	"aquila/internal/obs"
)

// Harness-wide observability: cmd/aquila-bench calls Instrument once with a
// shared tracer and registry, and every System any experiment boots from then
// on reports into them. Each System gets a unique trace label
// ("<mode>.<seq>"), so several experiments can share one trace file and one
// metrics snapshot without their series colliding.

var (
	obsTracer  *obs.Tracer
	obsReg     *obs.Registry
	obsProf    obs.SpanSink
	obsSeq     int
	obsSystems []*aquila.System

	// cycleSystems tracks every System booted since the last TakeSimCycles
	// call, instrumented or not, so the bench driver can report simulated
	// cycles per experiment instead of host wall-clock.
	cycleSystems []*aquila.System
)

// Instrument routes all subsequently booted Systems into tr and reg (either
// may be nil). Pass nil, nil to turn instrumentation back off.
func Instrument(tr *obs.Tracer, reg *obs.Registry) {
	obsTracer, obsReg, obsSeq = tr, reg, 0
	obsSystems = nil
}

// InstrumentProfiler routes the lossless span stream of all subsequently
// booted Systems into sink (typically a *profile.Profiler). Independent of
// Instrument: profiling works without a tracer and vice versa. Trace labels
// stay deterministic because obsSeq is shared with Instrument; call
// Instrument first when combining the two.
func InstrumentProfiler(sink obs.SpanSink) {
	obsProf = sink
}

// Registry returns the registry experiments currently report into (nil when
// uninstrumented).
func Registry() *obs.Registry { return obsReg }

// boot creates a System, injecting the harness tracer/registry. With no
// instrumentation configured it is exactly aquila.New plus cycle tracking.
func boot(opts aquila.Options) *aquila.System {
	instrumented := obsTracer != nil || obsReg != nil || obsProf != nil
	if instrumented {
		opts.Tracer = obsTracer
		opts.Registry = obsReg
		opts.Profiler = obsProf
		if opts.TraceLabel == "" {
			obsSeq++
			opts.TraceLabel = fmt.Sprintf("%s.%d", modeLabel(opts.Mode), obsSeq)
		}
	}
	sys := aquila.New(opts)
	if instrumented {
		obsSystems = append(obsSystems, sys)
	}
	cycleSystems = append(cycleSystems, sys)
	return sys
}

// TakeSimCycles returns the simulated cycles accrued by every System booted
// since the previous call (their final clocks summed), then drops the
// tracked references. The bench driver calls it once per experiment.
func TakeSimCycles() uint64 {
	var total uint64
	for _, s := range cycleSystems {
		total += s.Sim.Now()
	}
	cycleSystems = nil
	return total
}

// PublishAll pushes the final per-System counters (fault stats, page-cache
// and device totals, final simulated clock) of every instrumented System into
// the registry. Call once after the experiments finish, before snapshotting.
func PublishAll() {
	for _, s := range obsSystems {
		s.PublishStats()
	}
	// Surface ring-buffer losses: a nonzero value warns that the Chrome
	// trace is a window, not the whole run (the profiler sink is lossless).
	if obsTracer != nil && obsReg != nil {
		obsReg.Counter("aq.obs.spans_dropped").Set(obsTracer.Dropped())
	}
}

func modeLabel(m aquila.Mode) string {
	switch m {
	case aquila.ModeLinuxMmap:
		return "linux"
	case aquila.ModeLinuxDirect:
		return "linux-direct"
	default:
		return "aquila"
	}
}

// subMap returns after-before per category (clamped at zero), dropping empty
// categories: the per-phase delta of a cumulative breakdown.
func subMap(after, before map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for k, v := range after {
		if b, ok := before[k]; ok {
			if v <= b {
				continue
			}
			v -= b
		}
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// safeDiv is a/b with 0 for an empty denominator (reports must not carry
// NaN/Inf — encoding/json rejects them).
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func sumMap(m map[string]uint64) uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}
