package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aquila/internal/obs/profile"
)

var updateProfileGolden = flag.Bool("update", false, "rewrite the golden profile")

// profileFig8a runs the fig8a experiment (page-fault breakdown, in-memory
// pmem dataset) with the profiler attached, exactly as cmd/aquila-bench
// -profile-dir does, and returns the profiler plus its exports.
func profileFig8a(t *testing.T, scale float64) (*profile.Profiler, []byte, []byte) {
	t.Helper()
	prof := profile.New()
	// Reset the label sequence so every invocation names its systems
	// identically ("linux.1", "aquila.2", ...): track names are part of the
	// profile's byte identity.
	Instrument(nil, nil)
	InstrumentProfiler(prof)
	defer InstrumentProfiler(nil)
	TakeSimCycles() // drain systems booted by earlier tests

	e, ok := Find("fig8a")
	if !ok {
		t.Fatal("fig8a experiment not registered")
	}
	e.Run(scale)
	prof.SetTotalCycles(TakeSimCycles())

	var js, folded bytes.Buffer
	if err := prof.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := prof.WriteFolded(&folded); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	return prof, js.Bytes(), folded.Bytes()
}

// TestProfileDeterminism is the profiler's core guarantee: the same seed run
// twice produces byte-identical profile JSON and folded output — profiles
// diff cleanly across commits and can be gated exactly.
func TestProfileDeterminism(t *testing.T) {
	_, js1, folded1 := profileFig8a(t, 0.25)
	_, js2, folded2 := profileFig8a(t, 0.25)
	if !bytes.Equal(js1, js2) {
		t.Errorf("profile JSON differs across identical runs (%d vs %d bytes)", len(js1), len(js2))
	}
	if !bytes.Equal(folded1, folded2) {
		t.Errorf("folded output differs across identical runs:\n%s\nvs\n%s", folded1, folded2)
	}
	if len(folded1) == 0 {
		t.Fatal("profile is empty: the fig8a hot paths emitted no spans")
	}
}

// TestProfileReconciles pins the accounting invariant: every track's root
// inclusive cycles fit within the simulated-cycle total TakeSimCycles
// measured, and children nest within parents throughout the tree.
func TestProfileReconciles(t *testing.T) {
	prof, _, _ := profileFig8a(t, 0.25)
	if prof.TotalCycles() == 0 {
		t.Fatal("TakeSimCycles returned 0 for a real run")
	}
	if err := prof.Reconcile(); err != nil {
		t.Fatalf("profile does not reconcile with TakeSimCycles: %v", err)
	}
	doc := prof.Export()
	if doc.Coverage <= 0 || doc.Coverage > 1 {
		t.Fatalf("coverage = %v, want within (0, 1]", doc.Coverage)
	}
}

// TestProfileGolden pins the byte-exact fig8a profile. Regenerate with
// `go test ./internal/harness -run ProfileGolden -update` after intentional
// changes to instrumentation or the export format.
func TestProfileGolden(t *testing.T) {
	_, js, _ := profileFig8a(t, 0.25)
	golden := filepath.Join("testdata", "PROF_fig8a.json")
	if *updateProfileGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, js, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(js, want) {
		t.Errorf("profile differs from %s (got %d bytes, want %d); run with -update after intentional instrumentation changes",
			golden, len(js), len(want))
	}
}
