// Package iface defines the storage interfaces shared by every application
// in this repository (key-value stores, graph processing, microbenchmarks)
// and implemented by both worlds under test: the simulated Linux host
// (internal/host) and the Aquila library OS (internal/core). Applications
// written against these interfaces run unmodified over either I/O path,
// mirroring the paper's "minimal application changes" property.
package iface

import "aquila/internal/sim/engine"

// File is explicit-I/O access to a named file (read/write syscalls on the
// host; blob access over SPDK under Aquila).
type File interface {
	// Name returns the file's name in its namespace.
	Name() string
	// Size returns the current file size in bytes.
	Size() uint64
	// Pread reads len(buf) bytes at offset off into buf, charging the
	// calling process the full software + device cost of the I/O path. It
	// returns the device error if the read failed (buf is then unspecified).
	Pread(p *engine.Proc, buf []byte, off uint64) error
	// Pwrite writes len(buf) bytes from buf at offset off; a non-nil error
	// means nothing was persisted.
	Pwrite(p *engine.Proc, buf []byte, off uint64) error
	// Fsync persists outstanding writes. It also reports, once per open
	// file, any writeback error recorded since the last check (Linux
	// errseq_t semantics).
	Fsync(p *engine.Proc) error
}

// Mapping is memory-mapped access to a file or device region. Loads and
// stores hit hardware address translation: cached pages cost nothing beyond
// the data movement itself; misses take the page-fault path of whichever
// world created the mapping.
type Mapping interface {
	// Size returns the length of the mapped region in bytes.
	Size() uint64
	// Load copies len(buf) bytes at mapping offset off into buf via
	// simulated load instructions.
	Load(p *engine.Proc, off uint64, buf []byte)
	// Store copies buf into the mapping at offset off via simulated store
	// instructions.
	Store(p *engine.Proc, off uint64, buf []byte)
	// Msync writes all dirty pages of the mapping back to the device. It
	// returns the first writeback error not yet reported to this mapping —
	// exactly once per caller, errseq-style; nil means every durable copy
	// this caller cares about is on the device.
	Msync(p *engine.Proc) error
	// MsyncRange writes back only the dirty pages overlapping
	// [off, off+length) — the ranged msync Kreon's custom path relies on.
	// Error semantics match Msync (the error check is per file, not per
	// range, as on Linux).
	MsyncRange(p *engine.Proc, off, length uint64) error
	// Munmap destroys the mapping, dropping clean pages and writing dirty
	// ones back.
	Munmap(p *engine.Proc)
	// Advise passes an access-pattern hint (madvise).
	Advise(p *engine.Proc, advice Advice)
}

// Advice is the madvise hint set used by the mmio paths.
type Advice uint8

// madvise hints.
const (
	AdviceNormal Advice = iota
	AdviceRandom
	AdviceSequential
	AdviceWillNeed
	AdviceDontNeed
	// AdviceHuge asks the mapping's world for 2 MB mappings (MADV_HUGEPAGE).
	// Under Aquila with huge pages enabled, extents of a hinted region are
	// promoted on first touch; the hint composes with (does not replace) the
	// access-pattern advice above. Worlds without huge-page support ignore it.
	AdviceHuge
)

// Namespace creates and opens files and mappings. Both worlds provide one.
type Namespace interface {
	// Create creates a file with the given maximum size (space is
	// preallocated; both worlds use extent-style allocation).
	Create(p *engine.Proc, name string, size uint64) File
	// Open opens an existing file.
	Open(p *engine.Proc, name string) File
	// Exists reports whether a name is bound (no simulated cost).
	Exists(name string) bool
	// Delete removes a file, releasing its storage. Mappings of the file
	// must be unmapped first.
	Delete(p *engine.Proc, name string)
	// Mmap maps the file's [0, size) shared into the caller's world.
	Mmap(p *engine.Proc, f File, size uint64) Mapping
}
