// Package iface defines the storage interfaces shared by every application
// in this repository (key-value stores, graph processing, microbenchmarks)
// and implemented by both worlds under test: the simulated Linux host
// (internal/host) and the Aquila library OS (internal/core). Applications
// written against these interfaces run unmodified over either I/O path,
// mirroring the paper's "minimal application changes" property.
package iface

import "aquila/internal/sim/engine"

// File is explicit-I/O access to a named file (read/write syscalls on the
// host; blob access over SPDK under Aquila).
type File interface {
	// Name returns the file's name in its namespace.
	Name() string
	// Size returns the current file size in bytes.
	Size() uint64
	// Pread reads len(buf) bytes at offset off into buf, charging the
	// calling process the full software + device cost of the I/O path.
	Pread(p *engine.Proc, buf []byte, off uint64)
	// Pwrite writes len(buf) bytes from buf at offset off.
	Pwrite(p *engine.Proc, buf []byte, off uint64)
	// Fsync persists outstanding writes.
	Fsync(p *engine.Proc)
}

// Mapping is memory-mapped access to a file or device region. Loads and
// stores hit hardware address translation: cached pages cost nothing beyond
// the data movement itself; misses take the page-fault path of whichever
// world created the mapping.
type Mapping interface {
	// Size returns the length of the mapped region in bytes.
	Size() uint64
	// Load copies len(buf) bytes at mapping offset off into buf via
	// simulated load instructions.
	Load(p *engine.Proc, off uint64, buf []byte)
	// Store copies buf into the mapping at offset off via simulated store
	// instructions.
	Store(p *engine.Proc, off uint64, buf []byte)
	// Msync writes all dirty pages of the mapping back to the device.
	Msync(p *engine.Proc)
	// MsyncRange writes back only the dirty pages overlapping
	// [off, off+length) — the ranged msync Kreon's custom path relies on.
	MsyncRange(p *engine.Proc, off, length uint64)
	// Munmap destroys the mapping, dropping clean pages and writing dirty
	// ones back.
	Munmap(p *engine.Proc)
	// Advise passes an access-pattern hint (madvise).
	Advise(p *engine.Proc, advice Advice)
}

// Advice is the madvise hint set used by the mmio paths.
type Advice uint8

// madvise hints.
const (
	AdviceNormal Advice = iota
	AdviceRandom
	AdviceSequential
	AdviceWillNeed
	AdviceDontNeed
)

// Namespace creates and opens files and mappings. Both worlds provide one.
type Namespace interface {
	// Create creates a file with the given maximum size (space is
	// preallocated; both worlds use extent-style allocation).
	Create(p *engine.Proc, name string, size uint64) File
	// Open opens an existing file.
	Open(p *engine.Proc, name string) File
	// Exists reports whether a name is bound (no simulated cost).
	Exists(name string) bool
	// Delete removes a file, releasing its storage. Mappings of the file
	// must be unmapped first.
	Delete(p *engine.Proc, name string)
	// Mmap maps the file's [0, size) shared into the caller's world.
	Mmap(p *engine.Proc, f File, size uint64) Mapping
}
