package cpu

import (
	"testing"
	"testing/quick"
)

func TestDefaultCostsMatchPaperMeasurements(t *testing.T) {
	c := Default()
	// These five constants are direct measurements in the paper; they must
	// not drift, because several figure-level targets are stated in terms
	// of them (e.g. 1287/552 = 2.33x in §6.4).
	cases := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"TrapRing3", c.TrapRing3, 1287},
		{"ExceptionRing0", c.ExceptionRing0, 552},
		{"IPISendPosted", c.IPISendPosted, 298},
		{"IPISendVMExit", c.IPISendVMExit, 2081},
		{"Memcpy4KNoSIMD", c.Memcpy4KNoSIMD, 2400},
		{"Memcpy4KAVX2", c.Memcpy4KAVX2, 900},
		{"FPUSaveRestore", c.FPUSaveRestore, 300},
		{"VMExit", c.VMExit, 750},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, tc.got, tc.want)
		}
	}
	// §6.4: trap from ring 3 is 2.33x the ring-0 exception.
	ratio := float64(c.TrapRing3) / float64(c.ExceptionRing0)
	if ratio < 2.3 || ratio > 2.4 {
		t.Errorf("trap/exception ratio = %.2f, want ~2.33", ratio)
	}
}

func TestMemcpyModel(t *testing.T) {
	c := Default()
	// §3.3: AVX2 4KB copy with FPU save/restore ~1200 cycles, about 2x
	// faster than the 2400-cycle non-SIMD copy.
	avx := c.MemcpyAVX2(4096)
	if avx != 1200 {
		t.Errorf("AVX2 4K = %d, want 1200", avx)
	}
	plain := c.MemcpyNoSIMD(4096)
	if plain < 2400 || plain > 2401 {
		t.Errorf("non-SIMD 4K = %d, want ~2400", plain)
	}
	if c.MemcpyNoSIMD(0) != 0 || c.MemcpyAVX2(0) != 0 {
		t.Error("zero-length memcpy should be free")
	}
}

func TestCyclesConversion(t *testing.T) {
	if got := CyclesToMicros(2400); got != 1.0 {
		t.Errorf("2400 cycles = %v us, want 1", got)
	}
	if got := CyclesToSeconds(2_400_000_000); got != 1.0 {
		t.Errorf("2.4G cycles = %v s, want 1", got)
	}
}

func TestTLBLookupInsertInvalidate(t *testing.T) {
	tlb := NewTLB(16, 1)
	if tlb.Lookup(1, 100) {
		t.Fatal("empty TLB should miss")
	}
	tlb.Insert(1, 100)
	if !tlb.Lookup(1, 100) {
		t.Fatal("inserted entry should hit")
	}
	if tlb.Lookup(2, 100) {
		t.Fatal("different ASID should miss")
	}
	tlb.InvalidatePage(1, 100)
	if tlb.Lookup(1, 100) {
		t.Fatal("invalidated entry should miss")
	}
	hits, misses, _ := tlb.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats hits=%d misses=%d, want 1/3", hits, misses)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tlb := NewTLB(8, 1)
	for i := uint64(0); i < 100; i++ {
		tlb.Insert(1, i)
	}
	if tlb.Len() > 8 {
		t.Fatalf("TLB over capacity: %d", tlb.Len())
	}
}

func TestTLBFlushAll(t *testing.T) {
	tlb := NewTLB(8, 1)
	for i := uint64(0); i < 5; i++ {
		tlb.Insert(1, i)
	}
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Fatalf("TLB not empty after flush: %d", tlb.Len())
	}
	_, _, flushes := tlb.Stats()
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1", flushes)
	}
}

func TestTLBSetShootdown(t *testing.T) {
	set := NewTLBSet(4, 16, 1)
	for i := 0; i < 4; i++ {
		set.CPU(i).Insert(1, 42)
	}
	set.InvalidatePageAll(1, 42)
	for i := 0; i < 4; i++ {
		if set.CPU(i).Lookup(1, 42) {
			t.Fatalf("cpu %d still has entry after shootdown", i)
		}
	}
}

func TestTLB2MCapacityAccounting(t *testing.T) {
	tlb := NewTLB(8, 1)
	tlb.SetCapacity2M(4)
	for i := uint64(0); i < 100; i++ {
		tlb.Insert2M(1, i)
	}
	if tlb.Len2M() > 4 {
		t.Fatalf("2M side over capacity: %d", tlb.Len2M())
	}
	// The split arrays account independently: filling the 2M side must not
	// consume 4K entries and vice versa.
	for i := uint64(0); i < 8; i++ {
		tlb.Insert(1, i)
	}
	if tlb.Len() != 8 || tlb.Len2M() != 4 {
		t.Fatalf("len4k=%d len2m=%d, want 8/4", tlb.Len(), tlb.Len2M())
	}
	// A just-inserted 2M entry is always resident and covers its whole extent.
	tlb.Insert2M(1, 7)
	for _, off := range []uint64{0, 4096, Default2MEntries * 4096, 1<<21 - 1} {
		if !tlb.LookupVA(1, 7<<21+off) {
			t.Fatalf("2M entry should cover offset %#x", off)
		}
	}
	if tlb.LookupVA(1, 8<<21) {
		t.Fatal("neighboring extent should miss")
	}
}

func TestTLB2MInvalidateOnShootdown(t *testing.T) {
	set := NewTLBSet(4, 16, 1)
	for i := 0; i < 4; i++ {
		set.CPU(i).Insert2M(1, 42)
	}
	// One shootdown slot invalidates the whole 2 MB mapping on every CPU.
	set.Invalidate2MAll(1, 42)
	for i := 0; i < 4; i++ {
		if set.CPU(i).Len2M() != 0 {
			t.Fatalf("cpu %d still has 2M entry after shootdown", i)
		}
		if set.CPU(i).LookupVA(1, 42<<21+12345) {
			t.Fatalf("cpu %d hit after shootdown", i)
		}
	}
	// FlushAll clears both sides.
	tlb := NewTLB(16, 1)
	tlb.Insert(1, 3)
	tlb.Insert2M(1, 3)
	tlb.FlushAll()
	if tlb.Len() != 0 || tlb.Len2M() != 0 {
		t.Fatalf("len4k=%d len2m=%d after FlushAll", tlb.Len(), tlb.Len2M())
	}
}

// Deterministic replacement with mixed page sizes: the same insert sequence
// leaves the same residency on two independently built TLBs, and the 4 KB
// side behaves identically to a TLB that never saw 2 MB inserts.
func TestTLBMixedSizeDeterministicReplacement(t *testing.T) {
	mixed1, mixed2 := NewTLB(8, 7), NewTLB(8, 7)
	plain := NewTLB(8, 7)
	mixed1.SetCapacity2M(4)
	mixed2.SetCapacity2M(4)
	for i := uint64(0); i < 300; i++ {
		vpn := (i * 2654435761) % 64
		mixed1.Insert(1, vpn)
		mixed2.Insert(1, vpn)
		plain.Insert(1, vpn)
		if i%3 == 0 {
			mixed1.Insert2M(1, vpn%16)
			mixed2.Insert2M(1, vpn%16)
		}
	}
	for vpn := uint64(0); vpn < 64; vpn++ {
		r1 := mixed1.Lookup(1, vpn)
		r2 := mixed2.Lookup(1, vpn)
		rp := plain.Lookup(1, vpn)
		if r1 != r2 {
			t.Fatalf("vpn %d: same sequence diverged (%v vs %v)", vpn, r1, r2)
		}
		if r1 != rp {
			t.Fatalf("vpn %d: 2M inserts perturbed the 4K side (%v vs %v)", vpn, r1, rp)
		}
	}
	for v := uint64(0); v < 16; v++ {
		if mixed1.Len2M() != mixed2.Len2M() {
			t.Fatal("2M residency counts diverged")
		}
		a := mixed1.LookupVA(2, v<<21) // asid 2: all misses, counter-only
		b := mixed2.LookupVA(2, v<<21)
		if a != b {
			t.Fatalf("2M vpn %d: residency diverged", v)
		}
	}
}

// LookupVA must be behaviorally identical to Lookup while no 2 MB entries are
// resident, so the runtime can use it unconditionally without perturbing the
// 4 KB-only goldens.
func TestLookupVAMatchesLookupWithout2M(t *testing.T) {
	a, b := NewTLB(8, 3), NewTLB(8, 3)
	for i := uint64(0); i < 200; i++ {
		vpn := (i * 11400714819323198485) % 32
		a.Insert(1, vpn)
		b.Insert(1, vpn)
		probe := (i * 2654435761) % 32
		ra := a.Lookup(1, probe)
		rb := b.LookupVA(1, probe<<12+uint64(i)%4096)
		if ra != rb {
			t.Fatalf("op %d: Lookup=%v LookupVA=%v", i, ra, rb)
		}
	}
	ah, am, _ := a.Stats()
	bh, bm, _ := b.Stats()
	if ah != bh || am != bm {
		t.Fatalf("stats diverged: %d/%d vs %d/%d", ah, am, bh, bm)
	}
}

// Property: TLB never exceeds capacity and a just-inserted entry is always
// resident.
func TestTLBCapacityProperty(t *testing.T) {
	check := func(vpns []uint16) bool {
		tlb := NewTLB(32, 1)
		for _, v := range vpns {
			tlb.Insert(1, uint64(v))
			if tlb.Len() > 32 {
				return false
			}
			if !tlb.Lookup(1, uint64(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
