package cpu

import (
	"testing"
	"testing/quick"
)

func TestDefaultCostsMatchPaperMeasurements(t *testing.T) {
	c := Default()
	// These five constants are direct measurements in the paper; they must
	// not drift, because several figure-level targets are stated in terms
	// of them (e.g. 1287/552 = 2.33x in §6.4).
	cases := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"TrapRing3", c.TrapRing3, 1287},
		{"ExceptionRing0", c.ExceptionRing0, 552},
		{"IPISendPosted", c.IPISendPosted, 298},
		{"IPISendVMExit", c.IPISendVMExit, 2081},
		{"Memcpy4KNoSIMD", c.Memcpy4KNoSIMD, 2400},
		{"Memcpy4KAVX2", c.Memcpy4KAVX2, 900},
		{"FPUSaveRestore", c.FPUSaveRestore, 300},
		{"VMExit", c.VMExit, 750},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, tc.got, tc.want)
		}
	}
	// §6.4: trap from ring 3 is 2.33x the ring-0 exception.
	ratio := float64(c.TrapRing3) / float64(c.ExceptionRing0)
	if ratio < 2.3 || ratio > 2.4 {
		t.Errorf("trap/exception ratio = %.2f, want ~2.33", ratio)
	}
}

func TestMemcpyModel(t *testing.T) {
	c := Default()
	// §3.3: AVX2 4KB copy with FPU save/restore ~1200 cycles, about 2x
	// faster than the 2400-cycle non-SIMD copy.
	avx := c.MemcpyAVX2(4096)
	if avx != 1200 {
		t.Errorf("AVX2 4K = %d, want 1200", avx)
	}
	plain := c.MemcpyNoSIMD(4096)
	if plain < 2400 || plain > 2401 {
		t.Errorf("non-SIMD 4K = %d, want ~2400", plain)
	}
	if c.MemcpyNoSIMD(0) != 0 || c.MemcpyAVX2(0) != 0 {
		t.Error("zero-length memcpy should be free")
	}
}

func TestCyclesConversion(t *testing.T) {
	if got := CyclesToMicros(2400); got != 1.0 {
		t.Errorf("2400 cycles = %v us, want 1", got)
	}
	if got := CyclesToSeconds(2_400_000_000); got != 1.0 {
		t.Errorf("2.4G cycles = %v s, want 1", got)
	}
}

func TestTLBLookupInsertInvalidate(t *testing.T) {
	tlb := NewTLB(16, 1)
	if tlb.Lookup(1, 100) {
		t.Fatal("empty TLB should miss")
	}
	tlb.Insert(1, 100)
	if !tlb.Lookup(1, 100) {
		t.Fatal("inserted entry should hit")
	}
	if tlb.Lookup(2, 100) {
		t.Fatal("different ASID should miss")
	}
	tlb.InvalidatePage(1, 100)
	if tlb.Lookup(1, 100) {
		t.Fatal("invalidated entry should miss")
	}
	hits, misses, _ := tlb.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats hits=%d misses=%d, want 1/3", hits, misses)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tlb := NewTLB(8, 1)
	for i := uint64(0); i < 100; i++ {
		tlb.Insert(1, i)
	}
	if tlb.Len() > 8 {
		t.Fatalf("TLB over capacity: %d", tlb.Len())
	}
}

func TestTLBFlushAll(t *testing.T) {
	tlb := NewTLB(8, 1)
	for i := uint64(0); i < 5; i++ {
		tlb.Insert(1, i)
	}
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Fatalf("TLB not empty after flush: %d", tlb.Len())
	}
	_, _, flushes := tlb.Stats()
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1", flushes)
	}
}

func TestTLBSetShootdown(t *testing.T) {
	set := NewTLBSet(4, 16, 1)
	for i := 0; i < 4; i++ {
		set.CPU(i).Insert(1, 42)
	}
	set.InvalidatePageAll(1, 42)
	for i := 0; i < 4; i++ {
		if set.CPU(i).Lookup(1, 42) {
			t.Fatalf("cpu %d still has entry after shootdown", i)
		}
	}
}

// Property: TLB never exceeds capacity and a just-inserted entry is always
// resident.
func TestTLBCapacityProperty(t *testing.T) {
	check := func(vpns []uint16) bool {
		tlb := NewTLB(32, 1)
		for _, v := range vpns {
			tlb.Insert(1, uint64(v))
			if tlb.Len() > 32 {
				return false
			}
			if !tlb.Lookup(1, uint64(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
