package cpu

import "math/rand"

// tlbKey identifies a cached translation: address-space id + virtual page
// number.
type tlbKey struct {
	asid uint32
	vpn  uint64
}

// TLB is one CPU's translation lookaside buffer, modeled as a fixed-capacity
// set with deterministic pseudo-random replacement. Only the presence of a
// translation is tracked; the actual translation lives in the page table.
type TLB struct {
	capacity int
	entries  map[tlbKey]struct{}
	order    []tlbKey // insertion ring for replacement
	next     int
	rng      *rand.Rand

	hits    uint64
	misses  uint64
	flushes uint64
}

// NewTLB creates a TLB with the given entry capacity.
func NewTLB(capacity int, seed int64) *TLB {
	if capacity <= 0 {
		capacity = 1536 // L2 STLB size of the testbed generation
	}
	return &TLB{
		capacity: capacity,
		entries:  make(map[tlbKey]struct{}, capacity),
		order:    make([]tlbKey, 0, capacity),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Lookup reports whether (asid, vpn) is cached, updating hit/miss counters.
func (t *TLB) Lookup(asid uint32, vpn uint64) bool {
	if _, ok := t.entries[tlbKey{asid, vpn}]; ok {
		t.hits++
		return true
	}
	t.misses++
	return false
}

// Insert caches a translation, evicting a pseudo-random victim when full.
func (t *TLB) Insert(asid uint32, vpn uint64) {
	k := tlbKey{asid, vpn}
	if _, ok := t.entries[k]; ok {
		return
	}
	if len(t.entries) >= t.capacity {
		// Evict a pseudo-random resident entry (clock-ish).
		for {
			victim := t.order[t.next%len(t.order)]
			t.next++
			if _, ok := t.entries[victim]; ok {
				delete(t.entries, victim)
				break
			}
		}
	}
	t.entries[k] = struct{}{}
	t.order = append(t.order, k)
	if len(t.order) > 4*t.capacity {
		t.compactOrder()
	}
}

func (t *TLB) compactOrder() {
	live := t.order[:0]
	for _, k := range t.order {
		if _, ok := t.entries[k]; ok {
			live = append(live, k)
		}
	}
	t.order = live
	t.next = 0
}

// InvalidatePage drops one translation (invlpg).
func (t *TLB) InvalidatePage(asid uint32, vpn uint64) {
	delete(t.entries, tlbKey{asid, vpn})
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	t.entries = make(map[tlbKey]struct{}, t.capacity)
	t.order = t.order[:0]
	t.next = 0
	t.flushes++
}

// Stats returns (hits, misses, flushes).
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return len(t.entries) }

// TLBSet is the per-CPU TLB array of a simulated machine.
type TLBSet struct {
	tlbs []*TLB
}

// NewTLBSet builds one TLB per CPU.
func NewTLBSet(numCPUs, capacity int, seed int64) *TLBSet {
	s := &TLBSet{}
	for i := 0; i < numCPUs; i++ {
		s.tlbs = append(s.tlbs, NewTLB(capacity, seed+int64(i)))
	}
	return s
}

// CPU returns the TLB of the given CPU.
func (s *TLBSet) CPU(i int) *TLB { return s.tlbs[i] }

// Len returns the number of TLBs.
func (s *TLBSet) Len() int { return len(s.tlbs) }

// InvalidatePageAll drops a translation from every TLB (used by shootdowns
// after the IPI cost has been modeled by the caller).
func (s *TLBSet) InvalidatePageAll(asid uint32, vpn uint64) {
	for _, t := range s.tlbs {
		t.InvalidatePage(asid, vpn)
	}
}
