package cpu

import "math/rand"

// tlbKey identifies a cached translation: address-space id + virtual page
// number.
type tlbKey struct {
	asid uint32
	vpn  uint64
}

// Default2MEntries is the default 2 MB-entry capacity: the dedicated huge-page
// DTLB array of the testbed generation (Haswell: 32 entries).
const Default2MEntries = 32

// TLB is one CPU's translation lookaside buffer, modeled as a fixed-capacity
// set with deterministic pseudo-random replacement. Only the presence of a
// translation is tracked; the actual translation lives in the page table.
//
// 4 KB and 2 MB translations live in split arrays, as on real hardware: a
// huge mapping consumes one 2 MB entry (and one shootdown slot) instead of
// 512 base entries. The 2 MB side is keyed by va>>21.
type TLB struct {
	capacity int
	entries  map[tlbKey]struct{}
	order    []tlbKey // insertion ring for replacement
	next     int
	rng      *rand.Rand

	capacity2M int
	entries2M  map[tlbKey]struct{}
	order2M    []tlbKey
	next2M     int

	hits    uint64
	misses  uint64
	flushes uint64
}

// NewTLB creates a TLB with the given 4 KB-entry capacity and the default
// 2 MB-entry capacity.
func NewTLB(capacity int, seed int64) *TLB {
	if capacity <= 0 {
		capacity = 1536 // L2 STLB size of the testbed generation
	}
	return &TLB{
		capacity:   capacity,
		entries:    make(map[tlbKey]struct{}, capacity),
		order:      make([]tlbKey, 0, capacity),
		rng:        rand.New(rand.NewSource(seed)),
		capacity2M: Default2MEntries,
		entries2M:  make(map[tlbKey]struct{}, Default2MEntries),
	}
}

// SetCapacity2M overrides the 2 MB-entry capacity (flushing the 2 MB side).
func (t *TLB) SetCapacity2M(n int) {
	if n <= 0 {
		n = Default2MEntries
	}
	t.capacity2M = n
	t.entries2M = make(map[tlbKey]struct{}, n)
	t.order2M = t.order2M[:0]
	t.next2M = 0
}

// Lookup reports whether (asid, vpn) is cached, updating hit/miss counters.
func (t *TLB) Lookup(asid uint32, vpn uint64) bool {
	if _, ok := t.entries[tlbKey{asid, vpn}]; ok {
		t.hits++
		return true
	}
	t.misses++
	return false
}

// Insert caches a translation, evicting a pseudo-random victim when full.
func (t *TLB) Insert(asid uint32, vpn uint64) {
	k := tlbKey{asid, vpn}
	if _, ok := t.entries[k]; ok {
		return
	}
	if len(t.entries) >= t.capacity {
		// Evict a pseudo-random resident entry (clock-ish).
		for {
			victim := t.order[t.next%len(t.order)]
			t.next++
			if _, ok := t.entries[victim]; ok {
				delete(t.entries, victim)
				break
			}
		}
	}
	t.entries[k] = struct{}{}
	t.order = append(t.order, k)
	if len(t.order) > 4*t.capacity {
		t.compactOrder()
	}
}

func (t *TLB) compactOrder() {
	live := t.order[:0]
	for _, k := range t.order {
		if _, ok := t.entries[k]; ok {
			live = append(live, k)
		}
	}
	t.order = live
	t.next = 0
}

// LookupVA reports whether a translation covering va is cached at either page
// size, updating hit/miss counters once. With no 2 MB entries resident it
// behaves exactly like Lookup(asid, va>>12).
func (t *TLB) LookupVA(asid uint32, va uint64) bool {
	if _, ok := t.entries[tlbKey{asid, va >> 12}]; ok {
		t.hits++
		return true
	}
	if len(t.entries2M) > 0 {
		if _, ok := t.entries2M[tlbKey{asid, va >> 21}]; ok {
			t.hits++
			return true
		}
	}
	t.misses++
	return false
}

// Insert2M caches a 2 MB translation (vpn2m = va>>21), evicting a
// pseudo-random resident 2 MB entry when that side is full.
func (t *TLB) Insert2M(asid uint32, vpn2m uint64) {
	k := tlbKey{asid, vpn2m}
	if _, ok := t.entries2M[k]; ok {
		return
	}
	if len(t.entries2M) >= t.capacity2M {
		for {
			victim := t.order2M[t.next2M%len(t.order2M)]
			t.next2M++
			if _, ok := t.entries2M[victim]; ok {
				delete(t.entries2M, victim)
				break
			}
		}
	}
	t.entries2M[k] = struct{}{}
	t.order2M = append(t.order2M, k)
	if len(t.order2M) > 4*t.capacity2M {
		live := t.order2M[:0]
		for _, k := range t.order2M {
			if _, ok := t.entries2M[k]; ok {
				live = append(live, k)
			}
		}
		t.order2M = live
		t.next2M = 0
	}
}

// InvalidatePage drops one translation (invlpg).
func (t *TLB) InvalidatePage(asid uint32, vpn uint64) {
	delete(t.entries, tlbKey{asid, vpn})
}

// Invalidate2M drops one 2 MB translation (one invlpg covers the whole
// mapping — this is the single shootdown slot a huge page costs).
func (t *TLB) Invalidate2M(asid uint32, vpn2m uint64) {
	delete(t.entries2M, tlbKey{asid, vpn2m})
}

// FlushAll empties the TLB, both page sizes.
func (t *TLB) FlushAll() {
	t.entries = make(map[tlbKey]struct{}, t.capacity)
	t.order = t.order[:0]
	t.next = 0
	if len(t.entries2M) > 0 {
		t.entries2M = make(map[tlbKey]struct{}, t.capacity2M)
		t.order2M = t.order2M[:0]
		t.next2M = 0
	}
	t.flushes++
}

// Stats returns (hits, misses, flushes).
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Len returns the number of resident 4 KB translations.
func (t *TLB) Len() int { return len(t.entries) }

// Len2M returns the number of resident 2 MB translations.
func (t *TLB) Len2M() int { return len(t.entries2M) }

// TLBSet is the per-CPU TLB array of a simulated machine.
type TLBSet struct {
	tlbs []*TLB
}

// NewTLBSet builds one TLB per CPU.
func NewTLBSet(numCPUs, capacity int, seed int64) *TLBSet {
	s := &TLBSet{}
	for i := 0; i < numCPUs; i++ {
		s.tlbs = append(s.tlbs, NewTLB(capacity, seed+int64(i)))
	}
	return s
}

// CPU returns the TLB of the given CPU.
func (s *TLBSet) CPU(i int) *TLB { return s.tlbs[i] }

// Len returns the number of TLBs.
func (s *TLBSet) Len() int { return len(s.tlbs) }

// InvalidatePageAll drops a translation from every TLB (used by shootdowns
// after the IPI cost has been modeled by the caller).
func (s *TLBSet) InvalidatePageAll(asid uint32, vpn uint64) {
	for _, t := range s.tlbs {
		t.InvalidatePage(asid, vpn)
	}
}

// Invalidate2MAll drops a 2 MB translation from every TLB.
func (s *TLBSet) Invalidate2MAll(asid uint32, vpn2m uint64) {
	for _, t := range s.tlbs {
		t.Invalidate2M(asid, vpn2m)
	}
}

// SetCapacity2M overrides the 2 MB-entry capacity of every TLB.
func (s *TLBSet) SetCapacity2M(n int) {
	for _, t := range s.tlbs {
		t.SetCapacity2M(n)
	}
}
