// Package cpu models the processor-side costs of the paper's testbed: a
// dual-socket Intel Xeon E5-2630 v3 at 2.4 GHz with VT-x, per-CPU TLBs, and
// IPI-based TLB shootdowns. All constants are cycles at 2.4 GHz.
//
// Wherever the paper reports a measurement, the default cost table uses that
// number verbatim (sources cited per field); remaining entries are
// order-of-magnitude literature values chosen so the figure-level breakdowns
// reproduce the paper's shape.
package cpu

// Frequency of the simulated CPUs in Hz (Xeon E5-2630 v3, §5).
const FrequencyHz = 2.4e9

// CyclesToSeconds converts simulated cycles to seconds at the testbed clock.
func CyclesToSeconds(c uint64) float64 { return float64(c) / FrequencyHz }

// CyclesToMicros converts simulated cycles to microseconds.
func CyclesToMicros(c uint64) float64 { return float64(c) / (FrequencyHz / 1e6) }

// Costs is the cycle cost table for privileged operations.
type Costs struct {
	// TrapRing3 is the full protection-domain switch of a page fault taken
	// in ring 3 (enter + iret, excluding handler work). §6.4: 1287 cycles.
	TrapRing3 uint64
	// ExceptionRing0 is a page-fault exception taken while already in
	// (non-root) ring 0, as in Aquila. §6.4: 552 cycles.
	ExceptionRing0 uint64
	// VMExit is a single VMX non-root -> root transition. §4.4: ~750.
	VMExit uint64
	// VMEntry is the root -> non-root resume. Symmetric to VMExit.
	VMEntry uint64
	// Syscall is the bare ring3 syscall enter+exit transition.
	Syscall uint64
	// IPISendPosted is a posted-IPI send without vmexit (§4.1, Shinjuku: 298).
	IPISendPosted uint64
	// IPISendVMExit is an IPI send that takes a vmexit for rate limiting
	// (§4.1: 2081 cycles).
	IPISendVMExit uint64
	// IPIReceive is the receiver-side interrupt handling cost per IPI
	// (vmexit-less receive path).
	IPIReceive uint64
	// TLBInvalidatePage is one invlpg.
	TLBInvalidatePage uint64
	// TLBFlushAll is a full local TLB flush.
	TLBFlushAll uint64
	// TLBRefill is a 4-level page-table walk on a TLB miss.
	TLBRefill uint64
	// TLBRefill2M is the walk on a miss that resolves to a 2 MB leaf: one
	// level shorter than the 4 KB walk.
	TLBRefill2M uint64
	// EPTWalkExtra is the additional 2-D walk cost of a TLB refill under
	// virtualization (guest PT x EPT).
	EPTWalkExtra uint64
	// FPUSaveRestore is XSAVEOPT+FXRSTOR of AVX state (§3.3: ~300).
	FPUSaveRestore uint64
	// Memcpy4KNoSIMD is a 4 KB copy without SIMD (§3.3: ~2400).
	Memcpy4KNoSIMD uint64
	// Memcpy4KAVX2 is a 4 KB copy with AVX2 streaming stores, excluding
	// FPU state save/restore (§3.3: ~900).
	Memcpy4KAVX2 uint64
	// PTEUpdate is writing one page-table entry (plus dcache effects).
	PTEUpdate uint64
	// ContextSwitch is a kernel context switch (blocking I/O wakeup path).
	ContextSwitch uint64
	// InterruptDelivery is device-interrupt delivery + handler entry for
	// kernel (interrupt-driven) block I/O completion.
	InterruptDelivery uint64
	// AtomicOp is an uncontended atomic RMW on a warm line.
	AtomicOp uint64
	// CacheLineTransfer is a cache-to-cache line move between cores.
	CacheLineTransfer uint64
	// NUMARemoteAccess is the surcharge of touching a remote-node line.
	NUMARemoteAccess uint64
}

// Default returns the calibrated cost table. Paper-measured entries carry
// the paper's numbers; the rest are standard x86 server magnitudes.
func Default() Costs {
	return Costs{
		TrapRing3:         1287, // §6.4
		ExceptionRing0:    552,  // §6.4
		VMExit:            750,  // §4.4
		VMEntry:           750,
		Syscall:           700,
		IPISendPosted:     298,  // §4.1
		IPISendVMExit:     2081, // §4.1
		IPIReceive:        400,
		TLBInvalidatePage: 100,
		TLBFlushAll:       500,
		TLBRefill:         120,
		TLBRefill2M:       90,
		EPTWalkExtra:      200,
		FPUSaveRestore:    300,  // §3.3
		Memcpy4KNoSIMD:    2400, // §3.3
		Memcpy4KAVX2:      900,  // §3.3
		PTEUpdate:         60,
		ContextSwitch:     2000,
		InterruptDelivery: 1500,
		AtomicOp:          20,
		CacheLineTransfer: 120,
		NUMARemoteAccess:  100,
	}
}

// MemcpyNoSIMD returns the cost of copying n bytes without SIMD.
func (c Costs) MemcpyNoSIMD(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n)*c.Memcpy4KNoSIMD/4096 + 1
}

// MemcpyAVX2 returns the cost of copying n bytes with AVX2 streaming stores,
// including one FPU state save/restore (paid once per fault, §3.3).
func (c Costs) MemcpyAVX2(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n)*c.Memcpy4KAVX2/4096 + c.FPUSaveRestore
}

// VMCall is a full guest->hypervisor->guest round trip.
func (c Costs) VMCall() uint64 { return c.VMExit + c.VMEntry }
