package mem

import "fmt"

// Buddy-allocation tier: the huge-page path needs physically contiguous,
// 2 MB-aligned runs of 512 frames, so contiguity must be a first-class
// allocator concern rather than an afterthought. Each NUMA node's frame range
// is carved into maximal size-aligned blocks of at most MaxOrder, and blocks
// split on allocation / coalesce with their XOR-buddy on free, exactly like
// the classic binary buddy system.
//
// The buddy tier is optional: NewAllocator keeps the plain per-node stacks
// (and their exact allocation order), NewBuddyAllocator routes every
// Alloc/Release through the buddy structures. The two modes never mix, so the
// 4 KB-only configuration stays bit-identical to the pre-huge-page code.

// MaxOrder is the largest block order: 2^9 frames = 512 * 4 KB = 2 MB.
const MaxOrder = 9

// BlockFrames is the number of base frames in one max-order (2 MB) block.
const BlockFrames = 1 << MaxOrder

// buddyNode is one NUMA node's buddy state. Free blocks are tracked in
// freeAt (base frame ID -> order, the source of truth) plus per-order stacks
// used for deterministic LIFO selection. Stack entries are lazily deleted:
// coalescing removes a buddy from freeAt without searching its stack, and
// pops validate against freeAt, skipping stale entries.
type buddyNode struct {
	lo, hi     uint64 // frame-ID range [lo, hi) owned by this node
	stacks     [MaxOrder + 1][]uint64
	freeAt     map[uint64]int
	freeFrames uint64
	freeMax    int // live free blocks of exactly MaxOrder
}

// carve splits [lo, hi) into maximal size-aligned blocks of order <= MaxOrder
// and registers them free. Blocks are pushed in reverse so low IDs pop first,
// matching the plain allocator's preference.
func (n *buddyNode) carve() {
	type blk struct {
		base  uint64
		order int
	}
	var blocks []blk
	for base := n.lo; base < n.hi; {
		o := MaxOrder
		for o > 0 && (base&(1<<o-1) != 0 || base+1<<o > n.hi) {
			o--
		}
		blocks = append(blocks, blk{base, o})
		base += 1 << o
	}
	for i := len(blocks) - 1; i >= 0; i-- {
		b := blocks[i]
		n.freeAt[b.base] = b.order
		n.stacks[b.order] = append(n.stacks[b.order], b.base)
		n.freeFrames += 1 << b.order
		if b.order == MaxOrder {
			n.freeMax++
		}
	}
}

// popOrder pops the most recently freed valid block of exactly this order.
func (n *buddyNode) popOrder(o int) (uint64, bool) {
	s := n.stacks[o]
	for len(s) > 0 {
		base := s[len(s)-1]
		s = s[:len(s)-1]
		if bo, ok := n.freeAt[base]; ok && bo == o {
			delete(n.freeAt, base)
			n.stacks[o] = s
			n.freeFrames -= 1 << o
			if o == MaxOrder {
				n.freeMax--
			}
			return base, true
		}
	}
	n.stacks[o] = s
	return 0, false
}

// allocOrder allocates one block of the requested order, splitting a larger
// block when none of that size is free. Returns false when the node has no
// block of order >= want.
func (n *buddyNode) allocOrder(want int) (uint64, bool) {
	for o := want; o <= MaxOrder; o++ {
		base, ok := n.popOrder(o)
		if !ok {
			continue
		}
		// Split back down, freeing each upper half.
		for ; o > want; o-- {
			upper := base + 1<<(o-1)
			n.freeAt[upper] = o - 1
			n.stacks[o-1] = append(n.stacks[o-1], upper)
			n.freeFrames += 1 << (o - 1)
		}
		return base, true
	}
	return 0, false
}

// freeBlock returns a block of the given order, coalescing with free buddies
// up to MaxOrder. The XOR-buddy rule keeps merges aligned automatically, and
// per-node freeAt maps make cross-node merges impossible.
func (n *buddyNode) freeBlock(base uint64, order int) {
	if prev, ok := n.freeAt[base]; ok {
		panic(fmt.Sprintf("mem: buddy double free of block %d (order %d, already free at order %d)", base, order, prev))
	}
	o := order
	for o < MaxOrder {
		bud := base ^ (1 << o)
		if bo, ok := n.freeAt[bud]; !ok || bo != o {
			break
		}
		delete(n.freeAt, bud) // stale stack entry skipped by popOrder
		if bud < base {
			base = bud
		}
		o++
	}
	n.freeAt[base] = o
	n.stacks[o] = append(n.stacks[o], base)
	n.freeFrames += 1 << order
	if o == MaxOrder {
		n.freeMax++
	}
	if len(n.stacks[o]) > 4*len(n.freeAt)+64 {
		n.compact(o)
	}
}

// compact drops stale (lazily deleted) entries from one order's stack,
// preserving relative order for determinism.
func (n *buddyNode) compact(o int) {
	live := n.stacks[o][:0]
	for _, base := range n.stacks[o] {
		if bo, ok := n.freeAt[base]; ok && bo == o {
			live = append(live, base)
		}
	}
	n.stacks[o] = live
}

// NewBuddyAllocator creates an allocator with the same capacity layout as
// NewAllocator but with every node's range managed by a buddy system, so
// 2 MB-contiguous blocks can be allocated and reclaimed.
func NewBuddyAllocator(totalBytes uint64, numNodes int) *Allocator {
	if numNodes <= 0 {
		numNodes = 1
	}
	totalFrames := totalBytes / PageSize
	perNode := totalFrames / uint64(numNodes)
	if perNode == 0 {
		perNode = 1
	}
	a := &Allocator{
		numNodes: numNodes,
		perNode:  perNode,
		frames:   make(map[uint64]*Frame),
		capacity: perNode * uint64(numNodes),
	}
	for n := 0; n < numNodes; n++ {
		bn := &buddyNode{
			lo:     uint64(n) * perNode,
			hi:     uint64(n+1) * perNode,
			freeAt: make(map[uint64]int),
		}
		bn.carve()
		a.buddy = append(a.buddy, bn)
	}
	return a
}

// Buddy reports whether this allocator manages frames with the buddy tier.
func (a *Allocator) Buddy() bool { return a.buddy != nil }

// frameAt returns (creating lazily) the frame with the given id on a node.
func (a *Allocator) frameAt(id uint64, node int) *Frame {
	f := a.frames[id]
	if f == nil {
		f = &Frame{ID: id, Node: node}
		a.frames[id] = f
	}
	return f
}

// buddyAlloc allocates one order-0 frame from the buddy tier, preferring the
// given node.
func (a *Allocator) buddyAlloc(preferNode int) *Frame {
	if preferNode < 0 || preferNode >= a.numNodes {
		preferNode = 0
	}
	for d := 0; d < a.numNodes; d++ {
		node := (preferNode + d) % a.numNodes
		if base, ok := a.buddy[node].allocOrder(0); ok {
			a.allocated++
			return a.frameAt(base, node)
		}
	}
	return nil
}

// AllocBlock allocates one 2 MB-aligned run of BlockFrames consecutive frames,
// preferring the given NUMA node. Returns nil when no node has a contiguous
// block left (the caller falls back to base-page allocation).
func (a *Allocator) AllocBlock(preferNode int) []*Frame {
	if a.buddy == nil {
		return nil
	}
	if preferNode < 0 || preferNode >= a.numNodes {
		preferNode = 0
	}
	for d := 0; d < a.numNodes; d++ {
		node := (preferNode + d) % a.numNodes
		base, ok := a.buddy[node].allocOrder(MaxOrder)
		if !ok {
			continue
		}
		out := make([]*Frame, BlockFrames)
		for i := range out {
			out[i] = a.frameAt(base+uint64(i), node)
		}
		a.allocated += BlockFrames
		return out
	}
	return nil
}

// ReleaseBlock returns a full 2 MB block (as allocated by AllocBlock) to the
// buddy tier in one operation.
func (a *Allocator) ReleaseBlock(frames []*Frame) {
	if a.buddy == nil {
		panic("mem: ReleaseBlock on non-buddy allocator")
	}
	if len(frames) != BlockFrames {
		panic(fmt.Sprintf("mem: ReleaseBlock of %d frames (want %d)", len(frames), BlockFrames))
	}
	base := frames[0].ID
	if base%BlockFrames != 0 {
		panic(fmt.Sprintf("mem: ReleaseBlock of unaligned block base %d", base))
	}
	for i, f := range frames {
		if f.ID != base+uint64(i) {
			panic(fmt.Sprintf("mem: ReleaseBlock of non-contiguous run at index %d", i))
		}
	}
	a.buddy[frames[0].Node].freeBlock(base, MaxOrder)
	if a.allocated < BlockFrames {
		panic("mem: ReleaseBlock without matching allocation")
	}
	a.allocated -= BlockFrames
}

// FreeBlocksOnNode returns the number of free max-order (2 MB) blocks a node
// could hand out right now, counting coalesced contiguity only.
func (a *Allocator) FreeBlocksOnNode(node int) int {
	if a.buddy == nil {
		return 0
	}
	return a.buddy[node].freeMax
}
