package mem

import "testing"

func TestBuddyCarveConservation(t *testing.T) {
	// 2048 frames over 2 nodes: 1024 per node = 2 max-order blocks each.
	a := NewBuddyAllocator(2048*PageSize, 2)
	if !a.Buddy() {
		t.Fatal("Buddy() = false")
	}
	if a.Capacity() != 2048 || a.Free() != 2048 {
		t.Fatalf("capacity=%d free=%d, want 2048/2048", a.Capacity(), a.Free())
	}
	for n := 0; n < 2; n++ {
		if got := a.FreeBlocksOnNode(n); got != 2 {
			t.Fatalf("node %d free blocks = %d, want 2", n, got)
		}
		if got := a.FreeOnNode(n); got != 1024 {
			t.Fatalf("node %d free frames = %d, want 1024", n, got)
		}
	}
}

func TestBuddyCarveUnalignedRange(t *testing.T) {
	// 768 frames per node: one order-9 block + one order-8 block.
	a := NewBuddyAllocator(2*768*PageSize, 2)
	for n := 0; n < 2; n++ {
		if got := a.FreeBlocksOnNode(n); got != 1 {
			t.Fatalf("node %d free blocks = %d, want 1", n, got)
		}
		if got := a.FreeOnNode(n); got != 768 {
			t.Fatalf("node %d free frames = %d, want 768", n, got)
		}
	}
}

func TestBuddyAllocBlock(t *testing.T) {
	a := NewBuddyAllocator(2048*PageSize, 2)
	blk := a.AllocBlock(1)
	if len(blk) != BlockFrames {
		t.Fatalf("block len = %d, want %d", len(blk), BlockFrames)
	}
	base := blk[0].ID
	if base%BlockFrames != 0 {
		t.Fatalf("block base %d not 2MB-aligned", base)
	}
	for i, f := range blk {
		if f.ID != base+uint64(i) {
			t.Fatalf("frame %d has id %d, want %d", i, f.ID, base+uint64(i))
		}
		if f.Node != 1 {
			t.Fatalf("frame %d on node %d, want 1", i, f.Node)
		}
	}
	if a.Free() != 2048-BlockFrames || a.Allocated() != BlockFrames {
		t.Fatalf("free=%d allocated=%d after block alloc", a.Free(), a.Allocated())
	}
	a.ReleaseBlock(blk)
	if a.Free() != 2048 || a.FreeBlocksOnNode(1) != 2 {
		t.Fatalf("free=%d blocks=%d after release", a.Free(), a.FreeBlocksOnNode(1))
	}
}

func TestBuddySplitAndCoalesce(t *testing.T) {
	a := NewBuddyAllocator(1024*PageSize, 1)
	if a.FreeBlocksOnNode(0) != 2 {
		t.Fatalf("want 2 initial blocks")
	}
	// A single-frame alloc splits one block down to order 0.
	f := a.Alloc(0)
	if f == nil {
		t.Fatal("Alloc returned nil")
	}
	if got := a.FreeBlocksOnNode(0); got != 1 {
		t.Fatalf("free blocks after split = %d, want 1", got)
	}
	if a.Free() != 1023 {
		t.Fatalf("free = %d, want 1023", a.Free())
	}
	// Releasing it coalesces all the way back to a max-order block.
	a.Release(f)
	if got := a.FreeBlocksOnNode(0); got != 2 {
		t.Fatalf("free blocks after coalesce = %d, want 2", got)
	}
	if a.Free() != 1024 || a.Allocated() != 0 {
		t.Fatalf("free=%d allocated=%d after coalesce", a.Free(), a.Allocated())
	}
}

func TestBuddyContiguityExhaustionAndRecovery(t *testing.T) {
	a := NewBuddyAllocator(1024*PageSize, 1)
	single := a.Alloc(0) // fragments one block
	blk := a.AllocBlock(0)
	if blk == nil {
		t.Fatal("first AllocBlock failed")
	}
	if got := a.AllocBlock(0); got != nil {
		t.Fatal("AllocBlock should fail with no contiguity left")
	}
	// Fall back to singles from the fragmented block.
	got := a.AllocN(0, 511)
	if len(got) != 511 {
		t.Fatalf("AllocN got %d frames, want 511", len(got))
	}
	if a.Free() != 0 {
		t.Fatalf("free = %d, want 0", a.Free())
	}
	// Release everything; coalescing must rebuild both blocks.
	a.Release(single)
	for _, f := range got {
		a.Release(f)
	}
	a.ReleaseBlock(blk)
	if a.FreeBlocksOnNode(0) != 2 || a.Free() != 1024 {
		t.Fatalf("blocks=%d free=%d after full release, want 2/1024",
			a.FreeBlocksOnNode(0), a.Free())
	}
}

func TestBuddyDeterministicOrder(t *testing.T) {
	run := func() []uint64 {
		a := NewBuddyAllocator(2048*PageSize, 2)
		var ids []uint64
		var held []*Frame
		for i := 0; i < 700; i++ {
			f := a.Alloc(i % 2)
			ids = append(ids, f.ID)
			held = append(held, f)
			if i%3 == 0 {
				a.Release(held[len(held)/2])
				held = append(held[:len(held)/2], held[len(held)/2+1:]...)
			}
		}
		blk := a.AllocBlock(0)
		if blk != nil {
			ids = append(ids, blk[0].ID)
		}
		return ids
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("divergence at op %d: %d vs %d", i, x[i], y[i])
		}
	}
}

func TestBuddyDoubleFreePanics(t *testing.T) {
	a := NewBuddyAllocator(1024*PageSize, 1)
	f := a.Alloc(0)
	a.Release(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	a.Release(f)
	_ = a
}
