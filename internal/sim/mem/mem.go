// Package mem models NUMA-aware simulated physical memory: frames of 4 KB
// handed out by a per-node allocator. Frames optionally carry real byte
// payloads for experiments whose applications read and write actual data
// (key-value stores, graph processing); microbenchmarks that only exercise
// metadata paths leave payloads unallocated.
package mem

import "fmt"

// PageSize is the base page size of the simulated machine.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Frame is one physical page of simulated DRAM.
type Frame struct {
	ID   uint64
	Node int
	data []byte
}

// Data returns the frame's payload, allocating it on first use.
func (f *Frame) Data() []byte {
	if f.data == nil {
		f.data = make([]byte, PageSize)
	}
	return f.data
}

// HasData reports whether a payload has been materialized.
func (f *Frame) HasData() bool { return f.data != nil }

// Reset zeroes the payload if materialized (page reuse between files).
func (f *Frame) Reset() {
	for i := range f.data {
		f.data[i] = 0
	}
}

// Allocator hands out frames from per-NUMA-node pools. With the optional
// buddy tier (NewBuddyAllocator) the per-node pools are buddy systems that can
// additionally hand out 2 MB-contiguous blocks; see buddy.go.
type Allocator struct {
	numNodes  int
	perNode   uint64
	freeLists [][]uint64 // stacks of free frame IDs per node (non-buddy mode)
	buddy     []*buddyNode
	frames    map[uint64]*Frame
	allocated uint64
	capacity  uint64
}

// NewAllocator creates an allocator managing `totalBytes` of DRAM split
// evenly across `numNodes` NUMA nodes.
func NewAllocator(totalBytes uint64, numNodes int) *Allocator {
	if numNodes <= 0 {
		numNodes = 1
	}
	totalFrames := totalBytes / PageSize
	perNode := totalFrames / uint64(numNodes)
	if perNode == 0 {
		perNode = 1
	}
	a := &Allocator{
		numNodes: numNodes,
		perNode:  perNode,
		frames:   make(map[uint64]*Frame),
		capacity: perNode * uint64(numNodes),
	}
	for n := 0; n < numNodes; n++ {
		free := make([]uint64, 0, perNode)
		base := uint64(n) * perNode
		// Push in reverse so low IDs pop first (determinism & readability).
		for i := perNode; i > 0; i-- {
			free = append(free, base+i-1)
		}
		a.freeLists = append(a.freeLists, free)
	}
	return a
}

// Capacity returns the total number of frames managed.
func (a *Allocator) Capacity() uint64 { return a.capacity }

// Allocated returns the number of frames currently handed out.
func (a *Allocator) Allocated() uint64 { return a.allocated }

// Free returns the number of free frames across all nodes.
func (a *Allocator) Free() uint64 { return a.capacity - a.allocated }

// FreeOnNode returns the number of free frames on one node.
func (a *Allocator) FreeOnNode(node int) uint64 {
	if a.buddy != nil {
		return a.buddy[node].freeFrames
	}
	return uint64(len(a.freeLists[node]))
}

// Alloc allocates one frame, preferring the given NUMA node and falling back
// to other nodes. Returns nil when out of memory.
func (a *Allocator) Alloc(preferNode int) *Frame {
	if a.buddy != nil {
		return a.buddyAlloc(preferNode)
	}
	if preferNode < 0 || preferNode >= a.numNodes {
		preferNode = 0
	}
	for d := 0; d < a.numNodes; d++ {
		node := (preferNode + d) % a.numNodes
		fl := a.freeLists[node]
		if len(fl) == 0 {
			continue
		}
		id := fl[len(fl)-1]
		a.freeLists[node] = fl[:len(fl)-1]
		f := a.frames[id]
		if f == nil {
			f = &Frame{ID: id, Node: node}
			a.frames[id] = f
		}
		a.allocated++
		return f
	}
	return nil
}

// AllocN allocates up to n frames on the preferred node, returning what it got.
func (a *Allocator) AllocN(preferNode, n int) []*Frame {
	out := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		f := a.Alloc(preferNode)
		if f == nil {
			break
		}
		out = append(out, f)
	}
	return out
}

// Release returns a frame to its node's pool. The payload is kept (zeroing is
// the consumer's policy via Frame.Reset).
func (a *Allocator) Release(f *Frame) {
	if f == nil {
		panic("mem: release of nil frame")
	}
	if a.allocated == 0 {
		panic(fmt.Sprintf("mem: double release of frame %d", f.ID))
	}
	if a.buddy != nil {
		a.buddy[f.Node].freeBlock(f.ID, 0)
		a.allocated--
		return
	}
	a.freeLists[f.Node] = append(a.freeLists[f.Node], f.ID)
	a.allocated--
}

// Frame returns the frame with the given id if it was ever allocated.
func (a *Allocator) Frame(id uint64) *Frame { return a.frames[id] }
