package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocatorBasics(t *testing.T) {
	a := NewAllocator(1<<20, 2) // 256 frames, 128 per node
	if a.Capacity() != 256 {
		t.Fatalf("capacity = %d, want 256", a.Capacity())
	}
	f := a.Alloc(0)
	if f == nil {
		t.Fatal("alloc returned nil")
	}
	if f.Node != 0 {
		t.Errorf("frame node = %d, want 0", f.Node)
	}
	if a.Allocated() != 1 {
		t.Errorf("allocated = %d, want 1", a.Allocated())
	}
	a.Release(f)
	if a.Allocated() != 0 {
		t.Errorf("allocated after release = %d, want 0", a.Allocated())
	}
}

func TestAllocatorNUMAFallback(t *testing.T) {
	a := NewAllocator(8*PageSize, 2) // 4 frames per node
	// Exhaust node 0.
	for i := 0; i < 4; i++ {
		f := a.Alloc(0)
		if f.Node != 0 {
			t.Fatalf("alloc %d landed on node %d", i, f.Node)
		}
	}
	// Next preferring node 0 must fall back to node 1.
	f := a.Alloc(0)
	if f == nil || f.Node != 1 {
		t.Fatalf("fallback alloc = %+v, want node 1", f)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(4*PageSize, 1)
	for i := 0; i < 4; i++ {
		if a.Alloc(0) == nil {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if f := a.Alloc(0); f != nil {
		t.Fatalf("alloc past capacity returned %+v", f)
	}
}

func TestFrameIdentityPreservedAcrossReuse(t *testing.T) {
	a := NewAllocator(PageSize, 1)
	f1 := a.Alloc(0)
	f1.Data()[0] = 42
	a.Release(f1)
	f2 := a.Alloc(0)
	if f1 != f2 {
		t.Fatal("expected same frame object on reuse")
	}
	if f2.Data()[0] != 42 {
		t.Fatal("payload not preserved (caller must Reset explicitly)")
	}
	f2.Reset()
	if f2.Data()[0] != 0 {
		t.Fatal("Reset did not zero payload")
	}
}

func TestAllocN(t *testing.T) {
	a := NewAllocator(8*PageSize, 1)
	got := a.AllocN(0, 5)
	if len(got) != 5 {
		t.Fatalf("AllocN got %d, want 5", len(got))
	}
	got2 := a.AllocN(0, 10)
	if len(got2) != 3 {
		t.Fatalf("AllocN after partial exhaustion got %d, want 3", len(got2))
	}
}

// Property: alloc/release conservation — after any interleaving, allocated +
// free == capacity, and no frame is handed out twice concurrently.
func TestAllocatorConservationProperty(t *testing.T) {
	check := func(ops []bool) bool {
		a := NewAllocator(64*PageSize, 2)
		var held []*Frame
		outstanding := make(map[uint64]bool)
		for _, alloc := range ops {
			if alloc {
				f := a.Alloc(int(a.Allocated()) % 2)
				if f == nil {
					continue
				}
				if outstanding[f.ID] {
					return false // double allocation
				}
				outstanding[f.ID] = true
				held = append(held, f)
			} else if len(held) > 0 {
				f := held[len(held)-1]
				held = held[:len(held)-1]
				delete(outstanding, f.ID)
				a.Release(f)
			}
			if a.Allocated()+a.Free() != a.Capacity() {
				return false
			}
			if a.Allocated() != uint64(len(held)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameLookupUnallocated(t *testing.T) {
	a := NewAllocator(4*PageSize, 1)
	if a.Frame(2) != nil {
		t.Fatal("never-allocated frame id resolved")
	}
	f := a.Alloc(0)
	if a.Frame(f.ID) != f {
		t.Fatal("allocated frame not resolvable by id")
	}
}
