package device

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStoreReadBackWhatWasWritten(t *testing.T) {
	s := NewStore(1 << 20)
	data := []byte("hello, persistent world")
	s.WriteAt(12345, data)
	got := make([]byte, len(data))
	s.ReadAt(12345, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestStoreUnwrittenReadsZero(t *testing.T) {
	s := NewStore(1 << 20)
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xff
	}
	s.ReadAt(5000, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestStoreCrossBlockAccess(t *testing.T) {
	s := NewStore(1 << 20)
	data := make([]byte, 3*BlockSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	off := uint64(BlockSize - 100) // straddles block boundaries
	s.WriteAt(off, data)
	got := make([]byte, len(data))
	s.ReadAt(off, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-block write/read mismatch")
	}
}

func TestStoreOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStore(4096)
	s.ReadAt(4000, make([]byte, 200))
}

func TestStoreDiscard(t *testing.T) {
	s := NewStore(1 << 20)
	s.WriteAt(0, make([]byte, 4*BlockSize))
	if s.ResidentBlocks() != 4 {
		t.Fatalf("resident = %d, want 4", s.ResidentBlocks())
	}
	s.Discard(BlockSize, 2*BlockSize)
	if s.ResidentBlocks() != 2 {
		t.Fatalf("resident after discard = %d, want 2", s.ResidentBlocks())
	}
}

func TestNVMeLatencyAndIOPSCap(t *testing.T) {
	cfg := DefaultNVMeConfig()
	d := NewNVMe(1<<30, cfg)
	// A single idle 4K op completes after ReadLatency.
	c := d.Submit(0, 4096, false)
	if c != cfg.ReadLatency {
		t.Fatalf("idle completion = %d, want %d", c, cfg.ReadLatency)
	}
	// A burst of ops at t=0 completes spaced by the service interval.
	var last uint64
	for i := 0; i < 10; i++ {
		last = d.Submit(0, 4096, false)
	}
	// 11 ops total: the 11th starts service at 10*interval.
	want := 10*cfg.ServiceInterval + cfg.ReadLatency
	if last != want {
		t.Fatalf("queued completion = %d, want %d", last, want)
	}
}

func TestNVMeBandwidthCap(t *testing.T) {
	cfg := DefaultNVMeConfig()
	d := NewNVMe(1<<30, cfg)
	// A 1 MB transfer is bandwidth-bound: service = 1 MB * cycles/byte.
	big := 1 << 20
	d.Submit(0, big, false)
	c := d.Submit(0, 4096, false)
	wantStart := uint64(float64(big) * cfg.CyclesPerByte)
	if c != wantStart+cfg.ReadLatency {
		t.Fatalf("after big op completion = %d, want %d", c, wantStart+cfg.ReadLatency)
	}
}

func TestNVMeIdleGapResetsQueue(t *testing.T) {
	cfg := DefaultNVMeConfig()
	d := NewNVMe(1<<30, cfg)
	d.Submit(0, 4096, false)
	// Submit long after the device drained: no queueing delay.
	c := d.Submit(1_000_000, 4096, false)
	if c != 1_000_000+cfg.ReadLatency {
		t.Fatalf("post-idle completion = %d, want %d", c, 1_000_000+cfg.ReadLatency)
	}
}

func TestPMemSynchronousTiming(t *testing.T) {
	d := NewPMem(1<<20, DefaultPMemConfig())
	if c := d.Submit(1000, 4096, false); c != 1000 {
		t.Fatalf("DRAM-backed pmem completion = %d, want 1000 (free media)", c)
	}
	o := NewPMem(1<<20, OptanePMMConfig())
	c := o.Submit(0, 4096, false)
	want := o.AccessCycles(4096)
	if c != want || want <= 720 {
		t.Fatalf("optane pmem completion = %d, want %d (>720)", c, want)
	}
}

func TestStats(t *testing.T) {
	s := NewStore(1 << 20)
	s.WriteAt(0, make([]byte, 100))
	s.ReadAt(0, make([]byte, 50))
	st := s.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten != 100 || st.BytesRead != 50 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: for random write/read sequences the store behaves like a flat
// byte array.
func TestStoreMatchesFlatArray(t *testing.T) {
	const size = 4 * BlockSize
	type op struct {
		Off  uint16
		Data []byte
	}
	check := func(ops []op) bool {
		s := NewStore(size)
		ref := make([]byte, size)
		for _, o := range ops {
			off := uint64(o.Off) % (size - 256)
			data := o.Data
			if len(data) > 256 {
				data = data[:256]
			}
			s.WriteAt(off, data)
			copy(ref[off:], data)
			got := make([]byte, 256)
			s.ReadAt(off, got)
			if !bytes.Equal(got, ref[off:off+256]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNVMeCompletionsMonotonicProperty(t *testing.T) {
	check := func(gaps []uint8, sizes []uint8) bool {
		d := NewNVMe(1<<30, DefaultNVMeConfig())
		var now, lastStart uint64
		for i, g := range gaps {
			now += uint64(g) * 100
			sz := 512
			if i < len(sizes) {
				sz = (int(sizes[i]) + 1) * 512
			}
			c := d.Submit(now, sz, i%2 == 0)
			if c < now {
				return false // completion before submission
			}
			start := c - d.cfg.ReadLatency
			if i%2 != 0 {
				start = c - d.cfg.WriteLatency
			}
			_ = start
			if c < lastStart {
				return false
			}
			lastStart = start
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHasRange(t *testing.T) {
	s := NewStore(1 << 20)
	if s.HasRange(0, 4096) {
		t.Fatal("blank store reports content")
	}
	s.WriteAt(10000, []byte{1})
	if !s.HasRange(8192, 4096) {
		t.Fatal("range covering written block reports empty")
	}
	if s.HasRange(16384, 4096) {
		t.Fatal("untouched range reports content")
	}
}
