package device

import (
	"bytes"
	"math/rand"
	"testing"
)

func fullBlock(tag byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

// TestDurabilityPointBoundary pins the volatile-tier contract: a staged write
// is immediately visible to reads but reaches media only once its Persist'ed
// completion cycle has passed; a crash between two durability points keeps
// exactly the earlier write.
func TestDurabilityPointBoundary(t *testing.T) {
	s := NewStore(1 << 20)
	early, late := fullBlock(0xE1), fullBlock(0x1A)
	s.WriteAt(0, early)
	s.Persist(0, BlockSize, 1000)
	s.WriteAt(BlockSize, late)
	s.Persist(BlockSize, BlockSize, 2000)
	// Both visible before any durability point passes.
	got := make([]byte, BlockSize)
	s.ReadAt(0, got)
	if !bytes.Equal(got, early) {
		t.Fatal("staged write not visible to reads")
	}
	if s.PendingBlocks() != 2 {
		t.Fatalf("PendingBlocks = %d, want 2", s.PendingBlocks())
	}
	res := s.Crash(1500, nil, 0)
	if res.DroppedBlocks != 1 || res.TornBlocks != 0 {
		t.Fatalf("crash result %+v, want 1 dropped, 0 torn", res)
	}
	s.ReadAt(0, got)
	if !bytes.Equal(got, early) {
		t.Error("durable-by-crash write lost")
	}
	s.ReadAt(BlockSize, got)
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Error("in-flight write survived the crash")
	}
}

// TestNeverPersistedWriteIsLost pins the bug-catcher: a write path that skips
// its Persist handshake stays volatile forever — SettleAll does not absorb it
// and a crash drops it.
func TestNeverPersistedWriteIsLost(t *testing.T) {
	s := NewStore(1 << 20)
	s.WriteAt(0, fullBlock(0x42))
	s.SettleAll()
	if s.PendingBlocks() != 1 {
		t.Fatalf("never-persisted write settled (pending = %d)", s.PendingBlocks())
	}
	s.Crash(1<<40, nil, 0)
	got := make([]byte, BlockSize)
	s.ReadAt(0, got)
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Error("never-persisted write reached media")
	}
}

// TestCrashTornSectorPrefix pins the tear policy: with tearProb 1 every
// dropped block leaves a prefix of 1..7 whole 512-byte sectors of the
// in-flight data over the old content — sector atomicity, nothing finer.
func TestCrashTornSectorPrefix(t *testing.T) {
	s := NewStore(1 << 20)
	oldC, newC := fullBlock(0x0D), fullBlock(0xFE)
	s.WriteAt(0, oldC)
	s.Persist(0, BlockSize, 10)
	s.settle(10)
	s.WriteAt(0, newC)
	s.Persist(0, BlockSize, 5000)
	res := s.Crash(100, rand.New(rand.NewSource(3)), 1.0)
	if res.DroppedBlocks != 1 || res.TornBlocks != 1 {
		t.Fatalf("crash result %+v, want 1 dropped, 1 torn", res)
	}
	got := make([]byte, BlockSize)
	s.ReadAt(0, got)
	// The block must be new-prefix + old-suffix on a sector boundary.
	sectors := 0
	for sectors < BlockSize/SectorSize &&
		bytes.Equal(got[sectors*SectorSize:(sectors+1)*SectorSize],
			newC[sectors*SectorSize:(sectors+1)*SectorSize]) {
		sectors++
	}
	if sectors < 1 || sectors > 7 {
		t.Fatalf("torn prefix = %d sectors, want 1..7", sectors)
	}
	if !bytes.Equal(got[sectors*SectorSize:], oldC[sectors*SectorSize:]) {
		t.Error("bytes past the torn prefix are not the old durable content")
	}
}

// TestRePersistKeepsEarlierPoint pins that re-persisting a scheduled version
// keeps the earlier durability point, and that a post-schedule write COWs a
// fresh version instead of mutating the immutable scheduled one.
func TestRePersistKeepsEarlierPoint(t *testing.T) {
	s := NewStore(1 << 20)
	first := fullBlock(0xAA)
	s.WriteAt(0, first)
	s.Persist(0, BlockSize, 100)
	s.Persist(0, BlockSize, 9000) // must not push the point out
	second := fullBlock(0xBB)
	s.WriteAt(0, second) // COW: new version, scheduled one untouched
	s.Persist(0, BlockSize, 9000)
	s.Crash(200, nil, 0)
	got := make([]byte, BlockSize)
	s.ReadAt(0, got)
	if !bytes.Equal(got, first) {
		t.Error("earlier durability point lost by re-persist or COW overwrite")
	}
}

// TestCrashPlanJSONValidation pins fixture parsing and its error path.
func TestCrashPlanJSONValidation(t *testing.T) {
	p, err := CrashPlanFromJSON([]byte(`{"seed":3,"at_device_op":7,"tear_prob":0.5}`))
	if err != nil || p.Seed != 3 || p.AtDeviceOp != 7 || p.TearProb != 0.5 {
		t.Fatalf("parsed %+v, err %v", p, err)
	}
	if p.Empty() {
		t.Error("armed plan reported Empty")
	}
	if !(&CrashPlan{Seed: 9, TearProb: 1}).Empty() {
		t.Error("trigger-less plan not Empty")
	}
	if _, err := CrashPlanFromJSON([]byte(`{"tear_prob":1.5}`)); err == nil {
		t.Error("tear_prob 1.5 accepted")
	}
	if _, err := CrashPlanFromJSON([]byte(`{bad`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
