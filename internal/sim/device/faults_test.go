package device

import (
	"errors"
	"testing"
)

// checkSeq runs n same-shaped operations through the store and returns which
// ones failed.
func checkSeq(s *Store, n int, off uint64, size int, write bool) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		_, err := s.Check(uint64(i), off, size, write)
		out[i] = err != nil
	}
	return out
}

func TestFaultScheduleAfterEveryLimit(t *testing.T) {
	s := NewStore(1 << 20)
	s.attachFaults("dev0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultTransientWrite, After: 3, Every: 5, Limit: 2},
	}}, nil)
	got := checkSeq(s, 15, 0, 4096, true)
	// Matches 3 and 8 fire (After=3, Every=5, Limit=2); match 13 is capped.
	want := []bool{false, false, true, false, false, false, false, true,
		false, false, false, false, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: failed=%v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if n := s.InjectedFaults(); n != 2 {
		t.Errorf("InjectedFaults = %d, want 2", n)
	}
}

func TestFaultDirectionMatch(t *testing.T) {
	s := NewStore(1 << 20)
	s.attachFaults("dev0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultTransientWrite, After: 1},
	}}, nil)
	if _, err := s.CheckRead(0, 0, 4096); err != nil {
		t.Errorf("write-fault rule failed a read: %v", err)
	}
	// The read did not consume the rule's schedule slot.
	if _, err := s.CheckWrite(0, 0, 4096); err == nil {
		t.Error("first write did not fail")
	}
}

func TestFaultRangeRestriction(t *testing.T) {
	s := NewStore(1 << 20)
	s.attachFaults("dev0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultTransientRead, Off: 8192, Len: 4096, After: 1, Every: 1},
	}}, nil)
	if _, err := s.CheckRead(0, 0, 4096); err != nil {
		t.Errorf("out-of-range read failed: %v", err)
	}
	if _, err := s.CheckRead(0, 8192, 4096); err == nil {
		t.Error("in-range read did not fail")
	}
	// Overlap at the edge counts.
	if _, err := s.CheckRead(0, 4096, 8192); err == nil {
		t.Error("overlapping read did not fail")
	}
}

func TestFaultProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		s := NewStore(1 << 20)
		s.attachFaults("dev0", &FaultPlan{Seed: seed, Rules: []FaultRule{
			{Kind: FaultTransientWrite, Prob: 0.3},
		}}, nil)
		return checkSeq(s, 200, 0, 4096, true)
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(8)
	same := true
	fires := 0
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			fires++
		}
	}
	if same {
		t.Error("different seeds produced identical firing sequences")
	}
	if fires < 30 || fires > 90 {
		t.Errorf("Prob=0.3 fired %d/200 times, far from expectation", fires)
	}
}

func TestPermanentReadRangePersists(t *testing.T) {
	s := NewStore(1 << 20)
	s.attachFaults("nvme0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultPermanentRead, Off: 4096, Len: 4096, After: 2},
	}}, nil)
	if _, err := s.CheckRead(0, 4096, 4096); err != nil {
		t.Fatalf("read before After failed: %v", err)
	}
	_, err := s.CheckRead(1, 4096, 4096)
	if err == nil {
		t.Fatal("second read did not fire the permanent fault")
	}
	var de *IOError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not *IOError", err)
	}
	if de.Dev != "nvme0" || de.Kind != FaultPermanentRead || de.Transient() {
		t.Errorf("bad error payload: %+v", de)
	}
	// Every later overlapping read keeps failing; writes are unaffected.
	for i := 0; i < 5; i++ {
		if _, err := s.CheckRead(uint64(2+i), 4096, 4096); err == nil {
			t.Fatal("permanent bad range stopped failing")
		}
	}
	if _, err := s.CheckWrite(10, 4096, 4096); err != nil {
		t.Errorf("write to read-bad range failed: %v", err)
	}
	if _, err := s.CheckRead(11, 12288, 4096); err != nil {
		t.Errorf("read outside bad range failed: %v", err)
	}
}

func TestPoisonActsAsPermanentRead(t *testing.T) {
	s := NewStore(1 << 20)
	s.attachFaults("pmem0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultPoison, Off: 0, Len: 64, After: 1},
	}}, nil)
	_, err := s.CheckRead(0, 0, 4096)
	var de *IOError
	if !errors.As(err, &de) || de.Kind != FaultPoison {
		t.Fatalf("poisoned read error = %v", err)
	}
	if _, err := s.CheckRead(1, 0, 64); err == nil {
		t.Error("poisoned line readable again")
	}
}

func TestLatencySpikeDelaysWithoutFailing(t *testing.T) {
	s := NewStore(1 << 20)
	s.attachFaults("dev0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultLatencySpike, After: 2, Delay: 12345},
	}}, nil)
	if d, err := s.CheckRead(0, 0, 4096); err != nil || d != 0 {
		t.Fatalf("first op: delay=%d err=%v", d, err)
	}
	d, err := s.CheckRead(1, 0, 4096)
	if err != nil {
		t.Fatalf("spiked op failed: %v", err)
	}
	if d != 12345 {
		t.Errorf("spike delay = %d, want 12345", d)
	}
}

func TestNoPlanIsInert(t *testing.T) {
	s := NewStore(1 << 20)
	if d, err := s.Check(0, 0, 4096, true); d != 0 || err != nil {
		t.Fatalf("no-plan Check = (%d, %v)", d, err)
	}
	if s.InjectedFaults() != 0 {
		t.Error("no-plan store counted injections")
	}
	// Attach then detach: inert again.
	s.attachFaults("dev0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultTransientWrite, After: 1, Every: 1},
	}}, nil)
	s.attachFaults("dev0", nil, nil)
	if _, err := s.CheckWrite(0, 0, 4096); err != nil {
		t.Fatalf("detached plan still fires: %v", err)
	}
}

func TestLoadFaultPlanFixtures(t *testing.T) {
	plan, err := LoadFaultPlan("testdata/faultplans/transient-nvme-writes.json")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Rules) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	r := plan.Rules[0]
	if r.Kind != FaultTransientWrite || r.After != 3 || r.Every != 5 || r.Limit != 10 {
		t.Errorf("rule 0 = %+v", r)
	}
	if plan.Rules[1].Kind != FaultLatencySpike || plan.Rules[1].Delay != 80000 {
		t.Errorf("rule 1 = %+v", plan.Rules[1])
	}

	plan, err = LoadFaultPlan("testdata/faultplans/permanent-read.json")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rules[0].Kind != FaultPermanentRead || plan.Rules[0].Off != 8192 {
		t.Errorf("permanent-read rule = %+v", plan.Rules[0])
	}

	if _, err := FaultPlanFromJSON([]byte(`{"rules":[{"kind":"nope"}]}`)); err == nil {
		t.Error("unknown kind parsed")
	}
}

func TestInjectFaultsOnDevices(t *testing.T) {
	nv := NewNVMe(1<<20, DefaultNVMeConfig())
	nv.InjectFaults("nvme0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultTransientRead, After: 1},
	}})
	_, err := nv.Store.CheckRead(0, 0, 4096)
	var de *IOError
	if !errors.As(err, &de) || de.Dev != "nvme0" {
		t.Fatalf("nvme fault = %v", err)
	}
	pm := NewPMem(1<<20, DefaultPMemConfig())
	pm.InjectFaults("pmem0", &FaultPlan{Rules: []FaultRule{
		{Kind: FaultPoison, Off: 0, Len: 4096, After: 1},
	}})
	if _, err := pm.Store.CheckRead(0, 0, 64); err == nil {
		t.Fatal("pmem poison did not fire")
	}
	pm.InjectFaults("pmem0", nil)
	if _, err := pm.Store.CheckRead(1, 0, 64); err != nil {
		t.Fatalf("detach left faults active: %v", err)
	}
}
