// Durability model: every device content store is split into a volatile
// write-cache tier and durable media. WriteAt stages bytes into the volatile
// tier; they migrate to media only once the operation's durability point has
// passed — Persist(off, n, at) schedules the staged bytes to become durable
// at completion time `at`, and settle(now) (called from every Submit) folds
// everything whose durability point has been reached into media. A run that
// never crashes observes identical content (reads overlay the newest staged
// version), but Crash() discards the volatile tier and exposes exactly what
// a real power loss would leave on the device: completed writes, nothing
// in flight, except an optional seeded torn-sector prefix.
package device

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
)

// SectorSize is the tear granularity: a crashed in-flight 4 KB block write
// may leave a prefix of whole 512-byte sectors on media.
const SectorSize = 512

// notDurable marks a staged version whose durability point has not been
// scheduled yet (WriteAt done, Persist pending).
const notDurable = ^uint64(0)

// volVersion is one staged write of a block sitting in the device's volatile
// write-cache tier. Versions are ordered oldest-to-newest per block.
type volVersion struct {
	data      []byte // full BlockSize content
	durableAt uint64 // completion cycle, or notDurable until Persist
}

// view returns the newest visible content of blk — the volatile overlay wins
// over media — or nil when the block has never been written.
func (s *Store) view(blk uint64) []byte {
	if vs, ok := s.volatile[blk]; ok && len(vs) > 0 {
		return vs[len(vs)-1].data
	}
	return s.blocks[blk]
}

// stage copies chunk into the volatile tier at (blk, bo). Consecutive writes
// before a Persist merge into one pending version; once a version has been
// scheduled it is immutable and a fresh copy-on-write version is appended.
func (s *Store) stage(blk uint64, bo int, chunk []byte) {
	vs := s.volatile[blk]
	if n := len(vs); n > 0 && vs[n-1].durableAt == notDurable {
		copy(vs[n-1].data[bo:], chunk)
		return
	}
	b := make([]byte, BlockSize)
	if cur := s.view(blk); cur != nil {
		copy(b, cur)
	}
	copy(b[bo:], chunk)
	s.volatile[blk] = append(vs, volVersion{data: b, durableAt: notDurable})
}

// Persist schedules the newest staged version of every block overlapping
// [off, off+n) to become durable at completion cycle `at`. I/O engines call
// it right after Submit with the returned completion time; pmem paths call it
// with the cycle the persistent-domain copy drains. Re-persisting an already
// scheduled version keeps the earlier durability point.
func (s *Store) Persist(off uint64, n int, at uint64) {
	if n <= 0 || len(s.volatile) == 0 {
		return
	}
	first := off / BlockSize
	last := (off + uint64(n) - 1) / BlockSize
	for blk := first; blk <= last; blk++ {
		vs := s.volatile[blk]
		if len(vs) == 0 {
			continue
		}
		if v := &vs[len(vs)-1]; v.durableAt == notDurable || at < v.durableAt {
			v.durableAt = at
		}
	}
}

// settle folds every staged version whose durability point has been reached
// into media. Called from Submit on each device operation: any crash cycle
// the engine can still reach is >= the current submit time, so folding up to
// `now` never makes something durable that a future crash should discard.
func (s *Store) settle(upTo uint64) {
	if len(s.volatile) == 0 {
		return
	}
	//aqlint:sorted -- per-block fold, order-independent; no simulated state touched
	for blk, vs := range s.volatile {
		best := -1
		for i, v := range vs {
			if v.durableAt <= upTo {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		// The newest version durable by upTo wins the media slot; older
		// versions are superseded. In-flight writes serialize per page above
		// this layer, so inverted completions of overlapping writes do not
		// occur in practice.
		s.blocks[blk] = vs[best].data
		if rest := vs[best+1:]; len(rest) > 0 {
			s.volatile[blk] = rest
		} else {
			delete(s.volatile, blk)
		}
	}
}

// SettleAll folds every *scheduled* staged version into media regardless of
// its durability point (end-of-run quiesce). Versions never Persisted remain
// volatile: a write path that forgets its durability point shows up as lost
// data instead of being silently absorbed.
func (s *Store) SettleAll() { s.settle(notDurable - 1) }

// PendingBlocks returns how many blocks have staged-but-not-yet-durable
// content in the volatile tier.
func (s *Store) PendingBlocks() int { return len(s.volatile) }

// CrashResult summarizes what a Crash() did to the device.
type CrashResult struct {
	// Cycle is the simulated cycle the power was lost.
	Cycle uint64
	// DroppedBlocks counts blocks whose newest staged version never reached
	// its durability point and was discarded.
	DroppedBlocks int
	// TornBlocks counts dropped blocks that left a partial sector prefix on
	// media (always <= DroppedBlocks).
	TornBlocks int
}

// Crash models power loss at `cycle`: staged versions durable by then fold
// into media, everything else is discarded. With tearProb > 0 each dropped
// block independently leaves a prefix of 1..7 whole 512-byte sectors of the
// in-flight write on media, drawn from rng — the torn-write behavior of real
// devices that only guarantee sector atomicity. The store stays readable
// afterwards (it serves the durable image) and keeps accepting writes, but
// recovery normally adopts CloneMedia() into a fresh system instead.
func (s *Store) Crash(cycle uint64, rng *rand.Rand, tearProb float64) CrashResult {
	s.settle(cycle)
	res := CrashResult{Cycle: cycle}
	if len(s.volatile) > 0 {
		blks := make([]uint64, 0, len(s.volatile))
		//aqlint:sorted -- keys only collected; sorted before use below
		for blk := range s.volatile {
			blks = append(blks, blk)
		}
		sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
		for _, blk := range blks {
			vs := s.volatile[blk]
			pending := vs[len(vs)-1].data
			res.DroppedBlocks++
			if tearProb > 0 && rng != nil && rng.Float64() < tearProb {
				sectors := 1 + rng.Intn(BlockSize/SectorSize-1)
				b := s.blocks[blk]
				if b == nil {
					b = make([]byte, BlockSize)
					s.blocks[blk] = b
				}
				copy(b[:sectors*SectorSize], pending[:sectors*SectorSize])
				res.TornBlocks++
			}
		}
		s.volatile = make(map[uint64][]volVersion)
	}
	s.crashRes = &res
	return res
}

// CrashedResult returns the result of the store's Crash call, or nil.
func (s *Store) CrashedResult() *CrashResult { return s.crashRes }

// Fingerprint hashes the durable media image — block indexes and full block
// content in sorted order (FNV-1a). The volatile tier is excluded: call
// SettleAll first for an end-of-run fingerprint, or Crash for a post-crash
// one. Same workload + same seed + same CrashPlan ⇒ identical fingerprint.
func (s *Store) Fingerprint() uint64 {
	h := fnv.New64a()
	blks := make([]uint64, 0, len(s.blocks))
	//aqlint:sorted -- keys only collected; sorted before use below
	for blk := range s.blocks {
		blks = append(blks, blk)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	var le [8]byte
	for _, blk := range blks {
		binary.LittleEndian.PutUint64(le[:], blk)
		h.Write(le[:])
		h.Write(s.blocks[blk])
	}
	return h.Sum64()
}

// CloneMedia deep-copies the durable media image (call after Crash).
func (s *Store) CloneMedia() map[uint64][]byte {
	out := make(map[uint64][]byte, len(s.blocks))
	//aqlint:sorted -- deep copy, order-independent; no simulated state touched
	for blk, b := range s.blocks {
		c := make([]byte, BlockSize)
		copy(c, b)
		out[blk] = c
	}
	return out
}

// AdoptMedia replaces the store's durable media with a deep copy of img and
// clears the volatile tier — booting a recovered device from a crash image.
func (s *Store) AdoptMedia(img map[uint64][]byte) {
	s.blocks = make(map[uint64][]byte, len(img))
	//aqlint:sorted -- deep copy, order-independent; no simulated state touched
	for blk, b := range img {
		c := make([]byte, BlockSize)
		copy(c, b)
		s.blocks[blk] = c
	}
	s.volatile = make(map[uint64][]volVersion)
}

// ArmCrashAtOp arms a crash hook that fires synchronously when the store's
// opIndex'th content write (1-based, counted by Stats.Writes) has been
// staged — "the machine dies between device writes W_k and W_k+1". The hook
// is cleared before it runs, so it fires at most once; it is expected to
// panic with the engine's crash sentinel and never return.
func (s *Store) ArmCrashAtOp(opIndex uint64, hook func()) {
	s.crashAtOp, s.crashHook = opIndex, hook
}

// CrashPlan is a seeded, declarative description of one crash: exactly when
// the machine dies and how the device's in-flight sector tears. Mirrors
// FaultPlan: plans are pure data, loadable from JSON fixtures, and all
// randomness flows from Seed. An empty plan (no trigger set) never fires and
// is byte-for-byte equivalent to running without one.
type CrashPlan struct {
	// Seed drives the tear policy RNG.
	Seed int64
	// AtCycle kills the run when simulated time reaches this cycle (0 = off).
	AtCycle uint64
	// AtDeviceOp kills the run right after the Nth device content write,
	// 1-based (0 = off).
	AtDeviceOp uint64
	// AtSpan kills the run on entry to the SpanHit'th occurrence of this
	// named span, e.g. "aq.msync" or "aq.bg_writeback" ("" = off).
	AtSpan string
	// SpanHit selects which occurrence of AtSpan fires (1-based; 0 = first).
	SpanHit uint64
	// TearProb is the per-dropped-block probability of a torn sector prefix.
	TearProb float64
}

// Empty reports whether the plan has no trigger armed.
func (p *CrashPlan) Empty() bool {
	return p == nil || (p.AtCycle == 0 && p.AtDeviceOp == 0 && p.AtSpan == "")
}

// crashPlanJSON is the fixture wire format (testdata/crashplans/*.json).
type crashPlanJSON struct {
	Seed       int64   `json:"seed"`
	AtCycle    uint64  `json:"at_cycle"`
	AtDeviceOp uint64  `json:"at_device_op"`
	AtSpan     string  `json:"at_span"`
	SpanHit    uint64  `json:"span_hit"`
	TearProb   float64 `json:"tear_prob"`
}

// CrashPlanFromJSON parses a plan from its fixture wire format.
func CrashPlanFromJSON(data []byte) (*CrashPlan, error) {
	var w crashPlanJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("crash plan: %w", err)
	}
	p := &CrashPlan{
		Seed: w.Seed, AtCycle: w.AtCycle, AtDeviceOp: w.AtDeviceOp,
		AtSpan: w.AtSpan, SpanHit: w.SpanHit, TearProb: w.TearProb,
	}
	if p.TearProb < 0 || p.TearProb > 1 {
		return nil, fmt.Errorf("crash plan: tear_prob %v outside [0,1]", p.TearProb)
	}
	return p, nil
}

// LoadCrashPlan reads a plan fixture from disk.
func LoadCrashPlan(path string) (*CrashPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return CrashPlanFromJSON(data)
}
