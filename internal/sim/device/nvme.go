package device

// NVMeConfig parameterizes the NVMe timing model. Defaults model the Intel
// Optane SSD DC P4800X of the paper's testbed (§5), in cycles at 2.4 GHz.
type NVMeConfig struct {
	// ReadLatency is the device-internal access latency for reads
	// (~10 us on the P4800X => 24000 cycles).
	ReadLatency uint64
	// WriteLatency is the access latency for writes.
	WriteLatency uint64
	// ServiceInterval is the minimum cycles between operation completions,
	// capping IOPS (550 K IOPS => ~4363 cycles).
	ServiceInterval uint64
	// CyclesPerByte caps sequential bandwidth (2.4 GB/s at 2.4 GHz =>
	// ~1 cycle/byte).
	CyclesPerByte float64
}

// DefaultNVMeConfig returns the Optane P4800X-class model.
func DefaultNVMeConfig() NVMeConfig {
	return NVMeConfig{
		ReadLatency:     24000,
		WriteLatency:    24000,
		ServiceInterval: 4363,
		CyclesPerByte:   1.0,
	}
}

// NVMe is a block device with a queueing timing model and sparse content.
// An operation submitted at time t starts service when the device's internal
// pipeline has a free slot and completes after the access latency; sustained
// load is capped by both an IOPS service interval and a bandwidth term.
type NVMe struct {
	*Store
	cfg      NVMeConfig
	nextFree uint64
	// busyCycles integrates service time, for utilization reporting.
	busyCycles uint64
	lastSubmit uint64
	obs        *devObs
}

// NewNVMe creates an NVMe device with the given capacity and timing config.
func NewNVMe(capacity uint64, cfg NVMeConfig) *NVMe {
	return &NVMe{Store: NewStore(capacity), cfg: cfg}
}

// Submit implements Timing.
func (d *NVMe) Submit(now uint64, bytes int, write bool) uint64 {
	d.settle(now)
	service := d.cfg.ServiceInterval
	if bw := uint64(float64(bytes) * d.cfg.CyclesPerByte); bw > service {
		service = bw
	}
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + service
	d.busyCycles += service
	d.lastSubmit = now
	lat := d.cfg.ReadLatency
	if write {
		lat = d.cfg.WriteLatency
	}
	completion := start + lat
	if min := start + service; completion < min {
		completion = min
	}
	d.obs.record(now, start, completion, write)
	return completion
}

// Utilization returns the fraction of [0, horizon] the device was busy.
func (d *NVMe) Utilization(horizon uint64) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(d.busyCycles) / float64(horizon)
}

// Config returns the timing configuration.
func (d *NVMe) Config() NVMeConfig { return d.cfg }
