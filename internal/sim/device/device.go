// Package device models the two storage devices of the paper's testbed:
//
//   - an Intel Optane P4800X-class NVMe SSD on PCIe (block-addressable,
//     ~10 us access latency, >500 K random IOPS), and
//   - a pmem block device backed by DRAM, used by the paper to stress the
//     software path as devices get faster.
//
// Devices separate *content* (a sparse 4 KB-block store holding real bytes,
// so applications above read back what they wrote) from *timing* (queueing
// models that return completion times in simulated cycles). Software-path
// costs — syscalls, kernel block layer, SPDK submission, DAX memcpy — are
// charged by the I/O engines layered above, never here.
package device

import "fmt"

// BlockSize is the content-store granularity.
const BlockSize = 4096

// Stats counts raw device operations.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Store is a sparse byte store: the content of a device, split into durable
// media (blocks) and a volatile write-cache tier (volatile) — see crash.go.
// Blocks never written read back as zeros.
type Store struct {
	capacity uint64
	blocks   map[uint64][]byte
	// volatile holds staged writes that have not reached their durability
	// point; reads overlay it, Crash() discards it.
	volatile map[uint64][]volVersion
	stats    Stats
	faults   *faultState
	// crashAtOp/crashHook implement CrashPlan.AtDeviceOp (crash.go).
	crashAtOp uint64
	crashHook func()
	crashRes  *CrashResult
}

// NewStore creates a content store with the given capacity in bytes.
func NewStore(capacity uint64) *Store {
	return &Store{
		capacity: capacity,
		blocks:   make(map[uint64][]byte),
		volatile: make(map[uint64][]volVersion),
	}
}

// Capacity returns the device capacity in bytes.
func (s *Store) Capacity() uint64 { return s.capacity }

// Stats returns operation counters.
func (s *Store) Stats() Stats { return s.stats }

// ReadAt copies device content at off into buf.
func (s *Store) ReadAt(off uint64, buf []byte) {
	s.checkRange(off, len(buf))
	s.stats.Reads++
	s.stats.BytesRead += uint64(len(buf))
	for n := 0; n < len(buf); {
		blk := (off + uint64(n)) / BlockSize
		bo := int((off + uint64(n)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		if b := s.view(blk); b != nil {
			copy(buf[n:n+chunk], b[bo:bo+chunk])
		} else {
			for i := n; i < n+chunk; i++ {
				buf[i] = 0
			}
		}
		n += chunk
	}
}

// WriteAt stages buf into the device's volatile write-cache tier at off. The
// bytes are immediately visible to reads but become durable only when a
// Persist-scheduled durability point is reached (crash.go).
func (s *Store) WriteAt(off uint64, buf []byte) {
	s.checkRange(off, len(buf))
	s.stats.Writes++
	s.stats.BytesWritten += uint64(len(buf))
	for n := 0; n < len(buf); {
		blk := (off + uint64(n)) / BlockSize
		bo := int((off + uint64(n)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		s.stage(blk, bo, buf[n:n+chunk])
		n += chunk
	}
	if s.crashHook != nil && s.stats.Writes >= s.crashAtOp {
		h := s.crashHook
		s.crashHook = nil
		h() // panics with the engine's crash sentinel
	}
}

// Discard drops content blocks fully inside [off, off+length) (TRIM), from
// both tiers.
func (s *Store) Discard(off, length uint64) {
	first := (off + BlockSize - 1) / BlockSize
	last := (off + length) / BlockSize
	for b := first; b < last; b++ {
		delete(s.blocks, b)
		delete(s.volatile, b)
	}
}

// ResidentBlocks returns how many content blocks are materialized across
// both tiers.
func (s *Store) ResidentBlocks() int {
	n := len(s.blocks)
	//aqlint:sorted -- order-independent count; no simulated state touched
	for blk := range s.volatile {
		if _, ok := s.blocks[blk]; !ok {
			n++
		}
	}
	return n
}

// HasRange reports whether any content block overlapping [off, off+n) is
// materialized (i.e. the range may hold non-zero bytes).
func (s *Store) HasRange(off uint64, n int) bool {
	first := off / BlockSize
	last := (off + uint64(n) - 1) / BlockSize
	for b := first; b <= last; b++ {
		if s.view(b) != nil {
			return true
		}
	}
	return false
}

func (s *Store) checkRange(off uint64, n int) {
	if off+uint64(n) > s.capacity {
		panic(fmt.Sprintf("device: access [%d, %d) beyond capacity %d",
			off, off+uint64(n), s.capacity))
	}
}

// Timing is the queueing model interface: Submit reserves device service for
// an operation issued at simulated time `now` and returns its completion time.
type Timing interface {
	Submit(now uint64, bytes int, write bool) (completion uint64)
}
