package device

import "aquila/internal/obs"

// Device observability: each instrumented device gets one trace track
// (category "dev") showing queue wait vs service time per I/O, plus
// registry histograms and counters. Timing is never affected — the hook
// only observes the (now, start, completion) triple Submit already computes.

// devObs holds a device's tracer track and registry metrics. A nil devObs
// is a no-op, so Submit stays allocation-free when instrumentation is off.
type devObs struct {
	tr       *obs.Tracer
	pid, tid int
	reg      *obs.Registry
	name     string
	queue    *obs.Histogram
	service  *obs.Histogram
	reads    *obs.Counter
	writes   *obs.Counter
}

func newDevObs(tr *obs.Tracer, pid, tid int, reg *obs.Registry, name string) *devObs {
	o := &devObs{tr: tr, pid: pid, tid: tid, reg: reg, name: name}
	o.reads = reg.Counter("dev_reads", obs.L("dev", name))
	o.writes = reg.Counter("dev_writes", obs.L("dev", name))
	if reg != nil {
		o.queue = reg.Histogram("dev_queue_cycles", obs.L("dev", name))
		o.service = reg.Histogram("dev_service_cycles", obs.L("dev", name))
	}
	return o
}

// record attributes one I/O: [now, start) queued, [start, completion) in
// service. Zero-length phases are recorded in histograms but not traced.
func (o *devObs) record(now, start, completion uint64, write bool) {
	if o == nil {
		return
	}
	if write {
		o.writes.Inc()
	} else {
		o.reads.Inc()
	}
	if o.queue != nil {
		o.queue.Record(start - now)
		o.service.Record(completion - start)
	}
	if o.tr == nil {
		return
	}
	if start > now {
		o.tr.Add(obs.Span{
			Name: "queue", Cat: "dev",
			PID: o.pid, TID: o.tid, Begin: now, End: start,
		})
	}
	if completion > start {
		name := "read"
		if write {
			name = "write"
		}
		o.tr.Add(obs.Span{
			Name: name, Cat: "dev",
			PID: o.pid, TID: o.tid, Begin: start, End: completion,
		})
	}
}

// fault records one injected fault: a per-kind dev_faults_injected counter
// and a "dev.fault" span on the device's track (instant-like; latency spikes
// stretch to their extra delay so the stall is visible in the trace).
func (o *devObs) fault(now uint64, kind string, delay uint64) {
	if o == nil {
		return
	}
	o.reg.Counter("dev_faults_injected", obs.L("dev", o.name), obs.L("kind", kind)).Inc()
	if o.tr == nil {
		return
	}
	end := now + 1
	if delay > 0 {
		end = now + delay
	}
	o.tr.Add(obs.Span{
		Name: "fault:" + kind, Cat: "dev.fault",
		PID: o.pid, TID: o.tid, Begin: now, End: end,
	})
}

// Instrument attaches a trace track and registry metrics to the NVMe device.
// pid/tid locate the device's track in the shared tracer; name labels the
// registry series. Either tr or reg may be nil.
func (d *NVMe) Instrument(tr *obs.Tracer, pid, tid int, reg *obs.Registry, name string) {
	d.obs = newDevObs(tr, pid, tid, reg, name)
	d.Store.linkObs(d.obs)
}

// Instrument attaches a trace track and registry metrics to the pmem device.
func (d *PMem) Instrument(tr *obs.Tracer, pid, tid int, reg *obs.Registry, name string) {
	d.obs = newDevObs(tr, pid, tid, reg, name)
	d.Store.linkObs(d.obs)
}
