package device

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
)

// Deterministic device fault injection. A FaultPlan is a seeded schedule of
// fault rules attached to a device's content store; every I/O the engines
// above issue consults the plan via Store.Check before touching content or
// timing. Firing is a pure function of the plan (seed + rules) and the
// device's deterministic operation sequence, so a fixed-seed plan reproduces
// bit-identical failures across runs — the property the core runtime's
// error-path tests depend on.
//
// Injected faults are observable twice: in the obs layer ("dev.fault" spans
// on the device's trace track and per-kind dev_faults_injected counters) and
// through Store.InjectedFaults for registry-free tests.

// FaultKind classifies an injected device fault.
type FaultKind uint8

// Fault kinds.
const (
	// FaultTransientRead fails one read; a retry may succeed.
	FaultTransientRead FaultKind = iota
	// FaultTransientWrite fails one write; a retry may succeed.
	FaultTransientWrite
	// FaultPermanentRead marks the matched byte range bad for reads: the
	// firing read and every later read overlapping the range fail.
	FaultPermanentRead
	// FaultPermanentWrite marks the matched byte range bad for writes.
	FaultPermanentWrite
	// FaultLatencySpike delays the matched operation by Delay cycles
	// without failing it (a timeout-shaped stall).
	FaultLatencySpike
	// FaultPoison models a poisoned pmem line: like FaultPermanentRead, the
	// range becomes permanently unreadable (machine-check on load).
	FaultPoison
)

// String returns the kind's wire name (also used as the obs label).
func (k FaultKind) String() string {
	switch k {
	case FaultTransientRead:
		return "transient-read"
	case FaultTransientWrite:
		return "transient-write"
	case FaultPermanentRead:
		return "permanent-read"
	case FaultPermanentWrite:
		return "permanent-write"
	case FaultLatencySpike:
		return "latency-spike"
	case FaultPoison:
		return "poison"
	}
	return fmt.Sprintf("kind-%d", k)
}

// faultKindFromString parses a wire name.
func faultKindFromString(s string) (FaultKind, error) {
	for k := FaultTransientRead; k <= FaultPoison; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("device: unknown fault kind %q", s)
}

// reads reports whether the kind applies to read operations.
func (k FaultKind) reads() bool {
	switch k {
	case FaultTransientRead, FaultPermanentRead, FaultPoison, FaultLatencySpike:
		return true
	}
	return false
}

// writes reports whether the kind applies to write operations.
func (k FaultKind) writes() bool {
	switch k {
	case FaultTransientWrite, FaultPermanentWrite, FaultLatencySpike:
		return true
	}
	return false
}

// IOError is the typed error a faulted device operation returns. It carries
// the device name and the LBA-range context the layers above propagate into
// their own typed errors (core.IOFault, SIGBUS payloads).
type IOError struct {
	Kind FaultKind
	// Dev names the device ("nvme0", "pmem0").
	Dev string
	// Off/Len locate the failed operation on the device, in bytes.
	Off uint64
	Len int
}

// Error implements error.
func (e *IOError) Error() string {
	return fmt.Sprintf("device %s: %s fault at [%d,%d)", e.Dev, e.Kind, e.Off, e.Off+uint64(e.Len))
}

// Transient reports whether a retry of the same operation may succeed.
func (e *IOError) Transient() bool {
	return e.Kind == FaultTransientRead || e.Kind == FaultTransientWrite
}

// FaultRule is one scheduled fault. A rule matches an operation when the
// operation's direction suits the kind and its byte range overlaps
// [Off, Off+Len). Whether a matching operation fires is decided either by
// the deterministic count schedule (After/Every/Limit) or, when Prob > 0, by
// a seeded Bernoulli draw per matching operation.
type FaultRule struct {
	Kind FaultKind
	// Off/Len restrict the rule to a device byte range; Len 0 means "to the
	// end of the device" (with Off 0: the whole device).
	Off uint64
	Len uint64
	// After is the 1-based index of the first matching operation that can
	// fire (0 means the first). Every is the period between subsequent
	// fires (0: fire only once, at After). Limit caps total fires
	// (0: unlimited).
	After uint64
	Every uint64
	Limit uint64
	// Prob, when > 0, replaces the count schedule: each matching operation
	// fires with this probability, drawn from the plan's seeded generator.
	Prob float64
	// Delay is the extra latency of a FaultLatencySpike, in cycles
	// (0 derives DefaultSpikeDelay).
	Delay uint64
}

// DefaultSpikeDelay is the latency-spike delay when a rule leaves Delay 0
// (~20 µs at 2.4 GHz — a visible stall, not a timeout).
const DefaultSpikeDelay = 50000

// FaultPlan is a seeded set of fault rules.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
}

// faultPlanJSON is the fixture wire format (testdata/faultplans/*.json).
type faultPlanJSON struct {
	Seed  int64 `json:"seed"`
	Rules []struct {
		Kind  string  `json:"kind"`
		Off   uint64  `json:"off"`
		Len   uint64  `json:"len"`
		After uint64  `json:"after"`
		Every uint64  `json:"every"`
		Limit uint64  `json:"limit"`
		Prob  float64 `json:"prob"`
		Delay uint64  `json:"delay"`
	} `json:"rules"`
}

// FaultPlanFromJSON parses a plan from its fixture wire format.
func FaultPlanFromJSON(data []byte) (*FaultPlan, error) {
	var w faultPlanJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("device: bad fault plan: %w", err)
	}
	plan := &FaultPlan{Seed: w.Seed}
	for i, r := range w.Rules {
		kind, err := faultKindFromString(r.Kind)
		if err != nil {
			return nil, fmt.Errorf("device: rule %d: %w", i, err)
		}
		plan.Rules = append(plan.Rules, FaultRule{
			Kind: kind, Off: r.Off, Len: r.Len,
			After: r.After, Every: r.Every, Limit: r.Limit,
			Prob: r.Prob, Delay: r.Delay,
		})
	}
	return plan, nil
}

// LoadFaultPlan reads a plan fixture from disk.
func LoadFaultPlan(path string) (*FaultPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FaultPlanFromJSON(data)
}

// badRange is one permanently failed byte range.
type badRange struct {
	off  uint64
	end  uint64
	kind FaultKind
}

// ruleState is a rule plus its firing bookkeeping.
type ruleState struct {
	FaultRule
	matches uint64
	fires   uint64
}

// faultState is a plan attached to one store.
type faultState struct {
	dev      string
	rules    []*ruleState
	rng      *rand.Rand
	obs      *devObs
	badRead  []badRange
	badWrite []badRange
	injected uint64
}

// attachFaults binds a plan to the store. The obs hook is resolved lazily by
// the device's Instrument call (see linkObs), so injection order vs
// instrumentation order does not matter.
func (s *Store) attachFaults(dev string, plan *FaultPlan, o *devObs) {
	if plan == nil {
		s.faults = nil
		return
	}
	fs := &faultState{dev: dev, rng: rand.New(rand.NewSource(plan.Seed)), obs: o}
	for i := range plan.Rules {
		fs.rules = append(fs.rules, &ruleState{FaultRule: plan.Rules[i]})
	}
	s.faults = fs
}

// linkObs (re)binds the fault recorder to the device's obs hook, so Inject
// before Instrument still traces.
func (s *Store) linkObs(o *devObs) {
	if s.faults != nil {
		s.faults.obs = o
	}
}

// InjectedFaults returns how many faults the store has injected so far
// (errors plus latency spikes), for registry-free assertions.
func (s *Store) InjectedFaults() uint64 {
	if s.faults == nil {
		return 0
	}
	return s.faults.injected
}

// Check consults the fault plan for one device operation covering
// [off, off+n). It returns an extra latency (latency spikes; the caller
// stalls before submitting) and an error (the operation must fail without
// moving content; the caller still charges device timing, modeling failure
// detected at completion). With no plan attached it is a single nil check,
// so un-faulted worlds pay nothing.
func (s *Store) Check(now uint64, off uint64, n int, write bool) (delay uint64, err error) {
	if s.faults == nil {
		return 0, nil
	}
	return s.faults.check(now, off, n, write)
}

// CheckRead is Check for reads.
func (s *Store) CheckRead(now uint64, off uint64, n int) (uint64, error) {
	return s.Check(now, off, n, false)
}

// CheckWrite is Check for writes.
func (s *Store) CheckWrite(now uint64, off uint64, n int) (uint64, error) {
	return s.Check(now, off, n, true)
}

func overlaps(off, end, rOff, rEnd uint64) bool {
	return off < rEnd && rOff < end
}

func (fs *faultState) check(now uint64, off uint64, n int, write bool) (uint64, error) {
	end := off + uint64(n)
	var delay uint64
	var err error
	// Permanent ranges fail every later overlapping operation.
	bad := fs.badRead
	if write {
		bad = fs.badWrite
	}
	for _, r := range bad {
		if overlaps(off, end, r.off, r.end) {
			err = &IOError{Kind: r.kind, Dev: fs.dev, Off: off, Len: n}
			fs.record(now, r.kind, 0)
			break
		}
	}
	for _, rs := range fs.rules {
		if write && !rs.Kind.writes() || !write && !rs.Kind.reads() {
			continue
		}
		rEnd := rs.Off + rs.Len
		if rs.Len == 0 {
			rEnd = ^uint64(0)
		}
		if !overlaps(off, end, rs.Off, rEnd) {
			continue
		}
		rs.matches++
		if !rs.fire(fs.rng) {
			continue
		}
		rs.fires++
		switch rs.Kind {
		case FaultLatencySpike:
			d := rs.Delay
			if d == 0 {
				d = DefaultSpikeDelay
			}
			delay += d
			fs.record(now, rs.Kind, d)
			continue
		case FaultPermanentRead, FaultPoison:
			fs.badRead = append(fs.badRead, badRange{off: rs.Off, end: rEnd, kind: rs.Kind})
		case FaultPermanentWrite:
			fs.badWrite = append(fs.badWrite, badRange{off: rs.Off, end: rEnd, kind: rs.Kind})
		}
		if err == nil {
			err = &IOError{Kind: rs.Kind, Dev: fs.dev, Off: off, Len: n}
		}
		fs.record(now, rs.Kind, 0)
	}
	return delay, err
}

// fire decides whether the current (already counted) match fires.
func (rs *ruleState) fire(rng *rand.Rand) bool {
	if rs.Limit > 0 && rs.fires >= rs.Limit {
		return false
	}
	if rs.Prob > 0 {
		return rng.Float64() < rs.Prob
	}
	after := rs.After
	if after == 0 {
		after = 1
	}
	if rs.matches < after {
		return false
	}
	if rs.Every == 0 {
		return rs.matches == after
	}
	return (rs.matches-after)%rs.Every == 0
}

// record counts the injection and emits the dev.fault span/counter.
func (fs *faultState) record(now uint64, kind FaultKind, delay uint64) {
	fs.injected++
	fs.obs.fault(now, kind.String(), delay)
}

// InjectFaults attaches a fault plan to the NVMe device (nil detaches).
// name labels the device in errors and obs series.
func (d *NVMe) InjectFaults(name string, plan *FaultPlan) {
	d.Store.attachFaults(name, plan, d.obs)
}

// InjectFaults attaches a fault plan to the pmem device (nil detaches).
func (d *PMem) InjectFaults(name string, plan *FaultPlan) {
	d.Store.attachFaults(name, plan, d.obs)
}
