package device

// PMemConfig parameterizes the byte-addressable pmem device. The paper's
// pmem block device is backed by DRAM (§5), so the media itself adds almost
// nothing; virtually all access cost is the memcpy performed by the software
// path above (kernel non-SIMD vs Aquila's AVX2 streaming copy).
type PMemConfig struct {
	// MediaLatency is a fixed per-access media latency in cycles
	// (0 for DRAM-backed pmem; ~720 for Optane DC PMM class NVM).
	MediaLatency uint64
	// CyclesPerByte is media bandwidth (0 for DRAM-backed).
	CyclesPerByte float64
}

// DefaultPMemConfig returns the DRAM-backed pmem of the paper's testbed.
func DefaultPMemConfig() PMemConfig { return PMemConfig{} }

// OptanePMMConfig returns an Optane DC Persistent Memory-class device
// (~300 ns read latency, ~3x worse than DRAM; §7.1 / Izraelevitz et al.),
// provided for the heap-extension extension experiments.
func OptanePMMConfig() PMemConfig {
	return PMemConfig{MediaLatency: 720, CyclesPerByte: 0.6}
}

// PMem is a byte-addressable device: accesses are synchronous loads/stores
// or memcpys; there is no queueing, only media cost.
type PMem struct {
	*Store
	cfg PMemConfig
	obs *devObs
}

// NewPMem creates a pmem device with the given capacity and timing config.
func NewPMem(capacity uint64, cfg PMemConfig) *PMem {
	return &PMem{Store: NewStore(capacity), cfg: cfg}
}

// Submit implements Timing: pmem access is synchronous, so the completion
// time is just now + media cost. Software memcpy cost is charged by callers.
func (d *PMem) Submit(now uint64, bytes int, write bool) uint64 {
	d.settle(now)
	completion := now + d.AccessCycles(bytes)
	d.obs.record(now, now, completion, write)
	return completion
}

// AccessCycles returns the media-side cost of moving n bytes.
func (d *PMem) AccessCycles(n int) uint64 {
	return d.cfg.MediaLatency + uint64(float64(n)*d.cfg.CyclesPerByte)
}

// Config returns the timing configuration.
func (d *PMem) Config() PMemConfig { return d.cfg }
