package engine

import "testing"

// The schedule-perturbation contract: SchedPerturb 0 is the canonical
// spawn-order tie-break (bit-identical to the pre-perturbation engine), any
// non-zero value is a fully deterministic alternative ordering, and the heap
// and Proc.Sync agree on it (schedBefore is the single source of truth).

// tieTrace runs nprocs single-op processes all runnable at cycle 0 and
// returns the order their bodies executed in.
func tieTrace(t *testing.T, perturb uint64, nprocs int) []int {
	t.Helper()
	e := New(Config{NumCPUs: nprocs, SchedPerturb: perturb})
	var order []int
	for i := 0; i < nprocs; i++ {
		i := i
		e.Spawn(i, "tie", func(p *Proc) {
			order = append(order, i)
			p.AdvanceUser(10)
		})
	}
	e.Run()
	if len(order) != nprocs {
		t.Fatalf("ran %d procs, want %d", len(order), nprocs)
	}
	return order
}

func TestSchedPerturbZeroIsSpawnOrder(t *testing.T) {
	order := tieTrace(t, 0, 16)
	for i, id := range order {
		if id != i {
			t.Fatalf("canonical schedule ran proc %d at position %d; want spawn order %v", id, i, order)
		}
	}
}

func TestSchedPerturbDeterministic(t *testing.T) {
	a := tieTrace(t, 12345, 16)
	b := tieTrace(t, 12345, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same perturbation seed, different schedules:\n%v\n%v", a, b)
		}
	}
}

func TestSchedPerturbChangesTieBreaks(t *testing.T) {
	base := tieTrace(t, 0, 16)
	// At least one of a handful of seeds must reorder a 16-way tie; all of
	// them agreeing with spawn order would mean the knob is dead.
	for _, seed := range []uint64{1, 7, 99, 1 << 40} {
		got := tieTrace(t, seed, 16)
		for i := range got {
			if got[i] != base[i] {
				return
			}
		}
	}
	t.Fatalf("no perturbation seed changed the tie-break order %v", base)
}

// TestSchedBeforeHeapSyncAgree pins the property Sync depends on: the heap's
// pop order is exactly schedBefore-sorted, under both canonical and
// perturbed keys.
func TestSchedBeforeHeapSyncAgree(t *testing.T) {
	for _, perturb := range []uint64{0, 0xDEADBEEF} {
		e := New(Config{NumCPUs: 4, SchedPerturb: perturb})
		var h procHeap
		var procs []*Proc
		for i := 0; i < 32; i++ {
			p := &Proc{id: i, now: uint64(i % 3)}
			p.skey = e.schedKey(i)
			procs = append(procs, p)
			h.Push(p)
		}
		var prev *Proc
		for {
			p := h.Pop()
			if p == nil {
				break
			}
			if prev != nil && schedBefore(p, prev) {
				t.Fatalf("perturb=%d: heap popped %v before %v against schedBefore", perturb, prev, p)
			}
			prev = p
		}
		_ = procs
	}
}
