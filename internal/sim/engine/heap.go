package engine

// procHeap is a binary min-heap of runnable processes ordered by
// (wake time, schedule key, proc id). The default schedule key is the proc
// id itself, so ties among equal-cycle processes break in spawn order; a
// non-zero Config.SchedPerturb replaces the key with a per-proc hash so the
// torture harness can explore alternative — but still fully deterministic —
// interleavings of the same workload (see schedBefore).
type procHeap struct {
	items []*Proc
}

func (h *procHeap) Len() int { return len(h.items) }

// schedBefore is THE scheduling order of the engine: every place that
// decides "who runs first among equal-cycle processes" (the run-queue heap
// and Proc.Sync's causality check) must agree with it, or perturbed runs
// would observe shared state in an order the run queue never produces.
func schedBefore(a, b *Proc) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	if a.skey != b.skey {
		return a.skey < b.skey
	}
	return a.id < b.id
}

func (h *procHeap) less(a, b *Proc) bool { return schedBefore(a, b) }

func (h *procHeap) Push(p *Proc) {
	h.items = append(h.items, p)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the process with the smallest wake time.
func (h *procHeap) Pop() *Proc {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the process with the smallest wake time without removing it.
func (h *procHeap) Peek() *Proc {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *procHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *procHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
