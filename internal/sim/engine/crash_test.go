package engine

import "testing"

// TestCrashAtCycleUnwindsAllProcs pins the engine-side crash contract: when
// the cycle trigger fires, every simulated thread unwinds without running the
// rest of its body (no user-space cleanup), process clocks clamp to the crash
// cycle, and no goroutine outlives Run.
func TestCrashAtCycleUnwindsAllProcs(t *testing.T) {
	e := New(Config{NumCPUs: 4, Seed: 1})
	e.ArmCrash(CrashConfig{AtCycle: 1000})
	cleanup := 0
	for i := 0; i < 4; i++ {
		e.Spawn(i, "w", func(p *Proc) {
			for j := 0; j < 100; j++ {
				p.AdvanceUser(50)
			}
			cleanup++ // must never run: the machine dies at cycle 1000
		})
	}
	e.Run()
	info := e.Crashed()
	if info == nil || info.Reason != "cycle" {
		t.Fatalf("Crashed() = %+v, want cycle crash", info)
	}
	if info.Cycle != 1000 || e.Now() != 1000 {
		t.Fatalf("crash cycle %d, engine now %d, want 1000", info.Cycle, e.Now())
	}
	if cleanup != 0 {
		t.Errorf("%d proc bodies ran past the crash point", cleanup)
	}
	for _, p := range e.Procs() {
		if p.Now() > 1000 {
			t.Errorf("proc %s clock %d not clamped to the crash cycle", p.Name(), p.Now())
		}
	}
}

// TestCrashAtSpanCountsMachineWide pins that the span trigger counts
// occurrences across all processes and fires on entry to the Nth one.
func TestCrashAtSpanCountsMachineWide(t *testing.T) {
	e := New(Config{NumCPUs: 2, Seed: 1})
	e.ArmCrash(CrashConfig{AtSpan: "work", SpanHit: 3})
	entered := 0
	for i := 0; i < 2; i++ {
		e.Spawn(i, "w", func(p *Proc) {
			for j := 0; j < 4; j++ {
				p.BeginSpan("work")
				entered++
				p.AdvanceUser(100)
				p.EndSpan()
			}
		})
	}
	e.Run()
	info := e.Crashed()
	if info == nil || info.Reason != "span:work" {
		t.Fatalf("Crashed() = %+v, want span:work", info)
	}
	// The third BeginSpan dies on entry: exactly two bodies ran.
	if entered != 2 {
		t.Errorf("entered %d span bodies, want 2", entered)
	}
}

// TestCrashNowFromHook pins the external-trigger path (the device store's
// ArmCrashAtOp calls CrashNow from inside simulated code).
func TestCrashNowFromHook(t *testing.T) {
	e := New(Config{NumCPUs: 1, Seed: 1})
	e.Spawn(0, "w", func(p *Proc) {
		p.AdvanceSystem(700)
		e.CrashNow("device-op")
		t.Error("CrashNow returned")
	})
	e.Run()
	info := e.Crashed()
	if info == nil || info.Reason != "device-op" || info.Cycle != 700 {
		t.Fatalf("Crashed() = %+v, want device-op at 700", info)
	}
}

// TestDisarmedCrashIsInert pins that ArmCrash with a zero config disarms a
// previously armed trigger completely.
func TestDisarmedCrashIsInert(t *testing.T) {
	e := New(Config{NumCPUs: 1, Seed: 1})
	e.ArmCrash(CrashConfig{AtCycle: 100, AtSpan: "work", SpanHit: 1})
	e.ArmCrash(CrashConfig{})
	done := false
	e.Spawn(0, "w", func(p *Proc) {
		p.BeginSpan("work")
		p.AdvanceUser(500)
		p.EndSpan()
		done = true
	})
	e.Run()
	if e.Crashed() != nil {
		t.Fatalf("disarmed trigger fired: %+v", e.Crashed())
	}
	if !done {
		t.Error("workload did not complete")
	}
}
