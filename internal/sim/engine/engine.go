// Package engine implements the deterministic discrete-event simulation core
// that every other subsystem of this repository runs on.
//
// A simulation consists of processes (simulated threads) pinned to simulated
// CPUs. Exactly one process executes at any real instant; the scheduler always
// resumes the runnable process with the smallest local cycle clock, so causal
// order between processes interacting through simulated synchronization
// primitives is preserved and the whole run is deterministic for a given
// spawn order.
//
// Processes advance their clocks explicitly via Advance* calls, attributing
// cycles to an accounting kind (user, system, I/O-wait, lock-wait). Blocking
// operations (simulated mutexes, waiting on device completions) suspend the
// process and later resume it at the simulated time at which the awaited
// condition holds.
package engine

import (
	"fmt"
	"math/rand"

	"aquila/internal/obs"
)

// Kind attributes simulated cycles to an execution category. The categories
// feed the execution-time breakdowns of the paper's Figure 6(c).
type Kind uint8

const (
	// KindUser is application-level processing time.
	KindUser Kind = iota
	// KindSystem is time spent in fault handlers, kernel paths, cache
	// management and other privileged-domain work.
	KindSystem
	// KindIOWait is time spent blocked on device I/O completions.
	KindIOWait
	// KindLockWait is time spent queued on contended simulated locks.
	KindLockWait
	numKinds
)

// String returns the conventional name of the accounting category.
func (k Kind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindSystem:
		return "system"
	case KindIOWait:
		return "iowait"
	case KindLockWait:
		return "lockwait"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Config parameterizes a simulation engine.
type Config struct {
	// NumCPUs is the number of simulated CPUs (hyperthreads). The paper's
	// testbed has 32. Zero defaults to 32.
	NumCPUs int
	// NumNUMANodes is the number of NUMA nodes CPUs are split across.
	// Zero defaults to 2 (the paper's dual-socket testbed).
	NumNUMANodes int
	// Seed seeds the engine-private RNG handed to processes that ask for
	// one, making runs reproducible.
	Seed int64
	// Trace captures per-process execution segments for WriteChromeTrace.
	Trace bool
	// Spans, when non-nil, receives named cycle-attributed spans and
	// scheduler segments (see obs.go). Instrumentation is free when nil and
	// never alters simulated timing either way.
	Spans *obs.Tracer
	// Profile, when non-nil, receives every span closed via EndSpan with
	// its full open-span path — the lossless feed the hierarchical cycle
	// profiler aggregates (the tracer's rings drop oldest spans on long
	// runs; this hook never does). Independent of Spans: either, both, or
	// neither may be set; neither alters simulated timing.
	Profile obs.SpanSink
	// TraceLabel prefixes the engine's track-group names in a shared span
	// tracer (e.g. "aquila", "linux"). Empty defaults to "sim".
	TraceLabel string
	// SchedPerturb perturbs the scheduler's tie-breaking among processes
	// runnable at the same simulated cycle: each process gets a per-seed
	// hashed schedule key instead of its spawn id. Every value yields a
	// fully deterministic run; 0 (the default) is the canonical spawn-order
	// tie-break, bit-identical to the engine before this knob existed. The
	// torture harness sweeps this seed to explore interleavings.
	SchedPerturb uint64
}

// CPU is the per-CPU simulated state tracked by the engine.
type CPU struct {
	ID   int
	Node int // NUMA node

	// busyUntil is the simulated cycle at which the CPU becomes free.
	// With one process per CPU it trails that process's clock; with
	// oversubscription it serializes compute segments.
	busyUntil uint64
	// pendingIRQ accumulates cycles of interrupt work (e.g. TLB
	// invalidations delivered by IPI) that the next compute segment on
	// this CPU must absorb.
	pendingIRQ uint64
	// irqCount counts interrupts delivered to this CPU.
	irqCount uint64
}

// Engine is a discrete-event simulation instance.
type Engine struct {
	cfg     Config
	cpus    []*CPU
	procs   []*Proc
	runq    procHeap
	current *Proc
	rng     *rand.Rand

	blocked int // processes suspended on a primitive
	// blockedDaemons counts suspended daemon processes. Daemons parked on
	// their wakeup primitive are idle services, not deadlocks: Run returns
	// when only daemons remain blocked.
	blockedDaemons int
	finished       int

	// schedule channel carries the baton back from a yielding process.
	baton chan batonMsg

	tr *tracer

	// spans is the obs tracer from Config.Spans; pidCPU/pidProc are the
	// track groups registered for scheduler segments and process spans.
	spans   *obs.Tracer
	pidCPU  int
	pidProc int
	// prof is the lossless span sink from Config.Profile.
	prof obs.SpanSink

	// crash holds the armed crash triggers and, once fired, the crash record
	// (crash.go).
	crash crashState
}

type batonKind uint8

const (
	batonYield batonKind = iota // proc re-enqueued, run someone
	batonBlock                  // proc suspended, run someone
	batonDone                   // proc finished
	batonCrash                  // proc unwound by a crash sentinel
)

type batonMsg struct {
	kind batonKind
	p    *Proc
}

// New creates a simulation engine.
func New(cfg Config) *Engine {
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 32
	}
	if cfg.NumNUMANodes <= 0 {
		cfg.NumNUMANodes = 2
	}
	if cfg.NumNUMANodes > cfg.NumCPUs {
		cfg.NumNUMANodes = cfg.NumCPUs
	}
	e := &Engine{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		baton: make(chan batonMsg),
	}
	if cfg.Trace {
		e.tr = &tracer{}
	}
	e.spans = cfg.Spans
	e.prof = cfg.Profile
	perNode := cfg.NumCPUs / cfg.NumNUMANodes
	if perNode == 0 {
		perNode = 1
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		node := i / perNode
		if node >= cfg.NumNUMANodes {
			node = cfg.NumNUMANodes - 1
		}
		e.cpus = append(e.cpus, &CPU{ID: i, Node: node})
	}
	e.registerObs()
	return e
}

// schedKey derives a proc's schedule tie-break key. With SchedPerturb 0 the
// key is the spawn id itself — the canonical order, bit-identical to the
// engine before the knob existed. A non-zero seed mixes seed and id through
// a splitmix64 finalizer, permuting the tie-break order among equal-cycle
// procs deterministically per seed. Collisions fall back to id order in
// schedBefore, so every seed still yields a total order.
func (e *Engine) schedKey(id int) uint64 {
	if e.cfg.SchedPerturb == 0 {
		return uint64(id)
	}
	z := e.cfg.SchedPerturb + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SchedPerturb returns the schedule-perturbation seed the engine runs under
// (0 = canonical spawn-order tie-breaking).
func (e *Engine) SchedPerturb() uint64 { return e.cfg.SchedPerturb }

// NumCPUs returns the number of simulated CPUs.
func (e *Engine) NumCPUs() int { return len(e.cpus) }

// NumNUMANodes returns the number of simulated NUMA nodes.
func (e *Engine) NumNUMANodes() int { return e.cfg.NumNUMANodes }

// CPU returns the simulated CPU with the given id.
func (e *Engine) CPU(id int) *CPU { return e.cpus[id] }

// NodeOf returns the NUMA node of the given CPU.
func (e *Engine) NodeOf(cpu int) int { return e.cpus[cpu].Node }

// Rand returns the engine's deterministic RNG. Only use from inside the
// simulation (processes), never concurrently with Run from outside.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Spawn creates a new simulated process pinned to the given CPU. fn runs as
// the process body; the process starts at simulated time `start`.
// Spawn may be called before Run or from inside a running process.
func (e *Engine) Spawn(cpu int, name string, fn func(*Proc)) *Proc {
	return e.SpawnAt(cpu, name, 0, fn)
}

// SpawnAt is Spawn with an explicit start time. When called from a running
// process the child starts no earlier than the parent's current time.
func (e *Engine) SpawnAt(cpu int, name string, start uint64, fn func(*Proc)) *Proc {
	if cpu < 0 || cpu >= len(e.cpus) {
		panic(fmt.Sprintf("engine: spawn %q on invalid cpu %d", name, cpu))
	}
	if e.current != nil && start < e.current.now {
		start = e.current.now
	}
	p := &Proc{
		e:      e,
		id:     len(e.procs),
		name:   name,
		cpu:    cpu,
		now:    start,
		fn:     fn,
		resume: make(chan struct{}),
	}
	p.skey = e.schedKey(p.id)
	e.procs = append(e.procs, p)
	e.runq.Push(p)
	if e.spans != nil {
		e.spans.SetThreadName(e.pidProc, p.id, name)
	}
	return p
}

// SpawnDaemon creates a background service process (e.g. a per-node page
// evictor): it is expected to park on a wakeup primitive between work bursts
// and never finish. A blocked daemon does not hold Run open and does not
// trigger the deadlock panic.
func (e *Engine) SpawnDaemon(cpu int, name string, fn func(*Proc)) *Proc {
	p := e.SpawnAt(cpu, name, 0, fn)
	p.daemon = true
	return p
}

// Run executes the simulation until every non-daemon process has finished.
// It panics on deadlock (blocked non-daemon processes with an empty run
// queue), which always indicates a bug in a simulated synchronization
// protocol. Daemon processes (SpawnDaemon) parked on a wakeup primitive do
// not count as deadlocked: they stay suspended across Run calls and resume
// when some later process signals them.
func (e *Engine) Run() {
	if e.crash.info != nil {
		return // the machine is dead; nothing ever runs again
	}
	for {
		next := e.runq.Pop()
		if next == nil {
			if e.blocked > e.blockedDaemons {
				panic(fmt.Sprintf("engine: deadlock, %d blocked process(es): %s",
					e.blocked, e.blockedNames()))
			}
			return
		}
		e.current = next
		segStart := next.now
		if !next.started {
			next.started = true
			go next.run()
		} else {
			next.resume <- struct{}{}
		}
		msg := <-e.baton
		e.current = nil
		e.traceSegment(msg.p, segStart, msg.kind)
		switch msg.kind {
		case batonYield:
			e.runq.Push(msg.p)
		case batonBlock:
			e.blocked++
			if msg.p.daemon {
				e.blockedDaemons++
			}
		case batonDone:
			e.finished++
		case batonCrash:
			e.finished++
			e.drainCrash()
			return
		}
	}
}

func (e *Engine) blockedNames() string {
	s := ""
	for _, p := range e.procs {
		if p.blockedOn != "" {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%s(on %s)", p.name, p.blockedOn)
		}
	}
	return s
}

// unblock reinserts a suspended process into the run queue with its clock
// advanced to at least `at`. The gap between the process's old clock and the
// wake time is attributed to `waitKind`.
func (e *Engine) unblock(p *Proc, at uint64, waitKind Kind) {
	if p.blockedOn == "" {
		panic(fmt.Sprintf("engine: unblock of non-blocked process %s", p.name))
	}
	p.blockedOn = ""
	if at > p.now {
		p.acct[waitKind] += at - p.now
		p.now = at
	}
	e.blocked--
	if p.daemon {
		e.blockedDaemons--
	}
	e.runq.Push(p)
}

// Now returns the maximum simulated time reached by any process so far.
// Useful after Run for end-to-end makespan.
func (e *Engine) Now() uint64 {
	var m uint64
	for _, p := range e.procs {
		if p.now > m {
			m = p.now
		}
	}
	return m
}

// Procs returns all processes ever spawned (finished ones included).
func (e *Engine) Procs() []*Proc { return e.procs }

// PostIRQ delivers `cycles` of interrupt-handler work to a CPU. The work is
// absorbed by the next compute segment executed on that CPU. Delivery is free
// for the sender; senders model their own send-side cost separately.
func (e *Engine) PostIRQ(cpu int, cycles uint64) {
	c := e.cpus[cpu]
	c.pendingIRQ += cycles
	c.irqCount++
}

// IRQCount returns the number of interrupts delivered to a CPU.
func (e *Engine) IRQCount(cpu int) uint64 { return e.cpus[cpu].irqCount }

// TotalAccounted sums per-kind cycle accounting across all processes.
func (e *Engine) TotalAccounted() (out [4]uint64) {
	for _, p := range e.procs {
		for k := 0; k < int(numKinds); k++ {
			out[k] += p.acct[k]
		}
	}
	return out
}
