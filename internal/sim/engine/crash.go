package engine

// Crash-point injection: a crash kills the whole simulated machine at a
// precise point — a cycle, a device-op index (armed on the device store,
// which calls CrashNow), or entry to a named span occurrence. Simulated
// threads unwind via a private panic sentinel without running any user-space
// cleanup: no deferred msync, no flush, no lock release. The engine then
// drains every live process goroutine (each re-panics at its next resume
// point) so no goroutine outlives the run, and Run returns with Crashed()
// non-nil. Process clocks are clamped to the crash cycle so Now() reports
// the instant the machine died.

// CrashConfig arms the engine-side crash triggers. Zero values disarm.
type CrashConfig struct {
	// AtCycle kills the run when any process clock reaches this cycle.
	AtCycle uint64
	// AtSpan kills the run on entry to the SpanHit'th occurrence of this
	// named span (BeginSpan), counted machine-wide across all processes.
	AtSpan string
	// SpanHit is the 1-based occurrence of AtSpan that fires (0 = first).
	SpanHit uint64
}

// CrashInfo describes a crash that has happened.
type CrashInfo struct {
	// Cycle is the simulated cycle the machine died.
	Cycle uint64
	// Reason names the trigger: "cycle", "device-op", or "span:<name>".
	Reason string
}

// crashPanic is the unwind sentinel. Only the engine creates and recovers
// it; any other panic value propagates unchanged.
type crashPanic struct{ reason string }

type crashState struct {
	atCycle  uint64
	atSpan   string
	spanHit  uint64
	spanSeen uint64
	info     *CrashInfo
}

// ArmCrash installs engine-side crash triggers. Call before Run.
func (e *Engine) ArmCrash(c CrashConfig) {
	e.crash.atCycle = c.AtCycle
	e.crash.atSpan = c.AtSpan
	e.crash.spanHit = c.SpanHit
	if e.crash.spanHit == 0 {
		e.crash.spanHit = 1
	}
	if e.crash.atSpan == "" {
		e.crash.spanHit = 0
	}
}

// Crashed returns the crash that ended the run, or nil.
func (e *Engine) Crashed() *CrashInfo { return e.crash.info }

// CrashNow kills the machine from inside simulated code at the calling
// process's current cycle — the hook external triggers (the device store's
// ArmCrashAtOp) fire. It panics with the crash sentinel and never returns.
func (e *Engine) CrashNow(reason string) {
	panic(&crashPanic{reason: reason})
}

// noteCrash records the first crash sentinel that unwinds a process body.
func (e *Engine) noteCrash(p *Proc, cp *crashPanic) {
	if e.crash.info == nil {
		cycle := p.now
		if c := e.crash.atCycle; c != 0 && cycle > c {
			cycle = c
		}
		e.crash.info = &CrashInfo{Cycle: cycle, Reason: cp.reason}
	}
}

// checkCrash panics with the crash sentinel when a trigger has fired. Called
// at every scheduling point (resume from Yield/block, end of advance), so a
// process can execute at most one compute segment past the crash instant —
// and its clock is clamped back to the crash cycle before unwinding, keeping
// Engine.Now() == the crash cycle.
func (p *Proc) checkCrash() {
	cs := &p.e.crash
	if cs.info == nil && cs.atCycle == 0 {
		return
	}
	if cs.info != nil {
		if p.now > cs.info.Cycle {
			p.now = cs.info.Cycle
		}
		panic(&crashPanic{reason: cs.info.Reason})
	}
	if p.now >= cs.atCycle {
		if p.now > cs.atCycle {
			p.now = cs.atCycle
		}
		panic(&crashPanic{reason: "cycle"})
	}
}

// checkSpanCrash implements the AtSpan trigger; called from BeginSpan before
// its tracer early-return so the trigger works without instrumentation.
func (p *Proc) checkSpanCrash(name string) {
	cs := &p.e.crash
	if cs.spanHit == 0 || name != cs.atSpan {
		return
	}
	cs.spanSeen++
	if cs.spanSeen == cs.spanHit {
		panic(&crashPanic{reason: "span:" + name})
	}
}

// drainCrash unwinds every live process after the first crash baton: each
// started, unfinished process is resumed and re-panics at its next resume
// point (checkCrash sees crash.info). Processes that never started have no
// goroutine and need nothing. Afterwards the run queue and block accounting
// are cleared; Run returns immediately on a crashed engine.
func (e *Engine) drainCrash() {
	for _, p := range e.procs {
		for p.started && !p.done {
			e.current = p
			p.resume <- struct{}{}
			<-e.baton
			e.current = nil
		}
	}
	e.runq = procHeap{}
	e.blocked, e.blockedDaemons = 0, 0
}
