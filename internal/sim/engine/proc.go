package engine

import "fmt"

// Proc is a simulated thread. Its methods must only be called from its own
// body function while the process is running; the engine guarantees that at
// most one process executes at a time, so simulated code may freely share Go
// data structures and model contention exclusively through simulated locks.
type Proc struct {
	e    *Engine
	id   int
	name string
	cpu  int
	now  uint64
	// skey is the schedule tie-break key among equal-cycle runnable procs:
	// the spawn id by default, a per-seed hash under Config.SchedPerturb
	// (see schedBefore in heap.go). Fixed at spawn time.
	skey uint64

	fn      func(*Proc)
	resume  chan struct{}
	started bool
	done    bool
	// daemon marks background service processes (SpawnDaemon): blocked
	// daemons neither hold Run open nor count as deadlocked.
	daemon bool

	// blockedOn names the primitive the process is suspended on ("" when
	// runnable). Used for deadlock diagnostics.
	blockedOn string

	acct [numKinds]uint64

	// irqAbsorbed counts interrupt-handler cycles this process absorbed.
	irqAbsorbed uint64

	// spanStack holds the open BeginSpan frames (nil unless tracing or
	// profiling); track caches the profiler track id.
	spanStack []spanFrame
	track     string
}

// ID returns the process id (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// CPU returns the simulated CPU this process is pinned to.
func (p *Proc) CPU() int { return p.cpu }

// Node returns the NUMA node of the process's CPU.
func (p *Proc) Node() int { return p.e.NodeOf(p.cpu) }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Daemon reports whether this is a background service process.
func (p *Proc) Daemon() bool { return p.daemon }

// Now returns the process's local simulated clock in cycles.
func (p *Proc) Now() uint64 { return p.now }

// Accounted returns cycles attributed to the given kind so far.
func (p *Proc) Accounted(k Kind) uint64 { return p.acct[k] }

// IRQAbsorbed returns interrupt-handler cycles absorbed by this process.
func (p *Proc) IRQAbsorbed() uint64 { return p.irqAbsorbed }

func (p *Proc) run() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		cp, ok := r.(*crashPanic)
		if !ok {
			panic(r) // not a crash: propagate (simulated bugs must stay loud)
		}
		// The machine died under this process: no user-space cleanup runs.
		p.done = true
		p.e.noteCrash(p, cp)
		p.e.baton <- batonMsg{kind: batonCrash, p: p}
	}()
	p.fn(p)
	p.done = true
	p.e.baton <- batonMsg{kind: batonDone, p: p}
}

// advance moves the local clock forward by `cycles`, attributing them to
// kind k, absorbing any pending interrupt work queued on this CPU and
// serializing against other compute on the same CPU.
func (p *Proc) advance(k Kind, cycles uint64) {
	cpu := p.e.cpus[p.cpu]
	if cpu.busyUntil > p.now {
		// Another process occupied the CPU past our clock: we were
		// effectively descheduled.
		p.acct[KindLockWait] += cpu.busyUntil - p.now
		p.now = cpu.busyUntil
	}
	if cpu.pendingIRQ > 0 {
		// Interrupts preempt the segment; their cost lands on this
		// process as system time.
		irq := cpu.pendingIRQ
		cpu.pendingIRQ = 0
		p.acct[KindSystem] += irq
		p.irqAbsorbed += irq
		p.now += irq
	}
	p.acct[k] += cycles
	p.now += cycles
	cpu.busyUntil = p.now
	// Conservative causality: if advancing moved us past another runnable
	// process, let it run before we next observe shared state.
	p.Sync()
	p.checkCrash()
}

// AdvanceUser charges application-processing cycles.
func (p *Proc) AdvanceUser(cycles uint64) { p.advance(KindUser, cycles) }

// AdvanceSystem charges privileged/handler/kernel cycles.
func (p *Proc) AdvanceSystem(cycles uint64) { p.advance(KindSystem, cycles) }

// Advance charges cycles of the given kind.
func (p *Proc) Advance(k Kind, cycles uint64) { p.advance(k, cycles) }

// Yield re-enters the scheduler, letting any process with an earlier clock
// run first. It does not consume simulated time.
func (p *Proc) Yield() {
	p.e.baton <- batonMsg{kind: batonYield, p: p}
	<-p.resume
	p.checkCrash()
}

// Sync yields only if some other runnable process is scheduled before this
// one (earlier clock, or an equal clock with a winning tie-break key).
// Simulated code calls this before touching shared structures that are not
// guarded by a simulated lock, to keep cross-process causality. The ordering
// must be exactly the run queue's (schedBefore), or a perturbed schedule
// would let a process observe state ahead of a proc the queue runs first.
func (p *Proc) Sync() {
	if head := p.e.runq.Peek(); head != nil && schedBefore(head, p) {
		p.Yield()
	}
}

// WaitUntil blocks the process until the given absolute simulated time,
// attributing the gap to kind k. If t is in the past it is a no-op.
func (p *Proc) WaitUntil(t uint64, k Kind) {
	if t <= p.now {
		p.Sync()
		return
	}
	p.acct[k] += t - p.now
	p.now = t
	p.Yield()
}

// SleepIO blocks for `cycles`, attributing them to I/O wait.
func (p *Proc) SleepIO(cycles uint64) { p.WaitUntil(p.now+cycles, KindIOWait) }

// block suspends the process until another process calls engine.unblock.
func (p *Proc) block(on string) {
	if on == "" {
		on = "unknown"
	}
	p.blockedOn = on
	p.e.baton <- batonMsg{kind: batonBlock, p: p}
	<-p.resume
	p.checkCrash()
}

// String implements fmt.Stringer for diagnostics.
func (p *Proc) String() string {
	return fmt.Sprintf("proc %d %q cpu=%d now=%d", p.id, p.name, p.cpu, p.now)
}
