package engine

import "testing"

func TestDaemonDoesNotHoldRunOpen(t *testing.T) {
	e := New(Config{NumCPUs: 2})
	sig := NewSignal(e, "work")
	var served int
	d := e.SpawnDaemon(1, "daemon", func(p *Proc) {
		for {
			sig.Wait(p)
			p.AdvanceSystem(100)
			served++
		}
	})
	if !d.Daemon() {
		t.Fatal("SpawnDaemon did not mark the proc")
	}
	e.Spawn(0, "w", func(p *Proc) { p.AdvanceUser(50) })
	// Run must return with the daemon still parked, not panic on deadlock.
	e.Run()
	if served != 0 {
		t.Fatalf("daemon served %d before any signal", served)
	}
	// The daemon persists across Run calls: wake it, run again.
	e.Spawn(0, "w2", func(p *Proc) {
		p.AdvanceUser(10)
		sig.Set(p.Now())
	})
	e.Run()
	if served != 1 {
		t.Fatalf("served = %d after signal, want 1", served)
	}
	// And again: the signal re-arms.
	e.Spawn(0, "w3", func(p *Proc) { sig.Set(p.Now()) })
	e.Run()
	if served != 2 {
		t.Fatalf("served = %d after second signal, want 2", served)
	}
}

func TestRunStillPanicsOnRealDeadlock(t *testing.T) {
	e := New(Config{NumCPUs: 2})
	sig := NewSignal(e, "never")
	e.Spawn(0, "stuck", func(p *Proc) { sig.Wait(p) }) // not a daemon
	defer func() {
		if recover() == nil {
			t.Fatal("Run returned with a non-daemon proc blocked forever")
		}
	}()
	e.Run()
}

func TestSignalLatchesAndCoalesces(t *testing.T) {
	e := New(Config{NumCPUs: 1})
	sig := NewSignal(e, "s")
	e.Spawn(0, "p", func(p *Proc) {
		// Set before Wait: latched, not lost.
		sig.Set(500)
		if !sig.Pending() {
			t.Error("set not latched")
		}
		// Coalesce keeps the earliest time.
		sig.Set(900)
		sig.Set(300)
		sig.Wait(p)
		if p.Now() != 300 {
			t.Errorf("woke at %d, want earliest coalesced set 300", p.Now())
		}
		if sig.Pending() {
			t.Error("wait did not consume the latch")
		}
		// A stale (past) set does not move the clock backward.
		p.AdvanceUser(1000)
		sig.Set(100)
		sig.Wait(p)
		if p.Now() != 1300 {
			t.Errorf("now = %d after past-time set, want 1300", p.Now())
		}
	})
	e.Run()
}

func TestSignalWakesParkedWaiter(t *testing.T) {
	e := New(Config{NumCPUs: 2})
	sig := NewSignal(e, "s")
	var wokeAt uint64
	e.SpawnDaemon(1, "sleeper", func(p *Proc) {
		for {
			sig.Wait(p)
			wokeAt = p.Now()
		}
	})
	e.Spawn(0, "waker", func(p *Proc) {
		p.AdvanceUser(4321)
		sig.Set(p.Now())
	})
	e.Run()
	if wokeAt != 4321 {
		t.Fatalf("sleeper woke at %d, want 4321", wokeAt)
	}
}
