package engine

import (
	"fmt"

	"aquila/internal/obs"
)

// Span tracing (internal/obs) complements the legacy segment tracer: where
// Trace/WriteChromeTrace capture raw scheduler segments, the obs tracer
// carries named, cycle-attributed spans opened and closed by simulated code
// (fault handlers, eviction, device I/O). The engine contributes two track
// groups to a shared tracer:
//
//   - "<label>/cpus":  one track per simulated CPU, holding scheduler
//     segments ("sched" category) showing which process occupied the CPU.
//   - "<label>/procs": one track per process, holding the nested spans the
//     process itself opened via BeginSpan/EndSpan ("span" category). Spans
//     live on per-process tracks because processes sharing a CPU overlap in
//     simulated time, which the trace-event format cannot nest on one track.
//
// Everything is nil-safe: with Config.Spans unset the per-call cost is one
// pointer comparison and no allocation.

type spanFrame struct {
	name  string
	begin uint64
}

// registerObs attaches the configured span tracer to a freshly built engine.
func (e *Engine) registerObs() {
	if e.spans == nil {
		return
	}
	label := e.cfg.TraceLabel
	if label == "" {
		label = "sim"
	}
	e.pidCPU = e.spans.RegisterProcess(label + "/cpus")
	e.pidProc = e.spans.RegisterProcess(label + "/procs")
	for _, c := range e.cpus {
		e.spans.SetThreadName(e.pidCPU, c.ID, fmt.Sprintf("cpu%d", c.ID))
	}
}

// Spans returns the obs tracer the engine records into (nil when disabled).
func (e *Engine) Spans() *obs.Tracer { return e.spans }

// Profile returns the lossless span sink the engine feeds (nil when
// profiling is disabled).
func (e *Engine) Profile() obs.SpanSink { return e.prof }

// SchedPID and ProcPID return the trace process-group ids the engine
// registered for scheduler segments and per-process spans.
func (e *Engine) SchedPID() int { return e.pidCPU }
func (e *Engine) ProcPID() int  { return e.pidProc }

// BeginSpan opens a named span on this process's trace track at the current
// simulated cycle. Spans nest; close with EndSpan. With both tracing and
// profiling disabled the call is a no-op costing two nil checks, and it
// never consumes simulated time.
func (p *Proc) BeginSpan(name string) {
	p.checkSpanCrash(name)
	if p.e.spans == nil && p.e.prof == nil {
		return
	}
	p.spanStack = append(p.spanStack, spanFrame{name: name, begin: p.now})
}

// EndSpan closes the innermost open span, emitting it to the tracer (ring
// buffered) and to the profiler sink (lossless, with the full open-span
// path). Calling it with no open span is a no-op, so instrumented code can
// defer it safely.
func (p *Proc) EndSpan() {
	n := len(p.spanStack)
	if (p.e.spans == nil && p.e.prof == nil) || n == 0 {
		return
	}
	fr := p.spanStack[n-1]
	if p.e.prof != nil {
		p.e.prof.ConsumeSpan(p.trackName(), p.cpu, p.spanPath(n), fr.begin, p.now)
	}
	p.spanStack = p.spanStack[:n-1]
	if p.e.spans != nil {
		p.e.spans.Add(obs.Span{
			Name: fr.name, Cat: "span",
			PID: p.e.pidProc, TID: p.id, Proc: p.name,
			Begin: fr.begin, End: p.now,
		})
	}
}

// SpanEvent attributes n occurrences of a named event (a fault of a given
// class, a shootdown batch, written-back pages) to the innermost open span,
// feeding the profiler's per-call-path event breakdown. With profiling
// disabled the call is one nil check; it never consumes simulated time.
func (p *Proc) SpanEvent(event string, n uint64) {
	if p.e.prof == nil || n == 0 {
		return
	}
	p.e.prof.ConsumeEvent(p.trackName(), p.cpu, p.spanPath(len(p.spanStack)), event, n)
}

// spanPath copies the first n open-span names, outermost first.
func (p *Proc) spanPath(n int) []string {
	path := make([]string, n)
	for i := 0; i < n; i++ {
		path[i] = p.spanStack[i].name
	}
	return path
}

// trackName lazily builds the process's profiler track id
// ("<label>/<proc>"), matching the tracer's track-group naming.
func (p *Proc) trackName() string {
	if p.track == "" {
		label := p.e.cfg.TraceLabel
		if label == "" {
			label = "sim"
		}
		p.track = label + "/" + p.name
	}
	return p.track
}

// obsSchedSegment mirrors a scheduler segment onto the per-CPU track group.
func (e *Engine) obsSchedSegment(p *Proc, start uint64) {
	e.spans.Add(obs.Span{
		Name: p.name, Cat: "sched",
		PID: e.pidCPU, TID: p.cpu, Proc: p.name,
		Begin: start, End: p.now,
	})
}
