package engine

import "fmt"

// Lock cost model defaults, in cycles. An uncontended atomic CAS on a warm
// cache line is on the order of 20 cycles; a contended handoff moves the lock
// cache line across cores and costs on the order of a cache-to-cache
// transfer.
const (
	DefaultLockAcquireCost = 20
	DefaultLockHandoffCost = 120
)

// MutexStats exposes contention counters of a simulated lock.
type MutexStats struct {
	Acquisitions uint64
	Contended    uint64
	WaitCycles   uint64
}

// Mutex is a simulated FIFO mutex. Waiting time is simulated queueing delay,
// attributed to KindLockWait on the waiter.
type Mutex struct {
	e       *Engine
	name    string
	holder  *Proc
	waiters []*Proc

	AcquireCost uint64
	HandoffCost uint64

	stats MutexStats
}

// NewMutex creates a simulated mutex with default costs.
func NewMutex(e *Engine, name string) *Mutex {
	return &Mutex{e: e, name: name,
		AcquireCost: DefaultLockAcquireCost, HandoffCost: DefaultLockHandoffCost}
}

// Lock acquires the mutex, blocking at simulated time until it is free.
// The acquire cost is charged as system time.
func (m *Mutex) Lock(p *Proc) {
	p.Sync()
	p.advance(KindSystem, m.AcquireCost)
	m.stats.Acquisitions++
	if m.holder == nil {
		m.holder = p
		return
	}
	m.stats.Contended++
	before := p.now
	m.waiters = append(m.waiters, p)
	p.block("mutex:" + m.name)
	m.stats.WaitCycles += p.now - before
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock(p *Proc) {
	p.Sync()
	if m.holder != p {
		panic(fmt.Sprintf("engine: %s unlocks mutex %q held by %v", p.name, m.name, m.holder))
	}
	m.holder = nil
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters = m.waiters[:len(m.waiters)-1]
		m.holder = w
		m.e.unblock(w, p.now+m.HandoffCost, KindLockWait)
	}
}

// Stats returns contention counters.
func (m *Mutex) Stats() MutexStats { return m.stats }

// Held reports whether the mutex is currently held (diagnostics/tests).
func (m *Mutex) Held() bool { return m.holder != nil }

type rwWaiter struct {
	p     *Proc
	write bool
}

// RWMutex is a simulated fair reader/writer lock in the style of the Linux
// mmap_sem: FIFO between phases, with consecutive queued readers admitted as
// a batch.
type RWMutex struct {
	e       *Engine
	name    string
	readers int
	writer  *Proc
	queue   []rwWaiter

	AcquireCost uint64
	HandoffCost uint64

	stats MutexStats
}

// NewRWMutex creates a simulated reader/writer lock with default costs.
func NewRWMutex(e *Engine, name string) *RWMutex {
	return &RWMutex{e: e, name: name,
		AcquireCost: DefaultLockAcquireCost, HandoffCost: DefaultLockHandoffCost}
}

// RLock acquires the lock in shared mode.
func (rw *RWMutex) RLock(p *Proc) {
	p.Sync()
	p.advance(KindSystem, rw.AcquireCost)
	rw.stats.Acquisitions++
	if rw.writer == nil && len(rw.queue) == 0 {
		rw.readers++
		return
	}
	rw.stats.Contended++
	before := p.now
	rw.queue = append(rw.queue, rwWaiter{p: p, write: false})
	p.block("rwmutex:" + rw.name + ":r")
	rw.stats.WaitCycles += p.now - before
}

// RUnlock releases a shared acquisition.
func (rw *RWMutex) RUnlock(p *Proc) {
	p.Sync()
	if rw.readers <= 0 {
		panic(fmt.Sprintf("engine: RUnlock of %q with no readers", rw.name))
	}
	rw.readers--
	if rw.readers == 0 {
		rw.admit(p.now)
	}
}

// Lock acquires the lock in exclusive mode.
func (rw *RWMutex) Lock(p *Proc) {
	p.Sync()
	p.advance(KindSystem, rw.AcquireCost)
	rw.stats.Acquisitions++
	if rw.writer == nil && rw.readers == 0 && len(rw.queue) == 0 {
		rw.writer = p
		return
	}
	rw.stats.Contended++
	before := p.now
	rw.queue = append(rw.queue, rwWaiter{p: p, write: true})
	p.block("rwmutex:" + rw.name + ":w")
	rw.stats.WaitCycles += p.now - before
}

// Unlock releases an exclusive acquisition.
func (rw *RWMutex) Unlock(p *Proc) {
	p.Sync()
	if rw.writer != p {
		panic(fmt.Sprintf("engine: %s unlocks rwmutex %q held by %v", p.name, rw.name, rw.writer))
	}
	rw.writer = nil
	rw.admit(p.now)
}

// admit wakes the next phase of waiters at simulated time t.
func (rw *RWMutex) admit(t uint64) {
	if len(rw.queue) == 0 || rw.writer != nil || rw.readers > 0 {
		return
	}
	if rw.queue[0].write {
		w := rw.queue[0]
		copy(rw.queue, rw.queue[1:])
		rw.queue = rw.queue[:len(rw.queue)-1]
		rw.writer = w.p
		rw.e.unblock(w.p, t+rw.HandoffCost, KindLockWait)
		return
	}
	// Admit the whole leading run of readers.
	n := 0
	for n < len(rw.queue) && !rw.queue[n].write {
		n++
	}
	batch := make([]rwWaiter, n)
	copy(batch, rw.queue[:n])
	copy(rw.queue, rw.queue[n:])
	rw.queue = rw.queue[:len(rw.queue)-n]
	rw.readers += n
	for _, w := range batch {
		rw.e.unblock(w.p, t+rw.HandoffCost, KindLockWait)
	}
}

// Stats returns contention counters.
func (rw *RWMutex) Stats() MutexStats { return rw.stats }

// WaitGroup is a simulated analogue of sync.WaitGroup.
type WaitGroup struct {
	e       *Engine
	name    string
	count   int
	waiters []*Proc
	doneAt  uint64
}

// NewWaitGroup creates a simulated wait group.
func NewWaitGroup(e *Engine, name string) *WaitGroup {
	return &WaitGroup{e: e, name: name}
}

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter; the last Done releases all waiters at the
// caller's simulated time (or the latest Done time seen).
func (wg *WaitGroup) Done(p *Proc) {
	p.Sync()
	if wg.count <= 0 {
		panic(fmt.Sprintf("engine: waitgroup %q Done below zero", wg.name))
	}
	wg.count--
	if p.now > wg.doneAt {
		wg.doneAt = p.now
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			wg.e.unblock(w, wg.doneAt, KindIOWait)
		}
		wg.waiters = wg.waiters[:0]
		wg.doneAt = 0
	}
}

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		p.Sync()
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.block("waitgroup:" + wg.name)
}

// Signal is a re-armable binary wakeup, the parking primitive for daemon
// processes (kswapd-style services): Wait parks the daemon until the next
// Set, and a Set with no waiter is latched so the wakeup is never lost.
// Unlike Event it resets after every consumption. Set is free for the
// sender — it models writing a flag plus a futex-wake whose cost is
// negligible against the work the daemon then performs.
type Signal struct {
	e         *Engine
	name      string
	pending   bool
	pendingAt uint64
	waiter    *Proc
}

// NewSignal creates an unsignaled Signal.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{e: e, name: name}
}

// Pending reports whether a latched wakeup is waiting to be consumed.
func (s *Signal) Pending() bool { return s.pending }

// Set wakes the parked waiter at simulated time t (or the waiter's own
// clock, if later); with no waiter the wakeup is latched for the next Wait.
// Consecutive Sets before a Wait coalesce into one wakeup, keeping the
// earliest time — exactly the semantics of a wakeup flag.
func (s *Signal) Set(t uint64) {
	if w := s.waiter; w != nil {
		s.waiter = nil
		s.e.unblock(w, t, KindIOWait)
		return
	}
	if !s.pending || t < s.pendingAt {
		s.pendingAt = t
	}
	s.pending = true
}

// Wait consumes a latched wakeup immediately (advancing the caller to the
// Set time if it is in the future) or parks the caller until the next Set.
// Only one process may wait at a time.
func (s *Signal) Wait(p *Proc) {
	if s.pending {
		s.pending = false
		p.WaitUntil(s.pendingAt, KindIOWait)
		return
	}
	if s.waiter != nil {
		panic(fmt.Sprintf("engine: second waiter on signal %q", s.name))
	}
	s.waiter = p
	p.block("signal:" + s.name)
}

// Event is a one-shot level-triggered event. Fire releases current and
// future waiters at the given simulated time.
type Event struct {
	e       *Engine
	name    string
	fired   bool
	firedAt uint64
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(e *Engine, name string) *Event {
	return &Event{e: e, name: name}
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the simulated fire time (0 when unfired).
func (ev *Event) FiredAt() uint64 { return ev.firedAt }

// Fire marks the event fired at time t, waking all waiters.
func (ev *Event) Fire(t uint64) {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.firedAt = t
	for _, w := range ev.waiters {
		at := t
		if w.now > at {
			at = w.now
		}
		ev.e.unblock(w, at, KindIOWait)
	}
	ev.waiters = nil
}

// Wait blocks until the event fires; if already fired the caller only
// advances to the fire time if it is in its future.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		p.WaitUntil(ev.firedAt, KindIOWait)
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.block("event:" + ev.name)
}
