package engine

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvance(t *testing.T) {
	e := New(Config{NumCPUs: 1})
	var final uint64
	e.Spawn(0, "p", func(p *Proc) {
		p.AdvanceUser(100)
		p.AdvanceSystem(50)
		final = p.Now()
	})
	e.Run()
	if final != 150 {
		t.Fatalf("final time = %d, want 150", final)
	}
	if e.Now() != 150 {
		t.Fatalf("engine now = %d, want 150", e.Now())
	}
}

func TestAccountingKinds(t *testing.T) {
	e := New(Config{NumCPUs: 1})
	var p0 *Proc
	p0 = e.Spawn(0, "p", func(p *Proc) {
		p.AdvanceUser(10)
		p.AdvanceSystem(20)
		p.SleepIO(30)
	})
	e.Run()
	if got := p0.Accounted(KindUser); got != 10 {
		t.Errorf("user = %d, want 10", got)
	}
	if got := p0.Accounted(KindSystem); got != 20 {
		t.Errorf("system = %d, want 20", got)
	}
	if got := p0.Accounted(KindIOWait); got != 30 {
		t.Errorf("iowait = %d, want 30", got)
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	e := New(Config{NumCPUs: 4})
	var order []string
	for i, adv := range []uint64{300, 100, 200} {
		name := string(rune('a' + i))
		adv := adv
		e.Spawn(i, name, func(p *Proc) {
			p.AdvanceUser(adv)
			p.Sync() // let earlier-clocked procs run first
			order = append(order, p.Name())
		})
	}
	e.Run()
	want := []string{"b", "c", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMutexSerializes(t *testing.T) {
	e := New(Config{NumCPUs: 8})
	m := NewMutex(e, "test")
	m.AcquireCost = 0
	m.HandoffCost = 0
	const n = 4
	const hold = 1000
	ends := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(i, "w", func(p *Proc) {
			m.Lock(p)
			p.AdvanceSystem(hold)
			ends[i] = p.Now()
			m.Unlock(p)
		})
	}
	e.Run()
	// With FIFO handoff, completion times must be 1000, 2000, 3000, 4000
	// in spawn order (all start at t=0, proc 0 wins the tie-break).
	for i := 0; i < n; i++ {
		want := uint64((i + 1) * hold)
		if ends[i] != want {
			t.Errorf("proc %d end = %d, want %d", i, ends[i], want)
		}
	}
	st := m.Stats()
	if st.Acquisitions != n {
		t.Errorf("acquisitions = %d, want %d", st.Acquisitions, n)
	}
	if st.Contended != n-1 {
		t.Errorf("contended = %d, want %d", st.Contended, n-1)
	}
	if st.WaitCycles != 1000+2000+3000 {
		t.Errorf("wait cycles = %d, want 6000", st.WaitCycles)
	}
}

func TestMutexWaitIsLockWaitKind(t *testing.T) {
	e := New(Config{NumCPUs: 2})
	m := NewMutex(e, "test")
	m.AcquireCost = 0
	m.HandoffCost = 0
	var waiter *Proc
	e.Spawn(0, "holder", func(p *Proc) {
		m.Lock(p)
		p.AdvanceSystem(500)
		m.Unlock(p)
	})
	waiter = e.Spawn(1, "waiter", func(p *Proc) {
		p.AdvanceUser(1) // lose the t=0 tie
		m.Lock(p)
		m.Unlock(p)
	})
	e.Run()
	if got := waiter.Accounted(KindLockWait); got != 499 {
		t.Errorf("lockwait = %d, want 499", got)
	}
}

func TestRWMutexReaderBatch(t *testing.T) {
	e := New(Config{NumCPUs: 8})
	rw := NewRWMutex(e, "test")
	rw.AcquireCost = 0
	rw.HandoffCost = 0
	readerEnds := make([]uint64, 3)
	e.Spawn(0, "writer", func(p *Proc) {
		rw.Lock(p)
		p.AdvanceSystem(1000)
		rw.Unlock(p)
	})
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(1+i, "reader", func(p *Proc) {
			p.AdvanceUser(1)
			rw.RLock(p)
			p.AdvanceSystem(100)
			readerEnds[i] = p.Now()
			rw.RUnlock(p)
		})
	}
	e.Run()
	// All three readers are admitted together at t=1000 and overlap.
	for i, end := range readerEnds {
		if end != 1100 {
			t.Errorf("reader %d end = %d, want 1100 (batched admission)", i, end)
		}
	}
}

func TestRWMutexWriterWaitsForAllReaders(t *testing.T) {
	e := New(Config{NumCPUs: 8})
	rw := NewRWMutex(e, "test")
	rw.AcquireCost = 0
	rw.HandoffCost = 0
	var writerStart uint64
	for i := 0; i < 2; i++ {
		hold := uint64(100 * (i + 1))
		e.Spawn(i, "reader", func(p *Proc) {
			rw.RLock(p)
			p.AdvanceSystem(hold)
			rw.RUnlock(p)
		})
	}
	e.Spawn(2, "writer", func(p *Proc) {
		p.AdvanceUser(1)
		rw.Lock(p)
		writerStart = p.Now()
		rw.Unlock(p)
	})
	e.Run()
	if writerStart != 200 {
		t.Errorf("writer admitted at %d, want 200 (after slowest reader)", writerStart)
	}
}

func TestWaitGroup(t *testing.T) {
	e := New(Config{NumCPUs: 8})
	wg := NewWaitGroup(e, "test")
	wg.Add(3)
	var joined uint64
	for i := 0; i < 3; i++ {
		work := uint64(100 * (i + 1))
		e.Spawn(i, "worker", func(p *Proc) {
			p.AdvanceUser(work)
			wg.Done(p)
		})
	}
	e.Spawn(3, "main", func(p *Proc) {
		wg.Wait(p)
		joined = p.Now()
	})
	e.Run()
	if joined != 300 {
		t.Errorf("joined at %d, want 300 (slowest worker)", joined)
	}
}

func TestEventWakesWaiters(t *testing.T) {
	e := New(Config{NumCPUs: 4})
	ev := NewEvent(e, "test")
	var woke uint64
	e.Spawn(0, "waiter", func(p *Proc) {
		ev.Wait(p)
		woke = p.Now()
	})
	e.Spawn(1, "firer", func(p *Proc) {
		p.AdvanceUser(777)
		ev.Fire(p.Now())
	})
	e.Run()
	if woke != 777 {
		t.Errorf("woke at %d, want 777", woke)
	}
	if !ev.Fired() || ev.FiredAt() != 777 {
		t.Errorf("event state fired=%v at=%d", ev.Fired(), ev.FiredAt())
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	e := New(Config{NumCPUs: 2})
	ev := NewEvent(e, "test")
	var woke uint64
	e.Spawn(0, "firer", func(p *Proc) {
		p.AdvanceUser(100)
		ev.Fire(p.Now())
	})
	e.Spawn(1, "late", func(p *Proc) {
		p.AdvanceUser(500)
		ev.Wait(p) // already fired in its past: no extra delay
		woke = p.Now()
	})
	e.Run()
	if woke != 500 {
		t.Errorf("woke at %d, want 500", woke)
	}
}

func TestIRQDelivery(t *testing.T) {
	e := New(Config{NumCPUs: 2})
	var victim *Proc
	victim = e.Spawn(0, "victim", func(p *Proc) {
		p.AdvanceUser(10)
		p.Yield()
		p.AdvanceUser(10) // absorbs the pending IRQ here
	})
	e.Spawn(1, "sender", func(p *Proc) {
		p.AdvanceUser(5)
		p.Engine().PostIRQ(0, 300)
	})
	e.Run()
	if victim.IRQAbsorbed() != 300 {
		t.Errorf("irq absorbed = %d, want 300", victim.IRQAbsorbed())
	}
	if victim.Now() != 320 {
		t.Errorf("victim now = %d, want 320", victim.Now())
	}
	if e.IRQCount(0) != 1 {
		t.Errorf("irq count = %d, want 1", e.IRQCount(0))
	}
}

func TestCPUSerializationWithOversubscription(t *testing.T) {
	e := New(Config{NumCPUs: 1})
	var aEnd, bEnd uint64
	e.Spawn(0, "a", func(p *Proc) {
		p.AdvanceUser(100)
		aEnd = p.Now()
	})
	e.Spawn(0, "b", func(p *Proc) {
		p.AdvanceUser(100)
		bEnd = p.Now()
	})
	e.Run()
	// Two compute-bound procs on one CPU must serialize: 100 then 200.
	if aEnd != 100 || bEnd != 200 {
		t.Errorf("ends = %d, %d; want 100, 200", aEnd, bEnd)
	}
}

func TestSpawnFromInsideInheritsTime(t *testing.T) {
	e := New(Config{NumCPUs: 2})
	var childStart uint64
	e.Spawn(0, "parent", func(p *Proc) {
		p.AdvanceUser(1000)
		p.Engine().Spawn(1, "child", func(c *Proc) {
			childStart = c.Now()
		})
	})
	e.Run()
	if childStart != 1000 {
		t.Errorf("child started at %d, want 1000", childStart)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := New(Config{NumCPUs: 8, Seed: 42})
		m := NewMutex(e, "m")
		var ends []uint64
		for i := 0; i < 8; i++ {
			e.Spawn(i, "w", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.AdvanceUser(uint64(e.Rand().Intn(100)))
					m.Lock(p)
					p.AdvanceSystem(50)
					m.Unlock(p)
				}
				ends = append(ends, p.Now())
			})
		}
		e.Run()
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := New(Config{NumCPUs: 2})
	m := NewMutex(e, "m")
	e.Spawn(0, "a", func(p *Proc) {
		m.Lock(p) // never unlocked
		p.AdvanceUser(1)
	})
	e.Spawn(1, "b", func(p *Proc) {
		p.AdvanceUser(10)
		m.Lock(p) // blocks forever
	})
	e.Run()
}

func TestNUMATopology(t *testing.T) {
	e := New(Config{NumCPUs: 32, NumNUMANodes: 2})
	if e.NodeOf(0) != 0 || e.NodeOf(15) != 0 {
		t.Errorf("cpus 0,15 should be node 0: %d %d", e.NodeOf(0), e.NodeOf(15))
	}
	if e.NodeOf(16) != 1 || e.NodeOf(31) != 1 {
		t.Errorf("cpus 16,31 should be node 1: %d %d", e.NodeOf(16), e.NodeOf(31))
	}
}

func TestWaitUntilPast(t *testing.T) {
	e := New(Config{NumCPUs: 1})
	e.Spawn(0, "p", func(p *Proc) {
		p.AdvanceUser(100)
		p.WaitUntil(50, KindIOWait) // in the past: no-op
		if p.Now() != 100 {
			t.Errorf("now = %d, want 100", p.Now())
		}
	})
	e.Run()
}

func TestTraceCapturesSegments(t *testing.T) {
	e := New(Config{NumCPUs: 2, Trace: true})
	m := NewMutex(e, "m")
	e.Spawn(0, "alpha", func(p *Proc) {
		m.Lock(p)
		p.AdvanceSystem(500)
		m.Unlock(p)
	})
	e.Spawn(1, "beta", func(p *Proc) {
		p.AdvanceUser(10)
		m.Lock(p)
		p.AdvanceSystem(100)
		m.Unlock(p)
	})
	e.Run()
	evs := e.Trace()
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	names := map[string]bool{}
	for _, ev := range evs {
		if ev.End <= ev.Start {
			t.Errorf("empty/negative segment %+v", ev)
		}
		names[ev.Proc] = true
	}
	if !names["alpha"] || !names["beta"] {
		t.Errorf("procs missing from trace: %v", names)
	}
	// Segments on one CPU must not overlap (one proc per CPU here).
	perCPU := map[int][]TraceEvent{}
	for _, ev := range evs {
		perCPU[ev.CPU] = append(perCPU[ev.CPU], ev)
	}
	for cpuID, list := range perCPU {
		for i := 1; i < len(list); i++ {
			if list[i].Start < list[i-1].End {
				t.Errorf("cpu %d: overlapping segments %+v / %+v", cpuID, list[i-1], list[i])
			}
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	e := New(Config{NumCPUs: 1, Trace: true})
	e.Spawn(0, "p", func(p *Proc) { p.AdvanceUser(2400) }) // 1 us
	e.Run()
	var sb strings.Builder
	if err := e.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	foundX := false
	for _, ev := range out {
		if ev["ph"] == "X" && ev["name"] == "p" {
			foundX = true
			if dur := ev["dur"].(float64); dur != 1.0 {
				t.Errorf("dur = %v us, want 1", dur)
			}
		}
	}
	if !foundX {
		t.Error("no complete event in trace")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	e := New(Config{NumCPUs: 1})
	e.Spawn(0, "p", func(p *Proc) { p.AdvanceUser(100) })
	e.Run()
	if e.Trace() != nil {
		t.Error("trace captured without Config.Trace")
	}
}

// Property: the run-queue heap always pops in (time, id) order.
func TestProcHeapOrderProperty(t *testing.T) {
	check := func(times []uint16) bool {
		h := &procHeap{}
		for i, tm := range times {
			h.Push(&Proc{id: i, now: uint64(tm)})
		}
		var lastT uint64
		lastID := -1
		for h.Len() > 0 {
			p := h.Pop()
			if p.now < lastT || (p.now == lastT && p.id < lastID) {
				return false
			}
			if p.now > lastT {
				lastID = -1
			}
			lastT = p.now
			lastID = p.id
		}
		return h.Pop() == nil && h.Peek() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
