package engine

import (
	"encoding/json"
	"fmt"
	"io"
)

// Tracing records per-process execution segments in simulated time and
// exports them in the Chrome trace-event format (chrome://tracing /
// https://ui.perfetto.dev), one track per simulated CPU. Enable with
// Config.Trace; segments are captured between scheduling points, so the
// trace shows exactly how simulated threads interleave, block and contend.

// TraceEvent is one captured execution segment.
type TraceEvent struct {
	Proc   string
	ProcID int
	CPU    int
	Start  uint64 // cycles
	End    uint64 // cycles
	// Outcome records how the segment ended: "yield", "block", "done".
	Outcome string
}

// tracer accumulates events while enabled.
type tracer struct {
	events []TraceEvent
}

// Trace returns the captured events (empty unless Config.Trace was set).
func (e *Engine) Trace() []TraceEvent {
	if e.tr == nil {
		return nil
	}
	return e.tr.events
}

func (e *Engine) traceSegment(p *Proc, start uint64, outcome batonKind) {
	if p.now == start {
		return
	}
	if e.spans != nil {
		e.obsSchedSegment(p, start)
	}
	if e.tr == nil {
		return
	}
	name := map[batonKind]string{
		batonYield: "yield", batonBlock: "block", batonDone: "done",
	}[outcome]
	e.tr.events = append(e.tr.events, TraceEvent{
		Proc: p.name, ProcID: p.id, CPU: p.cpu,
		Start: start, End: p.now, Outcome: name,
	})
}

// chromeEvent is the trace-event-format record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serializes the captured trace as a Chrome trace-event
// JSON array: timestamps in microseconds at the 2.4 GHz testbed clock, one
// thread track per simulated CPU.
func (e *Engine) WriteChromeTrace(w io.Writer) error {
	const cyclesPerMicro = 2400.0
	out := make([]chromeEvent, 0, len(e.Trace())+e.NumCPUs())
	for c := 0; c < e.NumCPUs(); c++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: c,
			Args: map[string]any{"name": fmt.Sprintf("cpu%d", c)},
		})
	}
	for _, ev := range e.Trace() {
		out = append(out, chromeEvent{
			Name: ev.Proc, Ph: "X",
			Ts:  float64(ev.Start) / cyclesPerMicro,
			Dur: float64(ev.End-ev.Start) / cyclesPerMicro,
			PID: 1, TID: ev.CPU,
			Args: map[string]any{"proc": ev.ProcID, "end": ev.Outcome},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
