package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapLookupUnmap(t *testing.T) {
	pt := New(1)
	va := uint64(0x7f0000001000)
	pt.Map(va, 99, FlagWritable|FlagUser, Size4K)
	e, ok := pt.Lookup(va)
	if !ok {
		t.Fatal("lookup after map failed")
	}
	if e.Frame != 99 || !e.Flags.Has(FlagWritable) || !e.Present() {
		t.Fatalf("entry = %+v", e)
	}
	if e.PageSize != Size4K {
		t.Fatalf("page size = %d", e.PageSize)
	}
	if !pt.Unmap(va) {
		t.Fatal("unmap failed")
	}
	if _, ok := pt.Lookup(va); ok {
		t.Fatal("lookup after unmap succeeded")
	}
	if pt.Mapped() != 0 {
		t.Fatalf("mapped = %d, want 0", pt.Mapped())
	}
}

func TestLookupWithinPage(t *testing.T) {
	pt := New(1)
	pt.Map(0x1000, 5, 0, Size4K)
	if _, ok := pt.Lookup(0x1fff); !ok {
		t.Fatal("lookup within page should hit")
	}
	if _, ok := pt.Lookup(0x2000); ok {
		t.Fatal("lookup past page should miss")
	}
}

func TestHugePages(t *testing.T) {
	pt := New(1)
	pt.Map(0, 0, FlagWritable, Size1G)
	pt.Map(Size1G, 1, FlagWritable, Size1G)
	pt.Map(2*Size1G, 2, FlagWritable, Size2M)
	for _, va := range []uint64{0, Size1G - 1, 4096} {
		e, ok := pt.Lookup(va)
		if !ok || e.Frame != 0 || e.PageSize != Size1G {
			t.Fatalf("va %#x: e=%+v ok=%v", va, e, ok)
		}
	}
	e, ok := pt.Lookup(Size1G + 12345)
	if !ok || e.Frame != 1 {
		t.Fatalf("second gig: %+v %v", e, ok)
	}
	e, ok = pt.Lookup(2*Size1G + 100)
	if !ok || e.PageSize != Size2M {
		t.Fatalf("2M page: %+v %v", e, ok)
	}
	if _, ok := pt.Lookup(2*Size1G + Size2M); ok {
		t.Fatal("unmapped 2M region should miss")
	}
}

func TestMapUnaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned map")
		}
	}()
	pt := New(1)
	pt.Map(0x1234, 0, 0, Size4K)
}

func TestProtectAndDirty(t *testing.T) {
	pt := New(1)
	pt.Map(0x4000, 7, FlagUser, Size4K)
	if !pt.Protect(0x4000, FlagUser|FlagWritable) {
		t.Fatal("protect failed")
	}
	e, _ := pt.Lookup(0x4000)
	if !e.Flags.Has(FlagWritable) || e.Frame != 7 {
		t.Fatalf("after protect: %+v", e)
	}
	if !pt.SetDirty(0x4000) {
		t.Fatal("set dirty failed")
	}
	e, _ = pt.Lookup(0x4000)
	if !e.Flags.Has(FlagDirty | FlagAccessed) {
		t.Fatalf("dirty bits missing: %+v", e)
	}
	if pt.Protect(0x9000, 0) {
		t.Fatal("protect of unmapped va should fail")
	}
}

func TestUnmapRange(t *testing.T) {
	pt := New(1)
	for i := uint64(0); i < 16; i++ {
		pt.Map(i*Size4K, i, 0, Size4K)
	}
	removed := pt.UnmapRange(4*Size4K, 8*Size4K)
	if removed != 8 {
		t.Fatalf("removed = %d, want 8", removed)
	}
	for i := uint64(0); i < 16; i++ {
		_, ok := pt.Lookup(i * Size4K)
		want := i < 4 || i >= 12
		if ok != want {
			t.Fatalf("page %d present=%v want %v", i, ok, want)
		}
	}
}

func TestUnmapRangeHugeWhole(t *testing.T) {
	pt := New(1)
	pt.Map(0, 0, FlagWritable, Size2M)
	pt.Map(Size2M, 512, FlagWritable, Size2M)
	removed := pt.UnmapRange(0, 2*Size2M)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if pt.Mapped() != 0 {
		t.Fatalf("mapped = %d, want 0", pt.Mapped())
	}
}

// Regression: a range that starts or ends mid-2MB must neither remove mapped
// memory outside the range nor skip the entry — the huge entry splits into
// surviving 4 KB mappings.
func TestUnmapRangeHugePartial(t *testing.T) {
	pt := New(1)
	pt.Map(0, 1000, FlagWritable|FlagUser|FlagDirty, Size2M)

	// Punch out the middle quarter [64*4K, 128*4K).
	removed := pt.UnmapRange(64*Size4K, 64*Size4K)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1 (the huge entry)", removed)
	}
	for i := uint64(0); i < 512; i++ {
		va := i * Size4K
		e, ok := pt.Lookup(va)
		inHole := i >= 64 && i < 128
		if ok == inHole {
			t.Fatalf("page %d: present=%v, inHole=%v", i, ok, inHole)
		}
		if !ok {
			continue
		}
		if e.PageSize != Size4K {
			t.Fatalf("page %d: survivor has size %d, want 4K", i, e.PageSize)
		}
		if e.Frame != 1000+i {
			t.Fatalf("page %d: survivor frame %d, want %d", i, e.Frame, 1000+i)
		}
		if !e.Flags.Has(FlagWritable | FlagUser | FlagDirty) {
			t.Fatalf("page %d: survivor flags %v", i, e.Flags)
		}
	}
	if pt.Mapped() != 512-64 {
		t.Fatalf("mapped = %d, want %d", pt.Mapped(), 512-64)
	}
}

func TestUnmapRangeHugeStraddle(t *testing.T) {
	pt := New(1)
	// Two adjacent huge mappings; unmap a range straddling their boundary.
	pt.Map(0, 0, FlagUser, Size2M)
	pt.Map(Size2M, 512, FlagUser, Size2M)
	removed := pt.UnmapRange(Size2M-4*Size4K, 8*Size4K)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	// First mapping keeps pages 0..507, second keeps 516..1023.
	for i := uint64(0); i < 1024; i++ {
		va := i * Size4K
		e, ok := pt.Lookup(va)
		inHole := i >= 508 && i < 516
		if ok == inHole {
			t.Fatalf("page %d: present=%v, inHole=%v", i, ok, inHole)
		}
		if ok && e.Frame != i {
			t.Fatalf("page %d: frame %d, want %d", i, e.Frame, i)
		}
	}
	if pt.Mapped() != 1024-8 {
		t.Fatalf("mapped = %d, want %d", pt.Mapped(), 1024-8)
	}
}

func TestWalkLevels(t *testing.T) {
	pt := New(1)
	pt.Map(0, 0, 0, Size4K)
	pt.Lookup(0)
	if pt.LastWalkLevels() != 4 {
		t.Fatalf("4K walk levels = %d, want 4", pt.LastWalkLevels())
	}
	pt2 := New(2)
	pt2.Map(0, 0, 0, Size1G)
	pt2.Lookup(0)
	if pt2.LastWalkLevels() != 2 {
		t.Fatalf("1G walk levels = %d, want 2", pt2.LastWalkLevels())
	}
}

// Property: the table agrees with a reference map under random map/unmap/
// lookup sequences over a bounded VA space of 4K pages.
func TestTableMatchesReferenceModel(t *testing.T) {
	type op struct {
		Kind uint8
		Page uint16
	}
	check := func(ops []op) bool {
		pt := New(1)
		ref := make(map[uint64]uint64)
		for i, o := range ops {
			va := uint64(o.Page) * Size4K
			switch o.Kind % 3 {
			case 0:
				pt.Map(va, uint64(i), 0, Size4K)
				ref[va] = uint64(i)
			case 1:
				got := pt.Unmap(va)
				_, want := ref[va]
				if got != want {
					return false
				}
				delete(ref, va)
			case 2:
				e, ok := pt.Lookup(va)
				frame, want := ref[va]
				if ok != want || (ok && e.Frame != frame) {
					return false
				}
			}
			if pt.Mapped() != uint64(len(ref)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
