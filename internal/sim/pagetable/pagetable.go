// Package pagetable implements an x86-64-style 4-level radix page table used
// both for guest virtual -> guest physical translation (the table Aquila
// manages in non-root ring 0) and, with large pages, for the EPT
// (guest physical -> host physical) managed by the hypervisor.
//
// Virtual addresses are decomposed into four 9-bit indices plus a 12-bit
// offset, exactly as the hardware does. Huge mappings are supported at
// level 3 (1 GB) and level 2 (2 MB).
package pagetable

import "fmt"

// Page sizes supported by the table.
const (
	Size4K = 1 << 12
	Size2M = 1 << 21
	Size1G = 1 << 30
)

// Flags is the per-entry permission/state bit set.
type Flags uint8

// Entry flag bits.
const (
	FlagPresent Flags = 1 << iota
	FlagWritable
	FlagDirty
	FlagAccessed
	FlagUser
)

// Has reports whether all bits in q are set.
func (f Flags) Has(q Flags) bool { return f&q == q }

// Entry is a leaf translation.
type Entry struct {
	Frame    uint64 // physical frame number (target >> 12)
	Flags    Flags
	PageSize uint64 // Size4K, Size2M or Size1G
}

// Present reports whether the entry maps something.
func (e Entry) Present() bool { return e.Flags.Has(FlagPresent) }

type node struct {
	// children for interior levels; nil slots are non-present.
	children [512]*node
	// leaves for the level at which mapping happened.
	leaves [512]*Entry
	// count of present slots (children + leaves) for cheap emptiness checks.
	count int
}

// Table is a 4-level page table.
type Table struct {
	root    *node
	asid    uint32
	mapped  uint64 // number of present leaf entries
	walkLen int    // levels touched by the last Lookup (cost hook)
}

// New creates an empty table with the given address-space id.
func New(asid uint32) *Table {
	return &Table{root: &node{}, asid: asid}
}

// ASID returns the address-space id used to tag TLB entries.
func (t *Table) ASID() uint32 { return t.asid }

// Mapped returns the number of present leaf entries.
func (t *Table) Mapped() uint64 { return t.mapped }

// LastWalkLevels returns the number of levels the last Lookup touched.
func (t *Table) LastWalkLevels() int { return t.walkLen }

// indices decomposes a virtual address into the four 9-bit level indices,
// from level 4 (root) down to level 1.
func indices(va uint64) [4]int {
	return [4]int{
		int(va >> 39 & 0x1ff),
		int(va >> 30 & 0x1ff),
		int(va >> 21 & 0x1ff),
		int(va >> 12 & 0x1ff),
	}
}

// levelSize returns the bytes covered by one entry at walk depth d (0-based
// from the root): depth 1 entry -> 1 GB, depth 2 -> 2 MB, depth 3 -> 4 KB.
func levelSize(depth int) uint64 {
	switch depth {
	case 1:
		return Size1G
	case 2:
		return Size2M
	default:
		return Size4K
	}
}

// Lookup walks the table for va. It returns the leaf entry and true when a
// present mapping covers va (at any page size).
func (t *Table) Lookup(va uint64) (Entry, bool) {
	idx := indices(va)
	n := t.root
	t.walkLen = 0
	for d := 0; d < 4; d++ {
		t.walkLen++
		if e := n.leaves[idx[d]]; e != nil && e.Present() {
			return *e, true
		}
		child := n.children[idx[d]]
		if child == nil {
			return Entry{}, false
		}
		n = child
	}
	return Entry{}, false
}

// lookupRef returns a pointer to the live leaf entry covering va, or nil.
func (t *Table) lookupRef(va uint64) *Entry {
	idx := indices(va)
	n := t.root
	for d := 0; d < 4; d++ {
		if e := n.leaves[idx[d]]; e != nil && e.Present() {
			return e
		}
		child := n.children[idx[d]]
		if child == nil {
			return nil
		}
		n = child
	}
	return nil
}

// Map installs a translation of the given page size for the page containing
// va. va must be size-aligned. Remapping an existing entry overwrites it.
func (t *Table) Map(va uint64, frame uint64, flags Flags, pageSize uint64) {
	if va%pageSize != 0 {
		panic(fmt.Sprintf("pagetable: unaligned map va=%#x size=%d", va, pageSize))
	}
	depth := 3
	switch pageSize {
	case Size4K:
		depth = 3
	case Size2M:
		depth = 2
	case Size1G:
		depth = 1
	default:
		panic(fmt.Sprintf("pagetable: bad page size %d", pageSize))
	}
	idx := indices(va)
	n := t.root
	for d := 0; d < depth; d++ {
		child := n.children[idx[d]]
		if child == nil {
			child = &node{}
			n.children[idx[d]] = child
			n.count++
		}
		n = child
	}
	if n.leaves[idx[depth]] == nil {
		n.leaves[idx[depth]] = &Entry{}
		n.count++
		t.mapped++
	} else if !n.leaves[idx[depth]].Present() {
		t.mapped++
	}
	*n.leaves[idx[depth]] = Entry{Frame: frame, Flags: flags | FlagPresent, PageSize: pageSize}
}

// Unmap removes the translation covering va. It reports whether a present
// mapping was removed.
func (t *Table) Unmap(va uint64) bool {
	e := t.lookupRef(va)
	if e == nil {
		return false
	}
	*e = Entry{}
	t.mapped--
	return true
}

// Protect rewrites the flags of the present mapping covering va, preserving
// the frame. It reports whether a mapping was found.
func (t *Table) Protect(va uint64, flags Flags) bool {
	e := t.lookupRef(va)
	if e == nil {
		return false
	}
	e.Flags = flags | FlagPresent
	return true
}

// SetDirty sets the dirty (and accessed) bit of the mapping covering va.
func (t *Table) SetDirty(va uint64) bool {
	e := t.lookupRef(va)
	if e == nil {
		return false
	}
	e.Flags |= FlagDirty | FlagAccessed
	return true
}

// SetAccessed sets the accessed bit of the mapping covering va.
func (t *Table) SetAccessed(va uint64) bool {
	e := t.lookupRef(va)
	if e == nil {
		return false
	}
	e.Flags |= FlagAccessed
	return true
}

// UnmapRange removes all mappings in [va, va+length). Huge mappings fully
// inside the range are removed whole; a huge mapping that only partially
// overlaps the range is split — the entry is removed and the surviving pieces
// outside the range are re-mapped as 4 KB entries with the same flags and the
// corresponding base frames. Returns the number of mappings removed (a split
// counts as one removal).
func (t *Table) UnmapRange(va, length uint64) int {
	removed := 0
	end := va + length
	for cur := va; cur < end; {
		e := t.lookupRef(cur)
		if e == nil {
			cur += Size4K
			continue
		}
		size := e.PageSize
		base := cur &^ (size - 1)
		entryEnd := base + size
		if size > Size4K && (base < va || entryEnd > end) {
			// Partial overlap: drop the huge entry, keep the pieces that
			// survive as 4 KB mappings.
			ent := *e
			*e = Entry{}
			t.mapped--
			removed++
			for p := base; p < entryEnd; p += Size4K {
				if p >= va && p < end {
					continue
				}
				t.Map(p, ent.Frame+((p-base)>>12), ent.Flags, Size4K)
			}
			cur = entryEnd
			continue
		}
		*e = Entry{}
		t.mapped--
		removed++
		cur = entryEnd
	}
	return removed
}
