package pagetable

import "testing"

// Table-driven UnmapRange edges: zero-length ranges, both huge sizes
// straddled at the front, the back, and in the middle, and mixed-size
// neighborhoods. Each case declares the mappings to install, the range to
// unmap, the expected removal count, and probe addresses that must (or must
// not) still translate afterwards.
func TestUnmapRangeEdges(t *testing.T) {
	type mapping struct {
		va, frame, size uint64
	}
	cases := []struct {
		name        string
		maps        []mapping
		va, length  uint64
		wantRemoved int
		// stillMapped/gone are probe VAs checked against Lookup after the call.
		stillMapped []uint64
		gone        []uint64
	}{
		{
			name:        "zero_length_noop",
			maps:        []mapping{{0, 100, Size4K}, {Size2M, 200, Size2M}},
			va:          0,
			length:      0,
			wantRemoved: 0,
			stillMapped: []uint64{0, Size2M, Size2M + Size4K},
		},
		{
			name:        "zero_length_inside_huge_noop",
			maps:        []mapping{{0, 100, Size2M}},
			va:          17 * Size4K,
			length:      0,
			wantRemoved: 0,
			stillMapped: []uint64{0, 17 * Size4K, Size2M - Size4K},
		},
		{
			name:        "range_over_hole_noop",
			maps:        []mapping{{0, 100, Size4K}},
			va:          Size2M,
			length:      Size2M,
			wantRemoved: 0,
			stillMapped: []uint64{0},
		},
		{
			name:        "2m_front_straddle",
			maps:        []mapping{{0, 0x1000, Size2M}},
			va:          0,
			length:      4 * Size4K,
			wantRemoved: 1,
			gone:        []uint64{0, 3 * Size4K},
			stillMapped: []uint64{4 * Size4K, Size2M - Size4K},
		},
		{
			name:        "2m_back_straddle",
			maps:        []mapping{{0, 0x1000, Size2M}},
			va:          Size2M - 4*Size4K,
			length:      4 * Size4K,
			wantRemoved: 1,
			gone:        []uint64{Size2M - 4*Size4K, Size2M - Size4K},
			stillMapped: []uint64{0, Size2M - 5*Size4K},
		},
		{
			name:        "2m_middle_hole_keeps_both_sides",
			maps:        []mapping{{0, 0x1000, Size2M}},
			va:          256 * Size4K,
			length:      4 * Size4K,
			wantRemoved: 1,
			gone:        []uint64{256 * Size4K, 259 * Size4K},
			stillMapped: []uint64{0, 255 * Size4K, 260 * Size4K, Size2M - Size4K},
		},
		{
			name:        "1g_whole",
			maps:        []mapping{{0, 0x40000, Size1G}},
			va:          0,
			length:      Size1G,
			wantRemoved: 1,
			gone:        []uint64{0, Size1G - Size4K, Size2M},
		},
		{
			name:        "1g_front_straddle",
			maps:        []mapping{{0, 0x40000, Size1G}},
			va:          0,
			length:      Size2M,
			wantRemoved: 1,
			gone:        []uint64{0, Size2M - Size4K},
			stillMapped: []uint64{Size2M, Size1G - Size4K},
		},
		{
			name:        "1g_back_straddle",
			maps:        []mapping{{0, 0x40000, Size1G}},
			va:          Size1G - Size2M,
			length:      Size2M,
			wantRemoved: 1,
			gone:        []uint64{Size1G - Size2M, Size1G - Size4K},
			stillMapped: []uint64{0, Size1G - Size2M - Size4K},
		},
		{
			name: "range_spans_4k_and_2m_neighbors",
			maps: []mapping{
				{Size2M - Size4K, 100, Size4K},
				{Size2M, 0x2000, Size2M},
				{2 * Size2M, 200, Size4K},
			},
			va:          Size2M - Size4K,
			length:      Size2M + 2*Size4K,
			wantRemoved: 3,
			gone:        []uint64{Size2M - Size4K, Size2M, 2 * Size2M, 2*Size2M - Size4K},
		},
		{
			// Page-base granularity: an unaligned range drops exactly the 4 KB
			// pieces whose page base lies inside [va, va+length) — here only
			// page 2; page 1 (base below the unaligned start) survives.
			name:        "unaligned_start_drops_by_page_base",
			maps:        []mapping{{0, 0x1000, Size2M}},
			va:          Size4K + 512,
			length:      Size4K,
			wantRemoved: 1,
			gone:        []uint64{2 * Size4K},
			stillMapped: []uint64{0, Size4K, 3 * Size4K, Size2M - Size4K},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pt := New(1)
			for _, m := range c.maps {
				pt.Map(m.va, m.frame, FlagWritable, m.size)
			}
			if got := pt.UnmapRange(c.va, c.length); got != c.wantRemoved {
				t.Errorf("UnmapRange(%#x, %#x) removed %d entries, want %d",
					c.va, c.length, got, c.wantRemoved)
			}
			for _, va := range c.stillMapped {
				if _, ok := pt.Lookup(va); !ok {
					t.Errorf("va %#x lost its mapping", va)
				}
			}
			for _, va := range c.gone {
				if e, ok := pt.Lookup(va); ok {
					t.Errorf("va %#x still maps to frame %#x", va, e.Frame)
				}
			}
		})
	}
}

// A split must preserve the frame arithmetic: the surviving 4 KB pieces of a
// huge page translate to the same physical bytes they did before the split.
func TestUnmapRangeSplitPreservesFrames(t *testing.T) {
	pt := New(1)
	pt.Map(0, 0x1000, FlagWritable|FlagUser, Size2M)
	pt.UnmapRange(4*Size4K, 4*Size4K)
	for _, page := range []uint64{0, 3, 8, 511} {
		e, ok := pt.Lookup(page * Size4K)
		if !ok {
			t.Fatalf("page %d unmapped by an unrelated split", page)
		}
		if e.Frame != 0x1000+page {
			t.Errorf("page %d: frame %#x, want %#x", page, e.Frame, 0x1000+page)
		}
		if e.PageSize != Size4K {
			t.Errorf("page %d: size %d after split, want 4K", page, e.PageSize)
		}
		if !e.Flags.Has(FlagWritable | FlagUser) {
			t.Errorf("page %d: flags %b lost on split", page, e.Flags)
		}
	}
	if pt.Mapped() != 512-4 {
		t.Errorf("Mapped() = %d after split, want %d", pt.Mapped(), 512-4)
	}
}
