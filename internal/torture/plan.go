// Package torture is the seeded torture harness behind cmd/aqtort: it
// generates random-but-reproducible operation traces (mmap/store/load/
// msync/fsync/unmap/huge-hint plus Kreon KV traffic) over every world
// (Aquila, Linux mmap, Linux O_DIRECT, kmmap) and device (pmem, NVMe),
// composes them with randomized fault and crash plans and perturbed
// schedules, runs an oracle battery after every run, and delta-debugs any
// failure down to a minimal JSON repro that replays byte-for-byte.
//
// Everything a run does flows from Plan: a pure-data, JSON-serializable
// description. Execute(plan) is a deterministic function of the plan — the
// same plan always produces the same Outcome.Fingerprint — which is what
// makes shrinking and checked-in repros possible.
package torture

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"aquila/internal/sim/device"
)

// PlanVersion is bumped when the wire format or the executor's semantics
// change incompatibly; Load rejects plans from another version so a stale
// repro fails loudly instead of replaying a different run.
const PlanVersion = 1

// World names (Plan.World).
const (
	WorldAquila      = "aquila"
	WorldLinux       = "linux"
	WorldLinuxDirect = "linux-direct"
	WorldKmmap       = "kmmap"
)

// Op kinds (Op.Kind).
const (
	OpStore      = "store"       // write one slot through the mapping
	OpLoad       = "load"        // read one slot back and verify
	OpMsync      = "msync"       // full msync; nil return acks dirty slots
	OpMsyncRange = "msync_range" // ranged msync over [Slot, Slot+N) slots
	OpFsync      = "fsync"       // fsync the file handle (error probe only)
	OpUnmap      = "unmap"       // munmap + remap; unacked slots become unknown
	OpHuge       = "huge"        // madvise(MADV_HUGEPAGE) the mapping
	OpKvPut      = "kv_put"      // Kreon put (thread 0 only)
	OpKvGet      = "kv_get"      // Kreon get + verify against the model
	OpKvScan     = "kv_scan"     // Kreon scan + verify the hit count
	OpKvMsync    = "kv_msync"    // Kreon msync; acks the current KV state
)

// Op is one step of a thread's trace. Ops are partitioned by thread: thread
// T executes its ops in order, interleaved with other threads only by the
// simulator's schedule.
type Op struct {
	T    int    `json:"t"`
	Kind string `json:"kind"`
	// File/Slot address mapping ops; N is a slot count (msync_range) or a
	// scan width (kv_scan); Key addresses KV ops.
	File int `json:"file,omitempty"`
	Slot int `json:"slot,omitempty"`
	N    int `json:"n,omitempty"`
	Key  int `json:"key,omitempty"`
}

// FileSpec declares one mmapped file. Each file is owned by one thread —
// only that thread's ops touch it — so the read-your-writes oracle needs no
// cross-thread happens-before reasoning, while threads still contend on the
// shared cache, evictors, and device.
type FileSpec struct {
	Thread int `json:"thread"`
	// Slots is the number of slotBytes-sized records in the file.
	Slots int `json:"slots"`
}

// KreonSpec sizes the Kreon store driven by thread 0's kv_* ops. Only
// generated for fault-free Aquila plans: kreon.DB.Msync discards ranged-msync
// errors, so its durability acks are sound only when writeback cannot fail.
type KreonSpec struct {
	Keys  int    `json:"keys"`
	LogKB uint64 `json:"log_kb"`
	IdxKB uint64 `json:"idx_kb"`
}

// FaultRuleSpec mirrors device.FaultRule in the JSON fixture wire format
// (string kinds).
type FaultRuleSpec struct {
	Kind  string  `json:"kind"`
	Off   uint64  `json:"off,omitempty"`
	Len   uint64  `json:"len,omitempty"`
	After uint64  `json:"after,omitempty"`
	Every uint64  `json:"every,omitempty"`
	Limit uint64  `json:"limit,omitempty"`
	Prob  float64 `json:"prob,omitempty"`
	Delay uint64  `json:"delay,omitempty"`
}

// FaultSpec is the plan's fault schedule. The generator only emits
// write-direction and latency kinds: read-direction faults and poison
// surface as SIGBUS on loads, which is legal behavior, not an oracle
// failure, and would drown the durability signal.
type FaultSpec struct {
	Seed  int64           `json:"seed"`
	Rules []FaultRuleSpec `json:"rules"`
}

// Compile lowers the spec to a device.FaultPlan via the device package's own
// wire parser, so kind names and validation stay in one place.
func (f *FaultSpec) Compile() (*device.FaultPlan, error) {
	raw, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	return device.FaultPlanFromJSON(raw)
}

// CrashSpec describes when the machine dies, in coordinates that survive
// shrinking. AtAck and OpFrac are symbolic: Execute resolves them against a
// crash-free probe run of the same plan (AtAck k = one cycle after the k'th
// msync acknowledgment; OpFrac f = after roughly f of the run's device
// content writes), so a shrunk trace re-resolves to a point that still
// exists. AtSpan triggers directly on span entry (Aquila spans).
type CrashSpec struct {
	Seed     int64   `json:"seed"`
	TearProb float64 `json:"tear_prob,omitempty"`
	AtAck    int     `json:"at_ack,omitempty"`
	OpFrac   float64 `json:"op_frac,omitempty"`
	AtSpan   string  `json:"at_span,omitempty"`
	SpanHit  uint64  `json:"span_hit,omitempty"`
}

// Plan is one torture run, fully determined: generator output, shrinker
// input/output, and the checked-in repro format are all this one type.
type Plan struct {
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	World   string `json:"world"`
	Device  string `json:"device"` // "pmem" | "nvme"
	Threads int    `json:"threads"`
	CPUs    int    `json:"cpus"`
	// SchedPerturb selects the simulator's tie-break schedule
	// (engine.Config.SchedPerturb); 0 is the canonical spawn-order schedule.
	SchedPerturb uint64 `json:"sched_perturb,omitempty"`
	CacheKB      uint64 `json:"cache_kb"`
	// HugeDensity enables Aquila's 2 MB mmio path (Params.HugeFaultDensity).
	HugeDensity float64 `json:"huge_density,omitempty"`
	// Unsafe re-enables Params.UnsafeMsyncAtSubmit — the planted durability
	// bug the oracle battery must catch (see ProofPlan).
	Unsafe bool `json:"unsafe,omitempty"`

	Files []FileSpec `json:"files"`
	Kreon *KreonSpec `json:"kreon,omitempty"`
	Fault *FaultSpec `json:"fault,omitempty"`
	Crash *CrashSpec `json:"crash,omitempty"`
	Ops   []Op       `json:"ops"`
}

// Validate checks cross-field consistency so a hand-edited repro fails with
// a message instead of an executor panic.
func (pl *Plan) Validate() error {
	if pl.Version != PlanVersion {
		return fmt.Errorf("torture: plan version %d, want %d", pl.Version, PlanVersion)
	}
	switch pl.World {
	case WorldAquila, WorldLinux, WorldLinuxDirect, WorldKmmap:
	default:
		return fmt.Errorf("torture: unknown world %q", pl.World)
	}
	if pl.Device != "pmem" && pl.Device != "nvme" {
		return fmt.Errorf("torture: unknown device %q", pl.Device)
	}
	if pl.Threads < 1 || pl.CPUs < 1 {
		return fmt.Errorf("torture: need threads>=1 cpus>=1 (got %d/%d)", pl.Threads, pl.CPUs)
	}
	if pl.CacheKB < 64 {
		return fmt.Errorf("torture: cache %d KB too small", pl.CacheKB)
	}
	for i, f := range pl.Files {
		if f.Thread < 0 || f.Thread >= pl.Threads {
			return fmt.Errorf("torture: file %d owned by thread %d of %d", i, f.Thread, pl.Threads)
		}
		if f.Slots < 1 {
			return fmt.Errorf("torture: file %d has %d slots", i, f.Slots)
		}
	}
	if pl.Kreon != nil && (pl.World != WorldAquila || pl.Fault != nil) {
		return fmt.Errorf("torture: kreon requires the aquila world and no fault plan")
	}
	for i, op := range pl.Ops {
		if op.T < 0 || op.T >= pl.Threads {
			return fmt.Errorf("torture: op %d on thread %d of %d", i, op.T, pl.Threads)
		}
		switch op.Kind {
		case OpStore, OpLoad, OpMsync, OpMsyncRange, OpFsync, OpUnmap, OpHuge:
			if op.File < 0 || op.File >= len(pl.Files) {
				return fmt.Errorf("torture: op %d file %d of %d", i, op.File, len(pl.Files))
			}
			if pl.Files[op.File].Thread != op.T {
				return fmt.Errorf("torture: op %d (thread %d) touches file %d owned by thread %d",
					i, op.T, op.File, pl.Files[op.File].Thread)
			}
		case OpKvPut, OpKvGet, OpKvScan, OpKvMsync:
			if pl.Kreon == nil {
				return fmt.Errorf("torture: op %d is %s but the plan has no kreon store", i, op.Kind)
			}
			if op.T != 0 {
				return fmt.Errorf("torture: op %d: kv ops run on thread 0, got %d", i, op.T)
			}
		default:
			return fmt.Errorf("torture: op %d has unknown kind %q", i, op.Kind)
		}
	}
	if pl.Fault != nil {
		if _, err := pl.Fault.Compile(); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the plan as indented JSON (the repro fixture format).
func (pl *Plan) Save(path string) error {
	data, err := json.MarshalIndent(pl, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a plan fixture.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pl Plan
	if err := json.Unmarshal(data, &pl); err != nil {
		return nil, fmt.Errorf("torture: %s: %w", path, err)
	}
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("torture: %s: %w", path, err)
	}
	return &pl, nil
}

// clone deep-copies a plan so the shrinker can mutate candidates freely.
func (pl *Plan) clone() *Plan {
	c := *pl
	c.Files = append([]FileSpec(nil), pl.Files...)
	c.Ops = append([]Op(nil), pl.Ops...)
	if pl.Kreon != nil {
		k := *pl.Kreon
		c.Kreon = &k
	}
	if pl.Fault != nil {
		f := *pl.Fault
		f.Rules = append([]FaultRuleSpec(nil), pl.Fault.Rules...)
		c.Fault = &f
	}
	if pl.Crash != nil {
		cr := *pl.Crash
		c.Crash = &cr
	}
	return &c
}
