package torture

// Auto-shrinking: delta debugging (ddmin) over the op trace, then a pass of
// structural simplifications, each kept only if the plan still fails. The
// symbolic crash coordinates (CrashSpec.AtAck / OpFrac) re-resolve against a
// probe run on every Execute, so removing ops cannot silently move the crash
// out of the trace — it lands on the k'th surviving acknowledgment instead.

// ShrinkResult reports what the shrinker did.
type ShrinkResult struct {
	Plan    *Plan
	Outcome *Outcome
	Runs    int // Execute calls spent
	FromOps int
	ToOps   int
}

// Shrink reduces a failing plan to a (locally) minimal one, spending at most
// budget Execute calls. The input plan must fail; Shrink panics otherwise so
// a caller cannot accidentally "shrink" a passing run into nothing.
func Shrink(pl *Plan, budget int) *ShrinkResult {
	res := &ShrinkResult{FromOps: len(pl.Ops)}
	fails := func(c *Plan) (*Outcome, bool) {
		if res.Runs >= budget {
			return nil, false
		}
		res.Runs++
		o := Execute(c)
		return o, o.Failed()
	}
	o, ok := fails(pl)
	if !ok {
		panic("torture: Shrink called on a passing plan")
	}
	best, bestOut := pl.clone(), o

	// ddmin over the op list.
	n := 2
	for len(best.Ops) >= 2 && res.Runs < budget {
		chunk := (len(best.Ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(best.Ops) && res.Runs < budget; start += chunk {
			end := start + chunk
			if end > len(best.Ops) {
				end = len(best.Ops)
			}
			cand := best.clone()
			cand.Ops = append(append([]Op(nil), best.Ops[:start]...), best.Ops[end:]...)
			if out, ok := fails(cand); ok {
				best, bestOut = cand, out
				n = maxInt(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(best.Ops) {
				break
			}
			n = minInt(2*n, len(best.Ops))
		}
	}

	// Structural simplifications, most-impactful first. Each is one probe:
	// keep it only if the failure survives.
	try := func(mutate func(*Plan) bool) {
		if res.Runs >= budget {
			return
		}
		cand := best.clone()
		if !mutate(cand) {
			return
		}
		if out, ok := fails(cand); ok {
			best, bestOut = cand, out
		}
	}
	try(func(c *Plan) bool {
		if c.Fault == nil {
			return false
		}
		c.Fault = nil
		return true
	})
	try(func(c *Plan) bool {
		if c.Crash == nil {
			return false
		}
		c.Crash = nil
		return true
	})
	try(func(c *Plan) bool {
		if c.SchedPerturb == 0 {
			return false
		}
		c.SchedPerturb = 0
		return true
	})
	try(func(c *Plan) bool {
		if c.HugeDensity == 0 {
			return false
		}
		c.HugeDensity = 0
		for i := range c.Ops {
			if c.Ops[i].Kind == OpHuge {
				c.Ops[i].Kind = OpLoad
			}
		}
		return true
	})
	try(func(c *Plan) bool {
		// Collapse to one thread: retarget every op and file to thread 0.
		if c.Threads == 1 {
			return false
		}
		c.Threads = 1
		for i := range c.Ops {
			c.Ops[i].T = 0
		}
		for i := range c.Files {
			c.Files[i].Thread = 0
		}
		return true
	})
	try(func(c *Plan) bool {
		if c.Kreon == nil {
			return false
		}
		for _, op := range c.Ops {
			switch op.Kind {
			case OpKvPut, OpKvGet, OpKvScan, OpKvMsync:
				return false // still referenced
			}
		}
		c.Kreon = nil
		return true
	})
	try(func(c *Plan) bool { return dropUnusedFiles(c) })

	res.Plan, res.Outcome = best, bestOut
	res.ToOps = len(best.Ops)
	return res
}

// dropUnusedFiles removes files no surviving op references, renumbering the
// ops' file indices. Returns false if nothing would change.
func dropUnusedFiles(c *Plan) bool {
	used := make([]bool, len(c.Files))
	for _, op := range c.Ops {
		switch op.Kind {
		case OpKvPut, OpKvGet, OpKvScan, OpKvMsync:
		default:
			used[op.File] = true
		}
	}
	remap := make([]int, len(c.Files))
	var files []FileSpec
	changed := false
	for i, u := range used {
		if !u {
			changed = true
			remap[i] = -1
			continue
		}
		remap[i] = len(files)
		files = append(files, c.Files[i])
	}
	if !changed || len(files) == 0 {
		return false
	}
	c.Files = files
	for i := range c.Ops {
		switch c.Ops[i].Kind {
		case OpKvPut, OpKvGet, OpKvScan, OpKvMsync:
		default:
			c.Ops[i].File = remap[c.Ops[i].File]
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
