package torture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"aquila"
	"aquila/internal/core"
	"aquila/internal/host"
	"aquila/internal/kvs/kreon"
	"aquila/internal/obs/profile"
	"aquila/internal/sim/device"
)

// slotBytes is the record size of the mmapped-file workload: 8 slots per
// 4 KB page, so traces exercise partial-page stores, same-page overwrite,
// and cross-slot tearing at crash points.
const slotBytes = 512

// Outcome is what one Execute produced. Fingerprint is the determinism
// witness: the FNV-1a fold of the op-result stream, the final (or crashed)
// device image hash, the acknowledgment cycles, and the failure text — two
// runs of the same plan must agree bit for bit.
type Outcome struct {
	Fingerprint uint64   `json:"fingerprint"`
	Crashed     bool     `json:"crashed"`
	CrashCycle  uint64   `json:"crash_cycle,omitempty"`
	Cycles      uint64   `json:"cycles"`
	OpsRun      int      `json:"ops_run"`
	Acked       int      `json:"acked"`
	Lost        int      `json:"lost"`
	Failures    []string `json:"failures,omitempty"`
	Events      []string `json:"events,omitempty"`
	EventCount  int      `json:"event_count,omitempty"`

	// Probe outputs for symbolic crash resolution (not part of the wire).
	ackCycles []uint64
	devWrites uint64
}

// Failed reports whether any oracle tripped.
func (o *Outcome) Failed() bool { return len(o.Failures) > 0 }

// Execute runs a plan and fires the oracle battery. Symbolic crash
// coordinates (AtAck/OpFrac) are first resolved against a crash-free probe
// run of the same plan, so they stay meaningful as the shrinker removes ops.
func Execute(pl *Plan) *Outcome {
	if err := pl.Validate(); err != nil {
		return &Outcome{Failures: []string{err.Error()}}
	}
	var crash *device.CrashPlan
	if cs := pl.Crash; cs != nil {
		crash = &device.CrashPlan{Seed: cs.Seed, TearProb: cs.TearProb}
		switch {
		case cs.AtSpan != "":
			crash.AtSpan, crash.SpanHit = cs.AtSpan, cs.SpanHit
		default:
			probe := run(pl, nil)
			switch {
			case cs.AtAck > 0 && len(probe.ackCycles) > 0:
				k := cs.AtAck
				if k > len(probe.ackCycles) {
					k = len(probe.ackCycles)
				}
				crash.AtCycle = probe.ackCycles[k-1] + 1
			case cs.OpFrac > 0 && probe.devWrites > 0:
				crash.AtDeviceOp = 1 + uint64(cs.OpFrac*float64(probe.devWrites-1))
			default:
				crash = nil // nothing to anchor the crash to: run crash-free
			}
		}
	}
	return run(pl, crash)
}

// slotState is the model's view of one record.
type slotState struct {
	written bool
	unknown bool // content unpredictable (a store SIGBUSed mid-copy)
	seq     uint64
	acked   bool
	ackSeq  uint64
}

// fileRun is one mmapped file plus its model state.
type fileRun struct {
	spec  FileSpec
	name  string
	bytes uint64
	f     aquila.File
	m     aquila.Mapping
	fsf   *host.FSFile // kmmap world only
	slots []slotState
	// errTaint latches once any sync path reported an error for this file:
	// from then on msync's nil can no longer be read as "all durable",
	// because an earlier fsync/msync may have consumed the errseq report
	// for data that never reached the device. Tainted files stop acking.
	errTaint bool
}

type exec struct {
	pl    *Plan
	o     *Outcome
	sys   *aquila.System
	prof  *profile.Profiler
	files []*fileRun

	// Kreon model: current version per key, and the version snapshot the
	// last completed kv_msync promised durable.
	db      *kreon.DB
	kvVer   []uint64
	kvAcked []uint64

	trace []uint64 // fingerprint stream: one code per op result
}

func (x *exec) fail(format string, args ...any) {
	x.o.Failures = append(x.o.Failures, fmt.Sprintf(format, args...))
}

// event records legal-but-notable behavior (SIGBUS under injected faults).
// Without faults armed there is nothing that may SIGBUS, so it escalates.
func (x *exec) event(s string) {
	if x.pl.Fault == nil {
		x.fail("unexpected SIGBUS/SIGSEGV with no faults injected: %s", s)
		return
	}
	x.o.EventCount++
	if len(x.o.Events) < 8 {
		x.o.Events = append(x.o.Events, s)
	}
}

// safeOp runs one workload step, absorbing the typed memory-fault panics
// (SIGBUS/SIGSEGV) the worlds deliver for failed accesses. Anything else —
// in particular the engine's private crash sentinel — propagates.
func (x *exec) safeOp(fn func()) (event string) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case *core.SigBus, *core.SigSegv:
			event = fmt.Sprint(r)
		default:
			panic(r)
		}
	}()
	fn()
	return ""
}

// phase runs one engine phase (a Do or Run), converting an engine panic
// (e.g. simulated deadlock) into an oracle failure instead of taking the
// whole process down — the shrinker needs failures it can iterate on.
func (x *exec) phase(name string, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			x.fail("phase %s: engine panic: %v", name, r)
			ok = false
		}
	}()
	fn()
	return true
}

func worldMode(world string) aquila.Mode {
	switch world {
	case WorldLinux, WorldKmmap:
		return aquila.ModeLinuxMmap
	case WorldLinuxDirect:
		return aquila.ModeLinuxDirect
	default:
		return aquila.ModeAquila
	}
}

// tortureParams mirrors the harness's cache-proportional parameter scaling
// so tight-cache plans keep batch sizes sane, then applies the plan's
// huge-page and (for the proof run) unsafe-msync knobs.
func tortureParams(pl *Plan, cacheBytes uint64) *core.Params {
	p := core.DefaultParams()
	pages := int(cacheBytes / 4096)
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	if p.EvictBatch > pages/16 {
		p.EvictBatch = max(32, pages/16)
	}
	if p.FreelistBatch > pages/128 {
		p.FreelistBatch = max(64, pages/128)
	}
	if p.CoreQueueLimit > pages/32 {
		p.CoreQueueLimit = max(2*p.FreelistBatch, pages/32)
	}
	p.HugeFaultDensity = pl.HugeDensity
	p.UnsafeMsyncAtSubmit = pl.Unsafe
	return &p
}

func (x *exec) options() aquila.Options {
	pl := x.pl
	cache := pl.CacheKB << 10
	var devBytes uint64 = 64 << 20
	for _, f := range pl.Files {
		devBytes += fileBytes(f.Slots)
	}
	if pl.Kreon != nil {
		devBytes += kreonBytes(pl.Kreon)
	}
	opts := aquila.Options{
		Mode: worldMode(pl.World), CPUs: pl.CPUs, Seed: pl.Seed,
		CacheBytes: cache, DeviceBytes: devBytes,
		SchedPerturb: pl.SchedPerturb,
	}
	if pl.Device == "nvme" {
		opts.Device = aquila.DeviceNVMe
	}
	if pl.World == WorldAquila {
		opts.Params = tortureParams(pl, cache)
	}
	return opts
}

func fileBytes(slots int) uint64 {
	return (uint64(slots)*slotBytes + 4095) &^ uint64(4095)
}

func kreonBytes(k *KreonSpec) uint64 {
	return 4096 + k.LogKB<<10 + k.IdxKB<<10
}

// payload derives slot content from (file, slot, seq): self-describing data
// the read-back and recovery oracles can recompute without storing it.
func payload(buf []byte, file, slot int, seq uint64) {
	h := uint64(file+1)*0x9E3779B97F4A7C15 ^
		uint64(slot+1)*0xBF58476D1CE4E5B9 ^ (seq+1)*0x94D049BB133111EB
	for i := 0; i+8 <= len(buf); i += 8 {
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 29
		binary.LittleEndian.PutUint64(buf[i:], h)
	}
}

func kvKey(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

func kvVal(key int, ver uint64) []byte {
	buf := make([]byte, 64+key%57)
	payload(buf, -1, key, ver)
	return buf
}

// run executes the plan under an optional concrete crash plan.
func run(pl *Plan, crash *device.CrashPlan) *Outcome {
	x := &exec{pl: pl, o: &Outcome{}, prof: profile.New()}
	opts := x.options()
	opts.Profiler = x.prof
	x.sys = aquila.New(opts)
	if pl.Fault != nil {
		fp, err := pl.Fault.Compile()
		if err != nil {
			x.fail("fault plan: %v", err)
			return x.o
		}
		x.sys.InjectFaults(fp)
	}
	if crash != nil {
		x.sys.InjectCrash(crash)
	}

	if x.phase("setup", func() { x.sys.Do(x.setup) }) && x.sys.Crashed() == nil {
		if x.phase("ops", func() {
			x.sys.Run(pl.Threads, func(t int, p *aquila.Proc) { x.workThread(t, p) })
		}) && x.sys.Crashed() == nil {
			x.phase("verify", func() { x.sys.Do(x.verifyLive) })
		}
	}

	x.o.Cycles = x.sys.Sim.Now()
	x.o.devWrites = storeOf(x.sys).Stats().Writes
	sort.Slice(x.o.ackCycles, func(i, j int) bool { return x.o.ackCycles[i] < x.o.ackCycles[j] })

	var devFP uint64
	if info := x.sys.Crashed(); info != nil {
		x.o.Crashed, x.o.CrashCycle = true, info.Cycle
		devFP = x.verifyCrashed(opts)
	} else {
		st := storeOf(x.sys)
		st.SettleAll()
		devFP = st.Fingerprint()
		x.prof.SetTotalCycles(x.sys.Sim.Now())
		if err := x.prof.Reconcile(); err != nil {
			x.fail("profiler reconcile: %v", err)
		}
	}
	x.fingerprint(devFP)
	return x.o
}

func storeOf(sys *aquila.System) *device.Store {
	if sys.PMem != nil {
		return sys.PMem.Store
	}
	return sys.NVMe.Store
}

// setup creates every file (and the Kreon store) in plan order — the order
// recovery must replay to find the same device extents (the recovery
// determinism contract in crash.go).
func (x *exec) setup(p *aquila.Proc) {
	for i, spec := range x.pl.Files {
		fr := &fileRun{
			spec: spec, name: fmt.Sprintf("tort%02d", i),
			bytes: fileBytes(spec.Slots),
			slots: make([]slotState, spec.Slots),
		}
		x.createAndMap(p, x.sys, fr)
		x.files = append(x.files, fr)
	}
	if k := x.pl.Kreon; k != nil {
		size := kreonBytes(k)
		f := x.sys.NS.Create(p, "kreon.data", size)
		m := x.sys.NS.Mmap(p, f, size)
		m.Advise(p, aquila.AdviceRandom)
		x.db = kreon.OpenWithMapping(p, x.kreonOpts(), m)
		x.kvVer = make([]uint64, k.Keys)
		x.kvAcked = make([]uint64, k.Keys)
	}
}

func (x *exec) kreonOpts() kreon.Options {
	k := x.pl.Kreon
	return kreon.Options{
		LogBytes: k.LogKB << 10, IndexBytes: k.IdxKB << 10,
		L0Entries: k.Keys/2 + 1,
	}
}

// createAndMap creates (or re-creates, during recovery) and maps one file in
// the given system. The kmmap world maps through the custom kernel path and
// reads/syncs through a plain file handle on the same inode.
func (x *exec) createAndMap(p *aquila.Proc, sys *aquila.System, fr *fileRun) {
	if x.pl.World == WorldKmmap {
		fr.fsf = sys.Host.FS.Create(p, fr.name, fr.bytes)
		fr.f = sys.Host.OpenFile(fr.fsf, false)
		fr.m = sys.Host.MmapKmmap(p, fr.fsf, fr.bytes)
		return
	}
	fr.f = sys.NS.Create(p, fr.name, fr.bytes)
	fr.m = sys.NS.Mmap(p, fr.f, fr.bytes)
}

// remap re-establishes the mapping after an unmap op (same world rules).
func (x *exec) remap(p *aquila.Proc, fr *fileRun) {
	if x.pl.World == WorldKmmap {
		fr.m = x.sys.Host.MmapKmmap(p, fr.fsf, fr.bytes)
		return
	}
	fr.m = x.sys.NS.Mmap(p, fr.f, fr.bytes)
}

func (x *exec) workThread(t int, p *aquila.Proc) {
	for i, op := range x.pl.Ops {
		if op.T != t {
			continue
		}
		x.step(p, i, op)
	}
}

// code folds an op's result into the fingerprint stream.
func (x *exec) code(opIdx int, c uint64) {
	x.trace = append(x.trace, uint64(opIdx)<<8|c&0xff)
}

func (x *exec) step(p *aquila.Proc, opIdx int, op Op) {
	x.o.OpsRun++
	switch op.Kind {
	case OpKvPut, OpKvGet, OpKvScan, OpKvMsync:
		x.kvStep(p, opIdx, op)
		return
	}
	fr := x.files[op.File]
	off := uint64(op.Slot) * slotBytes
	switch op.Kind {
	case OpStore:
		sl := &fr.slots[op.Slot]
		next := sl.seq + 1
		buf := make([]byte, slotBytes)
		payload(buf, op.File, op.Slot, next)
		if ev := x.safeOp(func() { fr.m.Store(p, off, buf) }); ev != "" {
			// The store may have copied any prefix before faulting: the
			// slot's content and durability are both unpredictable now.
			sl.unknown, sl.acked = true, false
			x.event(ev)
			x.code(opIdx, 1)
			return
		}
		sl.written, sl.unknown, sl.seq = true, false, next
		x.code(opIdx, 0)
	case OpLoad:
		sl := &fr.slots[op.Slot]
		buf := make([]byte, slotBytes)
		if ev := x.safeOp(func() { fr.m.Load(p, off, buf) }); ev != "" {
			x.event(ev)
			x.code(opIdx, 1)
			return
		}
		if sl.written && !sl.unknown {
			want := make([]byte, slotBytes)
			payload(want, op.File, op.Slot, sl.seq)
			if !bytes.Equal(buf, want) {
				x.fail("read-your-writes: file %d slot %d seq %d differs at op %d",
					op.File, op.Slot, sl.seq, opIdx)
			}
		}
		x.code(opIdx, 0)
	case OpMsync:
		var err error
		if ev := x.safeOp(func() { err = fr.m.Msync(p) }); ev != "" {
			x.event(ev)
			x.code(opIdx, 1)
			return
		}
		if err != nil {
			fr.errTaint = true
			x.code(opIdx, 2)
			return
		}
		x.ackFile(p, fr, 0, len(fr.slots))
		x.code(opIdx, 0)
	case OpMsyncRange:
		lo, hi := op.Slot, op.Slot+op.N
		if hi > len(fr.slots) {
			hi = len(fr.slots)
		}
		var err error
		if ev := x.safeOp(func() {
			err = fr.m.MsyncRange(p, uint64(lo)*slotBytes, uint64(hi-lo)*slotBytes)
		}); ev != "" {
			x.event(ev)
			x.code(opIdx, 1)
			return
		}
		if err != nil {
			fr.errTaint = true
			x.code(opIdx, 2)
			return
		}
		// The flushed byte range page-expands; acking only the named slots
		// is a sound under-approximation.
		x.ackFile(p, fr, lo, hi)
		x.code(opIdx, 0)
	case OpFsync:
		var err error
		if ev := x.safeOp(func() { err = fr.f.Fsync(p) }); ev != "" {
			x.event(ev)
			x.code(opIdx, 1)
			return
		}
		if err != nil {
			// The handle consumed an errseq report the next msync will no
			// longer see: this file's acks can't be trusted any more.
			fr.errTaint = true
			x.code(opIdx, 2)
			return
		}
		x.code(opIdx, 0)
	case OpUnmap:
		if ev := x.safeOp(func() { fr.m.Munmap(p) }); ev != "" {
			x.event(ev)
		}
		x.remap(p, fr)
		if x.pl.Fault != nil {
			// Munmap writes dirty pages back but discards errors; with
			// faults armed, anything not already acked is now unknowable.
			for s := range fr.slots {
				sl := &fr.slots[s]
				if sl.written && sl.seq != sl.ackSeq {
					sl.unknown = true
					sl.acked = false
				}
			}
		}
		x.code(opIdx, 0)
	case OpHuge:
		if ev := x.safeOp(func() { fr.m.Advise(p, aquila.AdviceHuge) }); ev != "" {
			x.event(ev)
		}
		x.code(opIdx, 0)
	}
}

// ackFile marks slots [lo,hi) durably acknowledged after a nil msync on an
// untainted file, and records the acknowledgment cycle (the AtAck crash
// coordinate space).
func (x *exec) ackFile(p *aquila.Proc, fr *fileRun, lo, hi int) {
	if fr.errTaint {
		return
	}
	for s := lo; s < hi; s++ {
		sl := &fr.slots[s]
		if sl.written && !sl.unknown {
			sl.acked, sl.ackSeq = true, sl.seq
		}
	}
	x.o.Acked++
	x.o.ackCycles = append(x.o.ackCycles, p.Now())
}

func (x *exec) kvStep(p *aquila.Proc, opIdx int, op Op) {
	switch op.Kind {
	case OpKvPut:
		next := x.kvVer[op.Key] + 1
		x.db.Put(p, kvKey(op.Key), kvVal(op.Key, next))
		x.kvVer[op.Key] = next
		x.code(opIdx, 0)
	case OpKvGet:
		v, ok := x.db.Get(p, kvKey(op.Key))
		want := x.kvVer[op.Key]
		switch {
		case want == 0 && ok:
			x.fail("kv: key %d never put but Get found it (op %d)", op.Key, opIdx)
		case want > 0 && (!ok || !bytes.Equal(v, kvVal(op.Key, want))):
			x.fail("kv: key %d version %d mismatch (op %d, found=%v)", op.Key, want, opIdx, ok)
		}
		x.code(opIdx, 0)
	case OpKvScan:
		got := x.db.Scan(p, kvKey(op.Key), op.N)
		want := 0
		for k := op.Key; k < len(x.kvVer) && want < op.N; k++ {
			if x.kvVer[k] > 0 {
				want++
			}
		}
		if got != want {
			x.fail("kv: scan from %d width %d returned %d, model says %d (op %d)",
				op.Key, op.N, got, want, opIdx)
		}
		x.code(opIdx, 0)
	case OpKvMsync:
		x.db.Msync(p)
		copy(x.kvAcked, x.kvVer)
		x.o.Acked++
		x.o.ackCycles = append(x.o.ackCycles, p.Now())
		x.code(opIdx, 0)
	}
}

// verifyLive is the quiesced, single-proc oracle phase of a run that did not
// crash: errseq exactly-once, full read-back against the model, Kreon
// content checks, and the runtime invariant audit.
func (x *exec) verifyLive(p *aquila.Proc) {
	for i, fr := range x.files {
		err1 := fr.m.Msync(p)
		if err1 != nil {
			fr.errTaint = true
		}
		var wb0, rq0, qr0 uint64
		if rt := x.sys.RT; rt != nil {
			wb0, rq0, qr0 = rt.Stats.WrittenBack, rt.Stats.RequeuedPages, rt.Stats.QuarantinedPages
		}
		err2 := fr.m.Msync(p)
		if err2 != nil {
			if x.pl.Fault == nil {
				x.fail("errseq: file %d second msync errored with no faults: %v", i, err2)
			} else if rt := x.sys.RT; rt != nil &&
				rt.Stats.WrittenBack == wb0 && rt.Stats.RequeuedPages == rq0 &&
				rt.Stats.QuarantinedPages == qr0 {
				// No page was written back, requeued, or quarantined between
				// the two msyncs: there was no new failure occurrence, so a
				// second report breaks errseq's exactly-once contract.
				x.fail("errseq: file %d error re-reported without a new occurrence: %v", i, err2)
			}
		}
		buf := make([]byte, slotBytes)
		want := make([]byte, slotBytes)
		for s := range fr.slots {
			sl := &fr.slots[s]
			if !sl.written || sl.unknown {
				continue
			}
			if ev := x.safeOp(func() { fr.m.Load(p, uint64(s)*slotBytes, buf) }); ev != "" {
				x.event(ev)
				continue
			}
			payload(want, i, s, sl.seq)
			if !bytes.Equal(buf, want) {
				x.fail("final read-back: file %d slot %d seq %d differs", i, s, sl.seq)
			}
		}
	}
	if x.db != nil {
		for k, ver := range x.kvVer {
			if ver == 0 {
				continue
			}
			v, ok := x.db.Get(p, kvKey(k))
			if !ok || !bytes.Equal(v, kvVal(k, ver)) {
				x.fail("kv final: key %d version %d missing or wrong", k, ver)
			}
		}
	}
	if rt := x.sys.RT; rt != nil {
		if err := rt.CheckInvariants(); err != nil {
			x.fail("invariants: %v", err)
		}
	}
}

// verifyCrashed runs the crash battery: crash-point invariant audit, durable
// image capture, recovery into a fresh system, and verification that every
// record acknowledged durable before the crash survived. Returns the durable
// image fingerprint (the crashed run's device hash).
func (x *exec) verifyCrashed(opts aquila.Options) uint64 {
	if rt := x.sys.RT; rt != nil {
		if err := rt.CheckCrashInvariants(); err != nil {
			x.fail("crash invariants: %v", err)
		}
	}
	img := x.sys.CaptureCrash()
	opts.Profiler = nil // recovery spans would pollute the crashed profile
	rsys := aquila.Recover(opts, img)
	ok := x.phase("recovery", func() { rsys.Do(func(p *aquila.Proc) { x.verifyRecovered(p, rsys) }) })
	if ok && rsys.Crashed() != nil {
		x.fail("recovery run crashed at cycle %d", rsys.Crashed().Cycle)
	}
	if rt := rsys.RT; rt != nil {
		if err := rt.CheckInvariants(); err != nil {
			x.fail("recovered invariants: %v", err)
		}
	}
	return img.Fingerprint
}

func (x *exec) verifyRecovered(p *aquila.Proc, rsys *aquila.System) {
	// Re-create files in exactly the original order so the deterministic
	// allocators hand back the same extents (recovery determinism contract).
	buf := make([]byte, slotBytes)
	want := make([]byte, slotBytes)
	for i, spec := range x.pl.Files {
		fr := &fileRun{
			spec: spec, name: fmt.Sprintf("tort%02d", i),
			bytes: fileBytes(spec.Slots),
		}
		x.createAndMap(p, rsys, fr)
		src := x.files
		if i >= len(src) {
			break // crashed during setup before this file existed
		}
		for s := range src[i].slots {
			sl := &src[i].slots[s]
			// Only slots that were acknowledged and not overwritten since
			// are pinned down: a post-ack store leaves the durable content
			// legitimately either version.
			if !sl.acked || sl.seq != sl.ackSeq || sl.unknown {
				continue
			}
			if ev := x.safeOp(func() { fr.m.Load(p, uint64(s)*slotBytes, buf) }); ev != "" {
				x.o.Lost++
				x.fail("acked-then-lost: file %d slot %d unreadable after recovery: %s", i, s, ev)
				continue
			}
			payload(want, i, s, sl.ackSeq)
			if !bytes.Equal(buf, want) {
				x.o.Lost++
				x.fail("acked-then-lost: file %d slot %d seq %d not durable after crash",
					i, s, sl.ackSeq)
			}
		}
	}
	if k := x.pl.Kreon; k != nil && x.db != nil {
		size := kreonBytes(k)
		f := rsys.NS.Create(p, "kreon.data", size)
		m := rsys.NS.Mmap(p, f, size)
		db := kreon.Reopen(p, x.kreonOpts(), m)
		anyAcked := false
		for _, v := range x.kvAcked {
			if v > 0 {
				anyAcked = true
				break
			}
		}
		if anyAcked && db.Recov.FreshStore {
			x.o.Lost++
			x.fail("acked-then-lost: kreon recovered as a fresh store despite acked puts")
			return
		}
		for key, ackVer := range x.kvAcked {
			if ackVer == 0 {
				continue
			}
			v, ok := db.Get(p, kvKey(key))
			if !ok {
				x.o.Lost++
				x.fail("acked-then-lost: kreon key %d (acked v%d) missing after recovery", key, ackVer)
				continue
			}
			// Any version from the acked one through the last put is a
			// legal durable state (later appends may have reached media).
			good := false
			for ver := ackVer; ver <= x.kvVer[key]; ver++ {
				if bytes.Equal(v, kvVal(key, ver)) {
					good = true
					break
				}
			}
			if !good {
				x.o.Lost++
				x.fail("acked-then-lost: kreon key %d recovered to no version in [v%d,v%d]",
					key, ackVer, x.kvVer[key])
			}
		}
	}
}

// fingerprint folds the run into Outcome.Fingerprint (FNV-1a 64).
func (x *exec) fingerprint(devFP uint64) {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mixs := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mix(uint64(x.pl.Seed))
	mix(x.o.Cycles)
	mix(devFP)
	mix(uint64(x.o.OpsRun))
	for _, c := range x.trace {
		mix(c)
	}
	for _, c := range x.o.ackCycles {
		mix(c)
	}
	for _, f := range x.o.Failures {
		mixs(f)
	}
	x.o.Fingerprint = h
}
