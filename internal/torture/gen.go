package torture

import "math/rand"

// Generation constraints, chosen so every generated plan is oracle-sound:
//
//   - Fault rules are write-direction or latency only. Read faults and
//     poison deliver SIGBUS on loads — documented behavior the harness
//     records as an event, but a plan built around them proves nothing
//     about durability.
//   - Permanent-write rules come with a roomy cache: under a tight cache a
//     permanently quarantined page pins DRAM, and enough of them stall
//     eviction (ErrEvictionStalled), again legal but noisy.
//   - Kreon rides along only on fault-free Aquila plans (see KreonSpec).
//   - kv ops only on thread 0; mapping ops only on the owning thread.

// Generate derives a complete plan from a seed. Same (seed, nops) — same
// plan, byte for byte; the bank in cmd/aqtort and the CI target both lean on
// this to keep the corpus stable across runs.
func Generate(seed int64, nops int) *Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x7073746f72747572)) // "torture" salt
	pl := &Plan{Version: PlanVersion, Seed: seed}

	switch rng.Intn(6) {
	case 0, 1, 2:
		pl.World = WorldAquila
	case 3:
		pl.World = WorldLinux
	case 4:
		pl.World = WorldLinuxDirect
	default:
		pl.World = WorldKmmap
	}
	if rng.Intn(2) == 0 {
		pl.Device = "pmem"
	} else {
		pl.Device = "nvme"
	}
	pl.Threads = 1 + rng.Intn(4)
	pl.CPUs = 4 * (1 + rng.Intn(2))
	if rng.Intn(2) == 0 {
		// Half the bank explores perturbed tie-breaking; the other half
		// keeps the canonical schedule so both stay continuously exercised.
		pl.SchedPerturb = rng.Uint64() | 1
	}

	// Fault schedule first: it decides how tight the cache may be.
	permanent := false
	switch rng.Intn(5) {
	case 0, 1: // fault-free
	case 2, 3: // transient writes + latency spikes
		pl.Fault = &FaultSpec{Seed: rng.Int63n(1 << 30)}
		pl.Fault.Rules = append(pl.Fault.Rules, FaultRuleSpec{
			Kind: "transient-write", Prob: 0.01 + rng.Float64()*0.04,
		})
		if rng.Intn(2) == 0 {
			pl.Fault.Rules = append(pl.Fault.Rules, FaultRuleSpec{
				Kind: "latency-spike", Prob: 0.05, Delay: 20000 + uint64(rng.Intn(40000)),
			})
		}
	default: // one permanent write failure, count-scheduled
		permanent = true
		pl.Fault = &FaultSpec{Seed: rng.Int63n(1 << 30)}
		pl.Fault.Rules = append(pl.Fault.Rules, FaultRuleSpec{
			Kind: "permanent-write", After: 1 + uint64(rng.Intn(100)), Limit: 1,
		})
	}

	if permanent || rng.Intn(3) > 0 {
		pl.CacheKB = 2048 + uint64(rng.Intn(3))*1024
	} else {
		// Tight cache: eviction, reclaim, and refill churn under the ops.
		pl.CacheKB = 256 + uint64(rng.Intn(2))*128
	}
	if pl.World == WorldAquila && rng.Intn(4) == 0 {
		pl.HugeDensity = 0.25
	}

	// Files: one per thread, a second for thread 0 half the time.
	for t := 0; t < pl.Threads; t++ {
		pl.Files = append(pl.Files, FileSpec{Thread: t, Slots: 16 + rng.Intn(49)})
	}
	if rng.Intn(2) == 0 {
		pl.Files = append(pl.Files, FileSpec{Thread: 0, Slots: 16 + rng.Intn(49)})
	}

	kv := false
	if pl.World == WorldAquila && pl.Fault == nil && rng.Intn(3) == 0 {
		kv = true
		pl.Kreon = &KreonSpec{Keys: 64 + rng.Intn(129), LogKB: 256, IdxKB: 256}
	}

	if rng.Intn(10) < 3 {
		cs := &CrashSpec{Seed: 1 + rng.Int63n(1<<30), TearProb: rng.Float64() * 0.5}
		switch {
		case pl.World == WorldAquila && rng.Intn(3) == 0:
			cs.AtSpan, cs.SpanHit = "aq.msync", uint64(1+rng.Intn(3))
		case rng.Intn(2) == 0:
			cs.AtAck = 1 + rng.Intn(4)
		default:
			cs.OpFrac = 0.1 + rng.Float64()*0.8
		}
		pl.Crash = cs
	}

	// The trace. Per-file slot cursors bias stores toward recently used
	// slots so msync batches have something to flush.
	filesOf := make([][]int, pl.Threads)
	for i, f := range pl.Files {
		filesOf[f.Thread] = append(filesOf[f.Thread], i)
	}
	for i := 0; i < nops; i++ {
		t := rng.Intn(pl.Threads)
		if kv && t == 0 && rng.Intn(2) == 0 {
			op := Op{T: 0, Key: rng.Intn(pl.Kreon.Keys)}
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				op.Kind = OpKvPut
			case 5, 6:
				op.Kind = OpKvGet
			case 7:
				op.Kind = OpKvScan
				op.N = 1 + rng.Intn(16)
			default:
				op.Kind = OpKvMsync
			}
			pl.Ops = append(pl.Ops, op)
			continue
		}
		fi := filesOf[t][rng.Intn(len(filesOf[t]))]
		slots := pl.Files[fi].Slots
		op := Op{T: t, File: fi, Slot: rng.Intn(slots)}
		switch r := rng.Intn(100); {
		case r < 45:
			op.Kind = OpStore
		case r < 65:
			op.Kind = OpLoad
		case r < 77:
			op.Kind = OpMsync
		case r < 85:
			op.Kind = OpMsyncRange
			op.N = 1 + rng.Intn(slots-op.Slot)
		case r < 90:
			op.Kind = OpFsync
		case r < 96:
			op.Kind = OpUnmap
		default:
			if pl.HugeDensity > 0 {
				op.Kind = OpHuge
			} else {
				op.Kind = OpStore
			}
		}
		pl.Ops = append(pl.Ops, op)
	}
	return pl
}

// ProofPlan is the in-band soundness check for the whole oracle battery: an
// Aquila/NVMe run with Params.UnsafeMsyncAtSubmit re-enabled (msync
// acknowledges at submission, before the device completes) and a crash one
// cycle after the first acknowledgment. The acked records' writes are still
// in flight at the crash, so the durability oracle MUST report acked-then-
// lost records; a battery that passes this plan is vacuous and the caller
// treats that as a failure of the harness itself.
func ProofPlan() *Plan {
	pl := &Plan{
		Version: PlanVersion, Seed: 424242,
		World: WorldAquila, Device: "nvme",
		Threads: 1, CPUs: 4, CacheKB: 1024,
		Unsafe: true,
		Files:  []FileSpec{{Thread: 0, Slots: 16}},
		Crash:  &CrashSpec{Seed: 7, AtAck: 1},
	}
	for s := 0; s < 8; s++ {
		pl.Ops = append(pl.Ops, Op{T: 0, Kind: OpStore, File: 0, Slot: s})
	}
	pl.Ops = append(pl.Ops, Op{T: 0, Kind: OpMsync, File: 0})
	for s := 8; s < 16; s++ {
		pl.Ops = append(pl.Ops, Op{T: 0, Kind: OpStore, File: 0, Slot: s})
	}
	pl.Ops = append(pl.Ops, Op{T: 0, Kind: OpMsync, File: 0})
	return pl
}
