package torture

import (
	"path/filepath"
	"reflect"
	"testing"
)

// A slice of the CI bank, small enough for go test: every seed's oracle
// battery must come back clean. The full 64-seed bank runs under
// `make torture`.
func TestBankShort(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 3
	}
	for s := int64(0); s < n; s++ {
		pl := Generate(s, 80)
		if err := pl.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v", s, err)
		}
		o := Execute(pl)
		if o.Failed() {
			t.Errorf("seed %d (%s/%s): %v", s, pl.World, pl.Device, o.Failures)
		}
	}
}

// Same plan, same fingerprint — the property shrinking and checked-in repros
// rest on. Seed 1 exercises a perturbed schedule if the generator picked one;
// either way the double-run must agree bit for bit.
func TestExecuteDeterministic(t *testing.T) {
	for _, s := range []int64{0, 1, 5} {
		pl := Generate(s, 60)
		a, b := Execute(pl), Execute(pl)
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("seed %d: fingerprints %016x then %016x", s, a.Fingerprint, b.Fingerprint)
		}
		if a.Failed() != b.Failed() || len(a.Failures) != len(b.Failures) {
			t.Fatalf("seed %d: verdicts differ: %v vs %v", s, a.Failures, b.Failures)
		}
	}
}

// Generate must be a pure function of (seed, nops).
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(17, 80), Generate(17, 80)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate(17, 80) returned two different plans")
	}
}

// Oracle soundness: the planted UnsafeMsyncAtSubmit bug MUST be caught, and
// the shrinker must reduce it to a small repro that still fails.
func TestProofPlanCaughtAndShrunk(t *testing.T) {
	pl := ProofPlan()
	o := Execute(pl)
	if !o.Failed() {
		t.Fatal("oracle battery did not catch UnsafeMsyncAtSubmit — the harness is vacuous")
	}
	res := Shrink(pl, 200)
	if res.ToOps > 20 {
		t.Fatalf("shrunk proof plan still has %d ops, want <= 20", res.ToOps)
	}
	if !res.Outcome.Failed() {
		t.Fatal("shrunk plan no longer fails")
	}
}

// The checked-in repro (written by `aqtort -prove-unsafe`) must load and
// still fail on replay; a silently passing repro means the executor's
// semantics drifted without a PlanVersion bump.
func TestCheckedInReproStillFails(t *testing.T) {
	path := filepath.Join("testdata", "repros", "unsafe_msync.json")
	pl, err := Load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	o := Execute(pl)
	if !o.Failed() {
		t.Fatalf("%s replayed clean; it must reproduce the acked-then-lost failure", path)
	}
}

// Save/Load round-trip: the JSON fixture format preserves every field the
// executor reads.
func TestPlanRoundTrip(t *testing.T) {
	pl := Generate(3, 40)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := pl.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pl, got) {
		t.Fatalf("round-trip mismatch:\nsaved  %+v\nloaded %+v", pl, got)
	}
}

// Load rejects stale and malformed fixtures loudly.
func TestLoadRejects(t *testing.T) {
	pl := Generate(3, 10)
	pl.Version = PlanVersion + 1
	path := filepath.Join(t.TempDir(), "stale.json")
	if err := pl.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a plan with a future version")
	}
}

// Shrink must refuse a passing plan instead of "reducing" it to nothing.
func TestShrinkPanicsOnPassingPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shrink accepted a passing plan")
		}
	}()
	pl := Generate(0, 10)
	Shrink(pl, 50)
}
