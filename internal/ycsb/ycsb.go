// Package ycsb reimplements the YCSB workload generator (Cooper et al.,
// SoCC '10) as used by the paper (§5, Table 1): the six standard workloads
// A–F over uniform, zipfian and latest request distributions, with the C++
// -style direct driver (no JNI overhead to model).
package ycsb

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"aquila/internal/metrics"
	"aquila/internal/sim/engine"
)

// OpKind is one YCSB operation type.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String returns the YCSB name of the op.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	}
	return "?"
}

// Workload identifies one of the standard YCSB workloads (Table 1).
type Workload byte

// The standard workloads.
const (
	WorkloadA Workload = 'A' // 50% reads, 50% updates
	WorkloadB Workload = 'B' // 95% reads, 5% updates
	WorkloadC Workload = 'C' // 100% reads
	WorkloadD Workload = 'D' // 95% reads, 5% inserts (latest distribution)
	WorkloadE Workload = 'E' // 95% scans, 5% inserts
	WorkloadF Workload = 'F' // 50% reads, 50% read-modify-writes
)

// All lists the standard workloads in order.
var All = []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}

// Mix returns the operation mix of the workload (Table 1).
func (w Workload) Mix() string {
	switch w {
	case WorkloadA:
		return "50% reads, 50% updates"
	case WorkloadB:
		return "95% reads, 5% updates"
	case WorkloadC:
		return "100% reads"
	case WorkloadD:
		return "95% reads, 5% inserts"
	case WorkloadE:
		return "95% scans, 5% inserts"
	case WorkloadF:
		return "50% reads, 50% read-modify-write"
	}
	return "unknown"
}

// Distribution selects how request keys are drawn.
type Distribution int

// Request distributions.
const (
	Uniform Distribution = iota
	Zipfian
	Latest
)

// Config parameterizes a generator.
type Config struct {
	Workload     Workload
	Records      uint64 // initial dataset size
	ValueSize    int    // default 1000 (§6.1: 1 KB values)
	ScanLength   int    // default 50
	Distribution Distribution
	Seed         int64
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     uint64
	ScanLen int
}

// Generator produces a deterministic operation stream for one thread.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *zipfGen
	records uint64 // grows with inserts
}

// NewGenerator creates a generator; each thread should get its own with a
// distinct seed.
func NewGenerator(cfg Config) *Generator {
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 1000
	}
	if cfg.ScanLength == 0 {
		cfg.ScanLength = 50
	}
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		records: cfg.Records,
	}
	if cfg.Distribution == Zipfian || cfg.Distribution == Latest {
		g.zipf = newZipf(cfg.Records, 0.99)
	}
	return g
}

// Records returns the current record count (grows with inserts).
func (g *Generator) Records() uint64 { return g.records }

// ValueSize returns the configured value size.
func (g *Generator) ValueSize() int { return g.cfg.ValueSize }

// nextKey draws a key per the configured distribution.
func (g *Generator) nextKey() uint64 {
	switch g.cfg.Distribution {
	case Zipfian:
		// Scrambled zipfian: spread the hot keys over the key space.
		z := g.zipf.next(g.rng)
		return fnvHash(z) % g.records
	case Latest:
		// Most recent records are hottest.
		z := g.zipf.next(g.rng)
		if z >= g.records {
			z = g.records - 1
		}
		return g.records - 1 - z
	default:
		return uint64(g.rng.Int63n(int64(g.records)))
	}
}

// Next draws the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	var kind OpKind
	switch g.cfg.Workload {
	case WorkloadA:
		if r < 0.5 {
			kind = OpRead
		} else {
			kind = OpUpdate
		}
	case WorkloadB:
		if r < 0.95 {
			kind = OpRead
		} else {
			kind = OpUpdate
		}
	case WorkloadC:
		kind = OpRead
	case WorkloadD:
		if r < 0.95 {
			kind = OpRead
		} else {
			kind = OpInsert
		}
	case WorkloadE:
		if r < 0.95 {
			kind = OpScan
		} else {
			kind = OpInsert
		}
	case WorkloadF:
		if r < 0.5 {
			kind = OpRead
		} else {
			kind = OpReadModifyWrite
		}
	default:
		panic(fmt.Sprintf("ycsb: unknown workload %c", g.cfg.Workload))
	}
	switch kind {
	case OpInsert:
		k := g.records
		g.records++
		return Op{Kind: kind, Key: k}
	case OpScan:
		return Op{Kind: kind, Key: g.nextKey(), ScanLen: 1 + g.rng.Intn(g.cfg.ScanLength)}
	default:
		return Op{Kind: kind, Key: g.nextKey()}
	}
}

// KeyBytes encodes a record key (fixed 30-byte keys as in §6.1, with the
// numeric id in the trailing 8 bytes so ordering matches id order).
func KeyBytes(id uint64) []byte {
	k := make([]byte, 30)
	copy(k, "user:ycsb:record:")
	binary.BigEndian.PutUint64(k[22:], id)
	return k
}

// KeyID decodes a record key back to its id.
func KeyID(k []byte) uint64 { return binary.BigEndian.Uint64(k[22:]) }

// Value builds a deterministic value for a record id.
func Value(id uint64, size int) []byte {
	v := make([]byte, size)
	binary.BigEndian.PutUint64(v, id)
	for i := 8; i < size; i++ {
		v[i] = byte((id + uint64(i)) % 251)
	}
	return v
}

// CheckValue verifies a value matches its record id (data-integrity checks
// in tests).
func CheckValue(id uint64, v []byte) bool {
	if len(v) < 8 {
		return false
	}
	return binary.BigEndian.Uint64(v) == id
}

// KV is the store interface YCSB drives. Both key-value stores in this
// repository (the RocksDB-like LSM and the Kreon-like store) implement it.
type KV interface {
	Get(p *engine.Proc, key []byte) ([]byte, bool)
	Put(p *engine.Proc, key, value []byte)
	Scan(p *engine.Proc, startKey []byte, n int) int
}

// Result aggregates a run.
type Result struct {
	Ops    uint64
	Cycles uint64
	Lat    *metrics.Histogram
	Misses uint64 // reads of missing keys (should be 0)
}

// RunThread executes `ops` operations from g against kv on the calling
// simulated thread, recording per-op latency.
func RunThread(p *engine.Proc, kv KV, g *Generator, ops uint64) Result {
	res := Result{Lat: metrics.NewHistogram()}
	start := p.Now()
	for i := uint64(0); i < ops; i++ {
		op := g.Next()
		t0 := p.Now()
		switch op.Kind {
		case OpRead:
			if _, ok := kv.Get(p, KeyBytes(op.Key)); !ok {
				res.Misses++
			}
		case OpUpdate, OpInsert:
			kv.Put(p, KeyBytes(op.Key), Value(op.Key, g.cfg.ValueSize))
		case OpScan:
			kv.Scan(p, KeyBytes(op.Key), op.ScanLen)
		case OpReadModifyWrite:
			if _, ok := kv.Get(p, KeyBytes(op.Key)); !ok {
				res.Misses++
			}
			kv.Put(p, KeyBytes(op.Key), Value(op.Key, g.cfg.ValueSize))
		}
		res.Lat.Record(p.Now() - t0)
		res.Ops++
	}
	res.Cycles = p.Now() - start
	return res
}

// zipfGen is the YCSB zipfian generator (Gray et al. rejection inversion as
// used by YCSB core), theta=0.99.
type zipfGen struct {
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
}

func newZipf(n uint64, theta float64) *zipfGen {
	if n == 0 {
		n = 1
	}
	z := &zipfGen{n: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	// For large n use the integral approximation to keep setup O(1)-ish.
	if n <= 10000 {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	head := zetaStatic(10000, theta)
	// integral of x^-theta from 10000 to n
	tail := (math.Pow(float64(n), 1-theta) - math.Pow(10000, 1-theta)) / (1 - theta)
	return head + tail
}

func (z *zipfGen) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

func fnvHash(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}
