package ycsb

import (
	"bytes"
	"testing"
	"testing/quick"

	"aquila/internal/sim/engine"
)

func TestKeyEncodingRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 12345, 1 << 40} {
		k := KeyBytes(id)
		if len(k) != 30 {
			t.Fatalf("key length = %d, want 30", len(k))
		}
		if KeyID(k) != id {
			t.Fatalf("round trip %d -> %d", id, KeyID(k))
		}
	}
}

func TestKeyOrderingMatchesIDOrdering(t *testing.T) {
	check := func(a, b uint64) bool {
		ka, kb := KeyBytes(a), KeyBytes(b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueIntegrity(t *testing.T) {
	v := Value(42, 1000)
	if len(v) != 1000 {
		t.Fatalf("value size = %d", len(v))
	}
	if !CheckValue(42, v) {
		t.Fatal("value check failed")
	}
	if CheckValue(43, v) {
		t.Fatal("wrong-id value check passed")
	}
}

func TestWorkloadMixes(t *testing.T) {
	// Table 1: verify the generated mixes statistically.
	cases := []struct {
		w      Workload
		kind   OpKind
		expect float64
	}{
		{WorkloadA, OpUpdate, 0.5},
		{WorkloadB, OpUpdate, 0.05},
		{WorkloadC, OpRead, 1.0},
		{WorkloadD, OpInsert, 0.05},
		{WorkloadE, OpScan, 0.95},
		{WorkloadF, OpReadModifyWrite, 0.5},
	}
	for _, tc := range cases {
		g := NewGenerator(Config{Workload: tc.w, Records: 10000, Seed: 7})
		const n = 20000
		count := 0
		for i := 0; i < n; i++ {
			if g.Next().Kind == tc.kind {
				count++
			}
		}
		got := float64(count) / n
		if got < tc.expect-0.02 || got > tc.expect+0.02 {
			t.Errorf("workload %c: %v fraction = %.3f, want %.2f", tc.w, tc.kind, got, tc.expect)
		}
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	g := NewGenerator(Config{Workload: WorkloadC, Records: 100, Seed: 3})
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Key >= 100 {
			t.Fatalf("key %d out of range", op.Key)
		}
		seen[op.Key] = true
	}
	if len(seen) < 95 {
		t.Errorf("uniform draw covered only %d/100 keys", len(seen))
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	g := NewGenerator(Config{Workload: WorkloadC, Records: 100000, Distribution: Zipfian, Seed: 5})
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Top key should dominate far beyond uniform (n/records = 0.5 each).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/100 {
		t.Errorf("zipfian max key count %d looks uniform", max)
	}
	// But the draw must not be a constant either.
	if len(counts) < 1000 {
		t.Errorf("zipfian touched only %d distinct keys", len(counts))
	}
}

func TestLatestPrefersRecentKeys(t *testing.T) {
	g := NewGenerator(Config{Workload: WorkloadD, Records: 10000, Distribution: Latest, Seed: 9})
	recent := 0
	const n = 10000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind == OpInsert {
			continue
		}
		if op.Key >= g.Records()-g.Records()/10 {
			recent++
		}
	}
	if float64(recent)/n < 0.5 {
		t.Errorf("latest distribution: only %d/%d reads in newest 10%%", recent, n)
	}
}

func TestInsertsGrowKeySpace(t *testing.T) {
	g := NewGenerator(Config{Workload: WorkloadD, Records: 1000, Seed: 1})
	before := g.Records()
	inserts := uint64(0)
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == OpInsert {
			if op.Key != before+inserts {
				t.Fatalf("insert key %d, want %d (sequential)", op.Key, before+inserts)
			}
			inserts++
		}
	}
	if g.Records() != before+inserts {
		t.Errorf("records = %d, want %d", g.Records(), before+inserts)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Op {
		g := NewGenerator(Config{Workload: WorkloadA, Records: 1000, Distribution: Zipfian, Seed: 11})
		var ops []Op
		for i := 0; i < 100; i++ {
			ops = append(ops, g.Next())
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// mapKV is an in-memory KV for driver tests.
type mapKV struct {
	m map[string][]byte
}

func (kv *mapKV) Get(p *engine.Proc, key []byte) ([]byte, bool) {
	p.AdvanceUser(10)
	v, ok := kv.m[string(key)]
	return v, ok
}

func (kv *mapKV) Put(p *engine.Proc, key, value []byte) {
	p.AdvanceUser(20)
	kv.m[string(key)] = append([]byte(nil), value...)
}

func (kv *mapKV) Scan(p *engine.Proc, startKey []byte, n int) int {
	p.AdvanceUser(uint64(10 * n))
	return n
}

func TestRunThreadAgainstMapKV(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 1, Seed: 1})
	kv := &mapKV{m: make(map[string][]byte)}
	for i := uint64(0); i < 100; i++ {
		kv.m[string(KeyBytes(i))] = Value(i, 100)
	}
	var res Result
	e.Spawn(0, "ycsb", func(p *engine.Proc) {
		g := NewGenerator(Config{Workload: WorkloadA, Records: 100, ValueSize: 100, Seed: 2})
		res = RunThread(p, kv, g, 500)
	})
	e.Run()
	if res.Ops != 500 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if res.Lat.Count() != 500 || res.Cycles == 0 {
		t.Fatalf("lat count=%d cycles=%d", res.Lat.Count(), res.Cycles)
	}
}

func TestScanLengthsBounded(t *testing.T) {
	g := NewGenerator(Config{Workload: WorkloadE, Records: 1000, ScanLength: 25, Seed: 4})
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == OpScan {
			if op.ScanLen < 1 || op.ScanLen > 25 {
				t.Fatalf("scan length %d outside [1,25]", op.ScanLen)
			}
		}
	}
}

func TestRunThreadCountsMisses(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 1, Seed: 1})
	kv := &mapKV{m: make(map[string][]byte)} // empty store: all reads miss
	var res Result
	e.Spawn(0, "ycsb", func(p *engine.Proc) {
		g := NewGenerator(Config{Workload: WorkloadC, Records: 50, Seed: 2})
		res = RunThread(p, kv, g, 100)
	})
	e.Run()
	if res.Misses != 100 {
		t.Fatalf("misses = %d, want 100", res.Misses)
	}
}

func TestWorkloadFDoesRMW(t *testing.T) {
	e := engine.New(engine.Config{NumCPUs: 1, Seed: 1})
	kv := &mapKV{m: make(map[string][]byte)}
	for i := uint64(0); i < 100; i++ {
		kv.m[string(KeyBytes(i))] = Value(i, 50)
	}
	e.Spawn(0, "ycsb", func(p *engine.Proc) {
		g := NewGenerator(Config{Workload: WorkloadF, Records: 100, ValueSize: 50, Seed: 6})
		res := RunThread(p, kv, g, 400)
		if res.Misses != 0 {
			t.Errorf("misses = %d", res.Misses)
		}
	})
	e.Run()
	// RMWs rewrote values: the store still holds 100 keys with valid values.
	if len(kv.m) != 100 {
		t.Fatalf("store has %d keys", len(kv.m))
	}
}
